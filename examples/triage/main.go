// Triage runs a fuzzing campaign and pushes every discrepancy it finds
// through the automated analysis of §2.3/§3.3: shared-environment
// re-runs (Definition 2) peel off compatibility issues, and error-class
// heuristics split the remainder into defect-indicative reports and
// checking-policy differences — the workflow behind the paper's "62
// reported discrepancies: 28 defects, 30 policies, 4 compatibility".
package main

import (
	"fmt"
	"log"

	classfuzz "repro"
	"repro/internal/triage"
)

func main() {
	seeds := classfuzz.GenerateSeeds(60, 13)
	res, err := classfuzz.RunCampaign(classfuzz.DefaultCampaign(seeds, 600))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d representative tests\n", len(res.Test))

	runner := classfuzz.NewRunner()
	tr := triage.New()
	byVerdict := map[triage.Verdict][]string{}
	for _, g := range res.Test {
		v := runner.Run(g.Data)
		if !v.Discrepant() {
			continue
		}
		rep := tr.Triage(g.Data)
		byVerdict[rep.Verdict] = append(byVerdict[rep.Verdict], g.Name+" "+v.Key())
	}

	order := []triage.Verdict{triage.DefectIndicative, triage.PolicyDifference, triage.CompatibilityIssue}
	total := 0
	for _, v := range order {
		total += len(byVerdict[v])
	}
	fmt.Printf("triage of %d discrepancy-triggering classfiles:\n", total)
	for _, v := range order {
		fmt.Printf("\n%s (%d):\n", v, len(byVerdict[v]))
		for i, line := range byVerdict[v] {
			if i == 6 {
				fmt.Printf("  ... and %d more\n", len(byVerdict[v])-6)
				break
			}
			fmt.Printf("  %s\n", line)
		}
	}

	// One detailed report, end to end.
	for _, g := range res.Test {
		if !runner.Run(g.Data).Discrepant() {
			continue
		}
		rep := tr.Triage(g.Data)
		fmt.Printf("\ndetailed report for %s:\n  verdict: %s\n  standard vector: %s\n", g.Name, rep.Verdict, rep.Key())
		for rel, v := range rep.Shared {
			fmt.Printf("  shared %s vector: %s\n", rel, v.Key())
		}
		for _, n := range rep.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		break
	}
}
