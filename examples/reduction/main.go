// Reduction demonstrates the §2.3 hierarchical-delta-debugging
// adaptation: a discrepancy-triggering mutant buried in noise is shrunk
// to a minimal classfile that preserves the same five-VM outcome
// vector, making the root cause readable.
package main

import (
	"fmt"
	"log"

	classfuzz "repro"
	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jimple"
	"repro/internal/reduce"
)

func main() {
	// A noisy mutant: the actual trigger (public abstract <clinit>,
	// Figure 2) is hidden among irrelevant interfaces, fields, methods
	// and statements — the shape a real fuzzing campaign produces.
	c := jimple.NewClass("MNoisy")
	c.Interfaces = []string{"java/io/Serializable", "java/lang/Cloneable"}
	c.AddField(classfile.AccPrivate, "cache", descriptor.Object("java/util/Map"))
	c.AddField(classfile.AccProtected|classfile.AccFinal, "LIMIT", descriptor.Int)
	c.AddDefaultInit()
	c.AddStandardMain("Completed!")

	helper := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "helper",
		[]descriptor.Type{descriptor.Int}, descriptor.Int)
	x := helper.NewLocal("i0", descriptor.Int)
	y := helper.NewLocal("i1", descriptor.Int)
	helper.Body = []jimple.Stmt{
		&jimple.Identity{Target: x, Param: 0},
		&jimple.Assign{LHS: &jimple.UseLocal{L: y}, RHS: &jimple.BinOp{
			Op: jimple.OpMul, L: &jimple.UseLocal{L: x}, R: &jimple.IntConst{V: 3, Kind: 'I'}, Kind: 'I'}},
		&jimple.Return{Value: &jimple.UseLocal{L: y}},
	}
	risky := c.AddMethod(classfile.AccPublic, "risky", nil, descriptor.Void)
	risky.Throws = []string{"java/io/IOException", "java/lang/InterruptedException"}
	this := risky.NewLocal("r0", descriptor.Object("MNoisy"))
	risky.Body = []jimple.Stmt{&jimple.Identity{Target: this, Param: -1}, &jimple.Return{}}

	// The trigger.
	c.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>", nil, descriptor.Void)

	fmt.Printf("before reduction (%d structural elements):\n\n%s\n", reduce.Size(c), classfuzz.PrintClass(c))

	data, err := classfuzz.Compile(c)
	if err != nil {
		log.Fatal(err)
	}
	runner := classfuzz.NewRunner()
	v := runner.Run(data)
	fmt.Printf("outcome vector: %s (HotSpot7, HotSpot8, HotSpot9, J9, GIJ)\n", v.Key())
	if !v.Discrepant() {
		log.Fatal("expected a discrepancy")
	}

	reduced, vec, err := classfuzz.ReduceClass(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter reduction (%d structural elements, vector %s preserved):\n\n%s\n",
		reduce.Size(reduced), vec, classfuzz.PrintClass(reduced))
	fmt.Println("the abstract <clinit> survives: J9 classifies it as the class initializer and")
	fmt.Println("demands a Code attribute (ClassFormatError), while HotSpot and GIJ treat it as")
	fmt.Println("an ordinary method of no consequence — the paper's Problem 1.")
}
