// Casestudies reconstructs the four concrete discrepancy families of
// §3.3 (Problems 1–4) as classfiles and shows how each splits the five
// JVM implementations — the repository's executable version of the
// paper's discrepancy analysis.
package main

import (
	"fmt"
	"log"

	classfuzz "repro"
	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jimple"
)

func show(title string, c *jimple.Class) {
	fmt.Printf("== %s\n", title)
	data, err := classfuzz.Compile(c)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	runner := classfuzz.NewRunner()
	v := runner.Run(data)
	for i, name := range runner.Names() {
		fmt.Printf("   %-14s %s\n", name, v.Outcomes[i])
	}
	fmt.Printf("   encoded vector: %s\n\n", v.Key())
}

func main() {
	// --- Problem 1: "other methods named <clinit> are of no consequence".
	// Figure 2's class: a public abstract non-static <clinit> without
	// code. HotSpot treats it as an ordinary method and invokes the
	// class; J9 demands a Code attribute and throws ClassFormatError.
	p1 := jimple.NewClass("M1436188543")
	p1.AddDefaultInit()
	p1.AddStandardMain("Completed!")
	p1.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>", nil, descriptor.Void)
	show("Problem 1: public abstract <clinit> (Figure 2)", p1)

	// --- Problem 2a: lazy vs eager method verification. A broken method
	// that main never invokes: HotSpot's eager verifier rejects the
	// class at linking; J9 and GIJ only verify on invocation and run it.
	p2 := jimple.NewClass("M2Lazy")
	p2.AddDefaultInit()
	p2.AddStandardMain("Completed!")
	broken := p2.AddMethod(classfile.AccPublic|classfile.AccStatic, "broken", nil, descriptor.Int)
	broken.Body = []jimple.Stmt{&jimple.Return{}} // void return from int method
	show("Problem 2a: broken method that is never invoked (eager vs lazy verification)", p2)

	// --- Problem 2b: the internalTransform incompatible cast. The
	// method's parameter is declared java.lang.String but used as
	// java.util.Map; GIJ's strict dialect reports a VerifyError where
	// HotSpot and J9 accept the cast.
	p2b := jimple.NewClass("M1433982529")
	p2b.AddDefaultInit()
	it := p2b.AddMethod(classfile.AccProtected|classfile.AccStatic, "internalTransform",
		[]descriptor.Type{descriptor.Object("java/lang/String")}, descriptor.Void)
	arg := it.NewLocal("r0", descriptor.Object("java/lang/String"))
	it.Body = []jimple.Stmt{
		&jimple.Identity{Target: arg, Param: 0},
		&jimple.InvokeStmt{Call: &jimple.Invoke{
			Kind: jimple.InvokeStatic, Class: "java/lang/Object", Name: "getBoolean",
			Sig: descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/util/Map")},
				Return: descriptor.Boolean},
			Args: []jimple.Expr{&jimple.UseLocal{L: arg}},
		}},
		&jimple.Return{},
	}
	mn := p2b.AddMethod(classfile.AccPublic|classfile.AccStatic, "main",
		[]descriptor.Type{descriptor.Array(descriptor.Object("java/lang/String"), 1)}, descriptor.Void)
	args := mn.NewLocal("a0", descriptor.Array(descriptor.Object("java/lang/String"), 1))
	mn.Body = []jimple.Stmt{
		&jimple.Identity{Target: args, Param: 0},
		&jimple.InvokeStmt{Call: &jimple.Invoke{
			Kind: jimple.InvokeStatic, Class: "M1433982529", Name: "internalTransform",
			Sig: descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/lang/String")},
				Return: descriptor.Void},
			Args: []jimple.Expr{&jimple.StringConst{V: "x"}},
		}},
		&jimple.Return{},
	}
	show("Problem 2b: String used where Map is declared (the internalTransform cast)", p2b)

	// --- Problem 3: throws-clause accessibility. main declares the
	// package-private synthetic sun.java2d.pisces.PiscesRenderingEngine$2
	// thrown; HotSpot reports IllegalAccessError, J9 and GIJ run the
	// class.
	p3 := jimple.NewClass("M1437121261")
	p3.AddDefaultInit()
	m3 := p3.AddStandardMain("Completed!")
	m3.Throws = []string{"sun/java2d/pisces/PiscesRenderingEngine$2"}
	show("Problem 3: throws sun.java2d.pisces.PiscesRenderingEngine$2", p3)

	// --- Problem 4: GIJ's leniency, three of the paper's five bullets.
	p4a := jimple.NewClass("IExtendsException")
	p4a.Modifiers = classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract
	p4a.Super = "java/lang/Exception"
	show("Problem 4: interface extending java.lang.Exception", p4a)

	p4b := jimple.NewClass("IWithMain")
	p4b.Modifiers = classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract
	p4b.AddStandardMain("interface main!")
	show("Problem 4: interface with a main method", p4b)

	p4c := jimple.NewClass("MDupFields")
	p4c.AddDefaultInit()
	p4c.AddStandardMain("Completed!")
	p4c.AddField(classfile.AccPublic, "x", descriptor.Int)
	p4c.AddField(classfile.AccPublic, "x", descriptor.Int)
	show("Problem 4: duplicate fields", p4c)

	// --- The compatibility channel (§1): subclassing the EnumEditor
	// class that became final in JRE8 — a discrepancy that vanishes when
	// all VMs share one environment (Definition 2).
	env := jimple.NewClass("MEnumEditorSub")
	env.Super = "com/sun/beans/editors/EnumEditor"
	env.AddStandardMain("Completed!")
	show("Compatibility: extends com.sun.beans.editors.EnumEditor (final from JRE8)", env)

	data, _ := classfuzz.Compile(env)
	shared, err := classfuzz.NewSharedEnvRunner("jre7")
	if err != nil {
		log.Fatal(err)
	}
	v := shared.Run(data)
	fmt.Printf("== Same class under a shared JRE7 environment (Definition 2): vector %s\n", v.Key())
	fmt.Println("   (the HotSpot trio now agrees: the discrepancy was compatibility, not a defect)")
}
