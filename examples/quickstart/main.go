// Quickstart: the full classfuzz pipeline in ~40 lines — generate
// seeds, run a coverage-directed campaign against the instrumented
// reference JVM, differentially test the representative suite on the
// five VM simulators, and print the Figure 3-style outcome vectors.
package main

import (
	"fmt"
	"log"

	classfuzz "repro"
)

func main() {
	// 1. A deterministic JRE-like seed corpus (§3.1.1).
	seeds := classfuzz.GenerateSeeds(60, 2026)
	fmt.Printf("generated %d seed classes\n", len(seeds))

	// 2. Algorithm 1: mutate with MCMC-selected mutators, accept
	//    coverage-unique mutants ([stbr] criterion, HotSpot 9 reference).
	res, err := classfuzz.RunCampaign(classfuzz.DefaultCampaign(seeds, 500))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d iterations -> %d generated, %d representative tests (succ %.1f%%)\n",
		res.Iterations, len(res.Gen), len(res.Test), res.Succ()*100)

	// 3. Differential testing across HotSpot 7/8/9, J9 and GIJ.
	var classes [][]byte
	for _, g := range res.Test {
		classes = append(classes, g.Data)
	}
	sum := classfuzz.DiffTest(classes)
	fmt.Printf("differential testing: %d discrepancy-triggering classfiles (%.1f%%), %d distinct discrepancies\n",
		sum.Discrepancies, sum.DiffRate()*100, sum.DistinctCount())

	// 4. The encoded outcome vectors (0 = invoked, 1..4 = rejection
	//    phase per VM, ordered HotSpot7, HotSpot8, HotSpot9, J9, GIJ).
	fmt.Println("\ndistinct discrepancy vectors:")
	for _, v := range sum.SortedVectors() {
		fmt.Printf("  %s  (%d classfiles)\n", v.Key, v.Count)
	}
}
