// Campaign compares the four fuzzing algorithms of §3.1.2 under an
// equal iteration budget, printing a miniature of Tables 4 and 6: how
// many classfiles each generates, how many representative tests it
// keeps, and how effective the resulting suite is at revealing JVM
// discrepancies.
package main

import (
	"fmt"
	"log"

	classfuzz "repro"
)

func main() {
	seeds := classfuzz.GenerateSeeds(80, 7)
	const budget = 600

	type row struct {
		label string
		alg   classfuzz.Algorithm
		crit  classfuzz.Criterion
		scale int // randfuzz iterates more per wall-clock unit
	}
	rows := []row{
		{"classfuzz[stbr]", classfuzz.Classfuzz, classfuzz.STBR, 1},
		{"classfuzz[st]", classfuzz.Classfuzz, classfuzz.ST, 1},
		{"classfuzz[tr]", classfuzz.Classfuzz, classfuzz.TR, 1},
		{"uniquefuzz", classfuzz.Uniquefuzz, classfuzz.STBR, 1},
		{"greedyfuzz", classfuzz.Greedyfuzz, classfuzz.STBR, 1},
		{"randfuzz", classfuzz.Randfuzz, classfuzz.STBR, 10},
	}

	fmt.Printf("%-18s %8s %8s %8s %7s | %8s %9s %7s\n",
		"algorithm", "iters", "gen", "tests", "succ", "discr", "distinct", "diff")
	for _, r := range rows {
		cfg := classfuzz.DefaultCampaign(seeds, budget*r.scale)
		cfg.Algorithm = r.alg
		cfg.Criterion = r.crit
		res, err := classfuzz.RunCampaign(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var classes [][]byte
		for _, g := range res.Test {
			classes = append(classes, g.Data)
		}
		sum := classfuzz.DiffTest(classes)
		fmt.Printf("%-18s %8d %8d %8d %6.1f%% | %8d %9d %6.1f%%\n",
			r.label, res.Iterations, len(res.Gen), len(res.Test), res.Succ()*100,
			sum.Discrepancies, sum.DistinctCount(), sum.DiffRate()*100)
	}

	fmt.Println("\nexpected shape (Findings 1-4): randfuzz generates the most classfiles but few")
	fmt.Println("distinct discrepancies per class; greedyfuzz accepts far too few tests;")
	fmt.Println("classfuzz[stbr] keeps the most representative tests and reveals the most")
	fmt.Println("distinct discrepancies among the directed algorithms.")
}
