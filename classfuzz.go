// Package classfuzz is the public API of this repository's
// reproduction of "Coverage-Directed Differential Testing of JVM
// Implementations" (Chen et al., PLDI 2016).
//
// The workflow mirrors the paper's Figure 1:
//
//  1. GenerateSeeds builds a corpus of valid, diverse classfiles (the
//     stand-in for the JRE7 library sample).
//  2. RunCampaign mutates seeds with the 129 mutation operators,
//     selecting mutators by Metropolis–Hastings sampling, executing
//     every mutant on the instrumented reference JVM and accepting the
//     coverage-unique ones as representative tests (Algorithm 1); the
//     baseline algorithms randfuzz/greedyfuzz/uniquefuzz share the
//     entry point.
//  3. DiffTest runs classfiles across the five simulated JVMs (HotSpot
//     7/8/9, J9, GIJ) and aggregates discrepancies.
//  4. ReduceClass shrinks a discrepancy-triggering class with the
//     hierarchical-delta-debugging reducer while preserving its
//     five-VM outcome vector.
//
// The heavy lifting lives in the internal packages (classfile,
// bytecode, jimple, jvm, rtlib, coverage, mutation, mcmc, fuzz,
// difftest, reduce, seedgen, experiments); this package re-exports the
// types a downstream user needs and wires defaults.
package classfuzz

import (
	"fmt"

	"repro/internal/classfile"
	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/fuzz"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mutation"
	"repro/internal/reduce"
	"repro/internal/rtlib"
	"repro/internal/seedgen"
)

// Re-exported model and engine types.
type (
	// Class is the mutable Jimple-level class model (the SootClass
	// analogue) that seeds, mutants and reduced classes share.
	Class = jimple.Class
	// Mutator is one of the 129 mutation operators.
	Mutator = mutation.Mutator
	// Criterion selects the coverage-uniqueness discipline.
	Criterion = coverage.Criterion
	// Algorithm names a fuzzing campaign strategy.
	Algorithm = fuzz.Algorithm
	// CampaignConfig parameterises RunCampaign.
	CampaignConfig = fuzz.Config
	// CampaignResult summarises a finished campaign.
	CampaignResult = fuzz.Result
	// VM is one simulated JVM implementation.
	VM = jvm.VM
	// VMSpec describes a VM preset (name, library release, policy).
	VMSpec = jvm.Spec
	// Outcome is one VM execution result.
	Outcome = jvm.Outcome
	// Runner drives differential testing across a VM lineup.
	Runner = difftest.Runner
	// Summary aggregates a differential-testing session.
	Summary = difftest.Summary
	// Vector is one classfile's encoded five-VM outcome sequence.
	Vector = difftest.Vector
)

// Uniqueness criteria of §2.2.3.
const (
	ST   = coverage.ST
	STBR = coverage.STBR
	TR   = coverage.TR
)

// Campaign algorithms of §3.1.2.
const (
	Classfuzz  = fuzz.Classfuzz
	Randfuzz   = fuzz.Randfuzz
	Greedyfuzz = fuzz.Greedyfuzz
	Uniquefuzz = fuzz.Uniquefuzz
)

// NumMutators is the size of the mutation-operator set.
const NumMutators = mutation.TotalMutators

// GenerateSeeds builds a deterministic corpus of n JRE-like seed
// classes.
func GenerateSeeds(n int, seed int64) []*Class {
	return seedgen.Generate(seedgen.DefaultOptions(n, seed))
}

// GenerateSeedFiles builds the corpus directly as classfile bytes.
func GenerateSeedFiles(n int, seed int64) ([][]byte, error) {
	return seedgen.GenerateFiles(seedgen.DefaultOptions(n, seed))
}

// Mutators returns the 129 mutation operators in stable order.
func Mutators() []*Mutator { return mutation.Registry() }

// DefaultCampaign returns a ready-to-run classfuzz[stbr] configuration
// over the given seeds, using HotSpot 9 as the instrumented reference
// VM — the paper's standard setup.
func DefaultCampaign(seeds []*Class, iterations int) CampaignConfig {
	return CampaignConfig{
		Algorithm:  Classfuzz,
		Criterion:  STBR,
		Source:     fuzz.FlatSeeds(seeds),
		Iterations: iterations,
		Rand:       1,
		RefSpec:    jvm.HotSpot9(),
	}
}

// RunCampaign executes a fuzzing campaign (Algorithm 1 or a baseline).
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.RefSpec.Name == "" {
		cfg.RefSpec = jvm.HotSpot9()
	}
	return fuzz.Run(cfg)
}

// StandardVMs returns the Table 3 lineup, each VM bound to its own
// library release.
func StandardVMs() []*VM {
	var vms []*VM
	for _, spec := range jvm.StandardFive() {
		vms = append(vms, jvm.New(spec))
	}
	return vms
}

// NewRunner builds the five-VM differential-testing harness.
func NewRunner() *Runner { return difftest.NewStandardRunner() }

// NewSharedEnvRunner builds a harness whose five VMs share one library
// release — Definition 2's configuration for separating JVM defects
// from compatibility discrepancies. Release is one of "jre7", "jre8",
// "jre9", "classpath".
func NewSharedEnvRunner(release string) (*Runner, error) {
	var r rtlib.Release
	switch release {
	case "jre7":
		r = rtlib.JRE7
	case "jre8":
		r = rtlib.JRE8
	case "jre9":
		r = rtlib.JRE9
	case "classpath":
		r = rtlib.Classpath
	default:
		return nil, fmt.Errorf("classfuzz: unknown release %q", release)
	}
	return difftest.NewSharedEnvRunner(r), nil
}

// DiffTest runs classfiles across the standard five VMs and aggregates
// the outcome vectors.
func DiffTest(classes [][]byte) *Summary {
	return difftest.NewStandardRunner().Evaluate(classes)
}

// Compile lowers a class model to classfile bytes.
func Compile(c *Class) ([]byte, error) {
	f, err := jimple.Lower(c)
	if err != nil {
		return nil, err
	}
	return f.Bytes()
}

// Decompile lifts classfile bytes into the class model.
func Decompile(data []byte) (*Class, error) {
	f, err := classfile.Parse(data)
	if err != nil {
		return nil, err
	}
	return jimple.Lift(f)
}

// PrintClass renders a class in textual Jimple.
func PrintClass(c *Class) string { return jimple.Print(c) }

// DumpClassfile renders classfile bytes javap-style.
func DumpClassfile(data []byte) (string, error) {
	f, err := classfile.Parse(data)
	if err != nil {
		return "", err
	}
	return f.Dump(), nil
}

// ReduceClass shrinks a discrepancy-triggering class while preserving
// its five-VM outcome vector; it returns the reduced class and the
// preserved vector key.
func ReduceClass(c *Class) (*Class, string, error) {
	res, err := reduce.Reduce(c, difftest.NewStandardRunner(), reduce.Options{})
	if err != nil {
		return nil, "", err
	}
	return res.Reduced, res.Vector, nil
}
