# classfuzz-go build targets. Everything is stdlib-only and offline.

GO ?= go

.PHONY: all build test vet lint bench bench-difftest bench-tables race experiments catalog report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis passes over the generated seed corpus (seeds must be
# clean — only mutants may lint dirty), then the determinism linter
# over the engine packages whose results must be a pure function of
# (seed, config).
lint:
	$(GO) run ./cmd/classlint -gen 500 -q
	$(GO) run ./cmd/detlint internal/campaign internal/prng internal/coverage internal/difftest internal/mcmc internal/seedsel

test:
	$(GO) test ./...

# Short mode skips the soak and multi-repeat studies.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Campaign-engine throughput sweep (workers 1/4/8) -> BENCH_campaign.json
# with iters/sec and time-per-test per worker count.
bench:
	$(GO) run ./cmd/campaignbench -out BENCH_campaign.json

# Differential-engine sweep (sequential-reparse baseline vs parse-once
# vs parallel vs warm-memo) -> BENCH_difftest.json.
bench-difftest:
	$(GO) run ./cmd/difftestbench -out BENCH_difftest.json

# The original micro/meso benchmark tables over the whole pipeline.
bench-tables:
	$(GO) test -bench=. -benchmem -run=NONE .

# Regenerate every paper table/figure (quick scale).
experiments:
	$(GO) run ./cmd/experiments

# Regenerate at the paper's scale (1,216 seeds, 21,736-class corpus).
experiments-paper:
	$(GO) run ./cmd/experiments -scale paper

catalog:
	$(GO) run ./cmd/catalog

report:
	$(GO) run ./cmd/report -seeds 100 -iters 1000

clean:
	$(GO) clean ./...
