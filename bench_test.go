package classfuzz

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`). Each
// Benchmark reports the headline statistics of its table via
// b.ReportMetric, so the *shape* of the paper's findings is visible in
// the bench output; `go run ./cmd/experiments` prints the full rows.
//
// Bench-internal scales are smaller than cmd/experiments' defaults so a
// full -bench=. sweep stays fast; the comparisons between algorithms
// hold at any equal budget.

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/experiments"
	"repro/internal/fuzz"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mcmc"
	"repro/internal/mutation"
	"repro/internal/seedgen"
)

import "math/rand"

func benchScale() experiments.Scale {
	return experiments.Scale{SeedCount: 30, Iterations: 200, RandfuzzFactor: 5, CorpusCount: 600, Seed: 1}
}

// BenchmarkPreliminaryStudy regenerates the §1 baseline: the fraction
// of library-corpus classfiles triggering discrepancies across the five
// JVMs (the paper's 1.7 %).
func BenchmarkPreliminaryStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.RunPreliminary(600, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.DiffRate*100, "diff_%")
		b.ReportMetric(float64(p.Distinct), "distinct")
	}
}

// BenchmarkTable4 regenerates the classfile-generation comparison:
// iterations, |GenClasses|, |TestClasses| and succ per algorithm.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sess, err := experiments.NewSession(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		t4 := sess.Table4()
		for _, r := range t4.Rows {
			if r.Campaign == experiments.KeyClassfuzzSTBR {
				b.ReportMetric(float64(r.TestClasses), "stbr_tests")
				b.ReportMetric(r.Succ*100, "stbr_succ_%")
			}
			if r.Campaign == experiments.KeyRandfuzz {
				b.ReportMetric(float64(r.GenClasses), "randfuzz_gen")
			}
		}
	}
}

// BenchmarkTable5 regenerates the top-ten-mutators ranking.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sess, err := experiments.NewSession(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		t5 := sess.Table5()
		if len(t5.Rows) == 0 {
			b.Fatal("empty table 5")
		}
		b.ReportMetric(t5.Rows[0].Rate, "top_mutator_rate")
	}
}

// BenchmarkTable6 regenerates the differential-testing comparison and
// reports the headline diff-rates (library baseline vs classfuzz[stbr]
// suite — the paper's 1.7 % → 11.9 % amplification).
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sess, err := experiments.NewSession(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		t6 := sess.Table6()
		for _, r := range t6.Rows {
			switch r.Set {
			case "library-corpus":
				b.ReportMetric(r.DiffRate*100, "baseline_diff_%")
			case "Test:" + experiments.KeyClassfuzzSTBR:
				b.ReportMetric(r.DiffRate*100, "stbr_diff_%")
				b.ReportMetric(float64(r.Distinct), "stbr_distinct")
			}
		}
	}
}

// BenchmarkTable7 regenerates the per-VM phase histogram of the
// classfuzz[stbr] suite and reports the leniency spread (GIJ invoked
// most, per the paper).
func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sess, err := experiments.NewSession(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		t7 := sess.Table7()
		b.ReportMetric(float64(t7.Counts[4][0]), "gij_invoked")
		b.ReportMetric(float64(t7.Counts[3][0]), "j9_invoked")
	}
}

// BenchmarkFigure4 regenerates the mutator success-rate / selection
// frequency correlation and reports the classfuzz selection bias (mean
// frequency of the top third over the bottom third).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sess, err := experiments.NewSession(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		fig := sess.Figure4()
		third := len(fig.FreqClassfuzz) / 3
		mean := func(xs []float64) float64 {
			s := 0.0
			for _, x := range xs {
				s += x
			}
			return s / float64(len(xs))
		}
		top, bottom := mean(fig.FreqClassfuzz[:third]), mean(fig.FreqClassfuzz[len(fig.FreqClassfuzz)-third:])
		if bottom == 0 {
			bottom = 1e-9
		}
		b.ReportMetric(top/bottom, "selection_bias")
	}
}

// --- ablation benches (the design choices DESIGN.md calls out) -------------

// BenchmarkAblationMCMC compares MCMC mutator selection against uniform
// selection at an equal budget (classfuzz[stbr] vs uniquefuzz — the
// paper's +43 %).
func BenchmarkAblationMCMC(b *testing.B) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(30, 5))
	for i := 0; i < b.N; i++ {
		run := func(alg fuzz.Algorithm) int {
			res, err := fuzz.Run(fuzz.Config{
				Algorithm: alg, Criterion: coverage.STBR, Source: fuzz.FlatSeeds(seeds),
				Iterations: 300, Rand: int64(i) + 11, RefSpec: jvm.HotSpot9(),
			})
			if err != nil {
				b.Fatal(err)
			}
			return len(res.Test)
		}
		mc := run(fuzz.Classfuzz)
		un := run(fuzz.Uniquefuzz)
		b.ReportMetric(float64(mc), "mcmc_tests")
		b.ReportMetric(float64(un), "uniform_tests")
	}
}

// BenchmarkAblationCriterion compares the three uniqueness criteria
// under classfuzz at an equal budget.
func BenchmarkAblationCriterion(b *testing.B) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(30, 5))
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			crit coverage.Criterion
			name string
		}{{coverage.ST, "st_tests"}, {coverage.STBR, "stbr_tests"}, {coverage.TR, "tr_tests"}} {
			res, err := fuzz.Run(fuzz.Config{
				Algorithm: fuzz.Classfuzz, Criterion: c.crit, Source: fuzz.FlatSeeds(seeds),
				Iterations: 300, Rand: 11, RefSpec: jvm.HotSpot9(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(res.Test)), c.name)
		}
	}
}

// BenchmarkAblationSeedPool compares representative-seed recycling
// (Algorithm 1 lines 5/14) against mutating the original seeds only.
func BenchmarkAblationSeedPool(b *testing.B) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(30, 5))
	for i := 0; i < b.N; i++ {
		run := func(noRecycle bool) int {
			res, err := fuzz.Run(fuzz.Config{
				Algorithm: fuzz.Classfuzz, Criterion: coverage.STBR, Source: fuzz.FlatSeeds(seeds),
				Iterations: 300, Rand: 11, RefSpec: jvm.HotSpot9(),
				NoSeedRecycling: noRecycle,
			})
			if err != nil {
				b.Fatal(err)
			}
			return len(res.Test)
		}
		b.ReportMetric(float64(run(false)), "recycling_tests")
		b.ReportMetric(float64(run(true)), "no_recycling_tests")
	}
}

// BenchmarkAblationP sweeps the geometric parameter p around the
// paper's 3/129 choice.
func BenchmarkAblationP(b *testing.B) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(30, 5))
	ps := []struct {
		p    float64
		name string
	}{
		{1.0 / 129, "p_1_129_tests"},
		{3.0 / 129, "p_3_129_tests"},
		{10.0 / 129, "p_10_129_tests"},
	}
	for i := 0; i < b.N; i++ {
		for _, pc := range ps {
			res, err := fuzz.Run(fuzz.Config{
				Algorithm: fuzz.Classfuzz, Criterion: coverage.STBR, Source: fuzz.FlatSeeds(seeds),
				Iterations: 300, Rand: 11, RefSpec: jvm.HotSpot9(), P: pc.p,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(res.Test)), pc.name)
		}
	}
}

// BenchmarkBlindBaseline quantifies §1's motivating claim: blind
// byte-level mutation produces mostly invalid classfiles while the
// structured mutators do not.
func BenchmarkBlindBaseline(b *testing.B) {
	scale := experiments.Scale{SeedCount: 20, Iterations: 200, Seed: 1}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunBlindBaseline(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ByteLoadReject*100, "byte_invalid_%")
		b.ReportMetric(res.RandLoadReject*100, "structured_invalid_%")
	}
}

// --- component micro-benches -------------------------------------------------

// BenchmarkReferenceVMRun measures one instrumented startup-pipeline
// execution (the inner loop of every coverage-directed campaign; the
// analogue of the paper's 90-second GCOV cycle).
func BenchmarkReferenceVMRun(b *testing.B) {
	seeds := GenerateSeeds(1, 1)
	data, err := Compile(seeds[0])
	if err != nil {
		b.Fatal(err)
	}
	vm := jvm.New(jvm.HotSpot9())
	rec := coverage.NewRecorder(jvm.ProbeRegistry())
	vm.SetRecorder(rec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Reset()
		vm.Run(data)
	}
}

// BenchmarkDiffTestRun measures one five-VM differential execution.
func BenchmarkDiffTestRun(b *testing.B) {
	seeds := GenerateSeeds(1, 1)
	data, err := Compile(seeds[0])
	if err != nil {
		b.Fatal(err)
	}
	runner := difftest.NewStandardRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Run(data)
	}
}

// BenchmarkMutateLowerCycle measures the clone→mutate→lower→serialise
// cycle (the mutant-production cost of one campaign iteration).
func BenchmarkMutateLowerCycle(b *testing.B) {
	seed := GenerateSeeds(1, 1)[0]
	muts := mutation.Registry()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := seed.Clone()
		muts[i%len(muts)].Apply(c, rng)
		f, err := jimple.Lower(c)
		if err != nil {
			continue
		}
		if _, err := f.Bytes(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCMCStep measures one Metropolis–Hastings selection step.
func BenchmarkMCMCStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := mcmc.NewSampler(mutation.TotalMutators, mcmc.DefaultP(mutation.TotalMutators), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := s.Next(rng)
		s.Record(id, i%7 == 0)
	}
}
