package classfuzz

// Cross-module integration and soak tests: the whole pipeline under
// randomized stress, checking global invariants rather than individual
// behaviours.

import (
	"math/rand"
	"testing"

	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/fuzz"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mutation"
	"repro/internal/seedgen"
)

// TestSoakRandomMutationChainsNeverPanic applies chains of random
// mutators (not just single ones) and runs every product on all five
// VMs — the aggressive mode a long fuzzing campaign effectively reaches
// once mutants become seeds.
func TestSoakRandomMutationChainsNeverPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rng := rand.New(rand.NewSource(99))
	seeds := seedgen.Generate(seedgen.DefaultOptions(20, 3))
	muts := mutation.Registry()
	vms := make([]*jvm.VM, 0, 5)
	for _, spec := range jvm.StandardFive() {
		vms = append(vms, jvm.New(spec))
	}
	for i := 0; i < 150; i++ {
		c := seeds[rng.Intn(len(seeds))].Clone()
		depth := 1 + rng.Intn(5)
		for d := 0; d < depth; d++ {
			muts[rng.Intn(len(muts))].Apply(c, rng)
		}
		f, err := jimple.Lower(c)
		if err != nil {
			continue // a chain can produce an unserialisable model; fine
		}
		data, err := f.Bytes()
		if err != nil {
			continue
		}
		for _, vm := range vms {
			o := vm.Run(data)
			if o.Phase < jvm.PhaseInvoked || o.Phase > jvm.PhaseRuntime {
				t.Fatalf("impossible phase %d", o.Phase)
			}
		}
	}
}

// TestCampaignInvariants checks structural invariants that every
// algorithm must uphold at any budget.
func TestCampaignInvariants(t *testing.T) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(25, 8))
	for _, alg := range []fuzz.Algorithm{fuzz.Classfuzz, fuzz.Uniquefuzz, fuzz.Greedyfuzz, fuzz.Randfuzz} {
		res, err := fuzz.Run(fuzz.Config{
			Algorithm: alg, Criterion: coverage.STBR, Source: fuzz.FlatSeeds(seeds),
			Iterations: 120, Rand: 5, RefSpec: jvm.HotSpot9(),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Every accepted class is in Gen, marked, and has bytes.
		accepted := map[*fuzz.GenClass]bool{}
		for _, g := range res.Gen {
			if g.Accepted {
				accepted[g] = true
			}
		}
		for _, g := range res.Test {
			if !g.Accepted || !accepted[g] {
				t.Errorf("%s: Test class not a marked Gen class", alg)
			}
			if len(g.Data) == 0 {
				t.Errorf("%s: accepted class without bytes", alg)
			}
			if _, err := Decompile(g.Data); err != nil {
				t.Errorf("%s: accepted class %s does not even parse: %v", alg, g.Name, err)
			}
		}
		// Iterations bound generation.
		if len(res.Gen) > res.Iterations {
			t.Errorf("%s: generated more classes than iterations", alg)
		}
		// Mutator bookkeeping sums.
		sel := 0
		for _, st := range res.MutatorStats {
			sel += st.Selected
		}
		if alg == fuzz.Classfuzz && sel != res.Iterations {
			t.Errorf("%s: selections %d != iterations %d", alg, sel, res.Iterations)
		}
	}
}

// TestCoverageUniquenessHoldsOverSuite re-validates the acceptance
// criterion post-hoc: re-running every accepted class on a fresh
// reference VM must reproduce pairwise-distinct coverage statistics
// under [stbr].
func TestCoverageUniquenessHoldsOverSuite(t *testing.T) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(25, 4))
	res, err := fuzz.Run(fuzz.Config{
		Algorithm: fuzz.Classfuzz, Criterion: coverage.STBR, Source: fuzz.FlatSeeds(seeds),
		Iterations: 250, Rand: 5, RefSpec: jvm.HotSpot9(),
	})
	if err != nil {
		t.Fatal(err)
	}
	vm := jvm.New(jvm.HotSpot9())
	rec := coverage.NewRecorder(jvm.ProbeRegistry())
	vm.SetRecorder(rec)
	seen := map[coverage.Stats]string{}
	for _, g := range res.Test {
		rec.Reset()
		vm.Run(g.Data)
		st := rec.Trace().Stats()
		if st != g.Stats {
			t.Fatalf("%s: coverage not reproducible: campaign %v, replay %v", g.Name, g.Stats, st)
		}
		if prev, dup := seen[st]; dup {
			t.Fatalf("suite violates [stbr]: %s and %s share stats %v", prev, g.Name, st)
		}
		seen[st] = g.Name
	}
	// Note: seed traces occupy stats slots too, so the suite plus seeds
	// being distinct is the stronger property the engine enforces; the
	// accepted subset alone must already be pairwise distinct.
}

// TestFacadeAgainstInternalConsistency: the facade constants mirror the
// internal enums they alias.
func TestFacadeAgainstInternalConsistency(t *testing.T) {
	if ST != coverage.ST || STBR != coverage.STBR || TR != coverage.TR {
		t.Error("criterion aliases drifted")
	}
	if Classfuzz != fuzz.Classfuzz || Randfuzz != fuzz.Randfuzz {
		t.Error("algorithm aliases drifted")
	}
	if NumMutators != len(mutation.Registry()) {
		t.Error("mutator count drifted")
	}
	if len(difftest.NewStandardRunner().VMs) != 5 {
		t.Error("standard runner must hold five VMs")
	}
}
