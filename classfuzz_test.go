package classfuzz

import (
	"strings"
	"testing"
)

func TestEndToEndWorkflow(t *testing.T) {
	// The Figure 1 pipeline through the public API only.
	seeds := GenerateSeeds(20, 9)
	if len(seeds) != 20 {
		t.Fatalf("seeds: %d", len(seeds))
	}
	res, err := RunCampaign(DefaultCampaign(seeds, 150))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Test) == 0 {
		t.Fatal("campaign accepted nothing")
	}
	var classes [][]byte
	for _, g := range res.Test {
		classes = append(classes, g.Data)
	}
	sum := DiffTest(classes)
	if sum.Total != len(classes) {
		t.Errorf("summary covers %d of %d", sum.Total, len(classes))
	}
	if sum.Discrepancies == 0 {
		t.Error("no discrepancies found by the representative suite")
	}
}

func TestMutatorsExposed(t *testing.T) {
	ms := Mutators()
	if len(ms) != NumMutators || NumMutators != 129 {
		t.Fatalf("%d mutators", len(ms))
	}
}

func TestCompileDecompileRoundTrip(t *testing.T) {
	seeds := GenerateSeeds(5, 4)
	for _, c := range seeds {
		data, err := Compile(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		back, err := Decompile(data)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if back.Name != c.Name || back.Super != c.Super {
			t.Errorf("%s: identity lost", c.Name)
		}
		if !strings.Contains(PrintClass(back), back.Name) {
			t.Error("PrintClass missing class name")
		}
		dump, err := DumpClassfile(data)
		if err != nil || !strings.Contains(dump, "major version") {
			t.Errorf("dump: %v", err)
		}
	}
}

func TestStandardVMsRunSeeds(t *testing.T) {
	vms := StandardVMs()
	if len(vms) != 5 {
		t.Fatalf("%d VMs", len(vms))
	}
	data, err := GenerateSeedFiles(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range vms {
		o := vm.Run(data[0])
		_ = o.String()
	}
}

func TestSharedEnvRunnerFactory(t *testing.T) {
	for _, rel := range []string{"jre7", "jre8", "jre9", "classpath"} {
		if _, err := NewSharedEnvRunner(rel); err != nil {
			t.Errorf("%s: %v", rel, err)
		}
	}
	if _, err := NewSharedEnvRunner("jre99"); err == nil {
		t.Error("unknown release must error")
	}
}

func TestReduceClassThroughFacade(t *testing.T) {
	seeds := GenerateSeeds(10, 6)
	res, err := RunCampaign(DefaultCampaign(seeds, 200))
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner()
	for _, g := range res.Test {
		if g.Class == nil {
			continue
		}
		v := runner.Run(g.Data)
		if !v.Discrepant() {
			continue
		}
		reduced, vec, err := ReduceClass(g.Class)
		if err != nil {
			t.Fatal(err)
		}
		if reduced == nil || vec == "" {
			t.Fatal("empty reduction result")
		}
		return
	}
	// Campaigns without KeepClasses have no models; craft one directly.
	c := GenerateSeeds(1, 1)[0]
	reduced, vec, err := ReduceClass(c)
	if err != nil {
		t.Fatal(err)
	}
	if reduced == nil || len(vec) != 5 {
		t.Fatalf("reduction: %v %q", reduced, vec)
	}
}
