package descriptor

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseField(t *testing.T) {
	cases := []struct {
		in   string
		kind byte
		dims int
		cls  string
	}{
		{"I", 'I', 0, ""},
		{"J", 'J', 0, ""},
		{"Z", 'Z', 0, ""},
		{"Ljava/lang/String;", 'L', 0, "java/lang/String"},
		{"[I", 'I', 1, ""},
		{"[[[D", 'D', 3, ""},
		{"[Ljava/util/Map;", 'L', 1, "java/util/Map"},
	}
	for _, c := range cases {
		got, err := ParseField(c.in)
		if err != nil {
			t.Errorf("ParseField(%q): %v", c.in, err)
			continue
		}
		if got.Kind != c.kind || got.Dims != c.dims || got.ClassName != c.cls {
			t.Errorf("ParseField(%q) = %+v", c.in, got)
		}
		if got.String() != c.in {
			t.Errorf("round trip %q -> %q", c.in, got.String())
		}
	}
}

func TestParseFieldErrors(t *testing.T) {
	for _, in := range []string{"", "V", "X", "L;", "Ljava/lang/String", "II", "[", "[V", "Ia"} {
		if _, err := ParseField(in); err == nil {
			t.Errorf("ParseField(%q) should fail", in)
		}
	}
}

func TestParseMethod(t *testing.T) {
	m, err := ParseMethod("(ILjava/lang/String;[J)V")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Params) != 3 {
		t.Fatalf("params = %d, want 3", len(m.Params))
	}
	if !m.Return.IsVoid() {
		t.Error("return should be void")
	}
	if m.ParamSlots() != 1+1+1 {
		t.Errorf("slots = %d, want 3", m.ParamSlots())
	}
	m2, err := ParseMethod("(JD)J")
	if err != nil {
		t.Fatal(err)
	}
	if m2.ParamSlots() != 4 {
		t.Errorf("wide slots = %d, want 4", m2.ParamSlots())
	}
	if m2.String() != "(JD)J" {
		t.Errorf("round trip = %q", m2.String())
	}
	empty, err := ParseMethod("()V")
	if err != nil || len(empty.Params) != 0 {
		t.Errorf("()V: %v %v", empty, err)
	}
}

func TestParseMethodErrors(t *testing.T) {
	for _, in := range []string{"", "()", "I", "(V)V", "(I", "(I)VV", "(I)", ")V", "(I)[V"} {
		if _, err := ParseMethod(in); err == nil {
			t.Errorf("ParseMethod(%q) should fail", in)
		}
	}
}

func TestTypeProperties(t *testing.T) {
	if !Long.IsWide() || !Double.IsWide() || Int.IsWide() {
		t.Error("wideness misclassified")
	}
	if Void.Slots() != 0 || Long.Slots() != 2 || Int.Slots() != 1 {
		t.Error("slot counts wrong")
	}
	obj := Object("java/lang/Object")
	if !obj.IsReference() || obj.IsPrimitive() {
		t.Error("object classification wrong")
	}
	arr := Array(Int, 2)
	if !arr.IsReference() || arr.IsWide() {
		t.Error("array classification wrong")
	}
	if arr.String() != "[[I" {
		t.Errorf("array string = %q", arr.String())
	}
}

func TestJavaRendering(t *testing.T) {
	cases := map[string]string{
		"I":                  "int",
		"[[Z":                "boolean[][]",
		"Ljava/lang/String;": "java.lang.String",
		"[Ljava/util/List;":  "java.util.List[]",
		"J":                  "long",
	}
	for in, want := range cases {
		typ, err := ParseField(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := typ.Java(); got != want {
			t.Errorf("Java(%q) = %q, want %q", in, got, want)
		}
	}
	if Void.Java() != "void" {
		t.Error("void rendering")
	}
}

func TestValidClassName(t *testing.T) {
	valid := []string{"java/lang/Object", "M123", "a/b/c", "[I", "[Ljava/lang/String;"}
	for _, s := range valid {
		if !ValidClassName(s) {
			t.Errorf("%q should be valid", s)
		}
	}
	invalid := []string{"", "a//b", "/a", "a/", "a;b", "a.b", "ja[va"}
	for _, s := range invalid {
		if ValidClassName(s) {
			t.Errorf("%q should be invalid", s)
		}
	}
}

// randomType builds a random valid descriptor Type.
func randomType(rng *rand.Rand, allowVoid bool) Type {
	kinds := []byte{'B', 'C', 'D', 'F', 'I', 'J', 'S', 'Z', 'L'}
	k := kinds[rng.Intn(len(kinds))]
	t := Type{Kind: k}
	if k == 'L' {
		names := []string{"java/lang/Object", "java/lang/String", "a/b/C", "M1"}
		t.ClassName = names[rng.Intn(len(names))]
	}
	t.Dims = rng.Intn(4)
	if allowVoid && t.Dims == 0 && rng.Intn(8) == 0 {
		return Void
	}
	return t
}

// TestPropertyFieldRoundTrip: String∘ParseField is the identity on
// generated types.
func TestPropertyFieldRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		typ := randomType(rng, false)
		parsed, err := ParseField(typ.String())
		if err != nil {
			return false
		}
		return parsed == typ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMethodRoundTrip: String∘ParseMethod is the identity.
func TestPropertyMethodRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Method{Return: randomType(rng, true)}
		n := rng.Intn(6)
		for i := 0; i < n; i++ {
			m.Params = append(m.Params, randomType(rng, false))
		}
		parsed, err := ParseMethod(m.String())
		if err != nil {
			return false
		}
		if parsed.Return != m.Return || len(parsed.Params) != len(m.Params) {
			return false
		}
		for i := range m.Params {
			if parsed.Params[i] != m.Params[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestValidScannersMatchParsers pins the allocation-free validity
// scanners to the parsers: for a corpus of legal and garbage strings
// (including randomly generated ones), ValidField/ValidMethod and the
// void-return scan must agree exactly with ParseField/ParseMethod.
func TestValidScannersMatchParsers(t *testing.T) {
	corpus := []string{
		"", "I", "V", "[I", "[[J", "Ljava/lang/String;", "[Ljava/lang/Object;",
		"L;", "L", "Lfoo", "X", "[V", "[[V", "II", "Ijunk", "Ljava/lang/String;;",
		"()V", "()I", "(I)V", "(Ljava/lang/String;[I)J", "(V)V", "([V)V",
		"(", ")", "()", "()X", "()VV", "(I", "(L;)V", "(I)Lfoo;", "(I)Lfoo",
		"()[V", "()[[Ljava/a/b;", "(BCDFIJSZ)Z", "(Ljava/lang/String;",
	}
	// Deep array dims around the 255 limit.
	deep := strings.Repeat("[", 255) + "I"
	tooDeep := strings.Repeat("[", 256) + "I"
	corpus = append(corpus, deep, tooDeep, "("+deep+")V", "("+tooDeep+")V")
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("BCDFIJSZVL[();/ajX")
	for i := 0; i < 3000; i++ {
		n := rng.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		corpus = append(corpus, string(b))
	}
	for _, s := range corpus {
		_, ferr := ParseField(s)
		if got, want := ValidField(s), ferr == nil; got != want {
			t.Errorf("ValidField(%q) = %v, ParseField err = %v", s, got, ferr)
		}
		md, merr := ParseMethod(s)
		if got, want := ValidMethod(s), merr == nil; got != want {
			t.Errorf("ValidMethod(%q) = %v, ParseMethod err = %v", s, got, merr)
		}
		wantVoid := merr == nil && md.Return.IsVoid()
		if got := ValidMethodReturnsVoid(s); got != wantVoid {
			t.Errorf("ValidMethodReturnsVoid(%q) = %v, want %v", s, got, wantVoid)
		}
	}
}
