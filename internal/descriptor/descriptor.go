// Package descriptor parses and manipulates JVM field and method
// descriptors (JVMS §4.3), the compact type grammar used throughout
// classfiles: B C D F I J S Z for primitives, Lname; for references,
// and [ prefixes for array dimensions.
package descriptor

import (
	"fmt"
	"strings"
)

// Type is one parsed descriptor component.
type Type struct {
	// Kind is the base kind character: one of 'B','C','D','F','I','J',
	// 'S','Z','L','V'. Arrays keep the element kind here with Dims > 0.
	Kind byte
	// ClassName is the internal (slash-separated) class name when
	// Kind == 'L'.
	ClassName string
	// Dims is the number of array dimensions.
	Dims int
}

// Void is the V return type.
var Void = Type{Kind: 'V'}

// Primitive constructors for common types.
var (
	Int     = Type{Kind: 'I'}
	Long    = Type{Kind: 'J'}
	Float   = Type{Kind: 'F'}
	Double  = Type{Kind: 'D'}
	Boolean = Type{Kind: 'Z'}
	Byte    = Type{Kind: 'B'}
	Char    = Type{Kind: 'C'}
	Short   = Type{Kind: 'S'}
)

// Object returns the reference type for an internal class name.
func Object(internalName string) Type { return Type{Kind: 'L', ClassName: internalName} }

// Array returns t with dims added array dimensions.
func Array(t Type, dims int) Type {
	t.Dims += dims
	return t
}

// IsVoid reports whether t is the void pseudo-type.
func (t Type) IsVoid() bool { return t.Kind == 'V' && t.Dims == 0 }

// IsReference reports whether t is a class or array reference.
func (t Type) IsReference() bool { return t.Dims > 0 || t.Kind == 'L' }

// IsPrimitive reports whether t is a non-array primitive value type.
func (t Type) IsPrimitive() bool { return t.Dims == 0 && t.Kind != 'L' && t.Kind != 'V' }

// IsWide reports whether t occupies two stack/local slots.
func (t Type) IsWide() bool { return t.Dims == 0 && (t.Kind == 'J' || t.Kind == 'D') }

// Slots returns the number of operand-stack/local-variable slots the
// type occupies: 0 for void, 2 for long/double, otherwise 1.
func (t Type) Slots() int {
	if t.IsVoid() {
		return 0
	}
	if t.IsWide() {
		return 2
	}
	return 1
}

// encodedLen is the byte length of t in descriptor syntax.
func (t Type) encodedLen() int {
	n := t.Dims + 1
	if t.Kind == 'L' {
		n += len(t.ClassName) + 1
	}
	return n
}

// appendTo renders t into b in descriptor syntax.
func (t Type) appendTo(b []byte) []byte {
	for i := 0; i < t.Dims; i++ {
		b = append(b, '[')
	}
	if t.Kind == 'L' {
		b = append(b, 'L')
		b = append(b, t.ClassName...)
		b = append(b, ';')
	} else {
		b = append(b, t.Kind)
	}
	return b
}

// String renders t back into descriptor syntax.
func (t Type) String() string {
	return string(t.appendTo(make([]byte, 0, t.encodedLen())))
}

// Java renders t in Java-source style ("java.lang.String[]", "int").
func (t Type) Java() string {
	var base string
	switch t.Kind {
	case 'B':
		base = "byte"
	case 'C':
		base = "char"
	case 'D':
		base = "double"
	case 'F':
		base = "float"
	case 'I':
		base = "int"
	case 'J':
		base = "long"
	case 'S':
		base = "short"
	case 'Z':
		base = "boolean"
	case 'V':
		base = "void"
	case 'L':
		base = strings.ReplaceAll(t.ClassName, "/", ".")
	default:
		base = fmt.Sprintf("?%c", t.Kind)
	}
	return base + strings.Repeat("[]", t.Dims)
}

// Method is a parsed method descriptor.
type Method struct {
	Params []Type
	Return Type
}

// String renders m back into descriptor syntax.
func (m Method) String() string {
	n := 2 + m.Return.encodedLen()
	for _, p := range m.Params {
		n += p.encodedLen()
	}
	b := make([]byte, 0, n)
	b = append(b, '(')
	for _, p := range m.Params {
		b = p.appendTo(b)
	}
	b = append(b, ')')
	b = m.Return.appendTo(b)
	return string(b)
}

// ParamSlots returns the total argument slot count (not counting the
// receiver).
func (m Method) ParamSlots() int {
	n := 0
	for _, p := range m.Params {
		n += p.Slots()
	}
	return n
}

// parseOne parses a single type starting at s[i], returning the type and
// the index just past it.
func parseOne(s string, i int) (Type, int, error) {
	dims := 0
	for i < len(s) && s[i] == '[' {
		dims++
		i++
		if dims > 255 {
			return Type{}, i, fmt.Errorf("descriptor: more than 255 array dimensions")
		}
	}
	if i >= len(s) {
		return Type{}, i, fmt.Errorf("descriptor: truncated after array prefix")
	}
	switch s[i] {
	case 'B', 'C', 'D', 'F', 'I', 'J', 'S', 'Z':
		return Type{Kind: s[i], Dims: dims}, i + 1, nil
	case 'V':
		if dims > 0 {
			return Type{}, i, fmt.Errorf("descriptor: array of void")
		}
		return Type{Kind: 'V'}, i + 1, nil
	case 'L':
		end := strings.IndexByte(s[i:], ';')
		if end < 0 {
			return Type{}, i, fmt.Errorf("descriptor: unterminated class name")
		}
		name := s[i+1 : i+end]
		if name == "" {
			return Type{}, i, fmt.Errorf("descriptor: empty class name")
		}
		return Type{Kind: 'L', ClassName: name, Dims: dims}, i + end + 1, nil
	default:
		return Type{}, i, fmt.Errorf("descriptor: invalid type character %q", s[i])
	}
}

// ParseField parses a field descriptor. Void is not a legal field type.
func ParseField(s string) (Type, error) {
	t, i, err := parseOne(s, 0)
	if err != nil {
		return Type{}, err
	}
	if i != len(s) {
		return Type{}, fmt.Errorf("descriptor: trailing characters in field descriptor %q", s)
	}
	if t.IsVoid() {
		return Type{}, fmt.Errorf("descriptor: void field descriptor")
	}
	return t, nil
}

// ParseMethod parses a method descriptor like (ILjava/lang/String;)V.
func ParseMethod(s string) (Method, error) {
	if len(s) == 0 || s[0] != '(' {
		return Method{}, fmt.Errorf("descriptor: method descriptor %q must start with '('", s)
	}
	i := 1
	var params []Type
	for i < len(s) && s[i] != ')' {
		t, next, err := parseOne(s, i)
		if err != nil {
			return Method{}, err
		}
		if t.IsVoid() {
			return Method{}, fmt.Errorf("descriptor: void parameter in %q", s)
		}
		params = append(params, t)
		i = next
	}
	if i >= len(s) {
		return Method{}, fmt.Errorf("descriptor: missing ')' in %q", s)
	}
	i++ // consume ')'
	ret, next, err := parseOne(s, i)
	if err != nil {
		return Method{}, err
	}
	if next != len(s) {
		return Method{}, fmt.Errorf("descriptor: trailing characters in %q", s)
	}
	return Method{Params: params, Return: ret}, nil
}

// validOne scans one type starting at s[i] without allocating,
// accepting exactly what parseOne accepts. It returns the index just
// past the type, whether it was void, and validity.
func validOne(s string, i int) (next int, isVoid, ok bool) {
	dims := 0
	for i < len(s) && s[i] == '[' {
		dims++
		i++
		if dims > 255 {
			return i, false, false
		}
	}
	if i >= len(s) {
		return i, false, false
	}
	switch s[i] {
	case 'B', 'C', 'D', 'F', 'I', 'J', 'S', 'Z':
		return i + 1, false, true
	case 'V':
		return i + 1, true, dims == 0
	case 'L':
		end := strings.IndexByte(s[i:], ';')
		if end < 2 { // missing ';' or empty class name
			return i, false, false
		}
		return i + end + 1, false, true
	default:
		return i, false, false
	}
}

// ValidField reports whether s is a syntactically legal field
// descriptor. Equivalent to ParseField(s) == nil, but a pure scan —
// no Type, no error values.
func ValidField(s string) bool {
	next, isVoid, ok := validOne(s, 0)
	return ok && !isVoid && next == len(s)
}

// scanMethod validates a method descriptor like (ILjava/lang/String;)V
// without allocating, reporting validity and whether the return type
// is void. Accepts exactly what ParseMethod accepts.
func scanMethod(s string) (voidReturn, valid bool) {
	if len(s) == 0 || s[0] != '(' {
		return false, false
	}
	i := 1
	for i < len(s) && s[i] != ')' {
		next, isVoid, ok := validOne(s, i)
		if !ok || isVoid {
			return false, false
		}
		i = next
	}
	if i >= len(s) {
		return false, false
	}
	i++ // consume ')'
	next, isVoid, ok := validOne(s, i)
	if !ok || next != len(s) {
		return false, false
	}
	return isVoid, true
}

// ValidMethod reports whether s is a syntactically legal method descriptor.
func ValidMethod(s string) bool {
	_, ok := scanMethod(s)
	return ok
}

// ValidMethodReturnsVoid reports whether s is a legal method
// descriptor whose return type is void, in one allocation-free scan.
func ValidMethodReturnsVoid(s string) bool {
	v, ok := scanMethod(s)
	return ok && v
}

// ValidClassName reports whether s is a plausible internal class name:
// nonempty slash-separated segments without descriptor metacharacters.
// The JVM spec is permissive here; we reject only what all real VMs
// reject (empty names, stray ';', '[' in the middle).
func ValidClassName(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '[' {
		// Array type used in a class context: must be a valid field descriptor.
		return ValidField(s)
	}
	// Walk segments in place (the equivalent of splitting on '/'): no
	// empty segment, no descriptor metacharacters inside one.
	segLen := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '/':
			if segLen == 0 {
				return false
			}
			segLen = 0
		case ';', '[', '.':
			return false
		default:
			segLen++
		}
	}
	return segLen > 0
}
