package bytecode

import (
	"testing"
)

func TestLookupCoversFullInstructionSet(t *testing.T) {
	// Every opcode from nop through jsr_w must be defined contiguously.
	for op := 0x00; op <= 0xc9; op++ {
		if _, ok := Lookup(Opcode(op)); !ok {
			t.Errorf("opcode 0x%02x undefined but should be part of the instruction set", op)
		}
	}
	// Reserved opcodes.
	for _, op := range []Opcode{Breakpoint, Impdep1, Impdep2} {
		if _, ok := Lookup(op); !ok {
			t.Errorf("reserved opcode 0x%02x should be defined", byte(op))
		}
	}
	// The gap 0xcb..0xfd must be undefined.
	for op := 0xcb; op <= 0xfd; op++ {
		if _, ok := Lookup(Opcode(op)); ok {
			t.Errorf("opcode 0x%02x should be undefined", op)
		}
	}
}

func TestMnemonics(t *testing.T) {
	cases := map[Opcode]string{
		Nop:             "nop",
		Aload0:          "aload_0",
		Iconst5:         "iconst_5",
		IfIcmpge:        "if_icmpge",
		Invokevirtual:   "invokevirtual",
		Invokeinterface: "invokeinterface",
		Tableswitch:     "tableswitch",
		Wide:            "wide",
		GotoW:           "goto_w",
		Dup2X2:          "dup2_x2",
	}
	for op, want := range cases {
		if got := op.Mnemonic(); got != want {
			t.Errorf("Mnemonic(0x%02x) = %q, want %q", byte(op), got, want)
		}
	}
	if got := Opcode(0xcb).Mnemonic(); got != "op_0xcb" {
		t.Errorf("undefined mnemonic = %q", got)
	}
}

func TestPredicates(t *testing.T) {
	if !Goto.IsBranch() || !Ifeq.IsBranch() || !GotoW.IsBranch() {
		t.Error("goto/ifeq/goto_w must be branches")
	}
	if Tableswitch.IsBranch() {
		t.Error("tableswitch is not an offset-operand branch")
	}
	if !Ifnull.IsConditionalBranch() || Goto.IsConditionalBranch() {
		t.Error("conditional branch misclassified")
	}
	for _, op := range []Opcode{Ireturn, Lreturn, Freturn, Dreturn, Areturn, Return} {
		if !op.IsReturn() {
			t.Errorf("%s should be a return", op.Mnemonic())
		}
	}
	if Athrow.IsReturn() {
		t.Error("athrow is not a return")
	}
	for _, op := range []Opcode{Invokevirtual, Invokespecial, Invokestatic, Invokeinterface, Invokedynamic} {
		if !op.IsInvoke() {
			t.Errorf("%s should be an invoke", op.Mnemonic())
		}
	}
	for _, op := range []Opcode{Goto, GotoW, Athrow, Return, Areturn, Tableswitch, Lookupswitch, Ret} {
		if !op.EndsBlock() {
			t.Errorf("%s should end a basic block", op.Mnemonic())
		}
	}
	if Ifeq.EndsBlock() || Invokestatic.EndsBlock() {
		t.Error("conditional branch / invoke must fall through")
	}
}

func TestStackEffects(t *testing.T) {
	cases := []struct {
		op        Opcode
		pop, push int8
	}{
		{Nop, 0, 0},
		{Iconst0, 0, 1},
		{Lconst0, 0, 2},
		{Dup, 1, 2},
		{Dup2X2, 4, 6},
		{Iadd, 2, 1},
		{Ladd, 4, 2},
		{Lcmp, 4, 1},
		{Iastore, 3, 0},
		{Lastore, 4, 0},
		{Athrow, 1, 0},
		{Arraylength, 1, 1},
	}
	for _, c := range cases {
		in, ok := Lookup(c.op)
		if !ok {
			t.Fatalf("%s undefined", c.op.Mnemonic())
		}
		if in.Pop != c.pop || in.Push != c.push {
			t.Errorf("%s stack effect = (%d,%d), want (%d,%d)", c.op.Mnemonic(), in.Pop, in.Push, c.pop, c.push)
		}
	}
	for _, op := range []Opcode{Invokevirtual, Invokestatic, Getstatic, Putfield, Multianewarray} {
		in, _ := Lookup(op)
		if in.Pop != VariableStack && in.Push != VariableStack {
			t.Errorf("%s must have a variable stack effect", op.Mnemonic())
		}
	}
}

func TestArrayTypeCodes(t *testing.T) {
	valid := map[ArrayTypeCode]string{
		TBoolean: "Z", TChar: "C", TFloat: "F", TDouble: "D",
		TByte: "B", TShort: "S", TInt: "I", TLong: "J",
	}
	for c, want := range valid {
		if !c.Valid() {
			t.Errorf("type code %d should be valid", c)
		}
		if got := c.Descriptor(); got != want {
			t.Errorf("Descriptor(%d) = %q, want %q", c, got, want)
		}
	}
	for _, c := range []ArrayTypeCode{0, 1, 2, 3, 12, 255} {
		if c.Valid() {
			t.Errorf("type code %d should be invalid", c)
		}
	}
}
