package bytecode

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Instruction is one decoded JVM instruction at a byte offset (PC) in a
// Code attribute. Operand fields are populated according to the opcode's
// OperandKind; unused fields stay at their zero values.
type Instruction struct {
	PC int    // byte offset of the opcode within the code array
	Op Opcode // the opcode (for wide instructions, the modified opcode is in WideOp)

	// Operand values, populated per OperandKind:
	Imm      int32 // bipush/sipush immediate, iinc constant
	CPIndex  uint16
	Local    uint16 // local variable index (byte form or wide form)
	Branch   int32  // signed branch offset relative to PC
	Count    byte   // invokeinterface count, multianewarray dimensions
	WideOp   Opcode // modified opcode of a wide instruction
	ArrayTyp ArrayTypeCode

	// Switch payload (tableswitch/lookupswitch).
	SwitchDefault int32
	SwitchLow     int32   // tableswitch only
	SwitchHigh    int32   // tableswitch only
	SwitchKeys    []int32 // lookupswitch only
	SwitchOffsets []int32 // jump offsets relative to PC

	size int // encoded size in bytes
}

// Size returns the number of bytes this instruction occupies in the
// code array (including the opcode byte and switch padding).
func (in *Instruction) Size() int { return in.size }

// Targets returns the absolute PCs this instruction may branch to,
// excluding fall-through. Nil for non-branching instructions.
func (in *Instruction) Targets() []int {
	switch {
	case in.Op.IsBranch():
		return []int{in.PC + int(in.Branch)}
	case in.Op == Tableswitch, in.Op == Lookupswitch:
		ts := make([]int, 0, len(in.SwitchOffsets)+1)
		ts = append(ts, in.PC+int(in.SwitchDefault))
		for _, off := range in.SwitchOffsets {
			ts = append(ts, in.PC+int(off))
		}
		return ts
	}
	return nil
}

// String renders the instruction in a javap-like form.
func (in *Instruction) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4d: %s", in.PC, in.Op.Mnemonic())
	info, _ := Lookup(in.Op)
	switch info.Kind {
	case OpByte:
		if in.Op == Newarray {
			fmt.Fprintf(&b, " %s", in.ArrayTyp.Descriptor())
		} else {
			fmt.Fprintf(&b, " %d", in.Imm)
		}
	case OpShort:
		fmt.Fprintf(&b, " %d", in.Imm)
	case OpCPByte, OpCPShort, OpInvokeDynamic:
		fmt.Fprintf(&b, " #%d", in.CPIndex)
	case OpLocalByte:
		fmt.Fprintf(&b, " %d", in.Local)
	case OpBranch2, OpBranch4:
		fmt.Fprintf(&b, " %d", in.PC+int(in.Branch))
	case OpIinc:
		fmt.Fprintf(&b, " %d, %d", in.Local, in.Imm)
	case OpInvokeInterface:
		fmt.Fprintf(&b, " #%d, %d", in.CPIndex, in.Count)
	case OpMultianewarray:
		fmt.Fprintf(&b, " #%d, %d", in.CPIndex, in.Count)
	case OpWide:
		fmt.Fprintf(&b, " %s %d", in.WideOp.Mnemonic(), in.Local)
		if in.WideOp == Iinc {
			fmt.Fprintf(&b, ", %d", in.Imm)
		}
	case OpTableswitch:
		fmt.Fprintf(&b, " {default: %d, %d..%d}", in.PC+int(in.SwitchDefault), in.SwitchLow, in.SwitchHigh)
	case OpLookupswitch:
		fmt.Fprintf(&b, " {default: %d, %d pairs}", in.PC+int(in.SwitchDefault), len(in.SwitchKeys))
	}
	return b.String()
}

// DecodeError reports a malformed code array.
type DecodeError struct {
	PC     int
	Op     Opcode
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("bytecode: invalid instruction at pc %d (opcode 0x%02x %s): %s",
		e.PC, byte(e.Op), e.Op.Mnemonic(), e.Reason)
}

// DecodeOne decodes the single instruction starting at code[pc].
func DecodeOne(code []byte, pc int) (*Instruction, error) {
	if pc < 0 || pc >= len(code) {
		return nil, &DecodeError{PC: pc, Reason: "pc out of range"}
	}
	op := Opcode(code[pc])
	info, ok := Lookup(op)
	if !ok {
		return nil, &DecodeError{PC: pc, Op: op, Reason: "undefined opcode"}
	}
	in := &Instruction{PC: pc, Op: op}
	need := func(n int) error {
		if pc+1+n > len(code) {
			return &DecodeError{PC: pc, Op: op, Reason: "truncated operands"}
		}
		return nil
	}
	switch info.Kind {
	case OpNone:
		in.size = 1
	case OpByte:
		if err := need(1); err != nil {
			return nil, err
		}
		if op == Newarray {
			in.ArrayTyp = ArrayTypeCode(code[pc+1])
		} else {
			in.Imm = int32(int8(code[pc+1]))
		}
		in.size = 2
	case OpShort:
		if err := need(2); err != nil {
			return nil, err
		}
		in.Imm = int32(int16(binary.BigEndian.Uint16(code[pc+1:])))
		in.size = 3
	case OpCPByte:
		if err := need(1); err != nil {
			return nil, err
		}
		in.CPIndex = uint16(code[pc+1])
		in.size = 2
	case OpCPShort:
		if err := need(2); err != nil {
			return nil, err
		}
		in.CPIndex = binary.BigEndian.Uint16(code[pc+1:])
		in.size = 3
	case OpLocalByte:
		if err := need(1); err != nil {
			return nil, err
		}
		in.Local = uint16(code[pc+1])
		in.size = 2
	case OpBranch2:
		if err := need(2); err != nil {
			return nil, err
		}
		in.Branch = int32(int16(binary.BigEndian.Uint16(code[pc+1:])))
		in.size = 3
	case OpBranch4:
		if err := need(4); err != nil {
			return nil, err
		}
		in.Branch = int32(binary.BigEndian.Uint32(code[pc+1:]))
		in.size = 5
	case OpIinc:
		if err := need(2); err != nil {
			return nil, err
		}
		in.Local = uint16(code[pc+1])
		in.Imm = int32(int8(code[pc+2]))
		in.size = 3
	case OpInvokeInterface:
		if err := need(4); err != nil {
			return nil, err
		}
		in.CPIndex = binary.BigEndian.Uint16(code[pc+1:])
		in.Count = code[pc+3]
		in.size = 5
	case OpInvokeDynamic:
		if err := need(4); err != nil {
			return nil, err
		}
		in.CPIndex = binary.BigEndian.Uint16(code[pc+1:])
		in.size = 5
	case OpMultianewarray:
		if err := need(3); err != nil {
			return nil, err
		}
		in.CPIndex = binary.BigEndian.Uint16(code[pc+1:])
		in.Count = code[pc+3]
		in.size = 4
	case OpWide:
		if err := need(1); err != nil {
			return nil, err
		}
		in.WideOp = Opcode(code[pc+1])
		switch in.WideOp {
		case Iload, Lload, Fload, Dload, Aload, Istore, Lstore, Fstore, Dstore, Astore, Ret:
			if err := need(3); err != nil {
				return nil, err
			}
			in.Local = binary.BigEndian.Uint16(code[pc+2:])
			in.size = 4
		case Iinc:
			if err := need(5); err != nil {
				return nil, err
			}
			in.Local = binary.BigEndian.Uint16(code[pc+2:])
			in.Imm = int32(int16(binary.BigEndian.Uint16(code[pc+4:])))
			in.size = 6
		default:
			return nil, &DecodeError{PC: pc, Op: op, Reason: fmt.Sprintf("invalid wide target %s", in.WideOp.Mnemonic())}
		}
	case OpTableswitch:
		base := pc + 1
		pad := (4 - base%4) % 4
		base += pad
		if base+12 > len(code) {
			return nil, &DecodeError{PC: pc, Op: op, Reason: "truncated tableswitch header"}
		}
		in.SwitchDefault = int32(binary.BigEndian.Uint32(code[base:]))
		in.SwitchLow = int32(binary.BigEndian.Uint32(code[base+4:]))
		in.SwitchHigh = int32(binary.BigEndian.Uint32(code[base+8:]))
		if in.SwitchLow > in.SwitchHigh {
			return nil, &DecodeError{PC: pc, Op: op, Reason: "tableswitch low > high"}
		}
		n := int64(in.SwitchHigh) - int64(in.SwitchLow) + 1
		if n > int64(len(code)) {
			return nil, &DecodeError{PC: pc, Op: op, Reason: "tableswitch entry count exceeds code size"}
		}
		if base+12+int(n)*4 > len(code) {
			return nil, &DecodeError{PC: pc, Op: op, Reason: "truncated tableswitch entries"}
		}
		in.SwitchOffsets = make([]int32, n)
		for i := int64(0); i < n; i++ {
			in.SwitchOffsets[i] = int32(binary.BigEndian.Uint32(code[base+12+int(i)*4:]))
		}
		in.size = base + 12 + int(n)*4 - pc
	case OpLookupswitch:
		base := pc + 1
		pad := (4 - base%4) % 4
		base += pad
		if base+8 > len(code) {
			return nil, &DecodeError{PC: pc, Op: op, Reason: "truncated lookupswitch header"}
		}
		in.SwitchDefault = int32(binary.BigEndian.Uint32(code[base:]))
		npairs := int32(binary.BigEndian.Uint32(code[base+4:]))
		if npairs < 0 || int64(npairs) > int64(len(code)) {
			return nil, &DecodeError{PC: pc, Op: op, Reason: "lookupswitch pair count out of range"}
		}
		if base+8+int(npairs)*8 > len(code) {
			return nil, &DecodeError{PC: pc, Op: op, Reason: "truncated lookupswitch pairs"}
		}
		in.SwitchKeys = make([]int32, npairs)
		in.SwitchOffsets = make([]int32, npairs)
		prev := int64(-1) << 40
		for i := int32(0); i < npairs; i++ {
			k := int32(binary.BigEndian.Uint32(code[base+8+int(i)*8:]))
			if int64(k) <= prev {
				return nil, &DecodeError{PC: pc, Op: op, Reason: "lookupswitch keys not sorted"}
			}
			prev = int64(k)
			in.SwitchKeys[i] = k
			in.SwitchOffsets[i] = int32(binary.BigEndian.Uint32(code[base+8+int(i)*8+4:]))
		}
		in.size = base + 8 + int(npairs)*8 - pc
	default:
		return nil, &DecodeError{PC: pc, Op: op, Reason: "unhandled operand kind"}
	}
	return in, nil
}

// Decode decodes an entire code array into an instruction list.
// The instructions are returned in PC order; offsets between them are
// contiguous (no gaps, no overlaps) or an error is returned.
func Decode(code []byte) ([]*Instruction, error) {
	var out []*Instruction
	pc := 0
	for pc < len(code) {
		in, err := DecodeOne(code, pc)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		pc += in.Size()
	}
	return out, nil
}

// Encode re-serialises instructions into a code array. Instructions are
// laid out at their recorded PCs; Encode verifies that sizes and PCs are
// consistent (as produced by Decode or by Assemble).
func Encode(ins []*Instruction) ([]byte, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	last := ins[len(ins)-1]
	total := last.PC + last.Size()
	buf := make([]byte, total)
	pc := 0
	for _, in := range ins {
		if in.PC != pc {
			return nil, fmt.Errorf("bytecode: instruction %s at pc %d, expected pc %d", in.Op.Mnemonic(), in.PC, pc)
		}
		if err := encodeOne(buf, in); err != nil {
			return nil, err
		}
		pc += in.Size()
	}
	return buf, nil
}

func encodeOne(buf []byte, in *Instruction) error {
	info, ok := Lookup(in.Op)
	if !ok {
		return fmt.Errorf("bytecode: cannot encode undefined opcode 0x%02x", byte(in.Op))
	}
	pc := in.PC
	buf[pc] = byte(in.Op)
	switch info.Kind {
	case OpNone:
		in.size = 1
	case OpByte:
		if in.Op == Newarray {
			buf[pc+1] = byte(in.ArrayTyp)
		} else {
			buf[pc+1] = byte(int8(in.Imm))
		}
		in.size = 2
	case OpShort:
		binary.BigEndian.PutUint16(buf[pc+1:], uint16(int16(in.Imm)))
		in.size = 3
	case OpCPByte:
		buf[pc+1] = byte(in.CPIndex)
		in.size = 2
	case OpCPShort:
		binary.BigEndian.PutUint16(buf[pc+1:], in.CPIndex)
		in.size = 3
	case OpLocalByte:
		buf[pc+1] = byte(in.Local)
		in.size = 2
	case OpBranch2:
		binary.BigEndian.PutUint16(buf[pc+1:], uint16(int16(in.Branch)))
		in.size = 3
	case OpBranch4:
		binary.BigEndian.PutUint32(buf[pc+1:], uint32(in.Branch))
		in.size = 5
	case OpIinc:
		buf[pc+1] = byte(in.Local)
		buf[pc+2] = byte(int8(in.Imm))
		in.size = 3
	case OpInvokeInterface:
		binary.BigEndian.PutUint16(buf[pc+1:], in.CPIndex)
		buf[pc+3] = in.Count
		buf[pc+4] = 0
		in.size = 5
	case OpInvokeDynamic:
		binary.BigEndian.PutUint16(buf[pc+1:], in.CPIndex)
		buf[pc+3], buf[pc+4] = 0, 0
		in.size = 5
	case OpMultianewarray:
		binary.BigEndian.PutUint16(buf[pc+1:], in.CPIndex)
		buf[pc+3] = in.Count
		in.size = 4
	case OpWide:
		buf[pc+1] = byte(in.WideOp)
		binary.BigEndian.PutUint16(buf[pc+2:], in.Local)
		if in.WideOp == Iinc {
			binary.BigEndian.PutUint16(buf[pc+4:], uint16(int16(in.Imm)))
			in.size = 6
		} else {
			in.size = 4
		}
	case OpTableswitch:
		base := pc + 1
		pad := (4 - base%4) % 4
		for i := 0; i < pad; i++ {
			buf[base+i] = 0
		}
		base += pad
		binary.BigEndian.PutUint32(buf[base:], uint32(in.SwitchDefault))
		binary.BigEndian.PutUint32(buf[base+4:], uint32(in.SwitchLow))
		binary.BigEndian.PutUint32(buf[base+8:], uint32(in.SwitchHigh))
		for i, off := range in.SwitchOffsets {
			binary.BigEndian.PutUint32(buf[base+12+i*4:], uint32(off))
		}
		in.size = base + 12 + len(in.SwitchOffsets)*4 - pc
	case OpLookupswitch:
		base := pc + 1
		pad := (4 - base%4) % 4
		for i := 0; i < pad; i++ {
			buf[base+i] = 0
		}
		base += pad
		binary.BigEndian.PutUint32(buf[base:], uint32(in.SwitchDefault))
		binary.BigEndian.PutUint32(buf[base+4:], uint32(len(in.SwitchKeys)))
		for i := range in.SwitchKeys {
			binary.BigEndian.PutUint32(buf[base+8+i*8:], uint32(in.SwitchKeys[i]))
			binary.BigEndian.PutUint32(buf[base+8+i*8+4:], uint32(in.SwitchOffsets[i]))
		}
		in.size = base + 8 + len(in.SwitchKeys)*8 - pc
	default:
		return fmt.Errorf("bytecode: unhandled operand kind for %s", in.Op.Mnemonic())
	}
	return nil
}

// sizeAt computes the encoded size of in when placed at pc (switch
// padding depends on alignment).
func sizeAt(in *Instruction, pc int) int {
	info, _ := Lookup(in.Op)
	switch info.Kind {
	case OpNone:
		return 1
	case OpByte, OpCPByte, OpLocalByte:
		return 2
	case OpShort, OpBranch2, OpIinc, OpCPShort:
		return 3
	case OpMultianewarray:
		return 4
	case OpBranch4, OpInvokeInterface, OpInvokeDynamic:
		return 5
	case OpWide:
		if in.WideOp == Iinc {
			return 6
		}
		return 4
	case OpTableswitch:
		pad := (4 - (pc+1)%4) % 4
		return 1 + pad + 12 + len(in.SwitchOffsets)*4
	case OpLookupswitch:
		pad := (4 - (pc+1)%4) % 4
		return 1 + pad + 8 + len(in.SwitchKeys)*8
	}
	return 1
}

// Assemble assigns PCs to a logical instruction list (ignoring existing
// PC values) and resolves Branch fields from the Target* convention:
// callers set Branch to the *index* of the target instruction within ins
// when Relocate is true. It returns the encoded code array.
//
// This is the primitive the Jimple lowering uses: it builds instructions
// with index-based branches, then Assemble lays them out and converts
// indices to byte offsets (switch offsets likewise).
func Assemble(ins []*Instruction, relocate bool) ([]byte, error) {
	// First pass: assign PCs iteratively until stable (switch padding
	// depends on PC; sizes here are otherwise fixed).
	for pass := 0; pass < 4; pass++ {
		pc := 0
		changed := false
		for _, in := range ins {
			if in.PC != pc {
				in.PC = pc
				changed = true
			}
			s := sizeAt(in, pc)
			if in.size != s {
				in.size = s
				changed = true
			}
			pc += s
		}
		if !changed {
			break
		}
	}
	if relocate {
		// Second pass: convert index-based targets into byte offsets.
		for _, in := range ins {
			if in.Op.IsBranch() {
				idx := int(in.Branch)
				if idx < 0 || idx >= len(ins) {
					return nil, fmt.Errorf("bytecode: branch target index %d out of range", idx)
				}
				off := ins[idx].PC - in.PC
				if in.Op == Goto || in.Op == Jsr {
					if off > 32767 || off < -32768 {
						return nil, fmt.Errorf("bytecode: branch offset %d exceeds 16-bit range", off)
					}
				}
				in.Branch = int32(off)
			}
			if in.Op == Tableswitch || in.Op == Lookupswitch {
				di := int(in.SwitchDefault)
				if di < 0 || di >= len(ins) {
					return nil, fmt.Errorf("bytecode: switch default index %d out of range", di)
				}
				in.SwitchDefault = int32(ins[di].PC - in.PC)
				for i, t := range in.SwitchOffsets {
					ti := int(t)
					if ti < 0 || ti >= len(ins) {
						return nil, fmt.Errorf("bytecode: switch target index %d out of range", ti)
					}
					in.SwitchOffsets[i] = int32(ins[ti].PC - in.PC)
				}
			}
		}
	}
	return Encode(ins)
}
