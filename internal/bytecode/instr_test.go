package bytecode

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDecodeSimpleSequence(t *testing.T) {
	// getstatic #12; ldc #4; invokevirtual #21; return
	code := []byte{
		0xb2, 0x00, 0x0c,
		0x12, 0x04,
		0xb6, 0x00, 0x15,
		0xb1,
	}
	ins, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 4 {
		t.Fatalf("got %d instructions, want 4", len(ins))
	}
	if ins[0].Op != Getstatic || ins[0].CPIndex != 12 || ins[0].PC != 0 {
		t.Errorf("bad getstatic: %+v", ins[0])
	}
	if ins[1].Op != Ldc || ins[1].CPIndex != 4 || ins[1].PC != 3 {
		t.Errorf("bad ldc: %+v", ins[1])
	}
	if ins[2].Op != Invokevirtual || ins[2].CPIndex != 21 || ins[2].PC != 5 {
		t.Errorf("bad invokevirtual: %+v", ins[2])
	}
	if ins[3].Op != Return || ins[3].PC != 8 {
		t.Errorf("bad return: %+v", ins[3])
	}
}

func TestDecodeBranchTargets(t *testing.T) {
	// 0: iload_1; 1: ifeq +5 (-> 6); 4: iconst_0; 5: ireturn; 6: iconst_1; 7: ireturn
	code := []byte{0x1b, 0x99, 0x00, 0x05, 0x03, 0xac, 0x04, 0xac}
	ins, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if got := ins[1].Targets(); !reflect.DeepEqual(got, []int{6}) {
		t.Errorf("ifeq targets = %v, want [6]", got)
	}
	if ins[0].Targets() != nil {
		t.Error("iload_1 must have no targets")
	}
}

func TestDecodeBipushSipushSigned(t *testing.T) {
	ins, err := Decode([]byte{0x10, 0xff, 0x11, 0xff, 0x80})
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].Imm != -1 {
		t.Errorf("bipush 0xff = %d, want -1", ins[0].Imm)
	}
	if ins[1].Imm != -128 {
		t.Errorf("sipush 0xff80 = %d, want -128", ins[1].Imm)
	}
}

func TestDecodeIinc(t *testing.T) {
	ins, err := Decode([]byte{0x84, 0x03, 0xfe})
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].Local != 3 || ins[0].Imm != -2 {
		t.Errorf("iinc decoded as local=%d imm=%d", ins[0].Local, ins[0].Imm)
	}
}

func TestDecodeWideForms(t *testing.T) {
	// wide iload 300
	ins, err := Decode([]byte{0xc4, 0x15, 0x01, 0x2c})
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].WideOp != Iload || ins[0].Local != 300 || ins[0].Size() != 4 {
		t.Errorf("wide iload: %+v", ins[0])
	}
	// wide iinc 300, -1000
	ins, err = Decode([]byte{0xc4, 0x84, 0x01, 0x2c, 0xfc, 0x18})
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].WideOp != Iinc || ins[0].Local != 300 || ins[0].Imm != -1000 || ins[0].Size() != 6 {
		t.Errorf("wide iinc: %+v", ins[0])
	}
	// invalid wide target
	if _, err := Decode([]byte{0xc4, 0x00}); err == nil {
		t.Error("wide nop must fail to decode")
	}
}

func TestDecodeTableswitch(t *testing.T) {
	// PC 0: tableswitch. Opcode at 0, pad to align operand at offset 4.
	code := []byte{
		0xaa,             // tableswitch at pc 0
		0x00, 0x00, 0x00, // padding
		0x00, 0x00, 0x00, 0x1c, // default +28
		0x00, 0x00, 0x00, 0x01, // low 1
		0x00, 0x00, 0x00, 0x03, // high 3
		0x00, 0x00, 0x00, 0x1c, // offsets
		0x00, 0x00, 0x00, 0x1d,
		0x00, 0x00, 0x00, 0x1e,
	}
	// Append filler so targets are in-range conceptually (decode doesn't check).
	ins, err := DecodeOne(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ins.SwitchLow != 1 || ins.SwitchHigh != 3 || len(ins.SwitchOffsets) != 3 {
		t.Fatalf("tableswitch decoded wrong: %+v", ins)
	}
	if ins.Size() != 28 {
		t.Errorf("tableswitch size = %d, want 28", ins.Size())
	}
	wantTargets := []int{28, 28, 29, 30}
	if got := ins.Targets(); !reflect.DeepEqual(got, wantTargets) {
		t.Errorf("targets = %v, want %v", got, wantTargets)
	}
}

func TestDecodeLookupswitchSortedKeys(t *testing.T) {
	mk := func(k1, k2 int32) []byte {
		b := []byte{
			0xab,
			0, 0, 0, // pad
			0, 0, 0, 24, // default
			0, 0, 0, 2, // npairs
		}
		for _, k := range []int32{k1, k2} {
			b = append(b, byte(uint32(k)>>24), byte(uint32(k)>>16), byte(uint32(k)>>8), byte(uint32(k)))
			b = append(b, 0, 0, 0, 24)
		}
		return b
	}
	if _, err := DecodeOne(mk(1, 5), 0); err != nil {
		t.Errorf("sorted keys should decode: %v", err)
	}
	if _, err := DecodeOne(mk(5, 1), 0); err == nil {
		t.Error("unsorted lookupswitch keys must be rejected")
	}
	if _, err := DecodeOne(mk(3, 3), 0); err == nil {
		t.Error("duplicate lookupswitch keys must be rejected")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{0xb2},             // truncated getstatic
		{0x10},             // truncated bipush
		{0xcb},             // undefined opcode
		{0xc8, 0x00, 0x00}, // truncated goto_w
		{0xaa, 0x00},       // truncated tableswitch
	}
	for _, code := range cases {
		if _, err := Decode(code); err == nil {
			t.Errorf("Decode(% x) should fail", code)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	code := []byte{
		0x2a,             // aload_0
		0xb7, 0x00, 0x01, // invokespecial #1
		0x10, 0x2a, // bipush 42
		0x3c,             // istore_1
		0x84, 0x01, 0x01, // iinc 1,1
		0x1b,             // iload_1
		0x99, 0x00, 0x04, // ifeq +4
		0xb1,                   // return
		0xc4, 0x15, 0x01, 0x00, // wide iload 256
		0x57, // pop
		0xb1, // return
	}
	ins, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Encode(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, code) {
		t.Errorf("round trip mismatch:\n in  % x\n out % x", code, out)
	}
}

// TestPropertyDecodeEncodeRoundTrip generates random valid instruction
// streams and checks decode∘encode is the identity.
func TestPropertyDecodeEncodeRoundTrip(t *testing.T) {
	gen := func(seed int64) []byte {
		rng := rand.New(rand.NewSource(seed))
		var buf []byte
		n := 1 + rng.Intn(40)
		simple := []Opcode{Nop, Iconst0, Iconst1, Aload0, Dup, Pop, Iadd, Swap, Return, Athrow}
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				buf = append(buf, byte(simple[rng.Intn(len(simple))]))
			case 1:
				buf = append(buf, byte(Bipush), byte(rng.Intn(256)))
			case 2:
				buf = append(buf, byte(Sipush), byte(rng.Intn(256)), byte(rng.Intn(256)))
			case 3:
				buf = append(buf, byte(Iload), byte(rng.Intn(256)))
			case 4:
				buf = append(buf, byte(Getstatic), byte(rng.Intn(256)), byte(rng.Intn(256)))
			case 5:
				buf = append(buf, byte(Iinc), byte(rng.Intn(256)), byte(rng.Intn(256)))
			}
		}
		buf = append(buf, byte(Return))
		return buf
	}
	f := func(seed int64) bool {
		code := gen(seed)
		ins, err := Decode(code)
		if err != nil {
			return false
		}
		out, err := Encode(ins)
		if err != nil {
			return false
		}
		return bytes.Equal(code, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAssembleRelocation(t *testing.T) {
	// Build: [0] iconst_0, [1] ifeq -> index 3, [2] nop, [3] return
	ins := []*Instruction{
		{Op: Iconst0},
		{Op: Ifeq, Branch: 3}, // index of return
		{Op: Nop},
		{Op: Return},
	}
	code, err := Assemble(ins, true)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec[1].Targets()[0]; got != dec[3].PC {
		t.Errorf("branch resolves to %d, want %d", got, dec[3].PC)
	}
}

func TestAssembleTableswitchPadding(t *testing.T) {
	// A switch preceded by 1 byte: operands must be 4-aligned.
	ins := []*Instruction{
		{Op: Iconst1},
		{Op: Tableswitch, SwitchDefault: 3, SwitchLow: 0, SwitchHigh: 0, SwitchOffsets: []int32{2}},
		{Op: Nop},
		{Op: Return},
	}
	code, err := Assemble(ins, true)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 4 {
		t.Fatalf("decoded %d instructions, want 4", len(dec))
	}
	ts := dec[1]
	if ts.Op != Tableswitch {
		t.Fatalf("instruction 1 is %s", ts.Op.Mnemonic())
	}
	if got := ts.PC + int(ts.SwitchDefault); got != dec[3].PC {
		t.Errorf("switch default lands at %d, want %d", got, dec[3].PC)
	}
	if got := ts.PC + int(ts.SwitchOffsets[0]); got != dec[2].PC {
		t.Errorf("switch case lands at %d, want %d", got, dec[2].PC)
	}
}

func TestAssembleBranchIndexOutOfRange(t *testing.T) {
	ins := []*Instruction{{Op: Goto, Branch: 99}}
	if _, err := Assemble(ins, true); err == nil {
		t.Error("out-of-range branch index must fail")
	}
}

func TestInstructionString(t *testing.T) {
	ins, err := Decode([]byte{0xb6, 0x00, 0x15, 0xb1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ins[0].String(); got != "   0: invokevirtual #21" {
		t.Errorf("String() = %q", got)
	}
	if got := ins[1].String(); got != "   3: return" {
		t.Errorf("String() = %q", got)
	}
}
