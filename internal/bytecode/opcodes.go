// Package bytecode defines the JVM instruction set: opcode values,
// mnemonics, operand layouts, and a decoder/encoder for Code attribute
// bytes. It is the lowest layer of the classfile toolchain and has no
// dependencies beyond the standard library.
package bytecode

import "fmt"

// Opcode is a single JVM opcode byte.
type Opcode byte

// The complete JVM instruction set (JVMS §6.5) plus the three reserved
// opcodes. Values are the opcode bytes themselves.
const (
	Nop             Opcode = 0x00
	AconstNull      Opcode = 0x01
	IconstM1        Opcode = 0x02
	Iconst0         Opcode = 0x03
	Iconst1         Opcode = 0x04
	Iconst2         Opcode = 0x05
	Iconst3         Opcode = 0x06
	Iconst4         Opcode = 0x07
	Iconst5         Opcode = 0x08
	Lconst0         Opcode = 0x09
	Lconst1         Opcode = 0x0a
	Fconst0         Opcode = 0x0b
	Fconst1         Opcode = 0x0c
	Fconst2         Opcode = 0x0d
	Dconst0         Opcode = 0x0e
	Dconst1         Opcode = 0x0f
	Bipush          Opcode = 0x10
	Sipush          Opcode = 0x11
	Ldc             Opcode = 0x12
	LdcW            Opcode = 0x13
	Ldc2W           Opcode = 0x14
	Iload           Opcode = 0x15
	Lload           Opcode = 0x16
	Fload           Opcode = 0x17
	Dload           Opcode = 0x18
	Aload           Opcode = 0x19
	Iload0          Opcode = 0x1a
	Iload1          Opcode = 0x1b
	Iload2          Opcode = 0x1c
	Iload3          Opcode = 0x1d
	Lload0          Opcode = 0x1e
	Lload1          Opcode = 0x1f
	Lload2          Opcode = 0x20
	Lload3          Opcode = 0x21
	Fload0          Opcode = 0x22
	Fload1          Opcode = 0x23
	Fload2          Opcode = 0x24
	Fload3          Opcode = 0x25
	Dload0          Opcode = 0x26
	Dload1          Opcode = 0x27
	Dload2          Opcode = 0x28
	Dload3          Opcode = 0x29
	Aload0          Opcode = 0x2a
	Aload1          Opcode = 0x2b
	Aload2          Opcode = 0x2c
	Aload3          Opcode = 0x2d
	Iaload          Opcode = 0x2e
	Laload          Opcode = 0x2f
	Faload          Opcode = 0x30
	Daload          Opcode = 0x31
	Aaload          Opcode = 0x32
	Baload          Opcode = 0x33
	Caload          Opcode = 0x34
	Saload          Opcode = 0x35
	Istore          Opcode = 0x36
	Lstore          Opcode = 0x37
	Fstore          Opcode = 0x38
	Dstore          Opcode = 0x39
	Astore          Opcode = 0x3a
	Istore0         Opcode = 0x3b
	Istore1         Opcode = 0x3c
	Istore2         Opcode = 0x3d
	Istore3         Opcode = 0x3e
	Lstore0         Opcode = 0x3f
	Lstore1         Opcode = 0x40
	Lstore2         Opcode = 0x41
	Lstore3         Opcode = 0x42
	Fstore0         Opcode = 0x43
	Fstore1         Opcode = 0x44
	Fstore2         Opcode = 0x45
	Fstore3         Opcode = 0x46
	Dstore0         Opcode = 0x47
	Dstore1         Opcode = 0x48
	Dstore2         Opcode = 0x49
	Dstore3         Opcode = 0x4a
	Astore0         Opcode = 0x4b
	Astore1         Opcode = 0x4c
	Astore2         Opcode = 0x4d
	Astore3         Opcode = 0x4e
	Iastore         Opcode = 0x4f
	Lastore         Opcode = 0x50
	Fastore         Opcode = 0x51
	Dastore         Opcode = 0x52
	Aastore         Opcode = 0x53
	Bastore         Opcode = 0x54
	Castore         Opcode = 0x55
	Sastore         Opcode = 0x56
	Pop             Opcode = 0x57
	Pop2            Opcode = 0x58
	Dup             Opcode = 0x59
	DupX1           Opcode = 0x5a
	DupX2           Opcode = 0x5b
	Dup2            Opcode = 0x5c
	Dup2X1          Opcode = 0x5d
	Dup2X2          Opcode = 0x5e
	Swap            Opcode = 0x5f
	Iadd            Opcode = 0x60
	Ladd            Opcode = 0x61
	Fadd            Opcode = 0x62
	Dadd            Opcode = 0x63
	Isub            Opcode = 0x64
	Lsub            Opcode = 0x65
	Fsub            Opcode = 0x66
	Dsub            Opcode = 0x67
	Imul            Opcode = 0x68
	Lmul            Opcode = 0x69
	Fmul            Opcode = 0x6a
	Dmul            Opcode = 0x6b
	Idiv            Opcode = 0x6c
	Ldiv            Opcode = 0x6d
	Fdiv            Opcode = 0x6e
	Ddiv            Opcode = 0x6f
	Irem            Opcode = 0x70
	Lrem            Opcode = 0x71
	Frem            Opcode = 0x72
	Drem            Opcode = 0x73
	Ineg            Opcode = 0x74
	Lneg            Opcode = 0x75
	Fneg            Opcode = 0x76
	Dneg            Opcode = 0x77
	Ishl            Opcode = 0x78
	Lshl            Opcode = 0x79
	Ishr            Opcode = 0x7a
	Lshr            Opcode = 0x7b
	Iushr           Opcode = 0x7c
	Lushr           Opcode = 0x7d
	Iand            Opcode = 0x7e
	Land            Opcode = 0x7f
	Ior             Opcode = 0x80
	Lor             Opcode = 0x81
	Ixor            Opcode = 0x82
	Lxor            Opcode = 0x83
	Iinc            Opcode = 0x84
	I2l             Opcode = 0x85
	I2f             Opcode = 0x86
	I2d             Opcode = 0x87
	L2i             Opcode = 0x88
	L2f             Opcode = 0x89
	L2d             Opcode = 0x8a
	F2i             Opcode = 0x8b
	F2l             Opcode = 0x8c
	F2d             Opcode = 0x8d
	D2i             Opcode = 0x8e
	D2l             Opcode = 0x8f
	D2f             Opcode = 0x90
	I2b             Opcode = 0x91
	I2c             Opcode = 0x92
	I2s             Opcode = 0x93
	Lcmp            Opcode = 0x94
	Fcmpl           Opcode = 0x95
	Fcmpg           Opcode = 0x96
	Dcmpl           Opcode = 0x97
	Dcmpg           Opcode = 0x98
	Ifeq            Opcode = 0x99
	Ifne            Opcode = 0x9a
	Iflt            Opcode = 0x9b
	Ifge            Opcode = 0x9c
	Ifgt            Opcode = 0x9d
	Ifle            Opcode = 0x9e
	IfIcmpeq        Opcode = 0x9f
	IfIcmpne        Opcode = 0xa0
	IfIcmplt        Opcode = 0xa1
	IfIcmpge        Opcode = 0xa2
	IfIcmpgt        Opcode = 0xa3
	IfIcmple        Opcode = 0xa4
	IfAcmpeq        Opcode = 0xa5
	IfAcmpne        Opcode = 0xa6
	Goto            Opcode = 0xa7
	Jsr             Opcode = 0xa8
	Ret             Opcode = 0xa9
	Tableswitch     Opcode = 0xaa
	Lookupswitch    Opcode = 0xab
	Ireturn         Opcode = 0xac
	Lreturn         Opcode = 0xad
	Freturn         Opcode = 0xae
	Dreturn         Opcode = 0xaf
	Areturn         Opcode = 0xb0
	Return          Opcode = 0xb1
	Getstatic       Opcode = 0xb2
	Putstatic       Opcode = 0xb3
	Getfield        Opcode = 0xb4
	Putfield        Opcode = 0xb5
	Invokevirtual   Opcode = 0xb6
	Invokespecial   Opcode = 0xb7
	Invokestatic    Opcode = 0xb8
	Invokeinterface Opcode = 0xb9
	Invokedynamic   Opcode = 0xba
	New             Opcode = 0xbb
	Newarray        Opcode = 0xbc
	Anewarray       Opcode = 0xbd
	Arraylength     Opcode = 0xbe
	Athrow          Opcode = 0xbf
	Checkcast       Opcode = 0xc0
	Instanceof      Opcode = 0xc1
	Monitorenter    Opcode = 0xc2
	Monitorexit     Opcode = 0xc3
	Wide            Opcode = 0xc4
	Multianewarray  Opcode = 0xc5
	Ifnull          Opcode = 0xc6
	Ifnonnull       Opcode = 0xc7
	GotoW           Opcode = 0xc8
	JsrW            Opcode = 0xc9
	Breakpoint      Opcode = 0xca
	Impdep1         Opcode = 0xfe
	Impdep2         Opcode = 0xff
)

// OperandKind describes how an instruction's operand bytes are laid out.
type OperandKind uint8

const (
	// OpNone: no operand bytes.
	OpNone OperandKind = iota
	// OpByte: one signed or unsigned byte (bipush, newarray, local index forms).
	OpByte
	// OpShort: one signed 16-bit value (sipush).
	OpShort
	// OpCPByte: one-byte constant-pool index (ldc).
	OpCPByte
	// OpCPShort: two-byte constant-pool index.
	OpCPShort
	// OpLocalByte: one-byte local-variable index.
	OpLocalByte
	// OpBranch2: signed 16-bit branch offset.
	OpBranch2
	// OpBranch4: signed 32-bit branch offset (goto_w, jsr_w).
	OpBranch4
	// OpIinc: local index byte + signed const byte.
	OpIinc
	// OpInvokeInterface: cp index (2) + count byte + zero byte.
	OpInvokeInterface
	// OpInvokeDynamic: cp index (2) + two zero bytes.
	OpInvokeDynamic
	// OpMultianewarray: cp index (2) + dimensions byte.
	OpMultianewarray
	// OpTableswitch: padded variable-length table switch.
	OpTableswitch
	// OpLookupswitch: padded variable-length lookup switch.
	OpLookupswitch
	// OpWide: modified opcode + widened operands.
	OpWide
)

// Info describes a single opcode's static properties.
type Info struct {
	Op       Opcode
	Mnemonic string
	Kind     OperandKind
	// Pop and Push are the operand-stack slot deltas for fixed-effect
	// instructions (category-2 values count as 2 slots). Variable-effect
	// instructions (invokes, field access, multianewarray, switch pops)
	// carry -1 in Pop and are resolved against descriptors by callers.
	Pop  int8
	Push int8
}

// VariableStack marks Pop/Push values that depend on a symbolic descriptor.
const VariableStack = int8(-1)

var infos = [256]Info{}

func register(op Opcode, mnemonic string, kind OperandKind, pop, push int8) {
	infos[op] = Info{Op: op, Mnemonic: mnemonic, Kind: kind, Pop: pop, Push: push}
}

func init() {
	register(Nop, "nop", OpNone, 0, 0)
	register(AconstNull, "aconst_null", OpNone, 0, 1)
	register(IconstM1, "iconst_m1", OpNone, 0, 1)
	register(Iconst0, "iconst_0", OpNone, 0, 1)
	register(Iconst1, "iconst_1", OpNone, 0, 1)
	register(Iconst2, "iconst_2", OpNone, 0, 1)
	register(Iconst3, "iconst_3", OpNone, 0, 1)
	register(Iconst4, "iconst_4", OpNone, 0, 1)
	register(Iconst5, "iconst_5", OpNone, 0, 1)
	register(Lconst0, "lconst_0", OpNone, 0, 2)
	register(Lconst1, "lconst_1", OpNone, 0, 2)
	register(Fconst0, "fconst_0", OpNone, 0, 1)
	register(Fconst1, "fconst_1", OpNone, 0, 1)
	register(Fconst2, "fconst_2", OpNone, 0, 1)
	register(Dconst0, "dconst_0", OpNone, 0, 2)
	register(Dconst1, "dconst_1", OpNone, 0, 2)
	register(Bipush, "bipush", OpByte, 0, 1)
	register(Sipush, "sipush", OpShort, 0, 1)
	register(Ldc, "ldc", OpCPByte, 0, 1)
	register(LdcW, "ldc_w", OpCPShort, 0, 1)
	register(Ldc2W, "ldc2_w", OpCPShort, 0, 2)
	register(Iload, "iload", OpLocalByte, 0, 1)
	register(Lload, "lload", OpLocalByte, 0, 2)
	register(Fload, "fload", OpLocalByte, 0, 1)
	register(Dload, "dload", OpLocalByte, 0, 2)
	register(Aload, "aload", OpLocalByte, 0, 1)
	for i := Opcode(0); i < 4; i++ {
		register(Iload0+i, fmt.Sprintf("iload_%d", i), OpNone, 0, 1)
		register(Lload0+i, fmt.Sprintf("lload_%d", i), OpNone, 0, 2)
		register(Fload0+i, fmt.Sprintf("fload_%d", i), OpNone, 0, 1)
		register(Dload0+i, fmt.Sprintf("dload_%d", i), OpNone, 0, 2)
		register(Aload0+i, fmt.Sprintf("aload_%d", i), OpNone, 0, 1)
		register(Istore0+i, fmt.Sprintf("istore_%d", i), OpNone, 1, 0)
		register(Lstore0+i, fmt.Sprintf("lstore_%d", i), OpNone, 2, 0)
		register(Fstore0+i, fmt.Sprintf("fstore_%d", i), OpNone, 1, 0)
		register(Dstore0+i, fmt.Sprintf("dstore_%d", i), OpNone, 2, 0)
		register(Astore0+i, fmt.Sprintf("astore_%d", i), OpNone, 1, 0)
	}
	register(Iaload, "iaload", OpNone, 2, 1)
	register(Laload, "laload", OpNone, 2, 2)
	register(Faload, "faload", OpNone, 2, 1)
	register(Daload, "daload", OpNone, 2, 2)
	register(Aaload, "aaload", OpNone, 2, 1)
	register(Baload, "baload", OpNone, 2, 1)
	register(Caload, "caload", OpNone, 2, 1)
	register(Saload, "saload", OpNone, 2, 1)
	register(Istore, "istore", OpLocalByte, 1, 0)
	register(Lstore, "lstore", OpLocalByte, 2, 0)
	register(Fstore, "fstore", OpLocalByte, 1, 0)
	register(Dstore, "dstore", OpLocalByte, 2, 0)
	register(Astore, "astore", OpLocalByte, 1, 0)
	register(Iastore, "iastore", OpNone, 3, 0)
	register(Lastore, "lastore", OpNone, 4, 0)
	register(Fastore, "fastore", OpNone, 3, 0)
	register(Dastore, "dastore", OpNone, 4, 0)
	register(Aastore, "aastore", OpNone, 3, 0)
	register(Bastore, "bastore", OpNone, 3, 0)
	register(Castore, "castore", OpNone, 3, 0)
	register(Sastore, "sastore", OpNone, 3, 0)
	register(Pop, "pop", OpNone, 1, 0)
	register(Pop2, "pop2", OpNone, 2, 0)
	register(Dup, "dup", OpNone, 1, 2)
	register(DupX1, "dup_x1", OpNone, 2, 3)
	register(DupX2, "dup_x2", OpNone, 3, 4)
	register(Dup2, "dup2", OpNone, 2, 4)
	register(Dup2X1, "dup2_x1", OpNone, 3, 5)
	register(Dup2X2, "dup2_x2", OpNone, 4, 6)
	register(Swap, "swap", OpNone, 2, 2)
	register(Iadd, "iadd", OpNone, 2, 1)
	register(Ladd, "ladd", OpNone, 4, 2)
	register(Fadd, "fadd", OpNone, 2, 1)
	register(Dadd, "dadd", OpNone, 4, 2)
	register(Isub, "isub", OpNone, 2, 1)
	register(Lsub, "lsub", OpNone, 4, 2)
	register(Fsub, "fsub", OpNone, 2, 1)
	register(Dsub, "dsub", OpNone, 4, 2)
	register(Imul, "imul", OpNone, 2, 1)
	register(Lmul, "lmul", OpNone, 4, 2)
	register(Fmul, "fmul", OpNone, 2, 1)
	register(Dmul, "dmul", OpNone, 4, 2)
	register(Idiv, "idiv", OpNone, 2, 1)
	register(Ldiv, "ldiv", OpNone, 4, 2)
	register(Fdiv, "fdiv", OpNone, 2, 1)
	register(Ddiv, "ddiv", OpNone, 4, 2)
	register(Irem, "irem", OpNone, 2, 1)
	register(Lrem, "lrem", OpNone, 4, 2)
	register(Frem, "frem", OpNone, 2, 1)
	register(Drem, "drem", OpNone, 4, 2)
	register(Ineg, "ineg", OpNone, 1, 1)
	register(Lneg, "lneg", OpNone, 2, 2)
	register(Fneg, "fneg", OpNone, 1, 1)
	register(Dneg, "dneg", OpNone, 2, 2)
	register(Ishl, "ishl", OpNone, 2, 1)
	register(Lshl, "lshl", OpNone, 3, 2)
	register(Ishr, "ishr", OpNone, 2, 1)
	register(Lshr, "lshr", OpNone, 3, 2)
	register(Iushr, "iushr", OpNone, 2, 1)
	register(Lushr, "lushr", OpNone, 3, 2)
	register(Iand, "iand", OpNone, 2, 1)
	register(Land, "land", OpNone, 4, 2)
	register(Ior, "ior", OpNone, 2, 1)
	register(Lor, "lor", OpNone, 4, 2)
	register(Ixor, "ixor", OpNone, 2, 1)
	register(Lxor, "lxor", OpNone, 4, 2)
	register(Iinc, "iinc", OpIinc, 0, 0)
	register(I2l, "i2l", OpNone, 1, 2)
	register(I2f, "i2f", OpNone, 1, 1)
	register(I2d, "i2d", OpNone, 1, 2)
	register(L2i, "l2i", OpNone, 2, 1)
	register(L2f, "l2f", OpNone, 2, 1)
	register(L2d, "l2d", OpNone, 2, 2)
	register(F2i, "f2i", OpNone, 1, 1)
	register(F2l, "f2l", OpNone, 1, 2)
	register(F2d, "f2d", OpNone, 1, 2)
	register(D2i, "d2i", OpNone, 2, 1)
	register(D2l, "d2l", OpNone, 2, 2)
	register(D2f, "d2f", OpNone, 2, 1)
	register(I2b, "i2b", OpNone, 1, 1)
	register(I2c, "i2c", OpNone, 1, 1)
	register(I2s, "i2s", OpNone, 1, 1)
	register(Lcmp, "lcmp", OpNone, 4, 1)
	register(Fcmpl, "fcmpl", OpNone, 2, 1)
	register(Fcmpg, "fcmpg", OpNone, 2, 1)
	register(Dcmpl, "dcmpl", OpNone, 4, 1)
	register(Dcmpg, "dcmpg", OpNone, 4, 1)
	register(Ifeq, "ifeq", OpBranch2, 1, 0)
	register(Ifne, "ifne", OpBranch2, 1, 0)
	register(Iflt, "iflt", OpBranch2, 1, 0)
	register(Ifge, "ifge", OpBranch2, 1, 0)
	register(Ifgt, "ifgt", OpBranch2, 1, 0)
	register(Ifle, "ifle", OpBranch2, 1, 0)
	register(IfIcmpeq, "if_icmpeq", OpBranch2, 2, 0)
	register(IfIcmpne, "if_icmpne", OpBranch2, 2, 0)
	register(IfIcmplt, "if_icmplt", OpBranch2, 2, 0)
	register(IfIcmpge, "if_icmpge", OpBranch2, 2, 0)
	register(IfIcmpgt, "if_icmpgt", OpBranch2, 2, 0)
	register(IfIcmple, "if_icmple", OpBranch2, 2, 0)
	register(IfAcmpeq, "if_acmpeq", OpBranch2, 2, 0)
	register(IfAcmpne, "if_acmpne", OpBranch2, 2, 0)
	register(Goto, "goto", OpBranch2, 0, 0)
	register(Jsr, "jsr", OpBranch2, 0, 1)
	register(Ret, "ret", OpLocalByte, 0, 0)
	register(Tableswitch, "tableswitch", OpTableswitch, 1, 0)
	register(Lookupswitch, "lookupswitch", OpLookupswitch, 1, 0)
	register(Ireturn, "ireturn", OpNone, 1, 0)
	register(Lreturn, "lreturn", OpNone, 2, 0)
	register(Freturn, "freturn", OpNone, 1, 0)
	register(Dreturn, "dreturn", OpNone, 2, 0)
	register(Areturn, "areturn", OpNone, 1, 0)
	register(Return, "return", OpNone, 0, 0)
	register(Getstatic, "getstatic", OpCPShort, 0, VariableStack)
	register(Putstatic, "putstatic", OpCPShort, VariableStack, 0)
	register(Getfield, "getfield", OpCPShort, 1, VariableStack)
	register(Putfield, "putfield", OpCPShort, VariableStack, 0)
	register(Invokevirtual, "invokevirtual", OpCPShort, VariableStack, VariableStack)
	register(Invokespecial, "invokespecial", OpCPShort, VariableStack, VariableStack)
	register(Invokestatic, "invokestatic", OpCPShort, VariableStack, VariableStack)
	register(Invokeinterface, "invokeinterface", OpInvokeInterface, VariableStack, VariableStack)
	register(Invokedynamic, "invokedynamic", OpInvokeDynamic, VariableStack, VariableStack)
	register(New, "new", OpCPShort, 0, 1)
	register(Newarray, "newarray", OpByte, 1, 1)
	register(Anewarray, "anewarray", OpCPShort, 1, 1)
	register(Arraylength, "arraylength", OpNone, 1, 1)
	register(Athrow, "athrow", OpNone, 1, 0)
	register(Checkcast, "checkcast", OpCPShort, 1, 1)
	register(Instanceof, "instanceof", OpCPShort, 1, 1)
	register(Monitorenter, "monitorenter", OpNone, 1, 0)
	register(Monitorexit, "monitorexit", OpNone, 1, 0)
	register(Wide, "wide", OpWide, 0, 0)
	register(Multianewarray, "multianewarray", OpMultianewarray, VariableStack, 1)
	register(Ifnull, "ifnull", OpBranch2, 1, 0)
	register(Ifnonnull, "ifnonnull", OpBranch2, 1, 0)
	register(GotoW, "goto_w", OpBranch4, 0, 0)
	register(JsrW, "jsr_w", OpBranch4, 0, 1)
	register(Breakpoint, "breakpoint", OpNone, 0, 0)
	register(Impdep1, "impdep1", OpNone, 0, 0)
	register(Impdep2, "impdep2", OpNone, 0, 0)
}

// Lookup returns the Info for op and whether op is a defined JVM opcode.
func Lookup(op Opcode) (Info, bool) {
	in := infos[op]
	return in, in.Mnemonic != ""
}

// Mnemonic returns the assembler name of op, or a hex placeholder for
// undefined opcode bytes.
func (op Opcode) Mnemonic() string {
	if in, ok := Lookup(op); ok {
		return in.Mnemonic
	}
	return fmt.Sprintf("op_0x%02x", byte(op))
}

// Defined reports whether op is part of the JVM instruction set
// (including the reserved breakpoint/impdep opcodes).
func (op Opcode) Defined() bool {
	_, ok := Lookup(op)
	return ok
}

// IsBranch reports whether op transfers control to an explicit offset
// operand (conditional branches, goto, jsr and the wide forms).
func (op Opcode) IsBranch() bool {
	in, ok := Lookup(op)
	return ok && (in.Kind == OpBranch2 || in.Kind == OpBranch4)
}

// IsConditionalBranch reports whether op is a two-way conditional branch.
func (op Opcode) IsConditionalBranch() bool {
	switch op {
	case Ifeq, Ifne, Iflt, Ifge, Ifgt, Ifle,
		IfIcmpeq, IfIcmpne, IfIcmplt, IfIcmpge, IfIcmpgt, IfIcmple,
		IfAcmpeq, IfAcmpne, Ifnull, Ifnonnull:
		return true
	}
	return false
}

// IsReturn reports whether op terminates the method normally.
func (op Opcode) IsReturn() bool {
	switch op {
	case Ireturn, Lreturn, Freturn, Dreturn, Areturn, Return:
		return true
	}
	return false
}

// IsInvoke reports whether op is any of the five invocation instructions.
func (op Opcode) IsInvoke() bool {
	switch op {
	case Invokevirtual, Invokespecial, Invokestatic, Invokeinterface, Invokedynamic:
		return true
	}
	return false
}

// EndsBlock reports whether control cannot fall through past op
// (returns, athrow, goto, switches, ret).
func (op Opcode) EndsBlock() bool {
	if op.IsReturn() {
		return true
	}
	switch op {
	case Goto, GotoW, Athrow, Tableswitch, Lookupswitch, Ret:
		return true
	}
	return false
}

// ArrayTypeCode is the operand of newarray (JVMS Table 6.5.newarray-A).
type ArrayTypeCode byte

// newarray atype operand values.
const (
	TBoolean ArrayTypeCode = 4
	TChar    ArrayTypeCode = 5
	TFloat   ArrayTypeCode = 6
	TDouble  ArrayTypeCode = 7
	TByte    ArrayTypeCode = 8
	TShort   ArrayTypeCode = 9
	TInt     ArrayTypeCode = 10
	TLong    ArrayTypeCode = 11
)

// Valid reports whether c is one of the eight defined newarray type codes.
func (c ArrayTypeCode) Valid() bool { return c >= TBoolean && c <= TLong }

// Descriptor returns the array element descriptor character for c.
func (c ArrayTypeCode) Descriptor() string {
	switch c {
	case TBoolean:
		return "Z"
	case TChar:
		return "C"
	case TFloat:
		return "F"
	case TDouble:
		return "D"
	case TByte:
		return "B"
	case TShort:
		return "S"
	case TInt:
		return "I"
	case TLong:
		return "J"
	}
	return "?"
}
