package campaign

import (
	"math/rand"

	"repro/internal/prng"
)

// Stream labels keep the engine's RNG uses statistically independent.
// drawStream feeds the sequential draw stage (seed pick + selector
// proposals); mutateStream feeds the mutator inside the worker stage;
// initStream seeds one-off campaign setup (the MCMC chain's initial
// state). Separating draw from mutate matters for replay: the mutator's
// stream never depends on how many proposals the Metropolis–Hastings
// rejection loop consumed, so a mutant can be rebuilt from
// (parent, mutator, DeriveRNG) alone.
const (
	drawStream   uint64 = 0xD4A7_0001
	mutateStream uint64 = 0xD4A7_0002
	initStream   uint64 = 0xD4A7_0003
)

// DeriveRNG returns iteration iter's mutation stream: the generator the
// worker stage hands to the selected mutator (and, for bytefuzz, to the
// byte flip). It is the public replay hook — cmd/classfuzz -replay
// re-derives exactly this stream to reproduce a single mutant without
// the campaign's shared state.
func DeriveRNG(campaignSeed int64, iter int) *rand.Rand {
	return prng.Derive(campaignSeed, mutateStream, uint64(iter))
}

// drawRNG returns iteration iter's draw stream (seed-pool index, then
// selector proposals, in that order).
func drawRNG(campaignSeed int64, iter int) *rand.Rand {
	return prng.Derive(campaignSeed, drawStream, uint64(iter))
}

// initRNG returns the campaign's setup stream.
func initRNG(campaignSeed int64) *rand.Rand {
	return prng.Derive(campaignSeed, initStream, 0)
}
