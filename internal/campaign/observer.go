package campaign

import (
	"fmt"
	"io"

	"repro/internal/coverage"
)

// Observer is the engine's event sink. All events fire from the
// sequential draw/commit stages — never from workers — so for a fixed
// campaign configuration the event sequence is identical at any worker
// count. Implementations therefore need no locking when driven by a
// single engine; an observer shared across concurrent campaigns must
// synchronise itself.
type Observer interface {
	// IterationStarted fires at the draw stage, before the iteration's
	// work is dispatched.
	IterationStarted(iter, poolIndex, mutatorID int)
	// Mutated fires at commit with the mutator-application outcome.
	// applied is false when the mutator was inapplicable to the drawn
	// seed or the mutant failed to lower (the Soot-style dump failure).
	Mutated(iter, mutatorID int, applied bool)
	// Executed fires at commit for every coverage-directed iteration
	// that produced a classfile; skipped reports that the prefilter's
	// trace cache stood in for the reference-VM run.
	Executed(iter int, skipped bool)
	// PrefilterHit fires at commit when the static prefilter's cache
	// avoided a reference-VM execution.
	PrefilterHit(iter int)
	// Accepted fires at commit when the mutant joined TestClasses.
	Accepted(iter int, name string, stats coverage.Stats)
	// SelectorUpdated fires once per committed iteration, after the
	// selector received its feedback.
	SelectorUpdated(iter, mutatorID int, success bool)
}

// Counters is an Observer tallying every event class; cmd/report and
// the cmd progress lines read campaigns off it.
type Counters struct {
	Iterations    int // draws performed
	Applied       int // mutants that produced a classfile
	Failed        int // inapplicable mutators / unlowerable mutants
	Executions    int // reference-VM runs
	PrefilterHits int // executions the trace cache absorbed
	Accepts       int // mutants accepted into TestClasses
	Committed     int // iterations fully committed
}

// IterationStarted implements Observer.
func (c *Counters) IterationStarted(int, int, int) { c.Iterations++ }

// Mutated implements Observer.
func (c *Counters) Mutated(_, _ int, applied bool) {
	if applied {
		c.Applied++
	} else {
		c.Failed++
	}
}

// Executed implements Observer.
func (c *Counters) Executed(_ int, skipped bool) {
	if !skipped {
		c.Executions++
	}
}

// PrefilterHit implements Observer.
func (c *Counters) PrefilterHit(int) { c.PrefilterHits++ }

// Accepted implements Observer.
func (c *Counters) Accepted(int, string, coverage.Stats) { c.Accepts++ }

// SelectorUpdated implements Observer.
func (c *Counters) SelectorUpdated(int, int, bool) { c.Committed++ }

// String renders the tallies on one line.
func (c *Counters) String() string {
	return fmt.Sprintf("iterations=%d applied=%d failed=%d executions=%d prefilter-hits=%d accepted=%d",
		c.Iterations, c.Applied, c.Failed, c.Executions, c.PrefilterHits, c.Accepts)
}

// Progress is an Observer printing a live line every Every committed
// iterations — the -progress flag of cmd/classfuzz and
// cmd/experiments.
type Progress struct {
	W     io.Writer
	Total int // campaign budget, for the x/N prefix
	Every int // commit interval between lines (≤0 → Total/20)
	Counters
}

// NewProgress builds a progress printer over w.
func NewProgress(w io.Writer, total, every int) *Progress {
	if every <= 0 {
		every = total / 20
		if every == 0 {
			every = 1
		}
	}
	return &Progress{W: w, Total: total, Every: every}
}

// SelectorUpdated implements Observer, emitting the periodic line.
func (p *Progress) SelectorUpdated(iter, mutatorID int, success bool) {
	p.Counters.SelectorUpdated(iter, mutatorID, success)
	if p.Committed%p.Every == 0 || p.Committed == p.Total {
		fmt.Fprintf(p.W, "[campaign] %d/%d committed: %d generated, %d accepted, %d prefilter hits\n",
			p.Committed, p.Total, p.Applied, p.Accepts, p.PrefilterHits)
	}
}

// Multi fans events out to several observers in order.
type Multi []Observer

// IterationStarted implements Observer.
func (m Multi) IterationStarted(iter, poolIndex, mutatorID int) {
	for _, o := range m {
		o.IterationStarted(iter, poolIndex, mutatorID)
	}
}

// Mutated implements Observer.
func (m Multi) Mutated(iter, mutatorID int, applied bool) {
	for _, o := range m {
		o.Mutated(iter, mutatorID, applied)
	}
}

// Executed implements Observer.
func (m Multi) Executed(iter int, skipped bool) {
	for _, o := range m {
		o.Executed(iter, skipped)
	}
}

// PrefilterHit implements Observer.
func (m Multi) PrefilterHit(iter int) {
	for _, o := range m {
		o.PrefilterHit(iter)
	}
}

// Accepted implements Observer.
func (m Multi) Accepted(iter int, name string, stats coverage.Stats) {
	for _, o := range m {
		o.Accepted(iter, name, stats)
	}
}

// SelectorUpdated implements Observer.
func (m Multi) SelectorUpdated(iter, mutatorID int, success bool) {
	for _, o := range m {
		o.SelectorUpdated(iter, mutatorID, success)
	}
}

// The engine calls observers through this nil-tolerant shim.
type obs struct{ o Observer }

func (s obs) iterationStarted(iter, poolIndex, mutatorID int) {
	if s.o != nil {
		s.o.IterationStarted(iter, poolIndex, mutatorID)
	}
}

func (s obs) mutated(iter, mutatorID int, applied bool) {
	if s.o != nil {
		s.o.Mutated(iter, mutatorID, applied)
	}
}

func (s obs) executed(iter int, skipped bool) {
	if s.o != nil {
		s.o.Executed(iter, skipped)
	}
}

func (s obs) prefilterHit(iter int) {
	if s.o != nil {
		s.o.PrefilterHit(iter)
	}
}

func (s obs) accepted(iter int, name string, stats coverage.Stats) {
	if s.o != nil {
		s.o.Accepted(iter, name, stats)
	}
}

func (s obs) selectorUpdated(iter, mutatorID int, success bool) {
	if s.o != nil {
		s.o.SelectorUpdated(iter, mutatorID, success)
	}
}
