package campaign

import (
	"fmt"
	"io"

	"repro/internal/coverage"
)

// Event is one engine occurrence, delivered to the Observer as a typed
// struct. All events fire from the sequential draw/commit stages —
// never from workers — so for a fixed campaign configuration the event
// sequence is identical at any worker count. Observers driven by a
// single engine therefore need no locking; an observer shared across
// concurrent campaigns must synchronise itself.
//
// The concrete event types are IterationStarted, Mutated, Executed,
// PrefilterHit, Accepted and SelectorUpdated.
type Event interface {
	// campaignEvent marks the closed set of event types.
	campaignEvent()
}

// IterationStarted fires at the draw stage, before the iteration's
// work is dispatched.
type IterationStarted struct {
	Iter      int
	PoolIndex int
	MutatorID int
}

// Mutated fires at commit with the mutator-application outcome.
// Applied is false when the mutator was inapplicable to the drawn seed
// or the mutant failed to lower (the Soot-style dump failure).
type Mutated struct {
	Iter      int
	MutatorID int
	Applied   bool
}

// Executed fires at commit for every coverage-directed iteration that
// produced a classfile; Skipped reports that the prefilter's trace
// cache stood in for the reference-VM run.
type Executed struct {
	Iter    int
	Skipped bool
}

// PrefilterHit fires at commit when the static prefilter's cache
// avoided a reference-VM execution.
type PrefilterHit struct {
	Iter int
}

// Accepted fires at commit when the mutant joined TestClasses.
type Accepted struct {
	Iter  int
	Name  string
	Stats coverage.Stats
}

// SelectorUpdated fires once per committed iteration, after the
// selector received its feedback.
type SelectorUpdated struct {
	Iter      int
	MutatorID int
	Success   bool
}

func (IterationStarted) campaignEvent() {}
func (Mutated) campaignEvent()          {}
func (Executed) campaignEvent()         {}
func (PrefilterHit) campaignEvent()     {}
func (Accepted) campaignEvent()         {}
func (SelectorUpdated) campaignEvent()  {}

// Observer is the engine's event sink: one method, one typed event.
// Implementations switch on the event types they care about and ignore
// the rest, so the interface never grows when a new event is added.
type Observer interface {
	Event(ev Event)
}

// Counters is an Observer tallying every event class; cmd/report and
// the cmd progress lines read campaigns off it.
type Counters struct {
	Iterations    int // draws performed
	Applied       int // mutants that produced a classfile
	Failed        int // inapplicable mutators / unlowerable mutants
	Executions    int // reference-VM runs
	PrefilterHits int // executions the trace cache absorbed
	Accepts       int // mutants accepted into TestClasses
	Committed     int // iterations fully committed
}

// Event implements Observer.
func (c *Counters) Event(ev Event) {
	switch e := ev.(type) {
	case IterationStarted:
		c.Iterations++
	case Mutated:
		if e.Applied {
			c.Applied++
		} else {
			c.Failed++
		}
	case Executed:
		if !e.Skipped {
			c.Executions++
		}
	case PrefilterHit:
		c.PrefilterHits++
	case Accepted:
		c.Accepts++
	case SelectorUpdated:
		c.Committed++
	}
}

// String renders the tallies on one line.
func (c *Counters) String() string {
	return fmt.Sprintf("iterations=%d applied=%d failed=%d executions=%d prefilter-hits=%d accepted=%d",
		c.Iterations, c.Applied, c.Failed, c.Executions, c.PrefilterHits, c.Accepts)
}

// Progress is an Observer printing a live line every Every committed
// iterations — the -progress flag of cmd/classfuzz and
// cmd/experiments.
type Progress struct {
	W     io.Writer
	Total int // campaign budget, for the x/N prefix
	Every int // commit interval between lines (≤0 → Total/20)
	Counters
}

// NewProgress builds a progress printer over w.
func NewProgress(w io.Writer, total, every int) *Progress {
	if every <= 0 {
		every = total / 20
		if every == 0 {
			every = 1
		}
	}
	return &Progress{W: w, Total: total, Every: every}
}

// Event implements Observer, emitting the periodic line on each
// committed iteration.
func (p *Progress) Event(ev Event) {
	p.Counters.Event(ev)
	if _, ok := ev.(SelectorUpdated); !ok {
		return
	}
	if p.Committed%p.Every == 0 || p.Committed == p.Total {
		fmt.Fprintf(p.W, "[campaign] %d/%d committed: %d generated, %d accepted, %d prefilter hits\n",
			p.Committed, p.Total, p.Applied, p.Accepts, p.PrefilterHits)
	}
}

// Multi fans events out to several observers in order.
type Multi []Observer

// Event implements Observer.
func (m Multi) Event(ev Event) {
	for _, o := range m {
		o.Event(ev)
	}
}

// LegacyObserver is the pre-event-sink observer surface: one method
// per event class. Wrap implementations in Legacy to keep them
// working against the Event API.
type LegacyObserver interface {
	IterationStarted(iter, poolIndex, mutatorID int)
	Mutated(iter, mutatorID int, applied bool)
	Executed(iter int, skipped bool)
	PrefilterHit(iter int)
	Accepted(iter int, name string, stats coverage.Stats)
	SelectorUpdated(iter, mutatorID int, success bool)
}

// Legacy adapts a LegacyObserver to the Event interface, dispatching
// each typed event to the corresponding legacy method.
type Legacy struct {
	O LegacyObserver
}

// Event implements Observer.
func (l Legacy) Event(ev Event) {
	if l.O == nil {
		return
	}
	switch e := ev.(type) {
	case IterationStarted:
		l.O.IterationStarted(e.Iter, e.PoolIndex, e.MutatorID)
	case Mutated:
		l.O.Mutated(e.Iter, e.MutatorID, e.Applied)
	case Executed:
		l.O.Executed(e.Iter, e.Skipped)
	case PrefilterHit:
		l.O.PrefilterHit(e.Iter)
	case Accepted:
		l.O.Accepted(e.Iter, e.Name, e.Stats)
	case SelectorUpdated:
		l.O.SelectorUpdated(e.Iter, e.MutatorID, e.Success)
	}
}

// The engine emits events through this nil-tolerant shim.
type obs struct{ o Observer }

func (s obs) emit(ev Event) {
	if s.o != nil {
		s.o.Event(ev)
	}
}
