package campaign

import (
	"reflect"
	"testing"

	"repro/internal/jvm"
)

// TestVerifyMemoObserveEquivalence is the engine-level contract of the
// method-verification memo: campaigns run with the memo disabled
// (cold verifier every time), with the default engine-private memo,
// and with an injected pre-warmed memo must produce bit-identical
// summaries — accepted suites, draw logs, mutator statistics and
// prefilter counters — at every worker count the determinism matrix
// sweeps. The memo may only move wall clock, never results.
func TestVerifyMemoObserveEquivalence(t *testing.T) {
	for _, alg := range detAlgorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			// Baseline: memo disabled, workers=1.
			base := detConfig(alg)
			base.DisableVerifyMemo = true
			res, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			want := summarize(res)

			// A memo warmed by a full prior campaign (the daemon's
			// cross-epoch shape).
			warm := jvm.NewVerifyMemo()
			{
				cfg := detConfig(alg)
				cfg.VerifyMemo = warm
				if _, err := Run(cfg); err != nil {
					t.Fatal(err)
				}
			}

			for _, w := range workerCounts() {
				for name, mutate := range map[string]func(*Config){
					"memo-off":  func(c *Config) { c.DisableVerifyMemo = true },
					"memo-cold": func(c *Config) {},
					"memo-warm": func(c *Config) { c.VerifyMemo = warm },
				} {
					cfg := detConfig(alg)
					cfg.Workers = w
					mutate(&cfg)
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, w, err)
					}
					if got := summarize(res); !reflect.DeepEqual(got, want) {
						t.Errorf("%s workers=%d diverges from memo-off workers=1", name, w)
					}
				}
			}
		})
	}
}

// TestReplayWithAndWithoutMemo pins the replay contract across memo
// modes: a mutant replayed from a memo-on campaign's draw log is
// byte-identical to one replayed from a memo-off campaign's, because
// the memo cannot perturb draws, mutations or acceptance.
func TestReplayWithAndWithoutMemo(t *testing.T) {
	on := detConfig(Classfuzz)
	off := detConfig(Classfuzz)
	off.DisableVerifyMemo = true
	resOn, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if len(resOn.Test) == 0 || len(resOn.Test) != len(resOff.Test) {
		t.Fatalf("accepted suites differ in size: %d vs %d", len(resOn.Test), len(resOff.Test))
	}
	for _, iter := range []int{0, on.Iterations / 2, on.Iterations - 1} {
		a, err := Replay(on, iter)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Replay(off, iter)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("replay of iteration %d diverges between memo modes", iter)
		}
	}
}
