package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/analysis"
	"repro/internal/coverage"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mcmc"
)

// SnapshotVersion is the on-disk format version of Snapshot. Bump it
// whenever a field changes meaning; Resume refuses other versions.
// Version 2 added the seed-selection strategy and its serialized
// scheduler state (the SeedSource redesign).
const SnapshotVersion = 2

// Snapshot is a resume-safe image of a running campaign, captured at a
// coordinator boundary: Drawn iterations have entered the pipeline (the
// draw log records all of them) and Committed ≤ Drawn of those have
// committed. It deliberately contains no mutant bytes, no coverage
// traces and no MCMC chain state — all of that is a deterministic
// function of (config, seed corpus, draw log, per-iteration outcomes),
// so Resume re-derives it: committed mutants are rebuilt via the
// Rebuild lineage walk, accepted ones re-execute on the reference VM to
// recover their traces, and the selector chain replays the recorded
// draw/commit interleaving. The in-flight window (Committed..Drawn-1)
// simply re-enters the pipeline from its recorded draw records.
//
// A snapshot captured at a coordinator boundary always satisfies
// Committed == max(0, Drawn−Lookahead) (mid-pipeline) or
// Committed == Drawn == Iterations (finished): the engine never lets a
// draw observe commits newer than its lookahead window, so a "fully
// drained" state mid-campaign does not exist and is not a valid resume
// point.
//
// The one non-invariant across a kill/resume pair is the static
// prefilter's trace cache, which restarts cold: PrefilterStats.Skipped
// vs .Executed may split differently after a resume (their sum, and
// every acceptance decision, stay identical). The Prefilter field
// carries the counters as of the snapshot so totals remain meaningful.
type Snapshot struct {
	Version   int       `json:"version"`
	Algorithm Algorithm `json:"algorithm"`
	// Criterion is the coverage.Criterion ordinal.
	Criterion  coverage.Criterion `json:"criterion"`
	Iterations int                `json:"iterations"`
	Rand       int64              `json:"rand"`
	Lookahead  int                `json:"lookahead"`
	// P is the effective MCMC geometric parameter (the default already
	// substituted), zero for non-MCMC selectors.
	P               float64 `json:"p,omitempty"`
	NoSeedRecycling bool    `json:"no_seed_recycling,omitempty"`
	RefSpec         string  `json:"ref_spec"`
	// SeedCount and SeedDigest pin the seed corpus: Resume recomputes
	// the digest over the models it was handed and refuses a mismatch,
	// since every rebuilt lineage bottoms out in a seed.
	SeedCount  int    `json:"seed_count"`
	SeedDigest uint64 `json:"seed_digest"`
	// SeedStrategy pins the SeedSource policy ("uniform", "clustered",
	// "yield"); Resume refuses a config whose source names another.
	SeedStrategy string `json:"seed_strategy"`
	// SeedSched carries the source's serialized scheduler state as of
	// the snapshot (absent for stateless sources). Restore re-derives
	// the state by replaying the committed prefix into the fresh source
	// and cross-checks it against this copy.
	SeedSched json.RawMessage `json:"seed_sched,omitempty"`

	Drawn     int `json:"drawn"`
	Committed int `json:"committed"`
	// Draws is the draw log for iterations 0..Drawn-1. Records at index
	// ≥ Committed are the in-flight window.
	Draws []DrawRecord `json:"draws"`
	// Gens records the committed generated iterations in commit order
	// (a subsequence of 0..Committed-1).
	Gens []GenEntry `json:"gens"`
	// Prefilter carries the prefilter counters as of the snapshot, when
	// the campaign ran with StaticPrefilter.
	Prefilter *PrefilterStats `json:"prefilter,omitempty"`
}

// GenEntry is one committed, generated iteration's outcome in a
// Snapshot: its coverage statistic, the acceptance decision, and — for
// accepted mutants — the content fingerprint of the classfile bytes,
// which Resume checks against the rebuilt bytes.
type GenEntry struct {
	Iter     int  `json:"iter"`
	Stmts    int  `json:"stmts,omitempty"`
	Branches int  `json:"branches,omitempty"`
	Accepted bool `json:"accepted,omitempty"`
	Fp       uint64 `json:"fp,omitempty"`
}

// ctrlReq is one Snapshot/Stop request travelling to the coordinator.
type ctrlReq struct {
	stop  bool
	reply chan *Snapshot
}

// Control is the live handle onto a running engine. Attach one via
// Config.Control before the run starts; requests are serviced at the
// top of each coordinator iteration, so a snapshot costs at most one
// in-flight window of latency and never perturbs results. A Control
// serves exactly one engine run.
type Control struct {
	reqs   chan ctrlReq
	done   chan struct{}
	stopAt int

	mu    sync.Mutex
	final *Snapshot
}

// NewControl returns a control handle for one engine run.
func NewControl() *Control {
	return &Control{reqs: make(chan ctrlReq), done: make(chan struct{}), stopAt: -1}
}

// StopAt arranges a deterministic stop at the coordinator boundary
// before iteration i is drawn (useful for reproducible checkpoint
// tests). It must be called before the engine runs.
func (c *Control) StopAt(i int) { c.stopAt = i }

// Snapshot captures a resume-safe snapshot of the running campaign.
// After the run has finished it returns the final snapshot.
func (c *Control) Snapshot() *Snapshot { return c.request(false) }

// Stop asks the engine to stop drawing, returning the snapshot at the
// stop boundary — the resume point. The engine then drains its
// in-flight window and Run returns a partial Result (Stopped = true).
func (c *Control) Stop() *Snapshot { return c.request(true) }

// Final blocks until the run finishes and returns its last resume-safe
// snapshot: the Stop boundary for a stopped run, the completed state
// otherwise.
func (c *Control) Final() *Snapshot {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.final
}

func (c *Control) request(stop bool) *Snapshot {
	req := ctrlReq{stop: stop, reply: make(chan *Snapshot, 1)}
	select {
	case c.reqs <- req:
		return <-req.reply
	case <-c.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.final
	}
}

// finish publishes the final snapshot and releases all waiters.
func (c *Control) finish(s *Snapshot) {
	c.mu.Lock()
	c.final = s
	c.mu.Unlock()
	close(c.done)
}

// serviceControl handles pending control requests at the coordinator
// boundary before iteration i (drawn == i). It reports whether the
// engine should stop drawing.
func (e *engine) serviceControl(i int) bool {
	c := e.ctrl
	if c == nil {
		return false
	}
	stop := c.stopAt >= 0 && i == c.stopAt
	for {
		select {
		case req := <-c.reqs:
			snap := e.snapshot()
			if req.stop {
				stop = true
			}
			req.reply <- snap
		default:
			if stop && e.stopSnap == nil {
				e.stopSnap = e.snapshot()
			}
			return stop
		}
	}
}

// snapshot captures the engine's state at the current coordinator
// boundary. Coordinator-goroutine only.
//
// On a resumed engine that is still re-filling its in-flight window,
// the recorded-but-not-yet-redrawn remainder of that window is
// appended to the draw log: those iterations' proposals were consumed
// from the selector chain during restore, so omitting them would leave
// a snapshot whose fresh re-draws diverge. With them included, a
// mid-refill snapshot is exactly the boundary the engine resumed from.
func (e *engine) snapshot() *Snapshot {
	cfg := &e.cfg
	draws := append([]DrawRecord(nil), e.res.Draws...)
	if consumed := e.drawn - e.startIter; consumed < len(e.resumeDraws) {
		draws = append(draws, e.resumeDraws[consumed:]...)
	}
	s := &Snapshot{
		Version:         SnapshotVersion,
		Algorithm:       cfg.Algorithm,
		Criterion:       cfg.Criterion,
		Iterations:      cfg.Iterations,
		Rand:            cfg.Rand,
		Lookahead:       e.lookahead,
		P:               e.effectiveP(),
		NoSeedRecycling: cfg.NoSeedRecycling,
		RefSpec:         cfg.RefSpec.Name,
		SeedCount:       len(e.seeds),
		SeedDigest:      e.seedCorpusDigest(),
		SeedStrategy:    e.src.Strategy(),
		Drawn:           len(draws),
		Committed:       e.committed,
		Draws:           draws,
		Gens:            append([]GenEntry(nil), e.genLog...),
	}
	if e.pf != nil {
		pf := e.tel.prefilterStats()
		s.Prefilter = &pf
	}
	if st, err := e.src.MarshalState(); err == nil && len(st) > 0 {
		s.SeedSched = json.RawMessage(st)
	}
	return s
}

// effectiveP is the MCMC geometric parameter actually in use (zero for
// the uniform selectors).
func (e *engine) effectiveP() float64 {
	if e.cfg.Algorithm != Classfuzz {
		return 0
	}
	if e.cfg.P == 0 {
		return mcmc.DefaultP(len(e.muts))
	}
	return e.cfg.P
}

// seedCorpusDigest hashes the seed corpus (via its canonical printed
// form, which is deterministic and total) so Resume can refuse a
// corpus that drifted from the one the snapshot was taken under.
func (e *engine) seedCorpusDigest() uint64 {
	if e.seedDigest == 0 {
		e.seedDigest = SeedDigest(e.seeds)
	}
	return e.seedDigest
}

// SeedDigest fingerprints a seed corpus in order. Two corpora digest
// equal iff every seed's canonical jimple form matches.
func SeedDigest(seeds []*jimple.Class) uint64 {
	h := fnv.New64a()
	for _, s := range seeds {
		h.Write([]byte(jimple.Print(s)))
		h.Write([]byte{0})
	}
	d := h.Sum64()
	if d == 0 {
		d = 1 // reserve 0 for "not yet computed"
	}
	return d
}

// Engine is an explicitly-managed campaign run: construct with
// NewEngine (fresh) or Resume (from a Snapshot), then call Run once.
// campaign.Run remains the one-shot convenience wrapper.
type Engine struct {
	e   *engine
	ran bool
}

// NewEngine validates cfg and prepares a staged-engine run (every
// algorithm except bytefuzz, whose byte-pool loop has no draw log to
// checkpoint).
func NewEngine(cfg Config) (*Engine, error) {
	if err := validateStaged(cfg); err != nil {
		return nil, err
	}
	return &Engine{e: newEngine(cfg)}, nil
}

// Run executes the campaign (or its remainder, after Resume). An
// Engine runs exactly once.
func (en *Engine) Run() (*Result, error) {
	if en.ran {
		return nil, fmt.Errorf("campaign: engine already ran")
	}
	en.ran = true
	return en.e.run()
}

func validateStaged(cfg Config) error {
	if len(cfg.seedCorpus()) == 0 {
		return fmt.Errorf("campaign: no seeds")
	}
	if cfg.Iterations <= 0 {
		return fmt.Errorf("campaign: non-positive iteration budget")
	}
	switch cfg.Algorithm {
	case Classfuzz, Randfuzz, Greedyfuzz, Uniquefuzz:
		return nil
	case Bytefuzz:
		return fmt.Errorf("campaign: bytefuzz has no staged engine (no draw log to checkpoint)")
	default:
		return fmt.Errorf("campaign: unknown algorithm %q", cfg.Algorithm)
	}
}

// Resume reconstructs a running campaign from a Snapshot and returns
// an Engine whose Run completes it. cfg must describe the same
// campaign the snapshot was taken from (same algorithm, criterion,
// seed, budget, lookahead, reference spec and seed corpus); the
// restore re-derives every piece of engine state and fails loudly on
// any divergence, so a corrupt or mismatched snapshot cannot silently
// fork the run. The resumed campaign's accepted suite, draw log and
// difftest behaviour are byte-identical to the uninterrupted run's at
// any worker count.
func Resume(cfg Config, snap *Snapshot) (*Engine, error) {
	if err := validateStaged(cfg); err != nil {
		return nil, err
	}
	e := newEngine(cfg)
	if err := e.validateSnapshot(snap); err != nil {
		return nil, err
	}
	if err := e.restore(snap); err != nil {
		return nil, err
	}
	return &Engine{e: e}, nil
}

func (e *engine) validateSnapshot(snap *Snapshot) error {
	cfg := &e.cfg
	fail := func(field string, snapV, cfgV any) error {
		return fmt.Errorf("campaign: snapshot/config mismatch on %s: snapshot %v, config %v", field, snapV, cfgV)
	}
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("campaign: snapshot version %d, this build reads %d", snap.Version, SnapshotVersion)
	}
	if snap.Algorithm != cfg.Algorithm {
		return fail("algorithm", snap.Algorithm, cfg.Algorithm)
	}
	if snap.Criterion != cfg.Criterion {
		return fail("criterion", snap.Criterion, cfg.Criterion)
	}
	if snap.Iterations != cfg.Iterations {
		return fail("iterations", snap.Iterations, cfg.Iterations)
	}
	if snap.Rand != cfg.Rand {
		return fail("rand", snap.Rand, cfg.Rand)
	}
	if snap.Lookahead != e.lookahead {
		return fail("lookahead", snap.Lookahead, e.lookahead)
	}
	if snap.P != e.effectiveP() {
		return fail("p", snap.P, e.effectiveP())
	}
	if snap.NoSeedRecycling != cfg.NoSeedRecycling {
		return fail("no_seed_recycling", snap.NoSeedRecycling, cfg.NoSeedRecycling)
	}
	if snap.RefSpec != cfg.RefSpec.Name {
		return fail("ref_spec", snap.RefSpec, cfg.RefSpec.Name)
	}
	if snap.SeedCount != len(e.seeds) {
		return fail("seed_count", snap.SeedCount, len(e.seeds))
	}
	if d := e.seedCorpusDigest(); snap.SeedDigest != d {
		return fail("seed_digest", snap.SeedDigest, d)
	}
	if snap.SeedStrategy != e.src.Strategy() {
		return fail("seed_strategy", snap.SeedStrategy, e.src.Strategy())
	}
	if snap.Drawn < 0 || snap.Drawn > snap.Iterations {
		return fmt.Errorf("campaign: snapshot drawn %d outside budget %d", snap.Drawn, snap.Iterations)
	}
	if snap.Committed < 0 || snap.Committed > snap.Drawn {
		return fmt.Errorf("campaign: snapshot committed %d outside drawn %d", snap.Committed, snap.Drawn)
	}
	if len(snap.Draws) != snap.Drawn {
		return fmt.Errorf("campaign: snapshot draw log has %d records, drawn %d", len(snap.Draws), snap.Drawn)
	}
	for i, rec := range snap.Draws {
		if rec.Iter != i {
			return fmt.Errorf("campaign: snapshot draw log record %d carries iter %d", i, rec.Iter)
		}
	}
	return nil
}

// rebuiltGen is one committed iteration's re-derived mutant.
type rebuiltGen struct {
	class *jimple.Class
	data  []byte
}

// rebuildCommitted re-derives the mutant model and bytes for committed
// generated iterations, walking the draw log in order so each parent
// (always an accepted earlier iteration, or a seed) is available when
// its children need it. Accepted iterations are always rebuilt; the
// rest only when the config keeps their bytes or models. The walk is
// the batch form of Rebuild — same clone/apply/finish/lower sequence,
// without re-deriving shared parents once per descendant.
func (e *engine) rebuildCommitted(snap *Snapshot) (map[int]*rebuiltGen, error) {
	cfg := &e.cfg
	keepAll := cfg.KeepClasses || cfg.KeepGenBytes
	out := make(map[int]*rebuiltGen, len(snap.Gens))
	accepted := make(map[int]*jimple.Class, len(snap.Gens))
	for _, ge := range snap.Gens {
		rec := snap.Draws[ge.Iter]
		if !ge.Accepted && !keepAll {
			continue
		}
		var parent *jimple.Class
		if rec.Parent < 0 {
			if rec.PoolIndex >= len(e.seeds) {
				return nil, fmt.Errorf("campaign: snapshot iteration %d draws seed %d beyond corpus (%d seeds)", ge.Iter, rec.PoolIndex, len(e.seeds))
			}
			parent = e.seeds[rec.PoolIndex]
		} else {
			parent = accepted[rec.Parent]
			if parent == nil {
				return nil, fmt.Errorf("campaign: snapshot iteration %d has unaccepted parent %d", ge.Iter, rec.Parent)
			}
		}
		if rec.MutatorID < 0 || rec.MutatorID >= len(e.muts) {
			return nil, fmt.Errorf("campaign: snapshot iteration %d mutator id %d out of range", ge.Iter, rec.MutatorID)
		}
		mutant := parent.Clone()
		if !e.muts[rec.MutatorID].Apply(mutant, DeriveRNG(cfg.Rand, ge.Iter)) {
			return nil, fmt.Errorf("campaign: mutator %d no longer applies at iteration %d — snapshot diverges from this build", rec.MutatorID, ge.Iter)
		}
		finishMutant(mutant, ge.Iter)
		data, err := lower(mutant)
		if err != nil {
			return nil, fmt.Errorf("campaign: rebuilt mutant of iteration %d fails to lower: %w", ge.Iter, err)
		}
		out[ge.Iter] = &rebuiltGen{class: mutant, data: data}
		if ge.Accepted {
			accepted[ge.Iter] = mutant
		}
	}
	return out, nil
}

// restore rebuilds the full engine state the snapshot summarises:
// seed pool and seed traces, the committed prefix's suite/pool/selector
// evolution (replaying the exact draw/commit interleaving the
// coordinator used, so the MCMC chain state matches bit-for-bit), and
// the in-flight window, which run() will re-process from its recorded
// draw records.
func (e *engine) restore(snap *Snapshot) error {
	cfg := &e.cfg
	e.initSeedState()
	e.res = &Result{
		Algorithm:  cfg.Algorithm,
		Criterion:  cfg.Criterion,
		Iterations: cfg.Iterations,
		Draws:      make([]DrawRecord, 0, cfg.Iterations),
		Workers:    cfg.workers(),
		Lookahead:  e.lookahead,
	}
	e.res.Draws = append(e.res.Draws, snap.Draws[:snap.Committed]...)

	rebuilt, err := e.rebuildCommitted(snap)
	if err != nil {
		return err
	}

	// Reference VM for recovering accepted mutants' traces. Trace keys
	// are probe-interning-order dependent and deliberately absent from
	// the snapshot; re-execution yields traces identical (as sets) to
	// the original process's, which is all the suite compares.
	var vm *jvm.VM
	var rec *coverage.Recorder
	if e.coverageDirected {
		vm = jvm.New(cfg.RefSpec)
		rec = coverage.NewRecorder(jvm.ProbeRegistry())
		vm.SetRecorder(rec)
	}

	genCursor := 0
	commitSim := func(j int) error {
		dr := snap.Draws[j]
		e.tel.committed.Inc()
		if !dr.Generated {
			e.tel.failures.Inc()
			e.src.Observe(dr.PoolIndex, false, false)
			e.selector.Record(dr.MutatorID, false)
			return nil
		}
		if genCursor >= len(snap.Gens) || snap.Gens[genCursor].Iter != j {
			return fmt.Errorf("campaign: snapshot gen log out of step at iteration %d", j)
		}
		ge := snap.Gens[genCursor]
		genCursor++
		e.tel.generated.Inc()
		stats := coverage.Stats{Stmts: ge.Stmts, Branches: ge.Branches}
		gc := &GenClass{Iter: j, Name: mutantName(j), MutatorID: dr.MutatorID, Stats: stats, Accepted: ge.Accepted}
		if e.coverageDirected {
			e.genStats.AddStats(stats)
		}
		if rg := rebuilt[j]; rg != nil {
			if cfg.KeepClasses {
				gc.Class = rg.class
			}
			if cfg.KeepClasses || cfg.KeepGenBytes || ge.Accepted {
				gc.Data = rg.data
			}
		}
		e.res.Gen = append(e.res.Gen, gc)
		if ge.Accepted {
			rg := rebuilt[j]
			if fp := analysis.ContentFingerprint(rg.data); fp != ge.Fp {
				return fmt.Errorf("campaign: rebuilt bytes of iteration %d fingerprint %x, snapshot recorded %x", j, fp, ge.Fp)
			}
			if e.coverageDirected {
				rec.Reset()
				vm.Run(rg.data)
				tr := rec.Trace()
				if tr.Stats() != stats {
					return fmt.Errorf("campaign: re-executed iteration %d covers %+v, snapshot recorded %+v", j, tr.Stats(), stats)
				}
				e.mergedCov = coverage.Merge(e.mergedCov, tr)
				switch cfg.Algorithm {
				case Greedyfuzz:
					e.greedyUnion = coverage.Merge(e.greedyUnion, tr)
				default:
					e.suite.Add(tr)
				}
			}
			e.res.Test = append(e.res.Test, gc)
			if !cfg.NoSeedRecycling {
				e.pool = append(e.pool, poolEntry{class: rebuilt[j].class, iter: j})
				e.src.Grew(len(e.pool)-1, dr.PoolIndex)
			}
			e.tel.accepts.Inc()
		}
		e.src.Observe(dr.PoolIndex, true, ge.Accepted)
		e.selector.Record(dr.MutatorID, ge.Accepted)
		return nil
	}

	// Replay the coordinator's exact interleaving — commit(i−D) before
	// draw(i) — so the selector chain sees Next/Record in the order the
	// original process issued them. Draw replay verifies each recorded
	// pool index and mutator proposal; any divergence means the
	// snapshot does not describe this campaign.
	D := e.lookahead
	for i := 0; i < snap.Drawn; i++ {
		if j := i - D; j >= 0 && j < snap.Committed {
			if err := commitSim(j); err != nil {
				return err
			}
		}
		dr := snap.Draws[i]
		rng := drawRNG(cfg.Rand, i)
		idx := e.src.Pick(rng, len(e.pool))
		if idx != dr.PoolIndex {
			return fmt.Errorf("campaign: replayed draw %d picks pool index %d, snapshot recorded %d", i, idx, dr.PoolIndex)
		}
		if e.pool[idx].iter != dr.Parent {
			return fmt.Errorf("campaign: replayed draw %d pool entry from iteration %d, snapshot recorded parent %d", i, e.pool[idx].iter, dr.Parent)
		}
		if mu := e.selector.Next(rng); mu != dr.MutatorID {
			return fmt.Errorf("campaign: replayed draw %d proposes mutator %d, snapshot recorded %d", i, mu, dr.MutatorID)
		}
		e.tel.iterations.Inc()
	}
	// Tail commits (only a finished snapshot has any).
	for j := snap.Drawn - D; j < snap.Committed; j++ {
		if j < 0 {
			continue
		}
		if err := commitSim(j); err != nil {
			return err
		}
	}
	if genCursor != len(snap.Gens) {
		return fmt.Errorf("campaign: snapshot gen log has %d unconsumed entries", len(snap.Gens)-genCursor)
	}

	// The replayed source must land exactly on the snapshot's scheduler
	// state. Compare compacted: checkpoint writers may re-indent the
	// nested raw message, which must not fail a faithful replay.
	if len(snap.SeedSched) > 0 {
		st, err := e.src.MarshalState()
		if err != nil {
			return fmt.Errorf("campaign: serializing replayed seed-scheduler state: %w", err)
		}
		var got, want bytes.Buffer
		if err := json.Compact(&got, st); err != nil {
			return fmt.Errorf("campaign: replayed seed-scheduler state: %w", err)
		}
		if err := json.Compact(&want, snap.SeedSched); err != nil {
			return fmt.Errorf("campaign: snapshot seed-scheduler state: %w", err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			return fmt.Errorf("campaign: replayed seed-scheduler state diverges from snapshot")
		}
	}

	// Carry the prefilter counters forward so post-resume PrefilterStats
	// remain cumulative (the trace cache itself restarts cold — see the
	// Snapshot doc comment).
	if snap.Prefilter != nil && e.pf != nil {
		e.tel.pfChecked.Add(int64(snap.Prefilter.Checked))
		e.tel.pfDoomed.Add(int64(snap.Prefilter.Doomed))
		e.tel.pfVerify.Add(int64(snap.Prefilter.VerifyDoomed))
		e.tel.pfSkipped.Add(int64(snap.Prefilter.Skipped))
		e.tel.pfExecuted.Add(int64(snap.Prefilter.Executed))
	}

	e.genLog = append([]GenEntry(nil), snap.Gens...)
	e.resumeDraws = append([]DrawRecord(nil), snap.Draws[snap.Committed:]...)
	e.startIter = snap.Committed
	e.drawn = snap.Committed
	e.committed = snap.Committed
	e.resumed = true
	return nil
}
