package campaign

import (
	"bytes"
	"fmt"

	"repro/internal/jimple"
	"repro/internal/mutation"
)

// ReplayInfo is the outcome of reproducing a single campaign iteration
// in isolation.
type ReplayInfo struct {
	// Record is the iteration's draw-log entry.
	Record DrawRecord
	// Class is the rebuilt mutant model; Data its classfile bytes.
	Class *jimple.Class
	Data  []byte
	// Verified reports that Data is byte-identical to what the campaign
	// produced at this iteration (checked when Replay re-ran the prefix;
	// Rebuild alone leaves it false).
	Verified bool
}

// RootSeed walks iteration iter's lineage through the draw log to the
// original corpus seed it descends from, returning that seed's pool
// index (-1 if iter or any ancestor link is outside the log).
func RootSeed(draws []DrawRecord, iter int) int {
	for {
		if iter < 0 || iter >= len(draws) {
			return -1
		}
		rec := draws[iter]
		if rec.Parent < 0 {
			return rec.PoolIndex
		}
		iter = rec.Parent
	}
}

// Rebuild reconstructs iteration iter's mutant from the campaign seed
// and the draw log alone, with no reference-VM execution. The draw log
// pins the lineage: the parent is either an original seed
// (Parent == -1, addressed by PoolIndex) or the mutant another
// iteration accepted (rebuilt recursively — accepted mutants are the
// only classes recycled into the pool). The mutator itself re-runs
// under DeriveRNG(seed, iter), whose stream is independent of the draw
// stage, so the rebuild consumes exactly the random values the
// campaign's worker did.
func Rebuild(cfg Config, draws []DrawRecord, iter int) (*ReplayInfo, error) {
	if iter < 0 || iter >= len(draws) {
		return nil, fmt.Errorf("campaign: replay iteration %d outside draw log (0..%d)", iter, len(draws)-1)
	}
	rec := draws[iter]
	if !rec.Generated {
		return nil, fmt.Errorf("campaign: iteration %d generated no classfile (mutator %d inapplicable or mutant unlowerable)", iter, rec.MutatorID)
	}

	seeds := cfg.seedCorpus()
	var parent *jimple.Class
	if rec.Parent < 0 {
		if rec.PoolIndex >= len(seeds) {
			return nil, fmt.Errorf("campaign: draw log pool index %d exceeds seed corpus (%d seeds)", rec.PoolIndex, len(seeds))
		}
		parent = seeds[rec.PoolIndex]
	} else {
		pi, err := Rebuild(cfg, draws, rec.Parent)
		if err != nil {
			return nil, fmt.Errorf("campaign: rebuilding parent of iteration %d: %w", iter, err)
		}
		parent = pi.Class
	}

	muts := mutation.Registry()
	if rec.MutatorID < 0 || rec.MutatorID >= len(muts) {
		return nil, fmt.Errorf("campaign: draw log mutator id %d out of range", rec.MutatorID)
	}
	mutant := parent.Clone()
	if !muts[rec.MutatorID].Apply(mutant, DeriveRNG(cfg.Rand, iter)) {
		return nil, fmt.Errorf("campaign: mutator %d no longer applies at iteration %d — replay config diverges from the campaign", rec.MutatorID, iter)
	}
	finishMutant(mutant, iter)
	data, err := lower(mutant)
	if err != nil {
		return nil, fmt.Errorf("campaign: rebuilt mutant of iteration %d fails to lower: %w", iter, err)
	}
	return &ReplayInfo{Record: rec, Class: mutant, Data: data}, nil
}

// Replay reproduces iteration iter of the campaign cfg describes: it
// re-runs the campaign prefix up to and including iter to recover the
// draw log and the original bytes, rebuilds the mutant in isolation via
// Rebuild, and cross-checks the two byte-for-byte. Draw/mutate stream
// separation makes the rebuild independent of worker count and of the
// selector's rejection-loop behaviour.
func Replay(cfg Config, iter int) (*ReplayInfo, error) {
	if cfg.Algorithm == Bytefuzz {
		return nil, fmt.Errorf("campaign: replay is not supported for bytefuzz (its pool holds raw bytes, not models)")
	}
	if iter < 0 || iter >= cfg.Iterations {
		return nil, fmt.Errorf("campaign: replay iteration %d outside budget 0..%d", iter, cfg.Iterations-1)
	}
	prefix := cfg
	prefix.Iterations = iter + 1
	prefix.KeepGenBytes = true // keep the campaign's bytes for the cross-check
	prefix.Observer = nil
	res, err := Run(prefix)
	if err != nil {
		return nil, err
	}
	info, err := Rebuild(prefix, res.Draws, iter)
	if err != nil {
		return nil, err
	}
	for _, g := range res.Gen {
		if g.Iter == iter {
			info.Verified = bytes.Equal(info.Data, g.Data)
			if !info.Verified {
				return info, fmt.Errorf("campaign: replayed bytes of iteration %d differ from the campaign's", iter)
			}
			return info, nil
		}
	}
	return nil, fmt.Errorf("campaign: iteration %d missing from campaign prefix", iter)
}
