package campaign

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/coverage"
	"repro/internal/jvm"
	"repro/internal/seedgen"
	"repro/internal/seedsel"
)

var schedStrategies = []seedsel.Strategy{seedsel.Clustered, seedsel.Yield}

// schedConfig builds the fixed-seed campaign the scheduler determinism
// and golden tests share — detConfig's shape with a fresh seedsel
// scheduler as the source (stateful sources serve exactly one engine
// run, so every Run/Resume gets its own).
func schedConfig(t *testing.T, strategy seedsel.Strategy) Config {
	t.Helper()
	seeds := seedgen.Generate(seedgen.DefaultOptions(20, 5))
	sched, err := seedsel.New(seeds, seedsel.Options{Strategy: strategy, RefSpec: jvm.HotSpot9()})
	if err != nil {
		t.Fatalf("seedsel.New(%s): %v", strategy, err)
	}
	return Config{
		Algorithm:       Classfuzz,
		Criterion:       coverage.STBR,
		Source:          sched,
		Iterations:      160,
		Rand:            17,
		RefSpec:         jvm.HotSpot9(),
		StaticPrefilter: true,
	}
}

// TestFlatUniformAdapterPinsIntn pins the adapter to the historical
// draw byte-for-byte: FlatSeeds.Pick must consume exactly one Intn(n)
// — nothing more, nothing less — so every pre-SeedSource golden stays
// valid. (referenceClassfuzz pins the same thing end-to-end.)
func TestFlatUniformAdapterPinsIntn(t *testing.T) {
	src := FlatSeeds(seedgen.Generate(seedgen.DefaultOptions(3, 1)))
	if src.Strategy() != StrategyUniform {
		t.Fatalf("adapter strategy %q, want %q", src.Strategy(), StrategyUniform)
	}
	r1 := rand.New(rand.NewSource(99))
	r2 := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		n := i%37 + 1
		if got, want := src.Pick(r1, n), r2.Intn(n); got != want {
			t.Fatalf("draw %d: Pick=%d, Intn=%d", i, got, want)
		}
	}
	// Observe/Grew must consume no randomness and no state.
	src.Observe(0, true, true)
	src.Grew(3, 0)
	if st, err := src.MarshalState(); err != nil || len(st) != 0 {
		t.Fatalf("flat adapter carries state: %q, %v", st, err)
	}
	if got, want := src.Pick(r1, 11), r2.Intn(11); got != want {
		t.Fatalf("post-Observe Pick=%d, Intn=%d", got, want)
	}
}

// TestSchedulerGoldens pins the clustered and yield campaigns'
// canonical (workers=1) results against checked-in goldens.
// Regenerate with: go test ./internal/campaign -run SchedulerGoldens -update
func TestSchedulerGoldens(t *testing.T) {
	for _, strategy := range schedStrategies {
		strategy := strategy
		t.Run(string(strategy), func(t *testing.T) {
			t.Parallel()
			res, err := Run(schedConfig(t, strategy))
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(summarize(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", fmt.Sprintf("golden_classfuzz_%s.json", strategy))
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to record): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("campaign summary diverges from %s (re-record with -update if the change is intended)", path)
			}
		})
	}
}

// TestSchedulerDeterministicAcrossWorkers sweeps workers 1, 4,
// GOMAXPROCS crossed with batch 1 and 8 for both scheduling
// strategies: identical summaries everywhere, like the flat draw.
func TestSchedulerDeterministicAcrossWorkers(t *testing.T) {
	for _, strategy := range schedStrategies {
		strategy := strategy
		t.Run(string(strategy), func(t *testing.T) {
			t.Parallel()
			var want summary
			first := true
			for _, w := range workerCounts() {
				for _, batch := range []int{1, 8} {
					cfg := schedConfig(t, strategy)
					cfg.Workers = w
					cfg.Batch = batch
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("workers=%d batch=%d: %v", w, batch, err)
					}
					got := summarize(res)
					if first {
						want = got
						first = false
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("workers=%d batch=%d diverges from canonical run", w, batch)
					}
				}
			}
		})
	}
}

// TestSchedulerKillResume: interrupting a scheduled campaign and
// resuming from the JSON round-tripped snapshot — with a FRESH
// scheduler, as the SeedSource contract requires — must reproduce the
// uninterrupted run bit-for-bit (modulo the prefilter cache split,
// which restarts cold like every resume — the sum is checked instead).
// This exercises the snapshot's seed_sched cross-check: restore
// replays the committed prefix into the new scheduler and verifies its
// serialized state against the checkpoint.
func TestSchedulerKillResume(t *testing.T) {
	for _, strategy := range schedStrategies {
		strategy := strategy
		t.Run(string(strategy), func(t *testing.T) {
			t.Parallel()
			full, err := Run(schedConfig(t, strategy))
			if err != nil {
				t.Fatal(err)
			}
			want := resumeSummarize(full)
			for _, stopAt := range []int{1, 40, 159} {
				ctrl := NewControl()
				ctrl.StopAt(stopAt)
				run1 := schedConfig(t, strategy)
				run1.Control = ctrl
				eng, err := NewEngine(run1)
				if err != nil {
					t.Fatalf("stopAt=%d: NewEngine: %v", stopAt, err)
				}
				if _, err := eng.Run(); err != nil {
					t.Fatalf("stopAt=%d: interrupted run: %v", stopAt, err)
				}
				snap := ctrl.Final()
				if snap == nil {
					t.Fatalf("stopAt=%d: no final snapshot", stopAt)
				}
				if snap.SeedStrategy != string(strategy) {
					t.Fatalf("stopAt=%d: snapshot strategy %q, want %q", stopAt, snap.SeedStrategy, strategy)
				}
				if len(snap.SeedSched) == 0 {
					t.Fatalf("stopAt=%d: snapshot carries no scheduler state", stopAt)
				}
				blob, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var loaded Snapshot
				if err := json.Unmarshal(blob, &loaded); err != nil {
					t.Fatal(err)
				}
				eng2, err := Resume(schedConfig(t, strategy), &loaded)
				if err != nil {
					t.Fatalf("stopAt=%d: Resume: %v", stopAt, err)
				}
				res, err := eng2.Run()
				if err != nil {
					t.Fatalf("stopAt=%d: resumed run: %v", stopAt, err)
				}
				if got := resumeSummarize(res); !reflect.DeepEqual(got, want) {
					t.Errorf("stopAt=%d: resumed summary diverges from uninterrupted run", stopAt)
				}
				if pf, rpf := res.Prefilter, full.Prefilter; pf == nil || rpf == nil ||
					pf.Checked != rpf.Checked || pf.Doomed != rpf.Doomed ||
					pf.Skipped+pf.Executed != rpf.Skipped+rpf.Executed {
					t.Errorf("stopAt=%d: prefilter stats drift beyond the cache split: %+v vs %+v", stopAt, pf, rpf)
				}
			}
		})
	}
}

// TestResumeRejectsWrongStrategy: a snapshot recorded under one
// strategy must not resume under another.
func TestResumeRejectsWrongStrategy(t *testing.T) {
	ctrl := NewControl()
	ctrl.StopAt(40)
	cfg := schedConfig(t, seedsel.Clustered)
	cfg.Control = ctrl
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	snap := ctrl.Final()
	if _, err := Resume(schedConfig(t, seedsel.Yield), snap); err == nil {
		t.Error("Resume accepted a snapshot from a different seed strategy")
	}
	uniform := schedConfig(t, seedsel.Clustered)
	uniform.Source = FlatSeeds(uniform.Source.Corpus())
	if _, err := Resume(uniform, snap); err == nil {
		t.Error("Resume accepted a clustered snapshot under the uniform adapter")
	}
}
