package campaign

import "math/rand"

import "repro/internal/jimple"

// SeedSource is the engine's seed-corpus abstraction: it owns the
// initial corpus and decides, per iteration, which pool entry the draw
// stage mutates. The historical behaviour — a flat slice drawn
// uniformly — is FlatSeeds; richer policies (clustering, yield-aware
// scheduling, exploration floors) implement the same five methods and
// plug into the draw stage unchanged (internal/seedsel provides the
// second implementation).
//
// Determinism contract. Pick runs on the sequential draw stage with
// iteration i's private draw stream; Observe and Grew run on the
// sequential commit stage, in iteration order. A source must therefore
// be a pure function of its construction inputs and the exact sequence
// of Pick/Observe/Grew calls — no clocks, no shared RNGs, no
// goroutines — so campaign results stay bit-identical at any worker
// count and batch size, and so snapshot restore can rebuild the
// source's state by replaying the recorded interleaving. A stateful
// source serves exactly one engine run: Resume must be handed a fresh
// one (the restore replays the committed prefix into it).
type SeedSource interface {
	// Strategy names the selection policy ("uniform", "clustered",
	// "yield"); snapshots record it and Resume refuses a mismatch.
	Strategy() string
	// Corpus returns the initial seed corpus. The engine clones entries
	// before mutation; the slice must not change after construction.
	Corpus() []*jimple.Class
	// Pick returns the pool index to mutate, in [0, n), where n is the
	// current pool size (initial corpus plus recycled mutants). rng is
	// the iteration's private draw stream; Pick may consume any fixed
	// amount of it.
	Pick(rng *rand.Rand, n int) int
	// Observe reports iteration outcome feedback for the pool entry a
	// Pick returned: generated says the mutator applied and lowered,
	// accepted says the mutant entered the test suite. Called once per
	// committed iteration, in iteration order.
	Observe(poolIndex int, generated, accepted bool)
	// Grew reports that the pool appended a recycled mutant at index
	// poolIndex, mutated from the entry at index parent. Called in
	// commit order, immediately after the append.
	Grew(poolIndex, parent int)
	// MarshalState serialises the source's evolving state for
	// checkpoints (nil means stateless). Restore replays the committed
	// prefix into a fresh source and cross-checks the result against
	// the snapshot's copy, so the encoding must be deterministic.
	MarshalState() ([]byte, error)
}

// FlatSeeds adapts a flat seed slice to SeedSource with the engine's
// historical policy: one uniform Intn(n) per draw, no feedback, no
// state. Campaigns run through FlatSeeds are byte-for-byte identical
// to campaigns run before the SeedSource redesign (the determinism
// goldens and the straight-line reference implementation pin this).
func FlatSeeds(seeds []*jimple.Class) SeedSource {
	return flatUniform{seeds: seeds}
}

type flatUniform struct {
	seeds []*jimple.Class
}

// StrategyUniform names the flat-uniform policy; cmd flag parsing and
// snapshot validation compare against it.
const StrategyUniform = "uniform"

func (f flatUniform) Strategy() string                  { return StrategyUniform }
func (f flatUniform) Corpus() []*jimple.Class           { return f.seeds }
func (f flatUniform) Pick(rng *rand.Rand, n int) int    { return rng.Intn(n) }
func (f flatUniform) Observe(int, bool, bool)           {}
func (f flatUniform) Grew(int, int)                     {}
func (f flatUniform) MarshalState() ([]byte, error)     { return nil, nil }

// seedCorpus returns the configured initial corpus (nil-safe).
func (c *Config) seedCorpus() []*jimple.Class {
	if c.Source == nil {
		return nil
	}
	return c.Source.Corpus()
}
