package campaign

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/coverage"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mcmc"
	"repro/internal/mutation"
)

// poolEntry is one seed-pool member: an original seed (iter == -1) or
// an accepted mutant tagged with the iteration that produced it.
type poolEntry struct {
	class *jimple.Class
	iter  int
}

// task carries one iteration through the pipeline. The draw stage fills
// the input fields on the coordinator; a worker fills the output fields
// and closes done; the commit stage reads them back on the coordinator
// (the channel close orders the accesses).
type task struct {
	iter   int
	parent *jimple.Class
	rec    DrawRecord

	// outputs of the mutate/filter/execute stages
	applied  bool // mutator applicable
	lowered  bool // classfile bytes produced
	mutant   *jimple.Class
	data     []byte
	trace    *coverage.Trace
	checked  bool // prefilter inspected the mutant
	doomed   bool // statically certain loading-phase reject
	cacheHit bool // trace served from the prefilter cache
	fp       uint64

	done chan struct{}
}

type engine struct {
	cfg  Config
	obs  obs
	muts []*mutation.Mutator

	selector         mcmc.Selector
	coverageDirected bool
	suite            *coverage.Suite
	greedyUnion      *coverage.Trace
	genStats         *coverage.Suite
	pool             []poolEntry
	pf               *prefilter

	lookahead int
	res       *Result
}

func newEngine(cfg Config) *engine {
	e := &engine{
		cfg:              cfg,
		obs:              obs{cfg.Observer},
		muts:             mutation.Registry(),
		coverageDirected: cfg.Algorithm != Randfuzz,
		lookahead:        cfg.lookahead(),
	}

	// Mutator selector: classfuzz uses the MCMC chain; everything else
	// selects uniformly. The chain's initial state comes from the
	// campaign's setup stream (Algorithm 1 line 3).
	if cfg.Algorithm == Classfuzz {
		p := cfg.P
		if p == 0 {
			p = mcmc.DefaultP(len(e.muts))
		}
		e.selector = mcmc.NewSampler(len(e.muts), p, initRNG(cfg.Rand))
	} else {
		e.selector = mcmc.NewUniformSampler(len(e.muts))
	}

	// Acceptance state.
	e.suite = coverage.NewSuite(cfg.Criterion)
	if cfg.Algorithm == Uniquefuzz {
		e.suite = coverage.NewSuite(coverage.STBR)
	}
	e.greedyUnion = coverage.NewTrace()
	e.genStats = coverage.NewSuite(coverage.STBR) // counts unique stats over Gen

	if cfg.StaticPrefilter && e.coverageDirected {
		e.pf = newPrefilter(&e.cfg.RefSpec.Policy)
	}
	return e
}

func (e *engine) run() (*Result, error) {
	cfg := &e.cfg
	start := time.Now()

	// Seed pool: Algorithm 1 line 1 initialises TestClasses with the
	// seeds, so seed traces participate in uniqueness checks.
	e.pool = make([]poolEntry, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		e.pool = append(e.pool, poolEntry{class: s, iter: -1})
	}
	if e.coverageDirected {
		vm := jvm.New(cfg.RefSpec)
		rec := coverage.NewRecorder(jvm.ProbeRegistry())
		vm.SetRecorder(rec)
		for _, s := range cfg.Seeds {
			tr, _, err := runOnRef(vm, rec, s)
			if err != nil {
				continue // unlowerable seed: skip its trace
			}
			switch cfg.Algorithm {
			case Greedyfuzz:
				e.greedyUnion = coverage.Merge(e.greedyUnion, tr)
			default:
				if e.suite.Unique(tr) {
					e.suite.Add(tr)
				}
			}
		}
	}

	e.res = &Result{
		Algorithm:  cfg.Algorithm,
		Criterion:  cfg.Criterion,
		Iterations: cfg.Iterations,
		Draws:      make([]DrawRecord, 0, cfg.Iterations),
		Workers:    cfg.workers(),
		Lookahead:  e.lookahead,
	}
	if e.pf != nil {
		e.res.Prefilter = &e.pf.stats
	}

	// The pipeline. The coordinator (this goroutine) performs draws and
	// commits in a fixed interleaving — draw(0..D-1), then
	// commit(i−D); draw(i) for each subsequent i — so every draw
	// observes exactly the commits of iterations ≤ i−D regardless of
	// how the worker pool schedules the stages in between. At most D
	// tasks are in flight, hence the ring and the channel bound.
	D := e.lookahead
	N := cfg.Iterations
	tasks := make(chan *task, D)
	ring := make([]*task, D)

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker VM + recorder: the reference VM is stateless
			// across runs, so one instance serves the worker's stream of
			// mutants without sharing anything with its peers.
			vm := jvm.New(cfg.RefSpec)
			rec := coverage.NewRecorder(jvm.ProbeRegistry())
			vm.SetRecorder(rec)
			for t := range tasks {
				e.process(t, vm, rec)
				close(t.done)
			}
		}()
	}

	for i := 0; i < N; i++ {
		if i >= D {
			e.commit(ring[(i-D)%D])
		}
		t := e.draw(i)
		ring[i%D] = t
		tasks <- t
	}
	close(tasks)
	tail := N - D
	if tail < 0 {
		tail = 0
	}
	for i := tail; i < N; i++ {
		e.commit(ring[i%D])
	}
	wg.Wait()

	e.finalize()
	e.res.Elapsed = time.Since(start)
	return e.res, nil
}

// draw runs the sequential draw stage for iteration i: pick a seed from
// the pool, propose a mutator, log the DrawRecord. State read here
// (pool, selector chain) was last written by commit(i−D).
func (e *engine) draw(i int) *task {
	rng := drawRNG(e.cfg.Rand, i)
	idx := rng.Intn(len(e.pool))
	pe := e.pool[idx]
	muID := e.selector.Next(rng)
	rec := DrawRecord{Iter: i, PoolIndex: idx, Parent: pe.iter, MutatorID: muID}
	e.res.Draws = append(e.res.Draws, rec)
	e.obs.iterationStarted(i, idx, muID)
	return &task{iter: i, parent: pe.class, rec: rec, done: make(chan struct{})}
}

// process runs the mutate/filter/execute stages for one task on a
// worker. It touches no engine state except the (versioned, locked)
// prefilter cache; everything else flows through the task.
func (e *engine) process(t *task, vm *jvm.VM, rec *coverage.Recorder) {
	rng := DeriveRNG(e.cfg.Rand, t.iter)
	mutant := t.parent.Clone()
	if !e.muts[t.rec.MutatorID].Apply(mutant, rng) {
		// Soot-style failure: no classfile generated this iteration.
		return
	}
	t.applied = true
	finishMutant(mutant, t.iter)
	t.mutant = mutant

	data, err := lower(mutant)
	if err != nil {
		return
	}
	t.lowered = true
	t.data = data

	if !e.coverageDirected {
		return // randfuzz never runs the reference VM
	}
	var parsed *classfile.File
	if e.pf != nil {
		t.checked = true
		if f, perr := classfile.Parse(data); perr == nil {
			parsed = f
			if d := analysis.LoadReject(f, e.pf.policy); d != nil {
				t.doomed = true
				t.fp = analysis.Fingerprint(f)
				// Only cache entries committed at least Lookahead
				// iterations ago are visible — see prefilter.
				if tr, ok := e.pf.lookup(t.fp, t.iter-e.lookahead); ok {
					t.cacheHit = true
					t.trace = tr
					return
				}
			}
		}
	}
	rec.Reset()
	if parsed != nil {
		// The prefilter already parsed these bytes successfully; reuse
		// the parse (RunParsed fires the parse probes, so the trace is
		// identical to vm.Run re-parsing the same data).
		vm.RunParsed(parsed)
	} else {
		vm.Run(data)
	}
	t.trace = rec.Trace()
}

// commit runs the sequential commit stage for one task, in iteration
// order: prefilter bookkeeping, the acceptance decision against the
// suite, pool recycling and selector feedback.
func (e *engine) commit(t *task) {
	<-t.done

	generated := t.applied && t.lowered
	e.obs.mutated(t.iter, t.rec.MutatorID, generated)
	if !generated {
		e.selector.Record(t.rec.MutatorID, false)
		e.obs.selectorUpdated(t.iter, t.rec.MutatorID, false)
		return
	}
	e.res.Draws[t.iter].Generated = true

	if t.checked {
		e.pf.stats.Checked++
		if t.doomed {
			e.pf.stats.Doomed++
			if t.cacheHit {
				e.pf.stats.Skipped++
				e.obs.prefilterHit(t.iter)
			} else {
				e.pf.stats.Executed++
				e.pf.insert(t.fp, t.trace, t.iter)
			}
		}
	}
	if e.coverageDirected {
		e.obs.executed(t.iter, t.cacheHit)
	}

	gc := &GenClass{Iter: t.iter, Name: t.mutant.Name, MutatorID: t.rec.MutatorID}
	if e.coverageDirected {
		gc.Stats = t.trace.Stats()
		e.genStats.Add(t.trace)
	}
	if e.cfg.KeepClasses {
		gc.Class = t.mutant
	}
	e.res.Gen = append(e.res.Gen, gc)

	// Acceptance decision.
	accepted := false
	switch e.cfg.Algorithm {
	case Randfuzz:
		accepted = true // every generated classfile is a test
	case Greedyfuzz:
		merged := coverage.Merge(e.greedyUnion, t.trace)
		if merged.Stats() != e.greedyUnion.Stats() {
			e.greedyUnion = merged
			accepted = true
		}
	default: // classfuzz, uniquefuzz
		if e.suite.Unique(t.trace) {
			e.suite.Add(t.trace)
			accepted = true
		}
	}
	if accepted {
		gc.Accepted = true
		gc.Data = t.data
		e.res.Test = append(e.res.Test, gc)
		if !e.cfg.NoSeedRecycling {
			e.pool = append(e.pool, poolEntry{class: t.mutant, iter: t.iter})
		}
		e.obs.accepted(t.iter, gc.Name, gc.Stats)
	} else if e.cfg.KeepClasses || e.cfg.KeepGenBytes {
		// Unaccepted mutants keep their bytes only on request: dropping
		// them is what bounds campaign RSS at paper scale.
		gc.Data = t.data
	}
	e.selector.Record(t.rec.MutatorID, accepted)
	e.obs.selectorUpdated(t.iter, t.rec.MutatorID, accepted)
}

// finalize derives the summary statistics.
func (e *engine) finalize() {
	res := e.res
	res.GenUniqueStats = e.genStats.UniqueStatsCount()
	res.MutatorStats = make([]MutatorStat, len(e.muts))
	for i, m := range e.muts {
		res.MutatorStats[i] = MutatorStat{ID: i, Name: m.Name}
	}
	if sel, ok := e.selector.(*mcmc.Sampler); ok {
		for i := range res.MutatorStats {
			res.MutatorStats[i].Selected = sel.Selected(i)
			res.MutatorStats[i].Success = sel.Succeeded(i)
		}
		return
	}
	// Uniform selectors: exact per-mutator tallies from the generated
	// classes (draws whose mutator was inapplicable are not counted,
	// matching how the evaluation attributes frequencies for the
	// unguided algorithms).
	for _, g := range res.Gen {
		res.MutatorStats[g.MutatorID].Selected++
		if g.Accepted {
			res.MutatorStats[g.MutatorID].Success++
		}
	}
}

// finishMutant applies the deterministic post-mutation fixups: the
// iteration-derived name, the version pin, and the observable main.
func finishMutant(c *jimple.Class, iter int) {
	c.Name = fmt.Sprintf("M%d", 1430000000+iter)
	c.Major = 51 // every mutant is pinned to version 51 (§3.1.1)
	// §2.2.1: each mutant is supplemented with a simple main that
	// prints a completion message, so the mutant observably either
	// runs or fails earlier in the startup pipeline. (Interfaces are
	// left alone; a main inside an interface is itself a mutation the
	// interface-member mutators produce deliberately.)
	if !c.IsInterface() && c.FindMethod("main") == nil {
		c.AddStandardMain("Completed!")
	}
}

// lower compiles a mutant to classfile bytes.
func lower(c *jimple.Class) ([]byte, error) {
	f, err := jimple.Lower(c)
	if err != nil {
		return nil, err
	}
	return f.Bytes()
}

// runOnRef lowers the class and executes it on the instrumented
// reference VM, returning the coverage trace and the bytes.
func runOnRef(vm *jvm.VM, rec *coverage.Recorder, c *jimple.Class) (*coverage.Trace, []byte, error) {
	data, err := lower(c)
	if err != nil {
		return nil, nil, err
	}
	rec.Reset()
	vm.Run(data)
	return rec.Trace(), data, nil
}
