package campaign

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/coverage"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mcmc"
	"repro/internal/mutation"
	"repro/internal/prng"
	"repro/internal/telemetry"
)

// poolEntry is one seed-pool member: an original seed (iter == -1) or
// an accepted mutant tagged with the iteration that produced it.
type poolEntry struct {
	class *jimple.Class
	iter  int
}

// task carries one iteration through the pipeline. The draw stage fills
// the input fields on the coordinator; a worker fills the output fields;
// the commit stage reads them back on the coordinator (the close of the
// enclosing block's done channel orders the accesses). Tasks live
// embedded by value inside their block, so a dispatch allocates one
// block instead of K tasks plus K channels.
type task struct {
	iter   int
	parent *jimple.Class
	rec    DrawRecord

	// outputs of the mutate/filter/execute stages
	applied       bool // mutator applicable
	lowered       bool // classfile bytes produced
	mutant        *jimple.Class
	data          []byte
	trace         *coverage.Trace
	checked       bool   // prefilter inspected the mutant
	parsed        bool   // bytes parsed as a classfile
	doomed        bool   // statically certain loading-phase reject
	verifyChecked bool   // verify band inspected the mutant
	verifyDoomed  bool   // statically certain linking-phase reject
	cacheHit      bool   // trace served from the prefilter cache
	fp            uint64 // trace-cache key of the band that doomed it

	// dataRetained is set at commit when t.data escaped into the result
	// (accepted bytes, or KeepClasses/KeepGenBytes); only unretained
	// buffers return to the block's recycling pool.
	dataRetained bool
}

// block is one dispatch unit: up to Config.Batch tasks embedded by
// value, a single completion channel, and a pool of class-byte buffers
// the serialiser reuses. Ownership alternates strictly — coordinator
// while drawing, one worker between the channel send and close(done),
// coordinator again after commit — so no field needs a lock. Blocks
// are recycled through a coordinator-owned free list; the tasks slice
// is never regrown past its original capacity, so *task pointers in
// the commit ring stay valid.
type block struct {
	tasks []task
	done  chan struct{}
	bufs  [][]byte
}

// takeBuf pops a recycled class-byte buffer (length 0, capacity from a
// previous serialisation) or hands out a fresh one.
func (b *block) takeBuf() []byte {
	if n := len(b.bufs); n > 0 {
		buf := b.bufs[n-1]
		b.bufs = b.bufs[:n-1]
		return buf[:0]
	}
	return make([]byte, 0, 1024)
}

// taskRef locates one task inside its block for the commit ring.
type taskRef struct {
	b   *block
	idx int
}

// engineTel holds the engine's interned telemetry handles. The count
// handles are always bound (against Config.Telemetry or a private
// registry) and incremented only on the sequential draw/commit path,
// so their values are deterministic at any worker count and
// Result.Prefilter can be derived from them. The stage histograms are
// bound only when an external registry is attached — timing fires
// time.Now on the worker hot path, and a campaign nobody is observing
// should not pay for it.
type engineTel struct {
	iterations *telemetry.Counter // campaign.iterations
	generated  *telemetry.Counter // campaign.generated
	failures   *telemetry.Counter // campaign.mutator_failures
	executions *telemetry.Counter // campaign.executions
	accepts    *telemetry.Counter // campaign.accepts
	committed  *telemetry.Counter // campaign.committed
	pfChecked  *telemetry.Counter // campaign.prefilter.checked
	pfDoomed   *telemetry.Counter // campaign.prefilter.doomed
	pfVerify   *telemetry.Counter // campaign.prefilter.verify_doomed
	pfSkipped  *telemetry.Counter // campaign.prefilter.skipped
	pfExecuted *telemetry.Counter // campaign.prefilter.executed
	poolSize   *telemetry.Gauge   // campaign.pool_size

	// verdicts tallies the prefilter's static accept/reject stream
	// (campaign.prefilter.verdict.accept / .reject) — the analysis
	// package's own view of the same commit-path decisions.
	verdicts analysis.VerdictCounters
	// dataflow tallies the verify band's claims under the canonical
	// analysis.dataflow.* names (definite link-accept, definite
	// reject, unparseable-unknown); load-doomed mutants never reach
	// the band and are not counted.
	dataflow analysis.DataflowCounters

	draw      *telemetry.Histogram // campaign.stage.draw_ns
	mutate    *telemetry.Histogram // campaign.stage.mutate_ns
	prefilter *telemetry.Histogram // campaign.stage.prefilter_ns
	exec      *telemetry.Histogram // campaign.stage.exec_ns
	commit    *telemetry.Histogram // campaign.stage.commit_ns

	// prefilter counter values at campaign start, so a reused external
	// registry still yields this campaign's own PrefilterStats.
	pfBase [5]int64
}

// nonNilRegistry substitutes a private registry when the caller did
// not attach one, so the deterministic counters always have somewhere
// to land (Result.Prefilter is derived from them).
func nonNilRegistry(reg *telemetry.Registry) *telemetry.Registry {
	if reg == nil {
		return telemetry.New()
	}
	return reg
}

func newEngineTel(reg *telemetry.Registry, timing bool) engineTel {
	t := engineTel{
		iterations: reg.Counter("campaign.iterations"),
		generated:  reg.Counter("campaign.generated"),
		failures:   reg.Counter("campaign.mutator_failures"),
		executions: reg.Counter("campaign.executions"),
		accepts:    reg.Counter("campaign.accepts"),
		committed:  reg.Counter("campaign.committed"),
		pfChecked:  reg.Counter("campaign.prefilter.checked"),
		pfDoomed:   reg.Counter("campaign.prefilter.doomed"),
		pfVerify:   reg.Counter("campaign.prefilter.verify_doomed"),
		pfSkipped:  reg.Counter("campaign.prefilter.skipped"),
		pfExecuted: reg.Counter("campaign.prefilter.executed"),
		poolSize:   reg.Gauge("campaign.pool_size"),
		verdicts:   analysis.NewVerdictCounters(reg, "campaign.prefilter.verdict"),
		dataflow:   analysis.NewDataflowCounters(reg),
	}
	if timing {
		t.draw = reg.Histogram("campaign.stage.draw_ns")
		t.mutate = reg.Histogram("campaign.stage.mutate_ns")
		t.prefilter = reg.Histogram("campaign.stage.prefilter_ns")
		t.exec = reg.Histogram("campaign.stage.exec_ns")
		t.commit = reg.Histogram("campaign.stage.commit_ns")
	}
	t.pfBase = [5]int64{t.pfChecked.Load(), t.pfDoomed.Load(), t.pfSkipped.Load(), t.pfExecuted.Load(), t.pfVerify.Load()}
	return t
}

// prefilterStats derives this campaign's savings from the counter
// deltas since newEngineTel.
func (t *engineTel) prefilterStats() PrefilterStats {
	return PrefilterStats{
		Checked:      int(t.pfChecked.Load() - t.pfBase[0]),
		Doomed:       int(t.pfDoomed.Load() - t.pfBase[1]),
		Skipped:      int(t.pfSkipped.Load() - t.pfBase[2]),
		Executed:     int(t.pfExecuted.Load() - t.pfBase[3]),
		VerifyDoomed: int(t.pfVerify.Load() - t.pfBase[4]),
	}
}

type engine struct {
	cfg  Config
	obs  obs
	muts []*mutation.Mutator
	// src is the seed-selection policy; seeds caches its corpus (the
	// pool's prefix, the digest's input, every lineage's bottom).
	src   SeedSource
	seeds []*jimple.Class

	selector         mcmc.Selector
	coverageDirected bool
	suite            *coverage.Suite
	greedyUnion      *coverage.Trace
	genStats         *coverage.Suite
	pool             []poolEntry
	pf               *prefilter
	// vmemo is the campaign's method-verification memo, shared by every
	// worker VM (runtime-verifier oracle) and the prefilter's verify
	// band (dataflow oracle). Nil when Config.DisableVerifyMemo is set.
	vmemo *jvm.VerifyMemo

	tel    engineTel
	timing bool // external registry attached: stage + VM timing on

	lookahead int
	batch     int
	res       *Result

	// drawR is the coordinator's reused draw-stream generator: reseeded
	// per iteration (prng.Reseed), byte-for-byte equivalent to a fresh
	// drawRNG but without reallocating the ~5KB rand source each draw.
	drawR *rand.Rand
	// freeBlocks recycles dispatch blocks (and their task storage and
	// byte buffers) on the coordinator once every task in a block has
	// committed.
	freeBlocks []*block

	// Checkpoint/resume state. drawn and committed advance only on the
	// coordinator; mergedCov is the word-OR of the seed traces and every
	// accepted trace (Result.Coverage); genLog mirrors commits of
	// generated iterations for Snapshot. ctrl, when attached, is
	// serviced at the top of each coordinator iteration. On a resumed
	// engine, startIter is the first iteration this process commits and
	// resumeDraws holds the in-flight window to re-process.
	ctrl        *Control
	startIter   int
	resumeDraws []DrawRecord
	drawn       int
	committed   int
	stopped     bool
	stopSnap    *Snapshot
	genLog      []GenEntry
	mergedCov   *coverage.Trace
	seedDigest  uint64
	resumed     bool
}

func newEngine(cfg Config) *engine {
	e := &engine{
		cfg:              cfg,
		obs:              obs{cfg.Observer},
		muts:             mutation.Registry(),
		src:              cfg.Source,
		seeds:            cfg.Source.Corpus(),
		coverageDirected: cfg.Algorithm != Randfuzz,
		lookahead:        cfg.lookahead(),
		batch:            cfg.batch(),
		timing:           cfg.Telemetry != nil,
		ctrl:             cfg.Control,
	}

	// Counts always flow into a registry — the caller's, or a private
	// one Result.Prefilter is derived from. Counts move only on the
	// sequential draw/commit path, so they are deterministic at any
	// worker count; stage timing (the only telemetry touching workers)
	// stays off unless someone attached a registry to observe it.
	e.tel = newEngineTel(nonNilRegistry(cfg.Telemetry), e.timing)

	// Mutator selector: classfuzz uses the MCMC chain; everything else
	// selects uniformly. The chain's initial state comes from the
	// campaign's setup stream (Algorithm 1 line 3).
	if cfg.Algorithm == Classfuzz {
		p := cfg.P
		if p == 0 {
			p = mcmc.DefaultP(len(e.muts))
		}
		sel := mcmc.NewSampler(len(e.muts), p, initRNG(cfg.Rand))
		if e.timing {
			// Live per-mutator gauges (same names finalize Sets for the
			// non-MCMC selectors), maintained as the chain draws and
			// records on the sequential coordinator.
			selG := make([]*telemetry.Gauge, len(e.muts))
			succG := make([]*telemetry.Gauge, len(e.muts))
			for i, m := range e.muts {
				selG[i] = cfg.Telemetry.Gauge("campaign.mutator." + m.Name + ".selected")
				succG[i] = cfg.Telemetry.Gauge("campaign.mutator." + m.Name + ".success")
			}
			sel.Instrument(selG, succG)
		}
		e.selector = sel
	} else {
		e.selector = mcmc.NewUniformSampler(len(e.muts))
	}

	// Acceptance state.
	e.suite = coverage.NewSuite(cfg.Criterion)
	if cfg.Algorithm == Uniquefuzz {
		e.suite = coverage.NewSuite(coverage.STBR)
	}
	e.greedyUnion = coverage.NewTrace()
	e.genStats = coverage.NewSuite(coverage.STBR) // counts unique stats over Gen

	// The verify memo carries per-method verdicts across the mutant
	// stream: a mutant's untouched methods (the generated main, <init>,
	// unmutated seed methods) reuse lineage verdicts instead of
	// re-running the dataflow fixpoint on every generation. Injected
	// memos (Config.VerifyMemo) stay warm across campaigns.
	if !cfg.DisableVerifyMemo {
		e.vmemo = cfg.VerifyMemo
		if e.vmemo == nil {
			e.vmemo = jvm.NewVerifyMemo()
		}
		if cfg.Telemetry != nil {
			e.vmemo.UseTelemetry(cfg.Telemetry)
		}
	}

	if cfg.StaticPrefilter && e.coverageDirected {
		e.pf = newPrefilter(cfg.RefSpec)
		e.pf.vmemo = e.vmemo
	}
	return e
}

// initSeedState builds the seed pool and folds the seed traces into
// the acceptance state (Algorithm 1 line 1 initialises TestClasses
// with the seeds, so seed traces participate in uniqueness checks).
// Shared verbatim by fresh runs and snapshot restores.
func (e *engine) initSeedState() {
	cfg := &e.cfg
	e.pool = make([]poolEntry, 0, len(e.seeds))
	for _, s := range e.seeds {
		e.pool = append(e.pool, poolEntry{class: s, iter: -1})
	}
	if !e.coverageDirected {
		return
	}
	e.mergedCov = coverage.NewTrace()
	vm := jvm.New(cfg.RefSpec)
	rec := coverage.NewRecorder(jvm.ProbeRegistry())
	vm.SetRecorder(rec)
	// Seed runs warm the verify memo before any worker starts: seed
	// methods survive into most of the lineage unmutated.
	vm.SetVerifyMemo(e.vmemo)
	if e.timing {
		vm.SetTelemetry(e.cfg.Telemetry)
	}
	for _, s := range e.seeds {
		tr, _, err := runOnRef(vm, rec, s)
		if err != nil {
			continue // unlowerable seed: skip its trace
		}
		e.mergedCov = coverage.Merge(e.mergedCov, tr)
		switch cfg.Algorithm {
		case Greedyfuzz:
			e.greedyUnion = coverage.Merge(e.greedyUnion, tr)
		default:
			if e.suite.Unique(tr) {
				e.suite.Add(tr)
			}
		}
	}
}

func (e *engine) run() (*Result, error) {
	cfg := &e.cfg
	start := time.Now() //detlint:ok Result.Elapsed is reporting-only

	if !e.resumed {
		e.initSeedState()
		e.res = &Result{
			Algorithm:  cfg.Algorithm,
			Criterion:  cfg.Criterion,
			Iterations: cfg.Iterations,
			Draws:      make([]DrawRecord, 0, cfg.Iterations),
			Workers:    cfg.workers(),
			Lookahead:  e.lookahead,
			Batch:      e.batch,
		}
	}
	e.tel.poolSize.Set(int64(len(e.pool)))

	// The pipeline. The coordinator (this goroutine) performs draws and
	// commits in a fixed interleaving — draw(0..D-1), then
	// commit(i−D); draw(i) for each subsequent i — so every draw
	// observes exactly the commits of iterations ≤ i−D regardless of
	// how the worker pool schedules the stages in between. At most D
	// tasks are in flight, hence the ring and the channel bound.
	//
	// Dispatch is batched: drawn tasks accumulate in a block of up to K
	// (= Config.Batch, clamped to K ≤ D) and the block is handed to one
	// worker, which runs mutate/filter/execute for every task against
	// its long-lived scratch and closes the block's done channel. Only
	// the dispatch granularity changes — each iteration is still drawn
	// and committed individually, in the interleaving above, so results
	// are bit-identical at any (workers, batch). The first commit that
	// waits on a block can never precede its dispatch: commit(i−D)
	// waits on the block holding task i−D, whose last task is at most
	// iteration i−D+K−1 ≤ i−1, so the block was filled — and therefore
	// sent — before iteration i began.
	//
	// A resumed engine enters the same loop at base = startIter (the
	// snapshot's commit frontier): the in-flight window re-enters the
	// pipeline from its recorded draw records (redraw — the selector
	// chain already consumed those proposals during restore), and fresh
	// draws take over beyond it. Since draw(i) only observes commits
	// ≤ i−D, which the restore fully reconstructed, the continuation is
	// bit-identical to the uninterrupted run.
	D := e.lookahead
	N := cfg.Iterations
	base := e.startIter
	blocks := make(chan *block, D)
	ring := make([]taskRef, D)

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker arenas: the reference VM and recorder are
			// stateless across runs; the lowering context and mutation
			// RNG are reset per task. One set serves the worker's whole
			// stream of blocks without sharing anything with its peers.
			ws := &workerScratch{
				vm:   jvm.New(cfg.RefSpec),
				rec:  coverage.NewRecorder(jvm.ProbeRegistry()),
				lctx: jimple.NewLowerCtx(),
			}
			ws.vm.SetRecorder(ws.rec)
			ws.vm.SetVerifyMemo(e.vmemo)
			if e.timing {
				// Per-phase reference-VM histograms
				// (jvm.<spec>.phase.*_ns) land in the shared registry
				// next to the stage spans; observe-only like the rest.
				ws.vm.SetTelemetry(e.cfg.Telemetry)
			}
			for b := range blocks {
				for j := range b.tasks {
					e.process(&b.tasks[j], ws, b)
				}
				close(b.done)
			}
		}()
	}

	var cur *block
	for i := base; i < N; i++ {
		if e.serviceControl(i) {
			e.stopped = true
			break
		}
		if i-D >= base {
			e.commitRef(ring[(i-D)%D])
		}
		if cur == nil {
			cur = e.getBlock()
		}
		cur.tasks = cur.tasks[:len(cur.tasks)+1]
		t := &cur.tasks[len(cur.tasks)-1]
		if j := i - base; j < len(e.resumeDraws) {
			e.redraw(e.resumeDraws[j], t)
		} else {
			e.draw(i, t)
		}
		ring[i%D] = taskRef{b: cur, idx: len(cur.tasks) - 1}
		if len(cur.tasks) == e.batch {
			blocks <- cur
			cur = nil
		}
	}
	// Flush the partial block a stop (or a budget not divisible by K)
	// left behind, then drain the in-flight window (all of it, after a
	// stop).
	if cur != nil && len(cur.tasks) > 0 {
		blocks <- cur
		cur = nil
	}
	close(blocks)
	end := e.drawn
	tail := end - D
	if tail < base {
		tail = base
	}
	for i := tail; i < end; i++ {
		e.commitRef(ring[i%D])
	}
	wg.Wait()

	e.finalize()
	e.res.Elapsed = time.Since(start) //detlint:ok Result.Elapsed is reporting-only
	if e.ctrl != nil {
		fin := e.stopSnap
		if fin == nil {
			fin = e.snapshot()
		}
		e.ctrl.finish(fin)
	}
	return e.res, nil
}

// getBlock pops a recycled dispatch block or allocates a fresh one.
// Coordinator-goroutine only. The tasks slice always has capacity
// e.batch and is filled in place, never regrown, so pointers into it
// stay valid for the block's whole flight.
func (e *engine) getBlock() *block {
	if n := len(e.freeBlocks); n > 0 {
		b := e.freeBlocks[n-1]
		e.freeBlocks = e.freeBlocks[:n-1]
		b.done = make(chan struct{})
		return b
	}
	return &block{tasks: make([]task, 0, e.batch), done: make(chan struct{})}
}

// recycle returns a fully committed block to the free list, reclaiming
// the class-byte buffers of tasks whose bytes did not escape into the
// result and dropping every object reference so a parked block pins
// nothing. Coordinator-goroutine only, after the block's last commit.
func (e *engine) recycle(b *block) {
	for j := range b.tasks {
		t := &b.tasks[j]
		if t.data != nil && !t.dataRetained {
			b.bufs = append(b.bufs, t.data[:0])
		}
		t.parent, t.mutant, t.trace, t.data = nil, nil, nil, nil
	}
	b.tasks = b.tasks[:0]
	b.done = nil
	e.freeBlocks = append(e.freeBlocks, b)
}

// draw runs the sequential draw stage for iteration i: pick a seed from
// the pool, propose a mutator, log the DrawRecord. State read here
// (pool, selector chain) was last written by commit(i−D). The task is
// filled in place inside its dispatch block.
func (e *engine) draw(i int, t *task) {
	sp := telemetry.StartSpan(e.tel.draw)
	if e.drawR == nil {
		e.drawR = drawRNG(e.cfg.Rand, i)
	} else {
		prng.Reseed(e.drawR, e.cfg.Rand, drawStream, uint64(i))
	}
	rng := e.drawR
	idx := e.src.Pick(rng, len(e.pool))
	pe := e.pool[idx]
	muID := e.selector.Next(rng)
	rec := DrawRecord{Iter: i, PoolIndex: idx, Parent: pe.iter, MutatorID: muID}
	e.res.Draws = append(e.res.Draws, rec)
	e.drawn++
	e.tel.iterations.Inc()
	if e.obs.o != nil {
		e.obs.emit(IterationStarted{Iter: i, PoolIndex: idx, MutatorID: muID})
	}
	sp.End()
	*t = task{iter: i, parent: pe.class, rec: rec}
}

// redraw re-enters a recorded in-flight iteration into the pipeline
// after a resume. Unlike draw it consults neither the RNG nor the
// selector — the restore already replayed this iteration's proposal
// into the chain — it only re-materialises the task from the record.
func (e *engine) redraw(rec DrawRecord, t *task) {
	fresh := DrawRecord{Iter: rec.Iter, PoolIndex: rec.PoolIndex, Parent: rec.Parent, MutatorID: rec.MutatorID}
	e.res.Draws = append(e.res.Draws, fresh)
	e.drawn++
	e.tel.iterations.Inc()
	if e.obs.o != nil {
		e.obs.emit(IterationStarted{Iter: rec.Iter, PoolIndex: rec.PoolIndex, MutatorID: rec.MutatorID})
	}
	*t = task{iter: rec.Iter, parent: e.pool[rec.PoolIndex].class, rec: fresh}
}

// workerScratch is one worker's long-lived arenas: the instrumented
// reference VM and its recorder, the reusable lowering context, and
// the per-task mutation RNG (reseeded, never reallocated). All of it
// is confined to the owning worker goroutine.
type workerScratch struct {
	vm   *jvm.VM
	rec  *coverage.Recorder
	rng  *rand.Rand
	lctx *jimple.LowerCtx
}

// mutateRNG returns iteration iter's mutation stream on the worker's
// reused generator — the same stream DeriveRNG builds fresh.
func (ws *workerScratch) mutateRNG(campaignSeed int64, iter int) *rand.Rand {
	if ws.rng == nil {
		ws.rng = DeriveRNG(campaignSeed, iter)
	} else {
		prng.Reseed(ws.rng, campaignSeed, mutateStream, uint64(iter))
	}
	return ws.rng
}

// process runs the mutate/filter/execute stages for one task on a
// worker. It touches no engine state except the (versioned, locked)
// prefilter cache; everything else flows through the task, the
// worker's scratch, and the enclosing block's buffer pool.
func (e *engine) process(t *task, ws *workerScratch, b *block) {
	vm, rec := ws.vm, ws.rec
	spMutate := telemetry.StartSpan(e.tel.mutate)
	rng := ws.mutateRNG(e.cfg.Rand, t.iter)
	mutant := t.parent.Clone()
	if !e.muts[t.rec.MutatorID].Apply(mutant, rng) {
		// Soot-style failure: no classfile generated this iteration.
		spMutate.End()
		return
	}
	t.applied = true
	finishMutant(mutant, t.iter)
	t.mutant = mutant

	// Lower through the worker's reused context and serialise into a
	// buffer recycled from the block's pool (bytes identical to a fresh
	// lower() — only where the scratch lives differs).
	f, err := ws.lctx.Lower(mutant)
	if err != nil {
		spMutate.End()
		return
	}
	data, err := f.AppendBytes(b.takeBuf())
	spMutate.End()
	if err != nil {
		return
	}
	t.lowered = true
	t.data = data

	if !e.coverageDirected {
		return // randfuzz never runs the reference VM
	}
	var parsed *classfile.File
	if e.pf != nil {
		spPf := telemetry.StartSpan(e.tel.prefilter)
		t.checked = true
		if f, perr := classfile.Parse(data); perr == nil {
			parsed = f
			t.parsed = true
			if d := analysis.LoadReject(f, &e.pf.spec.Policy); d != nil {
				t.doomed = true
				t.fp = analysis.Fingerprint(f)
				// Only cache entries committed at least Lookahead
				// iterations ago are visible — see prefilter.
				if tr, ok := e.pf.lookup(t.fp, t.iter-e.lookahead); ok {
					t.cacheHit = true
					t.trace = tr
					spPf.End()
					return
				}
			} else {
				// Verify band: a load-clean mutant the oracle still
				// definitely rejects during linking (hierarchy,
				// resolution, §4.10 dataflow verification) can reuse a
				// trace recorded for a masked-byte-equal predecessor —
				// same visibility window as the load band.
				t.verifyChecked = true
				vfp := analysis.VerifyFingerprint(data, f.Name()) ^ verifyBandTag
				if e.pf.verifyReject(f, vfp) {
					t.verifyDoomed = true
					t.fp = vfp
					if tr, ok := e.pf.lookup(vfp, t.iter-e.lookahead); ok {
						t.cacheHit = true
						t.trace = tr
						spPf.End()
						return
					}
				}
			}
		}
		spPf.End()
	}
	spExec := telemetry.StartSpan(e.tel.exec)
	rec.Reset()
	if parsed != nil {
		// The prefilter already parsed these bytes successfully; reuse
		// the parse (RunParsed fires the parse probes, so the trace is
		// identical to vm.Run re-parsing the same data).
		vm.RunParsed(parsed)
	} else {
		vm.Run(data)
	}
	t.trace = rec.Trace()
	spExec.End()
}

// commitRef waits for the task's block to finish processing, commits
// the task, and recycles the block after its last task commits. The
// wait is per block, not per task; tasks inside a block still commit
// one at a time, in iteration order.
func (e *engine) commitRef(ref taskRef) {
	<-ref.b.done
	e.commit(&ref.b.tasks[ref.idx])
	if ref.idx == len(ref.b.tasks)-1 {
		e.recycle(ref.b)
	}
}

// commit runs the sequential commit stage for one task, in iteration
// order: prefilter bookkeeping, the acceptance decision against the
// suite, pool recycling and selector feedback.
func (e *engine) commit(t *task) {
	sp := telemetry.StartSpan(e.tel.commit)
	defer sp.End()
	defer e.tel.committed.Inc()
	e.committed++

	generated := t.applied && t.lowered
	if e.obs.o != nil {
		e.obs.emit(Mutated{Iter: t.iter, MutatorID: t.rec.MutatorID, Applied: generated})
	}
	if !generated {
		e.tel.failures.Inc()
		e.src.Observe(t.rec.PoolIndex, false, false)
		e.selector.Record(t.rec.MutatorID, false)
		if e.obs.o != nil {
			e.obs.emit(SelectorUpdated{Iter: t.iter, MutatorID: t.rec.MutatorID, Success: false})
		}
		return
	}
	e.res.Draws[t.iter].Generated = true
	e.tel.generated.Inc()

	if t.checked {
		e.tel.pfChecked.Inc()
		e.tel.verdicts.Observe(t.doomed || t.verifyDoomed)
		switch {
		case !t.parsed:
			e.tel.dataflow.Unknown.Inc()
		case t.verifyChecked && t.verifyDoomed:
			e.tel.dataflow.Reject.Inc()
		case t.verifyChecked:
			e.tel.dataflow.Definite.Inc()
		}
		if t.doomed || t.verifyDoomed {
			e.tel.pfDoomed.Inc()
			if t.verifyDoomed {
				e.tel.pfVerify.Inc()
			}
			if t.cacheHit {
				e.tel.pfSkipped.Inc()
				if e.obs.o != nil {
					e.obs.emit(PrefilterHit{Iter: t.iter})
				}
			} else {
				e.tel.pfExecuted.Inc()
				e.pf.insert(t.fp, t.trace, t.iter)
			}
		}
	}
	if e.coverageDirected {
		if !t.cacheHit {
			e.tel.executions.Inc()
		}
		if e.obs.o != nil {
			e.obs.emit(Executed{Iter: t.iter, Skipped: t.cacheHit})
		}
	}

	gc := &GenClass{Iter: t.iter, Name: t.mutant.Name, MutatorID: t.rec.MutatorID}
	if e.coverageDirected {
		gc.Stats = t.trace.Stats()
		e.genStats.Add(t.trace)
	}
	if e.cfg.KeepClasses {
		gc.Class = t.mutant
	}
	e.res.Gen = append(e.res.Gen, gc)

	// Acceptance decision.
	accepted := false
	switch e.cfg.Algorithm {
	case Randfuzz:
		accepted = true // every generated classfile is a test
	case Greedyfuzz:
		merged := coverage.Merge(e.greedyUnion, t.trace)
		if merged.Stats() != e.greedyUnion.Stats() {
			e.greedyUnion = merged
			accepted = true
		}
	default: // classfuzz, uniquefuzz
		if e.suite.Unique(t.trace) {
			e.suite.Add(t.trace)
			accepted = true
		}
	}
	if accepted {
		gc.Accepted = true
		gc.Data = t.data
		t.dataRetained = true
		e.res.Test = append(e.res.Test, gc)
		if e.coverageDirected {
			e.mergedCov = coverage.Merge(e.mergedCov, t.trace)
		}
		if !e.cfg.NoSeedRecycling {
			e.pool = append(e.pool, poolEntry{class: t.mutant, iter: t.iter})
			e.src.Grew(len(e.pool)-1, t.rec.PoolIndex)
			e.tel.poolSize.Set(int64(len(e.pool)))
		}
		e.tel.accepts.Inc()
		if e.obs.o != nil {
			e.obs.emit(Accepted{Iter: t.iter, Name: gc.Name, Stats: gc.Stats})
		}
	} else if e.cfg.KeepClasses || e.cfg.KeepGenBytes {
		// Unaccepted mutants keep their bytes only on request: dropping
		// them is what bounds campaign RSS at paper scale.
		gc.Data = t.data
		t.dataRetained = true
	}
	ge := GenEntry{Iter: t.iter, Stmts: gc.Stats.Stmts, Branches: gc.Stats.Branches, Accepted: accepted}
	if accepted {
		ge.Fp = analysis.ContentFingerprint(t.data)
	}
	e.genLog = append(e.genLog, ge)
	e.src.Observe(t.rec.PoolIndex, true, accepted)
	e.selector.Record(t.rec.MutatorID, accepted)
	if e.obs.o != nil {
		e.obs.emit(SelectorUpdated{Iter: t.iter, MutatorID: t.rec.MutatorID, Success: accepted})
	}
}

// finalize derives the summary statistics.
func (e *engine) finalize() {
	res := e.res
	res.GenUniqueStats = e.genStats.UniqueStatsCount()
	res.Drawn = e.drawn
	res.Stopped = e.stopped
	res.Resumed = e.resumed
	switch {
	case e.cfg.Algorithm == Greedyfuzz:
		res.Coverage = e.greedyUnion
	case e.coverageDirected:
		res.Coverage = e.mergedCov
	}
	if e.pf != nil {
		pf := e.tel.prefilterStats()
		res.Prefilter = &pf
	}
	res.MutatorStats = make([]MutatorStat, len(e.muts))
	for i, m := range e.muts {
		res.MutatorStats[i] = MutatorStat{ID: i, Name: m.Name}
	}
	if sel, ok := e.selector.(*mcmc.Sampler); ok {
		for i := range res.MutatorStats {
			res.MutatorStats[i].Selected = sel.Selected(i)
			res.MutatorStats[i].Success = sel.Succeeded(i)
		}
	} else {
		// Uniform selectors: exact per-mutator tallies from the generated
		// classes (draws whose mutator was inapplicable are not counted,
		// matching how the evaluation attributes frequencies for the
		// unguided algorithms).
		for _, g := range res.Gen {
			res.MutatorStats[g.MutatorID].Selected++
			if g.Accepted {
				res.MutatorStats[g.MutatorID].Success++
			}
		}
	}
	// Final per-mutator gauges (Table 4's signal) for live observers;
	// the MCMC path also maintains them incrementally via Instrument.
	if e.timing {
		for _, st := range res.MutatorStats {
			e.cfg.Telemetry.Gauge("campaign.mutator." + st.Name + ".selected").Set(int64(st.Selected))
			e.cfg.Telemetry.Gauge("campaign.mutator." + st.Name + ".success").Set(int64(st.Success))
		}
	}
}

// mutantName is the deterministic name of iteration iter's mutant.
func mutantName(iter int) string {
	return fmt.Sprintf("M%d", 1430000000+iter)
}

// finishMutant applies the deterministic post-mutation fixups: the
// iteration-derived name, the version pin, and the observable main.
func finishMutant(c *jimple.Class, iter int) {
	c.Name = mutantName(iter)
	c.Major = 51 // every mutant is pinned to version 51 (§3.1.1)
	// §2.2.1: each mutant is supplemented with a simple main that
	// prints a completion message, so the mutant observably either
	// runs or fails earlier in the startup pipeline. (Interfaces are
	// left alone; a main inside an interface is itself a mutation the
	// interface-member mutators produce deliberately.)
	if !c.IsInterface() && c.FindMethod("main") == nil {
		c.AddStandardMain("Completed!")
	}
}

// lower compiles a mutant to classfile bytes.
func lower(c *jimple.Class) ([]byte, error) {
	f, err := jimple.Lower(c)
	if err != nil {
		return nil, err
	}
	return f.Bytes()
}

// runOnRef lowers the class and executes it on the instrumented
// reference VM, returning the coverage trace and the bytes.
func runOnRef(vm *jvm.VM, rec *coverage.Recorder, c *jimple.Class) (*coverage.Trace, []byte, error) {
	data, err := lower(c)
	if err != nil {
		return nil, nil, err
	}
	rec.Reset()
	vm.Run(data)
	return rec.Trace(), data, nil
}
