package campaign

import (
	"time"

	"repro/internal/jimple"
)

// runBytefuzz implements the binary blind fuzzer: a seed classfile's
// serialized bytes with a single random one-byte change per iteration.
// Every mutant is kept (there is no acceptance discipline to apply —
// the fuzzer sees only bytes), matching how the paper characterises the
// Sirer & Bershad / Dex-fuzzing style of VM testing. Byte mutants are
// recycled into the pool like Algorithm 1 recycles classes, so changes
// accumulate over a campaign.
//
// Like the staged engine, each iteration draws the pool index from its
// own drawRNG stream and the byte flip from its own DeriveRNG stream;
// there is no reference-VM work to parallelise, so the loop stays
// sequential.
func runBytefuzz(cfg Config) (*Result, error) {
	start := time.Now() //detlint:ok Result.Elapsed is reporting-only

	// Serialise the seed corpus once.
	var pool [][]byte
	for _, s := range cfg.seedCorpus() {
		f, err := jimple.Lower(s)
		if err != nil {
			continue
		}
		data, err := f.Bytes()
		if err != nil {
			continue
		}
		pool = append(pool, data)
	}
	if len(pool) == 0 {
		return nil, errNoSerializableSeeds
	}

	o := obs{cfg.Observer}
	tel := newEngineTel(nonNilRegistry(cfg.Telemetry), false)
	res := &Result{
		Algorithm:  cfg.Algorithm,
		Criterion:  cfg.Criterion,
		Iterations: cfg.Iterations,
		Workers:    1,
		Lookahead:  cfg.lookahead(),
	}
	for it := 0; it < cfg.Iterations; it++ {
		idx := drawRNG(cfg.Rand, it).Intn(len(pool))
		tel.iterations.Inc()
		o.emit(IterationStarted{Iter: it, PoolIndex: idx, MutatorID: -1})
		rng := DeriveRNG(cfg.Rand, it)
		mutant := append([]byte(nil), pool[idx]...)
		mutant[rng.Intn(len(mutant))] = byte(rng.Intn(256))
		gc := &GenClass{
			Iter:      it,
			Name:      nameOf(it),
			MutatorID: -1, // no structured mutator
			Data:      mutant,
			Accepted:  true,
		}
		tel.generated.Inc()
		o.emit(Mutated{Iter: it, MutatorID: -1, Applied: true})
		res.Gen = append(res.Gen, gc)
		res.Test = append(res.Test, gc)
		if !cfg.NoSeedRecycling {
			pool = append(pool, mutant)
			tel.poolSize.Set(int64(len(pool)))
		}
		tel.accepts.Inc()
		tel.committed.Inc()
		o.emit(Accepted{Iter: it, Name: gc.Name, Stats: gc.Stats})
		o.emit(SelectorUpdated{Iter: it, MutatorID: -1, Success: true})
	}
	res.Elapsed = time.Since(start)    //detlint:ok Result.Elapsed is reporting-only
	res.MutatorStats = []MutatorStat{} // bytefuzz never selects mutators
	return res, nil
}

func nameOf(it int) string {
	return "B" + itoa(1430000000+it)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// errNoSerializableSeeds is returned when no seed lowers to bytes.
var errNoSerializableSeeds = errString("campaign: no serializable seeds for bytefuzz")

type errString string

func (e errString) Error() string { return string(e) }
