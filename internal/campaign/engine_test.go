package campaign

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/coverage"
	"repro/internal/jvm"
	"repro/internal/seedgen"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Algorithm: Classfuzz, Iterations: 10}); err == nil {
		t.Error("expected error for empty seed corpus")
	}
	seeds := seedgen.Generate(seedgen.DefaultOptions(3, 1))
	if _, err := Run(Config{Algorithm: Classfuzz, Source: FlatSeeds(seeds)}); err == nil {
		t.Error("expected error for zero iteration budget")
	}
	if _, err := Run(Config{Algorithm: "nosuch", Source: FlatSeeds(seeds), Iterations: 5}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

// TestObserverCountersConsistent checks the Counters observer against
// the result it watched: every tally must be derivable from the Result.
func TestObserverCountersConsistent(t *testing.T) {
	c := &Counters{}
	cfg := detConfig(Classfuzz)
	cfg.Workers = 4
	cfg.Observer = c
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Iterations != cfg.Iterations || c.Committed != cfg.Iterations {
		t.Errorf("observer saw %d draws / %d commits, want %d", c.Iterations, c.Committed, cfg.Iterations)
	}
	if c.Applied+c.Failed != cfg.Iterations {
		t.Errorf("applied %d + failed %d != iterations %d", c.Applied, c.Failed, cfg.Iterations)
	}
	if c.Applied != len(res.Gen) {
		t.Errorf("observer applied %d, result generated %d", c.Applied, len(res.Gen))
	}
	if c.Accepts != len(res.Test) {
		t.Errorf("observer accepts %d, result tests %d", c.Accepts, len(res.Test))
	}
	pf := res.Prefilter
	if pf == nil {
		t.Fatal("prefilter stats missing")
	}
	if c.PrefilterHits != pf.Skipped {
		t.Errorf("observer prefilter hits %d, stats skipped %d", c.PrefilterHits, pf.Skipped)
	}
	// Every generated mutant is either executed or served from the cache.
	if c.Executions+c.PrefilterHits != len(res.Gen) {
		t.Errorf("executions %d + cache hits %d != generated %d", c.Executions, c.PrefilterHits, len(res.Gen))
	}
	if pf.Doomed != pf.Skipped+pf.Executed {
		t.Errorf("doomed %d != skipped %d + executed %d", pf.Doomed, pf.Skipped, pf.Executed)
	}
}

// recordingObserver turns the event stream into strings so two runs can
// be compared verbatim.
type recordingObserver struct{ events []string }

func (r *recordingObserver) Event(ev Event) {
	switch e := ev.(type) {
	case IterationStarted:
		r.events = append(r.events, fmt.Sprintf("start %d %d %d", e.Iter, e.PoolIndex, e.MutatorID))
	case Mutated:
		r.events = append(r.events, fmt.Sprintf("mutated %d %d %v", e.Iter, e.MutatorID, e.Applied))
	case Executed:
		r.events = append(r.events, fmt.Sprintf("executed %d %v", e.Iter, e.Skipped))
	case PrefilterHit:
		r.events = append(r.events, fmt.Sprintf("hit %d", e.Iter))
	case Accepted:
		r.events = append(r.events, fmt.Sprintf("accepted %d %s %d/%d", e.Iter, e.Name, e.Stats.Stmts, e.Stats.Branches))
	case SelectorUpdated:
		r.events = append(r.events, fmt.Sprintf("selector %d %d %v", e.Iter, e.MutatorID, e.Success))
	}
}

// legacyRecordingObserver is the same recorder written against the old
// six-method surface, to pin the Legacy adapter's dispatch.
type legacyRecordingObserver struct{ events []string }

func (r *legacyRecordingObserver) IterationStarted(iter, poolIndex, mutatorID int) {
	r.events = append(r.events, fmt.Sprintf("start %d %d %d", iter, poolIndex, mutatorID))
}
func (r *legacyRecordingObserver) Mutated(iter, mutatorID int, applied bool) {
	r.events = append(r.events, fmt.Sprintf("mutated %d %d %v", iter, mutatorID, applied))
}
func (r *legacyRecordingObserver) Executed(iter int, skipped bool) {
	r.events = append(r.events, fmt.Sprintf("executed %d %v", iter, skipped))
}
func (r *legacyRecordingObserver) PrefilterHit(iter int) {
	r.events = append(r.events, fmt.Sprintf("hit %d", iter))
}
func (r *legacyRecordingObserver) Accepted(iter int, name string, stats coverage.Stats) {
	r.events = append(r.events, fmt.Sprintf("accepted %d %s %d/%d", iter, name, stats.Stmts, stats.Branches))
}
func (r *legacyRecordingObserver) SelectorUpdated(iter, mutatorID int, success bool) {
	r.events = append(r.events, fmt.Sprintf("selector %d %d %v", iter, mutatorID, success))
}

// TestObserverEventOrderDeterministic: the full event stream — not just
// the totals — is identical at any worker count, because every event
// fires from the sequential draw/commit stages. The Legacy adapter must
// see the identical stream through the old six-method surface.
func TestObserverEventOrderDeterministic(t *testing.T) {
	run := func(workers int) []string {
		o := &recordingObserver{}
		cfg := detConfig(Uniquefuzz)
		cfg.Workers = workers
		cfg.Observer = o
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return o.events
	}
	one, four := run(1), run(4)
	if !reflect.DeepEqual(one, four) {
		t.Error("observer event stream differs between workers=1 and workers=4")
	}

	legacy := &legacyRecordingObserver{}
	cfg := detConfig(Uniquefuzz)
	cfg.Workers = 4
	cfg.Observer = Legacy{O: legacy}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, legacy.events) {
		t.Error("Legacy adapter's event stream differs from the native Event stream")
	}
}

// TestGenBytesDroppedByDefault is the memory fix's contract: without
// KeepClasses/KeepGenBytes, only accepted mutants retain classfile
// bytes; with KeepGenBytes every generated mutant does.
func TestGenBytesDroppedByDefault(t *testing.T) {
	cfg := detConfig(Classfuzz)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for _, g := range res.Gen {
		if g.Accepted {
			if len(g.Data) == 0 {
				t.Errorf("accepted %s lost its bytes", g.Name)
			}
		} else {
			rejected++
			if g.Data != nil {
				t.Errorf("unaccepted %s kept %d bytes without KeepGenBytes", g.Name, len(g.Data))
			}
			if g.Class != nil {
				t.Errorf("unaccepted %s kept its model without KeepClasses", g.Name)
			}
		}
	}
	if rejected == 0 {
		t.Fatal("campaign rejected nothing; the retention check is vacuous")
	}

	cfg.KeepGenBytes = true
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Gen {
		if len(g.Data) == 0 {
			t.Errorf("KeepGenBytes: %s has no bytes", g.Name)
		}
		if !g.Accepted && g.Class != nil {
			t.Errorf("KeepGenBytes must not retain models, %s has one", g.Name)
		}
	}
}

// TestReplayRoundTrip: Replay re-derives a single iteration's mutant
// and verifies it byte-for-byte against the campaign's own output —
// including mutants whose parent is itself a recycled mutant.
func TestReplayRoundTrip(t *testing.T) {
	cfg := detConfig(Classfuzz)
	cfg.Workers = 4
	cfg.KeepGenBytes = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild every generated iteration straight from the draw log.
	byIter := map[int]*GenClass{}
	for _, g := range res.Gen {
		byIter[g.Iter] = g
	}
	recycledChecked := false
	for _, d := range res.Draws {
		if !d.Generated {
			continue
		}
		info, err := Rebuild(cfg, res.Draws, d.Iter)
		if err != nil {
			t.Fatalf("rebuild iteration %d: %v", d.Iter, err)
		}
		g := byIter[d.Iter]
		if g == nil {
			t.Fatalf("iteration %d marked generated but absent from Gen", d.Iter)
		}
		if !bytes.Equal(info.Data, g.Data) {
			t.Errorf("iteration %d: rebuilt bytes differ from campaign bytes", d.Iter)
		}
		if d.Parent >= 0 {
			recycledChecked = true
		}
	}
	if !recycledChecked {
		t.Log("no recycled-parent iterations in this campaign; lineage recursion untested here")
	}

	// The end-to-end replay entry point (what cmd/classfuzz -replay runs).
	last := -1
	for _, d := range res.Draws {
		if d.Generated {
			last = d.Iter
		}
	}
	if last < 0 {
		t.Fatal("campaign generated nothing")
	}
	info, err := Replay(cfg, last)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Verified {
		t.Error("replayed iteration not verified against the campaign")
	}

	if _, err := Replay(Config{Algorithm: Bytefuzz, Source: cfg.Source, Iterations: 5, RefSpec: cfg.RefSpec}, 1); err == nil {
		t.Error("expected bytefuzz replay to be rejected")
	}
}

// TestLookaheadIsSemantic: the pipeline window is part of the campaign's
// semantics — it is recorded in the result, honoured exactly, and
// results stay worker-count-independent at non-default windows too.
func TestLookaheadIsSemantic(t *testing.T) {
	mk := func(lookahead, workers int) summary {
		cfg := detConfig(Classfuzz)
		cfg.Lookahead = lookahead
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Lookahead != lookahead {
			t.Errorf("result records lookahead %d, want %d", res.Lookahead, lookahead)
		}
		return summarize(res)
	}
	if !reflect.DeepEqual(mk(4, 1), mk(4, 6)) {
		t.Error("lookahead=4 results depend on worker count")
	}
	if !reflect.DeepEqual(mk(1, 1), mk(1, 3)) {
		t.Error("lookahead=1 results depend on worker count")
	}
	// Default config must resolve to DefaultLookahead.
	cfg := detConfig(Classfuzz)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lookahead != DefaultLookahead {
		t.Errorf("default lookahead %d, want %d", res.Lookahead, DefaultLookahead)
	}
}

// TestBytefuzzPerIterationStreams: bytefuzz campaigns are reproducible
// and observer-visible like the staged algorithms.
func TestBytefuzzDeterministic(t *testing.T) {
	mk := func() []string {
		cfg := detConfig(Bytefuzz)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, g := range res.Test {
			names = append(names, g.Name)
		}
		return names
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Error("bytefuzz not deterministic at fixed seed")
	}
}

// TestWorkerPoolActuallyRuns guards against the pool silently degrading
// to sequential execution: a campaign with more workers than iterations
// must still complete and commit everything.
func TestWorkerPoolOverprovisioned(t *testing.T) {
	cfg := detConfig(Greedyfuzz)
	cfg.Iterations = 8
	cfg.Workers = 32
	cfg.Lookahead = 64
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Draws) != 8 {
		t.Errorf("drew %d iterations, want 8", len(res.Draws))
	}
}

// TestSeedPoolSharedAcrossEngines: two concurrent campaigns over the
// same seed slice must not interfere (the engine clones before
// mutating). Run with -race to make this meaningful.
func TestConcurrentCampaignsShareSeeds(t *testing.T) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(10, 9))
	mk := func() Config {
		return Config{
			Algorithm: Classfuzz, Criterion: coverage.STBR, Source: FlatSeeds(seeds),
			Iterations: 60, Rand: 23, RefSpec: jvm.HotSpot9(), Workers: 2,
		}
	}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := Run(mk())
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
