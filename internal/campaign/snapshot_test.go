package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/difftest"
	"repro/internal/seedgen"
)

// resumeSummary is the projection the kill-and-resume contract covers:
// the accepted suite (names AND bytes), the draw log, the generated
// classes' metadata, and the selector statistics. Prefilter stats are
// deliberately absent — the trace cache restarts cold after a resume,
// so only Skipped+Executed (not their split) is invariant; that sum is
// checked separately.
type resumeSummary struct {
	TestNames    []string
	TestBytes    [][]byte
	GenCount     int
	GenUnique    int
	Draws        []DrawRecord
	MutatorStats []MutatorStat
	GenMeta      []GenClass
}

func resumeSummarize(r *Result) resumeSummary {
	s := resumeSummary{
		TestNames:    []string{},
		TestBytes:    [][]byte{},
		GenCount:     len(r.Gen),
		GenUnique:    r.GenUniqueStats,
		Draws:        r.Draws,
		MutatorStats: r.MutatorStats,
	}
	for _, g := range r.Test {
		s.TestNames = append(s.TestNames, g.Name)
		s.TestBytes = append(s.TestBytes, g.Data)
	}
	for _, g := range r.Gen {
		s.GenMeta = append(s.GenMeta, GenClass{Iter: g.Iter, Name: g.Name, MutatorID: g.MutatorID, Stats: g.Stats, Accepted: g.Accepted})
	}
	return s
}

// diffSummary runs the accepted suite through the five-VM differential
// stage; the Summary must be byte-identical across kill/resume.
func diffSummary(t *testing.T, r *Result) *difftest.Summary {
	t.Helper()
	var classes [][]byte
	for _, g := range r.Test {
		classes = append(classes, g.Data)
	}
	return difftest.NewStandardRunner().Evaluate(classes)
}

// runInterrupted runs cfg up to a deterministic stop boundary, JSON
// round-trips the snapshot (simulating the kill: nothing survives but
// the serialized bytes and the config), resumes, and returns the
// resumed run's final result.
func runInterrupted(t *testing.T, cfg Config, stopAt int) *Result {
	t.Helper()
	ctrl := NewControl()
	ctrl.StopAt(stopAt)
	run1 := cfg
	run1.Control = ctrl
	eng, err := NewEngine(run1)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	partial, err := eng.Run()
	if err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	if stopAt < cfg.Iterations && !partial.Stopped {
		t.Fatalf("run did not stop at %d", stopAt)
	}
	snap := ctrl.Final()
	if snap == nil {
		t.Fatal("no final snapshot")
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var loaded Snapshot
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	eng2, err := Resume(cfg, &loaded)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	res, err := eng2.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !res.Resumed {
		t.Fatal("resumed result not marked Resumed")
	}
	return res
}

// TestKillAndResumeDeterminism is the service layer's core contract: a
// campaign checkpointed at an arbitrary boundary, killed (only the
// snapshot JSON survives) and resumed yields a byte-identical accepted
// suite, draw log and difftest Summary versus the uninterrupted run —
// at worker counts 1 and 4, with stop points before, inside and after
// the first pipeline window.
func TestKillAndResumeDeterminism(t *testing.T) {
	for _, alg := range []Algorithm{Classfuzz, Greedyfuzz, Randfuzz} {
		cfg := detConfig(alg)
		refRes, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s reference: %v", alg, err)
		}
		ref := resumeSummarize(refRes)
		refDiff := diffSummary(t, refRes)
		for _, workers := range []int{1, 4} {
			for _, stopAt := range []int{1, 7, 16, 61, 159} {
				wcfg := cfg
				wcfg.Workers = workers
				res := runInterrupted(t, wcfg, stopAt)
				got := resumeSummarize(res)
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("%s workers=%d stop=%d: resumed result diverges from uninterrupted run", alg, workers, stopAt)
					continue
				}
				if gotDiff := diffSummary(t, res); !reflect.DeepEqual(gotDiff, refDiff) {
					t.Errorf("%s workers=%d stop=%d: difftest Summary diverges", alg, workers, stopAt)
				}
				// The only tolerated drift: the prefilter cache restarts
				// cold, so Skipped/Executed may split differently — but
				// their sum and all other counters must hold.
				if refRes.Prefilter != nil {
					pf, rpf := res.Prefilter, refRes.Prefilter
					if pf == nil {
						t.Fatalf("%s workers=%d stop=%d: resumed run lost prefilter stats", alg, workers, stopAt)
					}
					if pf.Checked != rpf.Checked || pf.Doomed != rpf.Doomed || pf.VerifyDoomed != rpf.VerifyDoomed ||
						pf.Skipped+pf.Executed != rpf.Skipped+rpf.Executed {
						t.Errorf("%s workers=%d stop=%d: prefilter stats drift beyond the cache split: %+v vs %+v",
							alg, workers, stopAt, pf, rpf)
					}
				}
			}
		}
	}
}

// TestKillResumeKillResume interrupts a campaign twice — the second
// snapshot lands while the first resume is still re-filling its
// in-flight window at one of the stop points — and still converges to
// the uninterrupted result.
func TestKillResumeKillResume(t *testing.T) {
	cfg := detConfig(Classfuzz)
	refRes, err := Run(cfg)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	ref := resumeSummarize(refRes)
	for _, stops := range [][2]int{{40, 45}, {40, 90}, {5, 10}} {
		ctrl := NewControl()
		ctrl.StopAt(stops[0])
		run1 := cfg
		run1.Control = ctrl
		eng, err := NewEngine(run1)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatalf("first run: %v", err)
		}
		snap1 := ctrl.Final()

		ctrl2 := NewControl()
		ctrl2.StopAt(stops[1])
		run2 := cfg
		run2.Control = ctrl2
		eng2, err := Resume(run2, snap1)
		if err != nil {
			t.Fatalf("first resume: %v", err)
		}
		if _, err := eng2.Run(); err != nil {
			t.Fatalf("second run: %v", err)
		}
		snap2 := ctrl2.Final()

		eng3, err := Resume(cfg, snap2)
		if err != nil {
			t.Fatalf("second resume: %v", err)
		}
		res, err := eng3.Run()
		if err != nil {
			t.Fatalf("final run: %v", err)
		}
		if got := resumeSummarize(res); !reflect.DeepEqual(got, ref) {
			t.Errorf("stops %v: doubly-resumed result diverges", stops)
		}
	}
}

// TestControlSnapshotMidRun snapshots a running campaign without
// stopping it (the daemon's periodic checkpoint path) and verifies the
// snapshot resumes to the uninterrupted result while the original run
// also completes identically.
func TestControlSnapshotMidRun(t *testing.T) {
	cfg := detConfig(Classfuzz)
	cfg.Workers = 4
	refRes, err := Run(cfg)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	ref := resumeSummarize(refRes)

	ctrl := NewControl()
	live := cfg
	live.Control = ctrl
	eng, err := NewEngine(live)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	type done struct {
		res *Result
		err error
	}
	ch := make(chan done, 1)
	go func() {
		r, err := eng.Run()
		ch <- done{r, err}
	}()
	snap := ctrl.Snapshot() // races the run — any boundary is resume-safe
	d := <-ch
	if d.err != nil {
		t.Fatalf("live run: %v", d.err)
	}
	if got := resumeSummarize(d.res); !reflect.DeepEqual(got, ref) {
		t.Error("snapshotted (non-stopped) run diverges from reference")
	}
	if snap.Committed > snap.Drawn || snap.Drawn > cfg.Iterations {
		t.Fatalf("inconsistent snapshot boundary: drawn %d committed %d", snap.Drawn, snap.Committed)
	}
	eng2, err := Resume(cfg, snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	res, err := eng2.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got := resumeSummarize(res); !reflect.DeepEqual(got, ref) {
		t.Error("resume from mid-run snapshot diverges from reference")
	}
}

// TestResumeRejectsMismatchedConfig ensures a snapshot cannot silently
// resume under a diverged configuration or corpus.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	cfg := detConfig(Classfuzz)
	ctrl := NewControl()
	ctrl.StopAt(40)
	run1 := cfg
	run1.Control = ctrl
	eng, err := NewEngine(run1)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	snap := ctrl.Final()

	bad := []struct {
		name   string
		mutate func(c *Config, s *Snapshot)
	}{
		{"rand", func(c *Config, s *Snapshot) { c.Rand++ }},
		{"iterations", func(c *Config, s *Snapshot) { c.Iterations++ }},
		{"algorithm", func(c *Config, s *Snapshot) { c.Algorithm = Greedyfuzz }},
		{"lookahead", func(c *Config, s *Snapshot) { c.Lookahead = 8 }},
		{"seeds", func(c *Config, s *Snapshot) { c.Source = FlatSeeds(seedgen.Generate(seedgen.DefaultOptions(20, 6))) }},
		{"version", func(c *Config, s *Snapshot) { s.Version = SnapshotVersion + 1 }},
		{"draw log", func(c *Config, s *Snapshot) { s.Draws[10].MutatorID = (s.Draws[10].MutatorID + 1) % 30 }},
		{"truncated", func(c *Config, s *Snapshot) { s.Draws = s.Draws[:len(s.Draws)-1] }},
	}
	for _, tc := range bad {
		c := cfg
		var s Snapshot
		blob, _ := json.Marshal(snap)
		json.Unmarshal(blob, &s)
		tc.mutate(&c, &s)
		if _, err := Resume(c, &s); err == nil {
			t.Errorf("%s: Resume accepted a mismatched snapshot", tc.name)
		}
	}

	// The untouched snapshot still resumes.
	if _, err := Resume(cfg, snap); err != nil {
		t.Errorf("pristine snapshot rejected: %v", err)
	}
}

// TestResultCoverageMerged checks Result.Coverage is the word-OR of
// seed and accepted traces (the coordinator's shard-merge input).
func TestResultCoverageMerged(t *testing.T) {
	cfg := detConfig(Classfuzz)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Coverage == nil {
		t.Fatal("no merged coverage on a coverage-directed campaign")
	}
	st := res.Coverage.Stats()
	if st.Stmts == 0 {
		t.Fatal("merged coverage is empty")
	}
	// Monotone: merging any accepted class's implied footprint cannot
	// exceed the campaign's merged trace... sanity-check against the
	// resumed run, whose merged trace must be set-equal.
	res2 := runInterrupted(t, cfg, 80)
	if res2.Coverage == nil || res2.Coverage.Stats() != st {
		t.Fatalf("resumed run's merged coverage diverges: %+v vs %+v", res2.Coverage.Stats(), st)
	}
}

// TestSnapshotBytesStable ensures the snapshot serialization is
// deterministic (the daemon's checkpoint files diff cleanly).
func TestSnapshotBytesStable(t *testing.T) {
	cfg := detConfig(Classfuzz)
	take := func() []byte {
		ctrl := NewControl()
		ctrl.StopAt(50)
		c := cfg
		c.Control = ctrl
		eng, err := NewEngine(c)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		blob, err := json.MarshalIndent(ctrl.Final(), "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return blob
	}
	a, b := take(), take()
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot serialization is not deterministic")
	}
}
