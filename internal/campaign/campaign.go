// Package campaign is the staged, deterministic campaign engine behind
// the fuzzing algorithms of the evaluation (§3.1.2): classfuzz
// (Algorithm 1 — coverage-directed mutation with MCMC mutator
// selection), the comparison algorithms randfuzz, greedyfuzz and
// uniquefuzz, and the byte-level blind baseline bytefuzz.
//
// One iteration decomposes into explicit stages:
//
//	draw    — seed pick + mutator selection (sequential, iteration order)
//	mutate  — clone seed, apply mutator, lower to classfile bytes
//	filter  — static prefilter: doomed-mutant detection + trace cache
//	execute — run the mutant on an instrumented reference VM
//	commit  — coverage uniqueness, suite/pool update, selector feedback
//	          (sequential, iteration order)
//
// The expensive middle stages run on a worker pool with per-worker
// VM+recorder instances; draw and commit stay sequential, so the MCMC
// chain, the seed-recycling pool and the accepted suite evolve in a
// fixed order and campaign results are bit-identical at any worker
// count. Randomness comes from splittable per-iteration streams
// (DeriveRNG), never from a shared generator, so no stage's scheduling
// can perturb another iteration's draws and any single iteration can be
// re-derived in isolation (Rebuild/Replay). See DESIGN.md ("Campaign
// engine") for the full determinism argument.
package campaign

import (
	"fmt"

	"repro/internal/coverage"
	"repro/internal/jvm"
	"repro/internal/telemetry"
)

// Algorithm names the campaign strategy.
type Algorithm string

// The four algorithms of §3.1.2, plus the byte-level blind fuzzer of
// the related work (Sirer & Bershad's "single one-byte value change at
// a random offset in a base classfile", §4) — the baseline whose
// overwhelmingly invalid mutants motivate coverage direction in §1.
const (
	Classfuzz  Algorithm = "classfuzz"
	Randfuzz   Algorithm = "randfuzz"
	Greedyfuzz Algorithm = "greedyfuzz"
	Uniquefuzz Algorithm = "uniquefuzz"
	Bytefuzz   Algorithm = "bytefuzz"
)

// DefaultLookahead is the pipeline window: how many iterations may be
// drawn ahead of the oldest uncommitted one. The window is a *semantic*
// parameter — mutator-selection feedback and pool growth reach a draw
// only after the commit that is Lookahead iterations behind it — so two
// campaigns compare bit-identically iff their seeds, budgets and
// lookaheads are equal. Worker count never affects results; it only
// decides how much of the window executes concurrently.
const DefaultLookahead = 16

// Config parameterises a campaign.
type Config struct {
	Algorithm Algorithm
	// Criterion selects the uniqueness discipline for classfuzz
	// ([st]/[stbr]/[tr]); uniquefuzz always uses [stbr] (§3.1.2).
	Criterion coverage.Criterion
	// Source supplies the initial corpus and the per-iteration seed
	// selection policy. FlatSeeds wraps a plain slice with the
	// historical uniform draw; internal/seedsel provides clustering and
	// yield-aware scheduling behind the same interface.
	Source SeedSource
	// Iterations is the campaign budget (the stand-in for the paper's
	// three-day wall clock).
	Iterations int
	// Rand seeds the campaign's splittable RNG; every iteration derives
	// its own independent streams from it.
	Rand int64
	// RefSpec is the instrumented reference VM (HotSpot 9 in the paper).
	RefSpec jvm.Spec
	// P is the geometric parameter for MCMC selection; 0 means the
	// paper's default 3/129.
	P float64
	// NoSeedRecycling disables adding accepted mutants back into the
	// seed pool (ablation of Algorithm 1 lines 5/14).
	NoSeedRecycling bool
	// KeepClasses retains every generated mutant's model and bytes in
	// the result (needed for reduction of arbitrary GenClasses).
	KeepClasses bool
	// KeepGenBytes retains classfile bytes (but not models) for every
	// generated mutant, accepted or not — what differential testing of
	// the GenClasses block needs. Without it (and without KeepClasses)
	// only accepted mutants keep their bytes, which is what bounds
	// campaign RSS at paper scale.
	KeepGenBytes bool
	// StaticPrefilter short-circuits reference-VM execution of mutants
	// the static oracle proves the reference VM rejects — during
	// loading (format checks, keyed by structural fingerprint) or
	// during linking (hierarchy, resolution and §4.10 dataflow
	// verification, keyed by a name-masked content fingerprint). The
	// first mutant of each fingerprint still executes (its trace seeds
	// a cache); fingerprint-equal repeats reuse that trace, so the
	// coverage-driven acceptance decisions — and the accepted suite —
	// are bit-identical to an unfiltered campaign.
	StaticPrefilter bool
	// VerifyMemo optionally injects a shared method-verification memo
	// (warm lineages across campaigns: a daemon shard or benchmark may
	// carry one memo through many epochs). Nil means the engine creates
	// a private memo per campaign. The memo is observe-equivalent:
	// verdicts are content-addressed and pure, so results are
	// bit-identical with a cold, warm or absent memo.
	VerifyMemo *jvm.VerifyMemo
	// DisableVerifyMemo runs verification unmemoised (the equivalence
	// tests' cold baseline).
	DisableVerifyMemo bool
	// Workers sizes the pool running the mutate/filter/execute stages;
	// 0 or 1 means single-threaded. Results are identical at any value.
	Workers int
	// Batch is the dispatch block size: how many drawn iterations the
	// coordinator hands a worker per dispatch. Values < 1 select 1;
	// values above Lookahead are clamped to it (a block never spans
	// more than the in-flight window). Like Workers it is pure
	// mechanics — results are bit-identical at any batch size — but
	// larger blocks amortise channel traffic and let a worker reuse its
	// scratch (lowering context, byte buffers) across a run of
	// iterations without crossing a synchronisation point.
	Batch int
	// Lookahead overrides DefaultLookahead (values < 1 select the
	// default). Unlike Workers it is part of the campaign's semantics.
	Lookahead int
	// Observer receives engine events (may be nil). Events fire from the
	// sequential draw/commit stages, so their order is deterministic.
	Observer Observer
	// Control, when non-nil, lets another goroutine snapshot or stop
	// the running campaign at coordinator boundaries (see Control).
	// Like Observer and Telemetry it is observe-only with respect to
	// results: a campaign run with a Control that is never asked to
	// stop is bit-identical to one without.
	Control *Control
	// Telemetry, when non-nil, receives the campaign's metrics
	// (campaign.* counters/gauges) and switches on stage + reference-VM
	// timing histograms. Telemetry is observe-only: results are
	// bit-identical with or without it, at any worker count. The
	// registry may be shared with a live endpoint or across campaigns
	// (counters then accumulate; Result.Prefilter still reports only
	// this campaign's deltas).
	Telemetry *telemetry.Registry
}

// workers returns the effective worker count.
func (c *Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// lookahead returns the effective pipeline window.
func (c *Config) lookahead() int {
	if c.Lookahead < 1 {
		return DefaultLookahead
	}
	return c.Lookahead
}

// batch returns the effective dispatch block size: at least 1, at most
// the lookahead window. The K ≤ D bound is what keeps batching purely
// mechanical — commit(i−D) precedes draw(i), and a block is always
// fully drawn (hence dispatched) before the first commit that waits on
// it, so the draw/commit interleaving is exactly the unbatched one.
func (c *Config) batch() int {
	b := c.Batch
	if b < 1 {
		b = 1
	}
	if d := c.lookahead(); b > d {
		b = d
	}
	return b
}

// Run executes a campaign.
func Run(cfg Config) (*Result, error) {
	if len(cfg.seedCorpus()) == 0 {
		return nil, fmt.Errorf("campaign: no seeds")
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("campaign: non-positive iteration budget")
	}
	switch cfg.Algorithm {
	case Classfuzz, Randfuzz, Greedyfuzz, Uniquefuzz:
		return newEngine(cfg).run()
	case Bytefuzz:
		return runBytefuzz(cfg)
	default:
		return nil, fmt.Errorf("campaign: unknown algorithm %q", cfg.Algorithm)
	}
}
