package campaign

import (
	"time"

	"repro/internal/coverage"
	"repro/internal/jimple"
)

// PrefilterStats counts the static prefilter's work in one campaign.
type PrefilterStats struct {
	// Checked is the number of mutants the prefilter inspected.
	Checked int
	// Doomed is how many were statically certain rejects — a
	// loading-phase format reject (the load band) or a linking-phase
	// reject from the dataflow oracle (the verify band).
	Doomed int
	// VerifyDoomed is the verify-band subset of Doomed: load-clean
	// mutants the oracle definitely rejects during linking (hierarchy,
	// resolution, §4.10 verification).
	VerifyDoomed int
	// Skipped is how many reference-VM executions the trace cache
	// avoided.
	Skipped int
	// Executed is how many doomed mutants ran anyway to seed the cache.
	Executed int
}

// GenClass is one generated mutant.
type GenClass struct {
	// Iter is the campaign iteration that produced the mutant; with the
	// campaign seed and the draw log it pins the mutant for Replay.
	Iter      int
	Name      string
	MutatorID int
	// Class is populated when Config.KeepClasses is set. Data is
	// populated for accepted classes, and for every generated class
	// when Config.KeepClasses or Config.KeepGenBytes is set.
	Class *jimple.Class
	Data  []byte
	// Stats is the mutant's coverage statistic on the reference VM
	// (zero for randfuzz, which never runs the reference VM).
	Stats coverage.Stats
	// Accepted marks membership in TestClasses.
	Accepted bool
}

// MutatorStat aggregates one mutator's campaign statistics.
type MutatorStat struct {
	ID       int
	Name     string
	Selected int
	Success  int
}

// Rate returns the success rate (0 when never selected).
func (m MutatorStat) Rate() float64 {
	if m.Selected == 0 {
		return 0
	}
	return float64(m.Success) / float64(m.Selected)
}

// Frequency returns the selection frequency given total selections.
func (m MutatorStat) Frequency(total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(m.Selected) / float64(total)
}

// DrawRecord is the draw stage's log entry for one iteration: which
// pool entry was picked and which mutator was proposed. Together with
// the campaign seed it makes the iteration replayable in isolation —
// the mutant is Clone(parent) + mutator under DeriveRNG(seed, iter),
// and the parent is either an original seed or the (recursively
// replayable) mutant another iteration accepted.
type DrawRecord struct {
	// Iter is the iteration index (records are stored in order, so
	// Result.Draws[i].Iter == i).
	Iter int `json:"iter"`
	// PoolIndex is the index drawn from the seed pool.
	PoolIndex int `json:"pool_index"`
	// Parent is the iteration whose accepted mutant occupied PoolIndex,
	// or -1 when PoolIndex addresses an original seed.
	Parent int `json:"parent"`
	// MutatorID is the selector's proposal.
	MutatorID int `json:"mutator"`
	// Generated reports whether the iteration produced a classfile (the
	// mutator applied and the mutant lowered).
	Generated bool `json:"generated"`
}

// Result summarises a campaign.
type Result struct {
	Algorithm  Algorithm
	Criterion  coverage.Criterion
	Iterations int
	// Gen holds every generated classfile; Test the accepted subset.
	Gen  []*GenClass
	Test []*GenClass
	// GenUniqueStats counts distinct (stmt, branch) coverage statistics
	// among generated classes (the paper's representativeness metric for
	// GenClasses; zero for randfuzz).
	GenUniqueStats int
	// Prefilter holds the static prefilter's counters when
	// Config.StaticPrefilter was set.
	Prefilter *PrefilterStats
	// MutatorStats is indexed by mutator ID.
	MutatorStats []MutatorStat
	// Draws is the per-iteration draw log (indexed by iteration; empty
	// for bytefuzz, whose pool holds raw bytes rather than models).
	Draws []DrawRecord
	// Workers, Lookahead and Batch record the engine configuration the
	// result was produced under (Workers and Batch are provenance only —
	// they cannot change the numbers above).
	Workers   int
	Lookahead int
	Batch     int
	Elapsed   time.Duration
	// Coverage is the word-OR of the seed traces and every accepted
	// trace — the campaign's merged footprint on the reference VM (nil
	// for randfuzz and bytefuzz, which are not coverage-directed). The
	// service coordinator folds shard results by merging these.
	Coverage *coverage.Trace
	// Drawn counts iterations that entered the pipeline; it equals
	// Iterations unless the run was stopped early via Control.Stop
	// (Stopped). Resumed marks a run reconstructed from a Snapshot.
	Drawn   int
	Stopped bool
	Resumed bool
}

// Succ returns the campaign success rate |TestClasses| / #iterations.
func (r *Result) Succ() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return float64(len(r.Test)) / float64(r.Iterations)
}

// TimePerGen returns the average time per generated class.
func (r *Result) TimePerGen() time.Duration {
	if len(r.Gen) == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(len(r.Gen))
}

// TimePerTest returns the average time per accepted test class.
func (r *Result) TimePerTest() time.Duration {
	if len(r.Test) == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(len(r.Test))
}
