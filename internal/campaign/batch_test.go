package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

// TestBatchMatrixMatchesGolden is the batching tentpole's acceptance
// gate: at every (workers, batch) cell of the {1,4,8} × {1,8,32} grid
// the campaign summary must be byte-identical to the committed
// workers=1 goldens. Batch sizes above the lookahead window exercise
// the K ≤ D clamp (32 clamps to DefaultLookahead).
func TestBatchMatrixMatchesGolden(t *testing.T) {
	for _, alg := range detAlgorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			path := filepath.Join("testdata", fmt.Sprintf("golden_%s.json", alg))
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update on TestGoldenResults): %v", err)
			}
			for _, w := range []int{1, 4, 8} {
				for _, b := range []int{1, 8, 32} {
					cfg := detConfig(alg)
					cfg.Workers = w
					cfg.Batch = b
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("workers=%d batch=%d: %v", w, b, err)
					}
					wantBatch := b
					if d := cfg.lookahead(); wantBatch > d {
						wantBatch = d
					}
					if res.Batch != wantBatch {
						t.Errorf("workers=%d batch=%d: result records batch=%d, want clamped %d",
							w, b, res.Batch, wantBatch)
					}
					got, err := json.MarshalIndent(summarize(res), "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, '\n')
					if !bytes.Equal(got, want) {
						t.Errorf("workers=%d batch=%d: summary diverges from %s", w, b, path)
					}
				}
			}
		})
	}
}

// TestBatchReplayRoundTrip re-runs the replay contract under block
// dispatch: with a non-default batch size every generated iteration
// must still rebuild byte-for-byte from the draw log, and the
// end-to-end Replay entry point must verify.
func TestBatchReplayRoundTrip(t *testing.T) {
	cfg := detConfig(Classfuzz)
	cfg.Workers = 4
	cfg.Batch = 8
	cfg.KeepGenBytes = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	byIter := map[int]*GenClass{}
	for _, g := range res.Gen {
		byIter[g.Iter] = g
	}
	last := -1
	for _, d := range res.Draws {
		if !d.Generated {
			continue
		}
		last = d.Iter
		info, err := Rebuild(cfg, res.Draws, d.Iter)
		if err != nil {
			t.Fatalf("rebuild iteration %d: %v", d.Iter, err)
		}
		g := byIter[d.Iter]
		if g == nil {
			t.Fatalf("iteration %d marked generated but absent from Gen", d.Iter)
		}
		if !bytes.Equal(info.Data, g.Data) {
			t.Errorf("iteration %d: rebuilt bytes differ from campaign bytes", d.Iter)
		}
	}
	if last < 0 {
		t.Fatal("campaign generated nothing")
	}
	info, err := Replay(cfg, last)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Verified {
		t.Error("replayed iteration not verified against the batched campaign")
	}
}

// TestBatchSnapshotResume checks kill-and-resume under block dispatch:
// a campaign running with a non-default batch size, interrupted before,
// inside and after the first pipeline window, resumes to the
// uninterrupted result.
func TestBatchSnapshotResume(t *testing.T) {
	cfg := detConfig(Classfuzz)
	cfg.Batch = 8
	refRes, err := Run(cfg)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	ref := resumeSummarize(refRes)
	for _, workers := range []int{1, 4} {
		for _, stopAt := range []int{7, 16, 61} {
			wcfg := cfg
			wcfg.Workers = workers
			res := runInterrupted(t, wcfg, stopAt)
			if got := resumeSummarize(res); !reflect.DeepEqual(got, ref) {
				t.Errorf("workers=%d batch=8 stop=%d: resumed result diverges from uninterrupted run",
					workers, stopAt)
			}
		}
	}
}

// TestCampaignAllocsFlatAcrossWorkers pins the perf fix this PR ships:
// allocations per campaign must not grow with the worker count. Before
// per-worker arena reuse each in-flight iteration allocated its own
// lowering context, buffers and recorder scratch, so allocs/op climbed
// with parallelism; now extra workers cost only their fixed arenas,
// which a 160-iteration campaign amortises to well under the bound.
func TestCampaignAllocsFlatAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is slow")
	}
	measure := func(w int) float64 {
		cfg := detConfig(Classfuzz)
		cfg.Workers = w
		return testing.AllocsPerRun(3, func() {
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(1)
	if base == 0 {
		t.Fatal("campaign reported zero allocations; measurement is broken")
	}
	for _, w := range []int{4, 8} {
		got := measure(w)
		t.Logf("workers=%d: %.0f allocs/op (workers=1: %.0f, ratio %.3f)", w, got, base, got/base)
		if got > base*1.25 {
			t.Errorf("workers=%d allocates %.0f/op, more than 1.25x the single-worker %.0f/op — per-worker arenas are leaking per-iteration allocations",
				w, got, base)
		}
	}
}

// TestBatchBufferOwnership is the arena-recycling safety net, designed
// to run under -race: across batch sizes 1, K and 2K (K=8) and worker
// counts up to GOMAXPROCS, every KeepGenBytes campaign must return the
// reference bytes, and the returned buffers must be exclusively owned —
// scribbling each one with a distinct pattern must not show through any
// other, and a subsequent campaign over the (shared) seed corpus must
// still reproduce the reference, proving no returned buffer aliases
// engine- or seed-owned memory.
func TestBatchBufferOwnership(t *testing.T) {
	base := detConfig(Classfuzz)
	base.KeepGenBytes = true
	ref, err := Run(base)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	want := summarize(ref)

	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, b := range []int{1, 8, 16} {
			cfg := base
			cfg.Workers = w
			cfg.Batch = b
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", w, b, err)
			}
			if !reflect.DeepEqual(summarize(res), want) {
				t.Errorf("workers=%d batch=%d: summary diverges from reference", w, b)
				continue
			}
			if len(res.Gen) != len(ref.Gen) {
				t.Fatalf("workers=%d batch=%d: %d generated classes, want %d", w, b, len(res.Gen), len(ref.Gen))
			}
			for i := range res.Gen {
				if !bytes.Equal(res.Gen[i].Data, ref.Gen[i].Data) {
					t.Errorf("workers=%d batch=%d: Gen[%d] bytes differ from reference", w, b, i)
				}
			}

			// Scribble every returned buffer with a per-index pattern,
			// then verify each still holds only its own pattern: any
			// cross-contamination means two Gen entries share memory.
			for i := range res.Gen {
				for j := range res.Gen[i].Data {
					res.Gen[i].Data[j] = byte(i)
				}
			}
			for i := range res.Gen {
				for j, c := range res.Gen[i].Data {
					if c != byte(i) {
						t.Fatalf("workers=%d batch=%d: Gen[%d].Data[%d] = %#x after scribble — returned buffers alias each other",
							w, b, i, j, c)
					}
				}
			}

			// The engine must hold no references to the buffers it
			// returned: a fresh campaign over the same seed corpus still
			// reproduces the reference even after the scribble.
			again, err := Run(cfg)
			if err != nil {
				t.Fatalf("workers=%d batch=%d rerun: %v", w, b, err)
			}
			if !reflect.DeepEqual(summarize(again), want) {
				t.Errorf("workers=%d batch=%d: rerun after scribbling diverges — a returned buffer aliased engine- or seed-owned memory", w, b)
			}
		}
	}
}
