package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/coverage"
)

// Manifest is the on-disk description of a saved campaign: the corpus
// directory layout the classfuzz CLI writes, so a test suite generated
// once can be re-used for differential testing sessions later (the
// paper's TestClasses artifacts).
type Manifest struct {
	Algorithm  Algorithm         `json:"algorithm"`
	Criterion  string            `json:"criterion"`
	Iterations int               `json:"iterations"`
	Generated  int               `json:"generated"`
	Accepted   int               `json:"accepted"`
	ElapsedMS  int64             `json:"elapsed_ms"`
	Classes    []ManifestClass   `json:"classes"`
	Mutators   []ManifestMutator `json:"mutators,omitempty"`
}

// ManifestClass records one accepted test classfile.
type ManifestClass struct {
	Name     string `json:"name"`
	File     string `json:"file"`
	Iter     int    `json:"iter"`
	Mutator  string `json:"mutator"`
	Stmts    int    `json:"stmts"`
	Branches int    `json:"branches"`
}

// ManifestMutator records one mutator's campaign statistics.
type ManifestMutator struct {
	Name     string  `json:"name"`
	Selected int     `json:"selected"`
	Success  int     `json:"success"`
	Rate     float64 `json:"rate"`
}

// Save writes the accepted suite to dir: one .class file per test plus
// manifest.json.
func (r *Result) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	man := Manifest{
		Algorithm:  r.Algorithm,
		Criterion:  r.Criterion.String(),
		Iterations: r.Iterations,
		Generated:  len(r.Gen),
		Accepted:   len(r.Test),
		ElapsedMS:  r.Elapsed.Milliseconds(),
	}
	for _, g := range r.Test {
		file := g.Name + ".class"
		if err := os.WriteFile(filepath.Join(dir, file), g.Data, 0o644); err != nil {
			return err
		}
		mc := ManifestClass{
			Name:     g.Name,
			File:     file,
			Iter:     g.Iter,
			Stmts:    g.Stats.Stmts,
			Branches: g.Stats.Branches,
		}
		if g.MutatorID >= 0 && g.MutatorID < len(r.MutatorStats) {
			mc.Mutator = r.MutatorStats[g.MutatorID].Name
		}
		man.Classes = append(man.Classes, mc)
	}
	for _, st := range r.MutatorStats {
		if st.Selected == 0 {
			continue
		}
		man.Mutators = append(man.Mutators, ManifestMutator{
			Name: st.Name, Selected: st.Selected, Success: st.Success, Rate: st.Rate(),
		})
	}
	sort.Slice(man.Mutators, func(a, b int) bool {
		if man.Mutators[a].Rate != man.Mutators[b].Rate {
			return man.Mutators[a].Rate > man.Mutators[b].Rate
		}
		return man.Mutators[a].Name < man.Mutators[b].Name
	})
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), blob, 0o644)
}

// LoadCorpus reads a saved suite back: the manifest plus every
// classfile's bytes, in manifest order.
func LoadCorpus(dir string) (*Manifest, [][]byte, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, nil, err
	}
	var man Manifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, nil, fmt.Errorf("campaign: corrupt manifest: %w", err)
	}
	classes := make([][]byte, 0, len(man.Classes))
	for _, mc := range man.Classes {
		data, err := os.ReadFile(filepath.Join(dir, mc.File))
		if err != nil {
			return nil, nil, err
		}
		classes = append(classes, data)
	}
	return &man, classes, nil
}

// Stats rebuilds the coverage statistics pair of a saved class.
func (mc ManifestClass) Stats() coverage.Stats {
	return coverage.Stats{Stmts: mc.Stmts, Branches: mc.Branches}
}
