package campaign

import (
	"sync"

	"repro/internal/coverage"
	"repro/internal/jvm"
)

// prefilter caches load-phase coverage traces by structural
// fingerprint. Skipping is sound because the loading phase reads only
// the structural skeleton Fingerprint hashes and never consults the
// library environment, the RNG or interpreter state: fingerprint-equal
// files produce byte-identical load traces.
//
// The cache is *versioned* so its behaviour is deterministic under the
// worker pool: an entry inserted by iteration j's commit is visible
// only to iterations i with j ≤ i−Lookahead. Those commits happen
// before draw(i) on the sequential coordinator, so visibility depends
// only on iteration numbers — never on which worker ran what when. A
// doomed mutant whose fingerprint was seeded inside the window executes
// redundantly (exactly as it would at workers=1), which costs a little
// throughput but keeps the Skipped/Executed counters bit-identical at
// any worker count.
// Savings tallies (the old stats field) live in the engine's telemetry
// counters — campaign.prefilter.* — and surface as Result.Prefilter.
type prefilter struct {
	policy *jvm.Policy

	mu    sync.RWMutex
	cache map[uint64]prefilterEntry
}

type prefilterEntry struct {
	trace *coverage.Trace
	iter  int // iteration whose commit inserted the entry
}

func newPrefilter(p *jvm.Policy) *prefilter {
	return &prefilter{policy: p, cache: make(map[uint64]prefilterEntry)}
}

// lookup returns the cached load trace for fp if it was committed by an
// iteration ≤ maxIter. Called from workers.
func (pf *prefilter) lookup(fp uint64, maxIter int) (*coverage.Trace, bool) {
	pf.mu.RLock()
	defer pf.mu.RUnlock()
	e, ok := pf.cache[fp]
	if !ok || e.iter > maxIter {
		return nil, false
	}
	return e.trace, true
}

// insert records iteration iter's executed trace for fp. Called from
// the sequential commit stage, in iteration order, so the first
// executor of a fingerprint wins deterministically.
func (pf *prefilter) insert(fp uint64, tr *coverage.Trace, iter int) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if _, ok := pf.cache[fp]; !ok {
		pf.cache[fp] = prefilterEntry{trace: tr, iter: iter}
	}
}
