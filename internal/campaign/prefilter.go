package campaign

import (
	"sync"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/coverage"
	"repro/internal/jvm"
	"repro/internal/rtlib"
)

// verifyBandTag separates the verify band's trace-cache keyspace from
// the load band's: the load band keys entries by the structural
// skeleton hash (analysis.Fingerprint), the verify band by the
// masked-content hash (analysis.VerifyFingerprint) XORed with this
// constant, so the two hash families cannot alias each other's
// entries in the shared cache.
const verifyBandTag = 0x9e3779b97f4a7c15

// prefilter caches reference-VM coverage traces for statically doomed
// mutants, keyed per band by a fingerprint whose equality implies
// trace equality:
//
//   - load band: a structural-skeleton hash (analysis.Fingerprint).
//     Loading reads only the skeleton and never consults the library
//     environment, the RNG or interpreter state, so skeleton-equal
//     files produce byte-identical load traces.
//   - verify band: a masked raw-byte hash (analysis.VerifyFingerprint)
//     for mutants the oracle definitely rejects during linking. The
//     whole run is a pure function of the bytes, the (fixed) policy
//     and the (fixed) environment; masking only the self-name — which
//     the VM reads solely through intra-file equality and the validity
//     bits hashed into the key — keeps that function constant across
//     key-equal files. Mutants recur modulo the iteration-derived
//     class name far more often than byte-identically, hence the mask.
//
// The cache is *versioned* so its behaviour is deterministic under the
// worker pool: an entry inserted by iteration j's commit is visible
// only to iterations i with j ≤ i−Lookahead. Those commits happen
// before draw(i) on the sequential coordinator, so visibility depends
// only on iteration numbers — never on which worker ran what when. A
// doomed mutant whose fingerprint was seeded inside the window executes
// redundantly (exactly as it would at workers=1), which costs a little
// throughput but keeps the Skipped/Executed counters bit-identical at
// any worker count.
// Savings tallies (the old stats field) live in the engine's telemetry
// counters — campaign.prefilter.* — and surface as Result.Prefilter.
type prefilter struct {
	spec jvm.Spec
	env  *rtlib.Env

	mu    sync.RWMutex
	cache map[uint64]prefilterEntry

	// verdicts memoizes the verify band's link-reject predicate by the
	// band-tagged VerifyFingerprint. The predicate is a pure function
	// of the masked bytes, so entries computed by any worker in any
	// order are interchangeable — the memo affects cost, never
	// outcomes, and needs no versioning.
	vmu      sync.Mutex
	verdicts map[uint64]bool

	// vmemo, when attached by the engine, memoises the band's per-method
	// dataflow fixpoints below the whole-class verdicts map: a class
	// that misses on its masked fingerprint (every generation renames
	// the mutant) still reuses the lineage's verdicts for untouched
	// methods. Like verdicts it is a pure-function cache — content-
	// addressed keys, no versioning needed.
	vmemo *jvm.VerifyMemo
}

type prefilterEntry struct {
	trace *coverage.Trace
	iter  int // iteration whose commit inserted the entry
}

func newPrefilter(spec jvm.Spec) *prefilter {
	return &prefilter{
		spec:     spec,
		env:      rtlib.NewEnv(spec.Release),
		cache:    make(map[uint64]prefilterEntry),
		verdicts: make(map[uint64]bool),
	}
}

// lookup returns the cached trace for fp if it was committed by an
// iteration ≤ maxIter. Called from workers.
func (pf *prefilter) lookup(fp uint64, maxIter int) (*coverage.Trace, bool) {
	pf.mu.RLock()
	defer pf.mu.RUnlock()
	e, ok := pf.cache[fp]
	if !ok || e.iter > maxIter {
		return nil, false
	}
	return e.trace, true
}

// insert records iteration iter's executed trace for fp. Called from
// the sequential commit stage, in iteration order, so the first
// executor of a fingerprint wins deterministically.
func (pf *prefilter) insert(fp uint64, tr *coverage.Trace, iter int) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if _, ok := pf.cache[fp]; !ok {
		pf.cache[fp] = prefilterEntry{trace: tr, iter: iter}
	}
}

// verifyReject reports whether the oracle definitely rejects f during
// linking (hierarchy, resolution, §4.10 verification), memoized by the
// band-tagged VerifyFingerprint vfp. Called from workers.
func (pf *prefilter) verifyReject(f *classfile.File, vfp uint64) bool {
	pf.vmu.Lock()
	v, ok := pf.verdicts[vfp]
	pf.vmu.Unlock()
	if ok {
		return v
	}
	v = analysis.VerifyRejectMemo(f, pf.spec, pf.env, pf.vmemo) != nil
	pf.vmu.Lock()
	pf.verdicts[vfp] = v
	pf.vmu.Unlock()
	return v
}
