package campaign

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/jvm"
	"repro/internal/seedgen"
	"repro/internal/seedsel"
	"repro/internal/telemetry"
)

// benchConfig mirrors experiments.DefaultScale: 60 seeds, 400
// iterations of classfuzz[stbr] with the static prefilter on — the
// workload whose wall clock the worker pool is meant to cut.
func benchConfig(workers int) Config {
	return Config{
		Algorithm:       Classfuzz,
		Criterion:       coverage.STBR,
		Source:          FlatSeeds(seedgen.Generate(seedgen.DefaultOptions(60, 1))),
		Iterations:      400,
		Rand:            1,
		RefSpec:         jvm.HotSpot9(),
		StaticPrefilter: true,
		Workers:         workers,
	}
}

func benchCampaign(b *testing.B, workers int) {
	benchCampaignCfg(b, benchConfig(workers))
}

func benchCampaignCfg(b *testing.B, cfg Config) {
	b.ResetTimer()
	var last *Result
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		perIter := b.Elapsed().Seconds() / float64(b.N) / float64(cfg.Iterations)
		b.ReportMetric(1/perIter, "iters/sec")
		if n := len(last.Test); n > 0 {
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(n)*1e6, "µs/test")
		}
	}
}

func BenchmarkCampaign1Worker(b *testing.B)  { benchCampaign(b, 1) }
func BenchmarkCampaign4Workers(b *testing.B) { benchCampaign(b, 4) }
func BenchmarkCampaign8Workers(b *testing.B) { benchCampaign(b, 8) }

// BenchmarkCampaignWarmLineage measures the steady state the verify
// memo targets: the same campaign re-run with a memo carried across
// runs (a daemon shard re-fuzzing a lineage epoch after epoch), so
// every untouched method of every mutant generation hits the memo.
// Results stay bit-identical to the cold run — the memo is
// observe-equivalent — only the wall clock moves. The bench-compare CI
// gate watches this next to the cold benchmarks.
func BenchmarkCampaignWarmLineage(b *testing.B) {
	cfg := benchConfig(1)
	cfg.VerifyMemo = jvm.NewVerifyMemo()
	// Warm the memo with one full campaign before timing.
	if _, err := Run(cfg); err != nil {
		b.Fatal(err)
	}
	benchCampaignCfg(b, cfg)
}

// BenchmarkCampaignYieldSched is the scheduler hot path: the same
// campaign drawn through a yield-weighted seedsel scheduler instead of
// the flat adapter, so every draw walks the cluster weights and every
// commit updates them. The bench-compare CI gate watches this next to
// the flat-draw benchmarks; scheduler construction (per-seed baseline
// execution) happens inside the timed loop because a stateful source
// serves exactly one run.
func BenchmarkCampaignYieldSched(b *testing.B) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(60, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := seedsel.New(seeds, seedsel.Options{Strategy: seedsel.Yield, RefSpec: jvm.HotSpot9()})
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchConfig(1)
		cfg.Source = sched
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaign1WorkerTelemetry is the instrumented twin of
// BenchmarkCampaign1Worker: a registry attached, so every stage span
// and counter fires. The bench-compare CI gate holds its ns/op within
// the same 10% window, and the acceptance budget for telemetry
// overhead (telemetry-on vs telemetry-off) is ≤2%.
func BenchmarkCampaign1WorkerTelemetry(b *testing.B) {
	cfg := benchConfig(1)
	cfg.Telemetry = telemetry.New()
	benchCampaignCfg(b, cfg)
}
