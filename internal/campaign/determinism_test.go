package campaign

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/coverage"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mcmc"
	"repro/internal/mutation"
	"repro/internal/seedgen"
	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden campaign summaries")

// summary is the worker-count-independent projection of a Result: every
// field the determinism contract covers. Elapsed and Workers are
// deliberately absent (they are the only fields allowed to vary).
type summary struct {
	Algorithm      Algorithm       `json:"algorithm"`
	GenCount       int             `json:"gen_count"`
	GenUniqueStats int             `json:"gen_unique_stats"`
	TestNames      []string        `json:"test_names"`
	MutatorStats   []MutatorStat   `json:"mutator_stats"`
	Prefilter      *PrefilterStats `json:"prefilter,omitempty"`
	Draws          []DrawRecord    `json:"draws"`
}

func summarize(r *Result) summary {
	s := summary{
		Algorithm:      r.Algorithm,
		GenCount:       len(r.Gen),
		GenUniqueStats: r.GenUniqueStats,
		TestNames:      []string{},
		MutatorStats:   r.MutatorStats,
		Prefilter:      r.Prefilter,
		Draws:          r.Draws,
	}
	for _, g := range r.Test {
		s.TestNames = append(s.TestNames, g.Name)
	}
	return s
}

// detConfig is the fixed-seed campaign the determinism and golden tests
// share. StaticPrefilter is on so the versioned trace cache's counters
// are part of the contract.
func detConfig(alg Algorithm) Config {
	return Config{
		Algorithm:       alg,
		Criterion:       coverage.STBR,
		Source:          FlatSeeds(seedgen.Generate(seedgen.DefaultOptions(20, 5))),
		Iterations:      160,
		Rand:            17,
		RefSpec:         jvm.HotSpot9(),
		StaticPrefilter: true,
	}
}

var detAlgorithms = []Algorithm{Classfuzz, Randfuzz, Greedyfuzz, Uniquefuzz}

// workerCounts returns the matrix the determinism tests sweep: 1, 4 and
// GOMAXPROCS, plus CAMPAIGN_TEST_WORKERS when CI sets it.
func workerCounts() []int {
	ws := []int{1, 4, runtime.GOMAXPROCS(0)}
	if env := os.Getenv("CAMPAIGN_TEST_WORKERS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			ws = append(ws, n)
		}
	}
	return ws
}

// TestEngineDeterministicAcrossWorkers is the tentpole's contract: at a
// fixed campaign seed every algorithm produces bit-identical accepted
// suites, draw logs, mutator statistics and prefilter counters whatever
// the worker count.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	for _, alg := range detAlgorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			var want summary
			for i, w := range workerCounts() {
				cfg := detConfig(alg)
				cfg.Workers = w
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if res.Workers != w {
					t.Errorf("result records workers=%d, ran with %d", res.Workers, w)
				}
				got := summarize(res)
				if i == 0 {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d diverges from workers=%d:\n got %+v\nwant %+v",
						w, workerCounts()[0], got, want)
				}
			}
		})
	}
}

// TestGoldenResults pins the engine's canonical (workers=1) results for
// every algorithm against the checked-in goldens, so any future change
// to the draw/commit semantics, the RNG derivation or the acceptance
// logic is caught as a diff. Regenerate with: go test ./internal/campaign -run Golden -update
func TestGoldenResults(t *testing.T) {
	for _, alg := range detAlgorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			cfg := detConfig(alg)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(summarize(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", fmt.Sprintf("golden_%s.json", alg))
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to record): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("campaign summary diverges from %s (re-record with -update if the change is intended)", path)
			}
		})
	}
}

// TestTelemetryObserveOnly is the telemetry substrate's determinism
// contract: attaching a registry changes nothing — the full summary
// (accepted suite, draw log, mutator stats, prefilter counters) is
// bit-identical with telemetry on or off, at every worker count — and
// the registry's deterministic counters agree with the Result.
func TestTelemetryObserveOnly(t *testing.T) {
	for _, alg := range detAlgorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			cfg := detConfig(alg)
			plain, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := summarize(plain)
			for _, w := range workerCounts() {
				cfg := detConfig(alg)
				cfg.Workers = w
				cfg.Telemetry = telemetry.New()
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got := summarize(res); !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: telemetry-on summary diverges from telemetry-off", w)
				}
				s := cfg.Telemetry.Snapshot()
				if got := s.Counter("campaign.iterations"); got != int64(cfg.Iterations) {
					t.Errorf("workers=%d: campaign.iterations = %d, want %d", w, got, cfg.Iterations)
				}
				if got := s.Counter("campaign.generated"); got != int64(len(res.Gen)) {
					t.Errorf("workers=%d: campaign.generated = %d, want %d", w, got, len(res.Gen))
				}
				if got := s.Counter("campaign.accepts"); got != int64(len(res.Test)) {
					t.Errorf("workers=%d: campaign.accepts = %d, want %d", w, got, len(res.Test))
				}
				if pf := res.Prefilter; pf != nil {
					if got := s.Counter("campaign.prefilter.skipped"); got != int64(pf.Skipped) {
						t.Errorf("workers=%d: campaign.prefilter.skipped = %d, want %d", w, got, pf.Skipped)
					}
					if got := s.Counter("campaign.executions"); got != int64(len(res.Gen)-pf.Skipped) {
						t.Errorf("workers=%d: campaign.executions = %d, want %d", w, got, len(res.Gen)-pf.Skipped)
					}
				}
				if alg == Classfuzz && w == 1 {
					// Stage timing is on when a registry is attached: the
					// sequential stages saw every iteration.
					for _, h := range []string{"campaign.stage.draw_ns", "campaign.stage.commit_ns"} {
						if got := s.Hist(h).Count; got != int64(cfg.Iterations) {
							t.Errorf("%s count = %d, want %d", h, got, cfg.Iterations)
						}
					}
					if s.Hist("campaign.stage.mutate_ns").Count != int64(cfg.Iterations) {
						t.Errorf("mutate span count = %d, want %d",
							s.Hist("campaign.stage.mutate_ns").Count, cfg.Iterations)
					}
				}
			}
		})
	}
}

// TestTelemetryRegistryReuse: a registry shared across campaigns
// accumulates, while each Result.Prefilter reports only its own
// campaign's deltas.
func TestTelemetryRegistryReuse(t *testing.T) {
	reg := telemetry.New()
	cfg := detConfig(Classfuzz)
	cfg.Telemetry = reg
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := detConfig(Classfuzz)
	cfg2.Telemetry = reg
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Prefilter, r2.Prefilter) {
		t.Errorf("identical campaigns on a shared registry disagree on Prefilter: %+v vs %+v", r1.Prefilter, r2.Prefilter)
	}
	s := reg.Snapshot()
	if got := s.Counter("campaign.prefilter.checked"); got != int64(r1.Prefilter.Checked+r2.Prefilter.Checked) {
		t.Errorf("shared registry checked = %d, want accumulated %d", got, r1.Prefilter.Checked+r2.Prefilter.Checked)
	}
	if got := s.Counter("campaign.iterations"); got != int64(2*cfg.Iterations) {
		t.Errorf("shared registry iterations = %d, want %d", got, 2*cfg.Iterations)
	}
}

// TestSequentialReferenceSpec checks the pipelined engine against an
// independent, straight-line implementation of the same semantics: a
// plain loop that performs draw(i), computes the iteration synchronously
// and commits it Lookahead iterations later. If the engine's worker
// pool, channel protocol or ring bookkeeping ever drifted from the
// specified stage ordering, the two would disagree.
func TestSequentialReferenceSpec(t *testing.T) {
	cfg := detConfig(Classfuzz)
	cfg.StaticPrefilter = false // the spec below has no trace cache
	cfg.Workers = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	want := referenceClassfuzz(t, cfg)
	var gotNames []string
	for _, g := range res.Test {
		gotNames = append(gotNames, g.Name)
	}
	if !reflect.DeepEqual(gotNames, want) {
		t.Errorf("engine suite %v diverges from reference spec %v", gotNames, want)
	}
}

// referenceClassfuzz is the straight-line spec: no goroutines, no
// channels — just the documented operation order.
func referenceClassfuzz(t *testing.T, cfg Config) []string {
	t.Helper()
	muts := mutation.Registry()
	p := cfg.P
	if p == 0 {
		p = mcmc.DefaultP(len(muts))
	}
	selector := mcmc.NewSampler(len(muts), p, initRNG(cfg.Rand))
	suite := coverage.NewSuite(cfg.Criterion)

	vm := jvm.New(cfg.RefSpec)
	rec := coverage.NewRecorder(jvm.ProbeRegistry())
	vm.SetRecorder(rec)

	pool := append([]poolEntry(nil), make([]poolEntry, 0, len(cfg.Source.Corpus()))...)
	for _, s := range cfg.Source.Corpus() {
		pool = append(pool, poolEntry{class: s, iter: -1})
	}
	for _, s := range cfg.Source.Corpus() {
		tr, _, err := runOnRef(vm, rec, s)
		if err != nil {
			continue
		}
		if suite.Unique(tr) {
			suite.Add(tr)
		}
	}

	type pending struct {
		ok     bool
		muID   int
		mutant *jimple.Class
		trace  *coverage.Trace
	}
	D := cfg.lookahead()
	window := make([]pending, 0, D)
	var accepted []string

	commit := func(pd pending) {
		if !pd.ok {
			selector.Record(pd.muID, false)
			return
		}
		ok := false
		if suite.Unique(pd.trace) {
			suite.Add(pd.trace)
			ok = true
		}
		if ok {
			accepted = append(accepted, pd.mutant.Name)
			if !cfg.NoSeedRecycling {
				pool = append(pool, poolEntry{class: pd.mutant})
			}
		}
		selector.Record(pd.muID, ok)
	}

	for i := 0; i < cfg.Iterations; i++ {
		if len(window) == D {
			commit(window[0])
			window = window[1:]
		}
		rng := drawRNG(cfg.Rand, i)
		parent := pool[rng.Intn(len(pool))]
		muID := selector.Next(rng)

		pd := pending{muID: muID}
		mutant := parent.class.Clone()
		if muts[muID].Apply(mutant, DeriveRNG(cfg.Rand, i)) {
			finishMutant(mutant, i)
			if data, err := lower(mutant); err == nil {
				rec.Reset()
				vm.Run(data)
				pd.ok = true
				pd.mutant = mutant
				pd.trace = rec.Trace()
			}
		}
		window = append(window, pd)
	}
	for _, pd := range window {
		commit(pd)
	}
	return accepted
}
