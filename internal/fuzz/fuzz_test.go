package fuzz

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/jvm"
	"repro/internal/mutation"
	"repro/internal/seedgen"
)

func runCampaign(t *testing.T, alg Algorithm, crit coverage.Criterion, iters int) *Result {
	t.Helper()
	cfg := Config{
		Algorithm:  alg,
		Criterion:  crit,
		Source:     FlatSeeds(seedgen.Generate(seedgen.DefaultOptions(30, 5))),
		Iterations: iters,
		Rand:       17,
		RefSpec:    jvm.HotSpot9(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestClassfuzzProducesRepresentativeTests(t *testing.T) {
	res := runCampaign(t, Classfuzz, coverage.STBR, 300)
	if len(res.Gen) == 0 {
		t.Fatal("no classes generated")
	}
	if len(res.Test) == 0 {
		t.Fatal("no representative classes accepted")
	}
	if len(res.Test) > len(res.Gen) {
		t.Error("TestClasses must be a subset of GenClasses")
	}
	if res.Succ() <= 0 || res.Succ() > 1 {
		t.Errorf("succ = %g", res.Succ())
	}
	for _, g := range res.Test {
		if !g.Accepted || len(g.Data) == 0 {
			t.Error("accepted class missing data")
		}
	}
	// Coverage-directed campaigns must discard redundant mutants.
	if len(res.Test) == len(res.Gen) {
		t.Error("classfuzz accepted everything: uniqueness filter inactive")
	}
}

func TestRandfuzzAcceptsEverything(t *testing.T) {
	res := runCampaign(t, Randfuzz, coverage.STBR, 300)
	if len(res.Test) != len(res.Gen) {
		t.Errorf("randfuzz: test=%d gen=%d, must be equal", len(res.Test), len(res.Gen))
	}
	if res.GenUniqueStats != 0 {
		t.Error("randfuzz never measures coverage")
	}
}

func TestGreedyfuzzAcceptsFewest(t *testing.T) {
	greedy := runCampaign(t, Greedyfuzz, coverage.STBR, 300)
	cf := runCampaign(t, Classfuzz, coverage.STBR, 300)
	if len(greedy.Test) == 0 {
		t.Fatal("greedyfuzz accepted nothing")
	}
	// Finding 1's shape: greedyfuzz accepts far fewer classes than the
	// uniqueness-based algorithms (98 vs 898 in Table 4).
	if len(greedy.Test) >= len(cf.Test) {
		t.Errorf("greedy accepted %d ≥ classfuzz %d; expected far fewer",
			len(greedy.Test), len(cf.Test))
	}
}

func TestUniquefuzzBetweenGreedyAndClassfuzz(t *testing.T) {
	uf := runCampaign(t, Uniquefuzz, coverage.STBR, 400)
	cf := runCampaign(t, Classfuzz, coverage.STBR, 400)
	if len(uf.Test) == 0 {
		t.Fatal("uniquefuzz accepted nothing")
	}
	// MCMC guidance should yield at least as many representative tests
	// as unguided selection (the paper's +43%); allow equality noise at
	// small scale but never a large deficit.
	if float64(len(cf.Test)) < 0.75*float64(len(uf.Test)) {
		t.Errorf("classfuzz %d far below uniquefuzz %d", len(cf.Test), len(uf.Test))
	}
}

func TestCriterionOrderingOnTestCounts(t *testing.T) {
	st := runCampaign(t, Classfuzz, coverage.ST, 300)
	stbr := runCampaign(t, Classfuzz, coverage.STBR, 300)
	// [st] is strictly coarser than [stbr]: it can only accept fewer.
	if len(st.Test) > len(stbr.Test) {
		t.Errorf("[st] accepted %d > [stbr] %d", len(st.Test), len(stbr.Test))
	}
}

func TestMutatorStatsConsistency(t *testing.T) {
	res := runCampaign(t, Classfuzz, coverage.STBR, 250)
	if len(res.MutatorStats) != mutation.TotalMutators {
		t.Fatalf("stats for %d mutators", len(res.MutatorStats))
	}
	totalSel, totalSucc := 0, 0
	for _, st := range res.MutatorStats {
		if st.Success > st.Selected {
			t.Errorf("%s: success %d > selected %d", st.Name, st.Success, st.Selected)
		}
		totalSel += st.Selected
		totalSucc += st.Success
	}
	if totalSel != res.Iterations {
		t.Errorf("total selections %d != iterations %d", totalSel, res.Iterations)
	}
	if totalSucc != len(res.Test) {
		t.Errorf("total successes %d != |TestClasses| %d", totalSucc, len(res.Test))
	}
}

func TestDeterministicCampaign(t *testing.T) {
	a := runCampaign(t, Classfuzz, coverage.STBR, 150)
	b := runCampaign(t, Classfuzz, coverage.STBR, 150)
	if len(a.Gen) != len(b.Gen) || len(a.Test) != len(b.Test) {
		t.Fatalf("campaign not deterministic: gen %d/%d test %d/%d",
			len(a.Gen), len(b.Gen), len(a.Test), len(b.Test))
	}
	for i := range a.Gen {
		if a.Gen[i].MutatorID != b.Gen[i].MutatorID || a.Gen[i].Stats != b.Gen[i].Stats {
			t.Fatalf("generation diverged at %d", i)
		}
	}
}

func TestSeedRecyclingAblation(t *testing.T) {
	base := runCampaign(t, Classfuzz, coverage.STBR, 300)
	cfg := Config{
		Algorithm:       Classfuzz,
		Criterion:       coverage.STBR,
		Source:          FlatSeeds(seedgen.Generate(seedgen.DefaultOptions(30, 5))),
		Iterations:      300,
		Rand:            17,
		RefSpec:         jvm.HotSpot9(),
		NoSeedRecycling: true,
	}
	noRecycle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("recycling: %d tests; no recycling: %d tests", len(base.Test), len(noRecycle.Test))
	if len(noRecycle.Test) == 0 {
		t.Error("no-recycling campaign accepted nothing")
	}
}

func TestGeneratedSuiteTriggersDiscrepancies(t *testing.T) {
	// Finding 3's mechanism: the representative suite must reveal more
	// discrepancies proportionally than the raw seed corpus.
	res := runCampaign(t, Classfuzz, coverage.STBR, 500)
	var classes [][]byte
	for _, g := range res.Test {
		classes = append(classes, g.Data)
	}
	runner := difftest.NewStandardRunner()
	sum := runner.Evaluate(classes)
	if sum.Discrepancies == 0 {
		t.Error("representative suite triggered no discrepancies")
	}
	if sum.DistinctCount() < 2 {
		t.Errorf("only %d distinct discrepancies", sum.DistinctCount())
	}
	t.Logf("suite: %d classes, %d discrepancies (%.1f%%), %d distinct",
		sum.Total, sum.Discrepancies, sum.DiffRate()*100, sum.DistinctCount())
}

func TestBytefuzzBlindMutation(t *testing.T) {
	res := runCampaign(t, Bytefuzz, coverage.STBR, 300)
	if len(res.Gen) != 300 || len(res.Test) != 300 {
		t.Fatalf("bytefuzz must keep every mutant: gen=%d test=%d", len(res.Gen), len(res.Test))
	}
	for _, g := range res.Gen {
		if g.MutatorID != -1 {
			t.Fatal("bytefuzz mutants carry no mutator attribution")
		}
		if len(g.Data) == 0 {
			t.Fatal("bytefuzz mutant without bytes")
		}
	}
	if len(res.MutatorStats) != 0 {
		t.Error("bytefuzz never selects mutators")
	}
	// The defining property (§1): most blind byte mutants are invalid —
	// rejected before linking even starts — far more than structured
	// mutants.
	runner := difftest.NewStandardRunner()
	invalid := 0
	for _, g := range res.Gen {
		v := runner.Run(g.Data)
		allLoad := true
		for _, c := range v.Codes {
			if c != 1 {
				allLoad = false
			}
		}
		if allLoad {
			invalid++
		}
	}
	if invalid*2 < len(res.Gen) {
		t.Errorf("only %d/%d byte mutants invalid; expected a majority", invalid, len(res.Gen))
	}
	// Determinism.
	res2 := runCampaign(t, Bytefuzz, coverage.STBR, 300)
	for i := range res.Gen {
		if string(res.Gen[i].Data) != string(res2.Gen[i].Data) {
			t.Fatal("bytefuzz not deterministic")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Algorithm: Classfuzz}); err == nil {
		t.Error("empty seeds must fail")
	}
	seeds := seedgen.Generate(seedgen.DefaultOptions(2, 1))
	if _, err := Run(Config{Algorithm: Classfuzz, Source: FlatSeeds(seeds)}); err == nil {
		t.Error("zero iterations must fail")
	}
	if _, err := Run(Config{Algorithm: "bogus", Source: FlatSeeds(seeds), Iterations: 1}); err == nil {
		t.Error("unknown algorithm must fail")
	}
}

func TestResultTimingHelpers(t *testing.T) {
	res := runCampaign(t, Classfuzz, coverage.STBR, 100)
	if res.TimePerGen() < 0 || res.TimePerTest() < 0 {
		t.Error("negative timings")
	}
	empty := &Result{}
	if empty.TimePerGen() != 0 || empty.TimePerTest() != 0 || empty.Succ() != 0 {
		t.Error("zero-value result helpers must be 0")
	}
}
