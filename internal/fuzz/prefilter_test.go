package fuzz

import (
	"bytes"
	"testing"

	"repro/internal/coverage"
	"repro/internal/jvm"
	"repro/internal/seedgen"
)

// TestStaticPrefilterPreservesSuite asserts the prefilter's contract:
// a fixed-seed classfuzz campaign with StaticPrefilter enabled produces
// the identical accepted test suite — same names, same bytes, same
// mutator statistics — while executing strictly fewer mutants on the
// reference VM. Both bands must contribute: load-doomed mutants reuse
// cached load-phase traces, and verify-doomed ones (load-clean classes
// the dataflow oracle proves the linker rejects) reuse full traces
// keyed by the name-masked content fingerprint.
func TestStaticPrefilterPreservesSuite(t *testing.T) {
	base := Config{
		Algorithm:  Classfuzz,
		Criterion:  coverage.STBR,
		Iterations: 600,
		Rand:       3,
		RefSpec:    jvm.HotSpot9(),
	}

	plain := base
	plain.Source = FlatSeeds(seedgen.Generate(seedgen.DefaultOptions(15, 3)))
	r1, err := Run(plain)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	filtered := base
	filtered.Source = FlatSeeds(seedgen.Generate(seedgen.DefaultOptions(15, 3)))
	filtered.StaticPrefilter = true
	r2, err := Run(filtered)
	if err != nil {
		t.Fatalf("prefiltered run: %v", err)
	}

	if r2.Prefilter == nil {
		t.Fatal("prefiltered run reported no stats")
	}
	pf := r2.Prefilter
	t.Logf("prefilter: checked=%d doomed=%d verify_doomed=%d skipped=%d executed=%d",
		pf.Checked, pf.Doomed, pf.VerifyDoomed, pf.Skipped, pf.Executed)
	if pf.VerifyDoomed == 0 {
		t.Errorf("verify band doomed no mutants (checked=%d doomed=%d)", pf.Checked, pf.Doomed)
	}
	if pf.VerifyDoomed >= pf.Doomed {
		t.Errorf("verify dooms (%d) must be a strict subset of dooms (%d): the load band stopped contributing",
			pf.VerifyDoomed, pf.Doomed)
	}

	// Identical accepted suite.
	if len(r1.Test) != len(r2.Test) {
		t.Fatalf("suite size diverged: plain %d, prefiltered %d", len(r1.Test), len(r2.Test))
	}
	for i := range r1.Test {
		if r1.Test[i].Name != r2.Test[i].Name {
			t.Fatalf("suite[%d] name diverged: %q vs %q", i, r1.Test[i].Name, r2.Test[i].Name)
		}
		if !bytes.Equal(r1.Test[i].Data, r2.Test[i].Data) {
			t.Fatalf("suite[%d] (%s) bytes diverged", i, r1.Test[i].Name)
		}
	}
	if len(r1.MutatorStats) != len(r2.MutatorStats) {
		t.Fatalf("mutator stat lengths diverged")
	}
	for i := range r1.MutatorStats {
		a, b := r1.MutatorStats[i], r2.MutatorStats[i]
		if a.Selected != b.Selected || a.Success != b.Success {
			t.Fatalf("mutator %s stats diverged: %d/%d vs %d/%d",
				a.Name, a.Success, a.Selected, b.Success, b.Selected)
		}
	}

	// Strictly fewer reference-VM executions: the plain run executes
	// every generated mutant; the prefiltered run executes all but the
	// skipped ones.
	execPlain := len(r1.Gen)
	execFiltered := len(r2.Gen) - pf.Skipped
	if pf.Skipped == 0 {
		t.Fatalf("prefilter skipped no executions (checked=%d doomed=%d)", pf.Checked, pf.Doomed)
	}
	if execFiltered >= execPlain {
		t.Fatalf("prefiltered run executed %d mutants, plain %d — expected strictly fewer", execFiltered, execPlain)
	}
}
