package fuzz

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/coverage"
	"repro/internal/difftest"
)

func TestSaveAndLoadCorpus(t *testing.T) {
	res := runCampaign(t, Classfuzz, coverage.STBR, 200)
	dir := t.TempDir()
	if err := res.Save(dir); err != nil {
		t.Fatal(err)
	}

	man, classes, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Algorithm != Classfuzz || man.Criterion != "[stbr]" {
		t.Errorf("manifest identity: %+v", man)
	}
	if man.Accepted != len(res.Test) || len(classes) != len(res.Test) {
		t.Errorf("accepted %d, loaded %d, campaign %d", man.Accepted, len(classes), len(res.Test))
	}
	if man.Generated != len(res.Gen) || man.Iterations != res.Iterations {
		t.Error("campaign counters lost")
	}
	for i, mc := range man.Classes {
		if string(classes[i]) != string(res.Test[i].Data) {
			t.Fatalf("class %s bytes differ after round trip", mc.Name)
		}
		if mc.Stats() != res.Test[i].Stats {
			t.Errorf("class %s stats lost: %v vs %v", mc.Name, mc.Stats(), res.Test[i].Stats)
		}
		if mc.Mutator == "" {
			t.Errorf("class %s lost its mutator attribution", mc.Name)
		}
	}
	// Mutator stats are sorted by rate and only include selected ones.
	for i := 1; i < len(man.Mutators); i++ {
		if man.Mutators[i].Rate > man.Mutators[i-1].Rate {
			t.Error("manifest mutators not sorted by rate")
		}
	}

	// A reloaded corpus must drive differential testing identically.
	runner := difftest.NewStandardRunner()
	var orig [][]byte
	for _, g := range res.Test {
		orig = append(orig, g.Data)
	}
	s1 := runner.Evaluate(orig)
	s2 := runner.Evaluate(classes)
	if s1.Discrepancies != s2.Discrepancies || s1.DistinctCount() != s2.DistinctCount() {
		t.Error("reloaded corpus behaves differently")
	}
}

func TestLoadCorpusErrors(t *testing.T) {
	if _, _, err := LoadCorpus(t.TempDir()); err == nil {
		t.Error("missing manifest must fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCorpus(dir); err == nil {
		t.Error("corrupt manifest must fail")
	}
	// Manifest referencing a missing classfile.
	man := Manifest{Classes: []ManifestClass{{Name: "X", File: "X.class"}}}
	blob, _ := json.Marshal(man)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCorpus(dir); err == nil {
		t.Error("missing classfile must fail")
	}
}
