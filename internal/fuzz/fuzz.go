// Package fuzz implements the fuzzing campaigns of the evaluation:
// classfuzz (Algorithm 1 — coverage-directed mutation with MCMC mutator
// selection), and the three comparison algorithms randfuzz, greedyfuzz
// and uniquefuzz (§3.1.2). All campaigns share the same seeds, mutator
// set, reference VM and iteration budget, differing only in how they
// select mutators and which mutants they accept into the test suite.
package fuzz

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/coverage"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mcmc"
	"repro/internal/mutation"
)

// Algorithm names the campaign strategy.
type Algorithm string

// The four algorithms of §3.1.2, plus the byte-level blind fuzzer of
// the related work (Sirer & Bershad's "single one-byte value change at
// a random offset in a base classfile", §4) — the baseline whose
// overwhelmingly invalid mutants motivate coverage direction in §1.
const (
	Classfuzz  Algorithm = "classfuzz"
	Randfuzz   Algorithm = "randfuzz"
	Greedyfuzz Algorithm = "greedyfuzz"
	Uniquefuzz Algorithm = "uniquefuzz"
	Bytefuzz   Algorithm = "bytefuzz"
)

// Config parameterises a campaign.
type Config struct {
	Algorithm Algorithm
	// Criterion selects the uniqueness discipline for classfuzz
	// ([st]/[stbr]/[tr]); uniquefuzz always uses [stbr] (§3.1.2).
	Criterion coverage.Criterion
	// Seeds is the initial corpus (cloned before mutation).
	Seeds []*jimple.Class
	// Iterations is the campaign budget (the stand-in for the paper's
	// three-day wall clock).
	Iterations int
	// Rand seeds the campaign RNG.
	Rand int64
	// RefSpec is the instrumented reference VM (HotSpot 9 in the paper).
	RefSpec jvm.Spec
	// P is the geometric parameter for MCMC selection; 0 means the
	// paper's default 3/129.
	P float64
	// NoSeedRecycling disables adding accepted mutants back into the
	// seed pool (ablation of Algorithm 1 lines 5/14).
	NoSeedRecycling bool
	// KeepClasses retains every generated mutant's model and bytes in
	// the result (needed for differential testing of GenClasses).
	KeepClasses bool
	// StaticPrefilter short-circuits reference-VM execution of mutants
	// the static analyzer proves the reference loader rejects. The first
	// mutant of each structural fingerprint still executes (its trace
	// seeds a cache); fingerprint-equal repeats reuse that trace, so the
	// coverage-driven acceptance decisions — and the accepted suite —
	// are bit-identical to an unfiltered campaign.
	StaticPrefilter bool
}

// PrefilterStats counts the static prefilter's work in one campaign.
type PrefilterStats struct {
	// Checked is the number of mutants the prefilter inspected.
	Checked int
	// Doomed is how many were statically certain loading-phase rejects.
	Doomed int
	// Skipped is how many reference-VM executions the trace cache
	// avoided.
	Skipped int
	// Executed is how many doomed mutants ran anyway to seed the cache.
	Executed int
}

// GenClass is one generated mutant.
type GenClass struct {
	Name      string
	MutatorID int
	// Class and Data are populated when Config.KeepClasses is set (Data
	// always is for accepted classes).
	Class *jimple.Class
	Data  []byte
	// Stats is the mutant's coverage statistic on the reference VM
	// (zero for randfuzz, which never runs the reference VM).
	Stats coverage.Stats
	// Accepted marks membership in TestClasses.
	Accepted bool
}

// MutatorStat aggregates one mutator's campaign statistics.
type MutatorStat struct {
	ID       int
	Name     string
	Selected int
	Success  int
}

// Rate returns the success rate (0 when never selected).
func (m MutatorStat) Rate() float64 {
	if m.Selected == 0 {
		return 0
	}
	return float64(m.Success) / float64(m.Selected)
}

// Frequency returns the selection frequency given total selections.
func (m MutatorStat) Frequency(total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(m.Selected) / float64(total)
}

// Result summarises a campaign.
type Result struct {
	Algorithm  Algorithm
	Criterion  coverage.Criterion
	Iterations int
	// Gen holds every generated classfile; Test the accepted subset.
	Gen  []*GenClass
	Test []*GenClass
	// GenUniqueStats counts distinct (stmt, branch) coverage statistics
	// among generated classes (the paper's representativeness metric for
	// GenClasses; zero for randfuzz).
	GenUniqueStats int
	// Prefilter holds the static prefilter's counters when
	// Config.StaticPrefilter was set.
	Prefilter *PrefilterStats
	// MutatorStats is indexed by mutator ID.
	MutatorStats []MutatorStat
	Elapsed      time.Duration
}

// Succ returns the campaign success rate |TestClasses| / #iterations.
func (r *Result) Succ() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return float64(len(r.Test)) / float64(r.Iterations)
}

// TimePerGen returns the average time per generated class.
func (r *Result) TimePerGen() time.Duration {
	if len(r.Gen) == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(len(r.Gen))
}

// TimePerTest returns the average time per accepted test class.
func (r *Result) TimePerTest() time.Duration {
	if len(r.Test) == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(len(r.Test))
}

// Run executes a campaign.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("fuzz: no seeds")
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("fuzz: non-positive iteration budget")
	}
	switch cfg.Algorithm {
	case Classfuzz, Randfuzz, Greedyfuzz, Uniquefuzz:
	case Bytefuzz:
		return runBytefuzz(cfg)
	default:
		return nil, fmt.Errorf("fuzz: unknown algorithm %q", cfg.Algorithm)
	}

	start := time.Now()
	rng := rand.New(rand.NewSource(cfg.Rand))
	muts := mutation.Registry()

	// Mutator selector: classfuzz uses the MCMC chain; everything else
	// selects uniformly.
	var selector mcmc.Selector
	if cfg.Algorithm == Classfuzz {
		p := cfg.P
		if p == 0 {
			p = mcmc.DefaultP(len(muts))
		}
		selector = mcmc.NewSampler(len(muts), p, rng)
	} else {
		selector = mcmc.NewUniformSampler(len(muts), rng)
	}

	// Reference VM with coverage instrumentation (not used by randfuzz).
	refVM := jvm.New(cfg.RefSpec)
	rec := coverage.NewRecorder()
	refVM.SetRecorder(rec)

	coverageDirected := cfg.Algorithm != Randfuzz

	// Acceptance state.
	suite := coverage.NewSuite(cfg.Criterion)
	if cfg.Algorithm == Uniquefuzz {
		suite = coverage.NewSuite(coverage.STBR)
	}
	greedyUnion := &coverage.Trace{Stmts: map[string]bool{}, Branches: map[string]bool{}}
	genStats := coverage.NewSuite(coverage.STBR) // counts unique stats over Gen

	// Seed pool: Algorithm 1 line 1 initialises TestClasses with the
	// seeds, so seed traces participate in uniqueness checks.
	pool := make([]*jimple.Class, 0, len(cfg.Seeds))
	pool = append(pool, cfg.Seeds...)
	if coverageDirected {
		for _, s := range cfg.Seeds {
			tr, _, err := runOnRef(refVM, rec, s)
			if err != nil {
				continue // unlowerable seed: skip its trace
			}
			switch cfg.Algorithm {
			case Greedyfuzz:
				greedyUnion = coverage.Merge(greedyUnion, tr)
			default:
				if suite.Unique(tr) {
					suite.Add(tr)
				}
			}
		}
	}

	res := &Result{
		Algorithm:  cfg.Algorithm,
		Criterion:  cfg.Criterion,
		Iterations: cfg.Iterations,
	}

	var pf *prefilter
	if cfg.StaticPrefilter && coverageDirected {
		pf = newPrefilter(&cfg.RefSpec.Policy)
		res.Prefilter = &pf.stats
	}

	for it := 0; it < cfg.Iterations; it++ {
		seed := pool[rng.Intn(len(pool))]
		muID := selector.Next()
		mutant := seed.Clone()
		if !muts[muID].Apply(mutant, rng) {
			// Soot-style failure: no classfile generated this iteration.
			selector.Record(muID, false)
			continue
		}
		mutant.Name = fmt.Sprintf("M%d", 1430000000+it)
		mutant.Major = 51 // every mutant is pinned to version 51 (§3.1.1)
		// §2.2.1: each mutant is supplemented with a simple main that
		// prints a completion message, so the mutant observably either
		// runs or fails earlier in the startup pipeline. (Interfaces are
		// left alone; a main inside an interface is itself a mutation the
		// interface-member mutators produce deliberately.)
		if !mutant.IsInterface() && mutant.FindMethod("main") == nil {
			mutant.AddStandardMain("Completed!")
		}

		gc := &GenClass{Name: mutant.Name, MutatorID: muID}
		var tr *coverage.Trace
		if coverageDirected {
			var err error
			var data []byte
			tr, data, err = pf.runOnRef(refVM, rec, mutant)
			if err != nil {
				selector.Record(muID, false)
				continue
			}
			gc.Stats = tr.Stats()
			gc.Data = data
			genStats.Add(tr)
		} else {
			data, err := lower(mutant)
			if err != nil {
				selector.Record(muID, false)
				continue
			}
			gc.Data = data
		}
		if cfg.KeepClasses {
			gc.Class = mutant
		}
		res.Gen = append(res.Gen, gc)

		// Acceptance decision.
		accepted := false
		switch cfg.Algorithm {
		case Randfuzz:
			accepted = true // every generated classfile is a test
		case Greedyfuzz:
			merged := coverage.Merge(greedyUnion, tr)
			if merged.Stats() != greedyUnion.Stats() {
				greedyUnion = merged
				accepted = true
			}
		default: // classfuzz, uniquefuzz
			if suite.Unique(tr) {
				suite.Add(tr)
				accepted = true
			}
		}
		if accepted {
			gc.Accepted = true
			res.Test = append(res.Test, gc)
			if !cfg.NoSeedRecycling {
				pool = append(pool, mutant)
			}
		}
		selector.Record(muID, accepted)
	}

	res.GenUniqueStats = genStats.UniqueStatsCount()
	res.Elapsed = time.Since(start)
	res.MutatorStats = make([]MutatorStat, len(muts))
	for i, m := range muts {
		st := MutatorStat{ID: i, Name: m.Name}
		switch sel := selector.(type) {
		case *mcmc.Sampler:
			st.Selected = sel.Selected(i)
			st.Success = sel.Succeeded(i)
		case *mcmc.UniformSampler:
			st.Selected = int(sel.Frequency(i) * float64(totalSelections(res)))
		}
		res.MutatorStats[i] = st
	}
	// For uniform selectors, recover exact per-mutator tallies from the
	// generated classes instead of the frequency approximation above.
	if cfg.Algorithm != Classfuzz {
		for i := range res.MutatorStats {
			res.MutatorStats[i].Selected = 0
			res.MutatorStats[i].Success = 0
		}
		for _, g := range res.Gen {
			res.MutatorStats[g.MutatorID].Selected++
			if g.Accepted {
				res.MutatorStats[g.MutatorID].Success++
			}
		}
	}
	return res, nil
}

func totalSelections(r *Result) int { return r.Iterations }

// lower compiles a mutant to classfile bytes.
func lower(c *jimple.Class) ([]byte, error) {
	f, err := jimple.Lower(c)
	if err != nil {
		return nil, err
	}
	return f.Bytes()
}

// runOnRef lowers the class and executes it on the instrumented
// reference VM, returning the coverage trace and the bytes.
func runOnRef(vm *jvm.VM, rec *coverage.Recorder, c *jimple.Class) (*coverage.Trace, []byte, error) {
	data, err := lower(c)
	if err != nil {
		return nil, nil, err
	}
	rec.Reset()
	vm.Run(data)
	return rec.Trace(), data, nil
}

// prefilter caches load-phase coverage traces by structural
// fingerprint. Skipping is sound because the loading phase reads only
// the structural skeleton Fingerprint hashes and never consults the
// library environment, the RNG or interpreter state: fingerprint-equal
// files produce byte-identical load traces.
type prefilter struct {
	policy *jvm.Policy
	cache  map[uint64]*coverage.Trace
	stats  PrefilterStats
}

func newPrefilter(p *jvm.Policy) *prefilter {
	return &prefilter{policy: p, cache: make(map[uint64]*coverage.Trace)}
}

// runOnRef is runOnRef with the static short-circuit; a nil receiver
// degrades to plain execution.
func (pf *prefilter) runOnRef(vm *jvm.VM, rec *coverage.Recorder, c *jimple.Class) (*coverage.Trace, []byte, error) {
	if pf == nil {
		return runOnRef(vm, rec, c)
	}
	data, err := lower(c)
	if err != nil {
		return nil, nil, err
	}
	pf.stats.Checked++
	if f, perr := classfile.Parse(data); perr == nil {
		if d := analysis.LoadReject(f, pf.policy); d != nil {
			pf.stats.Doomed++
			fp := analysis.Fingerprint(f)
			if tr, ok := pf.cache[fp]; ok {
				pf.stats.Skipped++
				return tr, data, nil
			}
			rec.Reset()
			vm.Run(data)
			tr := rec.Trace()
			pf.cache[fp] = tr
			pf.stats.Executed++
			return tr, data, nil
		}
	}
	rec.Reset()
	vm.Run(data)
	return rec.Trace(), data, nil
}
