// Package fuzz is the stable façade over the staged campaign engine in
// internal/campaign. Historically this package held the whole fuzzing
// loop; the loop now lives in campaign (decomposed into draw / mutate /
// filter / execute / commit stages with a deterministic worker pool),
// and fuzz re-exports the public surface unchanged so existing callers
// — the CLIs, the experiments driver, the root façade — keep compiling
// against the same names. New code should import repro/internal/campaign
// directly for the engine-only features (Workers, Observer, Replay).
package fuzz

import (
	"repro/internal/campaign"
	"repro/internal/jimple"
)

// Algorithm names the campaign strategy.
type Algorithm = campaign.Algorithm

// The four algorithms of §3.1.2 plus the byte-level blind baseline.
const (
	Classfuzz  = campaign.Classfuzz
	Randfuzz   = campaign.Randfuzz
	Greedyfuzz = campaign.Greedyfuzz
	Uniquefuzz = campaign.Uniquefuzz
	Bytefuzz   = campaign.Bytefuzz
)

// Config parameterises a campaign. It is the engine's Config verbatim;
// the fields this package's original loop understood keep their exact
// meaning, and the engine-only fields (Workers, Lookahead, Observer,
// KeepGenBytes) default to the sequential behaviour.
type Config = campaign.Config

// SeedSource supplies the seed corpus and per-draw selection policy.
type SeedSource = campaign.SeedSource

// FlatSeeds wraps a flat seed slice with the historical uniform draw.
func FlatSeeds(seeds []*jimple.Class) SeedSource { return campaign.FlatSeeds(seeds) }

// Result summarises a campaign.
type Result = campaign.Result

// DrawRecord is one iteration's draw-log entry.
type DrawRecord = campaign.DrawRecord

// GenClass is one generated mutant.
type GenClass = campaign.GenClass

// MutatorStat aggregates one mutator's campaign statistics.
type MutatorStat = campaign.MutatorStat

// PrefilterStats counts the static prefilter's work in one campaign.
type PrefilterStats = campaign.PrefilterStats

// Manifest is the on-disk description of a saved campaign.
type Manifest = campaign.Manifest

// ManifestClass records one accepted test classfile.
type ManifestClass = campaign.ManifestClass

// ManifestMutator records one mutator's campaign statistics.
type ManifestMutator = campaign.ManifestMutator

// Run executes a campaign on the staged engine.
func Run(cfg Config) (*Result, error) { return campaign.Run(cfg) }

// LoadCorpus reads a saved suite back: the manifest plus every
// classfile's bytes, in manifest order.
func LoadCorpus(dir string) (*Manifest, [][]byte, error) { return campaign.LoadCorpus(dir) }
