package difftest

import (
	"bytes"
	"sync"

	"repro/internal/analysis"
	"repro/internal/jvm"
	"repro/internal/rtlib"
)

// vmIdent identifies a VM for memoization purposes: the full spec
// (name, nominal release, every policy knob) plus the library release
// actually bound (they differ under NewSharedEnvRunner). Outcomes are
// pure functions of (class bytes, policy, library release), so equal
// idents may share outcomes across lineups and sessions.
type vmIdent struct {
	spec jvm.Spec
	env  rtlib.Release
}

func memoIdent(vm *jvm.VM) vmIdent {
	return vmIdent{spec: vm.Spec, env: vm.Env.Release}
}

// memoClass is one distinct classfile's cache line: the exact bytes
// (for collision confirmation) and the outcomes recorded so far per VM
// identity.
type memoClass struct {
	data     []byte
	outcomes map[vmIdent]jvm.Outcome
}

// OutcomeMemo caches differential outcomes keyed by
// analysis.ContentFingerprint(class bytes) × vmIdent. Classes bucket by
// the 64-bit content fingerprint and are confirmed by byte equality —
// the same bucket-then-confirm discipline as the coverage suite's
// trace keying — so a fingerprint collision can cost an extra compare,
// never a reused wrong outcome.
//
// One memo may be shared by any number of Runners and goroutines (a
// single mutex guards the maps; lookups are trivial next to a VM
// execution). experiments.Session attaches one memo to all of its
// differential evaluations, so a class shared between campaign suites
// executes once per VM ever. Entries reference the caller's class
// bytes; they are never mutated.
type OutcomeMemo struct {
	mu      sync.Mutex
	buckets map[uint64][]*memoClass
	hits    int64
	misses  int64
}

// NewOutcomeMemo returns an empty memo.
func NewOutcomeMemo() *OutcomeMemo {
	return &OutcomeMemo{buckets: make(map[uint64][]*memoClass, 256)}
}

// class finds or creates the cache line for exact class bytes.
func (m *OutcomeMemo) class(data []byte) *memoClass {
	fp := analysis.ContentFingerprint(data)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.buckets[fp] {
		if bytes.Equal(c.data, data) {
			return c
		}
	}
	c := &memoClass{data: data, outcomes: make(map[vmIdent]jvm.Outcome, 8)}
	m.buckets[fp] = append(m.buckets[fp], c)
	return c
}

// get returns the cached outcome for one VM identity.
func (m *OutcomeMemo) get(c *memoClass, id vmIdent) (jvm.Outcome, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := c.outcomes[id]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return o, ok
}

// put records an outcome. Duplicate puts (two workers racing on a
// duplicated class) overwrite with an identical value — outcomes are
// pure — so last-write-wins is harmless.
func (m *OutcomeMemo) put(c *memoClass, id vmIdent, o jvm.Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c.outcomes[id] = o
}

// MemoStats is a snapshot of a memo's contents and traffic.
type MemoStats struct {
	// Classes is the number of distinct classfiles seen.
	Classes int
	// Outcomes is the total number of cached (class, VM) outcomes.
	Outcomes int
	// Hits / Misses count lookups across every attached Runner.
	Hits   int64
	Misses int64
}

// HitRate returns Hits / (Hits + Misses) (0 when idle).
func (s MemoStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the memo.
func (m *OutcomeMemo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MemoStats{Hits: m.hits, Misses: m.misses}
	for _, bucket := range m.buckets {
		st.Classes += len(bucket)
		for _, c := range bucket {
			st.Outcomes += len(c.outcomes)
		}
	}
	return st
}
