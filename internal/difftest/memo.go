package difftest

import (
	"bytes"
	"sync"

	"repro/internal/analysis"
	"repro/internal/jvm"
	"repro/internal/rtlib"
	"repro/internal/telemetry"
)

// vmIdent identifies a VM for memoization purposes: the full spec
// (name, nominal release, every policy knob) plus the library release
// actually bound (they differ under NewSharedEnvRunner). Outcomes are
// pure functions of (class bytes, policy, library release), so equal
// idents may share outcomes across lineups and sessions.
type vmIdent struct {
	spec jvm.Spec
	env  rtlib.Release
}

func memoIdent(vm *jvm.VM) vmIdent {
	return vmIdent{spec: vm.Spec, env: vm.Env.Release}
}

// memoClass is one distinct classfile's cache line: the exact bytes
// (for collision confirmation) and the outcomes recorded so far per VM
// identity.
type memoClass struct {
	data     []byte
	outcomes map[vmIdent]jvm.Outcome
}

// OutcomeMemo caches differential outcomes keyed by
// analysis.ContentFingerprint(class bytes) × vmIdent. Classes bucket by
// the 64-bit content fingerprint and are confirmed by byte equality —
// the same bucket-then-confirm discipline as the coverage suite's
// trace keying — so a fingerprint collision can cost an extra compare,
// never a reused wrong outcome.
//
// One memo may be shared by any number of Runners and goroutines (a
// single mutex guards the maps; lookups are trivial next to a VM
// execution). experiments.Session attaches one memo to all of its
// differential evaluations, so a class shared between campaign suites
// executes once per VM ever. Entries reference the caller's class
// bytes; they are never mutated.
type OutcomeMemo struct {
	mu      sync.Mutex
	buckets map[uint64][]*memoClass
	reg     *telemetry.Registry
	tel     memoTel
}

// Metric names of the memo's cross-runner traffic and contents. The
// names are disjoint from the Runner's difftest.memo.probes/hits so a
// merged roll-up never conflates one runner's view with the shared
// memo's global totals.
const (
	// MetricMemoLookupHits / Misses count lookups across every attached
	// Runner.
	MetricMemoLookupHits   = "difftest.memo.lookup_hits"
	MetricMemoLookupMisses = "difftest.memo.lookup_misses"
	// MetricMemoDistinctClasses gauges distinct classfiles seen;
	// MetricMemoCachedOutcomes gauges cached (class, VM) outcomes.
	MetricMemoDistinctClasses = "difftest.memo.distinct_classes"
	MetricMemoCachedOutcomes  = "difftest.memo.cached_outcomes"
)

type memoTel struct {
	hits     *telemetry.Counter
	misses   *telemetry.Counter
	classes  *telemetry.Gauge
	outcomes *telemetry.Gauge
}

func newMemoTel(reg *telemetry.Registry) memoTel {
	return memoTel{
		hits:     reg.Counter(MetricMemoLookupHits),
		misses:   reg.Counter(MetricMemoLookupMisses),
		classes:  reg.Gauge(MetricMemoDistinctClasses),
		outcomes: reg.Gauge(MetricMemoCachedOutcomes),
	}
}

// NewOutcomeMemo returns an empty memo reporting into a private
// registry (read via Stats; redirect with UseTelemetry).
func NewOutcomeMemo() *OutcomeMemo {
	m := &OutcomeMemo{buckets: make(map[uint64][]*memoClass, 256), reg: telemetry.New()}
	m.tel = newMemoTel(m.reg)
	return m
}

// UseTelemetry rebinds the memo's difftest.memo.* metrics to an
// external registry. Existing tallies stay in the old registry; the
// contents gauges are re-seeded so the new registry reflects the
// current cache.
func (m *OutcomeMemo) UseTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reg = reg
	m.tel = newMemoTel(reg)
	classes, outcomes := 0, 0
	for _, bucket := range m.buckets {
		classes += len(bucket)
		for _, c := range bucket {
			outcomes += len(c.outcomes)
		}
	}
	m.tel.classes.Set(int64(classes))
	m.tel.outcomes.Set(int64(outcomes))
}

// class finds or creates the cache line for exact class bytes.
func (m *OutcomeMemo) class(data []byte) *memoClass {
	fp := analysis.ContentFingerprint(data)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.classLocked(fp, data)
}

func (m *OutcomeMemo) classLocked(fp uint64, data []byte) *memoClass {
	for _, c := range m.buckets[fp] {
		if bytes.Equal(c.data, data) {
			return c
		}
	}
	c := &memoClass{data: data, outcomes: make(map[vmIdent]jvm.Outcome, 8)}
	m.buckets[fp] = append(m.buckets[fp], c)
	m.tel.classes.Add(1)
	return c
}

// batchProbe is the memo half of Runner.EvaluateBatch's partition
// phase: one lock acquisition resolves every class's cache line and
// copies out whatever outcomes the lineup already has, instead of
// len(classes)·len(ids) individual lock round-trips. hits[i][k]
// reports whether outs[i][k] is a valid cached outcome for class i
// under ids[k]. Fingerprints are computed before taking the lock —
// they dominate the probe's cost and need no shared state.
func (m *OutcomeMemo) batchProbe(classes [][]byte, ids []vmIdent) (cls []*memoClass, outs [][]jvm.Outcome, hits [][]bool) {
	fps := make([]uint64, len(classes))
	for i, data := range classes {
		fps[i] = analysis.ContentFingerprint(data)
	}
	cls = make([]*memoClass, len(classes))
	outs = make([][]jvm.Outcome, len(classes))
	hits = make([][]bool, len(classes))
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, data := range classes {
		c := m.classLocked(fps[i], data)
		cls[i] = c
		outs[i] = make([]jvm.Outcome, len(ids))
		hits[i] = make([]bool, len(ids))
		for k, id := range ids {
			o, ok := c.outcomes[id]
			if ok {
				m.tel.hits.Inc()
			} else {
				m.tel.misses.Inc()
			}
			outs[i][k], hits[i][k] = o, ok
		}
	}
	return cls, outs, hits
}

// get returns the cached outcome for one VM identity.
func (m *OutcomeMemo) get(c *memoClass, id vmIdent) (jvm.Outcome, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := c.outcomes[id]
	if ok {
		m.tel.hits.Inc()
	} else {
		m.tel.misses.Inc()
	}
	return o, ok
}

// put records an outcome. Duplicate puts (two workers racing on a
// duplicated class) overwrite with an identical value — outcomes are
// pure — so last-write-wins is harmless.
func (m *OutcomeMemo) put(c *memoClass, id vmIdent, o jvm.Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := c.outcomes[id]; !ok {
		m.tel.outcomes.Add(1)
	}
	c.outcomes[id] = o
}

// Stats snapshots the memo's difftest.memo.* metrics: lookup_hits /
// lookup_misses counters and distinct_classes / cached_outcomes
// gauges. (The former MemoStats struct is gone — read the named values
// off the snapshot.)
func (m *OutcomeMemo) Stats() telemetry.Snapshot {
	m.mu.Lock()
	reg := m.reg
	m.mu.Unlock()
	return reg.Snapshot()
}

// MemoHitRate derives hits/(hits+misses) from a snapshot carrying the
// memo lookup counters (0 when idle).
func MemoHitRate(s telemetry.Snapshot) float64 {
	h, m := s.Counter(MetricMemoLookupHits), s.Counter(MetricMemoLookupMisses)
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
