package difftest

import (
	"testing"

	"repro/internal/seedgen"
)

// TestEvaluateCheckedMatchesParallel asserts the sanitizer-enabled
// evaluation produces the same aggregate as the plain parallel one and
// reports no oracle mismatch on a seed corpus (which exercises both
// normally-invoked classes and version-skewed rejects).
func TestEvaluateCheckedMatchesParallel(t *testing.T) {
	opts := seedgen.DefaultOptions(60, 11)
	opts.SkewFraction = 0.2 // force plenty of rejecting classes
	classes, err := seedgen.GenerateFiles(opts)
	if err != nil {
		t.Fatal(err)
	}
	r := NewStandardRunner()
	plain := r.EvaluateParallel(classes, 0)
	checked := r.EvaluateChecked(classes, 0)

	if checked.OracleMismatches != 0 {
		t.Errorf("static oracle disagreed with the interpreter %d time(s): %v",
			checked.OracleMismatches, checked.MismatchSamples)
	}
	if plain.Total != checked.Total ||
		plain.AllInvoked != checked.AllInvoked ||
		plain.AllRejectedSameStage != checked.AllRejectedSameStage ||
		plain.Discrepancies != checked.Discrepancies ||
		plain.DistinctCount() != checked.DistinctCount() {
		t.Errorf("aggregates diverged: plain %+v, checked %+v", plain, checked)
	}
}

// TestRunCheckedUnparseable asserts unparseable bytes yield no oracle
// claims (all VMs still report their own rejection vector).
func TestRunCheckedUnparseable(t *testing.T) {
	r := NewStandardRunner()
	v, mm := r.RunChecked([]byte{0xCA, 0xFE, 0xBA})
	if len(mm) != 0 {
		t.Errorf("oracle claimed something about unparseable bytes: %v", mm)
	}
	for i, o := range v.Outcomes {
		if o.OK() {
			t.Errorf("VM %d invoked unparseable bytes", i)
		}
	}
}
