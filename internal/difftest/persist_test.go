package difftest

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/seedgen"
)

// TestMemoExportImportRoundTrip fills a memo through a real evaluation,
// round-trips it through JSON, imports into a fresh memo against a
// fresh lineup, and checks (1) a warm evaluation against the imported
// memo produces the identical Summary, (2) with zero VM executions.
func TestMemoExportImportRoundTrip(t *testing.T) {
	classes, err := seedgen.GenerateFiles(seedgen.DefaultOptions(40, 11))
	if err != nil {
		t.Fatal(err)
	}

	cold := NewStandardRunner()
	memo := NewOutcomeMemo()
	cold.Memo = memo
	want := cold.Evaluate(classes)

	blob, err := json.Marshal(memo.Export())
	if err != nil {
		t.Fatalf("marshal export: %v", err)
	}
	var exp MemoExport
	if err := json.Unmarshal(blob, &exp); err != nil {
		t.Fatalf("unmarshal export: %v", err)
	}

	warm := NewStandardRunner()
	fresh := NewOutcomeMemo()
	n, err := fresh.Import(&exp, warm.VMs)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if wantN := len(classes) * len(warm.VMs); n != wantN {
		t.Fatalf("imported %d outcomes, want %d", n, wantN)
	}
	warm.Memo = fresh
	got := warm.Evaluate(classes)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("summary after memo import diverges from the original evaluation")
	}
	stats := warm.Stats()
	if runs := stats.Counter(MetricVMRuns); runs != 0 {
		t.Fatalf("imported memo still ran %d VM executions", runs)
	}
}

// TestMemoExportDeterministic: two exports of the same memo serialize
// byte-identically (checkpoint files must diff cleanly).
func TestMemoExportDeterministic(t *testing.T) {
	classes, err := seedgen.GenerateFiles(seedgen.DefaultOptions(25, 7))
	if err != nil {
		t.Fatal(err)
	}
	r := NewStandardRunner()
	memo := NewOutcomeMemo()
	r.Memo = memo
	r.Evaluate(classes)
	a, _ := json.Marshal(memo.Export())
	b, _ := json.Marshal(memo.Export())
	if !bytes.Equal(a, b) {
		t.Fatal("memo export is not deterministic")
	}
}

// TestMemoImportDropsUnknownIdents: outcomes recorded under a VM
// identity absent from the importing lineup are dropped, not
// misattributed.
func TestMemoImportDropsUnknownIdents(t *testing.T) {
	classes, err := seedgen.GenerateFiles(seedgen.DefaultOptions(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	r := NewStandardRunner()
	memo := NewOutcomeMemo()
	r.Memo = memo
	r.Evaluate(classes)
	exp := memo.Export()
	for i := range exp.Classes {
		for j := range exp.Classes[i].Outcomes {
			exp.Classes[i].Outcomes[j].Sig ^= 0xdead // simulate policy drift
		}
	}
	fresh := NewOutcomeMemo()
	n, err := fresh.Import(exp, NewStandardRunner().VMs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("adopted %d outcomes under drifted identities", n)
	}

	// Version mismatch is refused outright.
	exp2 := memo.Export()
	exp2.Version++
	if _, err := fresh.Import(exp2, NewStandardRunner().VMs); err == nil {
		t.Fatal("version mismatch accepted")
	}
}
