package difftest

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/jvm"
)

// TestVerifyMemoSummaryEquivalence pins the lineup-level contract of
// the method-verification memo: Summaries — vectors, histogram,
// discrepancy samples, everything — are field-identical whether the
// lineup runs with no memo, a cold one, or one warmed by an identical
// prior pass, sequentially and at every worker count of the sweep.
func TestVerifyMemoSummaryEquivalence(t *testing.T) {
	classes := mixedCorpus(t)

	off := NewStandardRunner()
	off.VerifyMemo = nil
	jvm.ShareVerifyMemo(off.VMs, nil)
	want := off.Evaluate(classes)

	check := func(name string, got *Summary) {
		t.Helper()
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s summary differs from memo-off reference:\nwant %+v\ngot  %+v", name, want, got)
		}
	}

	// Default runner: private memo, cold then warm.
	r := NewStandardRunner()
	check("default cold", r.Evaluate(classes))
	check("default warm", r.Evaluate(classes))

	// Warm shared memo across parallel and batched paths.
	warm := jvm.NewVerifyMemo()
	for _, w := range testWorkerCounts() {
		r := NewStandardRunner()
		r.VerifyMemo = warm
		jvm.ShareVerifyMemo(r.VMs, warm)
		check(fmt.Sprintf("shared parallel(%d)", w), r.EvaluateParallel(classes, w))
		check(fmt.Sprintf("shared batch(%d)", w), r.EvaluateBatch(classes, w))
	}
	if warm.Len() == 0 {
		t.Fatal("shared memo stayed empty — the sweep never exercised it")
	}
}
