package difftest

import (
	"fmt"
	"strings"
	"testing"
)

// BenchmarkDifftestSequentialReparse is the pre-engine baseline: every
// VM parses every class itself (5 parses per class). Kept runnable so
// BENCH_difftest.json and the CI compare gate can quantify the engine's
// win against it.
func BenchmarkDifftestSequentialReparse(b *testing.B) {
	classes := mixedCorpus(b)
	r := NewStandardRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newSummary(r)
		for _, data := range classes {
			s.absorb(r.runSeparateParses(data))
		}
	}
}

// BenchmarkDifftestSequential is the parse-once engine at one worker.
func BenchmarkDifftestSequential(b *testing.B) {
	classes := mixedCorpus(b)
	r := NewStandardRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Evaluate(classes)
	}
}

// BenchmarkDifftestParallel4 is the engine over a four-worker pool.
func BenchmarkDifftestParallel4(b *testing.B) {
	classes := mixedCorpus(b)
	r := NewStandardRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.EvaluateParallel(classes, 4)
	}
}

// BenchmarkDifftestMemoized is a warm-memo re-evaluation — the steady
// state of a session whose campaigns share classes (Table 7 after
// Table 6).
func BenchmarkDifftestMemoized(b *testing.B) {
	classes := mixedCorpus(b)
	r := NewStandardRunner()
	r.Memo = NewOutcomeMemo()
	r.Evaluate(classes) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Evaluate(classes)
	}
}

// keyViaFprintf is the historical Vector.Key implementation, kept as
// the micro-benchmark reference for the byte-append rewrite.
func keyViaFprintf(v Vector) string {
	var b strings.Builder
	for _, c := range v.Codes {
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

var benchKeyVector = Vector{Codes: []int{0, 0, 0, 1, 2}}

func BenchmarkVectorKey(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if benchKeyVector.Key() == "" {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkVectorKeyFprintf(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if keyViaFprintf(benchKeyVector) == "" {
			b.Fatal("empty key")
		}
	}
}

// TestVectorKeyMatchesReference pins the fast Key to the historical
// rendering over every in-range vector shape.
func TestVectorKeyMatchesReference(t *testing.T) {
	vs := []Vector{
		{Codes: []int{}},
		{Codes: []int{0}},
		{Codes: []int{0, 0, 0, 1, 2}},
		{Codes: []int{4, 3, 2, 1, 0}},
		{Codes: []int{9, 9, 9, 9, 9}},
	}
	for _, v := range vs {
		if got, want := v.Key(), keyViaFprintf(v); got != want {
			t.Errorf("Key(%v) = %q, want %q", v.Codes, got, want)
		}
	}
}
