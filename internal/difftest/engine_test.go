package difftest

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/classfile"
	"repro/internal/jvm"
	"repro/internal/seedgen"
	"repro/internal/telemetry"
)

// mixedCorpus builds a deterministic corpus exercising every outcome
// class: normally-invoked hellos, version-skewed rejects (via seedgen's
// skew fraction), the Figure 2 discrepancy, unparseable bytes, and
// exact duplicates (memo fodder).
func mixedCorpus(t testing.TB) [][]byte {
	opts := seedgen.DefaultOptions(40, 11)
	opts.SkewFraction = 0.25
	classes, err := seedgen.GenerateFiles(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		classes = append(classes, hello(fmt.Sprintf("EMix%d", i)))
	}
	f := classfile.New("EMixDiscrepant")
	classfile.AttachDefaultInit(f)
	classfile.AttachStandardMain(f, "ok")
	f.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>", "()V")
	d, _ := f.Bytes()
	classes = append(classes, d)
	classes = append(classes, []byte{0xCA, 0xFE, 0xBA, 0xBE}, []byte{0x00})
	// Duplicates, interleaved so parallel workers race on them.
	classes = append(classes, classes[:10]...)
	return classes
}

// testWorkerCounts is the sweep the equivalence tests run; the CI race
// matrix widens it via DIFFTEST_TEST_WORKERS.
func testWorkerCounts() []int {
	ws := []int{1, 4, runtime.GOMAXPROCS(0)}
	if env := os.Getenv("DIFFTEST_TEST_WORKERS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			ws = append(ws, n)
		}
	}
	return ws
}

// TestEngineEquivalence asserts the engine's contract: sequential
// Evaluate, EvaluateParallel at several worker counts, the memoized
// path (cold and warm), and the retained pre-engine per-VM-parse
// reference all produce field-identical Summaries — DistinctVectors,
// histogram, sample ordering included — on a mixed corpus.
func TestEngineEquivalence(t *testing.T) {
	classes := mixedCorpus(t)

	ref := NewStandardRunner()
	want := newSummary(ref)
	for _, data := range classes {
		want.absorb(ref.runSeparateParses(data))
	}

	check := func(name string, got *Summary) {
		t.Helper()
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s summary differs from per-VM-parse reference:\nwant %+v\ngot  %+v", name, want, got)
		}
	}

	check("Evaluate", NewStandardRunner().Evaluate(classes))
	for _, w := range testWorkerCounts() {
		check(fmt.Sprintf("EvaluateParallel(%d)", w),
			NewStandardRunner().EvaluateParallel(classes, w))
	}

	memoRunner := NewStandardRunner()
	memoRunner.Memo = NewOutcomeMemo()
	check("memoized cold", memoRunner.EvaluateParallel(classes, 4))
	check("memoized warm", memoRunner.EvaluateParallel(classes, 4))
	check("memoized warm sequential", memoRunner.Evaluate(classes))
}

// TestEvaluateBatchEquivalence asserts the batched engine — one locked
// memo partition, misses-only execution — produces field-identical
// Summaries in every memo state: no memo at all, cold, partially warm
// (half the corpus pre-seeded), and fully warm (where no class should
// execute at all), across the worker sweep.
func TestEvaluateBatchEquivalence(t *testing.T) {
	classes := mixedCorpus(t)
	want := NewStandardRunner().Evaluate(classes)

	check := func(name string, got *Summary) {
		t.Helper()
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s summary differs:\nwant %+v\ngot  %+v", name, want, got)
		}
	}

	// Degenerate path: no memo attached.
	for _, w := range testWorkerCounts() {
		check(fmt.Sprintf("no-memo(%d)", w), NewStandardRunner().EvaluateBatch(classes, w))
	}

	for _, w := range testWorkerCounts() {
		r := NewStandardRunner()
		r.Memo = NewOutcomeMemo()
		check(fmt.Sprintf("cold(%d)", w), r.EvaluateBatch(classes, w))
		check(fmt.Sprintf("warm(%d)", w), r.EvaluateBatch(classes, w))
	}

	// Partially warm: seed the memo with half the corpus, then batch the
	// whole set — hits assemble from the partition pass, misses execute.
	partial := NewStandardRunner()
	partial.Memo = NewOutcomeMemo()
	partial.Evaluate(classes[:len(classes)/2])
	check("partial(4)", partial.EvaluateBatch(classes, 4))

	// Fully warm batch runs zero VM pipelines: every vector assembles
	// from the single probe phase.
	warm := NewStandardRunner()
	warm.Memo = NewOutcomeMemo()
	warm.EvaluateBatch(classes, 4)
	before := warm.Stats()
	check("warm-noexec", warm.EvaluateBatch(classes, 4))
	delta := warm.Stats().Diff(before)
	if runs := delta.Counter(MetricVMRuns); runs != 0 {
		t.Errorf("fully-warm batch executed %d VM runs, want 0", runs)
	}
	if parses := delta.Counter(MetricParses); parses != 0 {
		t.Errorf("fully-warm batch parsed %d classes, want 0", parses)
	}
}

// TestEvaluateCheckedEquivalence asserts the checked path (static
// oracle sanitizer) is byte-identical across worker counts and the
// memoized path, MismatchSamples ordering included.
func TestEvaluateCheckedEquivalence(t *testing.T) {
	classes := mixedCorpus(t)
	want := NewStandardRunner().EvaluateChecked(classes, 1)
	for _, w := range testWorkerCounts() {
		got := NewStandardRunner().EvaluateChecked(classes, w)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("EvaluateChecked(%d) differs:\nwant %+v\ngot  %+v", w, want, got)
		}
	}
	memoRunner := NewStandardRunner()
	memoRunner.Memo = NewOutcomeMemo()
	for _, pass := range []string{"cold", "warm"} {
		got := memoRunner.EvaluateChecked(classes, 4)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("EvaluateChecked memoized %s differs:\nwant %+v\ngot  %+v", pass, want, got)
		}
	}
}

// TestParseOncePerClass asserts the headline accounting: the engine
// parses each evaluated class exactly once (the pre-engine model parsed
// once per VM, 5×), and a warm memo skips both the parses and the VM
// runs entirely.
func TestParseOncePerClass(t *testing.T) {
	classes := mixedCorpus(t)
	n := int64(len(classes))

	plain := NewStandardRunner()
	plain.Evaluate(classes)
	st := plain.Stats()
	if got := st.Counter(MetricClasses); got != n {
		t.Fatalf("classes = %d, want %d", got, n)
	}
	parses := st.Counter(MetricParses)
	if parses != n {
		t.Errorf("parses = %d, want one per class (%d)", parses, n)
	}
	avoided := st.Counter(MetricClasses)*int64(len(plain.VMs)) - parses
	if want := n * int64(len(plain.VMs)-1); avoided != want {
		t.Errorf("parses avoided = %d, want %d", avoided, want)
	}

	r := NewStandardRunner()
	r.Memo = NewOutcomeMemo()
	r.Evaluate(classes)
	// Even cold, the memo collapses exact duplicates: one parse per
	// distinct class, none for repeats.
	st = r.Stats()
	if distinct := r.Memo.Stats().Gauge(MetricMemoDistinctClasses); st.Counter(MetricParses) != distinct {
		t.Errorf("cold-memo parses = %d, want one per distinct class (%d)", st.Counter(MetricParses), distinct)
	}

	// Counters are cumulative; the warm pass is the delta over a second
	// evaluation (the bracket-and-Diff idiom Stats documents).
	before := r.Stats()
	r.Evaluate(classes)
	d := r.Stats().Diff(before)
	if got := d.Counter(MetricParses); got != 0 {
		t.Errorf("warm-memo parses = %d, want 0", got)
	}
	if got := d.Counter(MetricVMRuns); got != 0 {
		t.Errorf("warm-memo vm_runs = %d, want 0", got)
	}
	hits, probes := d.Counter(MetricMemoHits), d.Counter(MetricMemoProbes)
	if hits != probes || hits != n*int64(len(r.VMs)) {
		t.Errorf("warm-memo hits = %d / probes = %d, want all %d",
			hits, probes, n*int64(len(r.VMs)))
	}
}

// TestMemoSharedAcrossRunners asserts the session pattern: a second
// Runner attached to the same memo executes nothing for classes the
// first already evaluated (the VM identities match), while a
// shared-environment lineup — different library binding — does not
// reuse the standard lineup's outcomes for the release-bound VMs.
func TestMemoSharedAcrossRunners(t *testing.T) {
	classes := mixedCorpus(t)
	memo := NewOutcomeMemo()

	a := NewStandardRunner()
	a.Memo = memo
	first := a.Evaluate(classes)

	b := NewStandardRunner()
	b.Memo = memo
	second := b.EvaluateParallel(classes, 4)
	if !reflect.DeepEqual(first, second) {
		t.Error("memo-fed runner produced a different summary")
	}
	if st := b.Stats(); st.Counter(MetricVMRuns) != 0 || st.Counter(MetricParses) != 0 {
		t.Errorf("second runner executed work: %d runs, %d parses",
			st.Counter(MetricVMRuns), st.Counter(MetricParses))
	}

	shared := NewSharedEnvRunner(0) // rtlib.JRE7: four VMs rebound off their own release
	shared.Memo = memo
	shared.Evaluate(classes[:5])
	if st := shared.Stats(); st.Counter(MetricVMRuns) == 0 {
		t.Error("shared-env lineup must not reuse standard-lineup outcomes for rebound VMs")
	}
}

// TestUseTelemetry asserts the external-registry contract: attaching a
// registry leaves the Summary bit-identical (telemetry is observe-only),
// routes the difftest.* counters there, times evaluations, and switches
// on per-VM phase timing — including on worker clones.
func TestUseTelemetry(t *testing.T) {
	classes := mixedCorpus(t)
	want := NewStandardRunner().Evaluate(classes)

	reg := telemetry.New()
	r := NewStandardRunner()
	r.UseTelemetry(reg)
	got := r.EvaluateParallel(classes, 4)
	if !reflect.DeepEqual(want, got) {
		t.Error("telemetry-attached evaluation changed the Summary")
	}

	s := reg.Snapshot()
	if n := s.Counter(MetricClasses); n != int64(len(classes)) {
		t.Errorf("classes counter = %d, want %d", n, len(classes))
	}
	if s.Gauge(MetricLineupSize) != int64(len(r.VMs)) {
		t.Errorf("lineup gauge = %d, want %d", s.Gauge(MetricLineupSize), len(r.VMs))
	}
	if h := s.Hist(MetricEvaluateNs); h.Count != 1 {
		t.Errorf("evaluate_ns count = %d, want 1", h.Count)
	}
	// Worker clones inherit the registry, so per-VM run counters across
	// the lineup must account for every pipeline execution.
	var vmRuns int64
	for _, vm := range r.VMs {
		vmRuns += s.Counter("jvm." + vm.Spec.Name + ".runs")
	}
	if engine := s.Counter(MetricVMRuns); vmRuns != engine {
		t.Errorf("per-VM run counters sum to %d, engine counted %d", vmRuns, engine)
	}
	// Phase timing histograms exist and observed at least the loading
	// stage for the reference VM.
	name := "jvm." + r.VMs[0].Spec.Name + ".phase." + jvm.PhaseLoading.String() + "_ns"
	if h := s.Hist(name); h.Count == 0 {
		t.Errorf("%s recorded no observations", name)
	}
}

// TestRunParsedSharedFilePurity is the memo-soundness caveat as a race
// test: outcomes must be pure, i.e. no VM may mutate the shared parsed
// classfile.File. Many VMs of every policy run the same parsed files
// concurrently; under -race any write to shared parsed state is a
// report, and each run must keep producing its spec's outcome.
func TestRunParsedSharedFilePurity(t *testing.T) {
	var files []*classfile.File
	for _, data := range mixedCorpus(t) {
		f, err := classfile.Parse(data)
		if err != nil {
			continue
		}
		files = append(files, f)
	}
	if len(files) < 10 {
		t.Fatalf("corpus too small: %d parsed files", len(files))
	}

	specs := jvm.StandardFive()
	want := make([][]jvm.Outcome, len(specs))
	for si, spec := range specs {
		vm := jvm.New(spec)
		want[si] = make([]jvm.Outcome, len(files))
		for fi, f := range files {
			want[si][fi] = vm.RunParsed(f)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		for si, spec := range specs {
			wg.Add(1)
			go func(si int, spec jvm.Spec) {
				defer wg.Done()
				vm := jvm.New(spec) // private VM, private decode cache
				for fi, f := range files {
					got := vm.RunParsed(f)
					if !reflect.DeepEqual(got, want[si][fi]) {
						t.Errorf("%s: file %d outcome changed under sharing: %v vs %v",
							spec.Name, fi, got, want[si][fi])
						return
					}
				}
			}(si, spec)
		}
	}
	wg.Wait()
}

// TestVectorKeySlowPath pins the fallback rendering for codes outside
// 0–9 to the historical fmt-based behaviour.
func TestVectorKeySlowPath(t *testing.T) {
	v := Vector{Codes: []int{0, -1, 12}}
	if got := v.Key(); got != "0-112" {
		t.Errorf("Key = %q, want %q", got, "0-112")
	}
}
