package difftest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/jvm"
)

// engineStats are the Runner's cumulative execution counters. Atomics,
// because parallel evaluations update them from every worker; reads are
// snapshots via Stats.
type engineStats struct {
	classes    atomic.Int64
	parses     atomic.Int64
	vmRuns     atomic.Int64
	memoProbes atomic.Int64
	memoHits   atomic.Int64
	wallNanos  atomic.Int64
}

// EvalStats is a snapshot of a Runner's cumulative engine counters —
// the instrumentation cmd/report and cmd/difftestbench surface. The
// semantic results (Summary, Vector) are deterministic at any worker
// count; the counters of a memoized parallel evaluation are not quite
// (two workers may race to execute one duplicated class and both count
// a miss), so these are diagnostics, not oracle inputs.
type EvalStats struct {
	// Classes counts evaluated classfiles (vectors produced).
	Classes int64
	// Parses counts classfile.Parse calls the engine performed. The
	// pre-engine model parsed once per VM: Classes × lineup size.
	Parses int64
	// ParsesAvoided is that legacy baseline minus Parses.
	ParsesAvoided int64
	// VMRuns counts startup-pipeline executions actually performed.
	VMRuns int64
	// MemoProbes / MemoHits count per-VM memo lookups and successes
	// (both 0 when no memo is attached).
	MemoProbes int64
	MemoHits   int64
	// Wall is the cumulative wall clock spent inside Evaluate,
	// EvaluateParallel and EvaluateChecked (not single-class Runs).
	Wall time.Duration
}

// MemoHitRate returns MemoHits / MemoProbes (0 on no probes).
func (s EvalStats) MemoHitRate() float64 {
	if s.MemoProbes == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(s.MemoProbes)
}

// Stats snapshots the Runner's cumulative engine counters.
func (r *Runner) Stats() EvalStats {
	classes := r.stats.classes.Load()
	parses := r.stats.parses.Load()
	return EvalStats{
		Classes:       classes,
		Parses:        parses,
		ParsesAvoided: classes*int64(len(r.VMs)) - parses,
		VMRuns:        r.stats.vmRuns.Load(),
		MemoProbes:    r.stats.memoProbes.Load(),
		MemoHits:      r.stats.memoHits.Load(),
		Wall:          time.Duration(r.stats.wallNanos.Load()),
	}
}

// ResetStats zeroes the cumulative counters (the memo, if any, keeps
// its entries and its own counters).
func (r *Runner) ResetStats() {
	r.stats.classes.Store(0)
	r.stats.parses.Store(0)
	r.stats.vmRuns.Store(0)
	r.stats.memoProbes.Store(0)
	r.stats.memoHits.Store(0)
	r.stats.wallNanos.Store(0)
}

// cloneLineup builds a private copy of the Runner's lineup for one
// worker: same specs, same (read-only) library environments, one fresh
// decode cache shared across the clone. VM execution state is
// per-run, so clones are behaviourally identical to the originals.
func (r *Runner) cloneLineup() []*jvm.VM {
	vms := make([]*jvm.VM, len(r.VMs))
	for i, vm := range r.VMs {
		vms[i] = jvm.NewWithEnv(vm.Spec, vm.Env)
	}
	jvm.ShareDecodeCache(vms)
	return vms
}

// runLineup executes one classfile on a lineup under the engine's
// parse-once discipline:
//
//  1. probe the memo for every VM — a fully-memoized class skips even
//     the parse;
//  2. parse at most once (classfile.Parse is VM-independent); a parse
//     failure is fanned out as the identical loading-phase rejection;
//  3. drive each remaining VM through jvm.RunParsed over the shared
//     parsed file, filling the memo behind it.
//
// With checked set, the single parse also feeds the static oracle and
// each outcome (memoized or fresh — the oracle is a pure function of
// file, VM and outcome) is cross-checked, mismatches returned in VM
// order.
func (r *Runner) runLineup(vms []*jvm.VM, data []byte, checked bool) (Vector, []analysis.Mismatch) {
	v := Vector{
		Codes:    make([]int, len(vms)),
		Outcomes: make([]jvm.Outcome, len(vms)),
	}
	r.stats.classes.Add(1)

	var cls *memoClass
	if r.Memo != nil {
		cls = r.Memo.class(data)
	}

	var f *classfile.File
	var perr error
	parsed := false
	parse := func() {
		if parsed {
			return
		}
		parsed = true
		f, perr = classfile.Parse(data)
		r.stats.parses.Add(1)
	}
	if checked {
		parse() // the oracle needs the parsed file even on memo hits
	}

	var mm []analysis.Mismatch
	for i, vm := range vms {
		var o jvm.Outcome
		hit := false
		if cls != nil {
			r.stats.memoProbes.Add(1)
			o, hit = r.Memo.get(cls, memoIdent(vm))
			if hit {
				r.stats.memoHits.Add(1)
			}
		}
		if !hit {
			parse()
			if perr != nil {
				o = jvm.ParseReject(perr)
			} else {
				o = vm.RunParsed(f)
				r.stats.vmRuns.Add(1)
			}
			if cls != nil {
				r.Memo.put(cls, memoIdent(vm), o)
			}
		}
		v.Outcomes[i] = o
		v.Codes[i] = o.Code()
		if checked && perr == nil {
			if m := analysis.CheckVM(f, vm, o); m != nil {
				mm = append(mm, *m)
			}
		}
	}
	return v, mm
}

// evaluate is the engine behind Evaluate, EvaluateParallel and
// EvaluateChecked. Workers pull class indices from a shared counter,
// run them on private lineups, and park vectors in an index-addressed
// buffer; the fold into the Summary happens afterwards in class order
// (the same fixed-order commit discipline as the campaign engine), so
// the aggregate — DistinctVectors, histogram, mismatch samples and
// all — is bit-identical at any worker count.
func (r *Runner) evaluate(classes [][]byte, workers int, checked bool) *Summary {
	start := time.Now()
	defer func() { r.stats.wallNanos.Add(time.Since(start).Nanoseconds()) }()

	s := newSummary(r)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(classes) {
		workers = len(classes)
	}
	if workers <= 1 {
		for _, data := range classes {
			v, mm := r.runLineup(r.VMs, data, checked)
			s.absorb(v)
			if checked {
				s.absorbMismatches(mm)
			}
		}
		return s
	}

	vecs := make([]Vector, len(classes))
	var mms [][]analysis.Mismatch
	if checked {
		mms = make([][]analysis.Mismatch, len(classes))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lineup := r.cloneLineup()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(classes) {
					return
				}
				v, mm := r.runLineup(lineup, classes[i], checked)
				vecs[i] = v
				if checked {
					mms[i] = mm
				}
			}
		}()
	}
	wg.Wait()
	for i, v := range vecs {
		s.absorb(v)
		if checked {
			s.absorbMismatches(mms[i])
		}
	}
	return s
}
