package difftest

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/jvm"
	"repro/internal/telemetry"
)

// Metric names of the Runner's engine counters. The semantic results
// (Summary, Vector) are deterministic at any worker count; the counters
// of a memoized parallel evaluation are not quite (two workers may race
// to execute one duplicated class and both count a miss), so these are
// diagnostics, not oracle inputs.
const (
	// MetricClasses counts evaluated classfiles (vectors produced).
	MetricClasses = "difftest.classes"
	// MetricParses counts classfile.Parse calls the engine performed.
	// The pre-engine model parsed once per VM: Classes × lineup size;
	// ParsesAvoided is that baseline minus this counter.
	MetricParses = "difftest.parses"
	// MetricVMRuns counts startup-pipeline executions actually performed.
	MetricVMRuns = "difftest.vm_runs"
	// MetricMemoProbes / MetricMemoHits count this Runner's per-VM memo
	// lookups and successes (both 0 when no memo is attached).
	MetricMemoProbes = "difftest.memo.probes"
	MetricMemoHits   = "difftest.memo.hits"
	// MetricOracleMismatches counts unwaived static-oracle disagreements
	// found by checked evaluations.
	MetricOracleMismatches = "difftest.oracle.mismatches"
	// MetricLineupSize gauges the number of VMs under test.
	MetricLineupSize = "difftest.lineup_size"
	// MetricEvaluateNs is the wall-clock histogram over Evaluate /
	// EvaluateParallel / EvaluateChecked calls (not single-class Runs);
	// its Sum is the cumulative difftest stage wall clock.
	MetricEvaluateNs = "difftest.evaluate_ns"
)

// runnerTel holds the Runner's interned handles into its registry.
type runnerTel struct {
	classes    *telemetry.Counter
	parses     *telemetry.Counter
	vmRuns     *telemetry.Counter
	memoProbes *telemetry.Counter
	memoHits   *telemetry.Counter
	oracleMM   *telemetry.Counter
	lineup     *telemetry.Gauge
	evaluateNs *telemetry.Histogram
}

func newRunnerTel(reg *telemetry.Registry, lineup int) runnerTel {
	t := runnerTel{
		classes:    reg.Counter(MetricClasses),
		parses:     reg.Counter(MetricParses),
		vmRuns:     reg.Counter(MetricVMRuns),
		memoProbes: reg.Counter(MetricMemoProbes),
		memoHits:   reg.Counter(MetricMemoHits),
		oracleMM:   reg.Counter(MetricOracleMismatches),
		lineup:     reg.Gauge(MetricLineupSize),
		evaluateNs: reg.Histogram(MetricEvaluateNs),
	}
	t.lineup.Set(int64(lineup))
	return t
}

// Stats snapshots the Runner's cumulative engine metrics — the one
// exported stats surface (EvalStats, MemoStats and ResetStats are
// gone). Consumers read the difftest.* names via Snapshot.Counter and
// friends; for one operation's delta on a long-lived Runner, bracket it
// with two Stats calls and Diff them. ParsesAvoided is derived:
// Counter(MetricClasses)·lineup − Counter(MetricParses).
func (r *Runner) Stats() telemetry.Snapshot {
	return r.reg.Snapshot()
}

// UseTelemetry redirects the Runner's metrics into an external registry
// (e.g. one served by -metrics-addr) and switches on per-VM pipeline
// timing: every lineup VM — and every per-worker clone — records
// jvm.<spec>.phase.*_ns histograms there. The default private registry
// pays no timing, keeping the uninstrumented path clock-free.
func (r *Runner) UseTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	r.reg = reg
	r.vmTiming = true
	r.tel = newRunnerTel(reg, len(r.VMs))
	for _, vm := range r.VMs {
		vm.SetTelemetry(reg)
	}
	if r.VerifyMemo != nil {
		r.VerifyMemo.UseTelemetry(reg)
	}
}

// cloneLineup builds a private copy of the Runner's lineup for one
// worker: same specs, same (read-only) library environments, one fresh
// decode cache shared across the clone. VM execution state is
// per-run, so clones are behaviourally identical to the originals.
func (r *Runner) cloneLineup() []*jvm.VM {
	vms := make([]*jvm.VM, len(r.VMs))
	for i, vm := range r.VMs {
		vms[i] = jvm.NewWithEnv(vm.Spec, vm.Env)
		if r.vmTiming {
			vms[i].SetTelemetry(r.reg)
		}
	}
	jvm.ShareDecodeCache(vms)
	jvm.ShareVerifyMemo(vms, r.VerifyMemo)
	return vms
}

// Clone returns a Runner driving a private copy of r's lineup (same
// specs and read-only environments, one fresh decode cache shared
// across the clone) while sharing r's memo and metrics registry. Use
// one clone per goroutine: a single Runner's VMs carry per-run scratch
// state and must not execute concurrently. The parallel delta debugger
// (internal/reduce) builds its worker pool this way.
func (r *Runner) Clone() *Runner {
	return &Runner{VMs: r.cloneLineup(), Memo: r.Memo, VerifyMemo: r.VerifyMemo, reg: r.reg, tel: r.tel, vmTiming: r.vmTiming}
}

// runLineup executes one classfile on a lineup under the engine's
// parse-once discipline:
//
//  1. probe the memo for every VM — a fully-memoized class skips even
//     the parse;
//  2. parse at most once (classfile.Parse is VM-independent); a parse
//     failure is fanned out as the identical loading-phase rejection;
//  3. drive each remaining VM through jvm.RunParsed over the shared
//     parsed file, filling the memo behind it.
//
// With checked set, the single parse also feeds the static oracle and
// each outcome (memoized or fresh — the oracle is a pure function of
// file, VM and outcome) is cross-checked, mismatches returned in VM
// order.
func (r *Runner) runLineup(vms []*jvm.VM, data []byte, checked bool) (Vector, []analysis.Mismatch) {
	v := Vector{
		Codes:    make([]int, len(vms)),
		Outcomes: make([]jvm.Outcome, len(vms)),
	}
	r.tel.classes.Inc()

	var cls *memoClass
	if r.Memo != nil {
		cls = r.Memo.class(data)
	}

	var f *classfile.File
	var perr error
	parsed := false
	parse := func() {
		if parsed {
			return
		}
		parsed = true
		f, perr = classfile.Parse(data)
		r.tel.parses.Inc()
	}
	if checked {
		parse() // the oracle needs the parsed file even on memo hits
	}

	var mm []analysis.Mismatch
	for i, vm := range vms {
		var o jvm.Outcome
		hit := false
		if cls != nil {
			r.tel.memoProbes.Inc()
			o, hit = r.Memo.get(cls, memoIdent(vm))
			if hit {
				r.tel.memoHits.Inc()
			}
		}
		if !hit {
			parse()
			if perr != nil {
				o = jvm.ParseReject(perr)
			} else {
				o = vm.RunParsed(f)
				r.tel.vmRuns.Inc()
			}
			if cls != nil {
				r.Memo.put(cls, memoIdent(vm), o)
			}
		}
		v.Outcomes[i] = o
		v.Codes[i] = o.Code()
		if checked && perr == nil {
			if m := analysis.CheckVM(f, vm, o); m != nil {
				mm = append(mm, *m)
			}
		}
	}
	return v, mm
}

// evaluate is the engine behind Evaluate, EvaluateParallel and
// EvaluateChecked. Workers pull class indices from a shared counter,
// run them on private lineups, and park vectors in an index-addressed
// buffer; the fold into the Summary happens afterwards in class order
// (the same fixed-order commit discipline as the campaign engine), so
// the aggregate — DistinctVectors, histogram, mismatch samples and
// all — is bit-identical at any worker count.
func (r *Runner) evaluate(classes [][]byte, workers int, checked bool) *Summary {
	sp := telemetry.StartSpan(r.tel.evaluateNs)
	defer sp.End()
	return r.evaluateCore(classes, workers, checked)
}

func (r *Runner) evaluateCore(classes [][]byte, workers int, checked bool) *Summary {
	s := newSummary(r)
	if checked {
		defer func() { r.tel.oracleMM.Add(int64(s.OracleMismatches)) }()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(classes) {
		workers = len(classes)
	}
	if workers <= 1 {
		for _, data := range classes {
			v, mm := r.runLineup(r.VMs, data, checked)
			s.absorb(v)
			if checked {
				s.absorbMismatches(mm)
			}
		}
		return s
	}

	vecs := make([]Vector, len(classes))
	var mms [][]analysis.Mismatch
	if checked {
		mms = make([][]analysis.Mismatch, len(classes))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lineup := r.cloneLineup()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(classes) {
					return
				}
				v, mm := r.runLineup(lineup, classes[i], checked)
				vecs[i] = v
				if checked {
					mms[i] = mm
				}
			}
		}()
	}
	wg.Wait()
	for i, v := range vecs {
		s.absorb(v)
		if checked {
			s.absorbMismatches(mms[i])
		}
	}
	return s
}

// runLineupPrefilled is runLineup for EvaluateBatch's execution phase:
// the partition pass already probed the memo, so outs/hits carry the
// cached outcomes and only the missing (class, VM) pairs parse and
// execute. Outcomes are pure functions of (bytes, spec, release), so
// the resulting Vector is identical to runLineup's.
func (r *Runner) runLineupPrefilled(vms []*jvm.VM, data []byte, cls *memoClass, outs []jvm.Outcome, hits []bool) Vector {
	v := Vector{
		Codes:    make([]int, len(vms)),
		Outcomes: make([]jvm.Outcome, len(vms)),
	}
	var f *classfile.File
	var perr error
	parsed := false
	for i, vm := range vms {
		o := outs[i]
		if !hits[i] {
			if !parsed {
				parsed = true
				f, perr = classfile.Parse(data)
				r.tel.parses.Inc()
			}
			if perr != nil {
				o = jvm.ParseReject(perr)
			} else {
				o = vm.RunParsed(f)
				r.tel.vmRuns.Inc()
			}
			r.Memo.put(cls, memoIdent(vm), o)
		}
		v.Outcomes[i] = o
		v.Codes[i] = o.Code()
	}
	return v
}

// evaluateBatch is the engine behind EvaluateBatch: partition the
// whole class set against the memo in one locked pass, then fan out
// only the classes with at least one uncached VM outcome. Vectors park
// in an index-addressed buffer and fold in class order, so the Summary
// is bit-identical to Evaluate's.
func (r *Runner) evaluateBatch(classes [][]byte, workers int) *Summary {
	sp := telemetry.StartSpan(r.tel.evaluateNs)
	defer sp.End()

	if r.Memo == nil || len(classes) == 0 {
		// Nothing to partition against: the batch path degenerates to
		// the ordinary engine.
		return r.evaluateCore(classes, workers, false)
	}

	ids := make([]vmIdent, len(r.VMs))
	for i, vm := range r.VMs {
		ids[i] = memoIdent(vm)
	}
	cls, outs, hits := r.Memo.batchProbe(classes, ids)
	r.tel.classes.Add(int64(len(classes)))
	r.tel.memoProbes.Add(int64(len(classes) * len(ids)))

	// Partition: a class is a miss when any VM outcome is uncached.
	vecs := make([]Vector, len(classes))
	var misses []int
	for i := range classes {
		full := true
		for k := range ids {
			if hits[i][k] {
				r.tel.memoHits.Inc()
			} else {
				full = false
			}
		}
		if full {
			v := Vector{Codes: make([]int, len(ids)), Outcomes: outs[i]}
			for k, o := range outs[i] {
				v.Codes[k] = o.Code()
			}
			vecs[i] = v
		} else {
			misses = append(misses, i)
		}
	}

	// Execute only the misses, in parallel when it pays.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(misses) {
		workers = len(misses)
	}
	if workers <= 1 {
		for _, i := range misses {
			vecs[i] = r.runLineupPrefilled(r.VMs, classes[i], cls[i], outs[i], hits[i])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				lineup := r.cloneLineup()
				for {
					n := int(next.Add(1)) - 1
					if n >= len(misses) {
						return
					}
					i := misses[n]
					vecs[i] = r.runLineupPrefilled(lineup, classes[i], cls[i], outs[i], hits[i])
				}
			}()
		}
		wg.Wait()
	}

	s := newSummary(r)
	for _, v := range vecs {
		s.absorb(v)
	}
	return s
}
