package difftest

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/jvm"
)

// MemoExportVersion is the on-disk format version of MemoExport.
const MemoExportVersion = 1

// MemoExport is the serializable image of an OutcomeMemo: every
// distinct classfile with its recorded per-VM outcomes. VM identities
// travel as an opaque signature over the full spec (name, release,
// every policy knob) plus the bound library release, so an import into
// a lineup whose policies drifted silently drops the stale outcomes
// instead of attributing them to the wrong VM.
type MemoExport struct {
	Version int               `json:"version"`
	Classes []MemoExportClass `json:"classes"`
	// Verify carries the method-granular verification memo
	// (jvm.VerifyMemo) alongside the whole-class outcomes. The field is
	// optional — files written before the verify memo existed simply
	// leave it empty, so the version number stays at 1.
	Verify []jvm.VerifyMemoExportEntry `json:"verify_outcomes,omitempty"`
}

// MemoExportClass is one distinct classfile's cache line.
type MemoExportClass struct {
	Data     []byte              `json:"data"`
	Outcomes []MemoExportOutcome `json:"outcomes"`
}

// MemoExportOutcome is one (VM identity, outcome) pair. VM and Env are
// diagnostic; Sig is what Import matches on.
type MemoExportOutcome struct {
	VM      string      `json:"vm"`
	Env     int         `json:"env"`
	Sig     uint64      `json:"sig"`
	Outcome jvm.Outcome `json:"outcome"`
}

// identSig fingerprints a VM identity for export matching: the full
// spec (every policy knob participates via the %+v rendering) and the
// bound library release.
func identSig(id vmIdent) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%d", id.spec, int(id.env))
	return h.Sum64()
}

// Export snapshots the memo's contents in a deterministic order
// (classes by fingerprint then insertion, outcomes by VM name/release)
// so checkpoint files diff cleanly across runs.
func (m *OutcomeMemo) Export() *MemoExport {
	m.mu.Lock()
	defer m.mu.Unlock()
	fps := make([]uint64, 0, len(m.buckets))
	for fp := range m.buckets {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] }) //detlint:ok map keys sorted before emission
	exp := &MemoExport{Version: MemoExportVersion}
	for _, fp := range fps {
		for _, c := range m.buckets[fp] {
			ec := MemoExportClass{Data: c.data}
			ids := make([]vmIdent, 0, len(c.outcomes))
			for id := range c.outcomes {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { //detlint:ok map keys sorted before emission
				if ids[i].spec.Name != ids[j].spec.Name {
					return ids[i].spec.Name < ids[j].spec.Name
				}
				if ids[i].env != ids[j].env {
					return ids[i].env < ids[j].env
				}
				return identSig(ids[i]) < identSig(ids[j])
			})
			for _, id := range ids {
				ec.Outcomes = append(ec.Outcomes, MemoExportOutcome{
					VM:      id.spec.Name,
					Env:     int(id.env),
					Sig:     identSig(id),
					Outcome: c.outcomes[id],
				})
			}
			exp.Classes = append(exp.Classes, ec)
		}
	}
	return exp
}

// Import merges an exported memo back in, resolving VM identities
// against the given lineup (typically a fresh NewStandardRunner's VMs,
// whose idents equal the exporting process's by value). Outcomes whose
// signature matches no lineup VM — a policy or library drift — are
// dropped, never misattributed; the byte-keyed class lines make a
// fingerprint collision cost a compare, not a wrong outcome. It
// returns how many (class, VM) outcomes were adopted.
func (m *OutcomeMemo) Import(exp *MemoExport, vms []*jvm.VM) (int, error) {
	if exp == nil {
		return 0, nil
	}
	if exp.Version != MemoExportVersion {
		return 0, fmt.Errorf("difftest: memo export version %d, this build reads %d", exp.Version, MemoExportVersion)
	}
	known := make(map[uint64]vmIdent, len(vms))
	for _, vm := range vms {
		id := memoIdent(vm)
		known[identSig(id)] = id
	}
	adopted := 0
	for _, ec := range exp.Classes {
		if len(ec.Data) == 0 {
			continue
		}
		c := m.class(ec.Data)
		for _, eo := range ec.Outcomes {
			id, ok := known[eo.Sig]
			if !ok {
				continue
			}
			m.put(c, id, eo.Outcome)
			adopted++
		}
	}
	return adopted, nil
}
