package difftest

import (
	"fmt"
	"testing"

	"repro/internal/classfile"
	"repro/internal/jvm"
	"repro/internal/rtlib"
)

func hello(name string) []byte {
	f := classfile.New(name)
	classfile.AttachDefaultInit(f)
	classfile.AttachStandardMain(f, "ok")
	data, _ := f.Bytes()
	return data
}

func TestVectorBasics(t *testing.T) {
	v := Vector{Codes: []int{0, 0, 0, 1, 2}}
	if !v.Discrepant() {
		t.Error("0,0,0,1,2 is the Figure 3 discrepancy")
	}
	if v.Key() != "00012" {
		t.Errorf("Key = %q", v.Key())
	}
	if v.AllInvoked() {
		t.Error("not all invoked")
	}
	same := Vector{Codes: []int{2, 2, 2, 2, 2}}
	if same.Discrepant() || same.AllInvoked() {
		t.Error("constant non-zero vector is neither discrepant nor all-invoked")
	}
	zero := Vector{Codes: []int{0, 0, 0, 0, 0}}
	if zero.Discrepant() || !zero.AllInvoked() {
		t.Error("all-zeros classification")
	}
}

func TestStandardRunnerLineup(t *testing.T) {
	r := NewStandardRunner()
	names := r.Names()
	want := []string{"HotSpot-Java7", "HotSpot-Java8", "HotSpot-Java9", "J9-SDK8", "GIJ-5.1.0"}
	if len(names) != 5 {
		t.Fatalf("lineup size %d", len(names))
	}
	for i := range names {
		if names[i] != want[i] {
			t.Errorf("vm %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestRunValidClass(t *testing.T) {
	r := NewStandardRunner()
	v := r.Run(hello("DAll"))
	if !v.AllInvoked() {
		t.Errorf("valid class should run everywhere: %v", v.Codes)
	}
}

func TestRunDiscrepantClass(t *testing.T) {
	// Figure 2's construction: abstract non-static <clinit>.
	f := classfile.New("DFig2")
	classfile.AttachDefaultInit(f)
	classfile.AttachStandardMain(f, "ok")
	f.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>", "()V")
	data, _ := f.Bytes()
	r := NewStandardRunner()
	v := r.Run(data)
	if !v.Discrepant() {
		t.Fatalf("expected a discrepancy, got %v", v.Codes)
	}
	// HotSpot runs (0), J9 rejects at loading (1), GIJ runs (0).
	if v.Codes[0] != 0 || v.Codes[3] != 1 || v.Codes[4] != 0 {
		t.Errorf("vector = %v, want HotSpot 0 / J9 1 / GIJ 0", v.Codes)
	}
}

func TestEvaluateAggregation(t *testing.T) {
	valid := hello("DV")
	broken := []byte{0xCA, 0xFE, 0xBA, 0xBE} // rejected by all at loading
	f := classfile.New("DD")
	classfile.AttachDefaultInit(f)
	classfile.AttachStandardMain(f, "ok")
	f.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>", "()V")
	discrepant, _ := f.Bytes()

	r := NewStandardRunner()
	sum := r.Evaluate([][]byte{valid, broken, discrepant, valid})
	if sum.Total != 4 {
		t.Errorf("Total = %d", sum.Total)
	}
	if sum.AllInvoked != 2 {
		t.Errorf("AllInvoked = %d", sum.AllInvoked)
	}
	if sum.AllRejectedSameStage != 1 {
		t.Errorf("AllRejectedSameStage = %d", sum.AllRejectedSameStage)
	}
	if sum.Discrepancies != 1 || sum.DistinctCount() != 1 {
		t.Errorf("Discrepancies = %d distinct %d", sum.Discrepancies, sum.DistinctCount())
	}
	if got := sum.DiffRate(); got != 0.25 {
		t.Errorf("DiffRate = %g", got)
	}
	// Histogram: every VM saw 4 classes.
	for i, row := range sum.PhaseHistogram {
		n := 0
		for _, c := range row {
			n += c
		}
		if n != 4 {
			t.Errorf("vm %d histogram sums to %d", i, n)
		}
	}
	vecs := sum.SortedVectors()
	if len(vecs) != 1 || vecs[0].Count != 1 {
		t.Errorf("SortedVectors = %v", vecs)
	}
}

func TestSharedEnvRemovesCompatibilityDiscrepancy(t *testing.T) {
	// A class extending the release-skewed EnumEditor splits the
	// standard lineup but not a shared-environment lineup restricted to
	// the HotSpot trio (J9 vs HotSpot differences are policy, not
	// environment, so we compare only the same-policy VMs here).
	f := classfile.New("DEnv")
	f.SetSuper("com/sun/beans/editors/EnumEditor")
	classfile.AttachStandardMain(f, "ok")
	data, _ := f.Bytes()

	std := NewStandardRunner()
	vs := std.Run(data)
	if vs.Codes[0] == vs.Codes[1] {
		t.Error("standard runner should split HotSpot7 vs HotSpot8 on EnumEditor")
	}

	shared := NewSharedEnvRunner(rtlib.JRE7)
	vsh := shared.Run(data)
	if vsh.Codes[0] != vsh.Codes[1] || vsh.Codes[1] != vsh.Codes[2] {
		t.Errorf("shared environment should align the HotSpot trio: %v", vsh.Codes)
	}
}

func TestDistinctVectorTheoreticalSpace(t *testing.T) {
	// Figure 3 notes 5^5 theoretical possibilities; sanity-check the
	// encoding covers codes 0-4 per VM.
	r := NewStandardRunner()
	if len(r.VMs) != 5 {
		t.Fatal("need 5 VMs")
	}
	v := Vector{Codes: []int{4, 3, 2, 1, 0}}
	if v.Key() != "43210" {
		t.Errorf("Key = %q", v.Key())
	}
}

func TestEmptySummary(t *testing.T) {
	r := NewStandardRunner()
	sum := r.Evaluate(nil)
	if sum.DiffRate() != 0 || sum.Total != 0 || sum.DistinctCount() != 0 {
		t.Error("empty evaluation should be all zeros")
	}
}

func TestOutputDivergenceIsADiscrepancy(t *testing.T) {
	// Definition 1: identical phases, diverging output. Synthesize the
	// outcomes directly — the simulated interpreters are shared, so a
	// natural output split requires the kind of resolution skew the
	// vector layer must nevertheless classify correctly.
	v := Vector{
		Codes: []int{0, 0, 0, 0, 0},
		Outcomes: []jvm.Outcome{
			{Phase: jvm.PhaseInvoked, Output: []string{"a"}},
			{Phase: jvm.PhaseInvoked, Output: []string{"a"}},
			{Phase: jvm.PhaseInvoked, Output: []string{"b"}},
			{Phase: jvm.PhaseInvoked, Output: []string{"a"}},
			{Phase: jvm.PhaseInvoked, Output: []string{"a"}},
		},
	}
	if !v.OutputDivergent() || !v.Discrepant() {
		t.Error("diverging output must count as a discrepancy")
	}
	same := Vector{
		Codes: []int{0, 0, 2, 0, 0},
		Outcomes: []jvm.Outcome{
			{Phase: jvm.PhaseInvoked, Output: []string{"a"}},
			{Phase: jvm.PhaseInvoked, Output: []string{"a"}},
			{Phase: jvm.PhaseLinking, Error: jvm.ErrVerify},
			{Phase: jvm.PhaseInvoked, Output: []string{"a"}},
			{Phase: jvm.PhaseInvoked, Output: []string{"a"}},
		},
	}
	if same.OutputDivergent() {
		t.Error("rejecting VMs must not participate in output comparison")
	}
	if !same.Discrepant() {
		t.Error("phase split is still a discrepancy")
	}
	short := Vector{
		Codes: []int{0, 0, 0, 0, 0},
		Outcomes: []jvm.Outcome{
			{Phase: jvm.PhaseInvoked, Output: []string{"a", "b"}},
			{Phase: jvm.PhaseInvoked, Output: []string{"a"}},
			{Phase: jvm.PhaseInvoked, Output: []string{"a", "b"}},
			{Phase: jvm.PhaseInvoked, Output: []string{"a", "b"}},
			{Phase: jvm.PhaseInvoked, Output: []string{"a", "b"}},
		},
	}
	if !short.OutputDivergent() {
		t.Error("differing line counts are divergent output")
	}
}

func TestEvaluateParallelMatchesSequential(t *testing.T) {
	var classes [][]byte
	classes = append(classes, hello("DP1"), []byte{0xCA, 0xFE, 0xBA, 0xBE})
	f := classfile.New("DP2")
	classfile.AttachDefaultInit(f)
	classfile.AttachStandardMain(f, "ok")
	f.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>", "()V")
	d, _ := f.Bytes()
	classes = append(classes, d)
	for i := 0; i < 30; i++ {
		classes = append(classes, hello(fmt.Sprintf("DPX%d", i)))
	}

	r := NewStandardRunner()
	seq := r.Evaluate(classes)
	par := r.EvaluateParallel(classes, 4)
	if seq.Total != par.Total || seq.AllInvoked != par.AllInvoked ||
		seq.Discrepancies != par.Discrepancies ||
		seq.AllRejectedSameStage != par.AllRejectedSameStage {
		t.Errorf("parallel disagrees: seq %+v par %+v", seq, par)
	}
	if len(seq.DistinctVectors) != len(par.DistinctVectors) {
		t.Error("distinct vectors differ")
	}
	for k, n := range seq.DistinctVectors {
		if par.DistinctVectors[k] != n {
			t.Errorf("vector %s: %d vs %d", k, n, par.DistinctVectors[k])
		}
	}
	for i := range seq.PhaseHistogram {
		for p := range seq.PhaseHistogram[i] {
			if seq.PhaseHistogram[i][p] != par.PhaseHistogram[i][p] {
				t.Errorf("histogram[%d][%d] differs", i, p)
			}
		}
	}
	// Degenerate worker counts fall back to sequential.
	if got := r.EvaluateParallel(classes, 0); got.Total != seq.Total {
		t.Error("workers=0 should pick a sane default")
	}
	if got := r.EvaluateParallel(classes[:1], 8); got.Total != 1 {
		t.Error("tiny inputs must still evaluate")
	}
}

var _ = jvm.PhaseInvoked // keep the import for documentation-linked constants
