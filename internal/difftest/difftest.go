// Package difftest implements the differential-testing harness of §2.3:
// a classfile runs on the five JVM simulators, each run is simplified
// to its phase code 0–4 (normally invoked / rejected during loading,
// linking, initialization, runtime), the five codes form an encoded
// outcome vector (Figure 3), and a discrepancy is a non-constant
// vector. Distinct discrepancies are distinct vectors.
//
// The execution core is a parse-once engine: a classfile is parsed
// once, the parsed form (and one bytecode-decode cache per lineup) is
// shared by all five VMs via jvm.RunParsed, and evaluations may fan a
// class set over a worker pool — one five-VM lineup per worker, results
// committed in class order — and/or consult an OutcomeMemo so a class
// seen before never re-executes. All paths produce the identical
// Summary; see engine.go and memo.go.
package difftest

import (
	"sort"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/jvm"
	"repro/internal/rtlib"
	"repro/internal/telemetry"
)

// Runner owns an ordered set of VMs under differential test.
type Runner struct {
	VMs []*jvm.VM

	// Memo, when non-nil, caches per-VM outcomes across evaluations (and
	// across Runners sharing the memo) keyed by exact class content and
	// VM identity. Correct because the simulators are deterministic and
	// side-effect free: an outcome is a pure function of (class bytes,
	// VM policy, library release), which TestRunParsedSharedFilePurity
	// pins down under the race detector.
	Memo *OutcomeMemo

	// VerifyMemo memoises method-granular verification verdicts below
	// the whole-class Memo: a class that misses on exact content (every
	// mutant generation differs somewhere) still reuses the lineage's
	// verdicts for untouched methods, across all five VMs and across
	// evaluations. Like Memo it is a pure-function cache shared by
	// worker clones; unlike Memo it keys by the name-masked method
	// content (jvm.MethodKey), so renamed-but-identical lineages hit.
	VerifyMemo *jvm.VerifyMemo

	// reg receives the engine's difftest.* metrics — a private registry
	// until UseTelemetry attaches an external one; tel caches the
	// interned handles. vmTiming marks that lineup VMs (and worker
	// clones) record per-phase timing, which only an external registry
	// turns on.
	reg      *telemetry.Registry
	tel      runnerTel
	vmTiming bool
}

// newRunner wires a private metrics registry around a lineup.
func newRunner(vms []*jvm.VM) *Runner {
	r := &Runner{VMs: vms, reg: telemetry.New(), VerifyMemo: jvm.NewVerifyMemo()}
	r.tel = newRunnerTel(r.reg, len(vms))
	jvm.ShareDecodeCache(r.VMs)
	jvm.ShareVerifyMemo(r.VMs, r.VerifyMemo)
	return r
}

// NewStandardRunner builds the Table 3 lineup — HotSpot 7/8/9, J9,
// GIJ — each bound to its own library release (the configuration of the
// paper's evaluation, where compatibility discrepancies are visible).
func NewStandardRunner() *Runner {
	var vms []*jvm.VM
	for _, spec := range jvm.StandardFive() {
		vms = append(vms, jvm.New(spec))
	}
	return newRunner(vms)
}

// NewSharedEnvRunner binds all five VMs to one library release —
// Definition 2's e1 = e2 setting, which filters out compatibility
// discrepancies and leaves defect-indicative ones.
func NewSharedEnvRunner(release rtlib.Release) *Runner {
	env := rtlib.NewEnv(release)
	var vms []*jvm.VM
	for _, spec := range jvm.StandardFive() {
		vms = append(vms, jvm.NewWithEnv(spec, env))
	}
	return newRunner(vms)
}

// Names returns the VM display names in order.
func (r *Runner) Names() []string {
	out := make([]string, len(r.VMs))
	for i, vm := range r.VMs {
		out[i] = vm.Name()
	}
	return out
}

// Vector is one classfile's encoded outcome sequence.
type Vector struct {
	Codes    []int
	Outcomes []jvm.Outcome
}

// Discrepant reports whether the VMs disagree: the phase sequence is
// not constant, or (Definition 1's "diverging output") two VMs both
// invoke the class normally yet print different lines.
func (v Vector) Discrepant() bool {
	for i := 1; i < len(v.Codes); i++ {
		if v.Codes[i] != v.Codes[0] {
			return true
		}
	}
	return v.OutputDivergent()
}

// OutputDivergent reports whether two normally-invoking VMs produced
// different output lines.
func (v Vector) OutputDivergent() bool {
	first := -1
	for i, o := range v.Outcomes {
		if !o.OK() {
			continue
		}
		if first < 0 {
			first = i
			continue
		}
		if !sameOutput(v.Outcomes[first].Output, o.Output) {
			return true
		}
	}
	return false
}

func sameOutput(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AllInvoked reports whether every VM ran the class normally.
func (v Vector) AllInvoked() bool {
	for _, c := range v.Codes {
		if c != 0 {
			return false
		}
	}
	return true
}

// Key renders the encoded sequence, e.g. "00012" for Figure 3's
// example. It sits on the vector-bucketing hot path (every discrepancy
// of every evaluation keys its map entry through it), so the common
// single-digit case is a plain byte append with one allocation.
func (v Vector) Key() string {
	b := make([]byte, len(v.Codes))
	for i, c := range v.Codes {
		if c < 0 || c > 9 {
			return v.keySlow()
		}
		b[i] = '0' + byte(c)
	}
	return string(b)
}

// keySlow renders out-of-range codes (impossible for valid phases) the
// way the old fmt-based Key did.
func (v Vector) keySlow() string {
	var b []byte
	for _, c := range v.Codes {
		b = strconv.AppendInt(b, int64(c), 10)
	}
	return string(b)
}

// Run executes one classfile on every VM: one parse fanned out to the
// lineup (the engine's parse-once discipline; see runLineup).
func (r *Runner) Run(data []byte) Vector {
	v, _ := r.runLineup(r.VMs, data, false)
	return v
}

// RunChecked executes one classfile on every VM like Run, and
// additionally cross-checks each observed outcome against the static
// oracle's prediction for that VM (a self-differential sanitizer:
// oracle-vs-interpreter disagreement is a bug in this reproduction, not
// a VM discrepancy). When the bytes do not parse, no oracle applies and
// the mismatch list is empty. The single parse serves both the oracle
// and every VM's execution.
func (r *Runner) RunChecked(data []byte) (Vector, []analysis.Mismatch) {
	return r.runLineup(r.VMs, data, true)
}

// runSeparateParses is the pre-engine execution model — every VM parses
// the bytes itself via vm.Run — retained verbatim as the reference
// implementation for the parse-once engine's equivalence test and as
// the benchmark baseline. It must stay semantically identical to Run.
func (r *Runner) runSeparateParses(data []byte) Vector {
	v := Vector{
		Codes:    make([]int, len(r.VMs)),
		Outcomes: make([]jvm.Outcome, len(r.VMs)),
	}
	for i, vm := range r.VMs {
		o := vm.Run(data)
		v.Outcomes[i] = o
		v.Codes[i] = o.Code()
	}
	return v
}

// Summary aggregates a differential-testing session over a class set —
// the rows of Tables 6 and 7.
type Summary struct {
	Total int
	// AllInvoked counts classes every VM ran normally.
	AllInvoked int
	// AllRejectedSameStage counts classes every VM rejected in the same
	// phase.
	AllRejectedSameStage int
	// Discrepancies counts discrepancy-triggering classes.
	Discrepancies int
	// DistinctVectors maps encoded vectors of discrepancy-triggering
	// classes to their multiplicity.
	DistinctVectors map[string]int
	// PhaseHistogram[vm][phase] counts outcomes per VM per phase code —
	// Table 7's layout.
	PhaseHistogram [][]int
	// VMNames labels the histogram rows.
	VMNames []string
	// OracleMismatches counts unwaived static-oracle disagreements seen
	// by checked evaluation (always 0 under Evaluate/EvaluateParallel).
	OracleMismatches int
	// VerifierMismatches is the subset of OracleMismatches where either
	// side claims a VerifyError — the static-verdict-vs-VM-verifier
	// discrepancy class the dataflow oracle introduced.
	VerifierMismatches int
	// MismatchSamples holds the first few rendered mismatches for
	// reporting, in class order then VM order (deterministic at any
	// worker count).
	MismatchSamples []string
}

// DistinctCount returns |Distinct_Discrepancies|.
func (s *Summary) DistinctCount() int { return len(s.DistinctVectors) }

// DiffRate returns diff = |Discrepancies| / |Classes| (0 on empty sets).
func (s *Summary) DiffRate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Discrepancies) / float64(s.Total)
}

// SortedVectors returns the distinct discrepancy vectors in
// lexicographic order with counts.
func (s *Summary) SortedVectors() []struct {
	Key   string
	Count int
} {
	keys := make([]string, 0, len(s.DistinctVectors))
	for k := range s.DistinctVectors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		Key   string
		Count int
	}, 0, len(keys))
	for _, k := range keys {
		out = append(out, struct {
			Key   string
			Count int
		}{k, s.DistinctVectors[k]})
	}
	return out
}

// Evaluate runs every classfile through the VMs and aggregates.
func (r *Runner) Evaluate(classes [][]byte) *Summary {
	return r.evaluate(classes, 1, false)
}

// EvaluateParallel distributes the class set over a worker pool, one
// private five-VM lineup per worker, and commits results in class
// order, so the Summary — field for field, including MismatchSamples
// order — is identical to Evaluate's at any worker count. workers ≤ 0
// selects GOMAXPROCS.
func (r *Runner) EvaluateParallel(classes [][]byte, workers int) *Summary {
	return r.evaluate(classes, workers, false)
}

// EvaluateBatch evaluates a whole suite against the memo in one
// batched pass: a single locked probe phase partitions the classes
// into fully-memoized vectors (assembled without parsing or locking
// again) and misses, and only the misses fan out to the worker pool.
// Summaries fold in class order, so the result is field-for-field
// identical to Evaluate and EvaluateParallel at any worker count.
// Without a memo attached it degenerates to EvaluateParallel. workers
// ≤ 0 selects GOMAXPROCS.
func (r *Runner) EvaluateBatch(classes [][]byte, workers int) *Summary {
	return r.evaluateBatch(classes, workers)
}

// EvaluateChecked is EvaluateParallel with the static-oracle sanitizer
// enabled: every class goes through RunChecked and unwaived mismatches
// are counted (and sampled) in the summary. workers ≤ 0 selects
// GOMAXPROCS.
func (r *Runner) EvaluateChecked(classes [][]byte, workers int) *Summary {
	return r.evaluate(classes, workers, true)
}

func newSummary(r *Runner) *Summary {
	s := &Summary{
		DistinctVectors: map[string]int{},
		VMNames:         r.Names(),
		PhaseHistogram:  make([][]int, len(r.VMs)),
	}
	for i := range s.PhaseHistogram {
		s.PhaseHistogram[i] = make([]int, jvm.PhaseCount)
	}
	return s
}

// absorb folds one vector into the summary.
func (s *Summary) absorb(v Vector) {
	s.Total++
	for i, c := range v.Codes {
		s.PhaseHistogram[i][c]++
	}
	switch {
	case v.AllInvoked():
		s.AllInvoked++
	case v.Discrepant():
		s.Discrepancies++
		s.DistinctVectors[v.Key()]++
	default:
		s.AllRejectedSameStage++
	}
}

// absorbMismatches folds oracle disagreements into the summary; waived
// ones are tolerated by design and not counted.
func (s *Summary) absorbMismatches(mm []analysis.Mismatch) {
	for _, m := range mm {
		if !m.Hard() {
			continue
		}
		s.OracleMismatches++
		if m.VerifierSplit() {
			s.VerifierMismatches++
		}
		if len(s.MismatchSamples) < 10 {
			s.MismatchSamples = append(s.MismatchSamples, m.String())
		}
	}
}
