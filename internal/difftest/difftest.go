// Package difftest implements the differential-testing harness of §2.3:
// a classfile runs on the five JVM simulators, each run is simplified
// to its phase code 0–4 (normally invoked / rejected during loading,
// linking, initialization, runtime), the five codes form an encoded
// outcome vector (Figure 3), and a discrepancy is a non-constant
// vector. Distinct discrepancies are distinct vectors.
package difftest

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/jvm"
	"repro/internal/rtlib"
)

// Runner owns an ordered set of VMs under differential test.
type Runner struct {
	VMs []*jvm.VM
}

// NewStandardRunner builds the Table 3 lineup — HotSpot 7/8/9, J9,
// GIJ — each bound to its own library release (the configuration of the
// paper's evaluation, where compatibility discrepancies are visible).
func NewStandardRunner() *Runner {
	r := &Runner{}
	for _, spec := range jvm.StandardFive() {
		r.VMs = append(r.VMs, jvm.New(spec))
	}
	return r
}

// NewSharedEnvRunner binds all five VMs to one library release —
// Definition 2's e1 = e2 setting, which filters out compatibility
// discrepancies and leaves defect-indicative ones.
func NewSharedEnvRunner(release rtlib.Release) *Runner {
	env := rtlib.NewEnv(release)
	r := &Runner{}
	for _, spec := range jvm.StandardFive() {
		r.VMs = append(r.VMs, jvm.NewWithEnv(spec, env))
	}
	return r
}

// Names returns the VM display names in order.
func (r *Runner) Names() []string {
	out := make([]string, len(r.VMs))
	for i, vm := range r.VMs {
		out[i] = vm.Name()
	}
	return out
}

// Vector is one classfile's encoded outcome sequence.
type Vector struct {
	Codes    []int
	Outcomes []jvm.Outcome
}

// Discrepant reports whether the VMs disagree: the phase sequence is
// not constant, or (Definition 1's "diverging output") two VMs both
// invoke the class normally yet print different lines.
func (v Vector) Discrepant() bool {
	for i := 1; i < len(v.Codes); i++ {
		if v.Codes[i] != v.Codes[0] {
			return true
		}
	}
	return v.OutputDivergent()
}

// OutputDivergent reports whether two normally-invoking VMs produced
// different output lines.
func (v Vector) OutputDivergent() bool {
	first := -1
	for i, o := range v.Outcomes {
		if !o.OK() {
			continue
		}
		if first < 0 {
			first = i
			continue
		}
		if !sameOutput(v.Outcomes[first].Output, o.Output) {
			return true
		}
	}
	return false
}

func sameOutput(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AllInvoked reports whether every VM ran the class normally.
func (v Vector) AllInvoked() bool {
	for _, c := range v.Codes {
		if c != 0 {
			return false
		}
	}
	return true
}

// Key renders the encoded sequence, e.g. "00012" for Figure 3's
// example.
func (v Vector) Key() string {
	var b strings.Builder
	for _, c := range v.Codes {
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// Run executes one classfile on every VM.
func (r *Runner) Run(data []byte) Vector {
	v := Vector{
		Codes:    make([]int, len(r.VMs)),
		Outcomes: make([]jvm.Outcome, len(r.VMs)),
	}
	for i, vm := range r.VMs {
		o := vm.Run(data)
		v.Outcomes[i] = o
		v.Codes[i] = o.Code()
	}
	return v
}

// RunChecked executes one classfile on every VM like Run, and
// additionally cross-checks each observed outcome against the static
// oracle's prediction for that VM (a self-differential sanitizer:
// oracle-vs-interpreter disagreement is a bug in this reproduction, not
// a VM discrepancy). When the bytes do not parse, no oracle applies and
// the mismatch list is empty.
func (r *Runner) RunChecked(data []byte) (Vector, []analysis.Mismatch) {
	v := Vector{
		Codes:    make([]int, len(r.VMs)),
		Outcomes: make([]jvm.Outcome, len(r.VMs)),
	}
	f, perr := classfile.Parse(data)
	var mm []analysis.Mismatch
	for i, vm := range r.VMs {
		o := vm.Run(data)
		v.Outcomes[i] = o
		v.Codes[i] = o.Code()
		if perr == nil {
			if m := analysis.CheckVM(f, vm, o); m != nil {
				mm = append(mm, *m)
			}
		}
	}
	return v, mm
}

// Summary aggregates a differential-testing session over a class set —
// the rows of Tables 6 and 7.
type Summary struct {
	Total int
	// AllInvoked counts classes every VM ran normally.
	AllInvoked int
	// AllRejectedSameStage counts classes every VM rejected in the same
	// phase.
	AllRejectedSameStage int
	// Discrepancies counts discrepancy-triggering classes.
	Discrepancies int
	// DistinctVectors maps encoded vectors of discrepancy-triggering
	// classes to their multiplicity.
	DistinctVectors map[string]int
	// PhaseHistogram[vm][phase] counts outcomes per VM per phase code —
	// Table 7's layout.
	PhaseHistogram [][]int
	// VMNames labels the histogram rows.
	VMNames []string
	// OracleMismatches counts unwaived static-oracle disagreements seen
	// by checked evaluation (always 0 under Evaluate/EvaluateParallel).
	OracleMismatches int
	// MismatchSamples holds the first few rendered mismatches for
	// reporting.
	MismatchSamples []string
}

// DistinctCount returns |Distinct_Discrepancies|.
func (s *Summary) DistinctCount() int { return len(s.DistinctVectors) }

// DiffRate returns diff = |Discrepancies| / |Classes| (0 on empty sets).
func (s *Summary) DiffRate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Discrepancies) / float64(s.Total)
}

// SortedVectors returns the distinct discrepancy vectors in
// lexicographic order with counts.
func (s *Summary) SortedVectors() []struct {
	Key   string
	Count int
} {
	keys := make([]string, 0, len(s.DistinctVectors))
	for k := range s.DistinctVectors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		Key   string
		Count int
	}, 0, len(keys))
	for _, k := range keys {
		out = append(out, struct {
			Key   string
			Count int
		}{k, s.DistinctVectors[k]})
	}
	return out
}

// Evaluate runs every classfile through the VMs and aggregates.
func (r *Runner) Evaluate(classes [][]byte) *Summary {
	s := newSummary(r)
	for _, data := range classes {
		s.absorb(r.Run(data))
	}
	return s
}

// EvaluateParallel distributes the class set over a worker pool. The VM
// simulators keep no cross-run state (when no coverage recorder is
// attached), so the same Runner serves every worker; the aggregate is
// identical to Evaluate's. workers ≤ 0 selects GOMAXPROCS.
func (r *Runner) EvaluateParallel(classes [][]byte, workers int) *Summary {
	for _, vm := range r.VMs {
		_ = vm // recorders are never attached by the difftest constructors
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(classes) < 2 {
		return r.Evaluate(classes)
	}
	s := newSummary(r)
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan []byte)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for data := range jobs {
				v := r.Run(data)
				mu.Lock()
				s.absorb(v)
				mu.Unlock()
			}
		}()
	}
	for _, data := range classes {
		jobs <- data
	}
	close(jobs)
	wg.Wait()
	return s
}

// EvaluateChecked is EvaluateParallel with the static-oracle sanitizer
// enabled: every class goes through RunChecked and unwaived mismatches
// are counted (and sampled) in the summary. workers ≤ 0 selects
// GOMAXPROCS.
func (r *Runner) EvaluateChecked(classes [][]byte, workers int) *Summary {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := newSummary(r)
	if workers == 1 || len(classes) < 2 {
		for _, data := range classes {
			v, mm := r.RunChecked(data)
			s.absorb(v)
			s.absorbMismatches(mm)
		}
		return s
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan []byte)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for data := range jobs {
				v, mm := r.RunChecked(data)
				mu.Lock()
				s.absorb(v)
				s.absorbMismatches(mm)
				mu.Unlock()
			}
		}()
	}
	for _, data := range classes {
		jobs <- data
	}
	close(jobs)
	wg.Wait()
	return s
}

func newSummary(r *Runner) *Summary {
	s := &Summary{
		DistinctVectors: map[string]int{},
		VMNames:         r.Names(),
		PhaseHistogram:  make([][]int, len(r.VMs)),
	}
	for i := range s.PhaseHistogram {
		s.PhaseHistogram[i] = make([]int, jvm.PhaseCount)
	}
	return s
}

// absorb folds one vector into the summary.
func (s *Summary) absorb(v Vector) {
	s.Total++
	for i, c := range v.Codes {
		s.PhaseHistogram[i][c]++
	}
	switch {
	case v.AllInvoked():
		s.AllInvoked++
	case v.Discrepant():
		s.Discrepancies++
		s.DistinctVectors[v.Key()]++
	default:
		s.AllRejectedSameStage++
	}
}

// absorbMismatches folds oracle disagreements into the summary; waived
// ones are tolerated by design and not counted.
func (s *Summary) absorbMismatches(mm []analysis.Mismatch) {
	for _, m := range mm {
		if !m.Hard() {
			continue
		}
		s.OracleMismatches++
		if len(s.MismatchSamples) < 10 {
			s.MismatchSamples = append(s.MismatchSamples, m.String())
		}
	}
}
