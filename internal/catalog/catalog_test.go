package catalog

import (
	"strings"
	"testing"

	"repro/internal/difftest"
	"repro/internal/jimple"
	"repro/internal/reduce"
)

func TestSixtyTwoReports(t *testing.T) {
	es := Entries()
	if len(es) != Count || Count != 62 {
		t.Fatalf("catalog holds %d entries, want 62", len(es))
	}
	counts := map[Classification]int{}
	seenID := map[string]bool{}
	seenTitle := map[string]bool{}
	for _, e := range es {
		counts[e.Classification]++
		if seenID[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seenID[e.ID] = true
		if seenTitle[e.Title] {
			t.Errorf("duplicate title %q", e.Title)
		}
		seenTitle[e.Title] = true
		if e.Build == nil && e.BuildFile == nil {
			t.Errorf("%s has no builder", e.ID)
		}
		if e.Title == "" || e.Problem == "" {
			t.Errorf("%s lacks metadata", e.ID)
		}
	}
	// The paper's §3.3 split of the 62 reported discrepancies.
	if counts[DefectIndicative] != 28 {
		t.Errorf("defect-indicative = %d, want 28", counts[DefectIndicative])
	}
	if counts[PolicyDifference] != 30 {
		t.Errorf("policy-difference = %d, want 30", counts[PolicyDifference])
	}
	if counts[Compatibility] != 4 {
		t.Errorf("compatibility = %d, want 4", counts[Compatibility])
	}
}

func TestEveryEntryTriggersADiscrepancy(t *testing.T) {
	runner := difftest.NewStandardRunner()
	for _, e := range Entries() {
		data, err := e.Data()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		v := runner.Run(data)
		if !v.Discrepant() {
			t.Errorf("%s (%s) does not split the VMs: vector %s", e.ID, e.Title, v.Key())
		}
	}
}

func TestEntriesAreDeterministic(t *testing.T) {
	a, b := Entries(), Entries()
	for i := range a {
		da, err := a[i].Data()
		if err != nil {
			t.Fatal(err)
		}
		db, err := b[i].Data()
		if err != nil {
			t.Fatal(err)
		}
		if string(da) != string(db) {
			t.Errorf("%s not deterministic", a[i].ID)
		}
	}
}

func TestCompatibilityEntriesVanishUnderSharedEnv(t *testing.T) {
	// Definition 2: a compatibility discrepancy disappears (or at least
	// changes) once the HotSpot trio shares one library release — the
	// same-policy VMs must agree with each other.
	std := difftest.NewStandardRunner()
	for _, rel := range []string{"jre7"} {
		_ = rel
	}
	shared := difftest.NewSharedEnvRunner(0) // rtlib.JRE7
	for _, e := range Entries() {
		if e.Classification != Compatibility {
			continue
		}
		data, err := e.Data()
		if err != nil {
			t.Fatal(err)
		}
		vs := std.Run(data)
		hsSplitStd := vs.Codes[0] != vs.Codes[1] || vs.Codes[1] != vs.Codes[2]
		vsh := shared.Run(data)
		hsSplitShared := vsh.Codes[0] != vsh.Codes[1] || vsh.Codes[1] != vsh.Codes[2]
		if hsSplitStd && hsSplitShared {
			t.Errorf("%s: HotSpot trio still split under a shared environment (%s -> %s)",
				e.ID, vs.Key(), vsh.Key())
		}
	}
}

func TestDefectEntriesSurviveSharedEnv(t *testing.T) {
	// Defect-indicative and policy discrepancies persist when every VM
	// shares one environment — they come from the implementations.
	shared := difftest.NewSharedEnvRunner(1) // rtlib.JRE8
	surviving := 0
	for _, e := range Entries() {
		if e.Classification == Compatibility {
			continue
		}
		data, err := e.Data()
		if err != nil {
			t.Fatal(err)
		}
		if shared.Run(data).Discrepant() {
			surviving++
		}
	}
	// A few entries interact with release contents and may collapse, but
	// the bulk must survive.
	if surviving < 50 {
		t.Errorf("only %d/58 non-compatibility entries survive a shared environment", surviving)
	}
}

func TestJimpleEntriesReduceWithoutLosingTheSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("reduction sweep")
	}
	runner := difftest.NewStandardRunner()
	checked := 0
	for _, e := range Entries() {
		if e.Build == nil || checked >= 8 {
			continue
		}
		checked++
		c := e.Build()
		res, err := reduce.Reduce(c, runner, reduce.Options{MaxRounds: 3})
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		f, err := jimple.Lower(res.Reduced)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		data, _ := f.Bytes()
		v := runner.Run(data)
		if v.Key() != res.Vector {
			t.Errorf("%s: reduction changed the vector %s -> %s", e.ID, res.Vector, v.Key())
		}
	}
	if checked == 0 {
		t.Fatal("no entries checked")
	}
}

func TestProblemFamiliesCovered(t *testing.T) {
	fams := map[string]int{}
	for _, e := range Entries() {
		fams[e.Problem]++
	}
	for _, want := range []string{"P1", "P2", "P3", "P4", "env"} {
		if fams[want] == 0 {
			t.Errorf("no entries for family %s", want)
		}
	}
}

func TestIDFormat(t *testing.T) {
	es := Entries()
	if es[0].ID != "D01" {
		t.Errorf("first ID = %s", es[0].ID)
	}
	if es[len(es)-1].ID != "D62" {
		t.Errorf("last ID = %s", es[len(es)-1].ID)
	}
	for _, e := range es {
		if !strings.HasPrefix(e.ID, "D") || len(e.ID) != 3 {
			t.Errorf("bad ID %q", e.ID)
		}
	}
}
