// Package catalog curates the repository's analogue of the 62 JVM
// discrepancies the paper reported to JVM developers (§3.3): a fixed
// collection of discrepancy-triggering classfile constructions, each
// with the paper's classification — 28 defect-indicative, 30 caused by
// different verification/checking strategies, 4 compatibility issues.
// Every entry builds a concrete class that splits the five simulated
// VMs; the tests pin each entry's behaviour, and cmd/catalog prints the
// full report with encoded outcome vectors.
package catalog

import (
	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jimple"
)

// Classification is the paper's three-way split of the 62 reports.
type Classification string

// The §3.3 categories.
const (
	// DefectIndicative marks discrepancies indicating defects in one or
	// more JVM implementations (28 of 62).
	DefectIndicative Classification = "defect-indicative"
	// PolicyDifference marks discrepancies caused by different
	// verification/checking strategies or resource accessibility
	// policies (30 of 62).
	PolicyDifference Classification = "policy-difference"
	// Compatibility marks environment-version issues (4 of 62).
	Compatibility Classification = "compatibility"
)

// Entry is one reported discrepancy.
type Entry struct {
	// ID is the stable report number, D01..D62.
	ID string
	// Title is a one-line summary.
	Title string
	// Problem links to the paper's case-study family (P1..P4, or "env").
	Problem string
	// Classification is the §3.3 category.
	Classification Classification
	// Build constructs the triggering class at the Jimple level. Nil
	// when the trigger needs classfile-level construction (exotic
	// constant-pool shapes, raw bytecode); then BuildFile is set.
	Build func() *jimple.Class
	// BuildFile constructs the trigger directly as a classfile.
	BuildFile func() *classfile.File
}

// Data renders the entry's triggering classfile bytes.
func (e Entry) Data() ([]byte, error) {
	if e.BuildFile != nil {
		return e.BuildFile().Bytes()
	}
	f, err := jimple.Lower(e.Build())
	if err != nil {
		return nil, err
	}
	return f.Bytes()
}

// Entries returns all 62 reports in ID order. The slice is rebuilt per
// call so callers may mutate the classes.
func Entries() []Entry { return buildEntries() }

// Count mirrors the paper's 62 reported discrepancies.
const Count = 62

// --- construction helpers ------------------------------------------------------

// std builds a well-formed public class with <init> and the standard
// observable main.
func std(name string) *jimple.Class {
	c := jimple.NewClass(name)
	c.AddDefaultInit()
	c.AddStandardMain("Completed!")
	return c
}

// bare builds a well-formed class with main but no constructor (useful
// when the constructor itself is the subject).
func bare(name string) *jimple.Class {
	c := jimple.NewClass(name)
	c.AddStandardMain("Completed!")
	return c
}

// iface builds a well-formed empty interface.
func iface(name string) *jimple.Class {
	c := jimple.NewClass(name)
	c.Modifiers = classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract
	return c
}

// addVoid appends a trivial concrete void method and returns it.
func addVoid(c *jimple.Class, name string) *jimple.Method {
	m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, name, nil, descriptor.Void)
	m.Body = []jimple.Stmt{&jimple.Return{}}
	return m
}

// brokenIntMethod appends a method whose body fails verification (void
// return from an int method).
func brokenIntMethod(c *jimple.Class, name string) *jimple.Method {
	m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, name, nil, descriptor.Int)
	m.Body = []jimple.Stmt{&jimple.Return{}}
	return m
}

// callInMain rewires main to invoke a static void method of the class
// before printing.
func callInMain(c *jimple.Class, callee string) {
	m := c.FindMethod("main")
	call := &jimple.InvokeStmt{Call: &jimple.Invoke{
		Kind: jimple.InvokeStatic, Class: c.Name, Name: callee,
		Sig: descriptor.Method{Return: descriptor.Void},
	}}
	// Insert after the identity statement.
	body := append([]jimple.Stmt{}, m.Body[:1]...)
	body = append(body, call)
	jimple.RetargetAfterInsertion(m.Body, 1)
	m.Body = append(body, m.Body[1:]...)
}

// mainCallsMissing makes main invoke a method that does not exist on
// the given class.
func mainCallsMissing(c *jimple.Class, class, name, desc string) {
	md, err := descriptor.ParseMethod(desc)
	if err != nil {
		md = descriptor.Method{Return: descriptor.Void}
	}
	m := c.FindMethod("main")
	call := &jimple.InvokeStmt{Call: &jimple.Invoke{
		Kind: jimple.InvokeStatic, Class: class, Name: name, Sig: md,
	}}
	jimple.RetargetAfterInsertion(m.Body, 1)
	m.Body = append(append(append([]jimple.Stmt{}, m.Body[:1]...), call), m.Body[1:]...)
}
