package catalog

import (
	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jimple"
)

// buildEntries constructs the 62 reports. Groupings follow §3.3:
// Problem 1 (<clinit> classification), Problem 2 (verification
// dialects), Problem 3 (class accessibility), Problem 4 (GIJ's
// leniency), plus the environment-compatibility channel of §1.
func buildEntries() []Entry {
	var es []Entry
	add := func(title, problem string, cls Classification, build func() *jimple.Class) {
		id := len(es) + 1
		es = append(es, Entry{
			ID:             idOf(id),
			Title:          title,
			Problem:        problem,
			Classification: cls,
			Build:          build,
		})
	}
	addFile := func(title, problem string, cls Classification, build func() *classfile.File) {
		id := len(es) + 1
		es = append(es, Entry{
			ID:             idOf(id),
			Title:          title,
			Problem:        problem,
			Classification: cls,
			BuildFile:      build,
		})
	}

	// ===== Problem 1: methods named <clinit> =============================

	add("public abstract <clinit> treated as initializer by J9 (Figure 2)", "P1", DefectIndicative, func() *jimple.Class {
		c := std("D_ClinitAbstract")
		c.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>", nil, descriptor.Void)
		return c
	})
	add("public native <clinit> without code splits J9 from HotSpot", "P1", DefectIndicative, func() *jimple.Class {
		c := std("D_ClinitNative")
		c.AddMethod(classfile.AccPublic|classfile.AccNative, "<clinit>", nil, descriptor.Void)
		return c
	})
	add("non-static <clinit>(int) is an ordinary method under SE 9 rules, an initializer to J9", "P1", DefectIndicative, func() *jimple.Class {
		c := std("D_ClinitArgs")
		c.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>",
			[]descriptor.Type{descriptor.Int}, descriptor.Void)
		return c
	})
	add("static <clinit> returning int: initializer only to J9's name-based rule", "P1", PolicyDifference, func() *jimple.Class {
		c := std("D_ClinitRet")
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic|classfile.AccAbstract, "<clinit>", nil, descriptor.Int)
		_ = m
		return c
	})

	// ===== Problem 2: verification dialects ===============================

	add("broken method never invoked: eager HotSpot rejects, lazy J9/GIJ run", "P2", PolicyDifference, func() *jimple.Class {
		c := std("D_LazyVerify")
		brokenIntMethod(c, "broken")
		return c
	})
	add("stack underflow in unreached method", "P2", PolicyDifference, func() *jimple.Class {
		c := std("D_Underflow")
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "under", nil, descriptor.Int)
		x := m.NewLocal("i0", descriptor.Int)
		// return of an undefined local: verification error when verified.
		m.Body = []jimple.Stmt{&jimple.Return{Value: &jimple.UseLocal{L: x}}}
		return c
	})
	add("concrete method with empty code array in unreached position", "P2", PolicyDifference, func() *jimple.Class {
		c := std("D_EmptyCode")
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "empty", nil, descriptor.Void)
		m.Body = []jimple.Stmt{}
		return c
	})
	add("String parameter used as Map: GIJ's assignability check, HotSpot's miss (M1433982529)", "P2", DefectIndicative, func() *jimple.Class {
		c := jimple.NewClass("D_CastStringMap")
		c.AddDefaultInit()
		it := c.AddMethod(classfile.AccProtected|classfile.AccStatic, "internalTransform",
			[]descriptor.Type{descriptor.Object("java/lang/String")}, descriptor.Void)
		arg := it.NewLocal("r0", descriptor.Object("java/lang/String"))
		it.Body = []jimple.Stmt{
			&jimple.Identity{Target: arg, Param: 0},
			&jimple.InvokeStmt{Call: &jimple.Invoke{
				Kind: jimple.InvokeStatic, Class: "java/lang/Object", Name: "getBoolean",
				Sig: descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/util/Map")},
					Return: descriptor.Boolean},
				Args: []jimple.Expr{&jimple.UseLocal{L: arg}},
			}},
			&jimple.Return{},
		}
		c.AddStandardMain("Completed!")
		callInMainWithString(c, "internalTransform")
		return c
	})
	add("Boolean passed where Enumeration is declared: the same missed cast family", "P2", DefectIndicative, func() *jimple.Class {
		c := jimple.NewClass("D_CastBoolEnum")
		c.AddDefaultInit()
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "consume",
			[]descriptor.Type{descriptor.Object("java/lang/Boolean")}, descriptor.Void)
		arg := m.NewLocal("r0", descriptor.Object("java/lang/Boolean"))
		m.Body = []jimple.Stmt{
			&jimple.Identity{Target: arg, Param: 0},
			&jimple.InvokeStmt{Call: &jimple.Invoke{
				Kind: jimple.InvokeStatic, Class: "D_CastBoolEnum", Name: "sink",
				Sig: descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/util/Enumeration")},
					Return: descriptor.Void},
				Args: []jimple.Expr{&jimple.UseLocal{L: arg}},
			}},
			&jimple.Return{},
		}
		sink := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "sink",
			[]descriptor.Type{descriptor.Object("java/util/Enumeration")}, descriptor.Void)
		sarg := sink.NewLocal("r0", descriptor.Object("java/util/Enumeration"))
		sink.Body = []jimple.Stmt{&jimple.Identity{Target: sarg, Param: 0}, &jimple.Return{}}
		c.AddStandardMain("Completed!")
		m2 := c.FindMethod("main")
		call := &jimple.InvokeStmt{Call: &jimple.Invoke{
			Kind: jimple.InvokeStatic, Class: "D_CastBoolEnum", Name: "consume",
			Sig: descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/lang/Boolean")},
				Return: descriptor.Void},
			Args: []jimple.Expr{&jimple.NullConst{}},
		}}
		jimple.RetargetAfterInsertion(m2.Body, 1)
		m2.Body = append(append(append([]jimple.Stmt{}, m2.Body[:1]...), call), m2.Body[1:]...)
		return c
	})
	add("merged initialized/uninitialized values: GIJ reports, HotSpot cannot", "P2", DefectIndicative, func() *jimple.Class {
		// if (args.length == 0) { o = new HashMap (left uninitialized on
		// one path) } merge; GIJ flags the merge when main is invoked.
		c := jimple.NewClass("D_UninitMerge")
		c.AddDefaultInit()
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "main",
			[]descriptor.Type{descriptor.Array(descriptor.Object("java/lang/String"), 1)}, descriptor.Void)
		args := m.NewLocal("r0", descriptor.Array(descriptor.Object("java/lang/String"), 1))
		o := m.NewLocal("o0", descriptor.Object("java/util/HashMap"))
		m.Body = []jimple.Stmt{
			/*0*/ &jimple.Identity{Target: args, Param: 0},
			/*1*/ &jimple.Assign{LHS: &jimple.UseLocal{L: o}, RHS: &jimple.NullConst{}},
			/*2*/ &jimple.If{Op: jimple.CondEq, L: &jimple.ArrayLen{X: &jimple.UseLocal{L: args}},
				R: &jimple.IntConst{V: 0, Kind: 'I'}, Target: 4},
			/*3*/ &jimple.Goto{Target: 5},
			/*4*/ &jimple.Assign{LHS: &jimple.UseLocal{L: o}, RHS: &jimple.NewExpr{Class: "java/util/HashMap"}},
			/*5*/ &jimple.Return{},
		}
		return c
	})
	addFile("unrelated reference types merged on the stack: J9's 'stack shape inconsistent'", "P2", DefectIndicative, stackShapeFile)
	add("jsr/ret in a version-51 classfile: rejected by modern verifiers, run by GIJ", "P2", DefectIndicative, func() *jimple.Class {
		c := std("D_JsrRet")
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "sub", nil, descriptor.Void)
		m.Body = []jimple.Stmt{&jimple.Raw{Ins: jsrRetBody()}}
		callInMain(c, "sub")
		return c
	})
	addFile("max_locals smaller than the parameter frame of an unreached method", "P2", PolicyDifference, func() *classfile.File {
		f := helloFile("D_TightLocals")
		m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "wide", "(JJ)V")
		cb := classfile.NewCodeBuilder(f.Pool)
		cb.Op(bytecode.Return)
		cb.SetMaxStack(1).SetMaxLocals(1) // four parameter slots don't fit
		m.Attributes = append(m.Attributes, cb.Build())
		return f
	})
	add("athrow of a non-Throwable in an unreached method", "P2", PolicyDifference, func() *jimple.Class {
		c := std("D_ThrowNonThrowable")
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "boom", nil, descriptor.Void)
		o := m.NewLocal("o0", descriptor.Object("java/util/HashMap"))
		m.Body = []jimple.Stmt{
			&jimple.Assign{LHS: &jimple.UseLocal{L: o}, RHS: &jimple.NewExpr{Class: "java/util/HashMap"}},
			&jimple.InvokeStmt{Call: &jimple.Invoke{Kind: jimple.InvokeSpecial, Class: "java/util/HashMap",
				Name: "<init>", Sig: descriptor.Method{Return: descriptor.Void}, Base: o}},
			&jimple.Throw{Value: &jimple.UseLocal{L: o}},
		}
		return c
	})
	add("ireturn from a void method, unreached", "P2", PolicyDifference, func() *jimple.Class {
		c := std("D_WrongReturn")
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "wrong", nil, descriptor.Void)
		m.Body = []jimple.Stmt{&jimple.Return{Value: &jimple.IntConst{V: 1, Kind: 'I'}}}
		return c
	})
	add("use of a local beyond max_locals in an unreached method", "P2", PolicyDifference, func() *jimple.Class {
		c := std("D_LocalOOB")
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "oob", nil, descriptor.Int)
		x := &jimple.Local{Name: "ghost", Type: descriptor.Int} // not declared on m
		m.Body = []jimple.Stmt{&jimple.Return{Value: &jimple.UseLocal{L: x}}}
		return c
	})

	// ===== Problem 3 and resolution/accessibility policies ==================

	add("throws sun.java2d.pisces.PiscesRenderingEngine$2: HotSpot's IllegalAccessError (M1437121261)", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_ThrowsPisces")
		c.FindMethod("main").Throws = []string{"sun/java2d/pisces/PiscesRenderingEngine$2"}
		return c
	})
	add("throws a nonexistent class: link-time NoClassDefFoundError only on throws-checking VMs", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_ThrowsMissing")
		c.FindMethod("main").Throws = []string{"org/fuzz/NoSuchThrowable"}
		return c
	})
	add("throws the JRE7-only com.sun.legacy.Jre7Only: splits by release and by throws checking", "P3", Compatibility, func() *jimple.Class {
		c := std("D_ThrowsJre7Only")
		c.FindMethod("main").Throws = []string{"com/sun/legacy/Jre7Only"}
		return c
	})
	add("dangling method reference: eager resolution (link) vs lazy (runtime) vs never", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_DanglingRef")
		mainCallsMissing(c, "D_DanglingRef", "ghost", "()V")
		return c
	})
	add("reference to a missing class reached only on a dead path", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_DeadMissing")
		m := addVoid(c, "dead")
		m.Body = []jimple.Stmt{
			&jimple.InvokeStmt{Call: &jimple.Invoke{Kind: jimple.InvokeStatic,
				Class: "org/fuzz/DoesNotExist", Name: "m",
				Sig: descriptor.Method{Return: descriptor.Void}}},
			&jimple.Return{},
		}
		return c
	})
	add("platform method with a wrong descriptor: NoSuchMethodError timing split", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_WrongDesc")
		mainCallsMissing(c, "java/io/PrintStream", "println", "(Ljava/util/Map;)V")
		return c
	})
	add("field reference to a deleted field: NoSuchFieldError timing split", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_MissingField")
		m := c.FindMethod("main")
		get := &jimple.Assign{
			LHS: &jimple.UseLocal{L: m.NewLocal("x0", descriptor.Int)},
			RHS: &jimple.StaticFieldRef{Class: "D_MissingField", Name: "gone", Type: descriptor.Int},
		}
		jimple.RetargetAfterInsertion(m.Body, 1)
		m.Body = append(append(append([]jimple.Stmt{}, m.Body[:1]...), get), m.Body[1:]...)
		return c
	})
	add("new of an encapsulated sun.* class: HotSpot 9 module boundary", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_NewSun")
		m := addVoid(c, "makeSun")
		o := m.NewLocal("o0", descriptor.Object("sun/java2d/pisces/PiscesRenderingEngine"))
		m.Body = []jimple.Stmt{
			&jimple.Assign{LHS: &jimple.UseLocal{L: o},
				RHS: &jimple.NewExpr{Class: "sun/java2d/pisces/PiscesRenderingEngine"}},
			&jimple.Return{},
		}
		return c
	})
	add("class constant naming an encapsulated type: HotSpot 9 initialization-phase rejection", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_SunConstant")
		m := c.FindMethod("main")
		ld := &jimple.Assign{
			LHS: &jimple.UseLocal{L: m.NewLocal("k0", descriptor.Object("java/lang/Class"))},
			RHS: &jimple.ClassConst{Name: "sun/java2d/pisces/PiscesRenderingEngine"},
		}
		jimple.RetargetAfterInsertion(m.Body, 1)
		m.Body = append(append(append([]jimple.Stmt{}, m.Body[:1]...), ld), m.Body[1:]...)
		return c
	})
	addFile("Fieldref carrying a method descriptor: strict constant-pool checking vs GIJ", "P3", PolicyDifference, func() *classfile.File {
		f := helloFile("D_FieldrefMethodDesc")
		f.Pool.AddFieldref("java/lang/System", "out", "()V")
		return f
	})
	add("implements a missing interface: eager loading failure vs lazy tolerance", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_IfaceMissing")
		c.Interfaces = append(c.Interfaces, "org/fuzz/NoSuchIface")
		return c
	})
	add("array type as superclass: arrays are final, so VerifyError except on GIJ", "P3", PolicyDifference, func() *jimple.Class {
		c := bare("D_SuperArray")
		c.Super = "[I"
		return c
	})
	add("extends the final java.lang.String: VerifyError except on GIJ", "P3", DefectIndicative, func() *jimple.Class {
		c := bare("D_SuperFinal")
		c.Super = "java/lang/String"
		return c
	})
	addFile("Methodref carrying a field descriptor: strict constant-pool checking vs GIJ", "P3", PolicyDifference, func() *classfile.File {
		f := helloFile("D_MethodrefFieldDesc")
		f.Pool.AddMethodref("java/lang/System", "exit", "I")
		return f
	})
	add("implements the class java.lang.Thread: IncompatibleClassChangeError vs lazy", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_ImplClass")
		c.Interfaces = append(c.Interfaces, "java/lang/Thread")
		return c
	})

	// ===== Problem 4: GIJ's leniency =======================================

	add("interface extending java.lang.Exception: GIJ misses the illegal inheritance", "P4", DefectIndicative, func() *jimple.Class {
		c := iface("D_IfaceExtException")
		c.Super = "java/lang/Exception"
		return c
	})
	add("interface extending java.lang.Thread", "P4", DefectIndicative, func() *jimple.Class {
		c := iface("D_IfaceExtThread")
		c.Super = "java/lang/Thread"
		return c
	})
	add("interface with a main method: only GIJ executes it", "P4", DefectIndicative, func() *jimple.Class {
		c := iface("D_IfaceMain")
		c.AddStandardMain("interface main")
		return c
	})
	add("interface method not public", "P4", DefectIndicative, func() *jimple.Class {
		c := iface("D_IfacePrivMethod")
		c.AddMethod(classfile.AccPrivate|classfile.AccAbstract, "op", nil, descriptor.Void)
		return c
	})
	add("interface method not abstract (concrete body)", "P4", DefectIndicative, func() *jimple.Class {
		c := iface("D_IfaceConcrete")
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "op", nil, descriptor.Void)
		m.Body = []jimple.Stmt{&jimple.Return{}}
		return c
	})
	add("interface field not public static final", "P4", DefectIndicative, func() *jimple.Class {
		c := iface("D_IfaceField")
		c.AddField(classfile.AccPrivate, "hidden", descriptor.Int)
		return c
	})
	add("interface without ACC_ABSTRACT", "P4", DefectIndicative, func() *jimple.Class {
		c := iface("D_IfaceNotAbstract")
		c.Modifiers = classfile.AccPublic | classfile.AccInterface
		return c
	})
	add("interface declaring <init>", "P4", DefectIndicative, func() *jimple.Class {
		c := iface("D_IfaceInit")
		c.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<init>", nil, descriptor.Void)
		return c
	})
	add("public abstract void <init>(int,int,int,boolean): accepted only by GIJ", "P4", DefectIndicative, func() *jimple.Class {
		c := std("D_InitAbstract")
		c.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<init>",
			[]descriptor.Type{descriptor.Int, descriptor.Int, descriptor.Int, descriptor.Boolean},
			descriptor.Void)
		return c
	})
	add("static <init>: GIJ accepts the Table 2 example", "P4", DefectIndicative, func() *jimple.Class {
		c := std("D_InitStatic")
		m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "<init>",
			[]descriptor.Type{descriptor.Int}, descriptor.Void)
		a := m.NewLocal("i0", descriptor.Int)
		m.Body = []jimple.Stmt{&jimple.Identity{Target: a, Param: 0}, &jimple.Return{}}
		return c
	})
	add("<init> returning java.lang.Thread: GIJ allows a result-bearing constructor", "P4", DefectIndicative, func() *jimple.Class {
		c := std("D_InitReturnsThread")
		m := c.AddMethod(classfile.AccPublic, "<init>", nil, descriptor.Object("java/lang/Thread"))
		this := m.NewLocal("r0", descriptor.Object("D_InitReturnsThread"))
		m.Body = []jimple.Stmt{
			&jimple.Identity{Target: this, Param: -1},
			&jimple.Return{Value: &jimple.NullConst{}},
		}
		return c
	})
	add("<init> returning int", "P4", DefectIndicative, func() *jimple.Class {
		c := std("D_InitReturnsInt")
		m := c.AddMethod(classfile.AccPublic, "<init>", []descriptor.Type{descriptor.Int}, descriptor.Int)
		this := m.NewLocal("r0", descriptor.Object("D_InitReturnsInt"))
		a := m.NewLocal("i0", descriptor.Int)
		m.Body = []jimple.Stmt{
			&jimple.Identity{Target: this, Param: -1},
			&jimple.Identity{Target: a, Param: 0},
			&jimple.Return{Value: &jimple.UseLocal{L: a}},
		}
		return c
	})
	add("synchronized native <init>", "P4", DefectIndicative, func() *jimple.Class {
		c := std("D_InitNative")
		c.AddMethod(classfile.AccPublic|classfile.AccSynchronized|classfile.AccNative, "<init>",
			[]descriptor.Type{descriptor.Long}, descriptor.Void)
		return c
	})
	add("duplicate fields: GIJ accepts, the others reject", "P4", DefectIndicative, func() *jimple.Class {
		c := std("D_DupFields")
		c.AddField(classfile.AccPublic, "x", descriptor.Int)
		c.AddField(classfile.AccPublic, "x", descriptor.Int)
		return c
	})
	add("duplicate fields with different flags", "P4", DefectIndicative, func() *jimple.Class {
		c := std("D_DupFieldsFlags")
		c.AddField(classfile.AccPublic, "y", descriptor.Object("java/lang/String"))
		c.AddField(classfile.AccPrivate|classfile.AccFinal, "y", descriptor.Object("java/lang/String"))
		return c
	})
	add("version-60 classfile: GIJ processes classfiles beyond its platform version", "P4", DefectIndicative, func() *jimple.Class {
		c := std("D_Version60")
		c.Major = 60
		return c
	})
	add("conflicting public+private on a method", "P4", PolicyDifference, func() *jimple.Class {
		c := std("D_VisConflict")
		m := addVoid(c, "both")
		m.Modifiers |= classfile.AccPublic | classfile.AccPrivate
		return c
	})
	add("final volatile field", "P4", PolicyDifference, func() *jimple.Class {
		c := std("D_FinalVolatile")
		c.AddField(classfile.AccPublic|classfile.AccFinal|classfile.AccVolatile, "fv", descriptor.Int)
		return c
	})
	add("final abstract class", "P4", PolicyDifference, func() *jimple.Class {
		c := std("D_FinalAbstract")
		c.Modifiers |= classfile.AccFinal | classfile.AccAbstract
		return c
	})
	add("abstract method with a Code attribute", "P4", PolicyDifference, func() *jimple.Class {
		c := std("D_AbstractWithCode")
		m := addVoid(c, "hasBody")
		m.Modifiers |= classfile.AccAbstract
		return c
	})
	add("abstract method marked final", "P4", PolicyDifference, func() *jimple.Class {
		c := std("D_AbstractFinal")
		c.AddMethod(classfile.AccPublic|classfile.AccAbstract|classfile.AccFinal, "af", nil, descriptor.Void)
		return c
	})
	add("concrete method without a Code attribute", "P4", PolicyDifference, func() *jimple.Class {
		c := std("D_NoCode")
		c.AddMethod(classfile.AccPublic, "codeless", nil, descriptor.Void)
		return c
	})
	add("instance main: GIJ invokes it, strict VMs report main-not-found", "P4", DefectIndicative, func() *jimple.Class {
		c := jimple.NewClass("D_InstanceMain")
		c.AddDefaultInit()
		m := c.AddStandardMain("instance main")
		m.Modifiers = classfile.AccPublic // not static
		// Rebind: instance main still has args as parameter 0? For an
		// instance method parameter 0 sits in slot 1; the identity
		// statement keeps the binding correct either way.
		return c
	})
	add("malformed field descriptor: lenient GIJ ignores what it never reads", "P4", DefectIndicative, func() *jimple.Class {
		c := std("D_BadFieldDesc")
		c.Fields = append(c.Fields, &jimple.Field{Name: "weird", Type: descriptor.Type{Kind: 'Q'}, Modifiers: classfile.AccPublic})
		return c
	})
	addFile("Exceptions attribute entry pointing at a Utf8 constant: only throws-checking VMs notice", "P4", PolicyDifference, func() *classfile.File {
		f := helloFile("D_ThrowsUtf8")
		main := f.FindMethod("main")
		main.Attributes = append(main.Attributes, &classfile.ExceptionsAttr{
			Classes: []uint16{f.Pool.AddUtf8("not-a-class")},
		})
		return f
	})

	// ===== environment compatibility (§1) ===================================

	add("extends com.sun.beans.editors.EnumEditor: final only from JRE8 (the paper's VerifyError case)", "env", Compatibility, func() *jimple.Class {
		c := bare("D_EnumEditorSub")
		c.Super = "com/sun/beans/editors/EnumEditor"
		return c
	})
	add("extends a JRE7-only class: NoClassDefFoundError on newer releases", "env", Compatibility, func() *jimple.Class {
		c := bare("D_Jre7OnlySub")
		c.Super = "com/sun/legacy/Jre7Only"
		return c
	})
	add("implements java.util.function.Function: absent before JRE8", "env", Compatibility, func() *jimple.Class {
		c := std("D_Jre8Iface")
		c.Interfaces = append(c.Interfaces, "java/util/function/Function")
		return c
	})

	// ===== remaining policy splits to reach the paper's tally ===============

	add("non-public main: strict VMs refuse to launch it, GIJ invokes it", "P4", DefectIndicative, func() *jimple.Class {
		c := jimple.NewClass("D_PackageMain")
		c.AddDefaultInit()
		m := c.AddStandardMain("package main")
		m.Modifiers = classfile.AccStatic // package-private static
		return c
	})
	add("getstatic on a field whose declared type changed: descriptor mismatch resolution", "P3", PolicyDifference, func() *jimple.Class {
		c := std("D_FieldTypeChanged")
		c.AddField(classfile.AccPublic|classfile.AccStatic, "v", descriptor.Long)
		m := c.FindMethod("main")
		get := &jimple.Assign{
			LHS: &jimple.UseLocal{L: m.NewLocal("x0", descriptor.Int)},
			RHS: &jimple.StaticFieldRef{Class: "D_FieldTypeChanged", Name: "v", Type: descriptor.Int},
		}
		jimple.RetargetAfterInsertion(m.Body, 1)
		m.Body = append(append(append([]jimple.Stmt{}, m.Body[:1]...), get), m.Body[1:]...)
		return c
	})
	add("clinit throwing an exception vs VMs that never classify it as the initializer", "P1", PolicyDifference, func() *jimple.Class {
		// A *non-static* <clinit> with a throwing body: HotSpot treats it
		// as an ordinary (never-invoked) method; J9 classifies it as the
		// initializer and runs it during initialization.
		c := std("D_ClinitThrows")
		m := c.AddMethod(classfile.AccPublic, "<clinit>", nil, descriptor.Void)
		this := m.NewLocal("r0", descriptor.Object("D_ClinitThrows"))
		e := m.NewLocal("e0", descriptor.Object("java/lang/RuntimeException"))
		m.Body = []jimple.Stmt{
			&jimple.Identity{Target: this, Param: -1},
			&jimple.Assign{LHS: &jimple.UseLocal{L: e}, RHS: &jimple.NewExpr{Class: "java/lang/RuntimeException"}},
			&jimple.InvokeStmt{Call: &jimple.Invoke{Kind: jimple.InvokeSpecial,
				Class: "java/lang/RuntimeException", Name: "<init>",
				Sig: descriptor.Method{Return: descriptor.Void}, Base: e}},
			&jimple.Throw{Value: &jimple.UseLocal{L: e}},
		}
		return c
	})

	return es
}

// callInMainWithString rewires main to invoke a static (String)V method
// with a constant argument.
func callInMainWithString(c *jimple.Class, callee string) {
	m := c.FindMethod("main")
	call := &jimple.InvokeStmt{Call: &jimple.Invoke{
		Kind: jimple.InvokeStatic, Class: c.Name, Name: callee,
		Sig: descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/lang/String")},
			Return: descriptor.Void},
		Args: []jimple.Expr{&jimple.StringConst{V: "x"}},
	}}
	jimple.RetargetAfterInsertion(m.Body, 1)
	m.Body = append(append(append([]jimple.Stmt{}, m.Body[:1]...), call), m.Body[1:]...)
}

// helloFile builds a well-formed classfile with <init> and the
// standard main, for entries needing classfile-level construction.
func helloFile(name string) *classfile.File {
	f := classfile.New(name)
	classfile.AttachDefaultInit(f)
	classfile.AttachStandardMain(f, "Completed!")
	return f
}

// stackShapeFile builds a main that merges java/lang/String and
// java/util/HashMap on the operand stack before popping — the shape
// J9's strict merge rejects while HotSpot widens to Object and GIJ
// never eagerly verifies.
func stackShapeFile() *classfile.File {
	f := helloFile("D_StackShape")
	main := f.FindMethod("main")
	main.RemoveAttribute(f.Pool, classfile.AttrCode)
	cb := classfile.NewCodeBuilder(f.Pool)
	// pc0 aload_0; pc1 arraylength; pc2 ifeq ->10; pc5 ldc "s";
	// pc7 goto ->17; pc10 new HashMap; pc13 dup; pc14 invokespecial
	// <init>; pc17 pop; pc18 return
	cb.Op(bytecode.Aload0).Op(bytecode.Arraylength)
	cb.U2(bytecode.Ifeq, 8)
	cb.Ldc("s")
	cb.U2(bytecode.Goto, 10)
	cb.New("java/util/HashMap").
		Op(bytecode.Dup).
		Invokespecial("java/util/HashMap", "<init>", "()V")
	cb.Op(bytecode.Pop)
	cb.Op(bytecode.Return)
	cb.SetMaxStack(2).SetMaxLocals(1)
	main.Attributes = append(main.Attributes, cb.Build())
	return f
}

// jsrRetBody emits a tiny jsr/ret subroutine body as raw instructions:
// jsr to a subroutine that stores the return address and rets through
// it — legal in old classfiles, rejected at version ≥ 51.
func jsrRetBody() []*bytecode.Instruction {
	ins, err := bytecode.Decode([]byte{
		0xa8, 0x00, 0x04, // jsr +4
		0xb1,       // return
		0x4c,       // astore_1
		0xa9, 0x01, // ret 1
	})
	if err != nil {
		panic(err)
	}
	return ins
}

func idOf(n int) string {
	if n < 10 {
		return "D0" + string(rune('0'+n))
	}
	return "D" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}
