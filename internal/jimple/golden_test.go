package jimple

import (
	"testing"

	"repro/internal/classfile"
	"repro/internal/descriptor"
)

// TestGoldenPrint pins the exact textual Jimple rendering — the format
// is part of the toolchain contract (jimpleasm parses it, the paper's
// figures use it), so any drift must be deliberate.
func TestGoldenPrint(t *testing.T) {
	c := NewClass("M1437185190")
	c.Interfaces = []string{"java/security/PrivilegedAction"}
	c.AddField(classfile.AccProtected|classfile.AccFinal, "MAP", descriptor.Object("java/util/Map"))
	c.AddDefaultInit()
	m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "main",
		[]descriptor.Type{descriptor.Array(descriptor.Object("java/lang/String"), 1)}, descriptor.Void)
	args := m.NewLocal("r0", descriptor.Array(descriptor.Object("java/lang/String"), 1))
	i := m.NewLocal("$i0", descriptor.Int)
	m.Body = []Stmt{
		&Identity{Target: args, Param: 0},
		&Assign{LHS: &UseLocal{L: i}, RHS: &IntConst{V: 3, Kind: 'I'}},
		&If{Op: CondGe, L: &UseLocal{L: i}, R: &IntConst{V: 0, Kind: 'I'}, Target: 4},
		&Assign{LHS: &UseLocal{L: i}, RHS: &Neg{X: &UseLocal{L: i}, Kind: 'I'}},
		&Return{},
	}

	want := `public class M1437185190 extends java.lang.Object implements java.security.PrivilegedAction
{
    protected final java.util.Map MAP;

    public void <init>()
    {
        M1437185190 r0;

        r0 := @this: M1437185190;
        specialinvoke r0.<java.lang.Object: void <init>()>();
        return;
    }

    public static void main(java.lang.String[])
    {
        java.lang.String[] r0;
        int $i0;

        r0 := @parameter0: java.lang.String[];
        $i0 = 3;
        if $i0 >= 0 goto label1;
        $i0 = neg $i0;
     label1:
        return;
    }
}
`
	got := Print(c)
	if got != want {
		t.Errorf("Print drifted.\n--- got\n%s\n--- want\n%s", got, want)
	}

	// And the golden text must parse back into an equivalent class.
	parsed, err := ParseClass(want)
	if err != nil {
		t.Fatalf("golden text does not parse: %v", err)
	}
	if Print(parsed) != want {
		t.Error("golden text is not a Print fixpoint")
	}
}

// TestGoldenExprForms pins the rendering of each expression node.
func TestGoldenExprForms(t *testing.T) {
	l := &Local{Name: "r1", Type: descriptor.Object("java/lang/String")}
	arr := &Local{Name: "a0", Type: descriptor.Array(descriptor.Int, 1)}
	cases := map[string]Expr{
		"42":                          &IntConst{V: 42, Kind: 'I'},
		"42L":                         &IntConst{V: 42, Kind: 'J'},
		"1.5F":                        &FloatConst{V: 1.5, Kind: 'F'},
		"2.5":                         &FloatConst{V: 2.5, Kind: 'D'},
		`"hi"`:                        &StringConst{V: "hi"},
		"null":                        &NullConst{},
		"class java.lang.Thread":      &ClassConst{Name: "java/lang/Thread"},
		"r1":                          &UseLocal{L: l},
		"new java.util.HashMap":       &NewExpr{Class: "java/util/HashMap"},
		"lengthof a0":                 &ArrayLen{X: &UseLocal{L: arr}},
		"a0[3]":                       &ArrayRef{Base: arr, Index: &IntConst{V: 3, Kind: 'I'}, Elem: descriptor.Int},
		"neg r1":                      &Neg{X: &UseLocal{L: l}, Kind: 'I'},
		"(java.util.Map) r1":          &Cast{X: &UseLocal{L: l}, To: descriptor.Object("java/util/Map")},
		"r1 instanceof java.util.Map": &InstanceOf{X: &UseLocal{L: l}, Of: "java/util/Map"},
		"newarray (int)[5]":           &NewArrayExpr{Elem: descriptor.Int, Size: &IntConst{V: 5, Kind: 'I'}},
		"<java.lang.System: java.io.PrintStream out>": &StaticFieldRef{
			Class: "java/lang/System", Name: "out", Type: descriptor.Object("java/io/PrintStream")},
	}
	for want, e := range cases {
		if got := ExprString(e); got != want {
			t.Errorf("ExprString(%T) = %q, want %q", e, got, want)
		}
	}
}
