package jimple

import (
	"testing"

	"repro/internal/classfile"
)

func TestLoweringEmitsLineNumberTable(t *testing.T) {
	c := hello("JDebug")
	f, err := Lower(c)
	if err != nil {
		t.Fatal(err)
	}
	code := f.FindMethod("main").Code()
	var lnt *classfile.LineNumberTableAttr
	for _, a := range code.Attributes {
		if l, ok := a.(*classfile.LineNumberTableAttr); ok {
			lnt = l
		}
	}
	if lnt == nil || len(lnt.Entries) == 0 {
		t.Fatal("LineNumberTable missing from lowered code")
	}
	// Entries must be strictly increasing in pc and line.
	for i := 1; i < len(lnt.Entries); i++ {
		if lnt.Entries[i].StartPC <= lnt.Entries[i-1].StartPC {
			t.Error("line table pcs not increasing")
		}
		if lnt.Entries[i].Line <= lnt.Entries[i-1].Line {
			t.Error("line table lines not increasing")
		}
	}
	// And it round-trips through serialisation.
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g, err := classfile.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range g.FindMethod("main").Code().Attributes {
		if _, ok := a.(*classfile.LineNumberTableAttr); ok {
			found = true
		}
	}
	if !found {
		t.Error("LineNumberTable lost in round trip")
	}
}
