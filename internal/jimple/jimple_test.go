package jimple

import (
	"strings"
	"testing"

	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jvm"
)

// hello builds the canonical valid Jimple class.
func hello(name string) *Class {
	c := NewClass(name)
	c.AddDefaultInit()
	c.AddStandardMain("Completed!")
	return c
}

func lowerBytes(t *testing.T, c *Class) []byte {
	t.Helper()
	f, err := Lower(c)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	data, err := f.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	return data
}

func TestLoweredHelloRunsOnAllVMs(t *testing.T) {
	data := lowerBytes(t, hello("JHello"))
	for _, spec := range jvm.StandardFive() {
		vm := jvm.New(spec)
		o := vm.Run(data)
		if !o.OK() {
			t.Errorf("%s: %s", spec.Name, o)
			continue
		}
		if len(o.Output) != 1 || o.Output[0] != "Completed!" {
			t.Errorf("%s: output %v", spec.Name, o.Output)
		}
	}
}

func TestLowerArithmeticAndControlFlow(t *testing.T) {
	// main: i = 10; loop: if i <= 0 goto end; i = i - 3; goto loop;
	// end: println(String.valueOf(i))
	c := NewClass("JArith")
	c.AddDefaultInit()
	m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "main",
		[]descriptor.Type{descriptor.Array(descriptor.Object("java/lang/String"), 1)}, descriptor.Void)
	args := m.NewLocal("r0", descriptor.Array(descriptor.Object("java/lang/String"), 1))
	i := m.NewLocal("i0", descriptor.Int)
	s := m.NewLocal("s0", descriptor.Object("java/lang/String"))
	out := m.NewLocal("o0", descriptor.Object("java/io/PrintStream"))
	m.Body = []Stmt{
		/*0*/ &Identity{Target: args, Param: 0},
		/*1*/ &Assign{LHS: &UseLocal{L: i}, RHS: &IntConst{V: 10, Kind: 'I'}},
		/*2*/ &If{Op: CondLe, L: &UseLocal{L: i}, R: &IntConst{V: 0, Kind: 'I'}, Target: 5},
		/*3*/ &Assign{LHS: &UseLocal{L: i}, RHS: &BinOp{Op: OpSub, L: &UseLocal{L: i}, R: &IntConst{V: 3, Kind: 'I'}, Kind: 'I'}},
		/*4*/ &Goto{Target: 2},
		/*5*/ &Assign{LHS: &UseLocal{L: s}, RHS: &Invoke{Kind: InvokeStatic, Class: "java/lang/String", Name: "valueOf",
			Sig:  descriptor.Method{Params: []descriptor.Type{descriptor.Int}, Return: descriptor.Object("java/lang/String")},
			Args: []Expr{&UseLocal{L: i}}}},
		/*6*/ &Assign{LHS: &UseLocal{L: out}, RHS: &StaticFieldRef{Class: "java/lang/System", Name: "out", Type: descriptor.Object("java/io/PrintStream")}},
		/*7*/ &InvokeStmt{Call: &Invoke{Kind: InvokeVirtual, Class: "java/io/PrintStream", Name: "println",
			Sig:  descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/lang/String")}, Return: descriptor.Void},
			Base: out, Args: []Expr{&UseLocal{L: s}}}},
		/*8*/ &Return{},
	}
	data := lowerBytes(t, c)
	vm := jvm.New(jvm.HotSpot8())
	o := vm.Run(data)
	if !o.OK() {
		t.Fatalf("run: %s", o)
	}
	// 10 -> 7 -> 4 -> 1 -> -2, loop exits at -2.
	if len(o.Output) != 1 || o.Output[0] != "-2" {
		t.Errorf("output = %v, want [-2]", o.Output)
	}
}

func TestLowerFieldsAndObjects(t *testing.T) {
	// static counter field incremented in <clinit>, printed by main.
	c := NewClass("JField")
	c.AddField(classfile.AccPublic|classfile.AccStatic, "counter", descriptor.Int)
	c.AddDefaultInit()
	cl := c.AddMethod(classfile.AccStatic, "<clinit>", nil, descriptor.Void)
	cnt := &StaticFieldRef{Class: "JField", Name: "counter", Type: descriptor.Int}
	cl.Body = []Stmt{
		&Assign{LHS: cnt, RHS: &IntConst{V: 41, Kind: 'I'}},
		&Assign{LHS: cnt, RHS: &BinOp{Op: OpAdd, L: cnt, R: &IntConst{V: 1, Kind: 'I'}, Kind: 'I'}},
		&Return{},
	}
	m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "main",
		[]descriptor.Type{descriptor.Array(descriptor.Object("java/lang/String"), 1)}, descriptor.Void)
	args := m.NewLocal("r0", descriptor.Array(descriptor.Object("java/lang/String"), 1))
	s := m.NewLocal("s0", descriptor.Object("java/lang/String"))
	out := m.NewLocal("o0", descriptor.Object("java/io/PrintStream"))
	m.Body = []Stmt{
		&Identity{Target: args, Param: 0},
		&Assign{LHS: &UseLocal{L: s}, RHS: &Invoke{Kind: InvokeStatic, Class: "java/lang/String", Name: "valueOf",
			Sig:  descriptor.Method{Params: []descriptor.Type{descriptor.Int}, Return: descriptor.Object("java/lang/String")},
			Args: []Expr{cnt}}},
		&Assign{LHS: &UseLocal{L: out}, RHS: &StaticFieldRef{Class: "java/lang/System", Name: "out", Type: descriptor.Object("java/io/PrintStream")}},
		&InvokeStmt{Call: &Invoke{Kind: InvokeVirtual, Class: "java/io/PrintStream", Name: "println",
			Sig:  descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/lang/String")}, Return: descriptor.Void},
			Base: out, Args: []Expr{&UseLocal{L: s}}}},
		&Return{},
	}
	data := lowerBytes(t, c)
	o := jvm.New(jvm.HotSpot9()).Run(data)
	if !o.OK() {
		t.Fatalf("run: %s", o)
	}
	if len(o.Output) != 1 || o.Output[0] != "42" {
		t.Errorf("output = %v, want [42]", o.Output)
	}
}

func TestLiftLowerRoundTripStructured(t *testing.T) {
	// Lower a structured class, lift it back, lower again: the second
	// classfile must behave identically on the reference VM.
	orig := hello("JRound")
	f1, err := Lower(orig)
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := Lift(f1)
	if err != nil {
		t.Fatal(err)
	}
	// The lift must produce structured statements, not a Raw fallback.
	for _, m := range lifted.Methods {
		for _, s := range m.Body {
			if _, raw := s.(*Raw); raw {
				t.Errorf("method %s lifted to Raw; expected structured statements", m.Name)
			}
		}
	}
	f2, err := Lower(lifted)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := f1.Bytes()
	d2, _ := f2.Bytes()
	vm := jvm.New(jvm.HotSpot9())
	o1, o2 := vm.Run(d1), vm.Run(d2)
	if o1.Code() != o2.Code() || len(o1.Output) != len(o2.Output) {
		t.Errorf("round trip changed behaviour: %s vs %s", o1, o2)
	}
}

func TestLiftClassStructure(t *testing.T) {
	c := NewClass("JStruct")
	c.Interfaces = []string{"java/io/Serializable", "java/lang/Runnable"}
	c.AddField(classfile.AccPrivate|classfile.AccFinal, "map", descriptor.Object("java/util/Map"))
	c.AddDefaultInit()
	m := c.AddMethod(classfile.AccPublic, "run", nil, descriptor.Void)
	m.Throws = []string{"java/io/IOException", "java/lang/InterruptedException"}
	this := m.NewLocal("r0", descriptor.Object("JStruct"))
	m.Body = []Stmt{&Identity{Target: this, Param: -1}, &Return{}}

	f, err := Lower(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Lift(f)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "JStruct" || back.Super != "java/lang/Object" {
		t.Error("identity lost")
	}
	if len(back.Interfaces) != 2 || back.Interfaces[0] != "java/io/Serializable" {
		t.Errorf("interfaces = %v", back.Interfaces)
	}
	if len(back.Fields) != 1 || back.Fields[0].Name != "map" || back.Fields[0].Type.ClassName != "java/util/Map" {
		t.Errorf("fields = %+v", back.Fields)
	}
	run := back.FindMethod("run")
	if run == nil || len(run.Throws) != 2 || run.Throws[1] != "java/lang/InterruptedException" {
		t.Errorf("throws lost: %+v", run)
	}
}

func TestLiftFallsBackToRawForHandlers(t *testing.T) {
	// Build a classfile with an exception handler via the classfile
	// builder; lifting must produce a Raw body that still round-trips.
	f := classfile.New("JTrap")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.LdcInt(1).LdcInt(0).Op(0x6c).Op(0x57) // idiv; pop
	end := cb.PC()
	cb.Op(0xb1) // return
	h := cb.PC()
	cb.Op(0x57) // pop exception
	cb.Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;").
		Ldc("caught").
		Invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V").
		Op(0xb1)
	cb.Handler(0, end, h, "java/lang/ArithmeticException")
	cb.SetMaxStack(2).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())

	lifted, err := Lift(f)
	if err != nil {
		t.Fatal(err)
	}
	lm := lifted.FindMethod("main")
	if len(lm.Body) != 1 {
		t.Fatalf("expected single Raw stmt, got %d stmts", len(lm.Body))
	}
	if _, ok := lm.Body[0].(*Raw); !ok {
		t.Fatalf("expected Raw, got %T", lm.Body[0])
	}
	data := lowerBytes(t, lifted)
	o := jvm.New(jvm.HotSpot8()).Run(data)
	if !o.OK() || len(o.Output) != 1 || o.Output[0] != "caught" {
		t.Errorf("raw round trip: %s (output %v)", o, o.Output)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := hello("JClone")
	d := c.Clone()
	d.Name = "Other"
	d.Methods[0].Modifiers |= classfile.AccStatic
	d.Methods[1].Body = append(d.Methods[1].Body, &Nop{})
	if c.Name != "JClone" {
		t.Error("name shared")
	}
	if c.Methods[0].Modifiers.Has(classfile.AccStatic) {
		t.Error("modifiers shared")
	}
	if len(c.Methods[1].Body) == len(d.Methods[1].Body) {
		t.Error("bodies shared")
	}
	// Locals must be remapped, not aliased.
	for _, m := range d.Methods {
		for _, l := range m.Locals {
			for _, ol := range c.Methods[0].Locals {
				if l == ol {
					t.Fatal("local aliased across clone")
				}
			}
		}
	}
}

func TestRetargeting(t *testing.T) {
	body := []Stmt{
		&Nop{},           // 0
		&Goto{Target: 3}, // 1
		&Nop{},           // 2
		&If{Target: 0},   // 3
		&Return{},        // 4
	}
	RetargetAfterRemoval(body, 2)
	if body[1].(*Goto).Target != 2 {
		t.Errorf("goto target = %d, want 2", body[1].(*Goto).Target)
	}
	if body[3].(*If).Target != 0 {
		t.Errorf("if target = %d, want 0", body[3].(*If).Target)
	}
	RetargetAfterInsertion(body, 0)
	if body[1].(*Goto).Target != 3 {
		t.Errorf("after insertion goto target = %d, want 3", body[1].(*Goto).Target)
	}
}

func TestPrintStyle(t *testing.T) {
	c := hello("JPrint")
	c.Interfaces = []string{"java/io/Serializable"}
	c.AddField(classfile.AccProtected|classfile.AccFinal, "MAP", descriptor.Object("java/util/Map"))
	text := Print(c)
	for _, want := range []string{
		"public class JPrint extends java.lang.Object implements java.io.Serializable",
		"protected final java.util.Map MAP;",
		"r0 := @this",
		"r0 := @parameter0: java.lang.String[]",
		`virtualinvoke $r1.<java.io.PrintStream: void println(java.lang.String)>("Completed!")`,
		"specialinvoke r0.<java.lang.Object: void <init>()>()",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Print output missing %q\n%s", want, text)
		}
	}
}

func TestLowerEmptyBodyIsIllegalCode(t *testing.T) {
	c := NewClass("JEmpty")
	m := c.AddMethod(classfile.AccPublic, "m", nil, descriptor.Void)
	m.Body = []Stmt{} // non-nil empty: empty code array
	f, err := Lower(c)
	if err != nil {
		t.Fatal(err)
	}
	code := f.FindMethod("m").Code()
	if code == nil || len(code.Code) != 0 {
		t.Error("empty body must lower to an empty code array")
	}
	// And abstract (nil body) methods have no Code at all.
	c2 := NewClass("JAbs")
	c2.AddMethod(classfile.AccPublic|classfile.AccAbstract, "a", nil, descriptor.Void)
	f2, err := Lower(c2)
	if err != nil {
		t.Fatal(err)
	}
	if f2.FindMethod("a").Code() != nil {
		t.Error("abstract method must have no Code attribute")
	}
}

func TestLowerThrowStatement(t *testing.T) {
	c := NewClass("JThrow")
	c.AddDefaultInit()
	m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "main",
		[]descriptor.Type{descriptor.Array(descriptor.Object("java/lang/String"), 1)}, descriptor.Void)
	args := m.NewLocal("r0", descriptor.Array(descriptor.Object("java/lang/String"), 1))
	e := m.NewLocal("e0", descriptor.Object("java/lang/RuntimeException"))
	m.Body = []Stmt{
		&Identity{Target: args, Param: 0},
		&Assign{LHS: &UseLocal{L: e}, RHS: &NewExpr{Class: "java/lang/RuntimeException"}},
		&InvokeStmt{Call: &Invoke{Kind: InvokeSpecial, Class: "java/lang/RuntimeException", Name: "<init>",
			Sig: descriptor.Method{Return: descriptor.Void}, Base: e}},
		&Throw{Value: &UseLocal{L: e}},
	}
	data := lowerBytes(t, c)
	o := jvm.New(jvm.HotSpot8()).Run(data)
	if o.Phase != jvm.PhaseRuntime || o.Error != "java.lang.RuntimeException" {
		t.Errorf("want RuntimeException at runtime, got %s", o)
	}
}

func TestMutatedUseBeforeDefIsVerifyError(t *testing.T) {
	// Table 2's Jimple-file mutation: moving the use of $r1 before its
	// definition. The lowered class must fail verification on eager VMs.
	c := NewClass("JSwap")
	c.AddDefaultInit()
	main := c.AddStandardMain("Executed")
	// Swap the assignment of $r1 and its use (statements 1 and 2).
	main.Body[1], main.Body[2] = main.Body[2], main.Body[1]
	data := lowerBytes(t, c)
	o := jvm.New(jvm.HotSpot8()).Run(data)
	if o.Phase != jvm.PhaseLinking || o.Error != jvm.ErrVerify {
		t.Errorf("use-before-def should be a linking VerifyError, got %s", o)
	}
	// J9 (lazy) only fails when main is invoked.
	o9 := jvm.New(jvm.J9()).Run(data)
	if o9.OK() {
		t.Errorf("J9 should fail when invoking main, got %s", o9)
	}
}

func TestStmtStringForms(t *testing.T) {
	l := &Local{Name: "x", Type: descriptor.Int}
	cases := map[string]Stmt{
		"x = 5":          &Assign{LHS: &UseLocal{L: l}, RHS: &IntConst{V: 5, Kind: 'I'}},
		"return x":       &Return{Value: &UseLocal{L: l}},
		"return":         &Return{},
		"nop":            &Nop{},
		"goto [7]":       &Goto{Target: 7},
		"throw x":        &Throw{Value: &UseLocal{L: l}},
		"entermonitor x": &EnterMonitor{X: &UseLocal{L: l}},
	}
	for want, s := range cases {
		if got := StmtString(s, nil); got != want {
			t.Errorf("StmtString = %q, want %q", got, want)
		}
	}
	ifs := &If{Op: CondGe, L: &UseLocal{L: l}, R: &IntConst{V: 0, Kind: 'I'}, Target: 2}
	if got := StmtString(ifs, nil); got != "if x >= 0 goto [2]" {
		t.Errorf("if = %q", got)
	}
}
