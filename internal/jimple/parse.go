package jimple

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/classfile"
	"repro/internal/descriptor"
)

// ParseClass parses the textual Jimple form produced by Print back into
// a Class — the analogue of Soot reading .jimple files. The grammar is
// exactly Print's output language: three-address statements whose
// binary operators take immediate operands (constants, locals, field
// refs), labels for branch targets, and Java-style type names. Raw
// statements (opaque bytecode blocks) have no textual form and are
// rejected.
func ParseClass(src string) (*Class, error) {
	p := &parser{lines: splitLines(src)}
	c, err := p.parseClass()
	if err != nil {
		return nil, fmt.Errorf("jimple: parse error at line %d: %w", p.pos+1, err)
	}
	return c, nil
}

func splitLines(src string) []string {
	raw := strings.Split(src, "\n")
	out := make([]string, 0, len(raw))
	for _, l := range raw {
		out = append(out, strings.TrimSpace(l))
	}
	return out
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) cur() string {
	for p.pos < len(p.lines) && p.lines[p.pos] == "" {
		p.pos++
	}
	if p.pos >= len(p.lines) {
		return ""
	}
	return p.lines[p.pos]
}

func (p *parser) next() string {
	l := p.cur()
	p.pos++
	return l
}

func (p *parser) expect(tok string) error {
	l := p.next()
	if l != tok {
		return fmt.Errorf("expected %q, found %q", tok, l)
	}
	return nil
}

// --- class level ---------------------------------------------------------------

var modifierBits = map[string]classfile.Flags{
	"public":       classfile.AccPublic,
	"private":      classfile.AccPrivate,
	"protected":    classfile.AccProtected,
	"static":       classfile.AccStatic,
	"final":        classfile.AccFinal,
	"synchronized": classfile.AccSynchronized,
	"volatile":     classfile.AccVolatile,
	"transient":    classfile.AccTransient,
	"native":       classfile.AccNative,
	"abstract":     classfile.AccAbstract,
}

// takeModifiers strips leading modifier keywords from fields.
func takeModifiers(fields []string) (classfile.Flags, []string) {
	var flags classfile.Flags
	for len(fields) > 0 {
		bit, ok := modifierBits[fields[0]]
		if !ok {
			break
		}
		flags |= bit
		fields = fields[1:]
	}
	return flags, fields
}

func (p *parser) parseClass() (*Class, error) {
	header := p.next()
	if header == "" {
		return nil, fmt.Errorf("empty input")
	}
	fields := strings.Fields(header)
	flags, fields := takeModifiers(fields)
	if len(fields) == 0 {
		return nil, fmt.Errorf("missing class/interface keyword")
	}
	c := &Class{Modifiers: flags | classfile.AccSuper, Major: classfile.MajorJava7}
	switch fields[0] {
	case "class":
	case "interface":
		c.Modifiers |= classfile.AccInterface | classfile.AccAbstract
		c.Modifiers &^= classfile.AccSuper
	default:
		return nil, fmt.Errorf("expected class or interface, found %q", fields[0])
	}
	fields = fields[1:]
	if len(fields) == 0 {
		return nil, fmt.Errorf("missing class name")
	}
	c.Name = slashes(fields[0])
	fields = fields[1:]

	for len(fields) > 0 {
		switch fields[0] {
		case "extends":
			if len(fields) < 2 {
				return nil, fmt.Errorf("extends without a superclass")
			}
			c.Super = slashes(fields[1])
			fields = fields[2:]
		case "implements":
			for _, n := range fields[1:] {
				c.Interfaces = append(c.Interfaces, slashes(strings.TrimSuffix(n, ",")))
			}
			fields = nil
		default:
			return nil, fmt.Errorf("unexpected token %q in class header", fields[0])
		}
	}

	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		l := p.cur()
		if l == "" {
			return nil, fmt.Errorf("unterminated class body")
		}
		if l == "}" {
			p.next()
			return c, nil
		}
		if err := p.parseMember(c); err != nil {
			return nil, err
		}
	}
}

// parseMember parses one field or method declaration.
func (p *parser) parseMember(c *Class) error {
	l := p.next()
	if strings.Contains(l, "(") {
		return p.parseMethod(c, l)
	}
	// Field: `mods type name;`
	decl := strings.TrimSuffix(l, ";")
	if decl == l {
		return fmt.Errorf("field declaration %q missing ';'", l)
	}
	fields := strings.Fields(decl)
	flags, fields := takeModifiers(fields)
	if len(fields) != 2 {
		return fmt.Errorf("malformed field declaration %q", l)
	}
	t, err := javaType(fields[0])
	if err != nil {
		return err
	}
	c.Fields = append(c.Fields, &Field{Name: fields[1], Type: t, Modifiers: flags})
	return nil
}

// parseMethod parses `mods ret name(params) [throws ...]` and an
// optional body.
func (p *parser) parseMethod(c *Class, header string) error {
	bodyless := strings.HasSuffix(header, ";")
	header = strings.TrimSuffix(header, ";")

	open := strings.IndexByte(header, '(')
	close := strings.IndexByte(header, ')')
	if open < 0 || close < open {
		return fmt.Errorf("malformed method header %q", header)
	}
	pre := strings.Fields(header[:open])
	flags, pre := takeModifiers(pre)
	if len(pre) != 2 {
		return fmt.Errorf("malformed method signature %q", header)
	}
	ret, err := javaType(pre[0])
	if err != nil {
		return err
	}
	m := &Method{Name: pre[1], Return: ret, Modifiers: flags}

	if params := strings.TrimSpace(header[open+1 : close]); params != "" {
		for _, ps := range strings.Split(params, ",") {
			t, err := javaType(strings.TrimSpace(ps))
			if err != nil {
				return err
			}
			m.Params = append(m.Params, t)
		}
	}
	if rest := strings.TrimSpace(header[close+1:]); rest != "" {
		if !strings.HasPrefix(rest, "throws ") {
			return fmt.Errorf("unexpected trailer %q", rest)
		}
		for _, tn := range strings.Split(strings.TrimPrefix(rest, "throws "), ",") {
			m.Throws = append(m.Throws, slashes(strings.TrimSpace(tn)))
		}
	}
	c.Methods = append(c.Methods, m)
	if bodyless {
		return nil
	}
	return p.parseBody(c, m)
}

func (p *parser) parseBody(c *Class, m *Method) error {
	if err := p.expect("{"); err != nil {
		return err
	}
	locals := map[string]*Local{}
	mkLocal := func(name string, t descriptor.Type) *Local {
		if l, ok := locals[name]; ok {
			return l
		}
		l := &Local{Name: name, Type: t}
		locals[name] = l
		m.Locals = append(m.Locals, l)
		return l
	}

	// Local declarations come first: `type name;` without '='.
	for {
		l := p.cur()
		if l == "}" || l == "" || strings.Contains(l, ":") || strings.Contains(l, "=") ||
			isStmtKeyword(l) {
			break
		}
		decl := strings.TrimSuffix(p.next(), ";")
		fields := strings.Fields(decl)
		if len(fields) != 2 {
			return fmt.Errorf("malformed local declaration %q", decl)
		}
		t, err := javaType(fields[0])
		if err != nil {
			return err
		}
		mkLocal(fields[1], t)
	}

	// Statements, with labels mapping to statement indices.
	labelIdx := map[string]int{}
	type pending struct {
		stmt  Stmt
		label string
	}
	var stmts []pending
	for {
		l := p.cur()
		if l == "" {
			return fmt.Errorf("unterminated method body")
		}
		if l == "}" {
			p.next()
			break
		}
		if strings.HasSuffix(l, ":") && !strings.Contains(l, " ") {
			labelIdx[strings.TrimSuffix(l, ":")] = len(stmts)
			p.next()
			continue
		}
		line := strings.TrimSuffix(p.next(), ";")
		st, label, err := parseStmt(line, c, m, mkLocal)
		if err != nil {
			return err
		}
		stmts = append(stmts, pending{stmt: st, label: label})
	}

	m.Body = make([]Stmt, len(stmts))
	for i, ps := range stmts {
		if ps.label != "" {
			idx, ok := labelIdx[ps.label]
			if !ok {
				return fmt.Errorf("undefined label %q", ps.label)
			}
			switch s := ps.stmt.(type) {
			case *Goto:
				s.Target = idx
			case *If:
				s.Target = idx
			}
		}
		m.Body[i] = ps.stmt
	}
	return nil
}

func isStmtKeyword(l string) bool {
	for _, kw := range []string{"return", "goto ", "if ", "throw ", "nop", "entermonitor ", "exitmonitor ",
		"staticinvoke ", "virtualinvoke ", "specialinvoke ", "interfaceinvoke "} {
		if l == strings.TrimSpace(kw) || strings.HasPrefix(l, kw) {
			return true
		}
	}
	return false
}

// parseStmt parses one statement line; the returned label (if any) is
// resolved to an index by the caller.
func parseStmt(line string, c *Class, m *Method, mkLocal func(string, descriptor.Type) *Local) (Stmt, string, error) {
	switch {
	case line == "nop":
		return &Nop{}, "", nil
	case line == "return":
		return &Return{}, "", nil
	case strings.HasPrefix(line, "return "):
		e, err := parseExpr(strings.TrimPrefix(line, "return "), mkLocal)
		if err != nil {
			return nil, "", err
		}
		return &Return{Value: e}, "", nil
	case strings.HasPrefix(line, "goto "):
		return &Goto{}, strings.TrimSpace(strings.TrimPrefix(line, "goto ")), nil
	case strings.HasPrefix(line, "throw "):
		e, err := parseExpr(strings.TrimPrefix(line, "throw "), mkLocal)
		if err != nil {
			return nil, "", err
		}
		return &Throw{Value: e}, "", nil
	case strings.HasPrefix(line, "entermonitor "):
		e, err := parseExpr(strings.TrimPrefix(line, "entermonitor "), mkLocal)
		if err != nil {
			return nil, "", err
		}
		return &EnterMonitor{X: e}, "", nil
	case strings.HasPrefix(line, "exitmonitor "):
		e, err := parseExpr(strings.TrimPrefix(line, "exitmonitor "), mkLocal)
		if err != nil {
			return nil, "", err
		}
		return &ExitMonitor{X: e}, "", nil
	case strings.HasPrefix(line, "if "):
		// if <L> <op> <R> goto label
		rest := strings.TrimPrefix(line, "if ")
		gi := strings.LastIndex(rest, " goto ")
		if gi < 0 {
			return nil, "", fmt.Errorf("if without goto in %q", line)
		}
		label := strings.TrimSpace(rest[gi+6:])
		cond := rest[:gi]
		op, li, ri, err := splitCond(cond)
		if err != nil {
			return nil, "", err
		}
		le, err := parseExpr(li, mkLocal)
		if err != nil {
			return nil, "", err
		}
		re, err := parseExpr(ri, mkLocal)
		if err != nil {
			return nil, "", err
		}
		return &If{Op: op, L: le, R: re}, label, nil
	case strings.Contains(line, " := @this:"):
		name := strings.TrimSpace(line[:strings.Index(line, " :=")])
		l := mkLocal(name, descriptor.Object(c.Name))
		return &Identity{Target: l, Param: -1}, "", nil
	case strings.Contains(line, " := @parameter"):
		name := strings.TrimSpace(line[:strings.Index(line, " :=")])
		rest := line[strings.Index(line, "@parameter")+len("@parameter"):]
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return nil, "", fmt.Errorf("malformed identity %q", line)
		}
		idx, err := strconv.Atoi(rest[:colon])
		if err != nil {
			return nil, "", fmt.Errorf("malformed parameter index in %q", line)
		}
		t, err := javaType(strings.TrimSpace(rest[colon+1:]))
		if err != nil {
			return nil, "", err
		}
		l := mkLocal(name, t)
		return &Identity{Target: l, Param: idx}, "", nil
	}

	// Invoke statements.
	for _, kw := range []string{"staticinvoke ", "virtualinvoke ", "specialinvoke ", "interfaceinvoke "} {
		if strings.HasPrefix(line, kw) {
			e, err := parseExpr(line, mkLocal)
			if err != nil {
				return nil, "", err
			}
			inv, ok := e.(*Invoke)
			if !ok {
				return nil, "", fmt.Errorf("expected an invocation in %q", line)
			}
			return &InvokeStmt{Call: inv}, "", nil
		}
	}

	// Assignment: lhs = rhs, splitting on the first top-level " = ".
	eq := topLevelIndex(line, " = ")
	if eq < 0 {
		return nil, "", fmt.Errorf("unrecognised statement %q", line)
	}
	lhsE, err := parseExpr(line[:eq], mkLocal)
	if err != nil {
		return nil, "", err
	}
	lhs, ok := lhsE.(LValue)
	if !ok {
		return nil, "", fmt.Errorf("%q is not assignable", line[:eq])
	}
	rhs, err := parseExpr(line[eq+3:], mkLocal)
	if err != nil {
		return nil, "", err
	}
	return &Assign{LHS: lhs, RHS: rhs}, "", nil
}

// splitCond splits "a >= b" on the comparison operator.
func splitCond(s string) (CondOp, string, string, error) {
	for _, op := range []CondOp{CondEq, CondNe, CondGe, CondLe, CondLt, CondGt} {
		needle := " " + string(op) + " "
		if i := topLevelIndex(s, needle); i >= 0 {
			return op, s[:i], s[i+len(needle):], nil
		}
	}
	return "", "", "", fmt.Errorf("no comparison operator in %q", s)
}

// topLevelIndex finds needle outside quotes, angle brackets and parens.
func topLevelIndex(s, needle string) int {
	depth := 0
	inStr := false
	for i := 0; i+len(needle) <= len(s); i++ {
		ch := s[i]
		switch {
		case inStr:
			if ch == '\\' {
				i++
			} else if ch == '"' {
				inStr = false
			}
			continue
		case ch == '"':
			inStr = true
			continue
		case ch == '(' || ch == '<' || ch == '[':
			depth++
			continue
		case ch == ')' || ch == '>' || ch == ']':
			depth--
			continue
		}
		if depth == 0 && s[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}

// --- expressions -----------------------------------------------------------------

var binOps = []BinOpKind{OpUshr, OpShr, OpShl, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpCmp}

func parseExpr(s string, mkLocal func(string, descriptor.Type) *Local) (Expr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty expression")
	}

	// Prefix forms.
	switch {
	case s == "null":
		return &NullConst{}, nil
	case strings.HasPrefix(s, "class "):
		return &ClassConst{Name: slashes(strings.TrimPrefix(s, "class "))}, nil
	case strings.HasPrefix(s, "new "):
		return &NewExpr{Class: slashes(strings.TrimPrefix(s, "new "))}, nil
	case strings.HasPrefix(s, "neg "):
		x, err := parseExpr(strings.TrimPrefix(s, "neg "), mkLocal)
		if err != nil {
			return nil, err
		}
		return &Neg{X: x, Kind: kindOfImmediate(x)}, nil
	case strings.HasPrefix(s, "lengthof "):
		x, err := parseExpr(strings.TrimPrefix(s, "lengthof "), mkLocal)
		if err != nil {
			return nil, err
		}
		return &ArrayLen{X: x}, nil
	case strings.HasPrefix(s, "newarray "):
		// newarray (elem)[size]
		rest := strings.TrimPrefix(s, "newarray ")
		if !strings.HasPrefix(rest, "(") {
			return nil, fmt.Errorf("malformed newarray %q", s)
		}
		close := strings.IndexByte(rest, ')')
		if close < 0 {
			return nil, fmt.Errorf("malformed newarray %q", s)
		}
		elem, err := javaType(rest[1:close])
		if err != nil {
			return nil, err
		}
		sz := strings.TrimSpace(rest[close+1:])
		if !strings.HasPrefix(sz, "[") || !strings.HasSuffix(sz, "]") {
			return nil, fmt.Errorf("malformed newarray size %q", s)
		}
		size, err := parseExpr(sz[1:len(sz)-1], mkLocal)
		if err != nil {
			return nil, err
		}
		return &NewArrayExpr{Elem: elem, Size: size}, nil
	}

	// Invocations.
	for kw, kind := range map[string]InvokeKind{
		"staticinvoke ":    InvokeStatic,
		"virtualinvoke ":   InvokeVirtual,
		"specialinvoke ":   InvokeSpecial,
		"interfaceinvoke ": InvokeInterface,
	} {
		if strings.HasPrefix(s, kw) {
			return parseInvoke(strings.TrimPrefix(s, kw), kind, mkLocal)
		}
	}

	// instanceof.
	if i := topLevelIndex(s, " instanceof "); i >= 0 {
		x, err := parseExpr(s[:i], mkLocal)
		if err != nil {
			return nil, err
		}
		return &InstanceOf{X: x, Of: slashes(strings.TrimSpace(s[i+12:]))}, nil
	}

	// Cast: (type) expr.
	if strings.HasPrefix(s, "(") {
		close := strings.IndexByte(s, ')')
		if close > 0 {
			if t, err := javaType(strings.TrimSpace(s[1:close])); err == nil {
				x, err := parseExpr(s[close+1:], mkLocal)
				if err != nil {
					return nil, err
				}
				return &Cast{X: x, To: t}, nil
			}
		}
	}

	// Binary operators (single level; operands are immediates).
	for _, op := range binOps {
		needle := " " + string(op) + " "
		if i := topLevelIndex(s, needle); i >= 0 {
			l, err := parseExpr(s[:i], mkLocal)
			if err != nil {
				return nil, err
			}
			r, err := parseExpr(s[i+len(needle):], mkLocal)
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: op, L: l, R: r, Kind: kindOfImmediate(l)}, nil
		}
	}

	// Field references: `<C: T f>` (static), `base.<C: T f>` (instance).
	if strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">") {
		return parseFieldRef(s[1:len(s)-1], nil, mkLocal)
	}
	if dot := strings.Index(s, ".<"); dot > 0 && strings.HasSuffix(s, ">") {
		base := mkLocal(s[:dot], descriptor.Object("java/lang/Object"))
		return parseFieldRef(s[dot+2:len(s)-1], base, mkLocal)
	}

	// Array ref: base[idx].
	if br := strings.IndexByte(s, '['); br > 0 && strings.HasSuffix(s, "]") && !strings.Contains(s[:br], " ") {
		base := mkLocal(s[:br], descriptor.Object("java/lang/Object"))
		idx, err := parseExpr(s[br+1:len(s)-1], mkLocal)
		if err != nil {
			return nil, err
		}
		elem := descriptor.Object("java/lang/Object")
		if base.Type.Dims > 0 {
			elem = base.Type
			elem.Dims--
		}
		return &ArrayRef{Base: base, Index: idx, Elem: elem}, nil
	}

	// String literal.
	if strings.HasPrefix(s, "\"") {
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("bad string literal %s", s)
		}
		return &StringConst{V: v}, nil
	}

	// Numeric literals.
	if v, err := strconv.ParseInt(strings.TrimSuffix(s, "L"), 10, 64); err == nil {
		kind := byte('I')
		if strings.HasSuffix(s, "L") {
			kind = 'J'
		}
		return &IntConst{V: v, Kind: kind}, nil
	}
	if v, err := strconv.ParseFloat(strings.TrimSuffix(s, "F"), 64); err == nil {
		kind := byte('D')
		if strings.HasSuffix(s, "F") {
			kind = 'F'
		}
		return &FloatConst{V: v, Kind: kind}, nil
	}

	// A plain identifier is a local.
	if isIdent(s) {
		return &UseLocal{L: mkLocal(s, descriptor.Object("java/lang/Object"))}, nil
	}
	return nil, fmt.Errorf("unparseable expression %q", s)
}

// parseFieldRef parses `a.b.C: T name` (the inside of <...>).
func parseFieldRef(s string, base *Local, mkLocal func(string, descriptor.Type) *Local) (Expr, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return nil, fmt.Errorf("malformed field reference <%s>", s)
	}
	cls := slashes(strings.TrimSpace(s[:colon]))
	rest := strings.Fields(strings.TrimSpace(s[colon+1:]))
	if len(rest) != 2 {
		return nil, fmt.Errorf("malformed field reference <%s>", s)
	}
	t, err := javaType(rest[0])
	if err != nil {
		return nil, err
	}
	if base == nil {
		return &StaticFieldRef{Class: cls, Name: rest[1], Type: t}, nil
	}
	return &InstanceFieldRef{Base: base, Class: cls, Name: rest[1], Type: t}, nil
}

// parseInvoke parses `[base.]<C: R m(p1,p2)>(a1, a2)`.
func parseInvoke(s string, kind InvokeKind, mkLocal func(string, descriptor.Type) *Local) (Expr, error) {
	inv := &Invoke{Kind: kind}
	if kind != InvokeStatic {
		dot := strings.Index(s, ".<")
		if dot < 0 {
			return nil, fmt.Errorf("instance invocation without a base in %q", s)
		}
		inv.Base = mkLocal(s[:dot], descriptor.Object("java/lang/Object"))
		s = s[dot+1:]
	}
	if !strings.HasPrefix(s, "<") {
		return nil, fmt.Errorf("malformed invocation %q", s)
	}
	// Method names like <init>/<clinit> nest angle brackets inside the
	// signature; find the matching closer by depth.
	sigEnd := matchAngle(s)
	if sigEnd < 0 {
		return nil, fmt.Errorf("unterminated signature in %q", s)
	}
	sig := s[1:sigEnd]
	colon := strings.IndexByte(sig, ':')
	if colon < 0 {
		return nil, fmt.Errorf("malformed signature %q", sig)
	}
	inv.Class = slashes(strings.TrimSpace(sig[:colon]))
	decl := strings.TrimSpace(sig[colon+1:])
	open := strings.IndexByte(decl, '(')
	closeP := strings.LastIndexByte(decl, ')')
	if open < 0 || closeP < open {
		return nil, fmt.Errorf("malformed method declaration %q", decl)
	}
	pre := strings.Fields(decl[:open])
	if len(pre) != 2 {
		return nil, fmt.Errorf("malformed method declaration %q", decl)
	}
	ret, err := javaType(pre[0])
	if err != nil {
		return nil, err
	}
	inv.Name = pre[1]
	inv.Sig = descriptor.Method{Return: ret}
	if ps := strings.TrimSpace(decl[open+1 : closeP]); ps != "" {
		for _, pt := range strings.Split(ps, ",") {
			t, err := javaType(strings.TrimSpace(pt))
			if err != nil {
				return nil, err
			}
			inv.Sig.Params = append(inv.Sig.Params, t)
		}
	}
	// Arguments after the signature.
	args := strings.TrimSpace(s[sigEnd+1:])
	if !strings.HasPrefix(args, "(") || !strings.HasSuffix(args, ")") {
		return nil, fmt.Errorf("malformed argument list %q", args)
	}
	for _, as := range splitTopLevel(args[1 : len(args)-1]) {
		a, err := parseExpr(as, mkLocal)
		if err != nil {
			return nil, err
		}
		inv.Args = append(inv.Args, a)
	}
	return inv, nil
}

// matchAngle returns the index of the '>' matching s[0] == '<', or -1.
func matchAngle(s string) int {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			depth++
		case '>':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// splitTopLevel splits a comma-separated list respecting nesting.
func splitTopLevel(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case inStr:
			if ch == '\\' {
				i++
			} else if ch == '"' {
				inStr = false
			}
		case ch == '"':
			inStr = true
		case ch == '(' || ch == '<' || ch == '[':
			depth++
		case ch == ')' || ch == '>' || ch == ']':
			depth--
		case ch == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// kindOfImmediate guesses the computational kind of a parsed immediate.
func kindOfImmediate(e Expr) byte {
	switch x := e.(type) {
	case *IntConst:
		return x.Kind
	case *FloatConst:
		return x.Kind
	case *UseLocal:
		if x.L.Type.IsReference() {
			return 'A'
		}
		switch x.L.Type.Kind {
		case 'J', 'F', 'D':
			return x.L.Type.Kind
		}
		return 'I'
	case *StaticFieldRef:
		if x.Type.IsReference() {
			return 'A'
		}
		return x.Type.Kind
	case *InstanceFieldRef:
		if x.Type.IsReference() {
			return 'A'
		}
		return x.Type.Kind
	}
	return 'I'
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '$':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func slashes(dotted string) string { return strings.ReplaceAll(dotted, ".", "/") }

// javaType parses a Java-style type name ("int", "java.lang.String[]").
func javaType(s string) (descriptor.Type, error) {
	dims := 0
	for strings.HasSuffix(s, "[]") {
		dims++
		s = s[:len(s)-2]
	}
	var t descriptor.Type
	switch s {
	case "byte":
		t = descriptor.Byte
	case "char":
		t = descriptor.Char
	case "double":
		t = descriptor.Double
	case "float":
		t = descriptor.Float
	case "int":
		t = descriptor.Int
	case "long":
		t = descriptor.Long
	case "short":
		t = descriptor.Short
	case "boolean":
		t = descriptor.Boolean
	case "void":
		if dims > 0 {
			return t, fmt.Errorf("array of void")
		}
		return descriptor.Void, nil
	case "":
		return t, fmt.Errorf("empty type name")
	default:
		if strings.ContainsAny(s, "(){};=") {
			return t, fmt.Errorf("invalid type name %q", s)
		}
		t = descriptor.Object(slashes(s))
	}
	t.Dims = dims
	return t, nil
}
