package jimple

import (
	"repro/internal/classfile"
	"repro/internal/descriptor"
)

// AddDefaultInit appends the canonical no-argument constructor:
// r0 := @this; specialinvoke r0.<super: void <init>()>(); return.
func (c *Class) AddDefaultInit() *Method {
	m := c.AddMethod(classfile.AccPublic, "<init>", nil, descriptor.Void)
	this := m.NewLocal("r0", descriptor.Object(c.Name))
	super := c.Super
	if super == "" {
		super = "java/lang/Object"
	}
	m.Body = []Stmt{
		&Identity{Target: this, Param: -1},
		&InvokeStmt{Call: &Invoke{
			Kind:  InvokeSpecial,
			Class: super,
			Name:  "<init>",
			Sig:   descriptor.Method{Return: descriptor.Void},
			Base:  this,
		}},
		&Return{},
	}
	return m
}

// AddStandardMain appends the fuzzing-harness main of §2.2.1: it prints
// a completion message so that a mutant observably either runs or fails
// earlier in the startup pipeline.
func (c *Class) AddStandardMain(message string) *Method {
	m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "main",
		[]descriptor.Type{descriptor.Array(descriptor.Object("java/lang/String"), 1)},
		descriptor.Void)
	args := m.NewLocal("r0", descriptor.Array(descriptor.Object("java/lang/String"), 1))
	out := m.NewLocal("$r1", descriptor.Object("java/io/PrintStream"))
	m.Body = []Stmt{
		&Identity{Target: args, Param: 0},
		&Assign{
			LHS: &UseLocal{L: out},
			RHS: &StaticFieldRef{Class: "java/lang/System", Name: "out", Type: descriptor.Object("java/io/PrintStream")},
		},
		&InvokeStmt{Call: &Invoke{
			Kind:  InvokeVirtual,
			Class: "java/io/PrintStream",
			Name:  "println",
			Sig:   descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/lang/String")}, Return: descriptor.Void},
			Base:  out,
			Args:  []Expr{&StringConst{V: message}},
		}},
		&Return{},
	}
	return m
}

// Println appends statements to body that print a constant message via
// a fresh PrintStream local; used by generators building ad-hoc bodies.
func Println(m *Method, message string) []Stmt {
	out := m.NewLocal(freshName(m, "$s"), descriptor.Object("java/io/PrintStream"))
	return []Stmt{
		&Assign{
			LHS: &UseLocal{L: out},
			RHS: &StaticFieldRef{Class: "java/lang/System", Name: "out", Type: descriptor.Object("java/io/PrintStream")},
		},
		&InvokeStmt{Call: &Invoke{
			Kind:  InvokeVirtual,
			Class: "java/io/PrintStream",
			Name:  "println",
			Sig:   descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/lang/String")}, Return: descriptor.Void},
			Base:  out,
			Args:  []Expr{&StringConst{V: message}},
		}},
	}
}

func freshName(m *Method, prefix string) string {
	return prefix + string(rune('0'+len(m.Locals)%10)) + string(rune('a'+(len(m.Locals)/10)%26))
}
