package jimple

import (
	"testing"

	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jvm"
)

func TestParsePrintedHello(t *testing.T) {
	orig := hello("PHello")
	text := Print(orig)
	parsed, err := ParseClass(text)
	if err != nil {
		t.Fatalf("parse:\n%s\nerror: %v", text, err)
	}
	if parsed.Name != "PHello" || parsed.Super != "java/lang/Object" {
		t.Errorf("identity: %s extends %s", parsed.Name, parsed.Super)
	}
	if len(parsed.Methods) != 2 {
		t.Fatalf("%d methods", len(parsed.Methods))
	}
	// The parsed class must lower and behave like the original.
	data := lowerBytes(t, parsed)
	o := jvm.New(jvm.HotSpot9()).Run(data)
	if !o.OK() || len(o.Output) != 1 || o.Output[0] != "Completed!" {
		t.Errorf("parsed class behaves differently: %s %v", o, o.Output)
	}
}

func TestParsePrintRoundTripIsStable(t *testing.T) {
	// Print∘Parse∘Print must be a fixpoint.
	orig := hello("PStable")
	orig.Interfaces = []string{"java/io/Serializable"}
	orig.AddField(classfile.AccProtected|classfile.AccFinal, "MAP", descriptor.Object("java/util/Map"))
	t1 := Print(orig)
	parsed, err := ParseClass(t1)
	if err != nil {
		t.Fatal(err)
	}
	t2 := Print(parsed)
	if t1 != t2 {
		t.Errorf("print not stable:\n--- first\n%s\n--- second\n%s", t1, t2)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
public class PLoop extends java.lang.Object
{
    public static int countdown(int)
    {
        int i0;
        int acc;

        i0 := @parameter0: int;
        acc = 0;
     label1:
        if i0 <= 0 goto label2;
        acc = acc + i0;
        i0 = i0 - 1;
        goto label1;
     label2:
        return acc;
    }
}
`
	c, err := ParseClass(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.FindMethod("countdown")
	if m == nil || len(m.Params) != 1 {
		t.Fatal("countdown missing")
	}
	ifs, ok := m.Body[2].(*If)
	if !ok || ifs.Target != 6 {
		t.Fatalf("if target = %+v", m.Body[2])
	}
	gt, ok := m.Body[5].(*Goto)
	if !ok || gt.Target != 2 {
		t.Fatalf("goto target = %+v", m.Body[5])
	}
	// Executable check: sum 1..5 = 15, via a main harness.
	c.AddDefaultInit()
	mm := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "main",
		[]descriptor.Type{descriptor.Array(descriptor.Object("java/lang/String"), 1)}, descriptor.Void)
	args := mm.NewLocal("a0", descriptor.Array(descriptor.Object("java/lang/String"), 1))
	r := mm.NewLocal("r1", descriptor.Int)
	s := mm.NewLocal("s1", descriptor.Object("java/lang/String"))
	out := mm.NewLocal("o1", descriptor.Object("java/io/PrintStream"))
	mm.Body = []Stmt{
		&Identity{Target: args, Param: 0},
		&Assign{LHS: &UseLocal{L: r}, RHS: &Invoke{Kind: InvokeStatic, Class: "PLoop", Name: "countdown",
			Sig:  descriptor.Method{Params: []descriptor.Type{descriptor.Int}, Return: descriptor.Int},
			Args: []Expr{&IntConst{V: 5, Kind: 'I'}}}},
		&Assign{LHS: &UseLocal{L: s}, RHS: &Invoke{Kind: InvokeStatic, Class: "java/lang/String", Name: "valueOf",
			Sig:  descriptor.Method{Params: []descriptor.Type{descriptor.Int}, Return: descriptor.Object("java/lang/String")},
			Args: []Expr{&UseLocal{L: r}}}},
		&Assign{LHS: &UseLocal{L: out}, RHS: &StaticFieldRef{Class: "java/lang/System", Name: "out", Type: descriptor.Object("java/io/PrintStream")}},
		&InvokeStmt{Call: &Invoke{Kind: InvokeVirtual, Class: "java/io/PrintStream", Name: "println",
			Sig:  descriptor.Method{Params: []descriptor.Type{descriptor.Object("java/lang/String")}, Return: descriptor.Void},
			Base: out, Args: []Expr{&UseLocal{L: s}}}},
		&Return{},
	}
	data := lowerBytes(t, c)
	o := jvm.New(jvm.HotSpot8()).Run(data)
	if !o.OK() || len(o.Output) != 1 || o.Output[0] != "15" {
		t.Errorf("countdown(5): %s %v", o, o.Output)
	}
}

func TestParseInterface(t *testing.T) {
	src := `
public interface PIface extends java.lang.Object
{
    public static final int VERSION;

    public abstract int op0(int);
}
`
	c, err := ParseClass(src)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsInterface() {
		t.Error("not an interface")
	}
	if len(c.Fields) != 1 || !c.Fields[0].Modifiers.Has(classfile.AccStatic) {
		t.Errorf("fields: %+v", c.Fields)
	}
	m := c.FindMethod("op0")
	if m == nil || m.Body != nil || !m.Modifiers.Has(classfile.AccAbstract) {
		t.Errorf("op0: %+v", m)
	}
}

func TestParseThrowsAndFieldRefs(t *testing.T) {
	src := `
public class PThrows extends java.lang.Object
{
    public static int counter;

    public void risky() throws java.io.IOException, java.lang.InterruptedException
    {
        PThrows r0;

        r0 := @this: PThrows;
        <PThrows: int counter> = <PThrows: int counter> + 1;
        return;
    }
}
`
	c, err := ParseClass(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.FindMethod("risky")
	if len(m.Throws) != 2 || m.Throws[0] != "java/io/IOException" {
		t.Errorf("throws = %v", m.Throws)
	}
	asg, ok := m.Body[1].(*Assign)
	if !ok {
		t.Fatalf("stmt 1 = %T", m.Body[1])
	}
	if _, ok := asg.LHS.(*StaticFieldRef); !ok {
		t.Errorf("LHS = %T", asg.LHS)
	}
	bin, ok := asg.RHS.(*BinOp)
	if !ok || bin.Op != OpAdd {
		t.Errorf("RHS = %+v", asg.RHS)
	}
}

func TestParseInstanceFieldAndInvoke(t *testing.T) {
	src := `
public class PInst extends java.lang.Object
{
    private java.util.Map cache;

    public int size()
    {
        PInst r0;
        java.util.Map m0;

        r0 := @this: PInst;
        m0 = r0.<PInst: java.util.Map cache>;
        return 0;
    }
}
`
	c, err := ParseClass(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.FindMethod("size")
	asg := m.Body[1].(*Assign)
	ifr, ok := asg.RHS.(*InstanceFieldRef)
	if !ok || ifr.Class != "PInst" || ifr.Name != "cache" {
		t.Errorf("RHS = %+v", asg.RHS)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"banana PX {",
		"public class",
		"public class X extends java.lang.Object\n{\n  int f\n}",                                 // missing ;
		"public class X extends java.lang.Object\n{\n  void m()\n  {\n",                          // unterminated
		"public class X extends java.lang.Object\n{\n  void m()\n  {\n    goto nowhere;\n  }\n}", // undefined label
	}
	for _, src := range bad {
		if _, err := ParseClass(src); err == nil {
			t.Errorf("ParseClass accepted %q", src)
		}
	}
}

// TestPropertyPrintParseOnSeeds: every structured seed class round-trips
// through the textual form with identical behaviour.
func TestPropertyPrintParseOnSeeds(t *testing.T) {
	// Local seed construction (mirrors seedgen shapes without importing
	// it, avoiding a dependency cycle in the test graph).
	mk := []func() *Class{
		func() *Class { return hello("PS1") },
		func() *Class {
			c := hello("PS2")
			c.AddField(classfile.AccPrivate, "f0", descriptor.Int)
			c.AddField(classfile.AccProtected|classfile.AccFinal, "f1", descriptor.Object("java/util/Map"))
			return c
		},
		func() *Class {
			c := hello("PS3")
			m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "scale",
				[]descriptor.Type{descriptor.Int}, descriptor.Int)
			a := m.NewLocal("i0", descriptor.Int)
			m.Body = []Stmt{
				&Identity{Target: a, Param: 0},
				&Return{Value: &BinOp{Op: OpMul, L: &UseLocal{L: a}, R: &IntConst{V: 3, Kind: 'I'}, Kind: 'I'}},
			}
			return c
		},
	}
	vm := jvm.New(jvm.HotSpot9())
	for i, f := range mk {
		orig := f()
		parsed, err := ParseClass(Print(orig))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", i, err, Print(orig))
		}
		d1 := lowerBytes(t, orig)
		d2 := lowerBytes(t, parsed)
		o1, o2 := vm.Run(d1), vm.Run(d2)
		if o1.Code() != o2.Code() {
			t.Errorf("seed %d: behaviour changed %s -> %s", i, o1, o2)
		}
	}
}
