// Package jimple is the repository's Soot substitute: a typed,
// statement-level intermediate representation of Java classes (modelled
// on Soot's Jimple) with lowering to real classfiles and lifting back.
// The mutation operators of internal/mutation rewrite this IR — exactly
// the level at which the paper's 129 mutators operate — and the
// hierarchical reducer of internal/reduce deletes its statements,
// fields and methods.
package jimple

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/descriptor"
)

// Class is the mutable class model (the SootClass analogue).
type Class struct {
	Name       string // internal name
	Super      string // internal name; "" only for java/lang/Object
	Interfaces []string
	Modifiers  classfile.Flags
	Major      uint16
	Minor      uint16
	SourceFile string
	Fields     []*Field
	Methods    []*Method
	// OrigPool is the constant pool of the classfile this model was
	// lifted from, if any. Raw statements keep indices into it; lowering
	// re-interns those constants into the fresh pool.
	OrigPool *classfile.ConstPool
}

// Field is one declared field.
type Field struct {
	Name      string
	Type      descriptor.Type
	Modifiers classfile.Flags
}

// Method is one declared method. Params excludes the receiver. Body is
// nil for abstract/native methods; a non-nil empty body is an
// (illegal) empty code array, which the fuzzer may want.
type Method struct {
	Name      string
	Params    []descriptor.Type
	Return    descriptor.Type
	Modifiers classfile.Flags
	Throws    []string
	Locals    []*Local
	Body      []Stmt
	// RawHandlers/RawMaxStack/RawMaxLocals carry the exception table and
	// frame sizes of a body lifted as a single Raw statement (the only
	// form in which traps round-trip). CatchType indices refer to the
	// owning Class's OrigPool.
	RawHandlers  []classfile.ExceptionHandler
	RawMaxStack  uint16
	RawMaxLocals uint16
}

// Descriptor renders the method descriptor.
func (m *Method) Descriptor() string {
	return descriptor.Method{Params: m.Params, Return: m.Return}.String()
}

// IsStatic reports whether the method is static.
func (m *Method) IsStatic() bool { return m.Modifiers.Has(classfile.AccStatic) }

// Local is one method-local variable (including receiver/parameters,
// which are bound by Identity statements).
type Local struct {
	Name string
	Type descriptor.Type
}

// NewLocal appends a fresh local to the method and returns it.
func (m *Method) NewLocal(name string, t descriptor.Type) *Local {
	l := &Local{Name: name, Type: t}
	m.Locals = append(m.Locals, l)
	return l
}

// --- expressions ------------------------------------------------------------

// Expr is a Jimple expression (right-hand side value).
type Expr interface{ isExpr() }

// IntConst is an int or long constant (Kind 'I' or 'J').
type IntConst struct {
	V    int64
	Kind byte
}

// FloatConst is a float or double constant (Kind 'F' or 'D').
type FloatConst struct {
	V    float64
	Kind byte
}

// StringConst is a string literal.
type StringConst struct{ V string }

// NullConst is the null literal.
type NullConst struct{}

// ClassConst is a class literal (ldc of a Class constant).
type ClassConst struct{ Name string }

// UseLocal reads a local variable.
type UseLocal struct{ L *Local }

// StaticFieldRef names a static field (readable and assignable).
type StaticFieldRef struct {
	Class string
	Name  string
	Type  descriptor.Type
}

// InstanceFieldRef names an instance field of a local's object.
type InstanceFieldRef struct {
	Base  *Local
	Class string
	Name  string
	Type  descriptor.Type
}

// ArrayRef indexes an array held in a local.
type ArrayRef struct {
	Base  *Local
	Index Expr
	Elem  descriptor.Type
}

// BinOp operators.
type BinOpKind string

// Binary operators. Cmp* are the long/float comparison operators that
// produce an int.
const (
	OpAdd  BinOpKind = "+"
	OpSub  BinOpKind = "-"
	OpMul  BinOpKind = "*"
	OpDiv  BinOpKind = "/"
	OpRem  BinOpKind = "%"
	OpAnd  BinOpKind = "&"
	OpOr   BinOpKind = "|"
	OpXor  BinOpKind = "^"
	OpShl  BinOpKind = "<<"
	OpShr  BinOpKind = ">>"
	OpUshr BinOpKind = ">>>"
	OpCmp  BinOpKind = "cmp"
)

// BinOp combines two values of the same primitive kind.
type BinOp struct {
	Op   BinOpKind
	L, R Expr
	Kind byte // 'I','J','F','D'
}

// Neg negates a primitive value.
type Neg struct {
	X    Expr
	Kind byte
}

// Cast is a checkcast (reference To) or primitive conversion.
type Cast struct {
	X  Expr
	To descriptor.Type
}

// InstanceOf tests a reference against a class.
type InstanceOf struct {
	X  Expr
	Of string
}

// NewExpr allocates an object (without constructing it; pair with a
// SpecialInvoke of <init>).
type NewExpr struct{ Class string }

// NewArrayExpr allocates a one-dimensional array.
type NewArrayExpr struct {
	Elem descriptor.Type
	Size Expr
}

// ArrayLen reads an array's length.
type ArrayLen struct{ X Expr }

// InvokeKind distinguishes the invocation instructions.
type InvokeKind int

// Invocation kinds.
const (
	InvokeStatic InvokeKind = iota
	InvokeVirtual
	InvokeSpecial
	InvokeInterface
)

// Invoke calls a method; Base is nil for static calls.
type Invoke struct {
	Kind  InvokeKind
	Class string
	Name  string
	Sig   descriptor.Method
	Base  *Local
	Args  []Expr
}

func (*IntConst) isExpr()         {}
func (*FloatConst) isExpr()       {}
func (*StringConst) isExpr()      {}
func (*NullConst) isExpr()        {}
func (*ClassConst) isExpr()       {}
func (*UseLocal) isExpr()         {}
func (*StaticFieldRef) isExpr()   {}
func (*InstanceFieldRef) isExpr() {}
func (*ArrayRef) isExpr()         {}
func (*BinOp) isExpr()            {}
func (*Neg) isExpr()              {}
func (*Cast) isExpr()             {}
func (*InstanceOf) isExpr()       {}
func (*NewExpr) isExpr()          {}
func (*NewArrayExpr) isExpr()     {}
func (*ArrayLen) isExpr()         {}
func (*Invoke) isExpr()           {}

// LValue is an assignable location.
type LValue interface{ isLValue() }

func (*UseLocal) isLValue()         {}
func (*StaticFieldRef) isLValue()   {}
func (*InstanceFieldRef) isLValue() {}
func (*ArrayRef) isLValue()         {}

// --- statements --------------------------------------------------------------

// Stmt is one Jimple statement. Branch targets are statement indices
// within the owning method's Body.
type Stmt interface{ isStmt() }

// Identity binds a local to the receiver or a parameter:
// r0 := @this / r1 := @parameter0: type.
type Identity struct {
	Target *Local
	// Param is the parameter index, or -1 for @this.
	Param int
}

// Assign stores RHS into LHS.
type Assign struct {
	LHS LValue
	RHS Expr
}

// InvokeStmt evaluates a call for effect.
type InvokeStmt struct{ Call *Invoke }

// Return leaves the method; Value is nil for void.
type Return struct{ Value Expr }

// CondOp is a comparison operator for If statements.
type CondOp string

// Comparison operators.
const (
	CondEq CondOp = "=="
	CondNe CondOp = "!="
	CondLt CondOp = "<"
	CondGe CondOp = ">="
	CondGt CondOp = ">"
	CondLe CondOp = "<="
)

// If conditionally branches to the statement at index Target.
type If struct {
	Op     CondOp
	L, R   Expr
	Target int
}

// Goto unconditionally branches to the statement at index Target.
type Goto struct{ Target int }

// Throw raises a throwable value.
type Throw struct{ Value Expr }

// Nop does nothing.
type Nop struct{}

// EnterMonitor / ExitMonitor are the synchronization statements.
type EnterMonitor struct{ X Expr }

// ExitMonitor releases a monitor.
type ExitMonitor struct{ X Expr }

// Raw is an opaque instruction sequence that lifting could not type.
// Its branches must stay inside the sequence; lowering re-emits it
// verbatim (re-assembled at its new position).
type Raw struct{ Ins []*bytecode.Instruction }

func (*Identity) isStmt()     {}
func (*Assign) isStmt()       {}
func (*InvokeStmt) isStmt()   {}
func (*Return) isStmt()       {}
func (*If) isStmt()           {}
func (*Goto) isStmt()         {}
func (*Throw) isStmt()        {}
func (*Nop) isStmt()          {}
func (*EnterMonitor) isStmt() {}
func (*ExitMonitor) isStmt()  {}
func (*Raw) isStmt()          {}

// --- construction helpers ----------------------------------------------------

// NewClass starts an empty public class extending Object at version 51
// (the fixed major version of the evaluation, §3.1.1).
func NewClass(name string) *Class {
	return &Class{
		Name:      name,
		Super:     "java/lang/Object",
		Modifiers: classfile.AccPublic | classfile.AccSuper,
		Major:     classfile.MajorJava7,
	}
}

// AddField appends a field.
func (c *Class) AddField(flags classfile.Flags, name string, t descriptor.Type) *Field {
	f := &Field{Name: name, Type: t, Modifiers: flags}
	c.Fields = append(c.Fields, f)
	return f
}

// AddMethod appends an empty-bodied method.
func (c *Class) AddMethod(flags classfile.Flags, name string, params []descriptor.Type, ret descriptor.Type) *Method {
	m := &Method{Name: name, Params: params, Return: ret, Modifiers: flags}
	c.Methods = append(c.Methods, m)
	return m
}

// FindMethod returns the first method with the given name, or nil.
func (c *Class) FindMethod(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// MethodIndex returns the index of m in c.Methods, or -1.
func (c *Class) MethodIndex(m *Method) int {
	for i, x := range c.Methods {
		if x == m {
			return i
		}
	}
	return -1
}

// IsInterface reports whether the class is declared as an interface.
func (c *Class) IsInterface() bool { return c.Modifiers.Has(classfile.AccInterface) }

// Clone returns a deep copy (locals and statements are re-created so the
// copy can be mutated independently).
func (c *Class) Clone() *Class {
	out := &Class{
		Name:       c.Name,
		Super:      c.Super,
		Interfaces: append([]string(nil), c.Interfaces...),
		Modifiers:  c.Modifiers,
		Major:      c.Major,
		Minor:      c.Minor,
		SourceFile: c.SourceFile,
		OrigPool:   c.OrigPool,
	}
	for _, f := range c.Fields {
		ff := *f
		out.Fields = append(out.Fields, &ff)
	}
	for _, m := range c.Methods {
		out.Methods = append(out.Methods, m.Clone())
	}
	return out
}

// Clone deep-copies a method, remapping locals.
func (m *Method) Clone() *Method {
	out := &Method{
		Name:         m.Name,
		Params:       append([]descriptor.Type(nil), m.Params...),
		Return:       m.Return,
		Modifiers:    m.Modifiers,
		Throws:       append([]string(nil), m.Throws...),
		RawHandlers:  append([]classfile.ExceptionHandler(nil), m.RawHandlers...),
		RawMaxStack:  m.RawMaxStack,
		RawMaxLocals: m.RawMaxLocals,
	}
	lm := make(map[*Local]*Local, len(m.Locals))
	for _, l := range m.Locals {
		nl := &Local{Name: l.Name, Type: l.Type}
		lm[l] = nl
		out.Locals = append(out.Locals, nl)
	}
	if m.Body != nil {
		out.Body = make([]Stmt, len(m.Body))
		for i, s := range m.Body {
			out.Body[i] = cloneStmt(s, lm)
		}
	}
	return out
}

func cloneLocal(l *Local, lm map[*Local]*Local) *Local {
	if l == nil {
		return nil
	}
	if nl, ok := lm[l]; ok {
		return nl
	}
	// A statement can reference a local not in the declared list (a
	// mutation may have removed the declaration); keep the alias.
	nl := &Local{Name: l.Name, Type: l.Type}
	lm[l] = nl
	return nl
}

func cloneExpr(e Expr, lm map[*Local]*Local) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntConst:
		c := *x
		return &c
	case *FloatConst:
		c := *x
		return &c
	case *StringConst:
		c := *x
		return &c
	case *NullConst:
		return &NullConst{}
	case *ClassConst:
		c := *x
		return &c
	case *UseLocal:
		return &UseLocal{L: cloneLocal(x.L, lm)}
	case *StaticFieldRef:
		c := *x
		return &c
	case *InstanceFieldRef:
		c := *x
		c.Base = cloneLocal(x.Base, lm)
		return &c
	case *ArrayRef:
		return &ArrayRef{Base: cloneLocal(x.Base, lm), Index: cloneExpr(x.Index, lm), Elem: x.Elem}
	case *BinOp:
		return &BinOp{Op: x.Op, L: cloneExpr(x.L, lm), R: cloneExpr(x.R, lm), Kind: x.Kind}
	case *Neg:
		return &Neg{X: cloneExpr(x.X, lm), Kind: x.Kind}
	case *Cast:
		return &Cast{X: cloneExpr(x.X, lm), To: x.To}
	case *InstanceOf:
		return &InstanceOf{X: cloneExpr(x.X, lm), Of: x.Of}
	case *NewExpr:
		c := *x
		return &c
	case *NewArrayExpr:
		return &NewArrayExpr{Elem: x.Elem, Size: cloneExpr(x.Size, lm)}
	case *ArrayLen:
		return &ArrayLen{X: cloneExpr(x.X, lm)}
	case *Invoke:
		return cloneInvoke(x, lm)
	}
	panic(fmt.Sprintf("jimple: cloneExpr of unknown %T", e))
}

func cloneInvoke(x *Invoke, lm map[*Local]*Local) *Invoke {
	ni := &Invoke{Kind: x.Kind, Class: x.Class, Name: x.Name, Sig: x.Sig, Base: cloneLocal(x.Base, lm)}
	ni.Sig.Params = append([]descriptor.Type(nil), x.Sig.Params...)
	for _, a := range x.Args {
		ni.Args = append(ni.Args, cloneExpr(a, lm))
	}
	return ni
}

func cloneStmt(s Stmt, lm map[*Local]*Local) Stmt {
	switch x := s.(type) {
	case *Identity:
		return &Identity{Target: cloneLocal(x.Target, lm), Param: x.Param}
	case *Assign:
		return &Assign{LHS: cloneExpr(x.LHS.(Expr), lm).(LValue), RHS: cloneExpr(x.RHS, lm)}
	case *InvokeStmt:
		return &InvokeStmt{Call: cloneInvoke(x.Call, lm)}
	case *Return:
		return &Return{Value: cloneExpr(x.Value, lm)}
	case *If:
		return &If{Op: x.Op, L: cloneExpr(x.L, lm), R: cloneExpr(x.R, lm), Target: x.Target}
	case *Goto:
		return &Goto{Target: x.Target}
	case *Throw:
		return &Throw{Value: cloneExpr(x.Value, lm)}
	case *Nop:
		return &Nop{}
	case *EnterMonitor:
		return &EnterMonitor{X: cloneExpr(x.X, lm)}
	case *ExitMonitor:
		return &ExitMonitor{X: cloneExpr(x.X, lm)}
	case *Raw:
		ins := make([]*bytecode.Instruction, len(x.Ins))
		for i, in := range x.Ins {
			cp := *in
			cp.SwitchKeys = append([]int32(nil), in.SwitchKeys...)
			cp.SwitchOffsets = append([]int32(nil), in.SwitchOffsets...)
			ins[i] = &cp
		}
		return &Raw{Ins: ins}
	}
	panic(fmt.Sprintf("jimple: cloneStmt of unknown %T", s))
}

// RetargetAfterRemoval rewrites branch targets in body after the
// statement at index idx was removed: targets past idx shift down by
// one; targets equal to idx now point at the statement that followed it
// (clamped to the last statement).
func RetargetAfterRemoval(body []Stmt, idx int) {
	adjust := func(t int) int {
		if t > idx {
			return t - 1
		}
		if t == idx {
			if t >= len(body) {
				return len(body) - 1
			}
		}
		return t
	}
	for _, s := range body {
		switch x := s.(type) {
		case *If:
			x.Target = adjust(x.Target)
		case *Goto:
			x.Target = adjust(x.Target)
		}
	}
}

// RetargetAfterInsertion shifts branch targets at or past idx up by one
// after a statement was inserted at idx.
func RetargetAfterInsertion(body []Stmt, idx int) {
	for _, s := range body {
		switch x := s.(type) {
		case *If:
			if x.Target >= idx {
				x.Target++
			}
		case *Goto:
			if x.Target >= idx {
				x.Target++
			}
		}
	}
}
