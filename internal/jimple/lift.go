package jimple

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/descriptor"
)

// Lift decompiles a classfile into the Jimple model. Class structure
// (names, flags, hierarchy, fields, method signatures, throws clauses)
// always lifts exactly. Method bodies are decompiled into typed
// statements when they match the statement shapes this package's
// lowering emits (and the common javac patterns built from them); any
// body the decompiler cannot type becomes a single opaque Raw statement
// that lowers back verbatim, so Lift∘Lower never loses code.
func Lift(f *classfile.File) (*Class, error) {
	name := f.Name()
	if name == "" {
		return nil, fmt.Errorf("jimple: classfile has no resolvable name")
	}
	c := &Class{
		Name:      name,
		Super:     f.SuperName(),
		Modifiers: f.AccessFlags,
		Major:     f.Major,
		Minor:     f.Minor,
		OrigPool:  f.Pool,
	}
	c.Interfaces = append(c.Interfaces, f.InterfaceNames()...)
	for _, a := range f.Attributes {
		if sf, ok := a.(*classfile.SourceFileAttr); ok {
			if n, ok := f.Pool.Utf8(sf.NameIndex); ok {
				c.SourceFile = n
			}
		}
	}
	for _, fl := range f.Fields {
		ft, err := descriptor.ParseField(fl.Descriptor(f.Pool))
		if err != nil {
			// Keep the field with an opaque object type; the mutator layer
			// may fix or further break it.
			ft = descriptor.Object("java/lang/Object")
		}
		c.Fields = append(c.Fields, &Field{
			Name:      fl.Name(f.Pool),
			Type:      ft,
			Modifiers: fl.AccessFlags,
		})
	}
	for _, mm := range f.Methods {
		md, err := descriptor.ParseMethod(mm.Descriptor(f.Pool))
		if err != nil {
			md = descriptor.Method{Return: descriptor.Void}
		}
		m := &Method{
			Name:      mm.Name(f.Pool),
			Params:    md.Params,
			Return:    md.Return,
			Modifiers: mm.AccessFlags,
		}
		if ex := mm.Exceptions(); ex != nil {
			for _, ci := range ex.Classes {
				if n, ok := f.Pool.ClassName(ci); ok {
					m.Throws = append(m.Throws, n)
				}
			}
		}
		if code := mm.Code(); code != nil {
			liftBody(f, m, code)
		}
		c.Methods = append(c.Methods, m)
	}
	return c, nil
}

// liftBody fills m.Body, either structured or as one Raw statement.
func liftBody(f *classfile.File, m *Method, code *classfile.CodeAttr) {
	if len(code.Code) == 0 {
		m.Body = []Stmt{}
		return
	}
	ins, err := bytecode.Decode(code.Code)
	if err != nil {
		// Undecodable code cannot round-trip as instructions; preserve
		// nothing and let the class reject (it would anyway).
		m.Body = []Stmt{}
		return
	}
	l := &lifter{f: f, m: m, code: code, ins: ins}
	if body, ok := l.structured(); ok {
		m.Locals = l.locals
		m.Body = body
		return
	}
	// Fallback: the whole body as one opaque block (exception handlers
	// are only representable this way).
	m.Locals = nil
	m.Body = []Stmt{&Raw{Ins: ins}}
	m.RawHandlers = append([]classfile.ExceptionHandler(nil), code.Handlers...)
	m.RawMaxStack = code.MaxStack
	m.RawMaxLocals = code.MaxLocals
}

// lifter decompiles one body.
type lifter struct {
	f      *classfile.File
	m      *Method
	code   *classfile.CodeAttr
	ins    []*bytecode.Instruction
	locals []*Local
	bySlot map[int]*Local
	tmpN   int
}

// localForSlot finds or creates the local bound to a slot.
func (l *lifter) localForSlot(slot int, t descriptor.Type) *Local {
	if lo, ok := l.bySlot[slot]; ok {
		return lo
	}
	lo := &Local{Name: fmt.Sprintf("r%d", slot), Type: t}
	l.bySlot[slot] = lo
	l.locals = append(l.locals, lo)
	return lo
}

func (l *lifter) newTemp(t descriptor.Type) *Local {
	l.tmpN++
	lo := &Local{Name: fmt.Sprintf("$t%d", l.tmpN), Type: t}
	l.locals = append(l.locals, lo)
	return lo
}

// structured attempts the typed decompilation. It returns ok=false when
// any part of the body falls outside the supported shapes.
func (l *lifter) structured() ([]Stmt, bool) {
	if len(l.code.Handlers) > 0 {
		return nil, false // traps only round-trip through Raw
	}
	l.bySlot = map[int]*Local{}

	// Identity prologue: bind receiver and parameters to their slots.
	var body []Stmt
	slot := 0
	if !l.m.IsStatic() {
		this := l.localForSlot(0, descriptor.Object(l.f.Name()))
		this.Name = "r0"
		body = append(body, &Identity{Target: this, Param: -1})
		slot = 1
	}
	for i, p := range l.m.Params {
		lo := l.localForSlot(slot, p)
		body = append(body, &Identity{Target: lo, Param: i})
		slot += p.Slots()
	}
	nIdentity := len(body)

	// Split into segments at stack-depth-zero boundaries.
	segStarts, ok := l.segment()
	if !ok {
		return nil, false
	}
	// Map each segment's starting pc to its statement index.
	pcToStmt := map[int]int{}
	for i, s := range segStarts {
		pcToStmt[l.ins[s].PC] = nIdentity + i
	}

	for i, start := range segStarts {
		end := len(l.ins)
		if i+1 < len(segStarts) {
			end = segStarts[i+1]
		}
		st, ok := l.liftSegment(l.ins[start:end], pcToStmt)
		if !ok {
			return nil, false
		}
		body = append(body, st)
	}
	return body, true
}

// segment computes instruction indices that start statements: points
// where the simulated stack depth is zero. All branch targets must land
// on segment starts.
func (l *lifter) segment() ([]int, bool) {
	depth := 0
	var starts []int
	startSet := map[int]bool{}
	for i, in := range l.ins {
		if depth == 0 {
			starts = append(starts, i)
			startSet[in.PC] = true
		}
		pop, push, ok := stackEffect(in, l.f.Pool)
		if !ok {
			return nil, false
		}
		depth += push - pop
		if depth < 0 {
			return nil, false
		}
		// Conditional/unconditional control transfer must occur at depth 0
		// so statements stay self-contained.
		if (in.Op.IsBranch() || in.Op.EndsBlock()) && depth != 0 {
			return nil, false
		}
	}
	if depth != 0 {
		return nil, false
	}
	// Branch targets must be statement starts.
	for _, in := range l.ins {
		for _, t := range in.Targets() {
			if !startSet[t] {
				return nil, false
			}
		}
	}
	return starts, true
}

// liftSegment converts one depth-0-to-depth-0 instruction run into a
// statement by symbolic stack evaluation.
func (l *lifter) liftSegment(seg []*bytecode.Instruction, pcToStmt map[int]int) (Stmt, bool) {
	cp := l.f.Pool
	var stack []Expr
	push := func(e Expr) { stack = append(stack, e) }
	pop := func() Expr {
		if len(stack) == 0 {
			return nil
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	target := func(in *bytecode.Instruction) (int, bool) {
		t, ok := pcToStmt[in.PC+int(in.Branch)]
		return t, ok
	}

	for idx, in := range seg {
		last := idx == len(seg)-1
		op := in.Op
		switch {
		case op == bytecode.Nop:
			if last && len(seg) == 1 {
				return &Nop{}, true
			}
		case op == bytecode.AconstNull:
			push(&NullConst{})
		case op >= bytecode.IconstM1 && op <= bytecode.Iconst5:
			push(&IntConst{V: int64(op) - int64(bytecode.Iconst0), Kind: 'I'})
		case op == bytecode.Lconst0 || op == bytecode.Lconst1:
			push(&IntConst{V: int64(op - bytecode.Lconst0), Kind: 'J'})
		case op >= bytecode.Fconst0 && op <= bytecode.Fconst2:
			push(&FloatConst{V: float64(op - bytecode.Fconst0), Kind: 'F'})
		case op == bytecode.Dconst0 || op == bytecode.Dconst1:
			push(&FloatConst{V: float64(op - bytecode.Dconst0), Kind: 'D'})
		case op == bytecode.Bipush || op == bytecode.Sipush:
			push(&IntConst{V: int64(in.Imm), Kind: 'I'})
		case op == bytecode.Ldc || op == bytecode.LdcW || op == bytecode.Ldc2W:
			c := cp.Get(in.CPIndex)
			if c == nil {
				return nil, false
			}
			switch c.Tag {
			case classfile.TagInteger:
				push(&IntConst{V: int64(c.Int), Kind: 'I'})
			case classfile.TagLong:
				push(&IntConst{V: c.Long, Kind: 'J'})
			case classfile.TagFloat:
				push(&FloatConst{V: float64(c.Float), Kind: 'F'})
			case classfile.TagDouble:
				push(&FloatConst{V: c.Double, Kind: 'D'})
			case classfile.TagString:
				s, _ := cp.Utf8(c.Ref1)
				push(&StringConst{V: s})
			case classfile.TagClass:
				n, _ := cp.Utf8(c.Ref1)
				push(&ClassConst{Name: n})
			default:
				return nil, false
			}

		case op >= bytecode.Iload && op <= bytecode.Aload: // xload with operand
			push(&UseLocal{L: l.localForSlot(int(in.Local), loadType(op))})
		case op >= bytecode.Iload0 && op <= bytecode.Aload3:
			base, slot := shortLoad(op)
			push(&UseLocal{L: l.localForSlot(slot, loadType(base))})

		case op == bytecode.Getstatic:
			cls, nm, d, ok := cp.MemberRef(in.CPIndex)
			if !ok {
				return nil, false
			}
			ft, err := descriptor.ParseField(d)
			if err != nil {
				return nil, false
			}
			push(&StaticFieldRef{Class: cls, Name: nm, Type: ft})
		case op == bytecode.Getfield:
			cls, nm, d, ok := cp.MemberRef(in.CPIndex)
			if !ok {
				return nil, false
			}
			ft, err := descriptor.ParseField(d)
			if err != nil {
				return nil, false
			}
			base, ok := pop().(*UseLocal)
			if !ok {
				return nil, false
			}
			push(&InstanceFieldRef{Base: base.L, Class: cls, Name: nm, Type: ft})

		case op == bytecode.New:
			n, ok := cp.ClassName(in.CPIndex)
			if !ok {
				return nil, false
			}
			push(&NewExpr{Class: n})
		case op == bytecode.Dup:
			top := pop()
			if top == nil {
				return nil, false
			}
			switch top.(type) {
			case *UseLocal, *IntConst, *FloatConst, *StringConst, *NullConst:
				push(top)
				push(top)
			default:
				return nil, false // dup of effectful expressions needs temps
			}
		case op == bytecode.Arraylength:
			x := pop()
			if x == nil {
				return nil, false
			}
			push(&ArrayLen{X: x})
		case op == bytecode.Newarray:
			size := pop()
			if size == nil {
				return nil, false
			}
			ft, err := descriptor.ParseField(in.ArrayTyp.Descriptor())
			if err != nil {
				return nil, false
			}
			push(&NewArrayExpr{Elem: ft, Size: size})
		case op == bytecode.Anewarray:
			n, ok := cp.ClassName(in.CPIndex)
			if !ok {
				return nil, false
			}
			size := pop()
			if size == nil {
				return nil, false
			}
			push(&NewArrayExpr{Elem: descriptor.Object(n), Size: size})
		case op == bytecode.Checkcast:
			n, ok := cp.ClassName(in.CPIndex)
			if !ok {
				return nil, false
			}
			x := pop()
			if x == nil {
				return nil, false
			}
			to := descriptor.Object(n)
			if len(n) > 0 && n[0] == '[' {
				if ft, err := descriptor.ParseField(n); err == nil {
					to = ft
				}
			}
			push(&Cast{X: x, To: to})
		case op == bytecode.Instanceof:
			n, ok := cp.ClassName(in.CPIndex)
			if !ok {
				return nil, false
			}
			x := pop()
			if x == nil {
				return nil, false
			}
			push(&InstanceOf{X: x, Of: n})

		case isBinop(op):
			r := pop()
			lv := pop()
			if r == nil || lv == nil {
				return nil, false
			}
			bop, kind := binopOf(op)
			push(&BinOp{Op: bop, L: lv, R: r, Kind: kind})
		case op == bytecode.Ineg || op == bytecode.Lneg || op == bytecode.Fneg || op == bytecode.Dneg:
			x := pop()
			if x == nil {
				return nil, false
			}
			kinds := map[bytecode.Opcode]byte{bytecode.Ineg: 'I', bytecode.Lneg: 'J', bytecode.Fneg: 'F', bytecode.Dneg: 'D'}
			push(&Neg{X: x, Kind: kinds[op]})
		case isPrimConv(op):
			x := pop()
			if x == nil {
				return nil, false
			}
			push(&Cast{X: x, To: convTarget(op)})
		case op == bytecode.Lcmp || op == bytecode.Fcmpl || op == bytecode.Fcmpg ||
			op == bytecode.Dcmpl || op == bytecode.Dcmpg:
			r := pop()
			lv := pop()
			if r == nil || lv == nil {
				return nil, false
			}
			kind := byte('J')
			if op == bytecode.Fcmpl || op == bytecode.Fcmpg {
				kind = 'F'
			} else if op == bytecode.Dcmpl || op == bytecode.Dcmpg {
				kind = 'D'
			}
			push(&BinOp{Op: OpCmp, L: lv, R: r, Kind: kind})

		case op >= bytecode.Iaload && op <= bytecode.Saload:
			i := pop()
			base, ok := pop().(*UseLocal)
			if i == nil || !ok {
				return nil, false
			}
			push(&ArrayRef{Base: base.L, Index: i, Elem: arrayElemOf(op)})

		case op.IsInvoke() && op != bytecode.Invokedynamic:
			cls, nm, d, ok := cp.MemberRef(in.CPIndex)
			if !ok {
				return nil, false
			}
			sig, err := descriptor.ParseMethod(d)
			if err != nil {
				return nil, false
			}
			args := make([]Expr, len(sig.Params))
			for i := len(args) - 1; i >= 0; i-- {
				args[i] = pop()
				if args[i] == nil {
					return nil, false
				}
			}
			inv := &Invoke{Class: cls, Name: nm, Sig: sig, Args: args}
			switch op {
			case bytecode.Invokestatic:
				inv.Kind = InvokeStatic
			case bytecode.Invokevirtual:
				inv.Kind = InvokeVirtual
			case bytecode.Invokespecial:
				inv.Kind = InvokeSpecial
			case bytecode.Invokeinterface:
				inv.Kind = InvokeInterface
			}
			if op != bytecode.Invokestatic {
				recv, ok := pop().(*UseLocal)
				if !ok {
					return nil, false
				}
				inv.Base = recv.L
			}
			if last {
				if !sig.Return.IsVoid() {
					return nil, false // value dropped implicitly? needs a pop
				}
				if len(stack) != 0 {
					return nil, false
				}
				return &InvokeStmt{Call: inv}, true
			}
			push(inv)
		case op == bytecode.Pop:
			x := pop()
			if x == nil {
				return nil, false
			}
			if inv, ok := x.(*Invoke); ok && last && len(stack) == 0 {
				return &InvokeStmt{Call: inv}, true
			}
			return nil, false
		case op == bytecode.Pop2:
			x := pop()
			if x == nil {
				return nil, false
			}
			if inv, ok := x.(*Invoke); ok && last && len(stack) == 0 {
				return &InvokeStmt{Call: inv}, true
			}
			return nil, false

		// --- terminators (must be last in the segment) ---------------------
		case op >= bytecode.Istore && op <= bytecode.Astore:
			v := pop()
			if v == nil || !last || len(stack) != 0 {
				return nil, false
			}
			lo := l.localForSlot(int(in.Local), storeType(op, v))
			return &Assign{LHS: &UseLocal{L: lo}, RHS: v}, true
		case op >= bytecode.Istore0 && op <= bytecode.Astore3:
			base, slot := shortStore(op)
			v := pop()
			if v == nil || !last || len(stack) != 0 {
				return nil, false
			}
			lo := l.localForSlot(slot, storeType(base, v))
			return &Assign{LHS: &UseLocal{L: lo}, RHS: v}, true
		case op == bytecode.Putstatic:
			cls, nm, d, ok := cp.MemberRef(in.CPIndex)
			if !ok {
				return nil, false
			}
			ft, err := descriptor.ParseField(d)
			if err != nil {
				return nil, false
			}
			v := pop()
			if v == nil || !last || len(stack) != 0 {
				return nil, false
			}
			return &Assign{LHS: &StaticFieldRef{Class: cls, Name: nm, Type: ft}, RHS: v}, true
		case op == bytecode.Putfield:
			cls, nm, d, ok := cp.MemberRef(in.CPIndex)
			if !ok {
				return nil, false
			}
			ft, err := descriptor.ParseField(d)
			if err != nil {
				return nil, false
			}
			v := pop()
			base, okb := pop().(*UseLocal)
			if v == nil || !okb || !last || len(stack) != 0 {
				return nil, false
			}
			return &Assign{LHS: &InstanceFieldRef{Base: base.L, Class: cls, Name: nm, Type: ft}, RHS: v}, true
		case op >= bytecode.Iastore && op <= bytecode.Sastore:
			v := pop()
			i := pop()
			base, okb := pop().(*UseLocal)
			if v == nil || i == nil || !okb || !last || len(stack) != 0 {
				return nil, false
			}
			return &Assign{LHS: &ArrayRef{Base: base.L, Index: i, Elem: arrayElemOf(op)}, RHS: v}, true
		case op == bytecode.Iinc:
			if !last || len(stack) != 0 {
				return nil, false
			}
			lo := l.localForSlot(int(in.Local), descriptor.Int)
			return &Assign{
				LHS: &UseLocal{L: lo},
				RHS: &BinOp{Op: OpAdd, L: &UseLocal{L: lo}, R: &IntConst{V: int64(in.Imm), Kind: 'I'}, Kind: 'I'},
			}, true
		case op == bytecode.Return:
			if !last || len(stack) != 0 {
				return nil, false
			}
			return &Return{}, true
		case op.IsReturn(): // value returns
			v := pop()
			if v == nil || !last || len(stack) != 0 {
				return nil, false
			}
			return &Return{Value: v}, true
		case op == bytecode.Athrow:
			v := pop()
			if v == nil || !last || len(stack) != 0 {
				return nil, false
			}
			return &Throw{Value: v}, true
		case op == bytecode.Goto:
			t, ok := target(in)
			if !ok || !last || len(stack) != 0 {
				return nil, false
			}
			return &Goto{Target: t}, true
		case op.IsConditionalBranch():
			t, ok := target(in)
			if !ok || !last {
				return nil, false
			}
			st, okc := liftCond(op, t, &stack)
			if !okc || len(stack) != 0 {
				return nil, false
			}
			return st, true
		case op == bytecode.Monitorenter:
			v := pop()
			if v == nil || !last || len(stack) != 0 {
				return nil, false
			}
			return &EnterMonitor{X: v}, true
		case op == bytecode.Monitorexit:
			v := pop()
			if v == nil || !last || len(stack) != 0 {
				return nil, false
			}
			return &ExitMonitor{X: v}, true

		default:
			return nil, false
		}
	}
	// A segment that ends without a recognised terminator (e.g. lone nop
	// already handled): only acceptable when nothing is pending.
	if len(stack) == 0 && len(seg) == 1 && seg[0].Op == bytecode.Nop {
		return &Nop{}, true
	}
	return nil, false
}

func liftCond(op bytecode.Opcode, target int, stack *[]Expr) (Stmt, bool) {
	pop := func() Expr {
		s := *stack
		if len(s) == 0 {
			return nil
		}
		e := s[len(s)-1]
		*stack = s[:len(s)-1]
		return e
	}
	cond := map[bytecode.Opcode]CondOp{
		bytecode.Ifeq: CondEq, bytecode.Ifne: CondNe, bytecode.Iflt: CondLt,
		bytecode.Ifge: CondGe, bytecode.Ifgt: CondGt, bytecode.Ifle: CondLe,
		bytecode.IfIcmpeq: CondEq, bytecode.IfIcmpne: CondNe, bytecode.IfIcmplt: CondLt,
		bytecode.IfIcmpge: CondGe, bytecode.IfIcmpgt: CondGt, bytecode.IfIcmple: CondLe,
		bytecode.IfAcmpeq: CondEq, bytecode.IfAcmpne: CondNe,
		bytecode.Ifnull: CondEq, bytecode.Ifnonnull: CondNe,
	}
	c, ok := cond[op]
	if !ok {
		return nil, false
	}
	switch op {
	case bytecode.Ifeq, bytecode.Ifne, bytecode.Iflt, bytecode.Ifge, bytecode.Ifgt, bytecode.Ifle:
		lv := pop()
		if lv == nil {
			return nil, false
		}
		return &If{Op: c, L: lv, R: &IntConst{V: 0, Kind: 'I'}, Target: target}, true
	case bytecode.Ifnull, bytecode.Ifnonnull:
		lv := pop()
		if lv == nil {
			return nil, false
		}
		return &If{Op: c, L: lv, R: &NullConst{}, Target: target}, true
	default:
		r := pop()
		lv := pop()
		if r == nil || lv == nil {
			return nil, false
		}
		return &If{Op: c, L: lv, R: r, Target: target}, true
	}
}

func loadType(base bytecode.Opcode) descriptor.Type {
	switch base {
	case bytecode.Iload:
		return descriptor.Int
	case bytecode.Lload:
		return descriptor.Long
	case bytecode.Fload:
		return descriptor.Float
	case bytecode.Dload:
		return descriptor.Double
	default:
		return descriptor.Object("java/lang/Object")
	}
}

func storeType(base bytecode.Opcode, v Expr) descriptor.Type {
	switch base {
	case bytecode.Istore:
		return descriptor.Int
	case bytecode.Lstore:
		return descriptor.Long
	case bytecode.Fstore:
		return descriptor.Float
	case bytecode.Dstore:
		return descriptor.Double
	}
	// Reference store: prefer a more precise type from the value.
	switch x := v.(type) {
	case *NewExpr:
		return descriptor.Object(x.Class)
	case *StringConst:
		return descriptor.Object("java/lang/String")
	case *Cast:
		return x.To
	case *StaticFieldRef:
		return x.Type
	case *InstanceFieldRef:
		return x.Type
	case *Invoke:
		return x.Sig.Return
	case *NewArrayExpr:
		return descriptor.Array(x.Elem, 1)
	}
	return descriptor.Object("java/lang/Object")
}

func shortLoad(op bytecode.Opcode) (bytecode.Opcode, int) {
	switch {
	case op >= bytecode.Iload0 && op <= bytecode.Iload3:
		return bytecode.Iload, int(op - bytecode.Iload0)
	case op >= bytecode.Lload0 && op <= bytecode.Lload3:
		return bytecode.Lload, int(op - bytecode.Lload0)
	case op >= bytecode.Fload0 && op <= bytecode.Fload3:
		return bytecode.Fload, int(op - bytecode.Fload0)
	case op >= bytecode.Dload0 && op <= bytecode.Dload3:
		return bytecode.Dload, int(op - bytecode.Dload0)
	default:
		return bytecode.Aload, int(op - bytecode.Aload0)
	}
}

func shortStore(op bytecode.Opcode) (bytecode.Opcode, int) {
	switch {
	case op >= bytecode.Istore0 && op <= bytecode.Istore3:
		return bytecode.Istore, int(op - bytecode.Istore0)
	case op >= bytecode.Lstore0 && op <= bytecode.Lstore3:
		return bytecode.Lstore, int(op - bytecode.Lstore0)
	case op >= bytecode.Fstore0 && op <= bytecode.Fstore3:
		return bytecode.Fstore, int(op - bytecode.Fstore0)
	case op >= bytecode.Dstore0 && op <= bytecode.Dstore3:
		return bytecode.Dstore, int(op - bytecode.Dstore0)
	default:
		return bytecode.Astore, int(op - bytecode.Astore0)
	}
}

func isBinop(op bytecode.Opcode) bool {
	return op >= bytecode.Iadd && op <= bytecode.Lxor && op != bytecode.Ineg &&
		op != bytecode.Lneg && op != bytecode.Fneg && op != bytecode.Dneg
}

func binopOf(op bytecode.Opcode) (BinOpKind, byte) {
	kind := byte('I')
	switch (op - bytecode.Iadd) % 4 {
	case 1:
		kind = 'J'
	case 2:
		kind = 'F'
	case 3:
		kind = 'D'
	}
	switch {
	case op >= bytecode.Iadd && op <= bytecode.Dadd:
		return OpAdd, kind
	case op >= bytecode.Isub && op <= bytecode.Dsub:
		return OpSub, kind
	case op >= bytecode.Imul && op <= bytecode.Dmul:
		return OpMul, kind
	case op >= bytecode.Idiv && op <= bytecode.Ddiv:
		return OpDiv, kind
	case op >= bytecode.Irem && op <= bytecode.Drem:
		return OpRem, kind
	case op == bytecode.Ishl || op == bytecode.Lshl:
		return OpShl, shiftKind(op, bytecode.Ishl)
	case op == bytecode.Ishr || op == bytecode.Lshr:
		return OpShr, shiftKind(op, bytecode.Ishr)
	case op == bytecode.Iushr || op == bytecode.Lushr:
		return OpUshr, shiftKind(op, bytecode.Iushr)
	case op == bytecode.Iand || op == bytecode.Land:
		return OpAnd, shiftKind(op, bytecode.Iand)
	case op == bytecode.Ior || op == bytecode.Lor:
		return OpOr, shiftKind(op, bytecode.Ior)
	case op == bytecode.Ixor || op == bytecode.Lxor:
		return OpXor, shiftKind(op, bytecode.Ixor)
	}
	return OpAdd, 'I'
}

func shiftKind(op, intForm bytecode.Opcode) byte {
	if op == intForm {
		return 'I'
	}
	return 'J'
}

func isPrimConv(op bytecode.Opcode) bool {
	return op >= bytecode.I2l && op <= bytecode.I2s
}

func convTarget(op bytecode.Opcode) descriptor.Type {
	switch op {
	case bytecode.I2l, bytecode.F2l, bytecode.D2l:
		return descriptor.Long
	case bytecode.I2f, bytecode.L2f, bytecode.D2f:
		return descriptor.Float
	case bytecode.I2d, bytecode.L2d, bytecode.F2d:
		return descriptor.Double
	case bytecode.I2b:
		return descriptor.Byte
	case bytecode.I2c:
		return descriptor.Char
	case bytecode.I2s:
		return descriptor.Short
	default:
		return descriptor.Int
	}
}

func arrayElemOf(op bytecode.Opcode) descriptor.Type {
	switch op {
	case bytecode.Iaload, bytecode.Iastore:
		return descriptor.Int
	case bytecode.Laload, bytecode.Lastore:
		return descriptor.Long
	case bytecode.Faload, bytecode.Fastore:
		return descriptor.Float
	case bytecode.Daload, bytecode.Dastore:
		return descriptor.Double
	case bytecode.Baload, bytecode.Bastore:
		return descriptor.Byte
	case bytecode.Caload, bytecode.Castore:
		return descriptor.Char
	case bytecode.Saload, bytecode.Sastore:
		return descriptor.Short
	default:
		return descriptor.Object("java/lang/Object")
	}
}
