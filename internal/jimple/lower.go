package jimple

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/descriptor"
)

// LowerCtx is a reusable lowering context. The per-method compiler
// scratch (slot map, instruction and relocation buffers, instruction
// arena, max-stack worklist) lives here and is recycled across methods
// and across Lower calls, so a long-lived caller — one campaign worker,
// say — pays for the buffers once instead of per class. A zero LowerCtx
// is ready to use; contexts are not safe for concurrent use. Lowering
// through a reused context produces bytes identical to a fresh one:
// reuse changes where scratch lives, never what is emitted.
type LowerCtx struct {
	lw lowerer
	ms maxStackScratch
}

// NewLowerCtx returns an empty reusable lowering context.
func NewLowerCtx() *LowerCtx { return &LowerCtx{} }

// Lower compiles the Jimple class into a classfile. Lowering is
// deliberately non-judgemental: a class holding illegal constructs
// (bad flags, type mismatches, dangling references) lowers into exactly
// the illegal classfile the fuzzer wants to feed the VMs. Errors are
// returned only when the container format cannot represent the class
// at all.
func Lower(c *Class) (*classfile.File, error) {
	var ctx LowerCtx
	return ctx.Lower(c)
}

// Lower compiles the Jimple class into a classfile, reusing the
// context's scratch buffers. See the package-level Lower for semantics.
func (ctx *LowerCtx) Lower(c *Class) (*classfile.File, error) {
	f := &classfile.File{
		Minor: c.Minor,
		Major: c.Major,
		Pool:  classfile.NewConstPool(),
	}
	f.AccessFlags = c.Modifiers
	f.ThisClass = f.Pool.AddClass(c.Name)
	if c.Super != "" {
		f.SuperClass = f.Pool.AddClass(c.Super)
	}
	for _, i := range c.Interfaces {
		f.Interfaces = append(f.Interfaces, f.Pool.AddClass(i))
	}
	for _, fl := range c.Fields {
		f.AddField(fl.Modifiers, fl.Name, fl.Type.String())
	}
	for _, m := range c.Methods {
		mem := f.AddMethod(m.Modifiers, m.Name, m.Descriptor())
		if len(m.Throws) > 0 {
			ex := &classfile.ExceptionsAttr{}
			for _, t := range m.Throws {
				ex.Classes = append(ex.Classes, f.Pool.AddClass(t))
			}
			mem.Attributes = append(mem.Attributes, ex)
		}
		if m.Body == nil {
			continue
		}
		code, err := ctx.lowerBody(f, c, m)
		if err != nil {
			return nil, fmt.Errorf("jimple: lowering %s.%s: %w", c.Name, m.Name, err)
		}
		mem.Attributes = append(mem.Attributes, code)
	}
	if c.SourceFile != "" {
		f.Attributes = append(f.Attributes, &classfile.SourceFileAttr{NameIndex: f.Pool.AddUtf8(c.SourceFile)})
	}
	return f, nil
}

// lowerer compiles one method body.
type lowerer struct {
	f     *classfile.File
	c     *Class
	m     *Method
	slots map[*Local]int
	next  int // next free local slot
	ins   []*bytecode.Instruction
	// reloc[i] is true when ins[i].Branch holds a *statement* index that
	// must be resolved to an instruction index before assembly. Raw
	// blocks pre-resolve their branches to instruction indices and are
	// marked false; bytecode.Assemble converts all instruction indices
	// to byte offsets.
	reloc     []bool
	stmtFirst []int
	// arena chunk-allocates the emitted instructions (one heap object
	// per 64 instead of per instruction). Chunks are replaced, never
	// regrown, so pointers handed out stay valid.
	arena []bytecode.Instruction
}

func (ctx *LowerCtx) lowerBody(f *classfile.File, c *Class, m *Method) (*classfile.CodeAttr, error) {
	// Reset the reused lowerer. Truncating ins/reloc/arena keeps their
	// capacity; nothing retains pointers into them once lowerBody
	// returns (the CodeAttr holds assembled bytes and copied entries).
	lw := &ctx.lw
	lw.f, lw.c, lw.m = f, c, m
	lw.next = 0
	if lw.slots == nil {
		lw.slots = make(map[*Local]int)
	} else {
		clear(lw.slots)
	}
	lw.ins = lw.ins[:0]
	lw.reloc = lw.reloc[:0]
	lw.arena = lw.arena[:0]

	// Slot layout: receiver, parameters (by descriptor), then the
	// remaining declared locals. Identity statements bind locals to the
	// receiver/parameter slots.
	if !m.IsStatic() {
		lw.next = 1 // slot 0 = this
	}
	paramSlot := make([]int, len(m.Params))
	for i, p := range m.Params {
		paramSlot[i] = lw.next
		lw.next += p.Slots()
	}
	for _, s := range m.Body {
		id, ok := s.(*Identity)
		if !ok || id.Target == nil {
			continue
		}
		if id.Param < 0 {
			lw.slots[id.Target] = 0
		} else if id.Param < len(paramSlot) {
			lw.slots[id.Target] = paramSlot[id.Param]
		}
		// An identity for a parameter beyond the list gets a fresh slot
		// lazily (reading it is a verification error — intended).
	}
	for _, l := range m.Locals {
		lw.slot(l)
	}

	// Compile statements.
	if cap(lw.stmtFirst) < len(m.Body)+1 {
		lw.stmtFirst = make([]int, len(m.Body)+1)
	} else {
		lw.stmtFirst = lw.stmtFirst[:len(m.Body)+1]
	}
	for i, s := range m.Body {
		lw.stmtFirst[i] = len(lw.ins)
		lw.stmt(s)
	}
	lw.stmtFirst[len(m.Body)] = len(lw.ins)

	// Resolve statement-index branches to instruction indices.
	insIndexOf := func(stmtIdx int) int {
		if stmtIdx < 0 {
			stmtIdx = 0
		}
		if stmtIdx >= len(lw.stmtFirst) {
			stmtIdx = len(lw.stmtFirst) - 1
		}
		k := lw.stmtFirst[stmtIdx]
		if k >= len(lw.ins) {
			k = len(lw.ins) - 1
		}
		if k < 0 {
			k = 0
		}
		return k
	}
	for i, in := range lw.ins {
		if !lw.reloc[i] {
			continue
		}
		if in.Op.IsBranch() {
			in.Branch = int32(insIndexOf(int(in.Branch)))
		}
	}

	if len(lw.ins) == 0 {
		// An empty body lowers to an empty (illegal) code array.
		return &classfile.CodeAttr{MaxStack: 0, MaxLocals: uint16(lw.next), Code: nil}, nil
	}

	code, err := bytecode.Assemble(lw.ins, true)
	if err != nil {
		return nil, err
	}
	maxStack := computeMaxStack(lw.ins, f.Pool, &ctx.ms)
	if int(m.RawMaxStack) > maxStack {
		maxStack = int(m.RawMaxStack)
	}
	maxLocals := lw.next
	if raw := maxRawLocal(lw.ins); raw+1 > maxLocals {
		maxLocals = raw + 2 // +2 keeps room for a wide value in the top slot
	}
	if int(m.RawMaxLocals) > maxLocals {
		maxLocals = int(m.RawMaxLocals)
	}
	attr := &classfile.CodeAttr{
		MaxStack:  uint16(maxStack),
		MaxLocals: uint16(maxLocals),
		Code:      code,
	}
	// Debug info: map each statement's first instruction to a pseudo
	// source line (its 1-based statement index), like Soot's Jimple line
	// tags. Tools and stack traces downstream get meaningful positions.
	var lnt classfile.LineNumberTableAttr
	lastPC := -1
	for si := 0; si < len(m.Body); si++ {
		ii := lw.stmtFirst[si]
		if ii >= len(lw.ins) {
			break
		}
		pc := lw.ins[ii].PC
		if pc == lastPC {
			continue // statement emitted no code (identity)
		}
		lastPC = pc
		lnt.Entries = append(lnt.Entries, classfile.LineNumberEntry{
			StartPC: uint16(pc),
			Line:    uint16(si + 1),
		})
	}
	if len(lnt.Entries) > 0 {
		attr.Attributes = append(attr.Attributes, &lnt)
	}
	// Exception handlers of a raw-lifted body carry over; their catch
	// types are re-interned into the fresh pool.
	for _, h := range m.RawHandlers {
		nh := h
		if h.CatchType != 0 && c.OrigPool != nil {
			nh.CatchType = internConst(f.Pool, c.OrigPool, h.CatchType)
		}
		attr.Handlers = append(attr.Handlers, nh)
	}
	return attr, nil
}

// maxRawLocal scans emitted instructions for the highest local slot a
// raw block touches, so max_locals covers slots the structured layout
// never allocated.
func maxRawLocal(ins []*bytecode.Instruction) int {
	maxSlot := -1
	for _, in := range ins {
		op := in.Op
		if op == bytecode.Wide {
			op = in.WideOp
		}
		info, ok := bytecode.Lookup(op)
		if !ok {
			continue
		}
		switch info.Kind {
		case bytecode.OpLocalByte, bytecode.OpIinc, bytecode.OpWide:
			if int(in.Local) > maxSlot {
				maxSlot = int(in.Local)
			}
		case bytecode.OpNone:
			if slot, ok := shortFormSlot(op); ok && slot > maxSlot {
				maxSlot = slot
			}
		}
	}
	return maxSlot
}

// shortFormSlot extracts the implicit slot of xload_N / xstore_N forms.
func shortFormSlot(op bytecode.Opcode) (int, bool) {
	if op >= bytecode.Iload0 && op <= bytecode.Aload3 {
		return int(op-bytecode.Iload0) % 4, true
	}
	if op >= bytecode.Istore0 && op <= bytecode.Astore3 {
		return int(op-bytecode.Istore0) % 4, true
	}
	return 0, false
}

// slot returns (allocating if needed) the local-variable slot of l.
func (lw *lowerer) slot(l *Local) int {
	if s, ok := lw.slots[l]; ok {
		return s
	}
	s := lw.next
	lw.slots[l] = s
	lw.next += l.Type.Slots()
	if l.Type.Slots() == 0 { // defensive: void-typed local still takes one
		lw.next++
	}
	return s
}

func (lw *lowerer) alloc(in bytecode.Instruction) *bytecode.Instruction {
	if len(lw.arena) == cap(lw.arena) {
		// Small first chunk (most method bodies are short), bigger
		// follow-ups for the occasional long body.
		n := 8
		if cap(lw.arena) >= 8 {
			n = 64
		}
		lw.arena = make([]bytecode.Instruction, 0, n)
	}
	lw.arena = append(lw.arena, in)
	return &lw.arena[len(lw.arena)-1]
}

func (lw *lowerer) emit(in bytecode.Instruction) {
	lw.ins = append(lw.ins, lw.alloc(in))
	lw.reloc = append(lw.reloc, false)
}

func (lw *lowerer) emitBranch(op bytecode.Opcode, stmtTarget int) {
	lw.ins = append(lw.ins, lw.alloc(bytecode.Instruction{Op: op, Branch: int32(stmtTarget)}))
	lw.reloc = append(lw.reloc, true)
}

func (lw *lowerer) op(op bytecode.Opcode) { lw.emit(bytecode.Instruction{Op: op}) }

func (lw *lowerer) cp(op bytecode.Opcode, idx uint16) {
	lw.emit(bytecode.Instruction{Op: op, CPIndex: idx})
}

// kindOf computes the computational kind of an expression:
// 'I','J','F','D','A' (or 'V' for void invokes).
func (lw *lowerer) kindOf(e Expr) byte {
	switch x := e.(type) {
	case *IntConst:
		return x.Kind
	case *FloatConst:
		return x.Kind
	case *StringConst, *NullConst, *ClassConst, *NewExpr, *NewArrayExpr:
		return 'A'
	case *UseLocal:
		return typeKind(x.L.Type)
	case *StaticFieldRef:
		return typeKind(x.Type)
	case *InstanceFieldRef:
		return typeKind(x.Type)
	case *ArrayRef:
		return typeKind(x.Elem)
	case *BinOp:
		return x.Kind
	case *Neg:
		return x.Kind
	case *Cast:
		return typeKind(x.To)
	case *InstanceOf:
		return 'I'
	case *ArrayLen:
		return 'I'
	case *Invoke:
		if x.Sig.Return.IsVoid() {
			return 'V'
		}
		return typeKind(x.Sig.Return)
	}
	return 'A'
}

func typeKind(t descriptor.Type) byte {
	if t.IsReference() {
		return 'A'
	}
	switch t.Kind {
	case 'J', 'F', 'D':
		return t.Kind
	case 'V':
		return 'V'
	default:
		return 'I'
	}
}

// loadLocal emits the load instruction for a slot of the given kind.
func (lw *lowerer) loadLocal(slot int, kind byte) {
	var base bytecode.Opcode
	switch kind {
	case 'I':
		base = bytecode.Iload
	case 'J':
		base = bytecode.Lload
	case 'F':
		base = bytecode.Fload
	case 'D':
		base = bytecode.Dload
	default:
		base = bytecode.Aload
	}
	lw.localOp(base, slot)
}

// storeLocal emits the store instruction for a slot of the given kind.
func (lw *lowerer) storeLocal(slot int, kind byte) {
	var base bytecode.Opcode
	switch kind {
	case 'I':
		base = bytecode.Istore
	case 'J':
		base = bytecode.Lstore
	case 'F':
		base = bytecode.Fstore
	case 'D':
		base = bytecode.Dstore
	default:
		base = bytecode.Astore
	}
	lw.localOp(base, slot)
}

// localOp emits the short form (xload_0..3) when available.
func (lw *lowerer) localOp(base bytecode.Opcode, slot int) {
	if slot >= 0 && slot <= 3 {
		var zero bytecode.Opcode
		switch base {
		case bytecode.Iload:
			zero = bytecode.Iload0
		case bytecode.Lload:
			zero = bytecode.Lload0
		case bytecode.Fload:
			zero = bytecode.Fload0
		case bytecode.Dload:
			zero = bytecode.Dload0
		case bytecode.Aload:
			zero = bytecode.Aload0
		case bytecode.Istore:
			zero = bytecode.Istore0
		case bytecode.Lstore:
			zero = bytecode.Lstore0
		case bytecode.Fstore:
			zero = bytecode.Fstore0
		case bytecode.Dstore:
			zero = bytecode.Dstore0
		case bytecode.Astore:
			zero = bytecode.Astore0
		}
		if zero != 0 {
			lw.op(zero + bytecode.Opcode(slot))
			return
		}
	}
	if slot > 255 {
		lw.emit(bytecode.Instruction{Op: bytecode.Wide, WideOp: base, Local: uint16(slot)})
		return
	}
	lw.emit(bytecode.Instruction{Op: base, Local: uint16(slot)})
}

// expr compiles an expression, leaving its value on the stack, and
// returns its kind.
func (lw *lowerer) expr(e Expr) byte {
	switch x := e.(type) {
	case *IntConst:
		if x.Kind == 'J' {
			switch x.V {
			case 0:
				lw.op(bytecode.Lconst0)
			case 1:
				lw.op(bytecode.Lconst1)
			default:
				lw.cp(bytecode.Ldc2W, lw.f.Pool.AddLong(x.V))
			}
			return 'J'
		}
		lw.pushInt(int32(x.V))
		return 'I'
	case *FloatConst:
		if x.Kind == 'D' {
			switch x.V {
			case 0:
				lw.op(bytecode.Dconst0)
			case 1:
				lw.op(bytecode.Dconst1)
			default:
				lw.cp(bytecode.Ldc2W, lw.f.Pool.AddDouble(x.V))
			}
			return 'D'
		}
		switch x.V {
		case 0:
			lw.op(bytecode.Fconst0)
		case 1:
			lw.op(bytecode.Fconst1)
		case 2:
			lw.op(bytecode.Fconst2)
		default:
			lw.ldc(lw.f.Pool.AddFloat(float32(x.V)))
		}
		return 'F'
	case *StringConst:
		lw.ldc(lw.f.Pool.AddString(x.V))
		return 'A'
	case *NullConst:
		lw.op(bytecode.AconstNull)
		return 'A'
	case *ClassConst:
		lw.ldc(lw.f.Pool.AddClass(x.Name))
		return 'A'
	case *UseLocal:
		k := typeKind(x.L.Type)
		lw.loadLocal(lw.slot(x.L), k)
		return k
	case *StaticFieldRef:
		lw.cp(bytecode.Getstatic, lw.f.Pool.AddFieldref(x.Class, x.Name, x.Type.String()))
		return typeKind(x.Type)
	case *InstanceFieldRef:
		lw.loadLocal(lw.slot(x.Base), 'A')
		lw.cp(bytecode.Getfield, lw.f.Pool.AddFieldref(x.Class, x.Name, x.Type.String()))
		return typeKind(x.Type)
	case *ArrayRef:
		lw.loadLocal(lw.slot(x.Base), 'A')
		lw.expr(x.Index)
		lw.op(arrayLoadOp(x.Elem))
		return typeKind(x.Elem)
	case *BinOp:
		if x.Op == OpCmp {
			k := lw.expr(x.L)
			lw.expr(x.R)
			switch k {
			case 'J':
				lw.op(bytecode.Lcmp)
			case 'F':
				lw.op(bytecode.Fcmpl)
			case 'D':
				lw.op(bytecode.Dcmpl)
			default:
				lw.op(bytecode.Isub) // int "cmp" degrades to subtraction
			}
			return 'I'
		}
		lw.expr(x.L)
		lw.expr(x.R)
		lw.op(binOpcode(x.Op, x.Kind))
		return x.Kind
	case *Neg:
		lw.expr(x.X)
		switch x.Kind {
		case 'J':
			lw.op(bytecode.Lneg)
		case 'F':
			lw.op(bytecode.Fneg)
		case 'D':
			lw.op(bytecode.Dneg)
		default:
			lw.op(bytecode.Ineg)
		}
		return x.Kind
	case *Cast:
		from := lw.expr(x.X)
		if x.To.IsReference() {
			name := x.To.ClassName
			if x.To.Dims > 0 {
				name = x.To.String()
			}
			lw.cp(bytecode.Checkcast, lw.f.Pool.AddClass(name))
			return 'A'
		}
		lw.primConvert(from, typeKind(x.To))
		return typeKind(x.To)
	case *InstanceOf:
		lw.expr(x.X)
		lw.cp(bytecode.Instanceof, lw.f.Pool.AddClass(x.Of))
		return 'I'
	case *NewExpr:
		lw.cp(bytecode.New, lw.f.Pool.AddClass(x.Class))
		return 'A'
	case *NewArrayExpr:
		lw.expr(x.Size)
		if x.Elem.IsReference() {
			name := x.Elem.ClassName
			if x.Elem.Dims > 0 {
				name = x.Elem.String()
			}
			lw.cp(bytecode.Anewarray, lw.f.Pool.AddClass(name))
		} else {
			lw.emit(bytecode.Instruction{Op: bytecode.Newarray, ArrayTyp: atypeOf(x.Elem)})
		}
		return 'A'
	case *ArrayLen:
		lw.expr(x.X)
		lw.op(bytecode.Arraylength)
		return 'I'
	case *Invoke:
		return lw.invoke(x)
	}
	// Unknown expression: leave the stack unbalanced (fuzzing noise).
	return 'A'
}

func (lw *lowerer) pushInt(v int32) {
	switch {
	case v >= -1 && v <= 5:
		lw.op(bytecode.Opcode(int(bytecode.Iconst0) + int(v)))
	case v >= -128 && v <= 127:
		lw.emit(bytecode.Instruction{Op: bytecode.Bipush, Imm: v})
	case v >= -32768 && v <= 32767:
		lw.emit(bytecode.Instruction{Op: bytecode.Sipush, Imm: v})
	default:
		lw.ldc(lw.f.Pool.AddInteger(v))
	}
}

func (lw *lowerer) ldc(idx uint16) {
	if idx <= 0xFF {
		lw.cp(bytecode.Ldc, idx)
	} else {
		lw.cp(bytecode.LdcW, idx)
	}
}

// primConvert emits the conversion opcode chain from one primitive kind
// to another (identity emits nothing; int-to-int subtypes emit i2b etc.
// only when the target type demands it, which typeKind already folded).
func (lw *lowerer) primConvert(from, to byte) {
	if from == to {
		return
	}
	type pair struct{ f, t byte }
	ops := map[pair]bytecode.Opcode{
		{'I', 'J'}: bytecode.I2l, {'I', 'F'}: bytecode.I2f, {'I', 'D'}: bytecode.I2d,
		{'J', 'I'}: bytecode.L2i, {'J', 'F'}: bytecode.L2f, {'J', 'D'}: bytecode.L2d,
		{'F', 'I'}: bytecode.F2i, {'F', 'J'}: bytecode.F2l, {'F', 'D'}: bytecode.F2d,
		{'D', 'I'}: bytecode.D2i, {'D', 'J'}: bytecode.D2l, {'D', 'F'}: bytecode.D2f,
	}
	if op, ok := ops[pair{from, to}]; ok {
		lw.op(op)
	}
	// Conversions involving references have no opcode; the resulting
	// type confusion is the mutation's point.
}

func (lw *lowerer) invoke(x *Invoke) byte {
	if x.Base != nil && x.Kind != InvokeStatic {
		lw.loadLocal(lw.slot(x.Base), 'A')
	}
	for _, a := range x.Args {
		lw.expr(a)
	}
	desc := x.Sig.String()
	switch x.Kind {
	case InvokeStatic:
		lw.cp(bytecode.Invokestatic, lw.f.Pool.AddMethodref(x.Class, x.Name, desc))
	case InvokeVirtual:
		lw.cp(bytecode.Invokevirtual, lw.f.Pool.AddMethodref(x.Class, x.Name, desc))
	case InvokeSpecial:
		lw.cp(bytecode.Invokespecial, lw.f.Pool.AddMethodref(x.Class, x.Name, desc))
	case InvokeInterface:
		count := 1 + x.Sig.ParamSlots()
		lw.emit(bytecode.Instruction{
			Op:      bytecode.Invokeinterface,
			CPIndex: lw.f.Pool.AddInterfaceMethodref(x.Class, x.Name, desc),
			Count:   byte(count),
		})
	}
	if x.Sig.Return.IsVoid() {
		return 'V'
	}
	return typeKind(x.Sig.Return)
}

// stmt compiles one statement.
func (lw *lowerer) stmt(s Stmt) {
	switch x := s.(type) {
	case *Identity:
		// Parameter binding is a slot-assignment fact; no code. An
		// identity for a parameter beyond the descriptor still allocates
		// a (never-written) slot so later reads are verifiably wrong.
		if x.Target != nil {
			lw.slot(x.Target)
		}
	case *Assign:
		switch lhs := x.LHS.(type) {
		case *UseLocal:
			k := typeKind(lhs.L.Type)
			rk := lw.expr(x.RHS)
			if rk != 'V' {
				lw.storeLocal(lw.slot(lhs.L), k)
			}
		case *StaticFieldRef:
			lw.expr(x.RHS)
			lw.cp(bytecode.Putstatic, lw.f.Pool.AddFieldref(lhs.Class, lhs.Name, lhs.Type.String()))
		case *InstanceFieldRef:
			lw.loadLocal(lw.slot(lhs.Base), 'A')
			lw.expr(x.RHS)
			lw.cp(bytecode.Putfield, lw.f.Pool.AddFieldref(lhs.Class, lhs.Name, lhs.Type.String()))
		case *ArrayRef:
			lw.loadLocal(lw.slot(lhs.Base), 'A')
			lw.expr(lhs.Index)
			lw.expr(x.RHS)
			lw.op(arrayStoreOp(lhs.Elem))
		}
	case *InvokeStmt:
		k := lw.invoke(x.Call)
		switch k {
		case 'V':
		case 'J', 'D':
			lw.op(bytecode.Pop2)
		default:
			lw.op(bytecode.Pop)
		}
	case *Return:
		if x.Value == nil {
			lw.op(bytecode.Return)
			return
		}
		k := lw.expr(x.Value)
		switch k {
		case 'I':
			lw.op(bytecode.Ireturn)
		case 'J':
			lw.op(bytecode.Lreturn)
		case 'F':
			lw.op(bytecode.Freturn)
		case 'D':
			lw.op(bytecode.Dreturn)
		default:
			lw.op(bytecode.Areturn)
		}
	case *If:
		lw.lowerIf(x)
	case *Goto:
		lw.emitBranch(bytecode.Goto, x.Target)
	case *Throw:
		lw.expr(x.Value)
		lw.op(bytecode.Athrow)
	case *Nop:
		lw.op(bytecode.Nop)
	case *EnterMonitor:
		lw.expr(x.X)
		lw.op(bytecode.Monitorenter)
	case *ExitMonitor:
		lw.expr(x.X)
		lw.op(bytecode.Monitorexit)
	case *Raw:
		lw.lowerRaw(x)
	}
}

func (lw *lowerer) lowerIf(x *If) {
	lk := lw.kindOf(x.L)
	// Reference comparisons.
	if lk == 'A' {
		if _, isNull := x.R.(*NullConst); isNull {
			lw.expr(x.L)
			if x.Op == CondEq {
				lw.emitBranch(bytecode.Ifnull, x.Target)
			} else {
				lw.emitBranch(bytecode.Ifnonnull, x.Target)
			}
			return
		}
		lw.expr(x.L)
		lw.expr(x.R)
		if x.Op == CondEq {
			lw.emitBranch(bytecode.IfAcmpeq, x.Target)
		} else {
			lw.emitBranch(bytecode.IfAcmpne, x.Target)
		}
		return
	}
	// Wide/float comparisons go through cmp then a zero branch.
	if lk == 'J' || lk == 'F' || lk == 'D' {
		lw.expr(x.L)
		lw.expr(x.R)
		switch lk {
		case 'J':
			lw.op(bytecode.Lcmp)
		case 'F':
			lw.op(bytecode.Fcmpl)
		case 'D':
			lw.op(bytecode.Dcmpl)
		}
		lw.emitBranch(zeroBranch(x.Op), x.Target)
		return
	}
	// Integer comparisons: use the single-operand form against zero.
	if rc, ok := x.R.(*IntConst); ok && rc.V == 0 && rc.Kind == 'I' {
		lw.expr(x.L)
		lw.emitBranch(zeroBranch(x.Op), x.Target)
		return
	}
	lw.expr(x.L)
	lw.expr(x.R)
	var op bytecode.Opcode
	switch x.Op {
	case CondEq:
		op = bytecode.IfIcmpeq
	case CondNe:
		op = bytecode.IfIcmpne
	case CondLt:
		op = bytecode.IfIcmplt
	case CondGe:
		op = bytecode.IfIcmpge
	case CondGt:
		op = bytecode.IfIcmpgt
	default:
		op = bytecode.IfIcmple
	}
	lw.emitBranch(op, x.Target)
}

func zeroBranch(op CondOp) bytecode.Opcode {
	switch op {
	case CondEq:
		return bytecode.Ifeq
	case CondNe:
		return bytecode.Ifne
	case CondLt:
		return bytecode.Iflt
	case CondGe:
		return bytecode.Ifge
	case CondGt:
		return bytecode.Ifgt
	default:
		return bytecode.Ifle
	}
}

// lowerRaw re-emits an opaque instruction block. Branches whose targets
// fall inside the block are converted to relocatable index form;
// branches escaping the block are clamped to the block's last
// instruction (fuzzing noise when a mutation tore the block apart).
func (lw *lowerer) lowerRaw(x *Raw) {
	base := len(lw.ins)
	origIndex := make(map[int]int, len(x.Ins)) // original pc -> new index
	for i, in := range x.Ins {
		origIndex[in.PC] = base + i
	}
	for _, in := range x.Ins {
		cp := *in
		cp.SwitchKeys = append([]int32(nil), in.SwitchKeys...)
		cp.SwitchOffsets = append([]int32(nil), in.SwitchOffsets...)
		// Re-intern constants referenced by the raw instruction into the
		// fresh pool.
		if lw.c.OrigPool != nil && cp.CPIndex != 0 {
			info, _ := bytecode.Lookup(cp.Op)
			switch info.Kind {
			case bytecode.OpCPByte, bytecode.OpCPShort, bytecode.OpInvokeInterface, bytecode.OpMultianewarray:
				cp.CPIndex = internConst(lw.f.Pool, lw.c.OrigPool, cp.CPIndex)
				if cp.Op == bytecode.Ldc && cp.CPIndex > 0xFF {
					cp.Op = bytecode.LdcW
				}
			}
		}
		if cp.Op.IsBranch() {
			if ni, ok := origIndex[in.PC+int(in.Branch)]; ok {
				cp.Branch = int32(ni)
			} else {
				cp.Branch = int32(base + len(x.Ins) - 1)
			}
		}
		if cp.Op == bytecode.Tableswitch || cp.Op == bytecode.Lookupswitch {
			fix := func(off int32) int32 {
				if ni, ok := origIndex[in.PC+int(off)]; ok {
					return int32(ni)
				}
				return int32(base + len(x.Ins) - 1)
			}
			cp.SwitchDefault = fix(in.SwitchDefault)
			for i := range cp.SwitchOffsets {
				cp.SwitchOffsets[i] = fix(in.SwitchOffsets[i])
			}
		}
		// reloc=false: branches now hold instruction indices, which the
		// assembler converts directly (the statement-index resolver must
		// not touch them).
		lw.ins = append(lw.ins, lw.alloc(cp))
		lw.reloc = append(lw.reloc, false)
	}
}

// internConst copies the constant at src[idx] into dst, returning its
// new index. Constants lowering cannot re-intern (method handles,
// invokedynamic) keep the original index, which may dangle — acceptable
// fuzzing noise for raw passthrough.
func internConst(dst, src *classfile.ConstPool, idx uint16) uint16 {
	c := src.Get(idx)
	if c == nil {
		return idx
	}
	switch c.Tag {
	case classfile.TagUtf8:
		return dst.AddUtf8(c.Str)
	case classfile.TagInteger:
		return dst.AddInteger(c.Int)
	case classfile.TagFloat:
		return dst.AddFloat(c.Float)
	case classfile.TagLong:
		return dst.AddLong(c.Long)
	case classfile.TagDouble:
		return dst.AddDouble(c.Double)
	case classfile.TagClass:
		if n, ok := src.ClassName(idx); ok {
			return dst.AddClass(n)
		}
	case classfile.TagString:
		if s, ok := src.Utf8(c.Ref1); ok {
			return dst.AddString(s)
		}
	case classfile.TagNameAndType:
		if n, d, ok := src.NameAndType(idx); ok {
			return dst.AddNameAndType(n, d)
		}
	case classfile.TagFieldref:
		if cl, n, d, ok := src.MemberRef(idx); ok {
			return dst.AddFieldref(cl, n, d)
		}
	case classfile.TagMethodref:
		if cl, n, d, ok := src.MemberRef(idx); ok {
			return dst.AddMethodref(cl, n, d)
		}
	case classfile.TagInterfaceMethodref:
		if cl, n, d, ok := src.MemberRef(idx); ok {
			return dst.AddInterfaceMethodref(cl, n, d)
		}
	}
	return idx
}

// binOpcode selects the arithmetic opcode for an operator and kind.
func binOpcode(op BinOpKind, kind byte) bytecode.Opcode {
	// The iadd family is laid out I, J, F, D consecutively.
	off := bytecode.Opcode(0)
	switch kind {
	case 'J':
		off = 1
	case 'F':
		off = 2
	case 'D':
		off = 3
	}
	intOnly := func(i, l bytecode.Opcode) bytecode.Opcode {
		if kind == 'J' {
			return l
		}
		return i
	}
	switch op {
	case OpAdd:
		return bytecode.Iadd + off
	case OpSub:
		return bytecode.Isub + off
	case OpMul:
		return bytecode.Imul + off
	case OpDiv:
		return bytecode.Idiv + off
	case OpRem:
		return bytecode.Irem + off
	case OpShl:
		return intOnly(bytecode.Ishl, bytecode.Lshl)
	case OpShr:
		return intOnly(bytecode.Ishr, bytecode.Lshr)
	case OpUshr:
		return intOnly(bytecode.Iushr, bytecode.Lushr)
	case OpAnd:
		return intOnly(bytecode.Iand, bytecode.Land)
	case OpOr:
		return intOnly(bytecode.Ior, bytecode.Lor)
	case OpXor:
		return intOnly(bytecode.Ixor, bytecode.Lxor)
	}
	return bytecode.Iadd + off
}

func arrayLoadOp(elem descriptor.Type) bytecode.Opcode {
	if elem.IsReference() {
		return bytecode.Aaload
	}
	switch elem.Kind {
	case 'B', 'Z':
		return bytecode.Baload
	case 'C':
		return bytecode.Caload
	case 'S':
		return bytecode.Saload
	case 'J':
		return bytecode.Laload
	case 'F':
		return bytecode.Faload
	case 'D':
		return bytecode.Daload
	default:
		return bytecode.Iaload
	}
}

func arrayStoreOp(elem descriptor.Type) bytecode.Opcode {
	if elem.IsReference() {
		return bytecode.Aastore
	}
	switch elem.Kind {
	case 'B', 'Z':
		return bytecode.Bastore
	case 'C':
		return bytecode.Castore
	case 'S':
		return bytecode.Sastore
	case 'J':
		return bytecode.Lastore
	case 'F':
		return bytecode.Fastore
	case 'D':
		return bytecode.Dastore
	default:
		return bytecode.Iastore
	}
}

func atypeOf(elem descriptor.Type) bytecode.ArrayTypeCode {
	switch elem.Kind {
	case 'Z':
		return bytecode.TBoolean
	case 'C':
		return bytecode.TChar
	case 'F':
		return bytecode.TFloat
	case 'D':
		return bytecode.TDouble
	case 'B':
		return bytecode.TByte
	case 'S':
		return bytecode.TShort
	case 'J':
		return bytecode.TLong
	default:
		return bytecode.TInt
	}
}

// maxStackScratch holds computeMaxStack's working storage so a reused
// LowerCtx does not reallocate it per method.
type maxStackScratch struct {
	pcIdx map[int]int
	depth []int
	work  []int
}

// reset sizes the scratch for n instructions and returns the cleared
// pc index, the depth array (all -1), and the empty worklist. The
// caller stores the worklist back after use to keep its capacity.
func (sc *maxStackScratch) reset(n int) (map[int]int, []int, []int) {
	if sc.pcIdx == nil {
		sc.pcIdx = make(map[int]int, n)
	} else {
		clear(sc.pcIdx)
	}
	if cap(sc.depth) < n {
		sc.depth = make([]int, n)
	} else {
		sc.depth = sc.depth[:n]
	}
	for i := range sc.depth {
		sc.depth[i] = -1
	}
	return sc.pcIdx, sc.depth, sc.work[:0]
}

// computeMaxStack simulates stack depth over the assembled instructions
// to set max_stack. The instructions must already carry final PCs and
// byte-offset branch targets (i.e. have been through Assemble), so they
// are identical to what decoding the emitted code would yield. On any
// irregularity it returns a generous default — the real verifier (in
// internal/jvm) is the arbiter of validity.
func computeMaxStack(ins []*bytecode.Instruction, cp *classfile.ConstPool, sc *maxStackScratch) int {
	const fallback = 16
	if len(ins) == 0 {
		return fallback
	}
	pcIdx, depth, work := sc.reset(len(ins))
	defer func() { sc.work = work }()
	for i, in := range ins {
		pcIdx[in.PC] = i
	}
	maxD := 0
	depth[0] = 0
	work = append(work, 0)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		in := ins[i]
		d := depth[i]
		pop, push, ok := stackEffect(in, cp)
		if !ok {
			return fallback
		}
		nd := d - pop
		if nd < 0 {
			return fallback
		}
		nd += push
		if nd > maxD {
			maxD = nd
		}
		propagate := func(j, dep int) {
			if j < 0 || j >= len(ins) {
				return
			}
			if depth[j] == -1 {
				depth[j] = dep
				work = append(work, j)
			}
		}
		if !in.Op.EndsBlock() {
			propagate(i+1, nd)
		}
		for _, t := range in.Targets() {
			if j, ok := pcIdx[t]; ok {
				propagate(j, nd)
			} else {
				return fallback
			}
		}
	}
	return maxD
}

// stackEffect resolves an instruction's pop/push slot counts, consulting
// the pool for descriptor-dependent instructions.
func stackEffect(in *bytecode.Instruction, cp *classfile.ConstPool) (pop, push int, ok bool) {
	op := in.Op
	if op == bytecode.Wide {
		op = in.WideOp
	}
	info, found := bytecode.Lookup(op)
	if !found {
		return 0, 0, false
	}
	fixed := func(v int8) (int, bool) {
		if v == bytecode.VariableStack {
			return 0, false
		}
		return int(v), true
	}
	if p, okp := fixed(info.Pop); okp {
		if q, okq := fixed(info.Push); okq {
			return p, q, true
		}
	}
	switch op {
	case bytecode.Getstatic, bytecode.Getfield, bytecode.Putstatic, bytecode.Putfield:
		_, _, desc, okr := cp.MemberRef(in.CPIndex)
		if !okr {
			return 0, 0, false
		}
		ft, err := descriptor.ParseField(desc)
		if err != nil {
			return 0, 0, false
		}
		n := ft.Slots()
		switch op {
		case bytecode.Getstatic:
			return 0, n, true
		case bytecode.Getfield:
			return 1, n, true
		case bytecode.Putstatic:
			return n, 0, true
		default:
			return n + 1, 0, true
		}
	case bytecode.Invokevirtual, bytecode.Invokespecial, bytecode.Invokestatic, bytecode.Invokeinterface:
		_, _, desc, okr := cp.MemberRef(in.CPIndex)
		if !okr {
			return 0, 0, false
		}
		md, err := descriptor.ParseMethod(desc)
		if err != nil {
			return 0, 0, false
		}
		pop := md.ParamSlots()
		if op != bytecode.Invokestatic {
			pop++
		}
		return pop, md.Return.Slots(), true
	case bytecode.Invokedynamic:
		c := cp.Get(in.CPIndex)
		if c == nil {
			return 0, 0, false
		}
		_, desc, okr := cp.NameAndType(c.Ref2)
		if !okr {
			return 0, 0, false
		}
		md, err := descriptor.ParseMethod(desc)
		if err != nil {
			return 0, 0, false
		}
		return md.ParamSlots(), md.Return.Slots(), true
	case bytecode.Multianewarray:
		return int(in.Count), 1, true
	}
	return 0, 0, false
}
