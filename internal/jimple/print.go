package jimple

import (
	"fmt"
	"strings"

	"repro/internal/classfile"
)

// Print renders the class in the textual Jimple style the paper's
// figures use (e.g. Figure in Table 2: `r0 := @parameter0: ...`,
// `virtualinvoke $r1.<java.io.PrintStream: void println(...)>("x")`).
func Print(c *Class) string {
	var b strings.Builder
	mods := modifierWords(c.Modifiers, true)
	kw := "class"
	if c.IsInterface() {
		kw = "interface"
	}
	fmt.Fprintf(&b, "%s%s %s", mods, kw, dots(c.Name))
	if c.Super != "" {
		fmt.Fprintf(&b, " extends %s", dots(c.Super))
	}
	if len(c.Interfaces) > 0 {
		var is []string
		for _, i := range c.Interfaces {
			is = append(is, dots(i))
		}
		fmt.Fprintf(&b, " implements %s", strings.Join(is, ", "))
	}
	b.WriteString("\n{\n")
	for _, f := range c.Fields {
		fmt.Fprintf(&b, "    %s%s %s;\n", modifierWords(f.Modifiers, false), f.Type.Java(), f.Name)
	}
	if len(c.Fields) > 0 && len(c.Methods) > 0 {
		b.WriteString("\n")
	}
	for i, m := range c.Methods {
		if i > 0 {
			b.WriteString("\n")
		}
		printMethod(&b, m)
	}
	b.WriteString("}\n")
	return b.String()
}

func printMethod(b *strings.Builder, m *Method) {
	var params []string
	for _, p := range m.Params {
		params = append(params, p.Java())
	}
	fmt.Fprintf(b, "    %s%s %s(%s)", modifierWords(m.Modifiers, false), m.Return.Java(), m.Name, strings.Join(params, ", "))
	if len(m.Throws) > 0 {
		var ts []string
		for _, t := range m.Throws {
			ts = append(ts, dots(t))
		}
		fmt.Fprintf(b, " throws %s", strings.Join(ts, ", "))
	}
	if m.Body == nil {
		b.WriteString(";\n")
		return
	}
	b.WriteString("\n    {\n")
	for _, l := range m.Locals {
		fmt.Fprintf(b, "        %s %s;\n", l.Type.Java(), l.Name)
	}
	if len(m.Locals) > 0 {
		b.WriteString("\n")
	}
	// Label any statement that is a branch target.
	labels := map[int]string{}
	for _, s := range m.Body {
		switch x := s.(type) {
		case *If:
			if _, ok := labels[x.Target]; !ok {
				labels[x.Target] = fmt.Sprintf("label%d", len(labels)+1)
			}
		case *Goto:
			if _, ok := labels[x.Target]; !ok {
				labels[x.Target] = fmt.Sprintf("label%d", len(labels)+1)
			}
		}
	}
	for i, s := range m.Body {
		if lbl, ok := labels[i]; ok {
			fmt.Fprintf(b, "     %s:\n", lbl)
		}
		fmt.Fprintf(b, "        %s;\n", StmtString(s, labels))
	}
	b.WriteString("    }\n")
}

// StmtString renders one statement; labels maps branch-target indices
// to label names (pass nil to print raw indices).
func StmtString(s Stmt, labels map[int]string) string {
	target := func(t int) string {
		if labels != nil {
			if l, ok := labels[t]; ok {
				return l
			}
		}
		return fmt.Sprintf("[%d]", t)
	}
	switch x := s.(type) {
	case *Identity:
		if x.Param < 0 {
			return fmt.Sprintf("%s := @this: %s", x.Target.Name, x.Target.Type.Java())
		}
		return fmt.Sprintf("%s := @parameter%d: %s", x.Target.Name, x.Param, x.Target.Type.Java())
	case *Assign:
		return fmt.Sprintf("%s = %s", ExprString(x.LHS.(Expr)), ExprString(x.RHS))
	case *InvokeStmt:
		return ExprString(x.Call)
	case *Return:
		if x.Value == nil {
			return "return"
		}
		return "return " + ExprString(x.Value)
	case *If:
		return fmt.Sprintf("if %s %s %s goto %s", ExprString(x.L), x.Op, ExprString(x.R), target(x.Target))
	case *Goto:
		return "goto " + target(x.Target)
	case *Throw:
		return "throw " + ExprString(x.Value)
	case *Nop:
		return "nop"
	case *EnterMonitor:
		return "entermonitor " + ExprString(x.X)
	case *ExitMonitor:
		return "exitmonitor " + ExprString(x.X)
	case *Raw:
		var ops []string
		for _, in := range x.Ins {
			ops = append(ops, in.Op.Mnemonic())
		}
		return fmt.Sprintf("raw {%s}", strings.Join(ops, " "))
	}
	return fmt.Sprintf("<unknown stmt %T>", s)
}

// ExprString renders one expression in Jimple syntax.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return "<nil>"
	case *IntConst:
		if x.Kind == 'J' {
			return fmt.Sprintf("%dL", x.V)
		}
		return fmt.Sprintf("%d", x.V)
	case *FloatConst:
		if x.Kind == 'F' {
			return fmt.Sprintf("%gF", x.V)
		}
		return fmt.Sprintf("%g", x.V)
	case *StringConst:
		return fmt.Sprintf("%q", x.V)
	case *NullConst:
		return "null"
	case *ClassConst:
		return "class " + dots(x.Name)
	case *UseLocal:
		return x.L.Name
	case *StaticFieldRef:
		return fmt.Sprintf("<%s: %s %s>", dots(x.Class), x.Type.Java(), x.Name)
	case *InstanceFieldRef:
		return fmt.Sprintf("%s.<%s: %s %s>", x.Base.Name, dots(x.Class), x.Type.Java(), x.Name)
	case *ArrayRef:
		return fmt.Sprintf("%s[%s]", x.Base.Name, ExprString(x.Index))
	case *BinOp:
		return fmt.Sprintf("%s %s %s", ExprString(x.L), x.Op, ExprString(x.R))
	case *Neg:
		return "neg " + ExprString(x.X)
	case *Cast:
		return fmt.Sprintf("(%s) %s", x.To.Java(), ExprString(x.X))
	case *InstanceOf:
		return fmt.Sprintf("%s instanceof %s", ExprString(x.X), dots(x.Of))
	case *NewExpr:
		return "new " + dots(x.Class)
	case *NewArrayExpr:
		return fmt.Sprintf("newarray (%s)[%s]", x.Elem.Java(), ExprString(x.Size))
	case *ArrayLen:
		return "lengthof " + ExprString(x.X)
	case *Invoke:
		return invokeString(x)
	}
	return fmt.Sprintf("<unknown expr %T>", e)
}

func invokeString(x *Invoke) string {
	var args []string
	for _, a := range x.Args {
		args = append(args, ExprString(a))
	}
	var params []string
	for _, p := range x.Sig.Params {
		params = append(params, p.Java())
	}
	sig := fmt.Sprintf("<%s: %s %s(%s)>", dots(x.Class), x.Sig.Return.Java(), x.Name, strings.Join(params, ","))
	switch x.Kind {
	case InvokeStatic:
		return fmt.Sprintf("staticinvoke %s(%s)", sig, strings.Join(args, ", "))
	case InvokeVirtual:
		return fmt.Sprintf("virtualinvoke %s.%s(%s)", x.Base.Name, sig, strings.Join(args, ", "))
	case InvokeSpecial:
		return fmt.Sprintf("specialinvoke %s.%s(%s)", x.Base.Name, sig, strings.Join(args, ", "))
	case InvokeInterface:
		return fmt.Sprintf("interfaceinvoke %s.%s(%s)", x.Base.Name, sig, strings.Join(args, ", "))
	}
	return "<invoke?>"
}

func dots(internal string) string { return strings.ReplaceAll(internal, "/", ".") }

// modifierWords renders access flags as Java-source modifier keywords
// with a trailing space (empty for no flags).
func modifierWords(f classfile.Flags, classCtx bool) string {
	var w []string
	if f.Has(classfile.AccPublic) {
		w = append(w, "public")
	}
	if f.Has(classfile.AccPrivate) {
		w = append(w, "private")
	}
	if f.Has(classfile.AccProtected) {
		w = append(w, "protected")
	}
	if f.Has(classfile.AccStatic) {
		w = append(w, "static")
	}
	if f.Has(classfile.AccFinal) {
		w = append(w, "final")
	}
	if !classCtx {
		if f.Has(classfile.AccSynchronized) {
			w = append(w, "synchronized")
		}
		if f.Has(classfile.AccVolatile) {
			w = append(w, "volatile")
		}
		if f.Has(classfile.AccTransient) {
			w = append(w, "transient")
		}
		if f.Has(classfile.AccNative) {
			w = append(w, "native")
		}
	}
	if f.Has(classfile.AccAbstract) {
		w = append(w, "abstract")
	}
	if len(w) == 0 {
		return ""
	}
	return strings.Join(w, " ") + " "
}
