// Package rtlib simulates the Java runtime library environments the
// paper calls e in r = jvm(e, c, i): a registry of platform classes with
// their hierarchy, flags and accessibility. Three release variants
// (JRE7/JRE8/JRE9 plus the GNU Classpath library used by GIJ) differ in
// exactly the ways that produced the paper's compatibility
// discrepancies: classes present in one release and absent in another,
// classes final in one release but not in another, and sun.* classes
// inaccessible under the Java 9 module system.
package rtlib

import "strings"

// Release identifies a runtime library version.
type Release int

// Library releases paired with the five VM presets.
const (
	JRE7 Release = iota
	JRE8
	JRE9
	Classpath // GNU Classpath, the library GIJ interprets against
)

// String returns the human name of the release.
func (r Release) String() string {
	switch r {
	case JRE7:
		return "JRE7"
	case JRE8:
		return "JRE8"
	case JRE9:
		return "JRE9"
	case Classpath:
		return "GNU-Classpath"
	}
	return "JRE?"
}

// MethodInfo is one platform method the simulator knows about.
type MethodInfo struct {
	Name string
	Desc string
	// Static marks static methods; the interpreter needs the distinction.
	Static bool
}

// FieldInfo is one platform field the simulator knows about.
type FieldInfo struct {
	Name   string
	Desc   string
	Static bool
}

// ClassInfo describes one platform class.
type ClassInfo struct {
	Name       string // internal name
	Super      string // internal name, "" for java/lang/Object
	Interfaces []string
	Interface  bool // declared as an interface
	Final      bool
	Abstract   bool
	// Accessible is false for classes that exist but may not be linked
	// against from user code (package-private, synthetic inner classes,
	// or module-encapsulated sun.* classes in JRE9).
	Accessible bool
	Methods    []MethodInfo
	Fields     []FieldInfo
}

// HasMethod reports whether the class declares the named method.
func (c *ClassInfo) HasMethod(name, desc string) bool {
	for _, m := range c.Methods {
		if m.Name == name && m.Desc == desc {
			return true
		}
	}
	return false
}

// HasField reports whether the class declares the named field.
func (c *ClassInfo) HasField(name, desc string) bool {
	for _, f := range c.Fields {
		if f.Name == name && f.Desc == desc {
			return true
		}
	}
	return false
}

// Env is one runtime library environment.
type Env struct {
	Release Release
	classes map[string]*ClassInfo
}

// NewEnv builds the class registry for a release.
func NewEnv(r Release) *Env {
	e := &Env{Release: r, classes: make(map[string]*ClassInfo, 256)}
	e.populate()
	return e
}

// Lookup finds a platform class by internal name. Array types resolve
// to a pseudo-class that subclasses Object.
func (e *Env) Lookup(name string) (*ClassInfo, bool) {
	if strings.HasPrefix(name, "[") {
		return &ClassInfo{
			Name:       name,
			Super:      "java/lang/Object",
			Interfaces: []string{"java/lang/Cloneable", "java/io/Serializable"},
			Accessible: true,
			Final:      true,
		}, true
	}
	c, ok := e.classes[name]
	return c, ok
}

// Contains reports whether the class exists in this release at all
// (accessible or not).
func (e *Env) Contains(name string) bool {
	_, ok := e.Lookup(name)
	return ok
}

// ClassNames returns all registered class names (unordered).
func (e *Env) ClassNames() []string {
	out := make([]string, 0, len(e.classes))
	for n := range e.classes {
		out = append(out, n)
	}
	return out
}

// IsSubclassOf walks the superclass chain (classes only; use Implements
// for interfaces). A class is a subclass of itself.
func (e *Env) IsSubclassOf(sub, super string) bool {
	for cur := sub; cur != ""; {
		if cur == super {
			return true
		}
		c, ok := e.Lookup(cur)
		if !ok {
			return false
		}
		cur = c.Super
	}
	return false
}

// Implements reports whether class name (or any superclass) lists iface
// in its interface closure.
func (e *Env) Implements(name, iface string) bool {
	seen := map[string]bool{}
	var walk func(n string) bool
	walk = func(n string) bool {
		if n == "" || seen[n] {
			return false
		}
		seen[n] = true
		if n == iface {
			return true
		}
		c, ok := e.Lookup(n)
		if !ok {
			return false
		}
		for _, i := range c.Interfaces {
			if walk(i) {
				return true
			}
		}
		return walk(c.Super)
	}
	return walk(name)
}

// IsThrowable reports whether the class descends from java/lang/Throwable.
func (e *Env) IsThrowable(name string) bool {
	return e.IsSubclassOf(name, "java/lang/Throwable")
}

// AssignableTo reports whether a value of class `from` can be assigned
// to a variable of class/interface `to` using only platform-class
// knowledge. Unknown classes are not assignable to anything but Object.
func (e *Env) AssignableTo(from, to string) bool {
	if from == to || to == "java/lang/Object" {
		return true
	}
	if e.IsSubclassOf(from, to) {
		return true
	}
	return e.Implements(from, to)
}

func (e *Env) add(c *ClassInfo) { e.classes[c.Name] = c }

// cls is a terse constructor for registry population.
func cls(name, super string, opts ...func(*ClassInfo)) *ClassInfo {
	c := &ClassInfo{Name: name, Super: super, Accessible: true}
	for _, o := range opts {
		o(c)
	}
	return c
}

func iface(names ...string) func(*ClassInfo) {
	return func(c *ClassInfo) { c.Interfaces = append(c.Interfaces, names...) }
}

func isInterface(c *ClassInfo)  { c.Interface = true; c.Abstract = true }
func isFinal(c *ClassInfo)      { c.Final = true }
func isAbstract(c *ClassInfo)   { c.Abstract = true }
func inaccessible(c *ClassInfo) { c.Accessible = false }

func methods(ms ...MethodInfo) func(*ClassInfo) {
	return func(c *ClassInfo) { c.Methods = append(c.Methods, ms...) }
}

func fields(fs ...FieldInfo) func(*ClassInfo) {
	return func(c *ClassInfo) { c.Fields = append(c.Fields, fs...) }
}

func (e *Env) populate() {
	// --- java.lang core -------------------------------------------------
	e.add(cls("java/lang/Object", "", methods(
		MethodInfo{Name: "<init>", Desc: "()V"},
		MethodInfo{Name: "toString", Desc: "()Ljava/lang/String;"},
		MethodInfo{Name: "hashCode", Desc: "()I"},
		MethodInfo{Name: "equals", Desc: "(Ljava/lang/Object;)Z"},
		MethodInfo{Name: "getClass", Desc: "()Ljava/lang/Class;"},
		MethodInfo{Name: "getBoolean", Desc: "(Ljava/util/Map;)Z", Static: true},
	)))
	e.add(cls("java/lang/String", "java/lang/Object", isFinal,
		iface("java/io/Serializable", "java/lang/Comparable", "java/lang/CharSequence"),
		methods(
			MethodInfo{Name: "length", Desc: "()I"},
			MethodInfo{Name: "charAt", Desc: "(I)C"},
			MethodInfo{Name: "concat", Desc: "(Ljava/lang/String;)Ljava/lang/String;"},
			MethodInfo{Name: "valueOf", Desc: "(I)Ljava/lang/String;", Static: true},
			MethodInfo{Name: "equals", Desc: "(Ljava/lang/Object;)Z"},
		)))
	e.add(cls("java/lang/Class", "java/lang/Object", isFinal))
	e.add(cls("java/lang/System", "java/lang/Object", isFinal,
		fields(FieldInfo{Name: "out", Desc: "Ljava/io/PrintStream;", Static: true},
			FieldInfo{Name: "err", Desc: "Ljava/io/PrintStream;", Static: true}),
		methods(MethodInfo{Name: "currentTimeMillis", Desc: "()J", Static: true},
			MethodInfo{Name: "exit", Desc: "(I)V", Static: true})))
	e.add(cls("java/lang/Thread", "java/lang/Object", iface("java/lang/Runnable"), methods(
		MethodInfo{Name: "<init>", Desc: "()V"},
		MethodInfo{Name: "start", Desc: "()V"},
		MethodInfo{Name: "run", Desc: "()V"},
	)))
	e.add(cls("java/lang/Runnable", "java/lang/Object", isInterface, methods(
		MethodInfo{Name: "run", Desc: "()V"})))
	e.add(cls("java/lang/Comparable", "java/lang/Object", isInterface))
	e.add(cls("java/lang/CharSequence", "java/lang/Object", isInterface))
	e.add(cls("java/lang/Iterable", "java/lang/Object", isInterface))
	e.add(cls("java/lang/Cloneable", "java/lang/Object", isInterface))
	e.add(cls("java/lang/AutoCloseable", "java/lang/Object", isInterface))
	e.add(cls("java/lang/Number", "java/lang/Object", isAbstract, iface("java/io/Serializable")))
	e.add(cls("java/lang/Integer", "java/lang/Number", isFinal, iface("java/lang/Comparable"), methods(
		MethodInfo{Name: "valueOf", Desc: "(I)Ljava/lang/Integer;", Static: true},
		MethodInfo{Name: "intValue", Desc: "()I"},
		MethodInfo{Name: "parseInt", Desc: "(Ljava/lang/String;)I", Static: true},
	)))
	e.add(cls("java/lang/Long", "java/lang/Number", isFinal, iface("java/lang/Comparable")))
	e.add(cls("java/lang/Float", "java/lang/Number", isFinal, iface("java/lang/Comparable")))
	e.add(cls("java/lang/Double", "java/lang/Number", isFinal, iface("java/lang/Comparable")))
	e.add(cls("java/lang/Short", "java/lang/Number", isFinal, iface("java/lang/Comparable")))
	e.add(cls("java/lang/Byte", "java/lang/Number", isFinal, iface("java/lang/Comparable")))
	e.add(cls("java/lang/Character", "java/lang/Object", isFinal, iface("java/lang/Comparable")))
	e.add(cls("java/lang/Boolean", "java/lang/Object", isFinal, iface("java/io/Serializable")))
	e.add(cls("java/lang/Math", "java/lang/Object", isFinal, methods(
		MethodInfo{Name: "abs", Desc: "(I)I", Static: true},
		MethodInfo{Name: "max", Desc: "(II)I", Static: true},
		MethodInfo{Name: "min", Desc: "(II)I", Static: true},
	)))
	e.add(cls("java/lang/StringBuilder", "java/lang/Object", isFinal, methods(
		MethodInfo{Name: "<init>", Desc: "()V"},
		MethodInfo{Name: "append", Desc: "(Ljava/lang/String;)Ljava/lang/StringBuilder;"},
		MethodInfo{Name: "append", Desc: "(I)Ljava/lang/StringBuilder;"},
		MethodInfo{Name: "toString", Desc: "()Ljava/lang/String;"},
	)))
	e.add(cls("java/lang/StringBuffer", "java/lang/Object", isFinal))
	e.add(cls("java/lang/Enum", "java/lang/Object", isAbstract, iface("java/lang/Comparable", "java/io/Serializable")))
	e.add(cls("java/lang/ClassLoader", "java/lang/Object", isAbstract))
	e.add(cls("java/lang/Runtime", "java/lang/Object"))
	e.add(cls("java/lang/Process", "java/lang/Object", isAbstract))
	e.add(cls("java/lang/Void", "java/lang/Object", isFinal))

	// --- throwables -----------------------------------------------------
	e.add(cls("java/lang/Throwable", "java/lang/Object", iface("java/io/Serializable"), methods(
		MethodInfo{Name: "<init>", Desc: "()V"},
		MethodInfo{Name: "<init>", Desc: "(Ljava/lang/String;)V"},
		MethodInfo{Name: "getMessage", Desc: "()Ljava/lang/String;"},
	)))
	throwables := []struct{ name, super string }{
		{"java/lang/Exception", "java/lang/Throwable"},
		{"java/lang/Error", "java/lang/Throwable"},
		{"java/lang/RuntimeException", "java/lang/Exception"},
		{"java/lang/ArithmeticException", "java/lang/RuntimeException"},
		{"java/lang/NullPointerException", "java/lang/RuntimeException"},
		{"java/lang/ClassCastException", "java/lang/RuntimeException"},
		{"java/lang/ArrayIndexOutOfBoundsException", "java/lang/RuntimeException"},
		{"java/lang/IllegalArgumentException", "java/lang/RuntimeException"},
		{"java/lang/IllegalStateException", "java/lang/RuntimeException"},
		{"java/lang/UnsupportedOperationException", "java/lang/RuntimeException"},
		{"java/lang/NegativeArraySizeException", "java/lang/RuntimeException"},
		{"java/lang/InterruptedException", "java/lang/Exception"},
		{"java/lang/CloneNotSupportedException", "java/lang/Exception"},
		{"java/lang/ReflectiveOperationException", "java/lang/Exception"},
		{"java/lang/ClassNotFoundException", "java/lang/ReflectiveOperationException"},
		{"java/lang/LinkageError", "java/lang/Error"},
		{"java/lang/ClassFormatError", "java/lang/LinkageError"},
		{"java/lang/ClassCircularityError", "java/lang/LinkageError"},
		{"java/lang/NoClassDefFoundError", "java/lang/LinkageError"},
		{"java/lang/VerifyError", "java/lang/LinkageError"},
		{"java/lang/IncompatibleClassChangeError", "java/lang/LinkageError"},
		{"java/lang/AbstractMethodError", "java/lang/IncompatibleClassChangeError"},
		{"java/lang/IllegalAccessError", "java/lang/IncompatibleClassChangeError"},
		{"java/lang/InstantiationError", "java/lang/IncompatibleClassChangeError"},
		{"java/lang/NoSuchFieldError", "java/lang/IncompatibleClassChangeError"},
		{"java/lang/NoSuchMethodError", "java/lang/IncompatibleClassChangeError"},
		{"java/lang/UnsatisfiedLinkError", "java/lang/LinkageError"},
		{"java/lang/ExceptionInInitializerError", "java/lang/LinkageError"},
		{"java/lang/StackOverflowError", "java/lang/Error"},
		{"java/lang/OutOfMemoryError", "java/lang/Error"},
		{"java/lang/InternalError", "java/lang/Error"},
		{"java/io/IOException", "java/lang/Exception"},
		{"java/io/FileNotFoundException", "java/io/IOException"},
		{"java/util/MissingResourceException", "java/lang/RuntimeException"},
		{"java/util/NoSuchElementException", "java/lang/RuntimeException"},
		{"java/util/ConcurrentModificationException", "java/lang/RuntimeException"},
	}
	for _, tw := range throwables {
		e.add(cls(tw.name, tw.super, methods(
			MethodInfo{Name: "<init>", Desc: "()V"},
			MethodInfo{Name: "<init>", Desc: "(Ljava/lang/String;)V"},
		)))
	}

	// --- java.io ----------------------------------------------------------
	e.add(cls("java/io/Serializable", "java/lang/Object", isInterface))
	e.add(cls("java/io/Closeable", "java/lang/Object", isInterface, iface("java/lang/AutoCloseable")))
	e.add(cls("java/io/Flushable", "java/lang/Object", isInterface))
	e.add(cls("java/io/OutputStream", "java/lang/Object", isAbstract, iface("java/io/Closeable", "java/io/Flushable")))
	e.add(cls("java/io/FilterOutputStream", "java/io/OutputStream"))
	e.add(cls("java/io/PrintStream", "java/io/FilterOutputStream", methods(
		MethodInfo{Name: "println", Desc: "(Ljava/lang/String;)V"},
		MethodInfo{Name: "println", Desc: "(I)V"},
		MethodInfo{Name: "println", Desc: "(J)V"},
		MethodInfo{Name: "println", Desc: "(Z)V"},
		MethodInfo{Name: "println", Desc: "(Ljava/lang/Object;)V"},
		MethodInfo{Name: "println", Desc: "()V"},
		MethodInfo{Name: "print", Desc: "(Ljava/lang/String;)V"},
		MethodInfo{Name: "print", Desc: "(I)V"},
	)))
	e.add(cls("java/io/InputStream", "java/lang/Object", isAbstract, iface("java/io/Closeable")))
	e.add(cls("java/io/Reader", "java/lang/Object", isAbstract, iface("java/io/Closeable")))
	e.add(cls("java/io/Writer", "java/lang/Object", isAbstract, iface("java/io/Closeable", "java/io/Flushable")))
	e.add(cls("java/io/File", "java/lang/Object", iface("java/io/Serializable", "java/lang/Comparable")))

	// --- java.util ---------------------------------------------------------
	e.add(cls("java/util/Collection", "java/lang/Object", isInterface, iface("java/lang/Iterable")))
	e.add(cls("java/util/List", "java/lang/Object", isInterface, iface("java/util/Collection")))
	e.add(cls("java/util/Set", "java/lang/Object", isInterface, iface("java/util/Collection")))
	e.add(cls("java/util/Map", "java/lang/Object", isInterface))
	e.add(cls("java/util/Iterator", "java/lang/Object", isInterface))
	e.add(cls("java/util/Enumeration", "java/lang/Object", isInterface))
	e.add(cls("java/util/AbstractCollection", "java/lang/Object", isAbstract, iface("java/util/Collection")))
	e.add(cls("java/util/AbstractList", "java/util/AbstractCollection", isAbstract, iface("java/util/List")))
	e.add(cls("java/util/ArrayList", "java/util/AbstractList", iface("java/util/List", "java/lang/Cloneable", "java/io/Serializable"), methods(
		MethodInfo{Name: "<init>", Desc: "()V"},
		MethodInfo{Name: "add", Desc: "(Ljava/lang/Object;)Z"},
		MethodInfo{Name: "size", Desc: "()I"},
		MethodInfo{Name: "get", Desc: "(I)Ljava/lang/Object;"},
	)))
	e.add(cls("java/util/AbstractMap", "java/lang/Object", isAbstract, iface("java/util/Map")))
	e.add(cls("java/util/HashMap", "java/util/AbstractMap", iface("java/util/Map", "java/lang/Cloneable", "java/io/Serializable"), methods(
		MethodInfo{Name: "<init>", Desc: "()V"},
		MethodInfo{Name: "put", Desc: "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;"},
		MethodInfo{Name: "get", Desc: "(Ljava/lang/Object;)Ljava/lang/Object;"},
	)))
	e.add(cls("java/util/Hashtable", "java/lang/Object", iface("java/util/Map", "java/lang/Cloneable", "java/io/Serializable")))
	e.add(cls("java/util/Vector", "java/util/AbstractList", iface("java/util/List")))
	e.add(cls("java/util/Properties", "java/util/Hashtable"))
	e.add(cls("java/util/Random", "java/lang/Object", iface("java/io/Serializable")))
	e.add(cls("java/util/Date", "java/lang/Object", iface("java/io/Serializable", "java/lang/Cloneable", "java/lang/Comparable")))
	e.add(cls("java/util/Locale", "java/lang/Object", isFinal, iface("java/lang/Cloneable", "java/io/Serializable")))

	// --- wider java.io ------------------------------------------------------
	e.add(cls("java/io/ByteArrayOutputStream", "java/io/OutputStream"))
	e.add(cls("java/io/ByteArrayInputStream", "java/io/InputStream"))
	e.add(cls("java/io/FilterInputStream", "java/io/InputStream"))
	e.add(cls("java/io/BufferedInputStream", "java/io/FilterInputStream"))
	e.add(cls("java/io/DataInputStream", "java/io/FilterInputStream", iface("java/io/DataInput")))
	e.add(cls("java/io/DataInput", "java/lang/Object", isInterface))
	e.add(cls("java/io/DataOutput", "java/lang/Object", isInterface))
	e.add(cls("java/io/DataOutputStream", "java/io/FilterOutputStream", iface("java/io/DataOutput")))
	e.add(cls("java/io/BufferedReader", "java/io/Reader"))
	e.add(cls("java/io/InputStreamReader", "java/io/Reader"))
	e.add(cls("java/io/StringWriter", "java/io/Writer"))
	e.add(cls("java/io/PrintWriter", "java/io/Writer"))
	e.add(cls("java/io/ObjectInput", "java/lang/Object", isInterface, iface("java/io/DataInput")))
	e.add(cls("java/io/ObjectOutput", "java/lang/Object", isInterface, iface("java/io/DataOutput")))
	e.add(cls("java/io/Externalizable", "java/lang/Object", isInterface, iface("java/io/Serializable")))

	// --- wider java.util ------------------------------------------------------
	e.add(cls("java/util/Queue", "java/lang/Object", isInterface, iface("java/util/Collection")))
	e.add(cls("java/util/Deque", "java/lang/Object", isInterface, iface("java/util/Queue")))
	e.add(cls("java/util/SortedMap", "java/lang/Object", isInterface, iface("java/util/Map")))
	e.add(cls("java/util/SortedSet", "java/lang/Object", isInterface, iface("java/util/Set")))
	e.add(cls("java/util/NavigableMap", "java/lang/Object", isInterface, iface("java/util/SortedMap")))
	e.add(cls("java/util/AbstractSet", "java/util/AbstractCollection", isAbstract, iface("java/util/Set")))
	e.add(cls("java/util/HashSet", "java/util/AbstractSet", iface("java/util/Set", "java/lang/Cloneable", "java/io/Serializable")))
	e.add(cls("java/util/TreeMap", "java/util/AbstractMap", iface("java/util/NavigableMap", "java/lang/Cloneable", "java/io/Serializable")))
	e.add(cls("java/util/LinkedList", "java/util/AbstractList", iface("java/util/List", "java/util/Deque", "java/lang/Cloneable", "java/io/Serializable")))
	e.add(cls("java/util/Stack", "java/util/Vector"))
	e.add(cls("java/util/BitSet", "java/lang/Object", iface("java/lang/Cloneable", "java/io/Serializable")))
	e.add(cls("java/util/Calendar", "java/lang/Object", isAbstract, iface("java/io/Serializable", "java/lang/Cloneable", "java/lang/Comparable")))
	e.add(cls("java/util/GregorianCalendar", "java/util/Calendar"))
	e.add(cls("java/util/Comparator", "java/lang/Object", isInterface))
	e.add(cls("java/util/Observable", "java/lang/Object"))
	e.add(cls("java/util/Scanner", "java/lang/Object", isFinal, iface("java/util/Iterator", "java/io/Closeable")))
	e.add(cls("java/util/StringTokenizer", "java/lang/Object", iface("java/util/Enumeration")))
	e.add(cls("java/util/ResourceBundle", "java/lang/Object", isAbstract))
	e.add(cls("java/util/TimeZone", "java/lang/Object", isAbstract, iface("java/io/Serializable", "java/lang/Cloneable")))
	e.add(cls("java/util/UUID", "java/lang/Object", isFinal, iface("java/io/Serializable", "java/lang/Comparable")))

	// --- java.lang extras / reflection / text / net -----------------------------
	e.add(cls("java/lang/ThreadGroup", "java/lang/Object"))
	e.add(cls("java/lang/ThreadLocal", "java/lang/Object"))
	e.add(cls("java/lang/SecurityManager", "java/lang/Object"))
	e.add(cls("java/lang/Package", "java/lang/Object"))
	e.add(cls("java/lang/ProcessBuilder", "java/lang/Object", isFinal))
	e.add(cls("java/lang/reflect/Field", "java/lang/Object", isFinal, iface("java/lang/reflect/Member")))
	e.add(cls("java/lang/reflect/Method", "java/lang/Object", isFinal, iface("java/lang/reflect/Member")))
	e.add(cls("java/lang/reflect/Constructor", "java/lang/Object", isFinal, iface("java/lang/reflect/Member")))
	e.add(cls("java/lang/reflect/Modifier", "java/lang/Object"))
	e.add(cls("java/lang/ref/Reference", "java/lang/Object", isAbstract))
	e.add(cls("java/lang/ref/WeakReference", "java/lang/ref/Reference"))
	e.add(cls("java/lang/ref/SoftReference", "java/lang/ref/Reference"))
	e.add(cls("java/text/Format", "java/lang/Object", isAbstract, iface("java/io/Serializable", "java/lang/Cloneable")))
	e.add(cls("java/text/DateFormat", "java/text/Format", isAbstract))
	e.add(cls("java/text/SimpleDateFormat", "java/text/DateFormat"))
	e.add(cls("java/text/NumberFormat", "java/text/Format", isAbstract))
	e.add(cls("java/net/URL", "java/lang/Object", isFinal, iface("java/io/Serializable")))
	e.add(cls("java/net/URI", "java/lang/Object", isFinal, iface("java/lang/Comparable", "java/io/Serializable")))
	e.add(cls("java/net/Socket", "java/lang/Object", iface("java/io/Closeable")))
	e.add(cls("java/net/ServerSocket", "java/lang/Object", iface("java/io/Closeable")))
	e.add(cls("java/net/InetAddress", "java/lang/Object", iface("java/io/Serializable")))
	e.add(cls("java/nio/Buffer", "java/lang/Object", isAbstract))
	e.add(cls("java/nio/ByteBuffer", "java/nio/Buffer", isAbstract, iface("java/lang/Comparable")))
	e.add(cls("java/util/concurrent/ConcurrentHashMap", "java/util/AbstractMap", iface("java/util/concurrent/ConcurrentMap", "java/io/Serializable")))
	e.add(cls("java/util/concurrent/ConcurrentMap", "java/lang/Object", isInterface, iface("java/util/Map")))
	e.add(cls("java/util/concurrent/Callable", "java/lang/Object", isInterface))
	e.add(cls("java/util/concurrent/Executor", "java/lang/Object", isInterface))
	e.add(cls("java/util/concurrent/ExecutorService", "java/lang/Object", isInterface, iface("java/util/concurrent/Executor")))
	e.add(cls("java/util/concurrent/Future", "java/lang/Object", isInterface))
	e.add(cls("java/util/concurrent/TimeUnit", "java/lang/Enum", isFinal))

	// --- java.security / misc interfaces used by mutators ------------------
	e.add(cls("java/security/PrivilegedAction", "java/lang/Object", isInterface))
	e.add(cls("java/security/PrivilegedExceptionAction", "java/lang/Object", isInterface))
	e.add(cls("java/lang/reflect/Member", "java/lang/Object", isInterface))
	e.add(cls("java/util/EventListener", "java/lang/Object", isInterface))
	e.add(cls("java/util/Observer", "java/lang/Object", isInterface))

	// --- release-skewed classes (the compatibility channel) ----------------
	// com.sun.beans.editors.EnumEditor: non-final in JRE7, final from JRE8
	// (the paper's VerifyError example for sun.beans.editors.EnumEditor).
	enumEditor := cls("com/sun/beans/editors/EnumEditor", "java/lang/Object")
	if e.Release == JRE8 || e.Release == JRE9 {
		enumEditor.Final = true
	}
	e.add(enumEditor)
	e.add(cls("sun/beans/editors/EnumEditor", "com/sun/beans/editors/EnumEditor"))

	// sun.java2d.pisces.PiscesRenderingEngine and its synthetic enum-init
	// inner class $2 (package-private; the paper's IllegalAccessError case).
	e.add(cls("sun/java2d/pisces/RenderingEngine", "java/lang/Object", isAbstract))
	e.add(cls("sun/java2d/pisces/PiscesRenderingEngine", "sun/java2d/pisces/RenderingEngine"))
	e.add(cls("sun/java2d/pisces/PiscesRenderingEngine$2", "java/lang/Object", inaccessible))

	// Classes present in JRE7 but removed later: mutants referencing them
	// load on the 7 environment and throw NoClassDefFoundError elsewhere.
	if e.Release == JRE7 || e.Release == Classpath {
		e.add(cls("sun/misc/Lock", "java/lang/Object"))
		e.add(cls("sun/tools/jar/Main7", "java/lang/Object"))
		e.add(cls("com/sun/legacy/Jre7Only", "java/lang/Object"))
	}
	if e.Release == JRE7 || e.Release == JRE8 {
		e.add(cls("sun/misc/BASE64Encoder", "java/lang/Object"))
		e.add(cls("sun/misc/Unsafe", "java/lang/Object", isFinal))
	}

	// Classes introduced in JRE8: absent under 7 and Classpath.
	if e.Release == JRE8 || e.Release == JRE9 {
		e.add(cls("java/util/Optional", "java/lang/Object", isFinal))
		e.add(cls("java/util/function/Function", "java/lang/Object", isInterface))
		e.add(cls("java/util/function/Supplier", "java/lang/Object", isInterface))
		e.add(cls("java/util/stream/Stream", "java/lang/Object", isInterface))
		e.add(cls("java/time/Instant", "java/lang/Object", isFinal, iface("java/lang/Comparable", "java/io/Serializable")))
	}
	// Classes introduced in JRE9 only.
	if e.Release == JRE9 {
		e.add(cls("java/lang/Module", "java/lang/Object", isFinal))
		e.add(cls("java/lang/StackWalker", "java/lang/Object", isFinal))
	}

	// GNU Classpath (GIJ) lacks most com.sun/sun internals.
	if e.Release == Classpath {
		delete(e.classes, "com/sun/beans/editors/EnumEditor")
		delete(e.classes, "sun/beans/editors/EnumEditor")
		delete(e.classes, "sun/misc/Unsafe")
		delete(e.classes, "sun/misc/BASE64Encoder")
		// Classpath keeps the pisces classes (it has its own Graphics2D
		// pipeline with equivalent names in this simulation) but does not
		// enforce their accessibility — GIJ's leniency, modelled in the
		// VM policy rather than here.
	}

	// The Java 9 module system encapsulates sun.* and com.sun.* types:
	// they exist but are inaccessible to unnamed-module user classes.
	if e.Release == JRE9 {
		for name, c := range e.classes {
			if strings.HasPrefix(name, "sun/") || strings.HasPrefix(name, "com/sun/") {
				c.Accessible = false
			}
		}
	}
}
