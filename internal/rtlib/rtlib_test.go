package rtlib

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHierarchyBasics(t *testing.T) {
	e := NewEnv(JRE7)
	if !e.IsSubclassOf("java/lang/String", "java/lang/Object") {
		t.Error("String must be a subclass of Object")
	}
	if !e.IsSubclassOf("java/lang/NullPointerException", "java/lang/Throwable") {
		t.Error("NPE must descend from Throwable")
	}
	if e.IsSubclassOf("java/lang/Object", "java/lang/String") {
		t.Error("Object is not a subclass of String")
	}
	if !e.IsSubclassOf("java/lang/Object", "java/lang/Object") {
		t.Error("a class is a subclass of itself")
	}
}

func TestImplements(t *testing.T) {
	e := NewEnv(JRE7)
	cases := []struct {
		cls, iface string
		want       bool
	}{
		{"java/lang/String", "java/io/Serializable", true},
		{"java/lang/String", "java/lang/CharSequence", true},
		{"java/util/ArrayList", "java/util/Collection", true}, // via List
		{"java/util/ArrayList", "java/lang/Iterable", true},   // via Collection
		{"java/lang/Thread", "java/lang/Runnable", true},
		{"java/lang/Object", "java/io/Serializable", false},
		{"java/util/HashMap", "java/util/Map", true},
		{"java/io/PrintStream", "java/io/Closeable", true}, // via OutputStream super chain
	}
	for _, c := range cases {
		if got := e.Implements(c.cls, c.iface); got != c.want {
			t.Errorf("Implements(%s, %s) = %v, want %v", c.cls, c.iface, got, c.want)
		}
	}
}

func TestIsThrowable(t *testing.T) {
	e := NewEnv(JRE8)
	for _, n := range []string{"java/lang/Exception", "java/lang/Error", "java/lang/VerifyError", "java/io/IOException"} {
		if !e.IsThrowable(n) {
			t.Errorf("%s should be throwable", n)
		}
	}
	for _, n := range []string{"java/lang/String", "java/util/Map", "sun/java2d/pisces/PiscesRenderingEngine$2"} {
		if e.IsThrowable(n) {
			t.Errorf("%s should not be throwable", n)
		}
	}
}

func TestAssignableTo(t *testing.T) {
	e := NewEnv(JRE7)
	if !e.AssignableTo("java/lang/String", "java/lang/Object") {
		t.Error("String -> Object")
	}
	if !e.AssignableTo("java/util/ArrayList", "java/util/List") {
		t.Error("ArrayList -> List")
	}
	if e.AssignableTo("java/lang/String", "java/util/Map") {
		t.Error("String must not be assignable to Map")
	}
	if e.AssignableTo("java/lang/Boolean", "java/util/Enumeration") {
		t.Error("Boolean must not be assignable to Enumeration (the paper's missed-cast case)")
	}
}

func TestArrayPseudoClasses(t *testing.T) {
	e := NewEnv(JRE7)
	c, ok := e.Lookup("[I")
	if !ok {
		t.Fatal("array types must resolve")
	}
	if c.Super != "java/lang/Object" || !c.Final {
		t.Error("array pseudo-class shape wrong")
	}
	if !e.AssignableTo("[Ljava/lang/String;", "java/lang/Object") {
		t.Error("arrays assign to Object")
	}
	if !e.Implements("[I", "java/lang/Cloneable") {
		t.Error("arrays implement Cloneable")
	}
}

func TestReleaseSkewEnumEditorFinal(t *testing.T) {
	// The paper: sun.beans.editors.EnumEditor triggers VerifyError on
	// JRE8 because its superclass became final.
	for _, r := range []Release{JRE7, JRE8, JRE9} {
		e := NewEnv(r)
		c, ok := e.Lookup("com/sun/beans/editors/EnumEditor")
		if !ok {
			t.Fatalf("%v: EnumEditor missing", r)
		}
		wantFinal := r != JRE7
		if c.Final != wantFinal {
			t.Errorf("%v: EnumEditor.Final = %v, want %v", r, c.Final, wantFinal)
		}
	}
}

func TestReleaseSkewPresence(t *testing.T) {
	j7 := NewEnv(JRE7)
	j8 := NewEnv(JRE8)
	j9 := NewEnv(JRE9)
	gnu := NewEnv(Classpath)

	if !j7.Contains("com/sun/legacy/Jre7Only") || j8.Contains("com/sun/legacy/Jre7Only") {
		t.Error("Jre7Only presence skew wrong")
	}
	if j7.Contains("java/util/Optional") || !j8.Contains("java/util/Optional") || !j9.Contains("java/util/Optional") {
		t.Error("Optional presence skew wrong")
	}
	if !j9.Contains("java/lang/Module") || j8.Contains("java/lang/Module") {
		t.Error("Module presence skew wrong")
	}
	if gnu.Contains("com/sun/beans/editors/EnumEditor") {
		t.Error("Classpath must not have com.sun internals")
	}
	if !gnu.Contains("java/lang/Object") || !gnu.Contains("java/io/PrintStream") {
		t.Error("Classpath must have the core library")
	}
}

func TestJRE9ModuleEncapsulation(t *testing.T) {
	j9 := NewEnv(JRE9)
	for _, n := range []string{"sun/java2d/pisces/PiscesRenderingEngine", "sun/misc/Unsafe"} {
		c, ok := j9.Lookup(n)
		if !ok {
			continue // some sun classes were removed entirely, also fine
		}
		if c.Accessible {
			t.Errorf("JRE9: %s should be inaccessible", n)
		}
	}
	j8 := NewEnv(JRE8)
	c, _ := j8.Lookup("sun/java2d/pisces/PiscesRenderingEngine")
	if !c.Accessible {
		t.Error("JRE8: PiscesRenderingEngine should be accessible")
	}
	// The synthetic inner class is inaccessible in every release.
	for _, r := range []Release{JRE7, JRE8, JRE9} {
		e := NewEnv(r)
		if c, ok := e.Lookup("sun/java2d/pisces/PiscesRenderingEngine$2"); ok && c.Accessible {
			t.Errorf("%v: PiscesRenderingEngine$2 must be inaccessible", r)
		}
	}
}

func TestPrintStreamHasPrintln(t *testing.T) {
	e := NewEnv(JRE7)
	ps, ok := e.Lookup("java/io/PrintStream")
	if !ok {
		t.Fatal("PrintStream missing")
	}
	if !ps.HasMethod("println", "(Ljava/lang/String;)V") {
		t.Error("println(String) missing")
	}
	if ps.HasMethod("println", "(Ljava/util/Map;)V") {
		t.Error("phantom println overload")
	}
	sys, _ := e.Lookup("java/lang/System")
	if !sys.HasField("out", "Ljava/io/PrintStream;") {
		t.Error("System.out missing")
	}
}

func TestReleaseString(t *testing.T) {
	names := map[Release]string{JRE7: "JRE7", JRE8: "JRE8", JRE9: "JRE9", Classpath: "GNU-Classpath"}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("String(%d) = %q", r, r.String())
		}
	}
}

// TestPropertySuperChainsTerminate: every registered class reaches
// java/lang/Object in finitely many super steps (no cycles), and every
// named super/interface resolves.
func TestPropertySuperChainsTerminate(t *testing.T) {
	for _, r := range []Release{JRE7, JRE8, JRE9, Classpath} {
		e := NewEnv(r)
		for _, name := range e.ClassNames() {
			steps := 0
			for cur := name; cur != ""; steps++ {
				if steps > 50 {
					t.Fatalf("%v: superclass chain of %s does not terminate", r, name)
				}
				c, ok := e.Lookup(cur)
				if !ok {
					t.Errorf("%v: dangling superclass %s (from %s)", r, cur, name)
					break
				}
				for _, i := range c.Interfaces {
					if !e.Contains(i) {
						t.Errorf("%v: dangling interface %s on %s", r, i, cur)
					}
				}
				cur = c.Super
			}
			if name != "java/lang/Object" && !e.IsSubclassOf(name, "java/lang/Object") {
				t.Errorf("%v: %s does not reach Object", r, name)
			}
		}
	}
}

// TestPropertyAssignabilityReflexiveAndObjectTop uses quick over the
// registered class names.
func TestPropertyAssignabilityReflexiveAndObjectTop(t *testing.T) {
	e := NewEnv(JRE8)
	names := e.ClassNames()
	f := func(i, j uint16) bool {
		a := names[int(i)%len(names)]
		b := names[int(j)%len(names)]
		if !e.AssignableTo(a, a) {
			return false
		}
		if !e.AssignableTo(a, "java/lang/Object") {
			return false
		}
		// Assignability respects subclassing: if a <= b by subclass walk,
		// AssignableTo must agree.
		if e.IsSubclassOf(a, b) && !e.AssignableTo(a, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestInterfaceFlagConsistency(t *testing.T) {
	e := NewEnv(JRE8)
	for _, name := range e.ClassNames() {
		c, _ := e.Lookup(name)
		if c.Interface && !c.Abstract {
			t.Errorf("%s: interfaces must be abstract", name)
		}
		if c.Interface && c.Final {
			t.Errorf("%s: interfaces cannot be final", name)
		}
		if c.Interface && !strings.HasPrefix(c.Super, "java/lang/Object") {
			t.Errorf("%s: interface super must be Object, got %s", name, c.Super)
		}
	}
}
