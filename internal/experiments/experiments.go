// Package experiments regenerates every table and figure of the
// paper's evaluation (§3): Table 4 (classfile generation), Table 5 (top
// ten mutators), Table 6 (differential-testing results per suite),
// Table 7 (per-VM phase histogram), Figure 4 (mutator success rates and
// selection frequencies) and the §1/§3.3 preliminary study (the 1.7 %
// library baseline). A Session runs the six campaigns once — classfuzz
// under each uniqueness criterion, uniquefuzz, greedyfuzz, randfuzz —
// and derives all tables from the shared results, exactly as the paper
// derives its tables from the same three-day runs.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/fuzz"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mcmc"
	"repro/internal/mutation"
	"repro/internal/seedgen"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// Scale sets the campaign sizes. The paper's comparisons hold at any
// equal budget; DefaultScale finishes in seconds, PaperScale mirrors
// the §3.1 setup (1,216 seeds; randfuzz iterating ≈22× more than the
// directed algorithms, as its 46,318 vs ≈2,000 iterations show).
type Scale struct {
	// SeedCount is the number of seed classfiles (paper: 1,216).
	SeedCount int
	// Iterations is the budget per coverage-directed campaign
	// (paper: ≈2,000).
	Iterations int
	// RandfuzzFactor multiplies the budget for randfuzz (paper: ≈22×).
	RandfuzzFactor int
	// CorpusCount is the size of the library-corpus stand-in for the
	// preliminary study (paper: 21,736 JRE7 classfiles).
	CorpusCount int
	// Seed drives all randomness.
	Seed int64
	// Workers sizes each campaign's mutate/execute worker pool (0 → 1).
	// Campaign results are identical at any value; this only trades CPU
	// for wall clock.
	Workers int
	// SeedStrategy selects the seed-scheduling policy every campaign
	// draws under ("" or "uniform" is the paper's flat draw; "clustered"
	// and "yield" route through seedsel). Unknown values fail NewSession.
	SeedStrategy string
	// Telemetry, when non-nil, becomes the session's roll-up registry
	// (Session.Telemetry) instead of a fresh one — attach it before
	// NewSession so a live /metrics.json endpoint watches the campaigns
	// as they run. Observe-only: tables are identical either way.
	Telemetry *telemetry.Registry
}

// DefaultScale is the quick configuration used by tests and benches.
func DefaultScale() Scale {
	return Scale{SeedCount: 60, Iterations: 400, RandfuzzFactor: 10, CorpusCount: 1200, Seed: 1}
}

// PaperScale mirrors the paper's seed count and iteration ratios.
func PaperScale() Scale {
	return Scale{SeedCount: 1216, Iterations: 2100, RandfuzzFactor: 22, CorpusCount: 21736, Seed: 1}
}

// Campaign keys used across tables.
const (
	KeyClassfuzzSTBR = "classfuzz[stbr]"
	KeyClassfuzzST   = "classfuzz[st]"
	KeyClassfuzzTR   = "classfuzz[tr]"
	KeyUniquefuzz    = "uniquefuzz"
	KeyGreedyfuzz    = "greedyfuzz"
	KeyRandfuzz      = "randfuzz"
)

// CampaignOrder is the column order of Tables 4 and 6.
var CampaignOrder = []string{
	KeyClassfuzzSTBR, KeyClassfuzzST, KeyClassfuzzTR,
	KeyUniquefuzz, KeyGreedyfuzz, KeyRandfuzz,
}

// Session holds the shared campaign results. It is a service.Session
// — the same folding aggregate the classfuzzd daemon uses for its
// shard epochs — plus the experiment-specific seed corpus: Campaigns,
// the shared outcome Memo (Tables 6 and 7 overlap heavily, so a class
// executes once per VM across the whole session) and the Telemetry
// roll-up promote from the embedded session.
type Session struct {
	Scale     Scale
	Seeds     []*jimple.Class
	SeedFiles [][]byte
	*service.Session
}

// diffRunner builds a standard five-VM runner wired to the session's
// shared outcome memo and metrics roll-up.
func (s *Session) diffRunner() *difftest.Runner { return s.Runner() }

// NewSession generates seeds and runs all six campaigns.
func NewSession(s Scale) (*Session, error) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(s.SeedCount, s.Seed))
	seedFiles := make([][]byte, 0, len(seeds))
	for _, c := range seeds {
		f, err := jimple.Lower(c)
		if err != nil {
			return nil, err
		}
		data, err := f.Bytes()
		if err != nil {
			return nil, err
		}
		seedFiles = append(seedFiles, data)
	}

	strategy, err := parseScaleStrategy(s.SeedStrategy)
	if err != nil {
		return nil, err
	}
	mk := func(alg fuzz.Algorithm, crit coverage.Criterion, iters int) (*fuzz.Result, *telemetry.Registry, error) {
		reg := telemetry.New()
		// Sources are stateful under the scheduling strategies, so each
		// campaign gets a fresh one.
		src, _, err := seedSourceFor(strategy, seeds, reg)
		if err != nil {
			return nil, nil, err
		}
		res, err := fuzz.Run(fuzz.Config{
			Algorithm:   alg,
			Criterion:   crit,
			Source:      src,
			Iterations:  iters,
			Rand:        s.Seed + 100,
			RefSpec:     jvm.HotSpot9(),
			KeepClasses: false,
			// Table 6's GenClasses block differential-tests every
			// generated mutant, so the session keeps bytes the engine
			// would otherwise drop for unaccepted mutants.
			KeepGenBytes: true,
			Workers:      s.Workers,
			Telemetry:    reg,
		})
		return res, reg, err
	}

	sess := &Session{
		Scale: s, Seeds: seeds, SeedFiles: seedFiles,
		Session: service.NewSession(s.Telemetry),
	}
	type job struct {
		key   string
		alg   fuzz.Algorithm
		crit  coverage.Criterion
		iters int
	}
	jobs := []job{
		{KeyClassfuzzSTBR, fuzz.Classfuzz, coverage.STBR, s.Iterations},
		{KeyClassfuzzST, fuzz.Classfuzz, coverage.ST, s.Iterations},
		{KeyClassfuzzTR, fuzz.Classfuzz, coverage.TR, s.Iterations},
		{KeyUniquefuzz, fuzz.Uniquefuzz, coverage.STBR, s.Iterations},
		{KeyGreedyfuzz, fuzz.Greedyfuzz, coverage.STBR, s.Iterations},
		{KeyRandfuzz, fuzz.Randfuzz, coverage.STBR, s.Iterations * s.RandfuzzFactor},
	}
	// The six campaigns share nothing but the (read-only) seed corpus,
	// so the session fans them out concurrently; each campaign's own
	// worker pool handles intra-campaign parallelism.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			res, reg, err := mk(j.alg, j.crit, j.iters)
			if err != nil {
				mu.Lock()
				defer mu.Unlock()
				if firstErr == nil {
					firstErr = fmt.Errorf("experiments: %s: %w", j.key, err)
				}
				return
			}
			sess.Fold(j.key, res, reg)
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sess, nil
}

// --- Table 4 -----------------------------------------------------------------

// Table4Row is one column of the paper's Table 4 (transposed to rows).
type Table4Row struct {
	Campaign    string
	Iterations  int
	GenClasses  int
	TestClasses int
	Succ        float64
	// Times are microseconds per class in this simulation (the paper
	// reports seconds on real HotSpot; only relative order matters).
	MicrosPerGen  float64
	MicrosPerTest float64
}

// Table4 reproduces "Results on classfile generation".
type Table4 struct{ Rows []Table4Row }

// Table4 derives the table from the session.
func (s *Session) Table4() *Table4 {
	t := &Table4{}
	for _, key := range CampaignOrder {
		r := s.Campaigns[key]
		t.Rows = append(t.Rows, Table4Row{
			Campaign:      key,
			Iterations:    r.Iterations,
			GenClasses:    len(r.Gen),
			TestClasses:   len(r.Test),
			Succ:          r.Succ(),
			MicrosPerGen:  float64(r.TimePerGen().Microseconds()),
			MicrosPerTest: float64(r.TimePerTest().Microseconds()),
		})
	}
	return t
}

// String renders the table.
func (t *Table4) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Results on classfile generation\n")
	fmt.Fprintf(&b, "%-18s %11s %11s %12s %7s %10s %11s\n",
		"algorithm", "#iterations", "|GenClasses|", "|TestClasses|", "succ", "µs/gen", "µs/test")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s %11d %11d %12d %6.1f%% %10.1f %11.1f\n",
			r.Campaign, r.Iterations, r.GenClasses, r.TestClasses, r.Succ*100,
			r.MicrosPerGen, r.MicrosPerTest)
	}
	return b.String()
}

// --- Table 5 -----------------------------------------------------------------

// Table5Row is one top mutator.
type Table5Row struct {
	Category  mutation.Category
	Name      string
	Doc       string
	Rate      float64
	Frequency float64
}

// Table5 reproduces "Top ten mutators".
type Table5 struct{ Rows []Table5Row }

// Table5 ranks mutators of the classfuzz[stbr] campaign by success rate
// (requiring a minimal selection count so rates are meaningful).
func (s *Session) Table5() *Table5 {
	r := s.Campaigns[KeyClassfuzzSTBR]
	total := r.Iterations
	stats := append([]fuzz.MutatorStat(nil), r.MutatorStats...)
	sort.SliceStable(stats, func(a, b int) bool {
		ra, rb := stats[a].Rate(), stats[b].Rate()
		if ra != rb {
			return ra > rb
		}
		return stats[a].Selected > stats[b].Selected
	})
	t := &Table5{}
	reg := mutation.Registry()
	for _, st := range stats {
		if st.Selected < 2 {
			continue
		}
		m := reg[st.ID]
		t.Rows = append(t.Rows, Table5Row{
			Category:  m.Category,
			Name:      m.Name,
			Doc:       m.Doc,
			Rate:      st.Rate(),
			Frequency: st.Frequency(total),
		})
		if len(t.Rows) == 10 {
			break
		}
	}
	return t
}

// String renders the table.
func (t *Table5) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Top ten mutators\n")
	fmt.Fprintf(&b, "%-10s %-30s %9s %9s\n", "category", "mutator", "succ", "freq")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %-30s %9.3f %9.3f\n", r.Category, r.Name, r.Rate, r.Frequency)
	}
	return b.String()
}

// --- Table 6 -----------------------------------------------------------------

// Table6Row is one class set's differential-testing summary.
type Table6Row struct {
	Set                  string
	Size                 int
	AllInvoked           int
	AllRejectedSameStage int
	Discrepancies        int
	Distinct             int
	DiffRate             float64
}

// Table6 reproduces "Results on testing of JVMs": both blocks of the
// paper's table — every campaign's GenClasses set and its TestClasses
// suite — plus the library-corpus and seed baselines.
type Table6 struct{ Rows []Table6Row }

// Table6 evaluates the corpora, generated sets and suites on the five
// VMs (in parallel; the sets are independent classfiles).
func (s *Session) Table6() *Table6 {
	runner := s.diffRunner()
	t := &Table6{}
	add := func(name string, classes [][]byte) {
		sum := runner.EvaluateBatch(classes, 0)
		t.Rows = append(t.Rows, Table6Row{
			Set:                  name,
			Size:                 sum.Total,
			AllInvoked:           sum.AllInvoked,
			AllRejectedSameStage: sum.AllRejectedSameStage,
			Discrepancies:        sum.Discrepancies,
			Distinct:             sum.DistinctCount(),
			DiffRate:             sum.DiffRate(),
		})
	}

	// Library-corpus baseline (the JRE7 column).
	corpus, err := seedgen.GenerateFiles(seedgen.DefaultOptions(s.Scale.CorpusCount, s.Scale.Seed+7))
	if err == nil {
		add("library-corpus", corpus)
	}
	add("seeds", s.SeedFiles)
	// GenClasses block. For randfuzz Gen == Test, so (like the paper's
	// "-" cells) the row appears once, in the Test block.
	for _, key := range CampaignOrder {
		if key == KeyRandfuzz {
			continue
		}
		r := s.Campaigns[key]
		var classes [][]byte
		for _, g := range r.Gen {
			if len(g.Data) > 0 {
				classes = append(classes, g.Data)
			}
		}
		add("Gen:"+key, classes)
	}
	// TestClasses block.
	for _, key := range CampaignOrder {
		r := s.Campaigns[key]
		var classes [][]byte
		for _, g := range r.Test {
			classes = append(classes, g.Data)
		}
		add("Test:"+key, classes)
	}
	return t
}

// String renders the table.
func (t *Table6) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: Results on testing of JVMs\n")
	fmt.Fprintf(&b, "%-22s %7s %9s %9s %8s %9s %7s\n",
		"set", "size", "invoked", "same-st", "discr", "distinct", "diff")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s %7d %9d %9d %8d %9d %6.1f%%\n",
			r.Set, r.Size, r.AllInvoked, r.AllRejectedSameStage,
			r.Discrepancies, r.Distinct, r.DiffRate*100)
	}
	return b.String()
}

// --- Table 7 -----------------------------------------------------------------

// Table7 reproduces the per-VM phase histogram of the classfuzz[stbr]
// test suite.
type Table7 struct {
	VMNames []string
	// Counts[vm][phase] with phase codes 0..4.
	Counts [][]int
	Suite  int
}

// Table7 evaluates the classfuzz[stbr] suite per VM.
func (s *Session) Table7() *Table7 {
	// The classfuzz[stbr] suite was already evaluated inside Table 6's
	// Test block, so under the session memo this re-derivation costs
	// map lookups, not VM executions.
	runner := s.diffRunner()
	var classes [][]byte
	for _, g := range s.Campaigns[KeyClassfuzzSTBR].Test {
		classes = append(classes, g.Data)
	}
	sum := runner.Evaluate(classes)
	return &Table7{VMNames: sum.VMNames, Counts: sum.PhaseHistogram, Suite: sum.Total}
}

// String renders the table.
func (t *Table7) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7: Results on testing of JVMs using the %d classfile mutants in TestClasses_classfuzz[stbr]\n", t.Suite)
	fmt.Fprintf(&b, "%-42s", "")
	for _, n := range t.VMNames {
		fmt.Fprintf(&b, " %14s", n)
	}
	b.WriteString("\n")
	labels := []string{
		"Normally invoked",
		"Rejected during the creation/loading phase",
		"Rejected during the linking phase",
		"Rejected during the initialization phase",
		"Rejected at runtime",
	}
	for phase, label := range labels {
		fmt.Fprintf(&b, "%-42s", label)
		for vm := range t.VMNames {
			fmt.Fprintf(&b, " %14d", t.Counts[vm][phase])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Figure 4 -----------------------------------------------------------------

// Figure4 reproduces the mutator success-rate/frequency correlation:
// mutators sorted in descending order of their classfuzz[stbr] success
// rates (panel a), with the classfuzz selection frequencies (panel b)
// and the uniquefuzz frequencies over the same order (panel c).
type Figure4 struct {
	// Names[i] is the mutator at x-position i.
	Names []string
	// SuccRate is panel (a); FreqClassfuzz panel (b); FreqUniquefuzz
	// panel (c).
	SuccRate       []float64
	FreqClassfuzz  []float64
	FreqUniquefuzz []float64
}

// Figure4 derives the three series.
func (s *Session) Figure4() *Figure4 {
	cf := s.Campaigns[KeyClassfuzzSTBR]
	uf := s.Campaigns[KeyUniquefuzz]
	order := make([]int, len(cf.MutatorStats))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := cf.MutatorStats[order[a]].Rate(), cf.MutatorStats[order[b]].Rate()
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	fig := &Figure4{}
	for _, id := range order {
		fig.Names = append(fig.Names, cf.MutatorStats[id].Name)
		fig.SuccRate = append(fig.SuccRate, cf.MutatorStats[id].Rate())
		fig.FreqClassfuzz = append(fig.FreqClassfuzz, cf.MutatorStats[id].Frequency(cf.Iterations))
		fig.FreqUniquefuzz = append(fig.FreqUniquefuzz, uf.MutatorStats[id].Frequency(uf.Iterations))
	}
	return fig
}

// String renders the three series as columns.
func (f *Figure4) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: mutator success rates vs selection frequencies (sorted by classfuzz[stbr] success rate)\n")
	fmt.Fprintf(&b, "%4s %-30s %9s %12s %13s\n", "rank", "mutator", "(a) succ", "(b) cf freq", "(c) uf freq")
	for i := range f.Names {
		fmt.Fprintf(&b, "%4d %-30s %9.3f %12.4f %13.4f\n",
			i+1, f.Names[i], f.SuccRate[i], f.FreqClassfuzz[i], f.FreqUniquefuzz[i])
	}
	return b.String()
}

// MCMCGain estimates the paper's "+43% representative classfiles from
// MCMC sampling": (|Test_classfuzz[stbr]| - |Test_uniquefuzz|) /
// |Test_uniquefuzz|.
func (s *Session) MCMCGain() float64 {
	u := len(s.Campaigns[KeyUniquefuzz].Test)
	c := len(s.Campaigns[KeyClassfuzzSTBR].Test)
	if u == 0 {
		return 0
	}
	return float64(c-u) / float64(u)
}

// MCMCGainStudy averages the MCMC-vs-uniform comparison over several
// seed corpora at a fixed budget; single campaigns are noisy, the mean
// shows the +43 % effect's direction reliably.
type MCMCGainStudy struct {
	Repeats    int
	Iterations int
	// Totals of representative tests across repeats.
	ClassfuzzTests  int
	UniquefuzzTests int
}

// Gain returns the mean relative gain of MCMC selection.
func (s *MCMCGainStudy) Gain() float64 {
	if s.UniquefuzzTests == 0 {
		return 0
	}
	return float64(s.ClassfuzzTests-s.UniquefuzzTests) / float64(s.UniquefuzzTests)
}

// String renders the study.
func (s *MCMCGainStudy) String() string {
	return fmt.Sprintf("MCMC gain study: %d repeats × %d iterations -> classfuzz %d vs uniquefuzz %d representative tests (%+.1f%%)",
		s.Repeats, s.Iterations, s.ClassfuzzTests, s.UniquefuzzTests, s.Gain()*100)
}

// RunMCMCGainStudy runs the paired campaigns `repeats` times with
// different seed corpora.
func RunMCMCGainStudy(scale Scale, repeats int) (*MCMCGainStudy, error) {
	study := &MCMCGainStudy{Repeats: repeats, Iterations: scale.Iterations}
	for r := 0; r < repeats; r++ {
		seeds := seedgen.Generate(seedgen.DefaultOptions(scale.SeedCount, scale.Seed+int64(r)))
		run := func(alg fuzz.Algorithm) (int, error) {
			res, err := fuzz.Run(fuzz.Config{
				Algorithm: alg, Criterion: coverage.STBR, Source: fuzz.FlatSeeds(seeds),
				Iterations: scale.Iterations, Rand: scale.Seed + int64(r)*31,
				RefSpec: jvm.HotSpot9(),
			})
			if err != nil {
				return 0, err
			}
			return len(res.Test), nil
		}
		c, err := run(fuzz.Classfuzz)
		if err != nil {
			return nil, err
		}
		u, err := run(fuzz.Uniquefuzz)
		if err != nil {
			return nil, err
		}
		study.ClassfuzzTests += c
		study.UniquefuzzTests += u
	}
	return study, nil
}

// BlindBaseline compares byte-level blind fuzzing (the Sirer & Bershad
// style the paper's related work describes) against the structured
// randfuzz at an equal budget: the fraction of mutants rejected during
// loading quantifies §1's claim that blind binary mutation yields
// mostly invalid classfiles.
type BlindBaseline struct {
	Iterations int
	// LoadRejectRate[alg] is the fraction of mutants every VM rejects in
	// the loading phase.
	ByteLoadReject float64
	RandLoadReject float64
	// Discrepancy rates for context.
	ByteDiff float64
	RandDiff float64
}

// String renders the study.
func (b *BlindBaseline) String() string {
	return fmt.Sprintf("Blind-fuzzing baseline (%d iterations each): bytefuzz %.0f%% of mutants rejected at loading (diff %.1f%%) vs structured randfuzz %.0f%% (diff %.1f%%)",
		b.Iterations, b.ByteLoadReject*100, b.ByteDiff*100, b.RandLoadReject*100, b.RandDiff*100)
}

// RunBlindBaseline runs both blind fuzzers and evaluates their mutants.
func RunBlindBaseline(scale Scale) (*BlindBaseline, error) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(scale.SeedCount, scale.Seed))
	runner := difftest.NewStandardRunner()
	out := &BlindBaseline{Iterations: scale.Iterations}
	for _, alg := range []fuzz.Algorithm{fuzz.Bytefuzz, fuzz.Randfuzz} {
		res, err := fuzz.Run(fuzz.Config{
			Algorithm: alg, Criterion: coverage.STBR, Source: fuzz.FlatSeeds(seeds),
			Iterations: scale.Iterations, Rand: scale.Seed + 3, RefSpec: jvm.HotSpot9(),
		})
		if err != nil {
			return nil, err
		}
		var classes [][]byte
		for _, g := range res.Gen {
			if len(g.Data) > 0 {
				classes = append(classes, g.Data)
			}
		}
		// One pass: count discrepancies and all-rejected-at-loading
		// ("invalid") mutants.
		loadRejected, discrepant := 0, 0
		for _, data := range classes {
			v := runner.Run(data)
			if v.Discrepant() {
				discrepant++
			}
			allLoad := true
			for _, c := range v.Codes {
				if c != int(jvm.PhaseLoading) {
					allLoad = false
					break
				}
			}
			if allLoad {
				loadRejected++
			}
		}
		rate, diff := 0.0, 0.0
		if n := len(classes); n > 0 {
			rate = float64(loadRejected) / float64(n)
			diff = float64(discrepant) / float64(n)
		}
		if alg == fuzz.Bytefuzz {
			out.ByteLoadReject = rate
			out.ByteDiff = diff
		} else {
			out.RandLoadReject = rate
			out.RandDiff = diff
		}
	}
	return out, nil
}

// --- preliminary study ---------------------------------------------------------

// Preliminary reproduces the §1 baseline: the discrepancy rate of a
// library-like corpus across the five JVMs (the paper's 1.7 %:
// 364/21,736).
type Preliminary struct {
	Corpus        int
	Discrepancies int
	Distinct      int
	DiffRate      float64
}

// RunPreliminary evaluates a fresh corpus.
func RunPreliminary(corpusSize int, seed int64) (*Preliminary, error) {
	files, err := seedgen.GenerateFiles(seedgen.DefaultOptions(corpusSize, seed))
	if err != nil {
		return nil, err
	}
	sum := difftest.NewStandardRunner().Evaluate(files)
	return &Preliminary{
		Corpus:        sum.Total,
		Discrepancies: sum.Discrepancies,
		Distinct:      sum.DistinctCount(),
		DiffRate:      sum.DiffRate(),
	}, nil
}

// String renders the study.
func (p *Preliminary) String() string {
	return fmt.Sprintf("Preliminary study: %d/%d (%.1f%%) library classfiles trigger JVM discrepancies (%d distinct)",
		p.Discrepancies, p.Corpus, p.DiffRate*100, p.Distinct)
}

// PEstimate reproduces the §2.2.2 parameter estimation.
type PEstimate struct {
	N       int
	Eps     float64
	Lo, Hi  float64
	Default float64
}

// RunPEstimate computes the feasible p range for the mutator count.
func RunPEstimate() (*PEstimate, error) {
	n := mutation.TotalMutators
	lo, hi, err := mcmc.PBounds(n, 0.001)
	if err != nil {
		return nil, err
	}
	return &PEstimate{N: n, Eps: 0.001, Lo: lo, Hi: hi, Default: mcmc.DefaultP(n)}, nil
}

// String renders the estimation.
func (p *PEstimate) String() string {
	return fmt.Sprintf("Parameter estimation: n=%d, eps=%g -> p in (%.4f, %.4f); chosen p = 3/%d = %.4f",
		p.N, p.Eps, p.Lo, p.Hi, p.N, p.Default)
}
