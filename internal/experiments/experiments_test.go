package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/difftest"
)

// The session is expensive; share one across the test functions.
var (
	once sync.Once
	sess *Session
	serr error
)

func session(t *testing.T) *Session {
	t.Helper()
	once.Do(func() {
		sess, serr = NewSession(DefaultScale())
	})
	if serr != nil {
		t.Fatal(serr)
	}
	return sess
}

func TestSessionRunsAllCampaigns(t *testing.T) {
	s := session(t)
	if len(s.Campaigns) != 6 {
		t.Fatalf("%d campaigns", len(s.Campaigns))
	}
	for _, key := range CampaignOrder {
		r, ok := s.Campaigns[key]
		if !ok {
			t.Fatalf("campaign %s missing", key)
		}
		if len(r.Gen) == 0 {
			t.Errorf("%s generated nothing", key)
		}
	}
}

// TestSessionTelemetryMergedTotals asserts the session roll-up: the
// campaign.* counters in Session.Telemetry are the Registry.Merge fold
// of the six per-campaign registries, so they must equal the sums of
// the per-campaign results.
func TestSessionTelemetryMergedTotals(t *testing.T) {
	s := session(t)
	if s.Telemetry == nil {
		t.Fatal("session has no telemetry registry")
	}
	snap := s.Telemetry.Snapshot()

	var iters, gen, accepts int64
	for _, res := range s.Campaigns {
		iters += int64(res.Iterations)
		gen += int64(len(res.Gen))
		accepts += int64(len(res.Test))
	}
	if got := snap.Counter("campaign.iterations"); got != iters {
		t.Errorf("merged campaign.iterations = %d, want %d", got, iters)
	}
	if got := snap.Counter("campaign.generated"); got != gen {
		t.Errorf("merged campaign.generated = %d, want %d", got, gen)
	}
	if got := snap.Counter("campaign.accepts"); got != accepts {
		t.Errorf("merged campaign.accepts = %d, want %d", got, accepts)
	}

	// The shared memo and the session's differential runners report into
	// the same registry; after any table ran (the session fixture runs
	// them all via other tests' ordering, but at minimum the memo is
	// bound), the memo gauges must agree with the memo's own snapshot.
	ms := s.Memo.Stats()
	if got := snap.Gauge(difftest.MetricMemoDistinctClasses); got != ms.Gauge(difftest.MetricMemoDistinctClasses) {
		t.Errorf("session registry memo classes = %d, memo says %d",
			got, ms.Gauge(difftest.MetricMemoDistinctClasses))
	}
}

func TestTable4Shapes(t *testing.T) {
	tab := session(t).Table4()
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range tab.Rows {
		byName[r.Campaign] = r
		if r.TestClasses > r.GenClasses {
			t.Errorf("%s: tests > gen", r.Campaign)
		}
	}
	// Finding 1: randfuzz generates many times more classfiles than any
	// coverage-directed algorithm (20× in the paper; ≥3× at our scale).
	rf := byName[KeyRandfuzz]
	for _, key := range CampaignOrder[:5] {
		if rf.GenClasses < 3*byName[key].GenClasses {
			t.Errorf("randfuzz gen=%d not ≫ %s gen=%d", rf.GenClasses, key, byName[key].GenClasses)
		}
	}
	// Finding 1: classfuzz[stbr] accepts the most representative classes
	// among the directed algorithms.
	stbr := byName[KeyClassfuzzSTBR]
	for _, key := range []string{KeyClassfuzzST, KeyGreedyfuzz} {
		if stbr.TestClasses < byName[key].TestClasses {
			t.Errorf("classfuzz[stbr] tests=%d below %s tests=%d", stbr.TestClasses, key, byName[key].TestClasses)
		}
	}
	// Greedy accepts the fewest among directed algorithms.
	greedy := byName[KeyGreedyfuzz]
	for _, key := range []string{KeyClassfuzzSTBR, KeyClassfuzzTR, KeyUniquefuzz} {
		if greedy.TestClasses > byName[key].TestClasses {
			t.Errorf("greedyfuzz tests=%d above %s", greedy.TestClasses, key)
		}
	}
	// Randfuzz accepts everything.
	if rf.TestClasses != rf.GenClasses {
		t.Error("randfuzz must accept every generated class")
	}
	// [st] accepts no more than [stbr] (one- vs two-dimensional space).
	if byName[KeyClassfuzzST].TestClasses > stbr.TestClasses {
		t.Error("[st] accepted more than [stbr]")
	}
	out := tab.String()
	if !strings.Contains(out, "classfuzz[stbr]") || !strings.Contains(out, "randfuzz") {
		t.Error("rendering incomplete")
	}
}

func TestTable5TopMutators(t *testing.T) {
	tab := session(t).Table5()
	if len(tab.Rows) == 0 || len(tab.Rows) > 10 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Rate > tab.Rows[i-1].Rate {
			t.Error("rows not sorted by success rate")
		}
	}
	if tab.Rows[0].Rate <= 0 {
		t.Error("top mutator has zero success rate")
	}
	if !strings.Contains(tab.String(), "Top ten mutators") {
		t.Error("rendering incomplete")
	}
}

func TestTable6Shapes(t *testing.T) {
	tab := session(t).Table6()
	byName := map[string]Table6Row{}
	for _, r := range tab.Rows {
		byName[r.Set] = r
		if r.AllInvoked+r.AllRejectedSameStage+r.Discrepancies != r.Size {
			t.Errorf("%s: partition does not sum (%d+%d+%d != %d)", r.Set,
				r.AllInvoked, r.AllRejectedSameStage, r.Discrepancies, r.Size)
		}
	}
	lib := byName["library-corpus"]
	stbr := byName["Test:"+KeyClassfuzzSTBR]
	// The GenClasses block exists for every directed algorithm and each
	// Gen set contains its Test subset.
	for _, key := range CampaignOrder {
		if key == KeyRandfuzz {
			continue
		}
		gen, ok := byName["Gen:"+key]
		if !ok {
			t.Fatalf("Gen row for %s missing", key)
		}
		if gen.Size < byName["Test:"+key].Size {
			t.Errorf("%s: Gen smaller than Test", key)
		}
		// Finding 4's side observation: Gen and Test reveal comparable
		// distinct-discrepancy counts for classfuzz[stbr].
		if key == KeyClassfuzzSTBR && gen.Distinct < byName["Test:"+key].Distinct-3 {
			t.Errorf("%s: Gen distinct %d far below Test distinct %d", key, gen.Distinct, byName["Test:"+key].Distinct)
		}
	}
	// Finding 3's headline: the representative suite's diff-rate is far
	// above the library baseline (1.7% -> 11.9% in the paper).
	if lib.DiffRate <= 0 {
		t.Error("library baseline shows no discrepancies")
	}
	if stbr.DiffRate < 3*lib.DiffRate {
		t.Errorf("suite diff rate %.2f%% not ≫ library %.2f%%", stbr.DiffRate*100, lib.DiffRate*100)
	}
	// Finding 4: classfuzz[stbr] reveals at least as many distinct
	// discrepancies as the other suites (±2 at this small scale, since
	// distinct-vector counts are noisy single digits here).
	for _, key := range []string{KeyUniquefuzz, KeyGreedyfuzz} {
		if stbr.Distinct+2 < byName["Test:"+key].Distinct {
			t.Errorf("classfuzz[stbr] distinct=%d below %s=%d", stbr.Distinct, key, byName["Test:"+key].Distinct)
		}
	}
	if stbr.Distinct < byName["Test:"+KeyGreedyfuzz].Distinct {
		t.Errorf("classfuzz[stbr] distinct=%d below greedyfuzz", stbr.Distinct)
	}
}

func TestTable7Shapes(t *testing.T) {
	tab := session(t).Table7()
	if len(tab.VMNames) != 5 {
		t.Fatalf("%d VMs", len(tab.VMNames))
	}
	for vm := range tab.VMNames {
		n := 0
		for _, c := range tab.Counts[vm] {
			n += c
		}
		if n != tab.Suite {
			t.Errorf("%s histogram sums to %d, suite is %d", tab.VMNames[vm], n, tab.Suite)
		}
	}
	// Shape: GIJ is the most lenient (runs the most classes).
	gij := tab.Counts[4][0]
	for vm := 0; vm < 4; vm++ {
		if gij < tab.Counts[vm][0] {
			t.Errorf("GIJ invoked %d < %s invoked %d; GIJ should accept the most",
				gij, tab.VMNames[vm], tab.Counts[vm][0])
		}
	}
	// Shape: only GIJ rejects at runtime in meaningful numbers (its lazy
	// resolution); eager HotSpot rejects at linking instead.
	if tab.Counts[0][2] == 0 {
		t.Error("HotSpot7 shows no linking rejections")
	}
	if !strings.Contains(tab.String(), "Rejected during the linking phase") {
		t.Error("rendering incomplete")
	}
}

func TestFigure4Correlation(t *testing.T) {
	fig := session(t).Figure4()
	if len(fig.Names) != 129 {
		t.Fatalf("%d mutators in figure", len(fig.Names))
	}
	for i := 1; i < len(fig.SuccRate); i++ {
		if fig.SuccRate[i] > fig.SuccRate[i-1] {
			t.Fatal("panel (a) not sorted descending")
		}
	}
	// Finding 2: classfuzz selects high-success mutators more often than
	// low-success ones; compare mean frequency of the top third vs the
	// bottom third.
	third := len(fig.Names) / 3
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	top := mean(fig.FreqClassfuzz[:third])
	bottom := mean(fig.FreqClassfuzz[len(fig.FreqClassfuzz)-third:])
	if top <= bottom {
		t.Errorf("classfuzz frequency top-third %.4f not above bottom-third %.4f", top, bottom)
	}
	// Panel (c): uniquefuzz shows no such correlation — its top/bottom
	// ratio stays near 1 while classfuzz's is clearly above it.
	utop := mean(fig.FreqUniquefuzz[:third])
	ubottom := mean(fig.FreqUniquefuzz[len(fig.FreqUniquefuzz)-third:])
	if ubottom == 0 {
		ubottom = 1e-9
	}
	if top/bottom <= utop/ubottom {
		t.Errorf("classfuzz bias (%.2f) should exceed uniquefuzz bias (%.2f)", top/bottom, utop/ubottom)
	}
}

func TestMCMCGainPositive(t *testing.T) {
	gain := session(t).MCMCGain()
	// The paper reports +43%; at small scale any clear positive gain
	// demonstrates the mechanism. Tolerate noise but demand non-collapse.
	if gain < -0.25 {
		t.Errorf("MCMC gain %.2f collapsed", gain)
	}
	t.Logf("MCMC gain over uniform selection: %+.1f%%", gain*100)
}

func TestMCMCGainStudyPositiveOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-repeat campaign study")
	}
	scale := DefaultScale()
	scale.Iterations = 500
	study, err := RunMCMCGainStudy(scale, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(study)
	// The paper reports +43% at three-day scale; at this scale the mean
	// must at least not collapse below parity by more than noise.
	if study.Gain() < -0.10 {
		t.Errorf("mean MCMC gain %.1f%% is clearly negative", study.Gain()*100)
	}
	if study.ClassfuzzTests == 0 || study.UniquefuzzTests == 0 {
		t.Error("degenerate study")
	}
}

func TestPreliminaryStudy(t *testing.T) {
	p, err := RunPreliminary(800, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.DiffRate < 0.003 || p.DiffRate > 0.06 {
		t.Errorf("baseline diff rate %.2f%%, paper reports 1.7%%", p.DiffRate*100)
	}
	if !strings.Contains(p.String(), "Preliminary study") {
		t.Error("rendering incomplete")
	}
}

func TestBlindBaselineShape(t *testing.T) {
	scale := DefaultScale()
	scale.Iterations = 250
	b, err := RunBlindBaseline(scale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(b)
	// §1's motivation: blind byte mutation yields mostly invalid
	// classfiles; structured mutation does not.
	if b.ByteLoadReject < 0.4 {
		t.Errorf("bytefuzz load-reject rate %.0f%% too low", b.ByteLoadReject*100)
	}
	if b.RandLoadReject > b.ByteLoadReject/2 {
		t.Errorf("structured randfuzz load-reject %.0f%% should be far below bytefuzz %.0f%%",
			b.RandLoadReject*100, b.ByteLoadReject*100)
	}
	if b.RandDiff <= b.ByteDiff {
		t.Errorf("structured mutants should trigger more discrepancies (%.1f%% vs %.1f%%)",
			b.RandDiff*100, b.ByteDiff*100)
	}
}

func TestPEstimate(t *testing.T) {
	p, err := RunPEstimate()
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 129 {
		t.Errorf("N = %d", p.N)
	}
	if p.Default < p.Lo || p.Default > p.Hi {
		t.Errorf("3/129 = %g outside (%g, %g)", p.Default, p.Lo, p.Hi)
	}
	if !strings.Contains(p.String(), "3/129") {
		t.Error("rendering incomplete")
	}
}
