package experiments

import (
	"fmt"
	"strings"

	"repro/internal/coverage"
	"repro/internal/difftest"
	"repro/internal/fuzz"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/seedgen"
	"repro/internal/seedsel"
	"repro/internal/telemetry"
)

// parseScaleStrategy maps Scale.SeedStrategy to a policy ("" is the
// uniform default; anything else must parse).
func parseScaleStrategy(s string) (seedsel.Strategy, error) {
	if s == "" {
		return seedsel.Uniform, nil
	}
	return seedsel.ParseStrategy(s)
}

// seedSourceFor builds one campaign's SeedSource: the flat-uniform
// adapter, or a fresh scheduler (stateful — one per campaign run). The
// scheduler is also returned directly so callers can read its cluster
// table after the run.
func seedSourceFor(strategy seedsel.Strategy, seeds []*jimple.Class, reg *telemetry.Registry) (fuzz.SeedSource, *seedsel.Scheduler, error) {
	if strategy == seedsel.Uniform {
		return fuzz.FlatSeeds(seeds), nil, nil
	}
	sched, err := seedsel.New(seeds, seedsel.Options{Strategy: strategy, RefSpec: jvm.HotSpot9(), Telemetry: reg})
	if err != nil {
		return nil, nil, err
	}
	return sched, sched, nil
}

// SeedStrategyRow is one strategy's outcome at the shared budget.
type SeedStrategyRow struct {
	Strategy    string
	Iterations  int
	GenClasses  int
	TestClasses int
	Succ        float64
	// Clusters is the scheduler's cluster count (1 means the corpus
	// collapsed to one representative; 0 under uniform, which has no
	// clustering).
	Clusters int
	// Draws/Yield/Demotions total the scheduler's per-cluster counters
	// (the campaign.seeds.* telemetry); zero under uniform.
	Draws     int64
	Yield     int64
	Demotions int64
	// Differential-testing outcome of the strategy's TestClasses suite.
	Discrepancies int
	Distinct      int
	DiffRate      float64
	// PerCluster is the strategy's final cluster table.
	PerCluster []seedsel.ClusterStat
}

// SeedStrategyStudy compares the seed-selection policies on
// classfuzz[stbr] under equal budgets over the same corpus.
type SeedStrategyStudy struct {
	SeedCount  int
	Iterations int
	Rows       []SeedStrategyRow
	// UniformMatchesBaseline reports that the uniform row's campaign —
	// run through the SeedSource API — reproduced an independent
	// baseline run draw-for-draw, pinning the adapter to the paper's
	// flat-draw behaviour.
	UniformMatchesBaseline bool
}

// RunSeedStrategyStudy runs classfuzz[stbr] once per strategy at an
// equal budget, differentially tests each suite, and cross-checks the
// uniform row against a fresh baseline campaign.
func RunSeedStrategyStudy(scale Scale) (*SeedStrategyStudy, error) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(scale.SeedCount, scale.Seed))
	runner := difftest.NewStandardRunner()
	study := &SeedStrategyStudy{SeedCount: scale.SeedCount, Iterations: scale.Iterations}

	run := func(strategy seedsel.Strategy, reg *telemetry.Registry) (*fuzz.Result, *seedsel.Scheduler, error) {
		src, sched, err := seedSourceFor(strategy, seeds, reg)
		if err != nil {
			return nil, nil, err
		}
		res, err := fuzz.Run(fuzz.Config{
			Algorithm: fuzz.Classfuzz, Criterion: coverage.STBR, Source: src,
			Iterations: scale.Iterations, Rand: scale.Seed + 100,
			RefSpec: jvm.HotSpot9(), Workers: scale.Workers, Telemetry: reg,
		})
		return res, sched, err
	}

	for _, strategy := range []seedsel.Strategy{seedsel.Uniform, seedsel.Clustered, seedsel.Yield} {
		res, sched, err := run(strategy, telemetry.New())
		if err != nil {
			return nil, fmt.Errorf("experiments: seed-strategy %s: %w", strategy, err)
		}
		row := SeedStrategyRow{
			Strategy:    string(strategy),
			Iterations:  res.Iterations,
			GenClasses:  len(res.Gen),
			TestClasses: len(res.Test),
			Succ:        res.Succ(),
		}
		if sched != nil {
			row.Clusters = sched.Clusters()
			row.PerCluster = sched.ClusterStats()
			for _, cs := range row.PerCluster {
				row.Draws += cs.Draws
				row.Yield += cs.Yield
				row.Demotions += cs.Demotions
			}
		}
		var classes [][]byte
		for _, g := range res.Test {
			classes = append(classes, g.Data)
		}
		sum := runner.Evaluate(classes)
		row.Discrepancies = sum.Discrepancies
		row.Distinct = sum.DistinctCount()
		row.DiffRate = sum.DiffRate()
		study.Rows = append(study.Rows, row)

		if strategy == seedsel.Uniform {
			base, _, err := run(seedsel.Uniform, nil)
			if err != nil {
				return nil, fmt.Errorf("experiments: uniform baseline: %w", err)
			}
			study.UniformMatchesBaseline = drawsEqual(res.Draws, base.Draws) &&
				len(res.Test) == len(base.Test) && len(res.Gen) == len(base.Gen)
		}
	}
	return study, nil
}

func drawsEqual(a, b []fuzz.DrawRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the study as the committed experiments table.
func (s *SeedStrategyStudy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Seed-strategy study: classfuzz[stbr], %d seeds, %d iterations per strategy\n",
		s.SeedCount, s.Iterations)
	fmt.Fprintf(&b, "%-10s %11s %12s %13s %7s %9s %7s %7s %10s %6s %9s %7s\n",
		"strategy", "#iterations", "|GenClasses|", "|TestClasses|", "succ",
		"clusters", "draws", "yield", "demotions", "discr", "distinct", "diff")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-10s %11d %12d %13d %6.1f%% %9d %7d %7d %10d %6d %9d %6.1f%%\n",
			r.Strategy, r.Iterations, r.GenClasses, r.TestClasses, r.Succ*100,
			r.Clusters, r.Draws, r.Yield, r.Demotions,
			r.Discrepancies, r.Distinct, r.DiffRate*100)
	}
	for _, r := range s.Rows {
		for _, cs := range r.PerCluster {
			fmt.Fprintf(&b, "  %s cluster %d: %d seeds, %d pool, %d draws, %d yield, %d demotions, demoted=%v\n",
				r.Strategy, cs.Cluster, cs.Seeds, cs.Pool, cs.Draws, cs.Yield, cs.Demotions, cs.Demoted)
		}
	}
	fmt.Fprintf(&b, "uniform row matches flat-draw baseline: %v\n", s.UniformMatchesBaseline)
	return b.String()
}
