package mutation

import (
	"math/rand"

	"repro/internal/descriptor"
	"repro/internal/jimple"
)

func registerExceptionMutators() {
	register(CatException, "exc.add_one", "add one declared exception to a method (Table 5 row 7)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Throws = append(m.Throws, throwablePool[rng.Intn(len(throwablePool))])
			return true
		})
	register(CatException, "exc.add_list", "add a list of declared exceptions (Table 5 row 2)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			n := 2 + rng.Intn(3)
			for i := 0; i < n; i++ {
				m.Throws = append(m.Throws, throwablePool[rng.Intn(len(throwablePool))])
			}
			return true
		})
	register(CatException, "exc.add_inaccessible", "declare the package-private sun.java2d.pisces.PiscesRenderingEngine$2 thrown (Problem 3)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Throws = append(m.Throws, "sun/java2d/pisces/PiscesRenderingEngine$2")
			return true
		})
	register(CatException, "exc.add_non_throwable", "declare a non-Throwable (java.util.Map) thrown",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Throws = append(m.Throws, "java/util/Map")
			return true
		})
	register(CatException, "exc.add_missing", "declare a nonexistent class thrown",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Throws = append(m.Throws, "org/fuzz/NoSuchThrowable")
			return true
		})
	register(CatException, "exc.add_self", "declare the class itself thrown",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Throws = append(m.Throws, c.Name)
			return true
		})
	register(CatException, "exc.remove_one", "delete one declared exception",
		func(c *jimple.Class, rng *rand.Rand) bool {
			var with []*jimple.Method
			for _, m := range c.Methods {
				if len(m.Throws) > 0 {
					with = append(with, m)
				}
			}
			if len(with) == 0 {
				return false
			}
			m := with[rng.Intn(len(with))]
			i := rng.Intn(len(m.Throws))
			m.Throws = append(m.Throws[:i], m.Throws[i+1:]...)
			return true
		})
	register(CatException, "exc.remove_all", "delete every declared exception of a method",
		func(c *jimple.Class, rng *rand.Rand) bool {
			var with []*jimple.Method
			for _, m := range c.Methods {
				if len(m.Throws) > 0 {
					with = append(with, m)
				}
			}
			if len(with) == 0 {
				return false
			}
			with[rng.Intn(len(with))].Throws = nil
			return true
		})
	register(CatException, "exc.duplicate", "declare one exception twice",
		func(c *jimple.Class, rng *rand.Rand) bool {
			var with []*jimple.Method
			for _, m := range c.Methods {
				if len(m.Throws) > 0 {
					with = append(with, m)
				}
			}
			if len(with) == 0 {
				return false
			}
			m := with[rng.Intn(len(with))]
			m.Throws = append(m.Throws, m.Throws[rng.Intn(len(m.Throws))])
			return true
		})
}

var paramTypePool = []descriptor.Type{
	descriptor.Int,
	descriptor.Long,
	descriptor.Object("java/lang/String"),
	descriptor.Object("java/lang/Object"),
	descriptor.Object("java/util/Map"),
	descriptor.Array(descriptor.Object("java/lang/String"), 1),
}

func registerParameterMutators() {
	register(CatParameter, "param.insert_object_front", "insert a java.lang.Object parameter at the front (Table 2's main example)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Params = append([]descriptor.Type{descriptor.Object("java/lang/Object")}, m.Params...)
			return true
		})
	register(CatParameter, "param.insert_back", "append a pooled-type parameter",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Params = append(m.Params, paramTypePool[rng.Intn(len(paramTypePool))])
			return true
		})
	register(CatParameter, "param.remove_first", "delete the first parameter",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickParamMethod(c, rng)
			if m == nil {
				return false
			}
			m.Params = m.Params[1:]
			return true
		})
	register(CatParameter, "param.remove_last", "delete the last parameter",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickParamMethod(c, rng)
			if m == nil {
				return false
			}
			m.Params = m.Params[:len(m.Params)-1]
			return true
		})
	register(CatParameter, "param.remove_all", "delete every parameter",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickParamMethod(c, rng)
			if m == nil {
				return false
			}
			m.Params = nil
			return true
		})
	register(CatParameter, "param.change_type", "change one parameter's type (the internalTransform Map→String case)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickParamMethod(c, rng)
			if m == nil {
				return false
			}
			m.Params[rng.Intn(len(m.Params))] = paramTypePool[rng.Intn(len(paramTypePool))]
			return true
		})
	register(CatParameter, "param.change_to_primitive", "change one reference parameter to int",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickParamMethod(c, rng)
			if m == nil {
				return false
			}
			for i, p := range m.Params {
				if p.IsReference() {
					m.Params[i] = descriptor.Int
					return true
				}
			}
			return false
		})
	register(CatParameter, "param.swap_two", "swap two parameters' types",
		func(c *jimple.Class, rng *rand.Rand) bool {
			var with []*jimple.Method
			for _, m := range c.Methods {
				if len(m.Params) >= 2 {
					with = append(with, m)
				}
			}
			if len(with) == 0 {
				return false
			}
			m := with[rng.Intn(len(with))]
			i := rng.Intn(len(m.Params) - 1)
			m.Params[i], m.Params[i+1] = m.Params[i+1], m.Params[i]
			return true
		})
	register(CatParameter, "param.widen_to_long", "widen one parameter to long (shifting every later slot)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickParamMethod(c, rng)
			if m == nil {
				return false
			}
			m.Params[rng.Intn(len(m.Params))] = descriptor.Long
			return true
		})
	register(CatParameter, "param.duplicate_first", "duplicate the first parameter",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickParamMethod(c, rng)
			if m == nil {
				return false
			}
			m.Params = append([]descriptor.Type{m.Params[0]}, m.Params...)
			return true
		})
}

func pickParamMethod(c *jimple.Class, rng *rand.Rand) *jimple.Method {
	var with []*jimple.Method
	for _, m := range c.Methods {
		if len(m.Params) > 0 {
			with = append(with, m)
		}
	}
	if len(with) == 0 {
		return nil
	}
	return with[rng.Intn(len(with))]
}

var localTypePool = []descriptor.Type{
	descriptor.Int,
	descriptor.Long,
	descriptor.Float,
	descriptor.Double,
	descriptor.Object("java/lang/String"),
	descriptor.Object("java/util/Map"),
	descriptor.Object("java/lang/Object"),
	descriptor.Array(descriptor.Int, 1),
}

func registerLocalVarMutators() {
	register(CatLocalVar, "local.insert_int", "declare an extra int local",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			m.NewLocal(freshName("$i", rng), descriptor.Int)
			return true
		})
	register(CatLocalVar, "local.insert_string", "declare an extra String local",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			m.NewLocal(freshName("$s", rng), descriptor.Object("java/lang/String"))
			return true
		})
	register(CatLocalVar, "local.insert_long", "declare an extra two-slot long local",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			m.NewLocal(freshName("$l", rng), descriptor.Long)
			return true
		})
	register(CatLocalVar, "local.remove_one", "delete one local declaration (its uses become undefined-slot reads)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			var with []*jimple.Method
			for _, m := range c.Methods {
				if len(m.Locals) > 0 {
					with = append(with, m)
				}
			}
			if len(with) == 0 {
				return false
			}
			m := with[rng.Intn(len(with))]
			i := rng.Intn(len(m.Locals))
			m.Locals = append(m.Locals[:i], m.Locals[i+1:]...)
			return true
		})
	register(CatLocalVar, "local.remove_all", "delete every local declaration of a method",
		func(c *jimple.Class, rng *rand.Rand) bool {
			var with []*jimple.Method
			for _, m := range c.Methods {
				if len(m.Locals) > 0 {
					with = append(with, m)
				}
			}
			if len(with) == 0 {
				return false
			}
			with[rng.Intn(len(with))].Locals = nil
			return true
		})
	register(CatLocalVar, "local.retype_to_string", "change a local's type to java.lang.String (Table 2's $i0 example)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			l := pickLocal(pickBodiedMethod(c, rng), rng)
			if l == nil {
				return false
			}
			l.Type = descriptor.Object("java/lang/String")
			return true
		})
	register(CatLocalVar, "local.retype_to_int", "change a local's type to int",
		func(c *jimple.Class, rng *rand.Rand) bool {
			l := pickLocal(pickBodiedMethod(c, rng), rng)
			if l == nil {
				return false
			}
			l.Type = descriptor.Int
			return true
		})
	register(CatLocalVar, "local.retype_to_map", "change a local's type to java.util.Map",
		func(c *jimple.Class, rng *rand.Rand) bool {
			l := pickLocal(pickBodiedMethod(c, rng), rng)
			if l == nil {
				return false
			}
			l.Type = descriptor.Object("java/util/Map")
			return true
		})
	register(CatLocalVar, "local.retype_random", "change a local's type to a pooled type (Table 5 row 9)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			l := pickLocal(pickBodiedMethod(c, rng), rng)
			if l == nil {
				return false
			}
			l.Type = localTypePool[rng.Intn(len(localTypePool))]
			return true
		})
	register(CatLocalVar, "local.retype_to_self", "change a local's type to the class under mutation",
		func(c *jimple.Class, rng *rand.Rand) bool {
			l := pickLocal(pickBodiedMethod(c, rng), rng)
			if l == nil {
				return false
			}
			l.Type = descriptor.Object(c.Name)
			return true
		})
	register(CatLocalVar, "local.rename", "rename a local variable",
		func(c *jimple.Class, rng *rand.Rand) bool {
			l := pickLocal(pickBodiedMethod(c, rng), rng)
			if l == nil {
				return false
			}
			l.Name = freshName("$v", rng)
			return true
		})
	register(CatLocalVar, "local.swap_types", "swap the declared types of two locals",
		func(c *jimple.Class, rng *rand.Rand) bool {
			var with []*jimple.Method
			for _, m := range c.Methods {
				if len(m.Locals) >= 2 {
					with = append(with, m)
				}
			}
			if len(with) == 0 {
				return false
			}
			m := with[rng.Intn(len(with))]
			i := rng.Intn(len(m.Locals) - 1)
			m.Locals[i].Type, m.Locals[i+1].Type = m.Locals[i+1].Type, m.Locals[i].Type
			return true
		})
	register(CatLocalVar, "local.rebind_identity", "re-bind an identity statement to a different parameter index",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			for _, s := range m.Body {
				if id, ok := s.(*jimple.Identity); ok {
					id.Param = id.Param + 1
					return true
				}
			}
			return false
		})
	register(CatLocalVar, "local.drop_identity", "delete an identity statement (the parameter loses its binding)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			for i, s := range m.Body {
				if _, ok := s.(*jimple.Identity); ok {
					m.Body = append(m.Body[:i], m.Body[i+1:]...)
					jimple.RetargetAfterRemoval(m.Body, i)
					return true
				}
			}
			return false
		})
	register(CatLocalVar, "local.insert_unused_wide", "declare an unused double local (padding the frame)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			m.NewLocal(freshName("$d", rng), descriptor.Double)
			return true
		})
}

func registerJimpleMutators() {
	register(CatJimple, "jimple.insert_stmt", "insert a program statement at a random position",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			pos := rng.Intn(len(m.Body) + 1)
			var st jimple.Stmt
			switch rng.Intn(3) {
			case 0:
				st = &jimple.Nop{}
			case 1:
				st = &jimple.Return{}
			default:
				l := pickLocal(m, rng)
				if l == nil {
					st = &jimple.Nop{}
				} else {
					st = &jimple.Assign{LHS: &jimple.UseLocal{L: l}, RHS: &jimple.IntConst{V: int64(rng.Intn(10)), Kind: 'I'}}
				}
			}
			jimple.RetargetAfterInsertion(m.Body, pos)
			m.Body = append(m.Body[:pos], append([]jimple.Stmt{st}, m.Body[pos:]...)...)
			return true
		})
	register(CatJimple, "jimple.delete_stmt", "delete a program statement",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil || len(m.Body) == 0 {
				return false
			}
			i := rng.Intn(len(m.Body))
			m.Body = append(m.Body[:i], m.Body[i+1:]...)
			jimple.RetargetAfterRemoval(m.Body, i)
			return true
		})
	register(CatJimple, "jimple.swap_stmts", "swap two adjacent statements (Table 2's def-use reorder)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil || len(m.Body) < 2 {
				return false
			}
			i := rng.Intn(len(m.Body) - 1)
			m.Body[i], m.Body[i+1] = m.Body[i+1], m.Body[i]
			return true
		})
	register(CatJimple, "jimple.duplicate_stmt", "duplicate a program statement in place",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil || len(m.Body) == 0 {
				return false
			}
			i := rng.Intn(len(m.Body))
			dup := m.Clone() // clone to copy the statement with remapped locals
			_ = dup
			st := m.Body[i]
			jimple.RetargetAfterInsertion(m.Body, i)
			m.Body = append(m.Body[:i], append([]jimple.Stmt{st}, m.Body[i:]...)...)
			return true
		})
	register(CatJimple, "jimple.replace_with_return", "replace a statement with a bare return",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil || len(m.Body) == 0 {
				return false
			}
			m.Body[rng.Intn(len(m.Body))] = &jimple.Return{}
			return true
		})
	register(CatJimple, "jimple.move_to_end", "move a statement to the end of the body",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil || len(m.Body) < 2 {
				return false
			}
			i := rng.Intn(len(m.Body) - 1)
			st := m.Body[i]
			m.Body = append(m.Body[:i], m.Body[i+1:]...)
			jimple.RetargetAfterRemoval(m.Body, i)
			m.Body = append(m.Body, st)
			return true
		})
}
