package mutation

import (
	"math/rand"
	"testing"

	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jimple"
	"repro/internal/jvm"
)

func seedClass() *jimple.Class {
	c := jimple.NewClass("MSeed")
	c.Interfaces = []string{"java/io/Serializable"}
	c.AddField(classfile.AccProtected|classfile.AccFinal, "MAP", descriptor.Object("java/util/Map"))
	c.AddField(classfile.AccPrivate, "count", descriptor.Int)
	c.AddDefaultInit()
	helper := c.AddMethod(classfile.AccPublic, "helper",
		[]descriptor.Type{descriptor.Int, descriptor.Object("java/lang/String")}, descriptor.Int)
	helper.Throws = []string{"java/io/IOException"}
	this := helper.NewLocal("r0", descriptor.Object("MSeed"))
	arg := helper.NewLocal("i0", descriptor.Int)
	s := helper.NewLocal("s0", descriptor.Object("java/lang/String"))
	helper.Body = []jimple.Stmt{
		&jimple.Identity{Target: this, Param: -1},
		&jimple.Identity{Target: arg, Param: 0},
		&jimple.Identity{Target: s, Param: 1},
		&jimple.Return{Value: &jimple.UseLocal{L: arg}},
	}
	c.AddStandardMain("Completed!")
	return c
}

func TestRegistryHas129Mutators(t *testing.T) {
	reg := Registry()
	if len(reg) != TotalMutators || TotalMutators != 129 {
		t.Fatalf("registry has %d mutators, want 129", len(reg))
	}
	seen := map[string]bool{}
	for i, m := range reg {
		if m.ID != i {
			t.Errorf("mutator %s has ID %d at index %d", m.Name, m.ID, i)
		}
		if seen[m.Name] {
			t.Errorf("duplicate mutator name %s", m.Name)
		}
		seen[m.Name] = true
		if m.Doc == "" {
			t.Errorf("mutator %s lacks documentation", m.Name)
		}
	}
}

func TestCategorySplit(t *testing.T) {
	// The paper: 123 syntactic mutators + 6 Jimple-file mutators.
	counts := map[Category]int{}
	for _, m := range Registry() {
		counts[m.Category]++
	}
	if counts[CatJimple] != 6 {
		t.Errorf("jimple mutators = %d, want 6", counts[CatJimple])
	}
	syntactic := 0
	for cat, n := range counts {
		if cat != CatJimple {
			syntactic += n
		}
		if n == 0 {
			t.Errorf("category %s is empty", cat)
		}
	}
	if syntactic != 123 {
		t.Errorf("syntactic mutators = %d, want 123", syntactic)
	}
}

func TestEveryMutatorApplicableOnRichSeed(t *testing.T) {
	// On a seed exercising every structural feature, nearly all mutators
	// must be applicable; the few conditional ones are listed explicitly.
	conditional := map[string]bool{
		"method.clear_abstract":     true, // seed has no abstract method
		"method.give_abstract_code": true,
		"class.set_public":          true, // seed is already public
		"class.set_super_flag":      true, // seed already has ACC_SUPER
		"class.clear_final":         true,
		"class.clear_abstract":      true,
		"class.clear_interface":     true,
		"class.super_object":        true, // already Object
		"field.clear_static":        true,
		"method.set_public":         true, // random pick may already be public
		"field.set_public":          true,
		"field.set_private":         true,
		"field.set_protected":       true,
		"method.set_private":        true,
		"method.set_protected":      true,
		"method.set_static":         true,
		"method.clear_static":       true,
	}
	for _, m := range Registry() {
		applied := false
		for try := 0; try < 20 && !applied; try++ {
			c := seedClass().Clone()
			applied = m.Apply(c, rand.New(rand.NewSource(int64(try))))
		}
		if !applied && !conditional[m.Name] {
			t.Errorf("mutator %s never applied on the rich seed", m.Name)
		}
	}
}

func TestMutantsLowerAndSerialise(t *testing.T) {
	// Every mutator's output must survive lowering + serialisation
	// (possibly as an illegal class, but always as bytes) — Soot-style
	// dump failures are allowed only via Apply returning false.
	for _, m := range Registry() {
		for try := 0; try < 5; try++ {
			c := seedClass().Clone()
			if !m.Apply(c, rand.New(rand.NewSource(int64(try)))) {
				continue
			}
			f, err := jimple.Lower(c)
			if err != nil {
				t.Errorf("%s: lower failed: %v", m.Name, err)
				continue
			}
			if _, err := f.Bytes(); err != nil {
				t.Errorf("%s: serialise failed: %v", m.Name, err)
			}
		}
	}
}

func TestMutantsRunOnAllVMsWithoutPanic(t *testing.T) {
	vms := make([]*jvm.VM, 0, 5)
	for _, spec := range jvm.StandardFive() {
		vms = append(vms, jvm.New(spec))
	}
	rng := rand.New(rand.NewSource(42))
	for _, m := range Registry() {
		c := seedClass().Clone()
		if !m.Apply(c, rng) {
			continue
		}
		f, err := jimple.Lower(c)
		if err != nil {
			continue
		}
		data, err := f.Bytes()
		if err != nil {
			continue
		}
		for _, vm := range vms {
			o := vm.Run(data) // must not panic or hang
			_ = o
		}
	}
}

func TestDeterministicApplication(t *testing.T) {
	for _, m := range Registry() {
		c1 := seedClass().Clone()
		c2 := seedClass().Clone()
		a1 := m.Apply(c1, rand.New(rand.NewSource(7)))
		a2 := m.Apply(c2, rand.New(rand.NewSource(7)))
		if a1 != a2 {
			t.Errorf("%s: applicability differs across identical runs", m.Name)
			continue
		}
		if !a1 {
			continue
		}
		f1, err1 := jimple.Lower(c1)
		f2, err2 := jimple.Lower(c2)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%s: lowering determinism lost", m.Name)
			continue
		}
		if err1 != nil {
			continue
		}
		d1, _ := f1.Bytes()
		d2, _ := f2.Bytes()
		if string(d1) != string(d2) {
			t.Errorf("%s: same seed produced different mutants", m.Name)
		}
	}
}

func TestApplyNeverMutatesOnFalse(t *testing.T) {
	// When a mutator reports inapplicable, the class must be unchanged.
	empty := jimple.NewClass("MEmpty") // no fields, no methods
	for _, m := range Registry() {
		c := empty.Clone()
		if m.Apply(c, rand.New(rand.NewSource(1))) {
			continue
		}
		f1, _ := jimple.Lower(empty)
		f2, _ := jimple.Lower(c)
		d1, _ := f1.Bytes()
		d2, _ := f2.Bytes()
		if string(d1) != string(d2) {
			t.Errorf("%s: reported inapplicable but changed the class", m.Name)
		}
	}
}

func TestAbstractClinitMutatorBuildsProblem1(t *testing.T) {
	// method.abstract_clinit must reproduce Figure 2's discrepancy:
	// HotSpot runs the class, J9 rejects it with ClassFormatError.
	m := ByName("method.abstract_clinit")
	if m == nil {
		t.Fatal("method.abstract_clinit missing")
	}
	c := jimple.NewClass("MFig2")
	c.AddDefaultInit()
	c.AddStandardMain("Completed!")
	extra := c.AddMethod(classfile.AccPublic, "victim", nil, descriptor.Void)
	extra.Body = []jimple.Stmt{&jimple.Return{}}
	// Deterministically pick the victim: apply with seeds until <clinit>
	// lands on a non-essential method.
	var data []byte
	for seed := int64(0); seed < 50; seed++ {
		cc := c.Clone()
		if !m.Apply(cc, rand.New(rand.NewSource(seed))) {
			continue
		}
		if cc.FindMethod("main") == nil || cc.FindMethod("<init>") == nil {
			continue
		}
		f, err := jimple.Lower(cc)
		if err != nil {
			continue
		}
		data, _ = f.Bytes()
		break
	}
	if data == nil {
		t.Fatal("could not build the Figure 2 mutant")
	}
	hs := jvm.New(jvm.HotSpot8()).Run(data)
	j9 := jvm.New(jvm.J9()).Run(data)
	if !hs.OK() {
		t.Errorf("HotSpot should run the mutant, got %s", hs)
	}
	if j9.OK() || j9.Error != jvm.ErrClassFormat {
		t.Errorf("J9 should reject with ClassFormatError, got %s", j9)
	}
}

func TestRenameMethodCreatesResolutionDiscrepancy(t *testing.T) {
	// Renaming a method that main invokes must split eager and lazy VMs.
	c := jimple.NewClass("MRenFuzz")
	c.AddDefaultInit()
	callee := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "callee", nil, descriptor.Void)
	callee.Body = []jimple.Stmt{&jimple.Return{}}
	mm := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "main",
		[]descriptor.Type{descriptor.Array(descriptor.Object("java/lang/String"), 1)}, descriptor.Void)
	args := mm.NewLocal("r0", descriptor.Array(descriptor.Object("java/lang/String"), 1))
	mm.Body = []jimple.Stmt{
		&jimple.Identity{Target: args, Param: 0},
		&jimple.InvokeStmt{Call: &jimple.Invoke{Kind: jimple.InvokeStatic, Class: "MRenFuzz", Name: "callee",
			Sig: descriptor.Method{Return: descriptor.Void}}},
		&jimple.Return{},
	}
	// Rename callee directly (what method.rename does when it picks it).
	callee.Name = "renamed"
	f, err := jimple.Lower(c)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := f.Bytes()
	hs := jvm.New(jvm.HotSpot8()).Run(data)
	gij := jvm.New(jvm.GIJ()).Run(data)
	if hs.Error != jvm.ErrNoSuchMethod || hs.Phase != jvm.PhaseLinking {
		t.Errorf("HotSpot: want NoSuchMethodError at linking, got %s", hs)
	}
	if gij.Error != jvm.ErrNoSuchMethod || gij.Phase != jvm.PhaseRuntime {
		t.Errorf("GIJ: want NoSuchMethodError at runtime, got %s", gij)
	}
}

func TestByName(t *testing.T) {
	if ByName("method.rename") == nil {
		t.Error("method.rename should exist")
	}
	if ByName("no.such.mutator") != nil {
		t.Error("unknown name should return nil")
	}
}

// TestMutatorDiversityOfOutcomes sanity-checks that applying each
// mutator to the seed and running the mutant on the reference VM
// produces a healthy split between still-running and rejected classes.
func TestMutatorDiversityOfOutcomes(t *testing.T) {
	vm := jvm.New(jvm.HotSpot9())
	rng := rand.New(rand.NewSource(3))
	invoked, rejected := 0, 0
	for _, m := range Registry() {
		c := seedClass().Clone()
		if !m.Apply(c, rng) {
			continue
		}
		f, err := jimple.Lower(c)
		if err != nil {
			continue
		}
		data, err := f.Bytes()
		if err != nil {
			continue
		}
		if vm.Run(data).OK() {
			invoked++
		} else {
			rejected++
		}
	}
	if invoked == 0 {
		t.Error("no mutant ran: mutators are too destructive")
	}
	if rejected == 0 {
		t.Error("no mutant was rejected: mutators are too tame")
	}
	t.Logf("mutant outcomes on reference VM: %d invoked, %d rejected", invoked, rejected)
}
