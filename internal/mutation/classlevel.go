package mutation

import (
	"math/rand"

	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jimple"
)

// Candidate pools. They deliberately mix ordinary platform classes,
// final classes, abstract classes, interfaces, release-skewed classes
// (present or final only in some JRE versions) and names that do not
// exist anywhere — each pool entry feeds a different checking path in
// the VMs.
var (
	superclassPool = []string{
		"java/lang/Object",
		"java/lang/Thread",
		"java/lang/Exception",
		"java/lang/RuntimeException",
		"java/util/AbstractMap",
		"java/util/HashMap",
		"java/lang/String",                  // final
		"java/lang/Enum",                    // abstract
		"java/lang/Number",                  // abstract
		"com/sun/beans/editors/EnumEditor",  // final only from JRE8
		"com/sun/legacy/Jre7Only",           // exists only in JRE7
		"java/util/Optional",                // exists only from JRE8, final
		"sun/misc/Unsafe",                   // final, JRE7/8, encapsulated in 9
		"java/util/Map",                     // an interface
		"org/fuzz/DoesNotExist",             // missing everywhere
		"sun/java2d/pisces/RenderingEngine", // abstract, encapsulated in 9
	}

	interfacePool = []string{
		"java/io/Serializable",
		"java/lang/Cloneable",
		"java/lang/Runnable",
		"java/security/PrivilegedAction",
		"java/util/EventListener",
		"java/util/Map",
		"java/util/Observer",
		"java/util/function/Function", // JRE8+ only
		"java/lang/Comparable",
		"java/lang/Thread",     // a class, not an interface
		"org/fuzz/NoSuchIface", // missing
	}

	throwablePool = []string{
		"java/lang/Exception",
		"java/lang/RuntimeException",
		"java/lang/Error",
		"java/io/IOException",
		"java/lang/InterruptedException",
		"java/util/MissingResourceException",
	}

	fieldTypePool = []descriptor.Type{
		descriptor.Int,
		descriptor.Long,
		descriptor.Boolean,
		descriptor.Double,
		descriptor.Object("java/lang/String"),
		descriptor.Object("java/lang/Object"),
		descriptor.Object("java/util/Map"),
		descriptor.Array(descriptor.Int, 1),
		descriptor.Array(descriptor.Object("java/lang/String"), 1),
	}
)

func setClassFlag(flag classfile.Flags) func(*jimple.Class, *rand.Rand) bool {
	return func(c *jimple.Class, _ *rand.Rand) bool {
		if c.Modifiers.Has(flag) {
			return false
		}
		c.Modifiers = c.Modifiers.With(flag)
		return true
	}
}

func clearClassFlag(flag classfile.Flags) func(*jimple.Class, *rand.Rand) bool {
	return func(c *jimple.Class, _ *rand.Rand) bool {
		if !c.Modifiers.Has(flag) {
			return false
		}
		c.Modifiers = c.Modifiers.Without(flag)
		return true
	}
}

func setSuperTo(name string) func(*jimple.Class, *rand.Rand) bool {
	return func(c *jimple.Class, _ *rand.Rand) bool {
		if c.Super == name {
			return false
		}
		c.Super = name
		return true
	}
}

func registerClassMutators() {
	// Flag rewrites (the "private class M1437185190" example of Table 2).
	register(CatClass, "class.set_public", "set ACC_PUBLIC on the class", setClassFlag(classfile.AccPublic))
	register(CatClass, "class.clear_public", "clear ACC_PUBLIC from the class", clearClassFlag(classfile.AccPublic))
	register(CatClass, "class.set_private", "set the (illegal for top-level) ACC_PRIVATE bit", setClassFlag(classfile.AccPrivate))
	register(CatClass, "class.set_protected", "set the (illegal for top-level) ACC_PROTECTED bit", setClassFlag(classfile.AccProtected))
	register(CatClass, "class.set_final", "set ACC_FINAL on the class", setClassFlag(classfile.AccFinal))
	register(CatClass, "class.clear_final", "clear ACC_FINAL from the class", clearClassFlag(classfile.AccFinal))
	register(CatClass, "class.set_abstract", "set ACC_ABSTRACT on the class", setClassFlag(classfile.AccAbstract))
	register(CatClass, "class.clear_abstract", "clear ACC_ABSTRACT from the class", clearClassFlag(classfile.AccAbstract))
	register(CatClass, "class.set_interface", "turn the class into an interface by flag alone", setClassFlag(classfile.AccInterface))
	register(CatClass, "class.clear_interface", "clear ACC_INTERFACE", clearClassFlag(classfile.AccInterface))
	register(CatClass, "class.set_super_flag", "set the ACC_SUPER bit", setClassFlag(classfile.AccSuper))
	register(CatClass, "class.clear_super_flag", "clear the ACC_SUPER bit", clearClassFlag(classfile.AccSuper))
	register(CatClass, "class.set_synthetic", "mark the class synthetic", setClassFlag(classfile.AccSynthetic))
	register(CatClass, "class.set_annotation", "set ACC_ANNOTATION (without interface)", setClassFlag(classfile.AccAnnotation))
	register(CatClass, "class.set_enum", "set ACC_ENUM on the class", setClassFlag(classfile.AccEnum))

	// Name rewrites.
	register(CatClass, "class.rename", "rename the class (references keep the old name)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			c.Name = freshName("M", rng)
			return true
		})
	register(CatClass, "class.move_package", "move the class into a package",
		func(c *jimple.Class, rng *rand.Rand) bool {
			c.Name = "fuzz/pkg/" + c.Name
			return true
		})

	// Superclass rewrites.
	register(CatClass, "class.super_thread", "set java.lang.Thread as the superclass", setSuperTo("java/lang/Thread"))
	register(CatClass, "class.super_exception", "set java.lang.Exception as the superclass", setSuperTo("java/lang/Exception"))
	register(CatClass, "class.super_string", "set the final class java.lang.String as the superclass", setSuperTo("java/lang/String"))
	register(CatClass, "class.super_object", "reset the superclass to java.lang.Object", setSuperTo("java/lang/Object"))
	register(CatClass, "class.super_enum_editor", "set the release-skewed com.sun.beans.editors.EnumEditor as superclass", setSuperTo("com/sun/beans/editors/EnumEditor"))
	register(CatClass, "class.super_jre7_only", "set a JRE7-only class as the superclass", setSuperTo("com/sun/legacy/Jre7Only"))
	register(CatClass, "class.super_missing", "set a nonexistent superclass", setSuperTo("org/fuzz/DoesNotExist"))
	register(CatClass, "class.super_interface", "set an interface (java.util.Map) as the superclass", setSuperTo("java/util/Map"))
	register(CatClass, "class.super_self", "make the class its own superclass",
		func(c *jimple.Class, _ *rand.Rand) bool {
			c.Super = c.Name
			return true
		})
	register(CatClass, "class.super_random", "set a superclass randomly selected from a class list (Table 5 row 8)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			c.Super = superclassPool[rng.Intn(len(superclassPool))]
			return true
		})
	register(CatClass, "class.drop_super", "remove the superclass entirely",
		func(c *jimple.Class, _ *rand.Rand) bool {
			if c.Super == "" {
				return false
			}
			c.Super = ""
			return true
		})
}

func registerInterfaceMutators() {
	register(CatInterface, "iface.add_privileged_action", "implement java.security.PrivilegedAction (Table 2 example)",
		func(c *jimple.Class, _ *rand.Rand) bool {
			c.Interfaces = append(c.Interfaces, "java/security/PrivilegedAction")
			return true
		})
	register(CatInterface, "iface.add_random", "implement an interface from the candidate pool",
		func(c *jimple.Class, rng *rand.Rand) bool {
			c.Interfaces = append(c.Interfaces, interfacePool[rng.Intn(len(interfacePool))])
			return true
		})
	register(CatInterface, "iface.add_class", "implement a class (java.lang.Thread) as if it were an interface",
		func(c *jimple.Class, _ *rand.Rand) bool {
			c.Interfaces = append(c.Interfaces, "java/lang/Thread")
			return true
		})
	register(CatInterface, "iface.add_missing", "implement a nonexistent interface",
		func(c *jimple.Class, _ *rand.Rand) bool {
			c.Interfaces = append(c.Interfaces, "org/fuzz/NoSuchIface")
			return true
		})
	register(CatInterface, "iface.add_self", "make the class implement itself",
		func(c *jimple.Class, _ *rand.Rand) bool {
			c.Interfaces = append(c.Interfaces, c.Name)
			return true
		})
	register(CatInterface, "iface.remove_one", "delete one implemented interface",
		func(c *jimple.Class, rng *rand.Rand) bool {
			if len(c.Interfaces) == 0 {
				return false
			}
			i := rng.Intn(len(c.Interfaces))
			c.Interfaces = append(c.Interfaces[:i], c.Interfaces[i+1:]...)
			return true
		})
	register(CatInterface, "iface.remove_all", "delete every implemented interface",
		func(c *jimple.Class, _ *rand.Rand) bool {
			if len(c.Interfaces) == 0 {
				return false
			}
			c.Interfaces = nil
			return true
		})
	register(CatInterface, "iface.duplicate", "list one implemented interface twice",
		func(c *jimple.Class, rng *rand.Rand) bool {
			if len(c.Interfaces) == 0 {
				return false
			}
			c.Interfaces = append(c.Interfaces, c.Interfaces[rng.Intn(len(c.Interfaces))])
			return true
		})
}
