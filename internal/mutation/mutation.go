// Package mutation defines the 129 mutation operators (mutators) of
// §2.2.1: syntactic rewrites of a class's structure (modifiers,
// hierarchy, fields, methods, exceptions, parameters, local variables)
// plus the six Jimple statement-level mutators. Mutators operate on the
// jimple.Class model — the SootClass analogue — so a mutant is produced
// by cloning a seed, applying one mutator, and lowering the result to a
// classfile.
package mutation

import (
	"fmt"
	"math/rand"

	"repro/internal/jimple"
)

// Category groups mutators the way Table 2 of the paper does.
type Category string

// Mutator categories.
const (
	CatClass     Category = "class"
	CatInterface Category = "interface"
	CatField     Category = "field"
	CatMethod    Category = "method"
	CatException Category = "exception"
	CatParameter Category = "parameter"
	CatLocalVar  Category = "localvar"
	CatJimple    Category = "jimple"
)

// Mutator is one mutation operator.
type Mutator struct {
	// ID is the stable index of the mutator in the registry (0..128).
	ID int
	// Name is a short unique slug like "method.rename".
	Name string
	// Category is the Table 2 family.
	Category Category
	// Doc describes the rewrite.
	Doc string
	// apply rewrites c in place. It reports whether the mutator was
	// applicable (e.g. deleting a field requires a field). Callers clone
	// the seed first.
	apply func(c *jimple.Class, rng *rand.Rand) bool
}

// Apply runs the mutator on c (in place), reporting applicability.
// It never panics: a mutator that trips on an exotic model shape counts
// as inapplicable, mirroring Soot transformations that fail to dump.
func (m *Mutator) Apply(c *jimple.Class, rng *rand.Rand) (applied bool) {
	defer func() {
		if r := recover(); r != nil {
			applied = false
		}
	}()
	return m.apply(c, rng)
}

// TotalMutators is the number of mutation operators, matching the
// paper's 129.
const TotalMutators = 129

var registry []*Mutator

// Registry returns the full mutator list in stable ID order. The
// returned slice is shared; do not modify it.
func Registry() []*Mutator { return registry }

// ByName finds a mutator by its slug.
func ByName(name string) *Mutator {
	for _, m := range registry {
		if m.Name == name {
			return m
		}
	}
	return nil
}

func register(cat Category, name, doc string, apply func(*jimple.Class, *rand.Rand) bool) {
	registry = append(registry, &Mutator{
		ID:       len(registry),
		Name:     name,
		Category: cat,
		Doc:      doc,
		apply:    apply,
	})
}

func init() {
	registerClassMutators()
	registerInterfaceMutators()
	registerFieldMutators()
	registerMethodMutators()
	registerExceptionMutators()
	registerParameterMutators()
	registerLocalVarMutators()
	registerJimpleMutators()
	if len(registry) != TotalMutators {
		panic(fmt.Sprintf("mutation: registry holds %d mutators, want %d", len(registry), TotalMutators))
	}
}

// --- shared random pick helpers ---------------------------------------------

func pickMethod(c *jimple.Class, rng *rand.Rand) *jimple.Method {
	if len(c.Methods) == 0 {
		return nil
	}
	return c.Methods[rng.Intn(len(c.Methods))]
}

// pickBodiedMethod picks a method that has a body.
func pickBodiedMethod(c *jimple.Class, rng *rand.Rand) *jimple.Method {
	var with []*jimple.Method
	for _, m := range c.Methods {
		if len(m.Body) > 0 {
			with = append(with, m)
		}
	}
	if len(with) == 0 {
		return nil
	}
	return with[rng.Intn(len(with))]
}

func pickField(c *jimple.Class, rng *rand.Rand) *jimple.Field {
	if len(c.Fields) == 0 {
		return nil
	}
	return c.Fields[rng.Intn(len(c.Fields))]
}

func pickLocal(m *jimple.Method, rng *rand.Rand) *jimple.Local {
	if m == nil || len(m.Locals) == 0 {
		return nil
	}
	return m.Locals[rng.Intn(len(m.Locals))]
}

// freshName derives a new identifier.
func freshName(prefix string, rng *rand.Rand) string {
	return fmt.Sprintf("%s%d", prefix, rng.Intn(100000))
}
