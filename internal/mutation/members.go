package mutation

import (
	"math/rand"

	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jimple"
)

// templateDonor builds the "another class" whose members the
// replace-all mutators graft in (Table 5 rows 1 and 5). Its methods use
// only platform calls every release resolves.
func templateDonor() *jimple.Class {
	c := jimple.NewClass("fuzz/TemplateDonor")
	c.AddField(classfile.AccPrivate, "size", descriptor.Int)
	c.AddField(classfile.AccProtected|classfile.AccFinal, "MAP", descriptor.Object("java/util/Map"))
	c.AddField(classfile.AccPublic|classfile.AccStatic, "NAME", descriptor.Object("java/lang/String"))

	ts := c.AddMethod(classfile.AccPublic, "toString", nil, descriptor.Object("java/lang/String"))
	this := ts.NewLocal("r0", descriptor.Object("fuzz/TemplateDonor"))
	ts.Body = []jimple.Stmt{
		&jimple.Identity{Target: this, Param: -1},
		&jimple.Return{Value: &jimple.StringConst{V: "donor"}},
	}

	sz := c.AddMethod(classfile.AccPublic, "size", nil, descriptor.Int)
	this2 := sz.NewLocal("r0", descriptor.Object("fuzz/TemplateDonor"))
	sz.Body = []jimple.Stmt{
		&jimple.Identity{Target: this2, Param: -1},
		&jimple.Return{Value: &jimple.InstanceFieldRef{Base: this2, Class: "fuzz/TemplateDonor", Name: "size", Type: descriptor.Int}},
	}

	cp := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "compute",
		[]descriptor.Type{descriptor.Int, descriptor.Int}, descriptor.Int)
	a := cp.NewLocal("i0", descriptor.Int)
	b := cp.NewLocal("i1", descriptor.Int)
	cp.Body = []jimple.Stmt{
		&jimple.Identity{Target: a, Param: 0},
		&jimple.Identity{Target: b, Param: 1},
		&jimple.Return{Value: &jimple.BinOp{Op: jimple.OpMul, L: &jimple.UseLocal{L: a}, R: &jimple.UseLocal{L: b}, Kind: 'I'}},
	}
	return c
}

func setFieldFlag(flag classfile.Flags) func(*jimple.Class, *rand.Rand) bool {
	return func(c *jimple.Class, rng *rand.Rand) bool {
		f := pickField(c, rng)
		if f == nil || f.Modifiers.Has(flag) {
			return false
		}
		f.Modifiers = f.Modifiers.With(flag)
		return true
	}
}

func clearFieldFlag(flag classfile.Flags) func(*jimple.Class, *rand.Rand) bool {
	return func(c *jimple.Class, rng *rand.Rand) bool {
		f := pickField(c, rng)
		if f == nil || !f.Modifiers.Has(flag) {
			return false
		}
		f.Modifiers = f.Modifiers.Without(flag)
		return true
	}
}

func registerFieldMutators() {
	register(CatField, "field.add", "insert a new field of a pooled type",
		func(c *jimple.Class, rng *rand.Rand) bool {
			t := fieldTypePool[rng.Intn(len(fieldTypePool))]
			c.AddField(classfile.AccPublic, freshName("f", rng), t)
			return true
		})
	register(CatField, "field.add_duplicate", "insert an exact duplicate of an existing field (the GIJ discrepancy)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			f := pickField(c, rng)
			if f == nil {
				return false
			}
			c.AddField(f.Modifiers, f.Name, f.Type)
			return true
		})
	register(CatField, "field.add_same_name_object", "add a same-named public Object field (Table 2's MAP example)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			f := pickField(c, rng)
			if f == nil {
				return false
			}
			c.AddField(classfile.AccPublic, f.Name, descriptor.Object("java/lang/Object"))
			return true
		})
	register(CatField, "field.remove_one", "delete one field (references keep pointing at it)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			if len(c.Fields) == 0 {
				return false
			}
			i := rng.Intn(len(c.Fields))
			c.Fields = append(c.Fields[:i], c.Fields[i+1:]...)
			return true
		})
	register(CatField, "field.remove_all", "delete every field",
		func(c *jimple.Class, _ *rand.Rand) bool {
			if len(c.Fields) == 0 {
				return false
			}
			c.Fields = nil
			return true
		})
	register(CatField, "field.rename", "rename a field declaration only",
		func(c *jimple.Class, rng *rand.Rand) bool {
			f := pickField(c, rng)
			if f == nil {
				return false
			}
			f.Name = freshName("f", rng)
			return true
		})
	register(CatField, "field.change_type", "change a field's declared type",
		func(c *jimple.Class, rng *rand.Rand) bool {
			f := pickField(c, rng)
			if f == nil {
				return false
			}
			f.Type = fieldTypePool[rng.Intn(len(fieldTypePool))]
			return true
		})
	register(CatField, "field.set_public", "set ACC_PUBLIC on a field", setFieldFlag(classfile.AccPublic))
	register(CatField, "field.set_private", "set ACC_PRIVATE on a field", setFieldFlag(classfile.AccPrivate))
	register(CatField, "field.set_protected", "set ACC_PROTECTED on a field", setFieldFlag(classfile.AccProtected))
	register(CatField, "field.clear_visibility", "strip all visibility flags from a field",
		func(c *jimple.Class, rng *rand.Rand) bool {
			f := pickField(c, rng)
			vis := classfile.AccPublic | classfile.AccPrivate | classfile.AccProtected
			if f == nil || f.Modifiers&vis == 0 {
				return false
			}
			f.Modifiers = f.Modifiers.Without(vis)
			return true
		})
	register(CatField, "field.set_static", "set ACC_STATIC on a field", setFieldFlag(classfile.AccStatic))
	register(CatField, "field.clear_static", "clear ACC_STATIC from a field", clearFieldFlag(classfile.AccStatic))
	register(CatField, "field.set_final", "set ACC_FINAL on a field", setFieldFlag(classfile.AccFinal))
	register(CatField, "field.set_final_volatile", "set the conflicting ACC_FINAL|ACC_VOLATILE pair",
		func(c *jimple.Class, rng *rand.Rand) bool {
			f := pickField(c, rng)
			if f == nil {
				return false
			}
			f.Modifiers = f.Modifiers.With(classfile.AccFinal | classfile.AccVolatile)
			return true
		})
	register(CatField, "field.set_transient", "set ACC_TRANSIENT on a field", setFieldFlag(classfile.AccTransient))
	register(CatField, "field.replace_all", "replace all fields with those of another class (Table 5 row 5)",
		func(c *jimple.Class, _ *rand.Rand) bool {
			donor := templateDonor()
			c.Fields = nil
			for _, f := range donor.Fields {
				ff := *f
				c.Fields = append(c.Fields, &ff)
			}
			return true
		})
}

func setMethodFlag(flag classfile.Flags) func(*jimple.Class, *rand.Rand) bool {
	return func(c *jimple.Class, rng *rand.Rand) bool {
		m := pickMethod(c, rng)
		if m == nil || m.Modifiers.Has(flag) {
			return false
		}
		m.Modifiers = m.Modifiers.With(flag)
		return true
	}
}

func clearMethodFlag(flag classfile.Flags) func(*jimple.Class, *rand.Rand) bool {
	return func(c *jimple.Class, rng *rand.Rand) bool {
		m := pickMethod(c, rng)
		if m == nil || !m.Modifiers.Has(flag) {
			return false
		}
		m.Modifiers = m.Modifiers.Without(flag)
		return true
	}
}

func renameMethodTo(name string) func(*jimple.Class, *rand.Rand) bool {
	return func(c *jimple.Class, rng *rand.Rand) bool {
		m := pickMethod(c, rng)
		if m == nil || m.Name == name {
			return false
		}
		m.Name = name
		return true
	}
}

var returnTypePool = []descriptor.Type{
	descriptor.Void,
	descriptor.Int,
	descriptor.Long,
	descriptor.Object("java/lang/String"),
	descriptor.Object("java/lang/Thread"),
	descriptor.Object("java/util/Map"),
	descriptor.Array(descriptor.Int, 1),
}

func registerMethodMutators() {
	register(CatMethod, "method.add_void", "insert a new empty void method",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := c.AddMethod(classfile.AccPublic, freshName("m", rng), nil, descriptor.Void)
			this := m.NewLocal("r0", descriptor.Object(c.Name))
			m.Body = []jimple.Stmt{&jimple.Identity{Target: this, Param: -1}, &jimple.Return{}}
			return true
		})
	register(CatMethod, "method.add_static_int", "insert a new static int-returning method",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, freshName("calc", rng), nil, descriptor.Int)
			m.Body = []jimple.Stmt{&jimple.Return{Value: &jimple.IntConst{V: int64(rng.Intn(100)), Kind: 'I'}}}
			return true
		})
	register(CatMethod, "method.remove_one", "delete one method (Table 5 row 10)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			if len(c.Methods) == 0 {
				return false
			}
			i := rng.Intn(len(c.Methods))
			c.Methods = append(c.Methods[:i], c.Methods[i+1:]...)
			return true
		})
	register(CatMethod, "method.remove_all", "delete every method",
		func(c *jimple.Class, _ *rand.Rand) bool {
			if len(c.Methods) == 0 {
				return false
			}
			c.Methods = nil
			return true
		})
	register(CatMethod, "method.rename", "rename a method declaration only (Table 5 row 4)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Name = freshName("m", rng)
			return true
		})
	register(CatMethod, "method.rename_to_clinit", "rename a method to <clinit> (Problem 1 construction)", renameMethodTo("<clinit>"))
	register(CatMethod, "method.rename_to_init", "rename a method to <init>", renameMethodTo("<init>"))
	register(CatMethod, "method.rename_to_main", "rename a method to main", renameMethodTo("main"))
	register(CatMethod, "method.rename_to_finalize", "rename a method to finalize", renameMethodTo("finalize"))
	register(CatMethod, "method.change_return_type", "change a method's return type (Table 5 row 6)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Return = returnTypePool[rng.Intn(len(returnTypePool))]
			return true
		})
	register(CatMethod, "method.return_void", "force a method's return type to void",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil || m.Return.IsVoid() {
				return false
			}
			m.Return = descriptor.Void
			return true
		})
	register(CatMethod, "method.set_public", "set ACC_PUBLIC on a method", setMethodFlag(classfile.AccPublic))
	register(CatMethod, "method.set_private", "set ACC_PRIVATE on a method", setMethodFlag(classfile.AccPrivate))
	register(CatMethod, "method.set_protected", "set ACC_PROTECTED on a method", setMethodFlag(classfile.AccProtected))
	register(CatMethod, "method.clear_visibility", "strip all visibility flags from a method",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			vis := classfile.AccPublic | classfile.AccPrivate | classfile.AccProtected
			if m == nil || m.Modifiers&vis == 0 {
				return false
			}
			m.Modifiers = m.Modifiers.Without(vis)
			return true
		})
	register(CatMethod, "method.conflicting_visibility", "set both public and private on a method",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Modifiers = m.Modifiers.With(classfile.AccPublic | classfile.AccPrivate)
			return true
		})
	register(CatMethod, "method.set_static", "set ACC_STATIC (e.g. a static <init> — Table 2)", setMethodFlag(classfile.AccStatic))
	register(CatMethod, "method.clear_static", "clear ACC_STATIC (e.g. an instance main)", clearMethodFlag(classfile.AccStatic))
	register(CatMethod, "method.set_final", "set ACC_FINAL on a method", setMethodFlag(classfile.AccFinal))
	register(CatMethod, "method.set_abstract_keep_code", "set ACC_ABSTRACT but keep the Code attribute",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			m.Modifiers = m.Modifiers.With(classfile.AccAbstract)
			return true
		})
	register(CatMethod, "method.make_abstract_drop_code", "set ACC_ABSTRACT and delete the opcode (Figure 2 construction)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			m.Modifiers = m.Modifiers.With(classfile.AccAbstract).Without(classfile.AccStatic | classfile.AccFinal)
			m.Body = nil
			return true
		})
	register(CatMethod, "method.clear_abstract", "clear ACC_ABSTRACT (leaving a code-less concrete method)", clearMethodFlag(classfile.AccAbstract))
	register(CatMethod, "method.set_native_keep_code", "set ACC_NATIVE but keep the Code attribute",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			m.Modifiers = m.Modifiers.With(classfile.AccNative)
			return true
		})
	register(CatMethod, "method.set_native_drop_code", "turn a method native (deleting its body)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			m.Modifiers = m.Modifiers.With(classfile.AccNative)
			m.Body = nil
			return true
		})
	register(CatMethod, "method.set_synchronized", "set ACC_SYNCHRONIZED on a method", setMethodFlag(classfile.AccSynchronized))
	register(CatMethod, "method.set_strict", "set ACC_STRICT on a method", setMethodFlag(classfile.AccStrict))
	register(CatMethod, "method.set_bridge", "set ACC_BRIDGE on a method", setMethodFlag(classfile.AccBridge))
	register(CatMethod, "method.set_varargs", "set ACC_VARARGS on a method", setMethodFlag(classfile.AccVarargs))
	register(CatMethod, "method.set_synthetic", "set ACC_SYNTHETIC on a method", setMethodFlag(classfile.AccSynthetic))
	register(CatMethod, "method.delete_code", "delete a concrete method's Code attribute without making it abstract",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			m.Body = nil
			return true
		})
	register(CatMethod, "method.empty_code", "replace a method's body with an empty code array",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickBodiedMethod(c, rng)
			if m == nil {
				return false
			}
			m.Body = []jimple.Stmt{}
			m.Locals = nil
			return true
		})
	register(CatMethod, "method.give_abstract_code", "attach a body to an abstract method",
		func(c *jimple.Class, rng *rand.Rand) bool {
			var abs []*jimple.Method
			for _, m := range c.Methods {
				if m.Modifiers.Has(classfile.AccAbstract) && m.Body == nil {
					abs = append(abs, m)
				}
			}
			if len(abs) == 0 {
				return false
			}
			m := abs[rng.Intn(len(abs))]
			m.Body = []jimple.Stmt{&jimple.Return{}}
			return true
		})
	register(CatMethod, "method.replace_all", "replace all methods with those of another class (Table 5 row 1)",
		func(c *jimple.Class, _ *rand.Rand) bool {
			donor := templateDonor()
			c.Methods = nil
			for _, m := range donor.Methods {
				c.Methods = append(c.Methods, m.Clone())
			}
			return true
		})
	register(CatMethod, "method.duplicate", "insert an exact duplicate of a method",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			c.Methods = append(c.Methods, m.Clone())
			return true
		})
	register(CatMethod, "method.swap_bodies", "swap the bodies (and locals) of two methods",
		func(c *jimple.Class, rng *rand.Rand) bool {
			if len(c.Methods) < 2 {
				return false
			}
			i := rng.Intn(len(c.Methods))
			j := rng.Intn(len(c.Methods))
			if i == j {
				j = (j + 1) % len(c.Methods)
			}
			a, b := c.Methods[i], c.Methods[j]
			a.Body, b.Body = b.Body, a.Body
			a.Locals, b.Locals = b.Locals, a.Locals
			a.RawHandlers, b.RawHandlers = b.RawHandlers, a.RawHandlers
			return true
		})
	register(CatMethod, "method.abstract_clinit", "rename an abstract method to <clinit> (Figure 2's exact mutant)",
		func(c *jimple.Class, rng *rand.Rand) bool {
			m := pickMethod(c, rng)
			if m == nil {
				return false
			}
			m.Name = "<clinit>"
			m.Params = nil
			m.Return = descriptor.Void
			m.Modifiers = classfile.AccPublic | classfile.AccAbstract
			m.Body = nil
			return true
		})
}
