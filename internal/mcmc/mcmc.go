// Package mcmc implements the Metropolis–Hastings mutator-selection
// machinery of §2.2.2: mutators are ranked by their empirical success
// rate at creating representative classfiles, and the sampler draws
// mutators so that the rank distribution approaches the geometric
// distribution Pr(X = k) = (1-p)^(k-1) p — high-success mutators are
// proposed often while the worst mutator still has a chance.
package mcmc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/telemetry"
)

// Sampler is the Metropolis–Hastings chain over mutator ranks. It owns
// no RNG of its own: each Next call draws from the generator its caller
// passes, so the chain's stochastic behaviour is controlled entirely by
// the caller's stream (the campaign engine hands it the per-iteration
// draw stream).
type Sampler struct {
	n int
	p float64

	selected  []int // times each mutator id was selected
	succeeded []int // representative classfiles each mutator id created
	// order maps rank -> mutator id, sorted by descending success rate;
	// rank maps mutator id -> rank (0-based; the paper's k is rank+1).
	order []int
	rank  []int

	current int // current sample (mutator id), the chain state mu1
	total   int // total selections

	// Live per-mutator telemetry, attached via Instrument; nil slices
	// (the default) keep the chain telemetry-free.
	selGauges  []*telemetry.Gauge
	succGauges []*telemetry.Gauge
}

// NewSampler builds a chain over n mutators with geometric parameter p.
// The initial state is a uniformly random mutator (Algorithm 1 line 3);
// rng is consumed only for that initial draw.
func NewSampler(n int, p float64, rng *rand.Rand) *Sampler {
	if n <= 0 {
		panic("mcmc: sampler needs at least one mutator")
	}
	s := &Sampler{
		n:         n,
		p:         p,
		selected:  make([]int, n),
		succeeded: make([]int, n),
		order:     make([]int, n),
		rank:      make([]int, n),
	}
	for i := 0; i < n; i++ {
		s.order[i] = i
		s.rank[i] = i
	}
	s.current = rng.Intn(n)
	return s
}

// Instrument attaches live per-mutator gauges, indexed by mutator id:
// selected[id] tracks the selection count, succeeded[id] the
// representative count, updated as Next and Record run. Telemetry is
// observe-only — the chain's stochastic behaviour is untouched. Either
// slice may be nil or short; missing entries are skipped.
func (s *Sampler) Instrument(selected, succeeded []*telemetry.Gauge) {
	s.selGauges = selected
	s.succGauges = succeeded
}

// P returns the geometric parameter.
func (s *Sampler) P() float64 { return s.p }

// N returns the number of mutators.
func (s *Sampler) N() int { return s.n }

// Next performs one Metropolis–Hastings step (Algorithm 1 lines 6–10)
// and returns the accepted mutator id. The proposal distribution is
// uniform (hence symmetric), so the acceptance probability reduces to
// A(mu1→mu2) = min(1, (1-p)^(k2-k1)): proposals ranked at least as well
// as the current state are always accepted; worse-ranked proposals are
// accepted with geometrically decaying probability.
//
// Note: Algorithm 1's line 10 as printed inverts the comparison; we
// follow the acceptance formula of the §2.2.2 text, which matches
// standard Metropolis–Hastings.
func (s *Sampler) Next(rng *rand.Rand) int {
	k1 := s.rank[s.current]
	for {
		mu2 := rng.Intn(s.n)
		k2 := s.rank[mu2]
		if k2 <= k1 || rng.Float64() < math.Pow(1-s.p, float64(k2-k1)) {
			s.current = mu2
			s.selected[mu2]++
			s.total++
			if mu2 < len(s.selGauges) {
				s.selGauges[mu2].Set(int64(s.selected[mu2]))
			}
			return mu2
		}
	}
}

// Record updates the success statistics of a mutator after its mutant
// was judged (success = accepted as representative) and re-sorts the
// rank order (Algorithm 1 lines 15–16).
func (s *Sampler) Record(id int, success bool) {
	if success {
		s.succeeded[id]++
		if id < len(s.succGauges) {
			s.succGauges[id].Set(int64(s.succeeded[id]))
		}
	}
	s.resort()
}

// SuccessRate returns succ(mu) = #representative / #selected.
func (s *Sampler) SuccessRate(id int) float64 {
	if s.selected[id] == 0 {
		return 0
	}
	return float64(s.succeeded[id]) / float64(s.selected[id])
}

// Frequency returns the fraction of all selections that chose id.
func (s *Sampler) Frequency(id int) float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.selected[id]) / float64(s.total)
}

// Selected returns how many times id was selected.
func (s *Sampler) Selected(id int) int { return s.selected[id] }

// Succeeded returns how many representative classfiles id created.
func (s *Sampler) Succeeded(id int) int { return s.succeeded[id] }

// Rank returns the current 0-based rank of id (0 = highest success rate).
func (s *Sampler) Rank(id int) int { return s.rank[id] }

// Order returns mutator ids in descending success-rate order (a copy).
func (s *Sampler) Order() []int { return append([]int(nil), s.order...) }

// resort re-sorts mutators by descending success rate; ties keep id
// order so the sort is deterministic.
func (s *Sampler) resort() {
	sort.SliceStable(s.order, func(a, b int) bool {
		ra := s.SuccessRate(s.order[a])
		rb := s.SuccessRate(s.order[b])
		if ra != rb {
			return ra > rb
		}
		return s.order[a] < s.order[b]
	})
	for r, id := range s.order {
		s.rank[id] = r
	}
}

// UniformSampler is the ablation baseline used by uniquefuzz: mutators
// are selected uniformly at random with no success-rate guidance. Like
// Sampler it draws from the caller's generator.
type UniformSampler struct {
	n        int
	selected []int
	total    int
}

// NewUniformSampler builds the unguided selector.
func NewUniformSampler(n int) *UniformSampler {
	return &UniformSampler{n: n, selected: make([]int, n)}
}

// Next selects a mutator uniformly from rng.
func (u *UniformSampler) Next(rng *rand.Rand) int {
	id := rng.Intn(u.n)
	u.selected[id]++
	u.total++
	return id
}

// Record is a no-op; the uniform sampler ignores feedback.
func (u *UniformSampler) Record(int, bool) {}

// Frequency returns the fraction of selections that chose id.
func (u *UniformSampler) Frequency(id int) float64 {
	if u.total == 0 {
		return 0
	}
	return float64(u.selected[id]) / float64(u.total)
}

// Selector is the interface both samplers satisfy; the campaign engine
// is parameterised over it. Next draws from the generator the caller
// supplies — the engine's sequential draw stage passes the iteration's
// derived draw stream, which is what makes selection deterministic at
// any worker count.
type Selector interface {
	Next(rng *rand.Rand) int
	Record(id int, success bool)
}

var (
	_ Selector = (*Sampler)(nil)
	_ Selector = (*UniformSampler)(nil)
)

// Geometric returns Pr(X = k) = (1-p)^(k-1) p for k ≥ 1.
func Geometric(p float64, k int) float64 {
	if k < 1 {
		return 0
	}
	return math.Pow(1-p, float64(k-1)) * p
}

// PBounds computes the valid range (lo, hi) for the geometric parameter
// under the three conditions of §2.2.2's parameter estimation, for n
// mutators and deviation eps:
//
//  1. Σ_{k=1..n} Pr(X=k) ≥ 0.95   (accumulative probability approaches 1)
//  2. p ≥ 1/n                      (top mutator beats uniform selection)
//  3. (1-p)^(n-1) p > eps          (worst mutator keeps a chance)
//
// For n = 129, eps = 0.001 this reproduces the paper's ≈(0.022, 0.025).
func PBounds(n int, eps float64) (lo, hi float64, err error) {
	cond := func(p float64) (bool, bool, bool) {
		c1 := 1-math.Pow(1-p, float64(n)) >= 0.95
		c2 := p >= 1/float64(n)
		c3 := math.Pow(1-p, float64(n-1))*p > eps
		return c1, c2, c3
	}
	const step = 1e-5
	lo, hi = -1, -1
	for p := step; p < 0.5; p += step {
		c1, c2, c3 := cond(p)
		if c1 && c2 && c3 {
			if lo < 0 {
				lo = p
			}
			hi = p
		}
	}
	if lo < 0 {
		return 0, 0, fmt.Errorf("mcmc: no feasible p for n=%d eps=%g", n, eps)
	}
	return lo, hi, nil
}

// DefaultP returns the paper's choice p = 3/n (≈ 0.023 for n = 129).
func DefaultP(n int) float64 { return 3 / float64(n) }
