package mcmc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/telemetry"
)

func TestPBoundsMatchPaper(t *testing.T) {
	lo, hi, err := PBounds(129, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports the feasible range as (0.022, 0.025).
	if lo < 0.020 || lo > 0.025 {
		t.Errorf("lo = %g, want ≈0.022-0.023", lo)
	}
	if hi < 0.023 || hi > 0.027 {
		t.Errorf("hi = %g, want ≈0.025", hi)
	}
	p := DefaultP(129)
	if math.Abs(p-0.023255) > 1e-4 {
		t.Errorf("DefaultP(129) = %g, want ≈0.0233", p)
	}
	if p < lo || p > hi {
		t.Errorf("p = 3/129 = %g must lie inside (%g, %g)", p, lo, hi)
	}
}

func TestPBoundsInfeasible(t *testing.T) {
	// Huge eps makes condition 3 unsatisfiable together with 1.
	if _, _, err := PBounds(129, 0.5); err == nil {
		t.Error("expected infeasibility")
	}
}

func TestGeometricDistribution(t *testing.T) {
	p := 0.25
	if Geometric(p, 1) != p {
		t.Errorf("Pr(X=1) = %g, want %g", Geometric(p, 1), p)
	}
	if Geometric(p, 0) != 0 {
		t.Error("Pr(X=0) must be 0")
	}
	sum := 0.0
	for k := 1; k <= 200; k++ {
		sum += Geometric(p, k)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("geometric mass sums to %g", sum)
	}
	if !(Geometric(p, 1) > Geometric(p, 2) && Geometric(p, 2) > Geometric(p, 3)) {
		t.Error("geometric mass must decrease in k")
	}
}

func TestSamplerAlwaysAcceptsBetterRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSampler(10, DefaultP(10), rng)
	// Give mutator 7 a perfect record so it ranks first.
	s.selected[7] = 10
	s.succeeded[7] = 10
	s.Record(7, false) // trigger resort
	if s.Rank(7) != 0 {
		t.Fatalf("mutator 7 should rank first, got %d", s.Rank(7))
	}
}

func TestSamplerConvergesTowardSuccessfulMutators(t *testing.T) {
	// Simulate a world where low-id mutators succeed more often; after
	// many steps the selection frequency must be monotone-ish in the
	// underlying success probability.
	rng := rand.New(rand.NewSource(42))
	n := 10
	s := NewSampler(n, DefaultP(n), rng)
	succProb := func(id int) float64 { return 1 - float64(id)/float64(n) }
	for i := 0; i < 20000; i++ {
		id := s.Next(rng)
		s.Record(id, rng.Float64() < succProb(id))
	}
	// The best mutator must be selected far more often than the worst.
	if s.Frequency(0) < 2*s.Frequency(n-1) {
		t.Errorf("frequency(best)=%g should dominate frequency(worst)=%g",
			s.Frequency(0), s.Frequency(n-1))
	}
	// And ranks should reflect the success ordering at least at the ends.
	if s.Rank(0) > n/2 {
		t.Errorf("best mutator ranked %d", s.Rank(0))
	}
	if s.Rank(n-1) < n/2 {
		t.Errorf("worst mutator ranked %d", s.Rank(n-1))
	}
}

func TestSamplerEveryMutatorKeepsAChance(t *testing.T) {
	// Condition 3 of the parameter estimation: even the worst-ranked
	// mutator must still be selected occasionally.
	rng := rand.New(rand.NewSource(7))
	n := 20
	s := NewSampler(n, DefaultP(n), rng)
	for i := 0; i < 5000; i++ {
		id := s.Next(rng)
		s.Record(id, id == 0) // only mutator 0 ever succeeds
	}
	for id := 0; id < n; id++ {
		if s.Selected(id) == 0 {
			t.Errorf("mutator %d was never selected", id)
		}
	}
}

// TestInstrumentGaugesTrackCounts asserts the telemetry attachment is
// observe-only and the gauges mirror Selected/Succeeded exactly: two
// identically-seeded chains, one instrumented, draw identical streams,
// and the gauges end equal to the bookkeeping.
func TestInstrumentGaugesTrackCounts(t *testing.T) {
	const n = 8
	reg := telemetry.New()
	selG := make([]*telemetry.Gauge, n)
	succG := make([]*telemetry.Gauge, n)
	for i := 0; i < n; i++ {
		selG[i] = reg.Gauge(fmt.Sprintf("mcmc.%d.selected", i))
		succG[i] = reg.Gauge(fmt.Sprintf("mcmc.%d.succeeded", i))
	}

	plainRNG := rand.New(rand.NewSource(9))
	plain := NewSampler(n, DefaultP(n), plainRNG)
	instRNG := rand.New(rand.NewSource(9))
	inst := NewSampler(n, DefaultP(n), instRNG)
	inst.Instrument(selG, succG)

	for i := 0; i < 2000; i++ {
		a := plain.Next(plainRNG)
		b := inst.Next(instRNG)
		if a != b {
			t.Fatalf("iteration %d: instrumented chain diverged (%d vs %d)", i, b, a)
		}
		plain.Record(a, a%3 == 0)
		inst.Record(b, b%3 == 0)
	}

	s := reg.Snapshot()
	for id := 0; id < n; id++ {
		if got := s.Gauge(fmt.Sprintf("mcmc.%d.selected", id)); got != int64(inst.Selected(id)) {
			t.Errorf("selected gauge %d = %d, want %d", id, got, inst.Selected(id))
		}
		if got := s.Gauge(fmt.Sprintf("mcmc.%d.succeeded", id)); got != int64(inst.Succeeded(id)) {
			t.Errorf("succeeded gauge %d = %d, want %d", id, got, inst.Succeeded(id))
		}
	}
}

func TestSuccessRateBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSampler(5, 0.3, rng)
	s.selected[2] = 4
	s.succeeded[2] = 3
	if got := s.SuccessRate(2); got != 0.75 {
		t.Errorf("SuccessRate = %g, want 0.75", got)
	}
	if s.SuccessRate(4) != 0 {
		t.Error("never-selected mutator must have rate 0")
	}
}

func TestResortStableAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSampler(6, 0.3, rng)
	for id := 0; id < 6; id++ {
		s.selected[id] = 10
	}
	s.succeeded[3] = 10 // rate 1.0
	s.succeeded[1] = 5  // rate 0.5
	s.Record(0, false)
	order := s.Order()
	if order[0] != 3 || order[1] != 1 {
		t.Errorf("order = %v", order)
	}
	// Ties (rate 0) keep id order.
	if order[2] != 0 || order[3] != 2 || order[4] != 4 || order[5] != 5 {
		t.Errorf("tie order = %v", order)
	}
	// rank is the inverse of order.
	for r, id := range order {
		if s.Rank(id) != r {
			t.Errorf("rank(%d) = %d, want %d", id, s.Rank(id), r)
		}
	}
}

func TestUniformSamplerIsUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 8
	u := NewUniformSampler(n)
	for i := 0; i < 16000; i++ {
		u.Record(u.Next(rng), true)
	}
	for id := 0; id < n; id++ {
		f := u.Frequency(id)
		if f < 0.10 || f > 0.15 {
			t.Errorf("uniform frequency(%d) = %g, want ≈0.125", id, f)
		}
	}
}

func TestSamplerDeterministicGivenSeed(t *testing.T) {
	mk := func() []int {
		rng := rand.New(rand.NewSource(99))
		s := NewSampler(12, DefaultP(12), rng)
		var ids []int
		for i := 0; i < 200; i++ {
			id := s.Next(rng)
			ids = append(ids, id)
			s.Record(id, id%3 == 0)
		}
		return ids
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNewSamplerPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	NewSampler(0, 0.1, rand.New(rand.NewSource(1)))
}
