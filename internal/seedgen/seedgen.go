// Package seedgen deterministically generates the synthetic "JRE-like"
// seed corpus standing in for the 21,736 JRE7 library classfiles the
// paper sampled seeds from (§3.1.1). The generator emits structurally
// diverse, *valid* classes — plain classes, interfaces, abstract
// classes, utility classes with fields/methods/throws clauses, classes
// with static initializers and control flow — plus a small fraction
// whose hierarchy or references are version-skewed exactly the way real
// JRE7 classes are (final-in-8 superclasses, JRE7-only classes, JRE8+
// interfaces), which reproduces the preliminary study's ≈1.7 %
// discrepancy baseline on library classfiles.
package seedgen

import (
	"fmt"
	"math/rand"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jimple"
	"repro/internal/prng"
)

// Options configure corpus generation.
type Options struct {
	// Count is the number of classes to generate.
	Count int
	// Seed drives the deterministic RNG.
	Seed int64
	// SkewFraction is the fraction of classes carrying version-skewed
	// references (default 1/48 ≈ 2 %, calibrated so the corpus
	// reproduces the paper's 1.7 % library discrepancy rate).
	SkewFraction float64
	// AttachMain adds the standard observable main to every class that
	// can carry one (the §2.2.1 harness). Interfaces never get one.
	AttachMain bool
}

// DefaultOptions returns the standard corpus configuration.
func DefaultOptions(count int, seed int64) Options {
	return Options{Count: count, Seed: seed, SkewFraction: 1.0 / 48, AttachMain: true}
}

// classStream labels the per-class derived RNG streams of Generate.
const classStream uint64 = 0x5EED_0001

// Generate builds the corpus. Each class draws from its own splittable
// stream derived from (Seed, index), so class i is identical whatever
// corpus size it is generated within — GenerateOne(opts, i) reproduces
// it in isolation.
func Generate(opts Options) []*jimple.Class {
	out := make([]*jimple.Class, 0, opts.Count)
	for i := 0; i < opts.Count; i++ {
		out = append(out, GenerateOne(opts, i))
	}
	return out
}

// GenerateOne builds class i of the corpus opts describes without
// generating the rest.
func GenerateOne(opts Options, i int) *jimple.Class {
	rng := prng.Derive(opts.Seed, classStream, uint64(i))
	name := fmt.Sprintf("M%d", 1430000000+rng.Intn(99999999))
	var c *jimple.Class
	if rng.Float64() < opts.SkewFraction {
		c = buildSkewed(name, rng)
	} else {
		c = shapes[rng.Intn(len(shapes))](name, rng)
	}
	if opts.AttachMain && !c.IsInterface() && c.FindMethod("main") == nil {
		c.AddStandardMain("Completed!")
	}
	return c
}

// GenerateFiles lowers a generated corpus straight to classfile bytes.
func GenerateFiles(opts Options) ([][]byte, error) {
	classes := Generate(opts)
	out := make([][]byte, 0, len(classes))
	for _, c := range classes {
		f, err := jimple.Lower(c)
		if err != nil {
			return nil, fmt.Errorf("seedgen: lowering %s: %w", c.Name, err)
		}
		data, err := f.Bytes()
		if err != nil {
			return nil, fmt.Errorf("seedgen: serialising %s: %w", c.Name, err)
		}
		out = append(out, data)
	}
	return out, nil
}

type shapeFn func(name string, rng *rand.Rand) *jimple.Class

var shapes = []shapeFn{
	buildPlain,
	buildUtility,
	buildInterface,
	buildAbstract,
	buildWithClinit,
	buildControlFlow,
	buildThrowsHeavy,
	buildThreadSubclass,
	buildExceptionSubclass,
	buildArrayWorker,
	buildTryCatch,
	buildSwitcher,
	buildRunnableImpl,
}

var seedFieldTypes = []descriptor.Type{
	descriptor.Int,
	descriptor.Long,
	descriptor.Boolean,
	descriptor.Object("java/lang/String"),
	descriptor.Object("java/util/Map"),
	descriptor.Object("java/lang/Object"),
	descriptor.Array(descriptor.Int, 1),
}

// buildPlain: a minimal public class with constructor.
func buildPlain(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	c.AddDefaultInit()
	if rng.Intn(2) == 0 {
		c.Interfaces = append(c.Interfaces, "java/io/Serializable")
	}
	return c
}

// buildUtility: fields plus simple accessor methods.
func buildUtility(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	nf := 1 + rng.Intn(4)
	for i := 0; i < nf; i++ {
		flags := classfile.AccPrivate
		if rng.Intn(3) == 0 {
			flags = classfile.AccProtected | classfile.AccFinal
		}
		c.AddField(flags, fmt.Sprintf("f%d", i), seedFieldTypes[rng.Intn(len(seedFieldTypes))])
	}
	c.AddDefaultInit()
	// An int getter for the first int field, when present.
	for _, f := range c.Fields {
		if f.Type == descriptor.Int {
			g := c.AddMethod(classfile.AccPublic, "get"+f.Name, nil, descriptor.Int)
			this := g.NewLocal("r0", descriptor.Object(name))
			g.Body = []jimple.Stmt{
				&jimple.Identity{Target: this, Param: -1},
				&jimple.Return{Value: &jimple.InstanceFieldRef{Base: this, Class: name, Name: f.Name, Type: descriptor.Int}},
			}
			break
		}
	}
	// A static int helper.
	h := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "scale",
		[]descriptor.Type{descriptor.Int}, descriptor.Int)
	a := h.NewLocal("i0", descriptor.Int)
	h.Body = []jimple.Stmt{
		&jimple.Identity{Target: a, Param: 0},
		&jimple.Return{Value: &jimple.BinOp{Op: jimple.OpMul, L: &jimple.UseLocal{L: a},
			R: &jimple.IntConst{V: int64(2 + rng.Intn(7)), Kind: 'I'}, Kind: 'I'}},
	}
	// A caller wiring the members together, so renaming/deleting any of
	// them breaks symbolic resolution at linking (like real library
	// classes whose members reference each other).
	cb := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "combine",
		[]descriptor.Type{descriptor.Int}, descriptor.Int)
	b := cb.NewLocal("i0", descriptor.Int)
	r := cb.NewLocal("i1", descriptor.Int)
	cb.Body = []jimple.Stmt{
		&jimple.Identity{Target: b, Param: 0},
		&jimple.Assign{LHS: &jimple.UseLocal{L: r}, RHS: &jimple.Invoke{
			Kind: jimple.InvokeStatic, Class: name, Name: "scale",
			Sig:  descriptor.Method{Params: []descriptor.Type{descriptor.Int}, Return: descriptor.Int},
			Args: []jimple.Expr{&jimple.UseLocal{L: b}}}},
		&jimple.Return{Value: &jimple.UseLocal{L: r}},
	}
	return c
}

// buildInterface: a proper interface with abstract methods and constants.
func buildInterface(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	c.Modifiers = classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract
	c.AddField(classfile.AccPublic|classfile.AccStatic|classfile.AccFinal, "VERSION", descriptor.Int)
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		c.AddMethod(classfile.AccPublic|classfile.AccAbstract, fmt.Sprintf("op%d", i),
			[]descriptor.Type{descriptor.Int}, descriptor.Int)
	}
	return c
}

// buildAbstract: an abstract class mixing abstract and concrete methods.
func buildAbstract(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	c.Modifiers |= classfile.AccAbstract
	c.AddDefaultInit()
	c.AddMethod(classfile.AccPublic|classfile.AccAbstract, "step", nil, descriptor.Void)
	m := c.AddMethod(classfile.AccPublic, "twice", []descriptor.Type{descriptor.Int}, descriptor.Int)
	this := m.NewLocal("r0", descriptor.Object(name))
	a := m.NewLocal("i0", descriptor.Int)
	m.Body = []jimple.Stmt{
		&jimple.Identity{Target: this, Param: -1},
		&jimple.Identity{Target: a, Param: 0},
		&jimple.Return{Value: &jimple.BinOp{Op: jimple.OpAdd, L: &jimple.UseLocal{L: a}, R: &jimple.UseLocal{L: a}, Kind: 'I'}},
	}
	return c
}

// buildWithClinit: a class with a static initializer writing statics.
func buildWithClinit(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	c.AddField(classfile.AccPublic|classfile.AccStatic, "counter", descriptor.Int)
	c.AddDefaultInit()
	cl := c.AddMethod(classfile.AccStatic, "<clinit>", nil, descriptor.Void)
	cnt := &jimple.StaticFieldRef{Class: name, Name: "counter", Type: descriptor.Int}
	cl.Body = []jimple.Stmt{
		&jimple.Assign{LHS: cnt, RHS: &jimple.IntConst{V: int64(rng.Intn(100)), Kind: 'I'}},
		&jimple.Return{},
	}
	return c
}

// buildControlFlow: loop-and-branch heavy static method.
func buildControlFlow(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	c.AddDefaultInit()
	m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "countdown",
		[]descriptor.Type{descriptor.Int}, descriptor.Int)
	n := m.NewLocal("i0", descriptor.Int)
	acc := m.NewLocal("i1", descriptor.Int)
	step := int64(1 + rng.Intn(4))
	m.Body = []jimple.Stmt{
		/*0*/ &jimple.Identity{Target: n, Param: 0},
		/*1*/ &jimple.Assign{LHS: &jimple.UseLocal{L: acc}, RHS: &jimple.IntConst{V: 0, Kind: 'I'}},
		/*2*/ &jimple.If{Op: jimple.CondLe, L: &jimple.UseLocal{L: n}, R: &jimple.IntConst{V: 0, Kind: 'I'}, Target: 6},
		/*3*/ &jimple.Assign{LHS: &jimple.UseLocal{L: acc}, RHS: &jimple.BinOp{Op: jimple.OpAdd, L: &jimple.UseLocal{L: acc}, R: &jimple.UseLocal{L: n}, Kind: 'I'}},
		/*4*/ &jimple.Assign{LHS: &jimple.UseLocal{L: n}, RHS: &jimple.BinOp{Op: jimple.OpSub, L: &jimple.UseLocal{L: n}, R: &jimple.IntConst{V: step, Kind: 'I'}, Kind: 'I'}},
		/*5*/ &jimple.Goto{Target: 2},
		/*6*/ &jimple.Return{Value: &jimple.UseLocal{L: acc}},
	}
	return c
}

// buildThrowsHeavy: methods declaring checked exceptions.
func buildThrowsHeavy(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	c.AddDefaultInit()
	throwables := []string{"java/io/IOException", "java/lang/InterruptedException", "java/lang/Exception"}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		m := c.AddMethod(classfile.AccPublic, fmt.Sprintf("risky%d", i), nil, descriptor.Void)
		m.Throws = []string{throwables[rng.Intn(len(throwables))]}
		this := m.NewLocal("r0", descriptor.Object(name))
		m.Body = []jimple.Stmt{&jimple.Identity{Target: this, Param: -1}, &jimple.Return{}}
	}
	return c
}

// buildThreadSubclass: extends Thread and overrides run.
func buildThreadSubclass(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	c.Super = "java/lang/Thread"
	init := c.AddMethod(classfile.AccPublic, "<init>", nil, descriptor.Void)
	this := init.NewLocal("r0", descriptor.Object(name))
	init.Body = []jimple.Stmt{
		&jimple.Identity{Target: this, Param: -1},
		&jimple.InvokeStmt{Call: &jimple.Invoke{Kind: jimple.InvokeSpecial, Class: "java/lang/Thread",
			Name: "<init>", Sig: descriptor.Method{Return: descriptor.Void}, Base: this}},
		&jimple.Return{},
	}
	run := c.AddMethod(classfile.AccPublic, "run", nil, descriptor.Void)
	this2 := run.NewLocal("r0", descriptor.Object(name))
	run.Body = append([]jimple.Stmt{&jimple.Identity{Target: this2, Param: -1}},
		append(jimple.Println(run, "running"), &jimple.Return{})...)
	return c
}

// buildExceptionSubclass: a user-defined exception type.
func buildExceptionSubclass(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	c.Super = "java/lang/Exception"
	init := c.AddMethod(classfile.AccPublic, "<init>", nil, descriptor.Void)
	this := init.NewLocal("r0", descriptor.Object(name))
	init.Body = []jimple.Stmt{
		&jimple.Identity{Target: this, Param: -1},
		&jimple.InvokeStmt{Call: &jimple.Invoke{Kind: jimple.InvokeSpecial, Class: "java/lang/Exception",
			Name: "<init>", Sig: descriptor.Method{Return: descriptor.Void}, Base: this}},
		&jimple.Return{},
	}
	return c
}

// buildArrayWorker: allocates and sums arrays.
func buildArrayWorker(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	c.AddDefaultInit()
	m := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "fill",
		[]descriptor.Type{descriptor.Int}, descriptor.Array(descriptor.Int, 1))
	n := m.NewLocal("i0", descriptor.Int)
	arr := m.NewLocal("a0", descriptor.Array(descriptor.Int, 1))
	m.Body = []jimple.Stmt{
		&jimple.Identity{Target: n, Param: 0},
		&jimple.Assign{LHS: &jimple.UseLocal{L: arr}, RHS: &jimple.NewArrayExpr{Elem: descriptor.Int, Size: &jimple.UseLocal{L: n}}},
		&jimple.Return{Value: &jimple.UseLocal{L: arr}},
	}
	return c
}

// buildTryCatch: a guarded division with an exception handler. Bodies
// with exception tables only round-trip as Raw statements, so these
// seeds keep the opaque-block path of the mutation pipeline exercised.
func buildTryCatch(name string, rng *rand.Rand) *jimple.Class {
	f := classfile.New(name)
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "safeDiv", "(II)I")
	cb := classfile.NewCodeBuilder(f.Pool)
	// try { return a/b } catch (ArithmeticException e) { return fallback }
	cb.Op(bytecode.Iload0).Op(bytecode.Iload1).Op(bytecode.Idiv)
	end := cb.PC()
	cb.Op(bytecode.Ireturn)
	h := cb.PC()
	cb.Op(bytecode.Pop)
	cb.LdcInt(int32(rng.Intn(100)))
	cb.Op(bytecode.Ireturn)
	cb.Handler(0, end, h, "java/lang/ArithmeticException")
	cb.SetMaxStack(2).SetMaxLocals(2)
	m.Attributes = append(m.Attributes, cb.Build())
	c, err := jimple.Lift(f)
	if err != nil {
		return buildPlain(name, rng) // unreachable in practice
	}
	return c
}

// buildSwitcher: a tableswitch dispatcher, again raw-only.
func buildSwitcher(name string, rng *rand.Rand) *jimple.Class {
	f := classfile.New(name)
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "dispatch", "(I)I")
	code := []byte{
		0x1a,             // pc0: iload_0
		0xaa, 0x00, 0x00, // pc1: tableswitch (pad to 4)
		0x00, 0x00, 0x00, 0x23, // default -> pc1+35 = 36
		0x00, 0x00, 0x00, 0x01, // low 1
		0x00, 0x00, 0x00, 0x03, // high 3
		0x00, 0x00, 0x00, 0x1b, // case 1 -> 28
		0x00, 0x00, 0x00, 0x1f, // case 2 -> 32
		0x00, 0x00, 0x00, 0x23, // case 3 -> 36 (shares default)
		0x10, 0x0a, // pc28: bipush 10
		0xac,       // pc30: ireturn
		0x00,       // pc31: nop (alignment filler)
		0x10, 0x14, // pc32: bipush 20
		0xac,       // pc34: ireturn
		0x00,       // pc35: nop
		0x10, 0x63, // pc36: bipush 99
		0xac, // pc38: ireturn
	}
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{MaxStack: 2, MaxLocals: 2, Code: code})
	c, err := jimple.Lift(f)
	if err != nil {
		return buildPlain(name, rng)
	}
	return c
}

// buildRunnableImpl: a proper Runnable implementation.
func buildRunnableImpl(name string, rng *rand.Rand) *jimple.Class {
	c := jimple.NewClass(name)
	c.Interfaces = append(c.Interfaces, "java/lang/Runnable")
	c.AddDefaultInit()
	run := c.AddMethod(classfile.AccPublic, "run", nil, descriptor.Void)
	this := run.NewLocal("r0", descriptor.Object(name))
	run.Body = append([]jimple.Stmt{&jimple.Identity{Target: this, Param: -1}},
		append(jimple.Println(run, "task"), &jimple.Return{})...)
	return c
}

// buildSkewed produces the version-skewed classes driving the
// compatibility-discrepancy baseline.
func buildSkewed(name string, rng *rand.Rand) *jimple.Class {
	switch rng.Intn(4) {
	case 0:
		// Extends EnumEditor: runs on JRE7, VerifyError on JRE8+ (final),
		// missing on Classpath.
		c := jimple.NewClass(name)
		c.Super = "com/sun/beans/editors/EnumEditor"
		init := c.AddMethod(classfile.AccPublic, "<init>", nil, descriptor.Void)
		this := init.NewLocal("r0", descriptor.Object(name))
		init.Body = []jimple.Stmt{
			&jimple.Identity{Target: this, Param: -1},
			&jimple.InvokeStmt{Call: &jimple.Invoke{Kind: jimple.InvokeSpecial, Class: c.Super,
				Name: "<init>", Sig: descriptor.Method{Return: descriptor.Void}, Base: this}},
			&jimple.Return{},
		}
		return c
	case 1:
		// Extends a JRE7-only class: NoClassDefFoundError elsewhere.
		c := jimple.NewClass(name)
		c.Super = "com/sun/legacy/Jre7Only"
		return c
	case 2:
		// Implements a JRE8+ interface: loads on 8/9, missing on 7 and
		// Classpath (interface resolution differs by eagerness).
		c := jimple.NewClass(name)
		c.Interfaces = append(c.Interfaces, "java/util/function/Function")
		c.AddDefaultInit()
		return c
	default:
		// Declares a sun.* internal thrown: splits on throws checking.
		c := jimple.NewClass(name)
		c.AddDefaultInit()
		m := c.AddMethod(classfile.AccPublic, "render", nil, descriptor.Void)
		m.Throws = []string{"sun/java2d/pisces/PiscesRenderingEngine$2"}
		this := m.NewLocal("r0", descriptor.Object(name))
		m.Body = []jimple.Stmt{&jimple.Identity{Target: this, Param: -1}, &jimple.Return{}}
		return c
	}
}
