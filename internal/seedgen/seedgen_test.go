package seedgen

import (
	"bytes"
	"testing"

	"repro/internal/difftest"
	"repro/internal/jimple"
	"repro/internal/jvm"
)

func TestGenerateCountAndDeterminism(t *testing.T) {
	a := Generate(DefaultOptions(50, 7))
	b := Generate(DefaultOptions(50, 7))
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		fa, err := jimple.Lower(a[i])
		if err != nil {
			t.Fatalf("lower a[%d]: %v", i, err)
		}
		fb, err := jimple.Lower(b[i])
		if err != nil {
			t.Fatalf("lower b[%d]: %v", i, err)
		}
		da, _ := fa.Bytes()
		db, _ := fb.Bytes()
		if !bytes.Equal(da, db) {
			t.Fatalf("class %d differs across identical seeds", i)
		}
	}
	c := Generate(DefaultOptions(50, 8))
	fa, _ := jimple.Lower(a[0])
	fc, _ := jimple.Lower(c[0])
	da, _ := fa.Bytes()
	dc, _ := fc.Bytes()
	if bytes.Equal(da, dc) {
		t.Error("different seeds should differ (first class identical)")
	}
}

func TestSeedsAreMostlyValidOnReferenceVM(t *testing.T) {
	files, err := GenerateFiles(DefaultOptions(120, 3))
	if err != nil {
		t.Fatal(err)
	}
	vm := jvm.New(jvm.HotSpot9())
	bad := 0
	for _, data := range files {
		o := vm.Run(data)
		// Interfaces have no main: rejected at invocation, not at
		// load/link. Structural failures before the runtime phase mean
		// the seed itself is broken.
		if o.Phase == jvm.PhaseLoading || o.Phase == jvm.PhaseLinking {
			bad++
		}
	}
	// Only the deliberately skewed classes (≈2 %) may fail early.
	if bad > 12 {
		t.Errorf("%d of 120 seeds rejected before initialization", bad)
	}
}

func TestShapeDiversity(t *testing.T) {
	classes := Generate(DefaultOptions(300, 11))
	interfaces, abstracts, withClinit, withThrows, subThreads := 0, 0, 0, 0, 0
	for _, c := range classes {
		if c.IsInterface() {
			interfaces++
		}
		if c.Modifiers.Has(0x0400) && !c.IsInterface() {
			abstracts++
		}
		if c.FindMethod("<clinit>") != nil {
			withClinit++
		}
		if c.Super == "java/lang/Thread" {
			subThreads++
		}
		for _, m := range c.Methods {
			if len(m.Throws) > 0 {
				withThrows++
				break
			}
		}
	}
	for what, n := range map[string]int{
		"interfaces": interfaces, "abstract classes": abstracts,
		"clinit classes": withClinit, "throws classes": withThrows,
		"thread subclasses": subThreads,
	} {
		if n == 0 {
			t.Errorf("corpus contains no %s", what)
		}
	}
}

func TestMainAttachment(t *testing.T) {
	classes := Generate(DefaultOptions(100, 5))
	for _, c := range classes {
		hasMain := c.FindMethod("main") != nil
		if c.IsInterface() && hasMain {
			t.Errorf("interface %s has a main method", c.Name)
		}
		if !c.IsInterface() && !hasMain {
			t.Errorf("class %s lacks the standard main", c.Name)
		}
	}
	noMain := Generate(Options{Count: 20, Seed: 5, SkewFraction: 0})
	for _, c := range noMain {
		if c.FindMethod("main") != nil {
			t.Errorf("AttachMain=false still added main to %s", c.Name)
		}
	}
}

func TestSkewedSeedsReproduceBaselineDiscrepancyRate(t *testing.T) {
	// The preliminary study: ≈1.7 % of library classfiles trigger
	// discrepancies across the five VMs. Our synthetic corpus must land
	// in the same regime (between 0.5 % and 6 % at this sample size).
	files, err := GenerateFiles(DefaultOptions(600, 1))
	if err != nil {
		t.Fatal(err)
	}
	runner := difftest.NewStandardRunner()
	sum := runner.Evaluate(files)
	rate := sum.DiffRate()
	if rate < 0.005 || rate > 0.06 {
		t.Errorf("baseline discrepancy rate = %.2f%%, want ≈1.7%%", rate*100)
	}
	t.Logf("baseline: %d/%d (%.2f%%) discrepancy-triggering, %d distinct",
		sum.Discrepancies, sum.Total, rate*100, sum.DistinctCount())
}

func TestZeroSkewCorpusHasNoEarlyDiscrepancies(t *testing.T) {
	files, err := GenerateFiles(Options{Count: 150, Seed: 2, SkewFraction: 0, AttachMain: true})
	if err != nil {
		t.Fatal(err)
	}
	runner := difftest.NewStandardRunner()
	sum := runner.Evaluate(files)
	if sum.Discrepancies != 0 {
		t.Errorf("unskewed corpus triggered %d discrepancies", sum.Discrepancies)
	}
}
