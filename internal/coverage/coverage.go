// Package coverage implements the execution-trace machinery of the
// paper's §2.2.3: recording which statements and branches of the
// reference JVM a classfile exercises, comparing coverage statistics,
// merging tracefiles (the ⊕ operator), and the three uniqueness
// criteria [st], [stbr] and [tr] that decide whether a mutant is
// "representative" with respect to an existing test suite.
package coverage

import (
	"fmt"
	"sort"
	"strings"
)

// Recorder collects probe hits during one execution of the reference
// JVM. Probe identifiers are stable strings assigned at the check sites
// inside internal/jvm (the analogue of GCOV line/branch counters over
// hotspot/src/share/vm/classfile/).
type Recorder struct {
	stmts    map[string]uint32
	branches map[string]uint32
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		stmts:    make(map[string]uint32, 128),
		branches: make(map[string]uint32, 128),
	}
}

// Stmt records one execution of the statement probe id.
func (r *Recorder) Stmt(id string) {
	if r == nil {
		return
	}
	r.stmts[id]++
}

// Branch records one execution of a two-way branch probe; the taken
// direction distinguishes the two edges.
func (r *Recorder) Branch(id string, taken bool) {
	if r == nil {
		return
	}
	if taken {
		r.branches[id+":T"]++
	} else {
		r.branches[id+":F"]++
	}
}

// Reset clears all recorded hits so the recorder can serve another run.
func (r *Recorder) Reset() {
	clear(r.stmts)
	clear(r.branches)
}

// Trace snapshots the recorder into an immutable tracefile.
func (r *Recorder) Trace() *Trace {
	t := &Trace{
		Stmts:    make(map[string]bool, len(r.stmts)),
		Branches: make(map[string]bool, len(r.branches)),
	}
	for k := range r.stmts {
		t.Stmts[k] = true
	}
	for k := range r.branches {
		t.Branches[k] = true
	}
	return t
}

// Trace is a tracefile tr_cl: the sets of statement and branch probes a
// classfile hit on the reference JVM. Execution order and frequencies
// are deliberately omitted, exactly as the paper's [tr] criterion
// specifies ("statically different").
type Trace struct {
	Stmts    map[string]bool
	Branches map[string]bool
}

// Stats are the scalar coverage statistics tr.stmt / tr.br used by the
// [st] and [stbr] criteria (e.g. "4,938/2,604" in the paper).
type Stats struct {
	Stmts    int
	Branches int
}

// String renders stats in the paper's stmt/branch form.
func (s Stats) String() string { return fmt.Sprintf("%d/%d", s.Stmts, s.Branches) }

// Stats returns the trace's coverage statistics.
func (t *Trace) Stats() Stats {
	return Stats{Stmts: len(t.Stmts), Branches: len(t.Branches)}
}

// Merge implements the ⊕ operator: the union tracefile.
func Merge(a, b *Trace) *Trace {
	out := &Trace{
		Stmts:    make(map[string]bool, len(a.Stmts)+len(b.Stmts)),
		Branches: make(map[string]bool, len(a.Branches)+len(b.Branches)),
	}
	for k := range a.Stmts {
		out.Stmts[k] = true
	}
	for k := range b.Stmts {
		out.Stmts[k] = true
	}
	for k := range a.Branches {
		out.Branches[k] = true
	}
	for k := range b.Branches {
		out.Branches[k] = true
	}
	return out
}

// EqualSets reports whether two traces cover exactly the same statement
// and branch sets. By the merge identities this is equivalent to
// tr_a.stmt = tr_b.stmt = (tr_a ⊕ tr_b).stmt ∧ the same for br.
func (t *Trace) EqualSets(o *Trace) bool {
	if len(t.Stmts) != len(o.Stmts) || len(t.Branches) != len(o.Branches) {
		return false
	}
	for k := range t.Stmts {
		if !o.Stmts[k] {
			return false
		}
	}
	for k := range t.Branches {
		if !o.Branches[k] {
			return false
		}
	}
	return true
}

// Key returns a canonical string fingerprint of the trace's probe sets,
// used to bucket identical traces cheaply.
func (t *Trace) Key() string {
	ss := make([]string, 0, len(t.Stmts))
	for k := range t.Stmts {
		ss = append(ss, k)
	}
	sort.Strings(ss)
	bs := make([]string, 0, len(t.Branches))
	for k := range t.Branches {
		bs = append(bs, k)
	}
	sort.Strings(bs)
	return strings.Join(ss, "\x00") + "\x01" + strings.Join(bs, "\x00")
}

// Criterion selects which uniqueness discipline a Suite applies.
type Criterion int

// The three uniqueness criteria of §2.2.3.
const (
	// ST accepts a classfile whose statement-coverage statistic differs
	// from every accepted test's.
	ST Criterion = iota
	// STBR accepts on a unique (statement, branch) statistic pair.
	STBR
	// TR accepts on a statically distinct tracefile (set comparison via
	// the merge operator).
	TR
)

// String returns the paper's bracketed criterion name.
func (c Criterion) String() string {
	switch c {
	case ST:
		return "[st]"
	case STBR:
		return "[stbr]"
	case TR:
		return "[tr]"
	}
	return "[?]"
}

// Suite tracks the coverage identities of an accepted test suite and
// answers the representativeness question for candidates.
type Suite struct {
	criterion Criterion
	stmtSeen  map[int]bool
	pairSeen  map[Stats]bool
	// byStats buckets full traces by their stats pair so the [tr]
	// criterion only set-compares candidates against same-stats tests.
	byStats map[Stats][]*Trace
	size    int
}

// NewSuite returns an empty suite using the given criterion.
func NewSuite(c Criterion) *Suite {
	return &Suite{
		criterion: c,
		stmtSeen:  make(map[int]bool),
		pairSeen:  make(map[Stats]bool),
		byStats:   make(map[Stats][]*Trace),
	}
}

// Criterion returns the suite's uniqueness discipline.
func (s *Suite) Criterion() Criterion { return s.criterion }

// Size returns how many traces have been accepted.
func (s *Suite) Size() int { return s.size }

// Unique reports whether tr is representative w.r.t. the accepted tests
// under the suite's criterion, without modifying the suite.
func (s *Suite) Unique(tr *Trace) bool {
	st := tr.Stats()
	switch s.criterion {
	case ST:
		return !s.stmtSeen[st.Stmts]
	case STBR:
		return !s.pairSeen[st]
	case TR:
		for _, prev := range s.byStats[st] {
			if tr.EqualSets(prev) {
				return false
			}
		}
		return true
	}
	return false
}

// Add commits tr to the suite (callers normally Add only after Unique
// returned true, but Add is idempotent in effect either way).
func (s *Suite) Add(tr *Trace) {
	st := tr.Stats()
	s.stmtSeen[st.Stmts] = true
	s.pairSeen[st] = true
	s.byStats[st] = append(s.byStats[st], tr)
	s.size++
}

// UniqueStatsCount returns how many distinct (stmt, branch) statistic
// pairs the suite's traces exhibit — the metric the paper reports for
// comparing GenClasses sets (e.g. "898 unique coverage statistics").
func (s *Suite) UniqueStatsCount() int { return len(s.pairSeen) }
