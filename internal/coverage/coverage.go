// Package coverage implements the execution-trace machinery of the
// paper's §2.2.3: recording which statements and branches of the
// reference JVM a classfile exercises, comparing coverage statistics,
// merging tracefiles (the ⊕ operator), and the three uniqueness
// criteria [st], [stbr] and [tr] that decide whether a mutant is
// "representative" with respect to an existing test suite.
//
// Probes are interned once through a Registry into dense integer
// indices; the hot path (one recorder increment per probe hit, many
// thousands per reference-VM run) is a bounds-checked slice increment
// with zero allocations, and traces are plain bitsets compared and
// merged a machine word at a time.
package coverage

import (
	"fmt"
	"math/bits"
)

// Recorder collects probe hits during one execution of the reference
// JVM. Counters are flat slices over the registry's dense index space;
// a dirty list of touched indices makes Reset O(hits) rather than
// O(capacity), so recycling a recorder across a campaign's stream of
// mutants costs only as much as the probes the last mutant actually hit.
type Recorder struct {
	reg       *Registry
	stmt      []uint32 // hit counts per statement index
	edge      []uint32 // hit counts per branch-edge index (2 per branch)
	dirtyStmt []uint32 // statement indices with nonzero counts
	dirtyEdge []uint32 // edge indices with nonzero counts
}

// NewRecorder returns an empty recorder over the registry's probe
// space. The recorder grows automatically if probes are interned after
// its creation.
func NewRecorder(reg *Registry) *Recorder {
	return &Recorder{
		reg:  reg,
		stmt: make([]uint32, reg.NumStmts()),
		edge: make([]uint32, 2*reg.NumBranches()),
	}
}

// Registry returns the probe registry the recorder records against.
func (r *Recorder) Registry() *Registry { return r.reg }

// Stmt records one execution of the statement probe id.
func (r *Recorder) Stmt(id StmtID) {
	if r == nil {
		return
	}
	if int(id) >= len(r.stmt) {
		r.stmt = append(r.stmt, make([]uint32, int(id)+1-len(r.stmt))...)
	}
	if r.stmt[id] == 0 {
		r.dirtyStmt = append(r.dirtyStmt, uint32(id))
	}
	r.stmt[id]++
}

// Branch records one execution of a two-way branch probe; the taken
// direction distinguishes the two edges.
func (r *Recorder) Branch(id BranchID, taken bool) {
	if r == nil {
		return
	}
	e := 2 * uint32(id)
	if !taken {
		e++
	}
	if int(e) >= len(r.edge) {
		r.edge = append(r.edge, make([]uint32, int(e)+1-len(r.edge))...)
	}
	if r.edge[e] == 0 {
		r.dirtyEdge = append(r.dirtyEdge, e)
	}
	r.edge[e]++
}

// Reset clears all recorded hits so the recorder can serve another run.
// Only the dirty indices are touched.
func (r *Recorder) Reset() {
	for _, i := range r.dirtyStmt {
		r.stmt[i] = 0
	}
	for _, e := range r.dirtyEdge {
		r.edge[e] = 0
	}
	r.dirtyStmt = r.dirtyStmt[:0]
	r.dirtyEdge = r.dirtyEdge[:0]
}

// HitSets copies out the sets of statement and branch-edge indices with
// nonzero counts, in hit order. The returned slices are the caller's to
// keep — they do not alias the recorder's dirty lists, so a later Reset
// or further recording cannot mutate them.
func (r *Recorder) HitSets() (stmts, edges []uint32) {
	if len(r.dirtyStmt) > 0 {
		stmts = append([]uint32(nil), r.dirtyStmt...)
	}
	if len(r.dirtyEdge) > 0 {
		edges = append([]uint32(nil), r.dirtyEdge...)
	}
	return stmts, edges
}

// ReplayHits marks every listed statement and branch-edge index as hit
// once, as if the probes had fired live. Counts are set-preserving, not
// count-preserving — Trace and the uniqueness criteria only read sets,
// so a replayed recorder snapshots the identical trace.
func (r *Recorder) ReplayHits(stmts, edges []uint32) {
	if r == nil {
		return
	}
	for _, i := range stmts {
		r.Stmt(StmtID(i))
	}
	for _, e := range edges {
		r.Branch(BranchID(e/2), e%2 == 0)
	}
}

// Trace snapshots the recorder into an immutable tracefile.
func (r *Recorder) Trace() *Trace {
	t := &Trace{}
	for _, i := range r.dirtyStmt {
		t.setStmt(StmtID(i))
	}
	for _, e := range r.dirtyEdge {
		t.setEdge(e)
	}
	return t
}

// Trace is a tracefile tr_cl: the sets of statement and branch-edge
// probes a classfile hit on the reference JVM, stored as bitsets over
// the registry's dense index space. Execution order and frequencies are
// deliberately omitted, exactly as the paper's [tr] criterion specifies
// ("statically different"). Traces are immutable after construction;
// trailing zero words are insignificant, so traces snapshotted at
// different registry sizes compare correctly.
type Trace struct {
	stmts []uint64
	edges []uint64

	key   Key
	keyed bool
}

// NewTrace returns an empty trace (the identity element of Merge).
func NewTrace() *Trace { return &Trace{} }

func setBit(w []uint64, i uint32) []uint64 {
	word := int(i >> 6)
	for word >= len(w) {
		w = append(w, 0)
	}
	w[word] |= 1 << (i & 63)
	return w
}

func (t *Trace) setStmt(id StmtID) { t.stmts = setBit(t.stmts, uint32(id)) }
func (t *Trace) setEdge(e uint32)  { t.edges = setBit(t.edges, e) }

// HasStmt reports whether the trace covers the statement probe.
func (t *Trace) HasStmt(id StmtID) bool {
	w := int(id >> 6)
	return w < len(t.stmts) && t.stmts[w]&(1<<(id&63)) != 0
}

// HasEdge reports whether the trace covers the given edge of a branch
// probe.
func (t *Trace) HasEdge(id BranchID, taken bool) bool {
	e := 2 * uint32(id)
	if !taken {
		e++
	}
	w := int(e >> 6)
	return w < len(t.edges) && t.edges[w]&(1<<(e&63)) != 0
}

// StmtIDs returns the covered statement indices in ascending order.
func (t *Trace) StmtIDs() []StmtID {
	out := make([]StmtID, 0, popcount(t.stmts))
	for wi, w := range t.stmts {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, StmtID(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// EdgeIDs returns the covered branch-edge indices in ascending order.
func (t *Trace) EdgeIDs() []uint32 {
	out := make([]uint32, 0, popcount(t.edges))
	for wi, w := range t.edges {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, uint32(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// Stats are the scalar coverage statistics tr.stmt / tr.br used by the
// [st] and [stbr] criteria (e.g. "4,938/2,604" in the paper).
type Stats struct {
	Stmts    int
	Branches int
}

// String renders stats in the paper's stmt/branch form.
func (s Stats) String() string { return fmt.Sprintf("%d/%d", s.Stmts, s.Branches) }

func popcount(w []uint64) int {
	n := 0
	for _, x := range w {
		n += bits.OnesCount64(x)
	}
	return n
}

// Stats returns the trace's coverage statistics.
func (t *Trace) Stats() Stats {
	return Stats{Stmts: popcount(t.stmts), Branches: popcount(t.edges)}
}

func unionWords(a, b []uint64) []uint64 {
	long, short := a, b
	if len(b) > len(a) {
		long, short = b, a
	}
	out := make([]uint64, len(long))
	copy(out, long)
	for i, w := range short {
		out[i] |= w
	}
	return out
}

// Merge implements the ⊕ operator: the union tracefile, one OR per
// machine word.
func Merge(a, b *Trace) *Trace {
	return &Trace{
		stmts: unionWords(a.stmts, b.stmts),
		edges: unionWords(a.edges, b.edges),
	}
}

func overlapWords(a, b []uint64) int {
	short := a
	if len(b) < len(a) {
		short = b
	}
	n := 0
	for i := range short {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

func gainWords(a, union []uint64) int {
	n := 0
	for i, w := range a {
		if i < len(union) {
			w &^= union[i]
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// OverlapCount returns |t ∩ o| over both probe sets — the similarity
// measure seed clustering ranks candidate clusters by. One AND +
// popcount per machine word; no allocation.
func (t *Trace) OverlapCount(o *Trace) int {
	return overlapWords(t.stmts, o.stmts) + overlapWords(t.edges, o.edges)
}

// GainOver returns |t \ union| over both probe sets — the marginal
// coverage t would add to the union trace. The greedy distillation
// loop maximises this. One AND-NOT + popcount per machine word; no
// allocation.
func (t *Trace) GainOver(union *Trace) int {
	return gainWords(t.stmts, union.stmts) + gainWords(t.edges, union.edges)
}

func equalWords(a, b []uint64) bool {
	long, short := a, b
	if len(b) > len(a) {
		long, short = b, a
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// EqualSets reports whether two traces cover exactly the same statement
// and branch sets. By the merge identities this is equivalent to
// tr_a.stmt = tr_b.stmt = (tr_a ⊕ tr_b).stmt ∧ the same for br.
func (t *Trace) EqualSets(o *Trace) bool {
	return equalWords(t.stmts, o.stmts) && equalWords(t.edges, o.edges)
}

// Key is a 128-bit fingerprint of a trace's probe sets. Equal sets
// always produce equal keys (the hash ignores trailing zero words), so
// keys bucket set-identical traces; unequal sets collide only with
// ~2^-128 probability, and every bucket is confirmed by EqualSets
// before a candidate is rejected.
type Key struct{ Hi, Lo uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	altOffset = 0x9e3779b97f4a7c15
)

func mix(h, x uint64) uint64 {
	h ^= x
	h *= fnvPrime
	h ^= h >> 29
	return h
}

func hashWords(hi, lo uint64, w []uint64) (uint64, uint64) {
	for i, x := range w {
		if x == 0 {
			continue
		}
		hi = mix(mix(hi, uint64(i)), x)
		lo = mix(mix(lo, x), uint64(i))
	}
	return hi, lo
}

// Key returns the trace's 128-bit set fingerprint, replacing the string
// engine's sorted-join canonical string. The key is computed once and
// cached; traces are immutable so this is safe.
func (t *Trace) Key() Key {
	if !t.keyed {
		hi, lo := hashWords(fnvOffset, altOffset, t.stmts)
		hi = mix(hi, 0x5eed) // domain separator between stmt and edge sets
		lo = mix(lo, 0x5eed)
		hi, lo = hashWords(hi, lo, t.edges)
		t.key = Key{Hi: hi, Lo: lo}
		t.keyed = true
	}
	return t.key
}

// Criterion selects which uniqueness discipline a Suite applies.
type Criterion int

// The three uniqueness criteria of §2.2.3.
const (
	// ST accepts a classfile whose statement-coverage statistic differs
	// from every accepted test's.
	ST Criterion = iota
	// STBR accepts on a unique (statement, branch) statistic pair.
	STBR
	// TR accepts on a statically distinct tracefile (set comparison via
	// the merge operator).
	TR
)

// String returns the paper's bracketed criterion name.
func (c Criterion) String() string {
	switch c {
	case ST:
		return "[st]"
	case STBR:
		return "[stbr]"
	case TR:
		return "[tr]"
	}
	return "[?]"
}

// Suite tracks the coverage identities of an accepted test suite and
// answers the representativeness question for candidates.
type Suite struct {
	criterion Criterion
	stmtSeen  map[int]bool
	pairSeen  map[Stats]bool
	// byKey buckets full traces by stats pair and then by 128-bit set
	// fingerprint, so the [tr] criterion set-compares a candidate only
	// against the (almost always zero or one) stored traces whose
	// fingerprint matches.
	byKey map[Stats]map[Key][]*Trace
	size  int
}

// NewSuite returns an empty suite using the given criterion.
func NewSuite(c Criterion) *Suite {
	return &Suite{
		criterion: c,
		stmtSeen:  make(map[int]bool),
		pairSeen:  make(map[Stats]bool),
		byKey:     make(map[Stats]map[Key][]*Trace),
	}
}

// Criterion returns the suite's uniqueness discipline.
func (s *Suite) Criterion() Criterion { return s.criterion }

// Size returns how many traces have been accepted.
func (s *Suite) Size() int { return s.size }

// Unique reports whether tr is representative w.r.t. the accepted tests
// under the suite's criterion, without modifying the suite.
func (s *Suite) Unique(tr *Trace) bool {
	st := tr.Stats()
	switch s.criterion {
	case ST:
		return !s.stmtSeen[st.Stmts]
	case STBR:
		return !s.pairSeen[st]
	case TR:
		for _, prev := range s.byKey[st][tr.Key()] {
			if tr.EqualSets(prev) {
				return false
			}
		}
		return true
	}
	return false
}

// Add commits tr to the suite (callers normally Add only after Unique
// returned true, but Add is idempotent in effect either way).
func (s *Suite) Add(tr *Trace) {
	st := tr.Stats()
	s.stmtSeen[st.Stmts] = true
	s.pairSeen[st] = true
	bucket := s.byKey[st]
	if bucket == nil {
		bucket = make(map[Key][]*Trace)
		s.byKey[st] = bucket
	}
	k := tr.Key()
	bucket[k] = append(bucket[k], tr)
	s.size++
}

// AddStats commits a statistic pair without its trace. Restoring a
// checkpointed campaign uses this for the statistics-census suites
// ([st]/[stbr] decisions and UniqueStatsCount depend only on the
// pair); a [tr]-criterion suite must be restored with full traces via
// Add, since its Unique compares trace sets.
func (s *Suite) AddStats(st Stats) {
	s.stmtSeen[st.Stmts] = true
	s.pairSeen[st] = true
	s.size++
}

// UniqueStatsCount returns how many distinct (stmt, branch) statistic
// pairs the suite's traces exhibit — the metric the paper reports for
// comparing GenClasses sets (e.g. "898 unique coverage statistics").
func (s *Suite) UniqueStatsCount() int { return len(s.pairSeen) }
