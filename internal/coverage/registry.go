package coverage

import "sync"

// StmtID is a dense interned index for a statement probe. IDs are
// assigned by a Registry in interning order and are stable for the
// lifetime of the process.
type StmtID uint32

// BranchID is a dense interned index for a two-way branch probe. A
// branch probe owns two edge slots in a trace's branch bitset:
// edge 2*id is the taken edge, 2*id+1 the not-taken edge.
type BranchID uint32

// BranchProbe bundles the two indices a vm.br-style check site fires:
// the site's own statement probe plus its branch probe. The statement
// index lives in the same space as plain statement probes, mirroring
// the string engine where a branch site's id appeared in both sets.
type BranchProbe struct {
	Stmt   StmtID
	Branch BranchID
}

// Registry interns stable probe-ID strings to dense indices, the
// AFL-style substitute for string-keyed coverage maps: probe sites
// intern once at startup and then fire plain integers, and traces
// become bitsets over the dense index space. Interning is injective,
// so every set-identity question ([st]/[stbr]/[tr] decisions, EqualSets,
// Merge) has the same answer it had over probe-name sets.
//
// A Registry is safe for concurrent use; the hot path (firing an
// already-interned probe) never touches it.
type Registry struct {
	mu        sync.RWMutex
	stmtIdx   map[string]StmtID
	stmtNames []string
	brIdx     map[string]BranchID
	brNames   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		stmtIdx: make(map[string]StmtID, 256),
		brIdx:   make(map[string]BranchID, 128),
	}
}

// Stmt interns a statement probe name, returning its dense index. The
// same name always yields the same index.
func (g *Registry) Stmt(name string) StmtID {
	g.mu.RLock()
	id, ok := g.stmtIdx[name]
	g.mu.RUnlock()
	if ok {
		return id
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if id, ok = g.stmtIdx[name]; ok {
		return id
	}
	id = StmtID(len(g.stmtNames))
	g.stmtIdx[name] = id
	g.stmtNames = append(g.stmtNames, name)
	return id
}

// Branch interns a branch probe name, returning its dense index.
func (g *Registry) Branch(name string) BranchID {
	g.mu.RLock()
	id, ok := g.brIdx[name]
	g.mu.RUnlock()
	if ok {
		return id
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if id, ok = g.brIdx[name]; ok {
		return id
	}
	id = BranchID(len(g.brNames))
	g.brIdx[name] = id
	g.brNames = append(g.brNames, name)
	return id
}

// Probe interns name as both a statement and a branch probe — the pair
// a vm.br check site fires.
func (g *Registry) Probe(name string) BranchProbe {
	return BranchProbe{Stmt: g.Stmt(name), Branch: g.Branch(name)}
}

// NumStmts returns how many statement probes have been interned.
func (g *Registry) NumStmts() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.stmtNames)
}

// NumBranches returns how many branch probes have been interned (each
// occupies two edge slots).
func (g *Registry) NumBranches() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.brNames)
}

// StmtName resolves a statement index back to its probe-ID string, or
// "" if the index was never interned.
func (g *Registry) StmtName(id StmtID) string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if int(id) >= len(g.stmtNames) {
		return ""
	}
	return g.stmtNames[id]
}

// BranchName resolves a branch index back to its probe-ID string.
func (g *Registry) BranchName(id BranchID) string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if int(id) >= len(g.brNames) {
		return ""
	}
	return g.brNames[id]
}

// EdgeName renders an edge slot in the classic id:T / id:F form the
// string engine used as map keys.
func (g *Registry) EdgeName(edge uint32) string {
	name := g.BranchName(BranchID(edge / 2))
	if name == "" {
		return ""
	}
	if edge%2 == 0 {
		return name + ":T"
	}
	return name + ":F"
}
