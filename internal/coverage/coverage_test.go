package coverage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkTrace(stmts, branches []string) *Trace {
	t := &Trace{Stmts: map[string]bool{}, Branches: map[string]bool{}}
	for _, s := range stmts {
		t.Stmts[s] = true
	}
	for _, b := range branches {
		t.Branches[b] = true
	}
	return t
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Stmt("a")
	r.Stmt("a")
	r.Stmt("b")
	r.Branch("x", true)
	r.Branch("x", false)
	r.Branch("y", true)
	tr := r.Trace()
	if got := tr.Stats(); got.Stmts != 2 || got.Branches != 3 {
		t.Errorf("stats = %v, want 2/3", got)
	}
	if !tr.Stmts["a"] || !tr.Branches["x:T"] || !tr.Branches["x:F"] || !tr.Branches["y:T"] {
		t.Error("probe sets wrong")
	}
	r.Reset()
	if got := r.Trace().Stats(); got.Stmts != 0 || got.Branches != 0 {
		t.Error("reset did not clear")
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Stmt("a")         // must not panic
	r.Branch("b", true) // must not panic
}

func TestTraceSnapshotIsolation(t *testing.T) {
	r := NewRecorder()
	r.Stmt("a")
	tr := r.Trace()
	r.Stmt("b")
	if tr.Stmts["b"] {
		t.Error("trace must be a snapshot, not a live view")
	}
}

func TestMergeIsUnion(t *testing.T) {
	a := mkTrace([]string{"s1", "s2"}, []string{"b1:T"})
	b := mkTrace([]string{"s2", "s3"}, []string{"b1:F", "b2:T"})
	m := Merge(a, b)
	if got := m.Stats(); got.Stmts != 3 || got.Branches != 3 {
		t.Errorf("merge stats = %v", got)
	}
}

func TestEqualSets(t *testing.T) {
	a := mkTrace([]string{"s1", "s2"}, []string{"b1:T"})
	b := mkTrace([]string{"s2", "s1"}, []string{"b1:T"})
	c := mkTrace([]string{"s1", "s3"}, []string{"b1:T"})
	d := mkTrace([]string{"s1", "s2"}, []string{"b1:F"})
	if !a.EqualSets(b) {
		t.Error("order must not matter")
	}
	if a.EqualSets(c) || a.EqualSets(d) {
		t.Error("different sets must not be equal")
	}
}

func TestMergeIdentityMatchesEqualSets(t *testing.T) {
	// The [tr] definition: tr_a.stmt = tr_b.stmt = (tr_a ⊕ tr_b).stmt.
	a := mkTrace([]string{"s1", "s2"}, []string{"b1:T"})
	b := mkTrace([]string{"s1", "s2"}, []string{"b1:T"})
	m := Merge(a, b)
	same := a.Stats() == b.Stats() && b.Stats() == m.Stats()
	if same != a.EqualSets(b) {
		t.Error("merge-identity check disagrees with EqualSets on equal traces")
	}
	c := mkTrace([]string{"s1", "s3"}, []string{"b1:T"})
	m2 := Merge(a, c)
	same2 := a.Stats() == c.Stats() && c.Stats() == m2.Stats()
	if same2 != a.EqualSets(c) {
		t.Error("merge-identity check disagrees with EqualSets on distinct traces")
	}
}

func TestCriterionST(t *testing.T) {
	s := NewSuite(ST)
	a := mkTrace([]string{"s1", "s2"}, []string{"b1:T"})
	if !s.Unique(a) {
		t.Error("first trace must be unique")
	}
	s.Add(a)
	// Same stmt count, different branch count: [st] rejects.
	b := mkTrace([]string{"x1", "x2"}, []string{"b1:T", "b2:T"})
	if s.Unique(b) {
		t.Error("[st] must reject same statement count")
	}
	c := mkTrace([]string{"s1", "s2", "s3"}, nil)
	if !s.Unique(c) {
		t.Error("[st] must accept new statement count")
	}
}

func TestCriterionSTBR(t *testing.T) {
	s := NewSuite(STBR)
	// The paper's example: coverage 4938/2604 vs 4938/2655 — [st] takes
	// one, [stbr] takes both.
	a := mkTrace([]string{"s1", "s2"}, []string{"b1:T"})
	s.Add(a)
	b := mkTrace([]string{"x1", "x2"}, []string{"b1:T", "b2:T"})
	if !s.Unique(b) {
		t.Error("[stbr] must accept same stmts but different branches")
	}
	s.Add(b)
	c := mkTrace([]string{"y1", "y2"}, []string{"z:T"})
	if s.Unique(c) {
		t.Error("[stbr] must reject duplicate stats pair")
	}
}

func TestCriterionTR(t *testing.T) {
	s := NewSuite(TR)
	a := mkTrace([]string{"s1", "s2"}, []string{"b1:T"})
	s.Add(a)
	// Same stats pair but different set: [tr] accepts, [stbr] would not.
	b := mkTrace([]string{"s1", "s3"}, []string{"b2:T"})
	if !s.Unique(b) {
		t.Error("[tr] must accept same stats with different sets")
	}
	s.Add(b)
	dup := mkTrace([]string{"s2", "s1"}, []string{"b1:T"})
	if s.Unique(dup) {
		t.Error("[tr] must reject identical sets")
	}
}

func TestCriterionStrengthOrdering(t *testing.T) {
	// [tr] accepts a superset of [stbr], which accepts a superset of [st].
	rng := rand.New(rand.NewSource(7))
	st, stbr, tr := NewSuite(ST), NewSuite(STBR), NewSuite(TR)
	accST, accSTBR, accTR := 0, 0, 0
	for i := 0; i < 400; i++ {
		var stmts, brs []string
		for j := 0; j < 1+rng.Intn(10); j++ {
			stmts = append(stmts, fmt.Sprintf("s%d", rng.Intn(12)))
		}
		for j := 0; j < rng.Intn(8); j++ {
			brs = append(brs, fmt.Sprintf("b%d:T", rng.Intn(10)))
		}
		trc := mkTrace(stmts, brs)
		if st.Unique(trc) {
			st.Add(trc)
			accST++
		}
		if stbr.Unique(trc) {
			stbr.Add(trc)
			accSTBR++
		}
		if tr.Unique(trc) {
			tr.Add(trc)
			accTR++
		}
	}
	if !(accST <= accSTBR && accSTBR <= accTR) {
		t.Errorf("acceptance ordering violated: st=%d stbr=%d tr=%d", accST, accSTBR, accTR)
	}
	if accST == 0 {
		t.Error("no traces accepted at all")
	}
}

func TestSuiteSizeAndUniqueStats(t *testing.T) {
	s := NewSuite(TR)
	a := mkTrace([]string{"s1"}, nil)
	b := mkTrace([]string{"s2"}, nil) // same stats (1/0), different set
	s.Add(a)
	s.Add(b)
	if s.Size() != 2 {
		t.Errorf("size = %d", s.Size())
	}
	if s.UniqueStatsCount() != 1 {
		t.Errorf("unique stats = %d, want 1", s.UniqueStatsCount())
	}
}

func TestKeyCanonical(t *testing.T) {
	a := mkTrace([]string{"s1", "s2"}, []string{"b:T"})
	b := mkTrace([]string{"s2", "s1"}, []string{"b:T"})
	if a.Key() != b.Key() {
		t.Error("keys must be order-insensitive")
	}
	c := mkTrace([]string{"s1"}, []string{"s2", "b:T"})
	if a.Key() == c.Key() {
		t.Error("stmt/branch split must be part of the key")
	}
}

func TestCriterionString(t *testing.T) {
	if ST.String() != "[st]" || STBR.String() != "[stbr]" || TR.String() != "[tr]" {
		t.Error("criterion names wrong")
	}
}

// Property: a trace already in the suite is never unique again, under
// any criterion.
func TestPropertyAddedNeverUnique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, c := range []Criterion{ST, STBR, TR} {
			s := NewSuite(c)
			var stmts, brs []string
			for j := 0; j < 1+rng.Intn(6); j++ {
				stmts = append(stmts, fmt.Sprintf("s%d", rng.Intn(20)))
			}
			for j := 0; j < rng.Intn(6); j++ {
				brs = append(brs, fmt.Sprintf("b%d:F", rng.Intn(20)))
			}
			tr := mkTrace(stmts, brs)
			s.Add(tr)
			if s.Unique(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Merge is commutative and idempotent on stats.
func TestPropertyMergeAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Trace {
			var stmts, brs []string
			for j := 0; j < rng.Intn(10); j++ {
				stmts = append(stmts, fmt.Sprintf("s%d", rng.Intn(15)))
			}
			for j := 0; j < rng.Intn(10); j++ {
				brs = append(brs, fmt.Sprintf("b%d:T", rng.Intn(15)))
			}
			return mkTrace(stmts, brs)
		}
		a, b := mk(), mk()
		if !Merge(a, b).EqualSets(Merge(b, a)) {
			return false
		}
		if !Merge(a, a).EqualSets(a) {
			return false
		}
		// Union contains both operands.
		m := Merge(a, b)
		for k := range a.Stmts {
			if !m.Stmts[k] {
				return false
			}
		}
		for k := range b.Branches {
			if !m.Branches[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
