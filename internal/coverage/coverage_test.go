package coverage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// mkTrace builds a trace over reg covering the named statement probes
// and branch edges ("name:T" / "name:F").
func mkTrace(reg *Registry, stmts, branches []string) *Trace {
	r := NewRecorder(reg)
	for _, s := range stmts {
		r.Stmt(reg.Stmt(s))
	}
	for _, b := range branches {
		name, taken := splitEdge(b)
		r.Branch(reg.Branch(name), taken)
	}
	return r.Trace()
}

func splitEdge(edge string) (string, bool) {
	if name, ok := strings.CutSuffix(edge, ":F"); ok {
		return name, false
	}
	return strings.TrimSuffix(edge, ":T"), true
}

func TestRegistryInterning(t *testing.T) {
	reg := NewRegistry()
	a := reg.Stmt("a")
	b := reg.Stmt("b")
	if a == b {
		t.Error("distinct names must intern to distinct indices")
	}
	if reg.Stmt("a") != a {
		t.Error("interning must be stable")
	}
	if reg.StmtName(a) != "a" || reg.StmtName(b) != "b" {
		t.Error("name resolution wrong")
	}
	x := reg.Branch("x")
	if reg.BranchName(x) != "x" {
		t.Error("branch name resolution wrong")
	}
	if reg.EdgeName(2*uint32(x)) != "x:T" || reg.EdgeName(2*uint32(x)+1) != "x:F" {
		t.Error("edge rendering wrong")
	}
	if reg.NumStmts() != 2 || reg.NumBranches() != 1 {
		t.Errorf("sizes = %d/%d, want 2/1", reg.NumStmts(), reg.NumBranches())
	}
	p := reg.Probe("a")
	if p.Stmt != a || reg.BranchName(p.Branch) != "a" {
		t.Error("Probe must intern into both spaces under one name")
	}
}

func TestRecorderBasics(t *testing.T) {
	reg := NewRegistry()
	r := NewRecorder(reg)
	a, b := reg.Stmt("a"), reg.Stmt("b")
	x, y := reg.Branch("x"), reg.Branch("y")
	r.Stmt(a)
	r.Stmt(a)
	r.Stmt(b)
	r.Branch(x, true)
	r.Branch(x, false)
	r.Branch(y, true)
	tr := r.Trace()
	if got := tr.Stats(); got.Stmts != 2 || got.Branches != 3 {
		t.Errorf("stats = %v, want 2/3", got)
	}
	if !tr.HasStmt(a) || !tr.HasEdge(x, true) || !tr.HasEdge(x, false) || !tr.HasEdge(y, true) {
		t.Error("probe sets wrong")
	}
	if tr.HasEdge(y, false) {
		t.Error("unhit edge must not be covered")
	}
	r.Reset()
	if got := r.Trace().Stats(); got.Stmts != 0 || got.Branches != 0 {
		t.Error("reset did not clear")
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Stmt(0)         // must not panic
	r.Branch(0, true) // must not panic
}

func TestRecorderGrowsWithRegistry(t *testing.T) {
	reg := NewRegistry()
	r := NewRecorder(reg)
	// Probes interned after the recorder was built must still record.
	late := reg.Stmt("late")
	lateBr := reg.Branch("late.br")
	r.Stmt(late)
	r.Branch(lateBr, false)
	tr := r.Trace()
	if !tr.HasStmt(late) || !tr.HasEdge(lateBr, false) {
		t.Error("recorder must grow to late-interned probes")
	}
}

func TestTraceSnapshotIsolation(t *testing.T) {
	reg := NewRegistry()
	r := NewRecorder(reg)
	a, b := reg.Stmt("a"), reg.Stmt("b")
	r.Stmt(a)
	tr := r.Trace()
	r.Stmt(b)
	if tr.HasStmt(b) {
		t.Error("trace must be a snapshot, not a live view")
	}
}

func TestMergeIsUnion(t *testing.T) {
	reg := NewRegistry()
	a := mkTrace(reg, []string{"s1", "s2"}, []string{"b1:T"})
	b := mkTrace(reg, []string{"s2", "s3"}, []string{"b1:F", "b2:T"})
	m := Merge(a, b)
	if got := m.Stats(); got.Stmts != 3 || got.Branches != 3 {
		t.Errorf("merge stats = %v", got)
	}
}

func TestEqualSets(t *testing.T) {
	reg := NewRegistry()
	a := mkTrace(reg, []string{"s1", "s2"}, []string{"b1:T"})
	b := mkTrace(reg, []string{"s2", "s1"}, []string{"b1:T"})
	c := mkTrace(reg, []string{"s1", "s3"}, []string{"b1:T"})
	d := mkTrace(reg, []string{"s1", "s2"}, []string{"b1:F"})
	if !a.EqualSets(b) {
		t.Error("order must not matter")
	}
	if a.EqualSets(c) || a.EqualSets(d) {
		t.Error("different sets must not be equal")
	}
}

func TestEqualSetsAcrossRegistryGrowth(t *testing.T) {
	// A trace snapshotted before the registry grew has shorter bitsets;
	// comparisons must treat the missing trailing words as zeros.
	reg := NewRegistry()
	early := mkTrace(reg, []string{"s1"}, nil)
	for i := 0; i < 200; i++ {
		reg.Stmt(fmt.Sprintf("pad%d", i))
	}
	late := mkTrace(reg, []string{"s1"}, nil)
	if !early.EqualSets(late) || !late.EqualSets(early) {
		t.Error("trailing zero words must be insignificant")
	}
	if early.Key() != late.Key() {
		t.Error("keys must be insensitive to bitset length")
	}
	wide := mkTrace(reg, []string{"s1", "pad199"}, nil)
	if early.EqualSets(wide) || wide.EqualSets(early) {
		t.Error("a high bit must break set equality in both directions")
	}
}

func TestMergeIdentityMatchesEqualSets(t *testing.T) {
	// The [tr] definition: tr_a.stmt = tr_b.stmt = (tr_a ⊕ tr_b).stmt.
	reg := NewRegistry()
	a := mkTrace(reg, []string{"s1", "s2"}, []string{"b1:T"})
	b := mkTrace(reg, []string{"s1", "s2"}, []string{"b1:T"})
	m := Merge(a, b)
	same := a.Stats() == b.Stats() && b.Stats() == m.Stats()
	if same != a.EqualSets(b) {
		t.Error("merge-identity check disagrees with EqualSets on equal traces")
	}
	c := mkTrace(reg, []string{"s1", "s3"}, []string{"b1:T"})
	m2 := Merge(a, c)
	same2 := a.Stats() == c.Stats() && c.Stats() == m2.Stats()
	if same2 != a.EqualSets(c) {
		t.Error("merge-identity check disagrees with EqualSets on distinct traces")
	}
}

func TestCriterionST(t *testing.T) {
	reg := NewRegistry()
	s := NewSuite(ST)
	a := mkTrace(reg, []string{"s1", "s2"}, []string{"b1:T"})
	if !s.Unique(a) {
		t.Error("first trace must be unique")
	}
	s.Add(a)
	// Same stmt count, different branch count: [st] rejects.
	b := mkTrace(reg, []string{"x1", "x2"}, []string{"b1:T", "b2:T"})
	if s.Unique(b) {
		t.Error("[st] must reject same statement count")
	}
	c := mkTrace(reg, []string{"s1", "s2", "s3"}, nil)
	if !s.Unique(c) {
		t.Error("[st] must accept new statement count")
	}
}

func TestCriterionSTBR(t *testing.T) {
	reg := NewRegistry()
	s := NewSuite(STBR)
	// The paper's example: coverage 4938/2604 vs 4938/2655 — [st] takes
	// one, [stbr] takes both.
	a := mkTrace(reg, []string{"s1", "s2"}, []string{"b1:T"})
	s.Add(a)
	b := mkTrace(reg, []string{"x1", "x2"}, []string{"b1:T", "b2:T"})
	if !s.Unique(b) {
		t.Error("[stbr] must accept same stmts but different branches")
	}
	s.Add(b)
	c := mkTrace(reg, []string{"y1", "y2"}, []string{"z:T"})
	if s.Unique(c) {
		t.Error("[stbr] must reject duplicate stats pair")
	}
}

func TestCriterionTR(t *testing.T) {
	reg := NewRegistry()
	s := NewSuite(TR)
	a := mkTrace(reg, []string{"s1", "s2"}, []string{"b1:T"})
	s.Add(a)
	// Same stats pair but different set: [tr] accepts, [stbr] would not.
	b := mkTrace(reg, []string{"s1", "s3"}, []string{"b2:T"})
	if !s.Unique(b) {
		t.Error("[tr] must accept same stats with different sets")
	}
	s.Add(b)
	dup := mkTrace(reg, []string{"s2", "s1"}, []string{"b1:T"})
	if s.Unique(dup) {
		t.Error("[tr] must reject identical sets")
	}
}

func TestCriterionStrengthOrdering(t *testing.T) {
	// [tr] accepts a superset of [stbr], which accepts a superset of [st].
	reg := NewRegistry()
	rng := rand.New(rand.NewSource(7))
	st, stbr, tr := NewSuite(ST), NewSuite(STBR), NewSuite(TR)
	accST, accSTBR, accTR := 0, 0, 0
	for i := 0; i < 400; i++ {
		var stmts, brs []string
		for j := 0; j < 1+rng.Intn(10); j++ {
			stmts = append(stmts, fmt.Sprintf("s%d", rng.Intn(12)))
		}
		for j := 0; j < rng.Intn(8); j++ {
			brs = append(brs, fmt.Sprintf("b%d:T", rng.Intn(10)))
		}
		trc := mkTrace(reg, stmts, brs)
		if st.Unique(trc) {
			st.Add(trc)
			accST++
		}
		if stbr.Unique(trc) {
			stbr.Add(trc)
			accSTBR++
		}
		if tr.Unique(trc) {
			tr.Add(trc)
			accTR++
		}
	}
	if !(accST <= accSTBR && accSTBR <= accTR) {
		t.Errorf("acceptance ordering violated: st=%d stbr=%d tr=%d", accST, accSTBR, accTR)
	}
	if accST == 0 {
		t.Error("no traces accepted at all")
	}
}

func TestSuiteSizeAndUniqueStats(t *testing.T) {
	reg := NewRegistry()
	s := NewSuite(TR)
	a := mkTrace(reg, []string{"s1"}, nil)
	b := mkTrace(reg, []string{"s2"}, nil) // same stats (1/0), different set
	s.Add(a)
	s.Add(b)
	if s.Size() != 2 {
		t.Errorf("size = %d", s.Size())
	}
	if s.UniqueStatsCount() != 1 {
		t.Errorf("unique stats = %d, want 1", s.UniqueStatsCount())
	}
}

func TestKeyCanonical(t *testing.T) {
	reg := NewRegistry()
	a := mkTrace(reg, []string{"s1", "s2"}, []string{"b:T"})
	b := mkTrace(reg, []string{"s2", "s1"}, []string{"b:T"})
	if a.Key() != b.Key() {
		t.Error("keys must be order-insensitive")
	}
	// The stmt/branch split is part of the key: the same index covered
	// as a statement vs as a branch edge must hash differently.
	c := mkTrace(reg, []string{"s1"}, []string{"s2:T", "b:T"})
	if a.Key() == c.Key() {
		t.Error("stmt/branch split must be part of the key")
	}
	d := mkTrace(reg, []string{"s1", "s2"}, []string{"b:F"})
	if a.Key() == d.Key() {
		t.Error("edge direction must be part of the key")
	}
}

func TestStmtAndEdgeIDs(t *testing.T) {
	reg := NewRegistry()
	s1, s2 := reg.Stmt("s1"), reg.Stmt("s2")
	x := reg.Branch("x")
	tr := mkTrace(reg, []string{"s2", "s1"}, []string{"x:F"})
	ids := tr.StmtIDs()
	if len(ids) != 2 || ids[0] != s1 || ids[1] != s2 {
		t.Errorf("StmtIDs = %v, want [%d %d]", ids, s1, s2)
	}
	edges := tr.EdgeIDs()
	if len(edges) != 1 || edges[0] != 2*uint32(x)+1 {
		t.Errorf("EdgeIDs = %v, want [%d]", edges, 2*uint32(x)+1)
	}
	if reg.EdgeName(edges[0]) != "x:F" {
		t.Errorf("EdgeName = %q, want x:F", reg.EdgeName(edges[0]))
	}
}

func TestCriterionString(t *testing.T) {
	if ST.String() != "[st]" || STBR.String() != "[stbr]" || TR.String() != "[tr]" {
		t.Error("criterion names wrong")
	}
}

// Property: a trace already in the suite is never unique again, under
// any criterion.
func TestPropertyAddedNeverUnique(t *testing.T) {
	reg := NewRegistry()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, c := range []Criterion{ST, STBR, TR} {
			s := NewSuite(c)
			var stmts, brs []string
			for j := 0; j < 1+rng.Intn(6); j++ {
				stmts = append(stmts, fmt.Sprintf("s%d", rng.Intn(20)))
			}
			for j := 0; j < rng.Intn(6); j++ {
				brs = append(brs, fmt.Sprintf("b%d:F", rng.Intn(20)))
			}
			tr := mkTrace(reg, stmts, brs)
			s.Add(tr)
			if s.Unique(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Merge is commutative and idempotent, and the union contains
// both operands.
func TestPropertyMergeAlgebra(t *testing.T) {
	reg := NewRegistry()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Trace {
			var stmts, brs []string
			for j := 0; j < rng.Intn(10); j++ {
				stmts = append(stmts, fmt.Sprintf("s%d", rng.Intn(15)))
			}
			for j := 0; j < rng.Intn(10); j++ {
				brs = append(brs, fmt.Sprintf("b%d:T", rng.Intn(15)))
			}
			return mkTrace(reg, stmts, brs)
		}
		a, b := mk(), mk()
		if !Merge(a, b).EqualSets(Merge(b, a)) {
			return false
		}
		if !Merge(a, a).EqualSets(a) {
			return false
		}
		// Union contains both operands.
		m := Merge(a, b)
		for _, id := range a.StmtIDs() {
			if !m.HasStmt(id) {
				return false
			}
		}
		for _, e := range b.EdgeIDs() {
			if !m.HasEdge(BranchID(e/2), e%2 == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
