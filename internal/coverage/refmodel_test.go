package coverage

// The reference model: the original string-map coverage engine, kept
// verbatim as an executable specification. The differential property
// test below drives the bitset engine and this model with identical
// random probe-hit sequences and demands identical Stats, EqualSets
// verdicts, Merge results and Suite accept/reject decisions — the
// invariant that keeps campaign goldens fixed across the interning
// rewrite.

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

type refRecorder struct {
	stmts    map[string]uint32
	branches map[string]uint32
}

func newRefRecorder() *refRecorder {
	return &refRecorder{stmts: map[string]uint32{}, branches: map[string]uint32{}}
}

func (r *refRecorder) Stmt(id string) { r.stmts[id]++ }

func (r *refRecorder) Branch(id string, taken bool) {
	if taken {
		r.branches[id+":T"]++
	} else {
		r.branches[id+":F"]++
	}
}

func (r *refRecorder) Reset() {
	clear(r.stmts)
	clear(r.branches)
}

func (r *refRecorder) Trace() *refTrace {
	t := &refTrace{Stmts: map[string]bool{}, Branches: map[string]bool{}}
	for k := range r.stmts {
		t.Stmts[k] = true
	}
	for k := range r.branches {
		t.Branches[k] = true
	}
	return t
}

type refTrace struct {
	Stmts    map[string]bool
	Branches map[string]bool
}

func (t *refTrace) Stats() Stats {
	return Stats{Stmts: len(t.Stmts), Branches: len(t.Branches)}
}

func refMerge(a, b *refTrace) *refTrace {
	out := &refTrace{Stmts: map[string]bool{}, Branches: map[string]bool{}}
	for k := range a.Stmts {
		out.Stmts[k] = true
	}
	for k := range b.Stmts {
		out.Stmts[k] = true
	}
	for k := range a.Branches {
		out.Branches[k] = true
	}
	for k := range b.Branches {
		out.Branches[k] = true
	}
	return out
}

func (t *refTrace) EqualSets(o *refTrace) bool {
	if len(t.Stmts) != len(o.Stmts) || len(t.Branches) != len(o.Branches) {
		return false
	}
	for k := range t.Stmts {
		if !o.Stmts[k] {
			return false
		}
	}
	for k := range t.Branches {
		if !o.Branches[k] {
			return false
		}
	}
	return true
}

func (t *refTrace) Key() string {
	ss := make([]string, 0, len(t.Stmts))
	for k := range t.Stmts {
		ss = append(ss, k)
	}
	sort.Strings(ss)
	bs := make([]string, 0, len(t.Branches))
	for k := range t.Branches {
		bs = append(bs, k)
	}
	sort.Strings(bs)
	return strings.Join(ss, "\x00") + "\x01" + strings.Join(bs, "\x00")
}

type refSuite struct {
	criterion Criterion
	stmtSeen  map[int]bool
	pairSeen  map[Stats]bool
	byStats   map[Stats][]*refTrace
}

func newRefSuite(c Criterion) *refSuite {
	return &refSuite{
		criterion: c,
		stmtSeen:  map[int]bool{},
		pairSeen:  map[Stats]bool{},
		byStats:   map[Stats][]*refTrace{},
	}
}

func (s *refSuite) Unique(tr *refTrace) bool {
	st := tr.Stats()
	switch s.criterion {
	case ST:
		return !s.stmtSeen[st.Stmts]
	case STBR:
		return !s.pairSeen[st]
	case TR:
		for _, prev := range s.byStats[st] {
			if tr.EqualSets(prev) {
				return false
			}
		}
		return true
	}
	return false
}

func (s *refSuite) Add(tr *refTrace) {
	st := tr.Stats()
	s.stmtSeen[st.Stmts] = true
	s.pairSeen[st] = true
	s.byStats[st] = append(s.byStats[st], tr)
}

// hitSequence is one random execution: an interleaved series of
// statement and branch probe hits over a bounded name universe.
type hit struct {
	name   string
	branch bool
	taken  bool
}

func randomHits(rng *rand.Rand) []hit {
	n := rng.Intn(60)
	hits := make([]hit, n)
	for i := range hits {
		if rng.Intn(2) == 0 {
			hits[i] = hit{name: stmtNames[rng.Intn(len(stmtNames))]}
		} else {
			hits[i] = hit{
				name:   brNames[rng.Intn(len(brNames))],
				branch: true,
				taken:  rng.Intn(2) == 0,
			}
		}
	}
	return hits
}

var (
	stmtNames = []string{
		"parse.enter", "load.enter", "load.field.entry", "link.ok",
		"init.ok", "interp.op.iadd", "interp.op.goto", "verify.enter",
		"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	}
	brNames = []string{
		"parse.wellformed", "load.version.min", "load.field.dup",
		"link.resolve.found", "init.threw", "b0", "b1", "b2", "b3", "b4",
	}
)

// replay drives one hit sequence through both engines and returns the
// paired traces.
func replay(reg *Registry, rec *Recorder, ref *refRecorder, hits []hit) (*Trace, *refTrace) {
	rec.Reset()
	ref.Reset()
	for _, h := range hits {
		if h.branch {
			rec.Branch(reg.Branch(h.name), h.taken)
			ref.Branch(h.name, h.taken)
		} else {
			rec.Stmt(reg.Stmt(h.name))
			ref.Stmt(h.name)
		}
	}
	return rec.Trace(), ref.Trace()
}

// TestDifferentialAgainstStringModel is the rewrite's safety net:
// random probe-hit sequences must produce identical observable
// behaviour from the bitset engine and the string-map model.
func TestDifferentialAgainstStringModel(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg)
	ref := newRefRecorder()

	for round := 0; round < 50; round++ {
		rng := rand.New(rand.NewSource(int64(round)))

		const traces = 24
		news := make([]*Trace, traces)
		olds := make([]*refTrace, traces)
		for i := range news {
			news[i], olds[i] = replay(reg, rec, ref, randomHits(rng))
			if ns, os := news[i].Stats(), olds[i].Stats(); ns != os {
				t.Fatalf("round %d trace %d: stats %v != ref %v", round, i, ns, os)
			}
		}

		// Pairwise EqualSets verdicts and Merge results must agree.
		for i := 0; i < traces; i++ {
			for j := 0; j < traces; j++ {
				if got, want := news[i].EqualSets(news[j]), olds[i].EqualSets(olds[j]); got != want {
					t.Fatalf("round %d: EqualSets(%d,%d) = %v, ref %v", round, i, j, got, want)
				}
				// Keys must bucket exactly like canonical strings.
				if got, want := news[i].Key() == news[j].Key(), olds[i].Key() == olds[j].Key(); got != want {
					t.Fatalf("round %d: key equality (%d,%d) = %v, ref %v", round, i, j, got, want)
				}
				m, rm := Merge(news[i], news[j]), refMerge(olds[i], olds[j])
				if m.Stats() != rm.Stats() {
					t.Fatalf("round %d: merge stats (%d,%d) = %v, ref %v", round, i, j, m.Stats(), rm.Stats())
				}
				for _, id := range m.StmtIDs() {
					if !rm.Stmts[reg.StmtName(id)] {
						t.Fatalf("round %d: merge covers %q, ref does not", round, reg.StmtName(id))
					}
				}
				for _, e := range m.EdgeIDs() {
					if !rm.Branches[reg.EdgeName(e)] {
						t.Fatalf("round %d: merge covers edge %q, ref does not", round, reg.EdgeName(e))
					}
				}
			}
		}

		// Suite accept/reject decisions must be identical under all
		// three criteria, in sequence (each accept changes later
		// decisions, so one divergence would cascade — all the more
		// reason the sequences must match exactly).
		for _, c := range []Criterion{ST, STBR, TR} {
			s, rs := NewSuite(c), newRefSuite(c)
			for i := range news {
				got, want := s.Unique(news[i]), rs.Unique(olds[i])
				if got != want {
					t.Fatalf("round %d %s: trace %d unique = %v, ref %v", round, c, i, got, want)
				}
				if got {
					s.Add(news[i])
					rs.Add(olds[i])
				}
			}
		}
	}
}

// TestZeroAllocsOnWarmProbes is the allocation-regression gate for the
// hot path: firing an already-interned, already-hit probe must not
// allocate. (Cold hits may append to the dirty list; a campaign's
// recorder is warm for all but the first occurrence of each probe.)
func TestZeroAllocsOnWarmProbes(t *testing.T) {
	reg := NewRegistry()
	s := reg.Stmt("hot.stmt")
	b := reg.Branch("hot.branch")
	r := NewRecorder(reg)
	// Warm: counters nonzero, dirty lists allocated.
	r.Stmt(s)
	r.Branch(b, true)
	r.Branch(b, false)

	if avg := testing.AllocsPerRun(1000, func() {
		r.Stmt(s)
		r.Branch(b, true)
		r.Branch(b, false)
	}); avg != 0 {
		t.Errorf("warm probe hits allocate %.1f times per run, want 0", avg)
	}

	// A full Reset→refire cycle over previously-hit probes must also be
	// allocation-free: Reset keeps the dirty lists' capacity.
	if avg := testing.AllocsPerRun(1000, func() {
		r.Reset()
		r.Stmt(s)
		r.Branch(b, true)
		r.Branch(b, false)
	}); avg != 0 {
		t.Errorf("reset+refire cycle allocates %.1f times per run, want 0", avg)
	}
}
