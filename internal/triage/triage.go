// Package triage automates the discrepancy analysis the paper performed
// manually (§2.3, §3.3): given a discrepancy-triggering classfile, it
// separates *compatibility* discrepancies from *implementation-caused*
// ones by re-running the class with every VM bound to the same library
// release (Definition 2: a discrepancy under e1 = e2 indicates a JVM
// defect or policy difference, not an environment mismatch), then
// refines the implementation-caused ones with error-class heuristics
// mirroring the paper's defect-vs-checking-strategy discussion.
package triage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/difftest"
	"repro/internal/jvm"
	"repro/internal/rtlib"
)

// Verdict is the triage outcome for one classfile.
type Verdict string

// Triage verdicts.
const (
	// NotDiscrepant: the five VMs agree; nothing to triage.
	NotDiscrepant Verdict = "not-discrepant"
	// CompatibilityIssue: the discrepancy disappears once all VMs share
	// one library release — fix the environment, not a JVM.
	CompatibilityIssue Verdict = "compatibility"
	// DefectIndicative: the discrepancy persists under a shared
	// environment and involves an outcome pattern the paper associates
	// with implementation defects (a lenient VM accepting what the
	// specification forbids, or a strict VM rejecting what it allows).
	DefectIndicative Verdict = "defect-indicative"
	// PolicyDifference: persists under a shared environment but matches
	// the latitude the specification grants (verification timing,
	// resolution eagerness, accessibility checking).
	PolicyDifference Verdict = "policy-difference"
)

// Report is the full triage result for one classfile.
type Report struct {
	Verdict Verdict
	// Standard is the outcome vector under per-VM environments.
	Standard difftest.Vector
	// Shared maps release names to vectors under that shared release.
	Shared map[string]difftest.Vector
	// Notes explains the decision, one line per signal.
	Notes []string
	// Oracle holds static-oracle disagreements with the standard-lineup
	// outcomes (sanitizer: a non-empty unwaived list means this
	// reproduction's oracle or a VM simulation is wrong, so the triage
	// verdict itself is suspect).
	Oracle []analysis.Mismatch
}

// OracleClean reports whether no unwaived oracle mismatch was seen.
func (r *Report) OracleClean() bool {
	for _, m := range r.Oracle {
		if m.Hard() {
			return false
		}
	}
	return true
}

// Key returns the standard-environment vector key.
func (r *Report) Key() string { return r.Standard.Key() }

// Triager owns the runners needed for repeated triage.
type Triager struct {
	standard *difftest.Runner
	shared   map[string]*difftest.Runner
}

// New builds a triager with the standard lineup plus shared-environment
// lineups for every release.
func New() *Triager {
	return &Triager{
		standard: difftest.NewStandardRunner(),
		shared: map[string]*difftest.Runner{
			"JRE7": difftest.NewSharedEnvRunner(rtlib.JRE7),
			"JRE8": difftest.NewSharedEnvRunner(rtlib.JRE8),
		},
	}
}

// Triage classifies one classfile.
func (t *Triager) Triage(data []byte) *Report {
	rep := &Report{Shared: map[string]difftest.Vector{}}
	rep.Standard, rep.Oracle = t.standard.RunChecked(data)
	if !rep.OracleClean() {
		for _, m := range rep.Oracle {
			if m.Hard() {
				label := "oracle mismatch"
				if m.VerifierSplit() {
					label = "oracle verifier split"
				}
				rep.Notes = append(rep.Notes, label+": "+m.String())
			}
		}
	}
	if !rep.Standard.Discrepant() {
		rep.Verdict = NotDiscrepant
		rep.Notes = append(rep.Notes, "all five VMs agree under their own environments")
		return rep
	}

	// Definition 2: re-run under shared environments. When some shared
	// release makes the five VMs agree, the split was environmental —
	// it can be eliminated by enforcing the VMs against that release
	// rather than by fixing any VM.
	var constantUnder []string
	releases := make([]string, 0, len(t.shared))
	for rel := range t.shared {
		releases = append(releases, rel)
	}
	sort.Strings(releases)
	for _, rel := range releases {
		v := t.shared[rel].Run(data)
		rep.Shared[rel] = v
		if !v.Discrepant() {
			constantUnder = append(constantUnder, rel)
		}
	}
	if len(constantUnder) > 0 {
		rep.Verdict = CompatibilityIssue
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("vector %s becomes constant when every VM shares the %s library",
				rep.Standard.Key(), strings.Join(constantUnder, "/")))
		return rep
	}
	rep.Notes = append(rep.Notes, "discrepancy persists under every shared library release (Definition 2: implementation-caused)")

	// Heuristic refinement on the persisting vector.
	rep.Verdict = classifyImplementation(rep, t.standard.Names())
	return rep
}

// classifyImplementation applies the paper's defect-vs-policy heuristics.
func classifyImplementation(rep *Report, names []string) Verdict {
	v := rep.Standard

	// Signal 1: a single lenient VM invokes a class every other VM
	// rejects with a format error — the paper's "obvious JVM defects"
	// pattern (GIJ accepting illegal constructs, J9's <clinit> bug).
	invoked, rejectedFormat := 0, 0
	invoker := -1
	for i, o := range v.Outcomes {
		if o.OK() {
			invoked++
			invoker = i
		} else if o.Error == jvm.ErrClassFormat || o.Error == jvm.ErrVerify {
			rejectedFormat++
		}
	}
	if invoked == 1 && rejectedFormat >= 3 {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("only %s accepts a class the others reject as malformed", names[invoker]))
		return DefectIndicative
	}
	if invoked == 4 && rejectedFormat == 1 {
		for i, o := range v.Outcomes {
			if !o.OK() {
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("only %s rejects (%s) a class the others run", names[i], o.Error))
			}
		}
		return DefectIndicative
	}

	// Signal 2: same error class, different phases — the timing latitude
	// the specification grants (lazy vs eager verification/resolution).
	errs := map[string]bool{}
	for _, o := range v.Outcomes {
		if !o.OK() {
			errs[o.Error] = true
		}
	}
	phases := map[int]bool{}
	for _, c := range v.Codes {
		phases[c] = true
	}
	if len(errs) == 1 && len(phases) > 1 {
		for e := range errs {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("every rejecting VM throws %s, only the phase differs (verification/resolution timing)", e))
		}
		return PolicyDifference
	}

	// Signal 3: a strictness split where some VMs run the class and the
	// rejecting side uses access/linkage errors — checking-policy
	// differences (throws-clause checks, module accessibility, eager
	// resolution).
	policyErrs := 0
	for _, o := range v.Outcomes {
		switch o.Error {
		case jvm.ErrIllegalAccess, jvm.ErrNoClassDef, jvm.ErrNoSuchMethod,
			jvm.ErrNoSuchField, jvm.ErrIncompatibleChange:
			policyErrs++
		}
	}
	if policyErrs > 0 && invoked > 0 {
		rep.Notes = append(rep.Notes,
			"rejecting VMs use linkage/access errors while others run the class (checking-policy split)")
		return PolicyDifference
	}

	// Signal 4: mixed error classes at the same phase — strict/lenient
	// verification dialect differences.
	rep.Notes = append(rep.Notes, "mixed error classes across VMs (verification dialect difference)")
	if invoked >= 1 && strings.Contains(v.Key(), "0") {
		return DefectIndicative
	}
	return PolicyDifference
}

// Summary aggregates triage over a class set.
type Summary struct {
	Total   int
	Counts  map[Verdict]int
	Reports []*Report
}

// TriageAll triages every classfile and aggregates.
func (t *Triager) TriageAll(classes [][]byte) *Summary {
	s := &Summary{Counts: map[Verdict]int{}}
	for _, data := range classes {
		r := t.Triage(data)
		s.Total++
		s.Counts[r.Verdict]++
		s.Reports = append(s.Reports, r)
	}
	return s
}

// String renders the aggregate in the paper's §3.3 style.
func (s *Summary) String() string {
	return fmt.Sprintf("triage: %d classes -> %d defect-indicative, %d policy-difference, %d compatibility, %d not discrepant",
		s.Total, s.Counts[DefectIndicative], s.Counts[PolicyDifference],
		s.Counts[CompatibilityIssue], s.Counts[NotDiscrepant])
}
