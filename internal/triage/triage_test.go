package triage

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/jimple"
)

func bytesOf(t *testing.T, c *jimple.Class) []byte {
	t.Helper()
	f, err := jimple.Lower(c)
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestNotDiscrepant(t *testing.T) {
	c := jimple.NewClass("TOk")
	c.AddDefaultInit()
	c.AddStandardMain("ok")
	r := New().Triage(bytesOf(t, c))
	if r.Verdict != NotDiscrepant {
		t.Errorf("verdict = %s, want not-discrepant (%s)", r.Verdict, r.Key())
	}
}

func TestCompatibilityVerdictForEnumEditor(t *testing.T) {
	c := jimple.NewClass("TEnumEd")
	c.Super = "com/sun/beans/editors/EnumEditor"
	c.AddStandardMain("ok")
	r := New().Triage(bytesOf(t, c))
	if r.Verdict != CompatibilityIssue {
		t.Errorf("verdict = %s (%s), want compatibility", r.Verdict, r.Key())
	}
	if len(r.Shared) == 0 {
		t.Error("shared-environment vectors missing")
	}
}

func TestDefectVerdictForFigure2(t *testing.T) {
	es := catalog.Entries()
	// D01 is Figure 2's abstract <clinit>.
	data, err := es[0].Data()
	if err != nil {
		t.Fatal(err)
	}
	r := New().Triage(data)
	if r.Verdict != DefectIndicative {
		t.Errorf("verdict = %s (%s), want defect-indicative; notes: %v", r.Verdict, r.Key(), r.Notes)
	}
}

func TestCatalogTriageAgreement(t *testing.T) {
	// Run the triager over the full 62-report catalog and compare its
	// automatic verdicts with the curated classifications. Heuristics
	// cannot match the paper's manual analysis perfectly; require strong
	// agreement on compatibility detection and a solid majority overall.
	tr := New()
	agree, total := 0, 0
	compatRight, compatTotal := 0, 0
	implAsCompat := 0
	for _, e := range catalog.Entries() {
		data, err := e.Data()
		if err != nil {
			t.Fatal(err)
		}
		r := tr.Triage(data)
		total++
		want := map[catalog.Classification]Verdict{
			catalog.DefectIndicative: DefectIndicative,
			catalog.PolicyDifference: PolicyDifference,
			catalog.Compatibility:    CompatibilityIssue,
		}[e.Classification]
		if r.Verdict == want {
			agree++
		}
		if e.Classification == catalog.Compatibility {
			compatTotal++
			if r.Verdict == CompatibilityIssue {
				compatRight++
			}
		} else if r.Verdict == CompatibilityIssue {
			// The sun.*-accessibility entries are genuinely
			// environment-sensitive (the Java 9 module system is a library
			// property here); the automated triager may call them
			// compatibility where the paper filed them under accessibility
			// policy. Tolerate a couple of those, nothing more.
			implAsCompat++
			t.Logf("%s triaged as compatibility (curated: %s)", e.ID, e.Classification)
		}
	}
	t.Logf("triage agreement: %d/%d overall, %d/%d compatibility", agree, total, compatRight, compatTotal)
	if compatRight != compatTotal {
		t.Errorf("compatibility detection missed entries: %d/%d", compatRight, compatTotal)
	}
	if implAsCompat > 3 {
		t.Errorf("%d implementation-caused entries triaged as compatibility", implAsCompat)
	}
	if agree*100 < total*55 {
		t.Errorf("overall agreement %d/%d below 55%%", agree, total)
	}
}

func TestTriageAllSummary(t *testing.T) {
	tr := New()
	var classes [][]byte
	for _, e := range catalog.Entries()[:10] {
		data, err := e.Data()
		if err != nil {
			t.Fatal(err)
		}
		classes = append(classes, data)
	}
	sum := tr.TriageAll(classes)
	if sum.Total != 10 || len(sum.Reports) != 10 {
		t.Fatalf("summary covers %d", sum.Total)
	}
	n := 0
	for _, c := range sum.Counts {
		n += c
	}
	if n != 10 {
		t.Error("verdict counts do not partition the set")
	}
	if sum.String() == "" {
		t.Error("empty rendering")
	}
}
