package reduce

import (
	"bytes"
	"testing"

	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/difftest"
	"repro/internal/jimple"
)

// fig2Mutant builds a noisy version of the Figure 2 class: the
// discrepancy-triggering abstract <clinit> buried among irrelevant
// fields, methods and statements.
func fig2Mutant() *jimple.Class {
	c := jimple.NewClass("RFig2")
	c.Interfaces = []string{"java/io/Serializable", "java/lang/Cloneable"}
	c.AddField(classfile.AccPrivate, "noise1", descriptor.Int)
	c.AddField(classfile.AccProtected, "noise2", descriptor.Object("java/util/Map"))
	c.AddDefaultInit()
	c.AddStandardMain("Completed!")

	// Irrelevant helper with several statements.
	h := c.AddMethod(classfile.AccPublic|classfile.AccStatic, "helper", nil, descriptor.Int)
	x := h.NewLocal("i0", descriptor.Int)
	h.Body = []jimple.Stmt{
		&jimple.Assign{LHS: &jimple.UseLocal{L: x}, RHS: &jimple.IntConst{V: 1, Kind: 'I'}},
		&jimple.Assign{LHS: &jimple.UseLocal{L: x}, RHS: &jimple.BinOp{Op: jimple.OpAdd, L: &jimple.UseLocal{L: x}, R: &jimple.IntConst{V: 2, Kind: 'I'}, Kind: 'I'}},
		&jimple.Return{Value: &jimple.UseLocal{L: x}},
	}
	// Irrelevant throws clause.
	r := c.AddMethod(classfile.AccPublic, "risky", nil, descriptor.Void)
	r.Throws = []string{"java/io/IOException"}
	this := r.NewLocal("r0", descriptor.Object("RFig2"))
	r.Body = []jimple.Stmt{&jimple.Identity{Target: this, Param: -1}, &jimple.Return{}}

	// The actual trigger.
	c.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>", nil, descriptor.Void)
	return c
}

func TestReducePreservesVectorAndShrinks(t *testing.T) {
	c := fig2Mutant()
	runner := difftest.NewStandardRunner()
	before := Size(c)
	res, err := Reduce(c, runner, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := Size(res.Reduced)
	if after >= before {
		t.Errorf("no shrinkage: %d -> %d", before, after)
	}
	// The preserved vector must still be the J9-splitting discrepancy.
	f, _ := jimple.Lower(res.Reduced)
	data, _ := f.Bytes()
	v := runner.Run(data)
	if v.Key() != res.Vector {
		t.Errorf("final class has vector %s, recorded %s", v.Key(), res.Vector)
	}
	if !v.Discrepant() {
		t.Error("reduced class no longer triggers the discrepancy")
	}
	// The trigger method must survive.
	if res.Reduced.FindMethod("<clinit>") == nil {
		t.Error("reduction deleted the discrepancy trigger")
	}
	// The noise must be gone.
	if res.Reduced.FindMethod("helper") != nil {
		t.Error("irrelevant helper survived")
	}
	if len(res.Reduced.Fields) != 0 {
		t.Errorf("%d irrelevant fields survived", len(res.Reduced.Fields))
	}
	if res.Deleted == 0 || res.Tests < 2 {
		t.Errorf("bookkeeping: deleted=%d tests=%d", res.Deleted, res.Tests)
	}
}

// TestReduceParallelMatchesSequential asserts the worker-block
// speculative reducer commits exactly the sequential deletion sequence:
// reduced class (compared by lowered bytes), vector and accepted count
// are identical at every width; only Tests (discarded speculation) may
// grow.
func TestReduceParallelMatchesSequential(t *testing.T) {
	lowered := func(c *jimple.Class) []byte {
		f, err := jimple.Lower(c)
		if err != nil {
			t.Fatal(err)
		}
		data, err := f.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	seq, err := Reduce(fig2Mutant(), difftest.NewStandardRunner(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqBytes := lowered(seq.Reduced)

	for _, w := range []int{2, 4, 8} {
		par, err := Reduce(fig2Mutant(), difftest.NewStandardRunner(), Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if par.Vector != seq.Vector {
			t.Errorf("workers=%d: vector %s, want %s", w, par.Vector, seq.Vector)
		}
		if par.Deleted != seq.Deleted {
			t.Errorf("workers=%d: deleted %d, want %d", w, par.Deleted, seq.Deleted)
		}
		if !bytes.Equal(lowered(par.Reduced), seqBytes) {
			t.Errorf("workers=%d: reduced class differs from sequential", w)
		}
		if par.Tests < seq.Tests {
			t.Errorf("workers=%d: tests %d below sequential %d — speculation cannot save executions", w, par.Tests, seq.Tests)
		}
	}
}

func TestReduceInputNotMutated(t *testing.T) {
	c := fig2Mutant()
	before := Size(c)
	runner := difftest.NewStandardRunner()
	if _, err := Reduce(c, runner, Options{MaxRounds: 2}); err != nil {
		t.Fatal(err)
	}
	if Size(c) != before {
		t.Error("Reduce mutated its input")
	}
}

func TestReduceIdempotentOnMinimal(t *testing.T) {
	// A class that is already minimal for its vector barely shrinks.
	c := jimple.NewClass("RMin")
	c.AddMethod(classfile.AccPublic|classfile.AccAbstract, "<clinit>", nil, descriptor.Void)
	runner := difftest.NewStandardRunner()
	res, err := Reduce(c, runner, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced.FindMethod("<clinit>") == nil {
		t.Error("minimal trigger deleted")
	}
}

func TestReduceErrorsOnUnlowerable(t *testing.T) {
	c := jimple.NewClass("RBad")
	// 70000 interfaces cannot serialise (u2 count overflow).
	for i := 0; i < 70000; i++ {
		c.Interfaces = append(c.Interfaces, "java/io/Serializable")
	}
	runner := difftest.NewStandardRunner()
	if _, err := Reduce(c, runner, Options{MaxRounds: 1}); err == nil {
		t.Error("expected an error for an unserialisable class")
	}
}

func TestSizeMetric(t *testing.T) {
	c := jimple.NewClass("RSize")
	if Size(c) != 1 {
		t.Errorf("empty class size = %d", Size(c))
	}
	c.AddField(classfile.AccPublic, "f", descriptor.Int)
	c.Interfaces = []string{"java/io/Serializable"}
	m := c.AddMethod(classfile.AccPublic, "m", nil, descriptor.Void)
	m.Throws = []string{"java/lang/Exception"}
	m.Body = []jimple.Stmt{&jimple.Return{}}
	// 1 class + 1 iface + 1 field + (1 method + 1 throws + 1 stmt + 0 locals)
	if Size(c) != 6 {
		t.Errorf("size = %d, want 6", Size(c))
	}
}
