// Package reduce adapts hierarchical delta debugging (§2.3) to
// discrepancy-triggering classfiles: starting from a mutant's Jimple
// model, it repeatedly deletes methods, fields, interfaces, throws
// entries and statements, keeping a deletion only when the encoded
// five-VM outcome vector is preserved. The result is the smallest class
// this greedy hierarchy descent can find that still triggers the same
// discrepancy.
package reduce

import (
	"fmt"

	"repro/internal/difftest"
	"repro/internal/jimple"
)

// Options bound the reduction loop.
type Options struct {
	// MaxRounds caps full passes over the hierarchy (default 8).
	MaxRounds int
}

// Result reports the reduction.
type Result struct {
	Reduced *jimple.Class
	// Vector is the preserved outcome vector key.
	Vector string
	// Tests counts differential executions spent.
	Tests int
	// Deleted counts accepted deletions.
	Deleted int
}

// vectorOf lowers and runs the class, returning the encoded vector.
func vectorOf(r *difftest.Runner, c *jimple.Class) (string, bool) {
	f, err := jimple.Lower(c)
	if err != nil {
		return "", false
	}
	data, err := f.Bytes()
	if err != nil {
		return "", false
	}
	return r.Run(data).Key(), true
}

// Reduce shrinks c while preserving its outcome vector on the runner's
// VMs. The input class is not modified.
func Reduce(c *jimple.Class, runner *difftest.Runner, opts Options) (*Result, error) {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 8
	}
	cur := c.Clone()
	want, ok := vectorOf(runner, cur)
	if !ok {
		return nil, fmt.Errorf("reduce: class does not lower to a classfile")
	}
	res := &Result{Vector: want, Tests: 1}

	// try applies del to a clone; on vector preservation it commits.
	try := func(del func(*jimple.Class) bool) bool {
		cand := cur.Clone()
		if !del(cand) {
			return false
		}
		got, ok := vectorOf(runner, cand)
		res.Tests++
		if ok && got == want {
			cur = cand
			res.Deleted++
			return true
		}
		return false
	}

	for round := 0; round < opts.MaxRounds; round++ {
		changed := false

		// Step 1 of §2.3: delete methods (largest units first).
		for i := len(cur.Methods) - 1; i >= 0; i-- {
			i := i
			if try(func(c *jimple.Class) bool {
				if i >= len(c.Methods) {
					return false
				}
				c.Methods = append(c.Methods[:i], c.Methods[i+1:]...)
				return true
			}) {
				changed = true
			}
		}
		// Fields.
		for i := len(cur.Fields) - 1; i >= 0; i-- {
			i := i
			if try(func(c *jimple.Class) bool {
				if i >= len(c.Fields) {
					return false
				}
				c.Fields = append(c.Fields[:i], c.Fields[i+1:]...)
				return true
			}) {
				changed = true
			}
		}
		// Interfaces.
		for i := len(cur.Interfaces) - 1; i >= 0; i-- {
			i := i
			if try(func(c *jimple.Class) bool {
				if i >= len(c.Interfaces) {
					return false
				}
				c.Interfaces = append(c.Interfaces[:i], c.Interfaces[i+1:]...)
				return true
			}) {
				changed = true
			}
		}
		// Throws entries.
		for mi := range cur.Methods {
			for ti := len(cur.Methods[mi].Throws) - 1; ti >= 0; ti-- {
				mi, ti := mi, ti
				if try(func(c *jimple.Class) bool {
					if mi >= len(c.Methods) || ti >= len(c.Methods[mi].Throws) {
						return false
					}
					m := c.Methods[mi]
					m.Throws = append(m.Throws[:ti], m.Throws[ti+1:]...)
					return true
				}) {
					changed = true
				}
			}
		}
		// Statements (from the end, preserving branch targets).
		for mi := range cur.Methods {
			for si := len(cur.Methods[mi].Body) - 1; si >= 0; si-- {
				mi, si := mi, si
				if try(func(c *jimple.Class) bool {
					if mi >= len(c.Methods) || si >= len(c.Methods[mi].Body) {
						return false
					}
					m := c.Methods[mi]
					m.Body = append(m.Body[:si], m.Body[si+1:]...)
					jimple.RetargetAfterRemoval(m.Body, si)
					return true
				}) {
					changed = true
				}
			}
		}
		// Unused locals.
		for mi := range cur.Methods {
			for li := len(cur.Methods[mi].Locals) - 1; li >= 0; li-- {
				mi, li := mi, li
				if try(func(c *jimple.Class) bool {
					if mi >= len(c.Methods) || li >= len(c.Methods[mi].Locals) {
						return false
					}
					m := c.Methods[mi]
					m.Locals = append(m.Locals[:li], m.Locals[li+1:]...)
					return true
				}) {
					changed = true
				}
			}
		}

		if !changed {
			break
		}
	}
	res.Reduced = cur
	return res, nil
}

// Size is the reduction metric: structural element count.
func Size(c *jimple.Class) int {
	n := 1 + len(c.Interfaces) + len(c.Fields)
	for _, m := range c.Methods {
		n += 1 + len(m.Throws) + len(m.Body) + len(m.Locals)
	}
	return n
}
