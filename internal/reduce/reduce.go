// Package reduce adapts hierarchical delta debugging (§2.3) to
// discrepancy-triggering classfiles: starting from a mutant's Jimple
// model, it repeatedly deletes methods, fields, interfaces, throws
// entries and statements, keeping a deletion only when the encoded
// five-VM outcome vector is preserved. The result is the smallest class
// this greedy hierarchy descent can find that still triggers the same
// discrepancy.
package reduce

import (
	"fmt"
	"sync"

	"repro/internal/difftest"
	"repro/internal/jimple"
)

// Options bound the reduction loop.
type Options struct {
	// MaxRounds caps full passes over the hierarchy (default 8).
	MaxRounds int
	// Workers sets the speculative-evaluation width: blocks of up to
	// Workers candidate deletions are evaluated in parallel against the
	// current base (each on a private VM lineup), then committed in
	// candidate order — the campaign engine's worker-block pattern.
	// Because the first accepted deletion in a block invalidates the
	// speculations behind it (the base moved), those are discarded and
	// re-evaluated, so the reduced class, its vector and the accepted
	// deletion sequence are identical to the sequential algorithm at
	// any width; only Tests (executions spent) varies. ≤ 1 runs the
	// plain sequential loop.
	Workers int
}

// Result reports the reduction.
type Result struct {
	Reduced *jimple.Class
	// Vector is the preserved outcome vector key.
	Vector string
	// Tests counts differential executions spent, including parallel
	// speculations discarded because an earlier candidate in the same
	// block committed first.
	Tests int
	// Deleted counts accepted deletions.
	Deleted int
}

// vectorOf lowers and runs the class, returning the encoded vector.
func vectorOf(r *difftest.Runner, c *jimple.Class) (string, bool) {
	f, err := jimple.Lower(c)
	if err != nil {
		return "", false
	}
	data, err := f.Bytes()
	if err != nil {
		return "", false
	}
	return r.Run(data).Key(), true
}

// del is one candidate deletion. It mutates the clone it is handed and
// reports whether it applied (bounds may have shifted since the
// candidate was enumerated; a stale candidate is a no-op).
type del func(*jimple.Class) bool

// shrinker carries one Reduce call's state through its stages.
type shrinker struct {
	cur     *jimple.Class
	want    string
	res     *Result
	runner  *difftest.Runner
	workers int
	// pool holds one private-lineup runner per speculative slot,
	// created on first use and reused across blocks so decode caches
	// stay warm.
	pool []*difftest.Runner
}

// try applies del to a clone of the base; on vector preservation it
// commits. The sequential inner step.
func (s *shrinker) try(d del) bool {
	cand := s.cur.Clone()
	if !d(cand) {
		return false
	}
	got, ok := vectorOf(s.runner, cand)
	s.res.Tests++
	if ok && got == s.want {
		s.cur = cand
		s.res.Deleted++
		return true
	}
	return false
}

// runStage processes one stage's ordered candidate list. Sequentially
// that is a plain in-order walk; with workers > 1 it evaluates blocks
// of candidates speculatively against the fixed current base and
// commits in order: candidates before the block's first success saw
// exactly the base the sequential walk would have used, the first
// success commits, and everything after it is discarded (its base
// moved) and re-enumerated in the next block. The accept/reject
// sequence is therefore identical to the sequential walk.
func (s *shrinker) runStage(cands []del) bool {
	changed := false
	if s.workers <= 1 || len(cands) < 2 {
		for _, d := range cands {
			if s.try(d) {
				changed = true
			}
		}
		return changed
	}

	if s.pool == nil {
		s.pool = make([]*difftest.Runner, s.workers)
		for i := range s.pool {
			s.pool[i] = s.runner.Clone()
		}
	}

	type spec struct {
		cand    *jimple.Class
		applied bool
		ok      bool
		got     string
	}
	pos := 0
	for pos < len(cands) {
		n := len(cands) - pos
		if n > s.workers {
			n = s.workers
		}
		specs := make([]spec, n)
		var wg sync.WaitGroup
		for j := 0; j < n; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				cand := s.cur.Clone()
				if !cands[pos+j](cand) {
					return
				}
				specs[j].cand = cand
				specs[j].applied = true
				specs[j].got, specs[j].ok = vectorOf(s.pool[j], cand)
			}(j)
		}
		wg.Wait()
		for j := 0; j < n; j++ {
			if specs[j].applied {
				s.res.Tests++
			}
		}

		// In-order commit: the first preserved vector wins the block.
		committed := false
		for j := 0; j < n; j++ {
			if !specs[j].applied {
				continue
			}
			if specs[j].ok && specs[j].got == s.want {
				s.cur = specs[j].cand
				s.res.Deleted++
				changed = true
				pos += j + 1
				committed = true
				break
			}
		}
		if !committed {
			pos += n
		}
	}
	return changed
}

// Reduce shrinks c while preserving its outcome vector on the runner's
// VMs. The input class is not modified.
func Reduce(c *jimple.Class, runner *difftest.Runner, opts Options) (*Result, error) {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 8
	}
	cur := c.Clone()
	want, ok := vectorOf(runner, cur)
	if !ok {
		return nil, fmt.Errorf("reduce: class does not lower to a classfile")
	}
	s := &shrinker{
		cur:     cur,
		want:    want,
		res:     &Result{Vector: want, Tests: 1},
		runner:  runner,
		workers: opts.Workers,
	}

	for round := 0; round < opts.MaxRounds; round++ {
		changed := false

		// Step 1 of §2.3: delete methods (largest units first). Each
		// stage enumerates its candidates up front against the current
		// class; within a stage a deletion never grows another
		// candidate's container, so a stale index is at worst a no-op
		// (the bounds checks), exactly as in the original interleaved
		// loops.
		var cands []del
		for i := len(s.cur.Methods) - 1; i >= 0; i-- {
			i := i
			cands = append(cands, func(c *jimple.Class) bool {
				if i >= len(c.Methods) {
					return false
				}
				c.Methods = append(c.Methods[:i], c.Methods[i+1:]...)
				return true
			})
		}
		if s.runStage(cands) {
			changed = true
		}

		// Fields.
		cands = cands[:0]
		for i := len(s.cur.Fields) - 1; i >= 0; i-- {
			i := i
			cands = append(cands, func(c *jimple.Class) bool {
				if i >= len(c.Fields) {
					return false
				}
				c.Fields = append(c.Fields[:i], c.Fields[i+1:]...)
				return true
			})
		}
		if s.runStage(cands) {
			changed = true
		}

		// Interfaces.
		cands = cands[:0]
		for i := len(s.cur.Interfaces) - 1; i >= 0; i-- {
			i := i
			cands = append(cands, func(c *jimple.Class) bool {
				if i >= len(c.Interfaces) {
					return false
				}
				c.Interfaces = append(c.Interfaces[:i], c.Interfaces[i+1:]...)
				return true
			})
		}
		if s.runStage(cands) {
			changed = true
		}

		// Throws entries.
		cands = cands[:0]
		for mi := range s.cur.Methods {
			for ti := len(s.cur.Methods[mi].Throws) - 1; ti >= 0; ti-- {
				mi, ti := mi, ti
				cands = append(cands, func(c *jimple.Class) bool {
					if mi >= len(c.Methods) || ti >= len(c.Methods[mi].Throws) {
						return false
					}
					m := c.Methods[mi]
					m.Throws = append(m.Throws[:ti], m.Throws[ti+1:]...)
					return true
				})
			}
		}
		if s.runStage(cands) {
			changed = true
		}

		// Statements (from the end, preserving branch targets).
		cands = cands[:0]
		for mi := range s.cur.Methods {
			for si := len(s.cur.Methods[mi].Body) - 1; si >= 0; si-- {
				mi, si := mi, si
				cands = append(cands, func(c *jimple.Class) bool {
					if mi >= len(c.Methods) || si >= len(c.Methods[mi].Body) {
						return false
					}
					m := c.Methods[mi]
					m.Body = append(m.Body[:si], m.Body[si+1:]...)
					jimple.RetargetAfterRemoval(m.Body, si)
					return true
				})
			}
		}
		if s.runStage(cands) {
			changed = true
		}

		// Unused locals.
		cands = cands[:0]
		for mi := range s.cur.Methods {
			for li := len(s.cur.Methods[mi].Locals) - 1; li >= 0; li-- {
				mi, li := mi, li
				cands = append(cands, func(c *jimple.Class) bool {
					if mi >= len(c.Methods) || li >= len(c.Methods[mi].Locals) {
						return false
					}
					m := c.Methods[mi]
					m.Locals = append(m.Locals[:li], m.Locals[li+1:]...)
					return true
				})
			}
		}
		if s.runStage(cands) {
			changed = true
		}

		if !changed {
			break
		}
	}
	s.res.Reduced = s.cur
	return s.res, nil
}

// Size is the reduction metric: structural element count.
func Size(c *jimple.Class) int {
	n := 1 + len(c.Interfaces) + len(c.Fields)
	for _, m := range c.Methods {
		n += 1 + len(m.Throws) + len(m.Body) + len(m.Locals)
	}
	return n
}
