package analysis

import "repro/internal/jvm"

// GateKind selects which jvm.Policy knob controls a diagnostic.
type GateKind int

// Gate kinds. Each value names the policy condition under which the
// five VM presets enforce the associated rule.
const (
	// GateAlways: every conforming VM enforces the rule.
	GateAlways GateKind = iota
	// GateNever: no simulated VM enforces the rule (advisory lint).
	GateNever
	// GateVersionMin fires when Gate.Major < Policy.MinMajorVersion.
	GateVersionMin
	// GateVersionMax fires when Gate.Major > Policy.MaxMajorVersion and
	// the VM does not tolerate newer versions.
	GateVersionMax
	// GateStrictPool requires Policy.StrictConstantPool.
	GateStrictPool
	// GateStrictPoolNames requires StrictConstantPool and
	// CheckNameValidity (the Class-entry array-name check).
	GateStrictPoolNames
	// GateNameValidity requires Policy.CheckNameValidity.
	GateNameValidity
	// GateClassFlags requires Policy.CheckClassFlags.
	GateClassFlags
	// GateInterfaceSuperObject requires Policy.CheckInterfaceSuperObject.
	GateInterfaceSuperObject
	// GateDuplicateFields requires Policy.CheckDuplicateFields.
	GateDuplicateFields
	// GateDuplicateMethods requires Policy.CheckDuplicateMethods.
	GateDuplicateMethods
	// GateMemberFlags requires Policy.CheckMemberFlags.
	GateMemberFlags
	// GateInterfaceMemberRules requires Policy.CheckInterfaceMemberRules.
	GateInterfaceMemberRules
	// GateInitSignature requires Policy.CheckInitSignature.
	GateInitSignature
	// GateCodePresence requires Policy.CheckCodePresence.
	GateCodePresence
	// GateClinitInitializerCode fires when the policy classifies the
	// flagged <clinit> (whose static-()V shape is in Gate.StaticV) as
	// the class initializer, which must then carry a Code attribute.
	GateClinitInitializerCode
	// GateJsrRet fires when Policy.ForbidJsrRet and Gate.Major >= 51.
	GateJsrRet
	// GateVerify fires when the verifier dialect named by Gate.Dialect
	// is enabled and the preset actually verifies the method: eager
	// verifiers check every method, lazy ones only the entry methods
	// marked by Gate.Entry.
	GateVerify
	// GateTypeChecking fires when Policy.VerifyTypeChecking applies to
	// the classfile version (Gate.Major >= 50) and the preset verifies
	// the method (as for GateVerify).
	GateTypeChecking
)

// VerifyDialect names, for GateVerify, the verifier-dialect knob whose
// check produced the diagnostic.
type VerifyDialect int

// Verifier dialects.
const (
	// DialectInference: the base §4.10.2 dataflow rules every verifier
	// dialect enforces.
	DialectInference VerifyDialect = iota
	// DialectUninitMerge requires Policy.VerifyUninitMerge (GIJ).
	DialectUninitMerge
	// DialectRefAssign requires Policy.VerifyRefAssignability (GIJ).
	DialectRefAssign
	// DialectStrictShape requires Policy.VerifyStrictStackShape (J9).
	DialectStrictShape
)

// ClinitCond optionally restricts a gate to policies that classify a
// method named <clinit> a particular way (Problem 1: the SE 9
// clarification versus J9's always-initializer versus GIJ's ignore).
type ClinitCond int

// Clinit conditions.
const (
	// ClinitAny: the gate does not depend on <clinit> classification.
	ClinitAny ClinitCond = iota
	// ClinitAsOrdinary: the gate applies only when the policy treats the
	// flagged <clinit> as an ordinary method (initializers are exempt
	// from the ordinary-method format rules).
	ClinitAsOrdinary
)

// Gate maps a diagnostic onto the policy condition enforcing it.
type Gate struct {
	Kind GateKind
	// Major carries the classfile major version for version-sensitive
	// gates (GateVersionMin/GateVersionMax/GateJsrRet).
	Major uint16
	// StaticV records, for <clinit>-sensitive gates, whether the method
	// is static with descriptor ()V.
	StaticV bool
	// Clinit optionally restricts the gate by <clinit> classification.
	Clinit ClinitCond
	// Dialect selects, for GateVerify, the dialect knob enforcing the
	// diagnostic.
	Dialect VerifyDialect
	// Entry marks verification diagnostics on methods that lazy
	// verifiers still reach during startup (main or the class
	// initializer); eager verifiers check every method body.
	Entry bool
}

// clinitInitializer reports whether p classifies a <clinit> of the
// given static-()V shape as the class initializer.
func clinitInitializer(p *jvm.Policy, staticV bool) bool {
	switch p.ClinitRule {
	case jvm.ClinitAlwaysInitializer:
		return true
	case jvm.ClinitOrdinaryIfNonStatic:
		return staticV
	}
	return false
}

// Enabled reports whether a VM running policy p enforces the gated
// rule.
func (g Gate) Enabled(p *jvm.Policy) bool {
	if g.Clinit == ClinitAsOrdinary && clinitInitializer(p, g.StaticV) {
		return false
	}
	switch g.Kind {
	case GateAlways:
		return true
	case GateNever:
		return false
	case GateVersionMin:
		return g.Major < p.MinMajorVersion
	case GateVersionMax:
		return g.Major > p.MaxMajorVersion && !p.AcceptNewerVersions
	case GateStrictPool:
		return p.StrictConstantPool
	case GateStrictPoolNames:
		return p.StrictConstantPool && p.CheckNameValidity
	case GateNameValidity:
		return p.CheckNameValidity
	case GateClassFlags:
		return p.CheckClassFlags
	case GateInterfaceSuperObject:
		return p.CheckInterfaceSuperObject
	case GateDuplicateFields:
		return p.CheckDuplicateFields
	case GateDuplicateMethods:
		return p.CheckDuplicateMethods
	case GateMemberFlags:
		return p.CheckMemberFlags
	case GateInterfaceMemberRules:
		return p.CheckInterfaceMemberRules
	case GateInitSignature:
		return p.CheckInitSignature
	case GateCodePresence:
		return p.CheckCodePresence
	case GateClinitInitializerCode:
		return clinitInitializer(p, g.StaticV)
	case GateJsrRet:
		return p.ForbidJsrRet && g.Major >= 51
	case GateVerify:
		if !g.dialectEnabled(p) {
			return false
		}
		return p.EagerVerify || g.Entry
	case GateTypeChecking:
		return p.VerifyTypeChecking && g.Major >= 50 && (p.EagerVerify || g.Entry)
	}
	return false
}

// dialectEnabled reports whether p runs the verifier dialect a
// GateVerify diagnostic depends on.
func (g Gate) dialectEnabled(p *jvm.Policy) bool {
	switch g.Dialect {
	case DialectInference:
		return true
	case DialectUninitMerge:
		return p.VerifyUninitMerge
	case DialectRefAssign:
		return p.VerifyRefAssignability
	case DialectStrictShape:
		return p.VerifyStrictStackShape
	}
	return false
}
