package analysis

import (
	"fmt"

	"repro/internal/classfile"
	"repro/internal/jvm"
)

// Mismatch records one disagreement between the static oracle and a
// live VM run — by Definition 2's logic, evidence of a bug in either
// the oracle's reading of JVMS §4 or the VM simulation itself.
type Mismatch struct {
	// Spec names the VM preset.
	Spec string
	// Predicted is the oracle's definite claim.
	Predicted jvm.Outcome
	// Actual is the interpreter's observed outcome.
	Actual jvm.Outcome
	// Waived names the waiver covering this disagreement, "" if none.
	Waived string
}

// String renders the mismatch for sanitizer notes and test failures.
func (m Mismatch) String() string {
	s := fmt.Sprintf("%s: oracle predicted %s, VM observed %s", m.Spec, m.Predicted, m.Actual)
	if m.Waived != "" {
		s += " (waived: " + m.Waived + ")"
	}
	return s
}

// Hard reports whether the mismatch is unwaived.
func (m Mismatch) Hard() bool { return m.Waived == "" }

// Waiver documents a point where the oracle and the simulation are
// allowed to disagree, with the JVMS citation granting the latitude.
type Waiver struct {
	Name   string
	JVMS   string
	Reason string
	// Applies reports whether the waiver covers this disagreement.
	Applies func(spec jvm.Spec, predicted, actual jvm.Outcome) bool
}

// Waivers is the explicit list of tolerated oracle/VM disagreements.
// An empty list is the goal state: every mirror is exact. Entries must
// cite the JVMS passage that makes both behaviours conforming.
var Waivers = []Waiver{}

// agrees compares phase and error class; messages and output are
// informational.
func agrees(pred, act jvm.Outcome) bool {
	return pred.Phase == act.Phase && pred.Error == act.Error
}

func waiverFor(spec jvm.Spec, pred, act jvm.Outcome) string {
	for _, w := range Waivers {
		if w.Applies(spec, pred, act) {
			return w.Name
		}
	}
	return ""
}

// CrossCheck runs the oracle's definite predictions for f against live
// executions on each spec and returns every disagreement (waived ones
// included, marked). Indefinite predictions are vacuously consistent.
func CrossCheck(f *classfile.File, specs []jvm.Spec) []Mismatch {
	var out []Mismatch
	for _, spec := range specs {
		pred := StaticVerdict(f, spec)
		if !pred.Definite {
			continue
		}
		act := jvm.NewWithEnv(spec, envFor(spec.Release)).RunFile(f)
		if agrees(pred.Outcome, act) {
			continue
		}
		out = append(out, Mismatch{
			Spec: spec.Name, Predicted: pred.Outcome, Actual: act,
			Waived: waiverFor(spec, pred.Outcome, act),
		})
	}
	return out
}

// CheckVM compares one already-observed outcome against the oracle's
// prediction for the same file on the given VM (using the VM's own
// environment), for the differential runner's sanitizer where
// executions already happened. It returns nil when the prediction is
// indefinite or agrees.
func CheckVM(f *classfile.File, vm *jvm.VM, actual jvm.Outcome) *Mismatch {
	pred := StaticVerdictEnv(f, vm.Spec, vm.Env)
	if !pred.Definite || agrees(pred.Outcome, actual) {
		return nil
	}
	return &Mismatch{
		Spec: vm.Spec.Name, Predicted: pred.Outcome, Actual: actual,
		Waived: waiverFor(vm.Spec, pred.Outcome, actual),
	}
}
