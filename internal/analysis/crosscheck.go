package analysis

import (
	"fmt"

	"repro/internal/classfile"
	"repro/internal/jvm"
)

// MismatchKind classifies a disagreement for triage and difftest
// reporting.
type MismatchKind string

// Mismatch kinds.
const (
	// MismatchGeneral covers phase/error splits outside verification.
	MismatchGeneral MismatchKind = "general"
	// MismatchVerifier marks a static-verdict-vs-VM-verifier split:
	// either side claims a VerifyError the other does not, the
	// discrepancy class the dataflow oracle introduced.
	MismatchVerifier MismatchKind = "verifier"
)

// Mismatch records one disagreement between the static oracle and a
// live VM run — by Definition 2's logic, evidence of a bug in either
// the oracle's reading of JVMS §4 or the VM simulation itself.
type Mismatch struct {
	// Spec names the VM preset.
	Spec string
	// Kind classifies the disagreement.
	Kind MismatchKind
	// Predicted is the oracle's definite claim.
	Predicted jvm.Outcome
	// Actual is the interpreter's observed outcome.
	Actual jvm.Outcome
	// Waived names the waiver covering this disagreement, "" if none.
	Waived string
}

// mismatchKind classifies a predicted/actual split.
func mismatchKind(pred, act jvm.Outcome) MismatchKind {
	if pred.Error == jvm.ErrVerify || act.Error == jvm.ErrVerify {
		return MismatchVerifier
	}
	return MismatchGeneral
}

// String renders the mismatch for sanitizer notes and test failures.
func (m Mismatch) String() string {
	s := fmt.Sprintf("%s: oracle predicted %s, VM observed %s", m.Spec, m.Predicted, m.Actual)
	if m.Kind == MismatchVerifier {
		s += " [verifier split]"
	}
	if m.Waived != "" {
		s += " (waived: " + m.Waived + ")"
	}
	return s
}

// Hard reports whether the mismatch is unwaived.
func (m Mismatch) Hard() bool { return m.Waived == "" }

// VerifierSplit reports whether this is a static-verdict-vs-VM-verifier
// disagreement.
func (m Mismatch) VerifierSplit() bool { return m.Kind == MismatchVerifier }

// Waiver documents a point where the oracle and the simulation are
// allowed to disagree, with the JVMS citation granting the latitude.
type Waiver struct {
	Name   string
	JVMS   string
	Reason string
	// Applies reports whether the waiver covers this disagreement.
	Applies func(spec jvm.Spec, predicted, actual jvm.Outcome) bool
}

// Waivers is the explicit list of tolerated oracle/VM disagreements.
// An empty list is the goal state: every mirror is exact. Entries must
// cite the JVMS passage that makes both behaviours conforming.
var Waivers = []Waiver{}

// agrees compares phase and error class; messages and output are
// informational.
func agrees(pred, act jvm.Outcome) bool {
	return pred.Phase == act.Phase && pred.Error == act.Error
}

func waiverFor(spec jvm.Spec, pred, act jvm.Outcome) string {
	for _, w := range Waivers {
		if w.Applies(spec, pred, act) {
			return w.Name
		}
	}
	return ""
}

// CrossCheck runs the oracle's definite predictions for f against live
// executions on each spec and returns every disagreement (waived ones
// included, marked). Indefinite predictions are vacuously consistent.
func CrossCheck(f *classfile.File, specs []jvm.Spec) []Mismatch {
	var out []Mismatch
	for _, spec := range specs {
		pred := StaticVerdict(f, spec)
		if !pred.Definite {
			continue
		}
		act := jvm.NewWithEnv(spec, envFor(spec.Release)).RunFile(f)
		if agrees(pred.Outcome, act) {
			continue
		}
		out = append(out, Mismatch{
			Spec: spec.Name, Kind: mismatchKind(pred.Outcome, act),
			Predicted: pred.Outcome, Actual: act,
			Waived: waiverFor(spec, pred.Outcome, act),
		})
	}
	return out
}

// CheckVM compares one already-observed outcome against the oracle's
// prediction for the same file on the given VM (using the VM's own
// environment), for the differential runner's sanitizer where
// executions already happened. It returns nil when the prediction is
// indefinite or agrees.
func CheckVM(f *classfile.File, vm *jvm.VM, actual jvm.Outcome) *Mismatch {
	pred := StaticVerdictEnv(f, vm.Spec, vm.Env)
	if !pred.Definite || agrees(pred.Outcome, actual) {
		return nil
	}
	return &Mismatch{
		Spec: vm.Spec.Name, Kind: mismatchKind(pred.Outcome, actual),
		Predicted: pred.Outcome, Actual: actual,
		Waived: waiverFor(vm.Spec, pred.Outcome, actual),
	}
}
