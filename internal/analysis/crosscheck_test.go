package analysis_test

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/catalog"
	"repro/internal/classfile"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/mutation"
	"repro/internal/seedgen"
)

// TestCatalogCrossCheck runs every curated discrepancy entry (the 62
// reported cases) through the static oracle on all five presets. Every
// definite prediction must match the live VM, or be covered by an
// explicit waiver citing the JVMS latitude.
func TestCatalogCrossCheck(t *testing.T) {
	specs := jvm.StandardFive()
	definite := 0
	phases := map[jvm.Phase]bool{}
	for _, e := range catalog.Entries() {
		data, err := e.Data()
		if err != nil {
			t.Fatalf("%s: build: %v", e.ID, err)
		}
		f, err := classfile.Parse(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", e.ID, err)
		}
		for _, sp := range specs {
			if p := analysis.StaticVerdict(f, sp); p.Definite {
				definite++
				phases[p.Outcome.Phase] = true
			}
		}
		for _, m := range analysis.CrossCheck(f, specs) {
			if m.Hard() {
				t.Errorf("%s (%s): %s", e.ID, e.Title, m)
			}
		}
	}
	// Guard against the check becoming vacuous: the oracle currently
	// commits on ~200 of the 310 entry×preset combinations, across every
	// startup phase.
	if definite < 150 {
		t.Errorf("oracle made only %d definite predictions over the catalog; cross-check is nearly vacuous", definite)
	}
	if len(phases) < jvm.PhaseCount {
		t.Errorf("definite predictions cover only phases %v", phases)
	}
}

// TestMutationFamilyCrossCheck pushes mutants from every Table 2
// mutation family through the oracle on all five presets. Each family
// must yield checkable mutants, and no definite prediction may
// disagree with the live VM unless waived.
func TestMutationFamilyCrossCheck(t *testing.T) {
	specs := jvm.StandardFive()
	seeds := seedgen.Generate(seedgen.DefaultOptions(10, 7))
	rng := rand.New(rand.NewSource(7))

	byFamily := map[mutation.Category][]*mutation.Mutator{}
	for _, m := range mutation.Registry() {
		byFamily[m.Category] = append(byFamily[m.Category], m)
	}
	for fam, muts := range byFamily {
		checked := 0
		for _, mu := range muts {
			for _, s := range seeds {
				c := s.Clone()
				if !mu.Apply(c, rng) {
					continue
				}
				f, err := jimple.Lower(c)
				if err != nil {
					// Soot-style dump failure; the fuzz loop discards these
					// mutants before any VM sees them.
					continue
				}
				for _, m := range analysis.CrossCheck(f, specs) {
					if m.Hard() {
						t.Errorf("family %s, mutator %s: %s", fam, mu.Name, m)
					}
				}
				checked++
				break
			}
		}
		if checked == 0 {
			t.Errorf("family %s produced no checkable mutant", fam)
		}
	}
}

// TestStackMapCrossCheck is the regression test for the
// stackmap-undecodable downgrade: an undecodable StackMapTable on a
// version-51 class must split the presets exactly along the
// VerifyTypeChecking knob — a linking-phase ClassFormatError where the
// type-checking verifier runs eagerly (HotSpot), the same error
// surfacing at invocation under the lazy type-checker (J9), and a
// clean run under GIJ's pre-stack-map inference verifier — with the
// oracle's definite predictions agreeing with every live VM, waivers
// unused.
func TestStackMapCrossCheck(t *testing.T) {
	f := classfile.New("SM")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(bytecode.Return).SetMaxStack(1).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	code := m.Code()
	// 0xff opens a full_frame whose body is truncated: undecodable.
	code.Attributes = append(code.Attributes, &classfile.StackMapTableAttr{Raw: []byte{0xff, 0x00}})

	want := map[string]jvm.Outcome{
		"HotSpot-Java7": {Phase: jvm.PhaseLinking, Error: jvm.ErrClassFormat},
		"HotSpot-Java8": {Phase: jvm.PhaseLinking, Error: jvm.ErrClassFormat},
		"HotSpot-Java9": {Phase: jvm.PhaseLinking, Error: jvm.ErrClassFormat},
		"J9-SDK8":       {Phase: jvm.PhaseRuntime, Error: jvm.ErrClassFormat},
		"GIJ-5.1.0":     {Phase: jvm.PhaseInvoked},
	}
	for _, sp := range jvm.StandardFive() {
		pred := analysis.StaticVerdict(f, sp)
		if !pred.Definite {
			t.Errorf("%s: oracle made no definite prediction", sp.Name)
			continue
		}
		w := want[sp.Name]
		if pred.Outcome.Phase != w.Phase || pred.Outcome.Error != w.Error {
			t.Errorf("%s: predicted %v, want phase %v error %q", sp.Name, pred.Outcome, w.Phase, w.Error)
		}
	}
	for _, mm := range analysis.CrossCheck(f, jvm.StandardFive()) {
		t.Errorf("oracle/VM disagreement: %s", mm)
	}
}

// TestWaiversCited asserts every waiver entry documents its JVMS basis.
func TestWaiversCited(t *testing.T) {
	for _, w := range analysis.Waivers {
		if w.Name == "" || w.JVMS == "" || w.Reason == "" || w.Applies == nil {
			t.Errorf("waiver %+v lacks a name, citation, reason or predicate", w)
		}
	}
}
