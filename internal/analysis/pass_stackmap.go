package analysis

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jvm"
)

// StackMapAnalyzer checks StackMapTable frames for internal
// consistency (JVMS §4.7.4): decodability, frame offsets landing on
// instruction boundaries, Object entries naming Class constants,
// Uninitialized entries pointing at a `new`, and locals/stack sizes
// within max_locals/max_stack. An undecodable table is a policy-gated
// reject: presets running the §4.10.1 type-checking verifier
// (VerifyTypeChecking, version ≥ 50) throw ClassFormatError when they
// verify the method. The remaining frame-content findings stay
// advisory — the simulated verifiers infer types and never trust the
// table's claims.
var StackMapAnalyzer = &Analyzer{
	Name: "stackmap",
	Doc:  "StackMapTable decodability and frame consistency (JVMS §4.7.4)",
	Run:  runStackMap,
}

// Sub-check ordinals within a method's stackmap band (stagePost).
const (
	subSMDecode = subCodeStackMap0 + iota
	subSMOffset
	subSMObject
	subSMUninit
	subSMLocals
	subSMStack
)

func runStackMap(p *Pass) {
	for i, m := range p.File.Methods {
		code := m.Code()
		if code == nil {
			continue
		}
		var table *classfile.StackMapTableAttr
		for _, a := range code.Attributes {
			if t, ok := a.(*classfile.StackMapTableAttr); ok {
				table = t
				break
			}
		}
		if table == nil {
			continue
		}
		stackMapMethod(p, i, m, code, table)
	}
}

func stackMapMethod(p *Pass, i int, m *classfile.Member, code *classfile.CodeAttr, table *classfile.StackMapTableAttr) {
	label := p.MethodLabel(m)
	warn := func(sub int, rule, format string, args ...any) {
		p.report(Diagnostic{
			Rule: rule, Severity: SevWarn,
			Phase: jvm.PhaseLinking, JVMS: "§4.7.4",
			Message: fmt.Sprintf(format, args...), Method: label,
			Gate: Gate{Kind: GateNever}, Seq: seqOf(stagePost, i, sub),
		})
	}

	frames, err := classfile.DecodeStackMap(table)
	if err != nil {
		// Type-checking presets reject the method outright; inference
		// verifiers ignore the table (the old advisory-warn behaviour
		// under-reported this as never-rejected).
		p.report(Diagnostic{
			Rule: "stackmap-undecodable", Severity: SevError,
			Phase: jvm.PhaseLinking, Err: jvm.ErrClassFormat, JVMS: "§4.7.4",
			Message: fmt.Sprintf("StackMapTable does not decode: %v", err), Method: label,
			Gate: Gate{Kind: GateTypeChecking, Major: p.File.Major, Entry: entryMethod(p.File, m)},
			Seq:  seqOf(stagePost, i, subSMDecode),
		})
		return
	}
	cfg, cfgErr := p.CFG(m)
	onBoundary := func(pc int) bool {
		if cfg == nil || cfgErr != nil {
			return true // undecodable code is the code pass's finding
		}
		_, ok := cfg.PCIndex[pc]
		return ok
	}
	isNewAt := func(pc int) bool {
		if cfg == nil || cfgErr != nil {
			return true
		}
		idx, ok := cfg.PCIndex[pc]
		return ok && cfg.Ins[idx].Op == bytecode.New
	}

	// Running locals-slot estimate: the implicit frame 0 holds the
	// receiver plus parameters; append adds, chop removes.
	slots := 0
	if !m.AccessFlags.Has(classfile.AccStatic) {
		slots++
	}
	if md, err := descriptor.ParseMethod(m.Descriptor(p.File.Pool)); err == nil {
		for _, pt := range md.Params {
			slots += pt.Slots()
		}
	}

	vtiSlots := func(vs []classfile.VerificationTypeInfo) int {
		n := 0
		for _, v := range vs {
			if v.Tag == classfile.VTLong || v.Tag == classfile.VTDouble {
				n += 2
			} else {
				n++
			}
		}
		return n
	}
	checkVTIs := func(fi int, vs []classfile.VerificationTypeInfo) {
		for _, v := range vs {
			switch v.Tag {
			case classfile.VTObject:
				if _, ok := p.File.Pool.ClassName(v.CPoolIndex); !ok {
					warn(subSMObject, "stackmap-object-cp",
						"frame %d: Object entry #%d is not a Class constant", fi, v.CPoolIndex)
				}
			case classfile.VTUninitialized:
				if !isNewAt(int(v.Offset)) {
					warn(subSMUninit, "stackmap-uninit-offset",
						"frame %d: Uninitialized offset %d is not a `new` instruction", fi, v.Offset)
				}
			}
		}
	}

	pc := -1
	for fi, fr := range frames {
		if pc < 0 {
			pc = int(fr.OffsetDelta)
		} else {
			pc += int(fr.OffsetDelta) + 1
		}
		if pc >= len(code.Code) || !onBoundary(pc) {
			warn(subSMOffset, "stackmap-offset",
				"frame %d: offset %d is not an instruction boundary", fi, pc)
		}
		checkVTIs(fi, fr.Locals)
		checkVTIs(fi, fr.Stack)
		switch fr.Kind {
		case classfile.FrameAppend:
			slots += vtiSlots(fr.Locals)
		case classfile.FrameChop:
			slots -= fr.Chopped
		case classfile.FrameFull:
			slots = vtiSlots(fr.Locals)
		}
		if slots > int(code.MaxLocals) {
			warn(subSMLocals, "stackmap-locals-overflow",
				"frame %d: %d local slots exceed max_locals %d", fi, slots, code.MaxLocals)
		}
		if n := vtiSlots(fr.Stack); n > int(code.MaxStack) {
			warn(subSMStack, "stackmap-stack-overflow",
				"frame %d: %d stack slots exceed max_stack %d", fi, n, code.MaxStack)
		}
	}
}
