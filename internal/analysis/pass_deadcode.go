package analysis

import (
	"fmt"

	"repro/internal/jvm"
)

// DeadCodeAnalyzer reports instructions the dataflow verifier never
// visits (advisory — every simulated VM simply skips them, JVMS
// §4.10.2.1 note on unreachable code) and the one hard consequence of
// reachability: control reaching the end of the code array without a
// return or throw, which every verifier rejects (JVMS §4.8).
var DeadCodeAnalyzer = &Analyzer{
	Name: "deadcode",
	Doc:  "unreachable instructions and fallthrough off the end of code (JVMS §4.8, §4.10)",
	Run:  runDeadCode,
}

func runDeadCode(p *Pass) {
	for i, m := range p.File.Methods {
		cfg, err := p.CFG(m)
		if cfg == nil || err != nil {
			continue // no Code, or reported as undecodable by the code pass
		}
		label := p.MethodLabel(m)
		if n := cfg.UnreachableCount(); n > 0 {
			first := -1
			for idx, r := range cfg.Reachable {
				if !r {
					first = cfg.Ins[idx].PC
					break
				}
			}
			p.report(Diagnostic{
				Rule: "unreachable", Severity: SevWarn,
				Phase: jvm.PhaseLinking, JVMS: "§4.10.2.1",
				Message: fmt.Sprintf("%d unreachable instruction(s), first at pc %d", n, first),
				Method:  label,
				Gate:    Gate{Kind: GateNever}, Seq: seqOf(stagePost, i, subCodeDead),
			})
		}
		for _, idx := range cfg.FallsOff {
			if !cfg.Reachable[idx] {
				continue // dead tails never execute, so no VM objects
			}
			p.report(Diagnostic{
				Rule: "falls-off-end", Severity: SevError,
				Phase: jvm.PhaseLinking, Err: jvm.ErrVerify, JVMS: "§4.8",
				Message: fmt.Sprintf("execution can fall off the end of the code array (pc %d)", cfg.Ins[idx].PC),
				Method:  label,
				Gate:    Gate{Kind: GateAlways}, Seq: seqOf(stagePost, i, subCodeFallsOff),
			})
		}
	}
}
