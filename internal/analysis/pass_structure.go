package analysis

import (
	"fmt"

	"repro/internal/classfile"
	"repro/internal/jvm"
)

// StructureAnalyzer covers the cross-member structural rules: duplicate
// field/method signatures, the interface member-flag requirements, and
// the interface-superclass-is-Object rule (JVMS §4.1, §4.5, §4.6).
var StructureAnalyzer = &Analyzer{
	Name: "structure",
	Doc:  "duplicate members and interface structural rules (JVMS §4.1, §4.5, §4.6)",
	Run:  runStructure,
}

func runStructure(p *Pass) {
	f := p.File
	cp := f.Pool

	if f.IsInterface() {
		if super := f.SuperName(); super != "java/lang/Object" {
			p.report(Diagnostic{
				Rule: "interface-super", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.1",
				Message: fmt.Sprintf("interface %s has superclass %s (must be java/lang/Object)", f.Name(), super),
				Gate:    Gate{Kind: GateInterfaceSuperObject}, Seq: seqOf(stageIfaceSuper, 0, 0),
			})
		}
	}

	seenFields := make(map[string]bool, len(f.Fields))
	for i, fl := range f.Fields {
		fname := fl.Name(cp)
		fdesc := fl.Descriptor(cp)
		if fname == "" || fdesc == "" {
			continue // dangling members are rejected unconditionally upstream
		}
		key := fname + ":" + fdesc
		if seenFields[key] {
			p.report(Diagnostic{
				Rule: "duplicate-field", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.5",
				Message: fmt.Sprintf("duplicate field %s", key),
				Method:  fname,
				Gate:    Gate{Kind: GateDuplicateFields}, Seq: seqOf(stageFields, i, subMemberDup),
			})
		}
		seenFields[key] = true
		if f.IsInterface() {
			want := classfile.AccPublic | classfile.AccStatic | classfile.AccFinal
			if !fl.AccessFlags.Has(want) {
				p.report(Diagnostic{
					Rule: "interface-field-flags", Severity: SevError,
					Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.5",
					Message: fmt.Sprintf("interface field %s must be public static final", fname),
					Method:  fname,
					Gate:    Gate{Kind: GateInterfaceMemberRules}, Seq: seqOf(stageFields, i, subFieldIfaceRules),
				})
			}
		}
	}

	seenMethods := make(map[string]bool, len(f.Methods))
	for i, m := range f.Methods {
		mname := m.Name(cp)
		mdesc := m.Descriptor(cp)
		if mname == "" || mdesc == "" {
			continue
		}
		key := mname + mdesc
		if seenMethods[key] {
			p.report(Diagnostic{
				Rule: "duplicate-method", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.6",
				Message: fmt.Sprintf("duplicate method %s", key),
				Method:  key,
				Gate:    Gate{Kind: GateDuplicateMethods}, Seq: seqOf(stageMethods, i, subMemberDup),
			})
		}
		seenMethods[key] = true
		// <clinit> is outside the interface member rules regardless of how
		// the policy classifies it (the loader excludes it by name).
		if f.IsInterface() && mname != "<clinit>" {
			want := classfile.AccPublic | classfile.AccAbstract
			if !m.AccessFlags.Has(want) {
				p.report(Diagnostic{
					Rule: "interface-method-flags", Severity: SevError,
					Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.6",
					Message: fmt.Sprintf("interface method %s must be public abstract", mname),
					Method:  key,
					Gate:    Gate{Kind: GateInterfaceMemberRules}, Seq: seqOf(stageMethods, i, subMethodIfaceRules),
				})
			}
		}
	}
}
