package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/jvm"
)

// okClass builds a minimal well-formed class: public, version 51, one
// static void method with a lone return.
func okClass(name string) *classfile.File {
	f := classfile.New(name)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "go", "()V")
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{
		MaxStack: 1, MaxLocals: 1, Code: []byte{0xb1}, // return
	})
	return f
}

func findDiag(diags []analysis.Diagnostic, rule string) *analysis.Diagnostic {
	for i := range diags {
		if diags[i].Rule == rule {
			return &diags[i]
		}
	}
	return nil
}

func TestCleanClassHasNoErrors(t *testing.T) {
	// Version bounds are emitted unconditionally (the gate decides per
	// policy), so "clean" means: no error any standard preset enforces.
	diags := analysis.Run(okClass("T"), analysis.DefaultAnalyzers())
	for _, d := range diags {
		if d.Severity != analysis.SevError {
			continue
		}
		for _, sp := range jvm.StandardFive() {
			if d.Gate.Enabled(&sp.Policy) {
				t.Errorf("%s enforces unexpected diagnostic: %s", sp.Name, d)
			}
		}
	}
}

func TestDuplicateMethodDiagnostic(t *testing.T) {
	f := okClass("T")
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "go", "()V")
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{
		MaxStack: 1, MaxLocals: 1, Code: []byte{0xb1},
	})
	d := findDiag(analysis.Run(f, analysis.DefaultAnalyzers()), "duplicate-method")
	if d == nil {
		t.Fatal("no duplicate-method diagnostic")
	}
	if d.Severity != analysis.SevError || d.Phase != jvm.PhaseLoading {
		t.Errorf("got %s severity, %s phase", d.Severity, d.Phase)
	}
	// Every preset's loader checks duplicates only under its policy gate.
	strict := jvm.HotSpot9().Policy
	if !d.Gate.Enabled(&strict) {
		t.Errorf("duplicate-method gate disabled for HotSpot9")
	}
}

func TestClassFlagDiagnosticGating(t *testing.T) {
	f := okClass("T")
	f.AccessFlags |= classfile.AccFinal | classfile.AccAbstract
	d := findDiag(analysis.Run(f, analysis.DefaultAnalyzers()), "class-final-abstract")
	if d == nil {
		t.Fatal("no class-final-abstract diagnostic")
	}
	hs9, gij := jvm.HotSpot9().Policy, jvm.GIJ().Policy
	if !d.Gate.Enabled(&hs9) {
		t.Errorf("flag check should be enabled for HotSpot9")
	}
	if d.Gate.Enabled(&gij) {
		t.Errorf("flag check should be disabled for GIJ's lenient loader")
	}
}

func TestBadBranchTargetDiagnostic(t *testing.T) {
	f := classfile.New("T")
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "go", "()V")
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{
		// goto +200 jumps far past the end of the 4-byte method.
		MaxStack: 1, MaxLocals: 1, Code: []byte{0xa7, 0x00, 0xc8, 0xb1},
	})
	d := findDiag(analysis.Run(f, analysis.DefaultAnalyzers()), "bad-branch-target")
	if d == nil {
		t.Fatal("no bad-branch-target diagnostic")
	}
	if d.Phase != jvm.PhaseLinking || d.Err != jvm.ErrVerify {
		t.Errorf("got phase %s, err %s", d.Phase, d.Err)
	}
}

func TestUnreachableCodeWarning(t *testing.T) {
	f := classfile.New("T")
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "go", "()V")
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{
		// return; nop — the nop is unreachable.
		MaxStack: 1, MaxLocals: 1, Code: []byte{0xb1, 0x00},
	})
	d := findDiag(analysis.Run(f, analysis.DefaultAnalyzers()), "unreachable")
	if d == nil {
		t.Fatal("no unreachable diagnostic")
	}
	if d.Severity != analysis.SevWarn {
		t.Errorf("unreachable code must be advisory, got %s", d.Severity)
	}
	p := jvm.HotSpot9().Policy
	if d.Gate.Enabled(&p) {
		t.Errorf("no VM rejects unreachable code; gate must stay closed")
	}
}

func TestFallsOffEndDiagnostic(t *testing.T) {
	f := classfile.New("T")
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "go", "()V")
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{
		MaxStack: 1, MaxLocals: 1, Code: []byte{0x00}, // lone nop
	})
	d := findDiag(analysis.Run(f, analysis.DefaultAnalyzers()), "falls-off-end")
	if d == nil {
		t.Fatal("no falls-off-end diagnostic")
	}
	if d.Err != jvm.ErrVerify {
		t.Errorf("got %s", d.Err)
	}
}

func TestDiagnosticOrderingMirrorsLoader(t *testing.T) {
	// A file with both a pool defect and a member defect must report the
	// pool defect first, matching the loader's check sequence.
	f := okClass("T")
	f.AddMethod(classfile.AccPublic|classfile.AccStatic, "bad", "not-a-descriptor")
	f.AccessFlags |= classfile.AccFinal | classfile.AccAbstract
	diags := analysis.Run(f, analysis.DefaultAnalyzers())
	var rules []string
	for _, d := range diags {
		if d.Severity == analysis.SevError {
			rules = append(rules, d.Rule)
		}
	}
	flagAt, descAt := -1, -1
	for i, r := range rules {
		switch r {
		case "class-final-abstract":
			flagAt = i
		case "method-descriptor":
			descAt = i
		}
	}
	if flagAt < 0 || descAt < 0 {
		t.Fatalf("missing expected diagnostics in %v", rules)
	}
	if flagAt > descAt {
		t.Errorf("class-flag check must precede member descriptor checks: %v", rules)
	}
}

func TestLintRejectsUnparseable(t *testing.T) {
	if _, err := analysis.Lint([]byte{0xCA, 0xFE}); err == nil {
		t.Fatal("Lint accepted truncated bytes")
	}
}

func TestDiagnosticStringCitesJVMS(t *testing.T) {
	f := okClass("T")
	f.AccessFlags |= classfile.AccFinal | classfile.AccAbstract
	d := findDiag(analysis.Run(f, analysis.DefaultAnalyzers()), "class-final-abstract")
	if d == nil {
		t.Fatal("no diagnostic")
	}
	if !strings.Contains(d.String(), "JVMS") || d.JVMS == "" {
		t.Errorf("diagnostic must cite its JVMS section: %s", d)
	}
}
