package analysis

import (
	"strings"

	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jvm"
)

// LoadAnalyzers returns the passes whose diagnostics correspond to
// loading-phase format checks (no CFG construction, so they are cheap
// enough to run per-mutant inside the fuzz loop).
func LoadAnalyzers() []*Analyzer {
	return []*Analyzer{ConstPoolAnalyzer, MembersAnalyzer, StructureAnalyzer}
}

// LoadReject returns the first loading-phase diagnostic a VM with
// policy p enforces, or nil when p's loader accepts f. It is the
// prefilter predicate: a non-nil result means the VM rejects f during
// loading, before any environment or interpreter state is consulted.
func LoadReject(f *classfile.File, p *jvm.Policy) *Diagnostic {
	return firstLoadReject(Run(f, LoadAnalyzers()), p)
}

// Fingerprint hashes the structural skeleton of a classfile: exactly
// the inputs the loading phase reads. Two files with equal fingerprints
// take identical paths through load — the same branch probes fire and
// the same check rejects (or none does) — so a recorded load-phase
// coverage trace can be reused for any fingerprint-equal file.
//
// The skeleton covers versions, access flags, the class/super/interface
// indices, every pool entry's tag and cross-references, and member
// flag/name/descriptor/has-Code tuples. Utf8 entries are abstracted to
// the properties load actually branches on — content-equality classes
// within the file (duplicate detection), descriptor/class-name
// validity, the "[" prefix, the handful of special names, and whether
// the string parses as a void-returning method descriptor — so mutants
// differing only in generated class names or numeric payloads share a
// fingerprint.
func Fingerprint(f *classfile.File) uint64 {
	// Inlined FNV-1a (identical to hash/fnv.New64a) so hashing a
	// skeleton allocates nothing: writing through the hash.Hash64
	// interface forced a heap allocation per appended byte, which made
	// fingerprinting a visible slice of the prefilter's cost.
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	h := uint64(fnvOffset64)
	u8 := func(v byte) { h = (h ^ uint64(v)) * fnvPrime64 }
	u16 := func(v uint16) {
		u8(byte(v >> 8))
		u8(byte(v))
	}

	u16(f.Minor)
	u16(f.Major)
	u16(uint16(f.AccessFlags))
	u16(f.ThisClass)
	u16(f.SuperClass)
	u16(uint16(len(f.Interfaces)))
	for _, idx := range f.Interfaces {
		u16(idx)
	}

	cp := f.Pool
	u16(uint16(cp.Count()))
	for i := 0; i < cp.Count(); i++ {
		c := cp.Get(uint16(i))
		if c == nil {
			u8(0)
			continue
		}
		u8(byte(c.Tag))
		if c.Tag == classfile.TagUtf8 {
			// First pool index with equal content: the equality classes
			// that drive duplicate-member detection.
			firstEq := i
			for j := 1; j < i; j++ {
				if o := cp.Get(uint16(j)); o != nil && o.Tag == classfile.TagUtf8 && o.Str == c.Str {
					firstEq = j
					break
				}
			}
			u16(uint16(firstEq))
			u8(utf8Bits(c.Str))
			u8(specialNameID(c.Str))
		} else {
			u16(c.Ref1)
			u16(c.Ref2)
			u8(c.Kind)
		}
	}

	member := func(m *classfile.Member) {
		u16(uint16(m.AccessFlags))
		u16(m.NameIndex)
		u16(m.DescIndex)
		if m.Code() != nil {
			u8(1)
		} else {
			u8(0)
		}
	}
	u16(uint16(len(f.Fields)))
	for _, fl := range f.Fields {
		member(fl)
	}
	u16(uint16(len(f.Methods)))
	for _, m := range f.Methods {
		member(m)
	}
	return h
}

// ContentFingerprint hashes raw classfile bytes (the same inlined
// FNV-1a as Fingerprint, zero allocations). Unlike Fingerprint, which
// abstracts a file to its load-phase skeleton, this is an exact-content
// hash: a differential outcome is a function of the full class
// semantics (code payloads included), so the difftest outcome memo
// buckets classes by this value and confirms candidates with byte
// equality — a collision can cost a redundant compare, never a reused
// wrong outcome.
func ContentFingerprint(data []byte) uint64 {
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	h := uint64(fnvOffset64)
	for _, b := range data {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

// VerifyFingerprint hashes raw classfile bytes with constant-pool Utf8
// entries equal to the class's own name abstracted away. Two files with
// equal fingerprints differ at most in what the self-name literally
// spells, and the simulated VMs never read that spelling beyond
// equality with other pool strings (self-resolution, circularity) and
// the validity/special-name properties hashed into the prefix — every
// env lookup is guarded by a != self comparison, and the verifiers
// treat the self-class opaquely. Masked-equal files therefore drive
// byte-identical control flow through load, link and run, so a
// recorded coverage trace can be reused across them. The campaign's
// verify band keys its trace cache and verdict memo on this: mutants
// differ from earlier ones only in the iteration-derived class name far
// more often than in any other byte.
//
// The pool walk masks an entry by replacing its length and content
// with a marker, so entries equal to selfName collapse together while
// every other byte of the file is hashed verbatim. Anything the walk
// cannot decode (unknown tag, truncation) falls back to hashing the
// whole file verbatim — a finer key, never a wrong one. Comparison is
// against the standard UTF-8 spelling of selfName; a modified-UTF-8
// mismatch again only makes the key finer.
func VerifyFingerprint(data []byte, selfName string) uint64 {
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	h := uint64(fnvOffset64)
	u8 := func(v byte) { h = (h ^ uint64(v)) * fnvPrime64 }
	raw := func(b []byte) {
		for _, v := range b {
			h = (h ^ uint64(v)) * fnvPrime64
		}
	}
	whole := func() uint64 {
		raw(data)
		return h
	}

	// The self-name properties load branches on, so files whose names
	// differ in validity class never collide.
	u8(utf8Bits(selfName))
	u8(specialNameID(selfName))

	// Header through constant_pool_count.
	if len(data) < 10 {
		return whole()
	}
	raw(data[:10])
	count := int(data[8])<<8 | int(data[9])

	pos := 10
	for slot := 1; slot < count; slot++ {
		if pos >= len(data) {
			return whole()
		}
		tag := data[pos]
		u8(tag)
		pos++
		var n int
		switch classfile.ConstTag(tag) {
		case classfile.TagUtf8:
			if pos+2 > len(data) {
				return whole()
			}
			n = int(data[pos])<<8 | int(data[pos+1])
			if pos+2+n > len(data) {
				return whole()
			}
			if string(data[pos+2:pos+2+n]) == selfName {
				u8(0xFF) // masked: the self-name marker
			} else {
				raw(data[pos : pos+2+n])
			}
			pos += 2 + n
			continue
		case classfile.TagInteger, classfile.TagFloat:
			n = 4
		case classfile.TagLong, classfile.TagDouble:
			n = 8
			slot++ // wide constants take two pool slots
		case classfile.TagClass, classfile.TagString, classfile.TagMethodType:
			n = 2
		case classfile.TagFieldref, classfile.TagMethodref,
			classfile.TagInterfaceMethodref, classfile.TagNameAndType,
			classfile.TagInvokeDynamic:
			n = 4
		case classfile.TagMethodHandle:
			n = 3
		default:
			return whole()
		}
		if pos+n > len(data) {
			return whole()
		}
		raw(data[pos : pos+n])
		pos += n
	}

	// Everything after the pool is hashed verbatim.
	raw(data[pos:])
	return h
}

// utf8Bits packs the validity properties the loader branches on.
func utf8Bits(s string) byte {
	var b byte
	if descriptor.ValidField(s) {
		b |= 1
	}
	if descriptor.ValidMethod(s) {
		b |= 2
	}
	if descriptor.ValidClassName(s) {
		b |= 4
	}
	if strings.HasPrefix(s, "[") {
		b |= 8
	}
	if descriptor.ValidMethodReturnsVoid(s) {
		b |= 16
	}
	return b
}

// specialNameID distinguishes the literal strings the loader compares
// names and descriptors against.
func specialNameID(s string) byte {
	switch s {
	case "java/lang/Object":
		return 1
	case "<init>":
		return 2
	case "<clinit>":
		return 3
	case "main":
		return 4
	case "()V":
		return 5
	case "([Ljava/lang/String;)V":
		return 6
	}
	return 0
}
