package analysis

import (
	"repro/internal/analysis/dataflow"
	"repro/internal/classfile"
	"repro/internal/jvm"
	"repro/internal/rtlib"
)

// DataflowAnalyzer surfaces the abstract-interpretation verifier's
// findings as diagnostics: each method body is run through the §4.10
// type-state dataflow under a dialect-free baseline policy, then under
// each verifier-dialect knob in isolation, so a finding's Gate names
// exactly the dialect that makes a preset reject it. The pass is for
// classlint's diagnostic surface; the definite accept/reject oracle
// (verdict.go) runs the dataflow directly under each preset's real
// policy and does not consult these diagnostics. It is therefore not
// part of DefaultAnalyzers — cmd/classlint appends it explicitly.
//
// Environment-sensitive checks (hierarchy joins, assignability,
// throwability) use the JRE8 library as the representative
// environment; per-release splits are the crosscheck harness's
// territory, not a lint concern.
var DataflowAnalyzer = &Analyzer{
	Name: "dataflow",
	Doc:  "abstract-interpretation bytecode verification (JVMS §4.10 type-state dataflow)",
	Run:  runDataflow,
}

// Sub-check ordinals within a method's dataflow band (stagePost),
// placed after the stackmap band.
const (
	subDataflowBase = 32 + iota
	subDataflowUninit
	subDataflowRefAssign
	subDataflowShape
)

// entryMethod reports whether lazy-verification presets still verify m
// during the startup pipeline: the observable main, or a method named
// <clinit> (verified when the class initializer first runs).
func entryMethod(f *classfile.File, m *classfile.Member) bool {
	name := m.Name(f.Pool)
	if name == "<clinit>" {
		return true
	}
	return name == "main" && m.Descriptor(f.Pool) == "([Ljava/lang/String;)V"
}

func runDataflow(p *Pass) {
	env := envFor(rtlib.JRE8)
	// The baseline policy runs only the rules every verifier dialect
	// shares: no dialect knobs, no eager resolution (missing catch
	// types are a resolution finding, not a verification one), and no
	// jsr/ret ban (the code pass reports that with its own gate).
	base := jvm.Policy{}
	dialects := []struct {
		sub     int
		rule    string
		dialect VerifyDialect
		set     func(*jvm.Policy)
	}{
		{subDataflowUninit, "verify-uninit-merge", DialectUninitMerge,
			func(pl *jvm.Policy) { pl.VerifyUninitMerge = true }},
		{subDataflowRefAssign, "verify-ref-assignability", DialectRefAssign,
			func(pl *jvm.Policy) { pl.VerifyRefAssignability = true }},
		{subDataflowShape, "verify-stack-shape", DialectStrictShape,
			func(pl *jvm.Policy) { pl.VerifyStrictStackShape = true }},
	}

	for i, m := range p.File.Methods {
		if m.Code() == nil {
			continue
		}
		label := p.MethodLabel(m)
		entry := entryMethod(p.File, m)
		diag := func(sub int, rule string, out *jvm.Outcome, dialect VerifyDialect) {
			p.report(Diagnostic{
				Rule: rule, Severity: SevError,
				Phase: jvm.PhaseLinking, Err: out.Error, JVMS: "§4.10",
				Message: out.Message, Method: label,
				Gate: Gate{Kind: GateVerify, Dialect: dialect, Entry: entry},
				Seq:  seqOf(stagePost, i, sub),
			})
		}
		if out := dataflow.VerifyMethod(p.File, m, &base, env); out != nil {
			diag(subDataflowBase, "verify-reject", out, DialectInference)
			continue
		}
		for _, d := range dialects {
			pl := base
			d.set(&pl)
			if out := dataflow.VerifyMethod(p.File, m, &pl, env); out != nil {
				diag(d.sub, d.rule, out, d.dialect)
			}
		}
	}
}
