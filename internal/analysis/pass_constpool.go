package analysis

import (
	"fmt"
	"strings"

	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jvm"
)

// ConstPoolAnalyzer re-derives the constant-pool integrity rules of
// JVMS §4.4: cross-reference kinds, member-ref descriptor shapes,
// MethodHandle kinds, and array-class-name plausibility. Strict VMs
// (the HotSpot family) enforce these at load; lenient ones (J9, GIJ)
// only walk the structures.
var ConstPoolAnalyzer = &Analyzer{
	Name: "constpool",
	Doc:  "constant pool integrity: reference kinds, bounds, descriptor shapes (JVMS §4.4)",
	Run:  runConstPool,
}

func runConstPool(p *Pass) {
	cp := p.File.Pool
	for i := 1; i < cp.Count(); i++ {
		c := cp.Get(uint16(i))
		if c == nil {
			continue
		}
		switch c.Tag {
		case classfile.TagClass, classfile.TagString, classfile.TagMethodType:
			if t := cp.Get(c.Ref1); t == nil || t.Tag != classfile.TagUtf8 {
				p.report(Diagnostic{
					Rule: "ref-utf8", Severity: SevError,
					Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.4",
					Message: fmt.Sprintf("constant #%d (%s) references non-Utf8 #%d", i, c.Tag, c.Ref1),
					Gate:    Gate{Kind: GateStrictPool}, Seq: seqOf(stagePool, i, 0),
				})
			}
		case classfile.TagNameAndType:
			t1, t2 := cp.Get(c.Ref1), cp.Get(c.Ref2)
			if t1 == nil || t1.Tag != classfile.TagUtf8 || t2 == nil || t2.Tag != classfile.TagUtf8 {
				p.report(Diagnostic{
					Rule: "nat-refs", Severity: SevError,
					Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.4.6",
					Message: fmt.Sprintf("NameAndType #%d has dangling references", i),
					Gate:    Gate{Kind: GateStrictPool}, Seq: seqOf(stagePool, i, 0),
				})
			}
		case classfile.TagFieldref, classfile.TagMethodref, classfile.TagInterfaceMethodref:
			t1, t2 := cp.Get(c.Ref1), cp.Get(c.Ref2)
			if t1 == nil || t1.Tag != classfile.TagClass || t2 == nil || t2.Tag != classfile.TagNameAndType {
				p.report(Diagnostic{
					Rule: "member-refs", Severity: SevError,
					Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.4.2",
					Message: fmt.Sprintf("%s #%d has dangling references", c.Tag, i),
					Gate:    Gate{Kind: GateStrictPool}, Seq: seqOf(stagePool, i, 0),
				})
				continue // the loader rejects here before looking at the descriptor
			}
			_, desc, _ := cp.NameAndType(c.Ref2)
			if c.Tag == classfile.TagFieldref {
				if !descriptor.ValidField(desc) {
					p.report(Diagnostic{
						Rule: "fieldref-desc", Severity: SevError,
						Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.3.2",
						Message: fmt.Sprintf("Fieldref #%d has non-field descriptor %q", i, desc),
						Gate:    Gate{Kind: GateStrictPool}, Seq: seqOf(stagePool, i, 1),
					})
				}
			} else if !descriptor.ValidMethod(desc) {
				p.report(Diagnostic{
					Rule: "methodref-desc", Severity: SevError,
					Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.3.3",
					Message: fmt.Sprintf("%s #%d has non-method descriptor %q", c.Tag, i, desc),
					Gate:    Gate{Kind: GateStrictPool}, Seq: seqOf(stagePool, i, 1),
				})
			}
		case classfile.TagMethodHandle:
			if c.Kind < 1 || c.Kind > 9 {
				p.report(Diagnostic{
					Rule: "mh-kind", Severity: SevError,
					Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.4.8",
					Message: fmt.Sprintf("MethodHandle #%d has kind %d", i, c.Kind),
					Gate:    Gate{Kind: GateStrictPool}, Seq: seqOf(stagePool, i, 0),
				})
			}
		}
	}

	// Array-typed Class constants must spell a valid field descriptor
	// (the loader's second, name-validity sweep).
	for i := 1; i < cp.Count(); i++ {
		c := cp.Get(uint16(i))
		if c == nil || c.Tag != classfile.TagClass {
			continue
		}
		n, _ := cp.Utf8(c.Ref1)
		if strings.HasPrefix(n, "[") && !descriptor.ValidField(n) {
			p.report(Diagnostic{
				Rule: "class-array-name", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.4.1",
				Message: fmt.Sprintf("Class constant #%d has malformed array name %q", i, n),
				Gate:    Gate{Kind: GateStrictPoolNames}, Seq: seqOf(stagePoolNames, i, 0),
			})
		}
	}
}
