package analysis

import (
	"sync"

	"repro/internal/analysis/dataflow"
	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/jvm"
	"repro/internal/rtlib"
)

// Prediction is the static oracle's claim about one (classfile, VM)
// pair. When Definite is false the class reaches dynamic territory the
// oracle does not model (a non-trivial <clinit> or main body) and
// Outcome carries no claim.
type Prediction struct {
	Definite bool
	Outcome  jvm.Outcome
}

// envCache shares one runtime-library environment per release across
// oracle calls; environments are immutable after construction.
var envCache = struct {
	sync.Mutex
	m map[rtlib.Release]*rtlib.Env
}{m: make(map[rtlib.Release]*rtlib.Env)}

func envFor(r rtlib.Release) *rtlib.Env {
	envCache.Lock()
	defer envCache.Unlock()
	if e, ok := envCache.m[r]; ok {
		return e
	}
	e := rtlib.NewEnv(r)
	envCache.m[r] = e
	return e
}

// StaticVerdict predicts how the VM described by spec treats f,
// resolving platform references against spec's own library release.
func StaticVerdict(f *classfile.File, spec jvm.Spec) Prediction {
	return StaticVerdictEnv(f, spec, envFor(spec.Release))
}

// StaticVerdictEnv is StaticVerdict against an explicit environment
// (for shared-environment differential runs, Definition 2).
func StaticVerdictEnv(f *classfile.File, spec jvm.Spec, env *rtlib.Env) Prediction {
	p := &spec.Policy
	diags := Run(f, DefaultAnalyzers())

	// ---- loading: first enabled format diagnostic in loader order ----
	if d := firstLoadReject(diags, p); d != nil {
		return Prediction{Definite: true, Outcome: jvm.Outcome{
			Phase: jvm.PhaseLoading, Error: d.Err, Message: d.Message}}
	}

	// ---- linking ----
	if out, bad := linkVerdict(f, spec, env); bad {
		return Prediction{Definite: true, Outcome: out}
	}

	// ---- initialization ----
	pred, clinitOut, done := initVerdict(f, spec, env)
	if done {
		return pred
	}

	// ---- invocation ----
	return invokeVerdict(f, spec, env, clinitOut)
}

// VerifyReject returns the oracle's definite loading/linking rejection
// for f on spec, or nil when the class definitely survives both phases.
// It is the campaign verify band's predicate: the link mirror covers
// hierarchy well-formedness, throws clauses, eager resolution and
// §4.10 dataflow verification, inheriting the crosscheck harness's
// zero-waiver exactness. Callers must have cleared the loading-phase
// format checks first (LoadReject), matching StaticVerdict's order.
func VerifyReject(f *classfile.File, spec jvm.Spec, env *rtlib.Env) *jvm.Outcome {
	if out, bad := linkVerdict(f, spec, env); bad {
		return &out
	}
	return nil
}

// VerifyRejectMemo is VerifyReject with the §4.10 dataflow pass
// memoised per method in a jvm.VerifyMemo (nil memo falls back to the
// plain path). Every class-level mirror check still runs in full —
// only the per-method fixpoint, the dominant cost, is skipped on a hit.
// Verdicts are keyed under the dataflow oracle identity, disjoint from
// the runtime verifier's entries, so the static-vs-dynamic crosscheck
// keeps its differential power.
func VerifyRejectMemo(f *classfile.File, spec jvm.Spec, env *rtlib.Env, memo *jvm.VerifyMemo) *jvm.Outcome {
	if memo == nil {
		return VerifyReject(f, spec, env)
	}
	var ctx *jvm.VerifyKeyCtx
	id := jvm.VerifyIdent{Spec: spec, Env: env.Release, Oracle: jvm.OracleDataflow}
	verify := func(m *classfile.Member) *jvm.Outcome {
		if ctx == nil {
			ctx = jvm.NewVerifyKeyCtx(f, env)
		}
		key, ok := ctx.Key(m)
		if !ok {
			return dataflow.VerifyMethod(f, m, &spec.Policy, env)
		}
		if out, hit := memo.Lookup(id, key); hit {
			return out
		}
		out := dataflow.VerifyMethod(f, m, &spec.Policy, env)
		memo.Store(id, key, ctx.SelfName(), out)
		return out
	}
	if out, bad := linkVerdictVerify(f, spec, env, verify); bad {
		return &out
	}
	return nil
}

// firstLoadReject picks the first loading-phase error diagnostic that
// policy p enforces, in the loader's own check order.
func firstLoadReject(diags []Diagnostic, p *jvm.Policy) *Diagnostic {
	for i := range diags {
		d := &diags[i]
		if d.Severity == SevError && d.Phase == jvm.PhaseLoading && d.Gate.Enabled(p) {
			return d
		}
	}
	return nil
}

// linkVerdict mirrors the linking phase read-only: hierarchy
// well-formedness, throws clauses, optional eager resolution of every
// symbolic reference, and eager verification via the real verifier.
func linkVerdict(f *classfile.File, spec jvm.Spec, env *rtlib.Env) (jvm.Outcome, bool) {
	return linkVerdictVerify(f, spec, env, nil)
}

// linkVerdictVerify is linkVerdict with a pluggable per-method verify
// function for the eager-verification pass (nil means plain
// dataflow.VerifyMethod).
func linkVerdictVerify(f *classfile.File, spec jvm.Spec, env *rtlib.Env, verify func(*classfile.Member) *jvm.Outcome) (jvm.Outcome, bool) {
	p := &spec.Policy
	self := f.Name()
	rej := func(phase jvm.Phase, err string) (jvm.Outcome, bool) {
		return jvm.Outcome{Phase: phase, Error: err}, true
	}

	if super := f.SuperName(); super != "" {
		if super == self {
			return rej(jvm.PhaseLoading, jvm.ErrClassCircularity)
		}
		ci, ok := env.Lookup(super)
		if !ok {
			return rej(jvm.PhaseLoading, jvm.ErrNoClassDef)
		}
		if ci.Interface && !f.IsInterface() {
			return rej(jvm.PhaseLinking, jvm.ErrIncompatibleChange)
		}
		if p.CheckSuperNotFinal && ci.Final {
			return rej(jvm.PhaseLinking, jvm.ErrVerify)
		}
		if p.CheckResolvedAccess && !ci.Accessible {
			return rej(jvm.PhaseLinking, jvm.ErrIllegalAccess)
		}
	}

	for _, idx := range f.Interfaces {
		iname, _ := f.Pool.ClassName(idx)
		if iname == self {
			return rej(jvm.PhaseLoading, jvm.ErrClassCircularity)
		}
		ci, ok := env.Lookup(iname)
		if !ok {
			if p.EagerResolution {
				return rej(jvm.PhaseLoading, jvm.ErrNoClassDef)
			}
			continue
		}
		if p.EagerResolution && !ci.Interface {
			return rej(jvm.PhaseLinking, jvm.ErrIncompatibleChange)
		}
		if p.CheckResolvedAccess && !ci.Accessible {
			return rej(jvm.PhaseLinking, jvm.ErrIllegalAccess)
		}
	}

	if p.CheckThrowsClause {
		for _, m := range f.Methods {
			exAttr := m.Exceptions()
			if exAttr == nil {
				continue
			}
			for _, cidx := range exAttr.Classes {
				tname, ok := f.Pool.ClassName(cidx)
				if !ok {
					return rej(jvm.PhaseLinking, jvm.ErrClassFormat)
				}
				if tname == self {
					continue
				}
				ci, found := env.Lookup(tname)
				if !found {
					return rej(jvm.PhaseLinking, jvm.ErrNoClassDef)
				}
				if !ci.Accessible {
					return rej(jvm.PhaseLinking, jvm.ErrIllegalAccess)
				}
			}
		}
	}

	if p.EagerResolution {
		if out, bad := resolveRefsVerdict(f, p, env); bad {
			return out, true
		}
	}

	if p.EagerVerify {
		if verify == nil {
			verify = func(m *classfile.Member) *jvm.Outcome {
				return dataflow.VerifyMethod(f, m, &spec.Policy, env)
			}
		}
		for _, m := range f.Methods {
			if m.Code() == nil {
				continue
			}
			if out := verify(m); out != nil {
				return *out, true
			}
		}
	}
	return jvm.Outcome{}, false
}

// resolveRefsVerdict mirrors resolveAllRefs: every member reference in
// the pool must resolve against the class itself or the platform
// library.
func resolveRefsVerdict(f *classfile.File, p *jvm.Policy, env *rtlib.Env) (jvm.Outcome, bool) {
	rej := func(err string) (jvm.Outcome, bool) {
		return jvm.Outcome{Phase: jvm.PhaseLinking, Error: err}, true
	}
	for i := 1; i < f.Pool.Count(); i++ {
		c := f.Pool.Get(uint16(i))
		if c == nil {
			continue
		}
		var isField bool
		switch c.Tag {
		case classfile.TagFieldref:
			isField = true
		case classfile.TagMethodref, classfile.TagInterfaceMethodref:
			isField = false
		default:
			continue
		}
		cls, name, desc, ok := f.Pool.MemberRef(uint16(i))
		if !ok {
			return rej(jvm.ErrClassFormat)
		}
		if cls != f.Name() {
			ci, found := env.Lookup(cls)
			if !found {
				return rej(jvm.ErrNoClassDef)
			}
			if p.CheckResolvedAccess && !ci.Accessible {
				return rej(jvm.ErrIllegalAccess)
			}
		}
		if isField {
			if !staticFieldExists(f, env, cls, name, desc) {
				return rej(jvm.ErrNoSuchField)
			}
		} else if !staticMethodExists(f, env, cls, name, desc) {
			return rej(jvm.ErrNoSuchMethod)
		}
	}
	return jvm.Outcome{}, false
}

func staticFieldExists(f *classfile.File, env *rtlib.Env, cls, name, desc string) bool {
	if cls == f.Name() {
		for _, fl := range f.Fields {
			if fl.Name(f.Pool) == name && fl.Descriptor(f.Pool) == desc {
				return true
			}
		}
		cls = f.SuperName()
	}
	for cur := cls; cur != ""; {
		ci, ok := env.Lookup(cur)
		if !ok {
			return false
		}
		if ci.HasField(name, desc) {
			return true
		}
		cur = ci.Super
	}
	return false
}

func staticMethodExists(f *classfile.File, env *rtlib.Env, cls, name, desc string) bool {
	if cls == f.Name() {
		for _, m := range f.Methods {
			if m.Name(f.Pool) == name && m.Descriptor(f.Pool) == desc {
				return true
			}
		}
		cls = f.SuperName()
	}
	seen := map[string]bool{}
	var walk func(n string) bool
	walk = func(n string) bool {
		if n == "" || seen[n] {
			return false
		}
		seen[n] = true
		ci, ok := env.Lookup(n)
		if !ok {
			return false
		}
		if ci.HasMethod(name, desc) {
			return true
		}
		for _, i := range ci.Interfaces {
			if walk(i) {
				return true
			}
		}
		return walk(ci.Super)
	}
	return walk(cls)
}

// initVerdict mirrors the initialization phase. done is true when the
// prediction is final (a rejection, or an opaque initializer that
// blocks any further static claim); lines carries the output of a
// safe straight-line initializer.
func initVerdict(f *classfile.File, spec jvm.Spec, env *rtlib.Env) (pred Prediction, lines []string, done bool) {
	p := &spec.Policy
	if p.InitStrictAccess {
		for i := 1; i < f.Pool.Count(); i++ {
			c := f.Pool.Get(uint16(i))
			if c == nil || c.Tag != classfile.TagClass {
				continue
			}
			name, _ := f.Pool.Utf8(c.Ref1)
			if name == "" || name == f.Name() {
				continue
			}
			if ci, ok := env.Lookup(name); ok && !ci.Accessible {
				return Prediction{Definite: true, Outcome: jvm.Outcome{
					Phase: jvm.PhaseInit, Error: jvm.ErrIllegalAccess}}, nil, true
			}
		}
	}
	clinit := staticClassInitializer(f, p)
	if clinit == nil {
		return Prediction{}, nil, false
	}
	if !p.EagerVerify {
		if out := dataflow.VerifyMethod(f, clinit, &spec.Policy, env); out != nil {
			return Prediction{Definite: true, Outcome: jvm.Outcome{
				Phase: jvm.PhaseInit, Error: out.Error, Message: out.Message}}, nil, true
		}
	}
	out, ok := safeStraightLine(f, clinit)
	if !ok {
		// The initializer does real work; its success is a dynamic
		// question the oracle does not answer.
		return Prediction{}, nil, true
	}
	return Prediction{}, out, false
}

// staticClassInitializer mirrors the per-policy <clinit> selection.
func staticClassInitializer(f *classfile.File, p *jvm.Policy) *classfile.Member {
	for _, m := range f.Methods {
		if m.Name(f.Pool) != "<clinit>" {
			continue
		}
		switch p.ClinitRule {
		case jvm.ClinitOrdinaryIfNonStatic:
			if m.AccessFlags.Has(classfile.AccStatic) && m.Descriptor(f.Pool) == "()V" {
				return m
			}
		case jvm.ClinitAlwaysInitializer:
			return m
		case jvm.ClinitIgnored:
			if m.AccessFlags.Has(classfile.AccStatic) && m.Code() != nil {
				return m
			}
		}
	}
	return nil
}

// invokeVerdict mirrors the invocation phase: main lookup and shape
// checks are fully static; the body itself is only predicted when it
// matches the safe straight-line print idiom the generators emit.
func invokeVerdict(f *classfile.File, spec jvm.Spec, env *rtlib.Env, clinitOut []string) Prediction {
	p := &spec.Policy
	rej := func(err string) Prediction {
		return Prediction{Definite: true, Outcome: jvm.Outcome{Phase: jvm.PhaseRuntime, Error: err}}
	}
	if f.IsInterface() && !p.AllowInterfaceMain {
		return rej(jvm.ErrMainNotFound)
	}
	main := f.FindMethodExact("main", "([Ljava/lang/String;)V")
	if main == nil {
		return rej(jvm.ErrMainNotFound)
	}
	if p.RequireStaticMain {
		if !main.AccessFlags.Has(classfile.AccPublic) || !main.AccessFlags.Has(classfile.AccStatic) {
			return rej(jvm.ErrMainNotFound)
		}
	}
	if main.Code() == nil {
		if main.AccessFlags.Has(classfile.AccAbstract) {
			return rej(jvm.ErrAbstractMethod)
		}
		return rej(jvm.ErrUnsatisfiedLink)
	}
	if !p.EagerVerify {
		if out := dataflow.VerifyMethod(f, main, &spec.Policy, env); out != nil {
			return Prediction{Definite: true, Outcome: jvm.Outcome{
				Phase: jvm.PhaseRuntime, Error: out.Error, Message: out.Message}}
		}
	}
	if lines, ok := safeStraightLine(f, main); ok {
		return Prediction{Definite: true, Outcome: jvm.Outcome{
			Phase: jvm.PhaseInvoked, Output: append(append([]string{}, clinitOut...), lines...)}}
	}
	return Prediction{}
}

// safeStraightLine recognises the one executable idiom the oracle
// guarantees cannot throw after passing verification: zero or more
// `getstatic System.out / ldc "…" / invokevirtual println(String)V`
// groups followed by return, with no handlers. It returns the lines
// the method would print.
func safeStraightLine(f *classfile.File, m *classfile.Member) ([]string, bool) {
	code := m.Code()
	if code == nil || len(code.Handlers) != 0 {
		return nil, false
	}
	ins, err := bytecode.Decode(code.Code)
	if err != nil {
		return nil, false
	}
	out := []string{}
	for i := 0; i < len(ins); {
		switch ins[i].Op {
		case bytecode.Return:
			if i != len(ins)-1 {
				return nil, false
			}
			return out, true
		case bytecode.Getstatic:
			if i+2 >= len(ins) {
				return nil, false
			}
			cls, name, desc, ok := f.Pool.MemberRef(ins[i].CPIndex)
			if !ok || cls != "java/lang/System" || name != "out" || desc != "Ljava/io/PrintStream;" {
				return nil, false
			}
			ld := ins[i+1]
			if ld.Op != bytecode.Ldc && ld.Op != bytecode.LdcW {
				return nil, false
			}
			c := f.Pool.Get(ld.CPIndex)
			if c == nil || c.Tag != classfile.TagString {
				return nil, false
			}
			s, ok2 := f.Pool.Utf8(c.Ref1)
			if !ok2 {
				return nil, false
			}
			iv := ins[i+2]
			if iv.Op != bytecode.Invokevirtual {
				return nil, false
			}
			pcls, pname, pdesc, ok3 := f.Pool.MemberRef(iv.CPIndex)
			if !ok3 || pcls != "java/io/PrintStream" || pname != "println" || pdesc != "(Ljava/lang/String;)V" {
				return nil, false
			}
			out = append(out, s)
			i += 3
		default:
			return nil, false
		}
	}
	return nil, false
}
