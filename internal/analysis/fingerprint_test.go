package analysis_test

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/classfile"
)

// maskClass builds a small class that references its own name through
// several pool entries (ThisClass→Class→Utf8 plus a self-typed method
// descriptor is overkill here — the Class chain is what every mutant
// has), with one extra Utf8 payload the tests can vary.
func maskClass(name, payload string) []byte {
	f := classfile.New(name)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, payload, "()V")
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{
		MaxStack: 1, MaxLocals: 1, Code: []byte{0xb1}, // return
	})
	data, err := f.Bytes()
	if err != nil {
		panic(err)
	}
	return data
}

// TestVerifyFingerprintSelfNameCollision pins the mask's purpose: two
// classes identical up to the spelling of their own name — including
// names of different lengths, which shift every subsequent byte offset
// in the pool — must collide, so a lineage's renamed-per-iteration
// mutants share one verify-band key.
func TestVerifyFingerprintSelfNameCollision(t *testing.T) {
	a := analysis.VerifyFingerprint(maskClass("Alpha", "go"), "Alpha")
	b := analysis.VerifyFingerprint(maskClass("Mutant_00042", "go"), "Mutant_00042")
	if a != b {
		t.Fatalf("self-name-masked fingerprints diverged: %#x vs %#x", a, b)
	}
}

// TestVerifyFingerprintUtf8EditDiverges pins the mask's limit: editing
// any referenced Utf8 that is *not* the self-name — here a method name,
// same length so offsets do not move — must change the fingerprint,
// because the verifiers read that content.
func TestVerifyFingerprintUtf8EditDiverges(t *testing.T) {
	a := analysis.VerifyFingerprint(maskClass("Alpha", "go"), "Alpha")
	b := analysis.VerifyFingerprint(maskClass("Alpha", "gp"), "Alpha")
	if a == b {
		t.Fatalf("single Utf8 edit did not change the fingerprint: %#x", a)
	}
}

// TestVerifyFingerprintNestedSelfReference pins substring behaviour:
// strings that merely *contain* the self-name ("AA", "LA;" for a class
// named "A") are not the self-name and must be hashed verbatim, not
// masked.
func TestVerifyFingerprintNestedSelfReference(t *testing.T) {
	a := analysis.VerifyFingerprint(maskClass("A", "AA"), "A")
	b := analysis.VerifyFingerprint(maskClass("A", "AB"), "A")
	if a == b {
		t.Fatal("a string containing the self-name was masked with it")
	}
}

// fpSafeName matches class names the rename invariant below can reason
// about: plain ASCII identifiers whose loader-visible properties
// (validity bits, special-name table) are stable under same-length
// letter substitution.
var fpSafeName = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_]+$`)

// FuzzVerifyFingerprintMask checks the mask's defining invariant on
// arbitrary parseable classfiles: re-serialising a file under a fresh
// class name (same validity class, no aliasing with other pool
// strings) must not move its verify fingerprint, while the seeds also
// exercise pool strings that nest the self-name as a substring. The
// seed corpus covers the nested-self-reference shapes directly; `go
// test -fuzz` explores mutated bytes.
func FuzzVerifyFingerprintMask(f *testing.F) {
	f.Add(maskClass("A", "AA"))         // name nested in a longer string
	f.Add(maskClass("A", "go"))         // plain minimal class
	f.Add(maskClass("Outer", "Outer_")) // prefix-nested self-reference
	f.Add(maskClass("Mutant_1", "m"))   // lineage-style generated name

	f.Fuzz(func(t *testing.T, data []byte) {
		cf, err := classfile.Parse(data)
		if err != nil {
			return
		}
		cc := cf.Pool.Get(cf.ThisClass)
		if cc == nil || cc.Tag != classfile.TagClass {
			return
		}
		utf := cf.Pool.Get(cc.Ref1)
		if utf == nil || utf.Tag != classfile.TagUtf8 {
			return
		}
		oldName := utf.Str
		if !fpSafeName.MatchString(oldName) || oldName == "main" {
			return
		}
		// Same-length letter substitution keeps every property the
		// fingerprint prefix hashes (validity bits, special names).
		newName := "Zx" + oldName[2:]
		if newName == oldName {
			newName = "Qy" + oldName[2:]
		}
		// Renaming must not create or destroy aliasing with other pool
		// strings: skip files where either spelling appears elsewhere.
		for i := 1; i < cf.Pool.Count(); i++ {
			if c := cf.Pool.Get(uint16(i)); c != nil && c.Tag == classfile.TagUtf8 && c != utf {
				if c.Str == oldName || c.Str == newName {
					return
				}
			}
		}
		orig, err := cf.Bytes()
		if err != nil {
			return
		}
		utf.Str = newName
		renamed, err := cf.Bytes()
		utf.Str = oldName
		if err != nil {
			return
		}
		a := analysis.VerifyFingerprint(orig, oldName)
		b := analysis.VerifyFingerprint(renamed, newName)
		if a != b {
			t.Fatalf("rename %q→%q moved the verify fingerprint: %#x vs %#x",
				oldName, newName, a, b)
		}
		// And the mask must never erase a non-self edit: flipping the
		// spelling while keeping the old selfName argument makes the
		// entry an ordinary (hashed) string, so the keys must differ.
		if strings.Contains(newName, oldName) {
			return // nested spellings can re-collide legitimately
		}
		if analysis.VerifyFingerprint(renamed, oldName) == a {
			t.Fatalf("unmasked rename %q→%q kept the fingerprint", oldName, newName)
		}
	})
}
