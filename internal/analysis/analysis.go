// Package analysis is a pluggable static-analysis framework over
// parsed classfiles, modelled on go/analysis: each Analyzer runs
// against a shared Pass context (the constant pool, resolved
// descriptors, lazily built per-method control-flow graphs) and
// reports typed Diagnostics. A Diagnostic carries a JVMS §4 citation,
// the earliest startup phase at which a conforming VM may reject the
// construct, the error class such a rejection uses, and a Gate mapping
// the diagnostic onto the jvm.Policy knob that makes a particular VM
// enforce it. Folding gated diagnostics through a preset's policy
// yields the static accept/reject oracle in verdict.go; the raw
// diagnostic stream drives cmd/classlint.
//
// The load-phase passes deliberately re-derive the format rules from
// JVMS §4 instead of calling into internal/jvm's loader, so that
// crosscheck.go can use them as an independent check on the loader
// itself.
package analysis

import (
	"fmt"
	"slices"

	"repro/internal/classfile"
	"repro/internal/jvm"
)

// Severity grades a diagnostic.
type Severity int

// Severities.
const (
	// SevWarn marks advisory lint findings no simulated VM rejects
	// (unreachable code, StackMapTable inconsistencies under inference
	// verification).
	SevWarn Severity = iota
	// SevError marks constructs at least one conforming VM may reject.
	SevError
)

// String names the severity.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the pass that produced the finding.
	Analyzer string
	// Rule is the stable identifier of the violated rule within the pass.
	Rule string
	// Severity grades the finding.
	Severity Severity
	// Phase is the earliest startup phase at which a conforming VM may
	// reject the construct.
	Phase jvm.Phase
	// Err is the error class such a rejection uses (a jvm.Err* value).
	Err string
	// JVMS cites the specification section the rule derives from.
	JVMS string
	// Message is the human-readable description.
	Message string
	// Method contextualises method-level findings as "name+descriptor";
	// empty for class-level findings.
	Method string
	// Gate maps the diagnostic onto the policy knob enforcing it.
	Gate Gate
	// Seq orders diagnostics exactly as internal/jvm's loader would
	// encounter them, so the oracle can predict which rejection fires
	// first when several rules are violated.
	Seq int
}

// String renders the diagnostic for classlint output.
func (d Diagnostic) String() string {
	loc := ""
	if d.Method != "" {
		loc = " [" + d.Method + "]"
	}
	errPart := ""
	if d.Err != "" {
		errPart = ", " + d.Err
	}
	return fmt.Sprintf("%s: %s/%s (JVMS %s, %s phase%s)%s: %s",
		d.Severity, d.Analyzer, d.Rule, d.JVMS, d.Phase, errPart, loc, d.Message)
}

// Loader-order stages used to build Diagnostic.Seq. The values mirror
// the check sequence of internal/jvm's load phase.
const (
	stageVersion = iota
	stagePool
	stagePoolNames
	stageThisClass
	stageSuper
	stageInterfaces
	stageClassFlags
	stageIfaceSuper
	stageFields
	stageMethods
	// stagePost orders diagnostics the loader never reaches (method
	// bodies, stack maps) after every format check.
	stagePost
)

// seqOf packs (stage, member index, sub-check) into a sortable ordinal.
func seqOf(stage, index, sub int) int {
	return stage<<24 | index<<8 | sub
}

// Analyzer is one pluggable pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics.
	Name string
	// Doc is a one-line description for classlint -list.
	Doc string
	// Run executes the pass against the shared context.
	Run func(*Pass)
}

// Pass is the shared per-file context handed to every analyzer.
type Pass struct {
	// File is the classfile under analysis.
	File *classfile.File

	analyzer *Analyzer
	diags    []Diagnostic
	cfgs     map[*classfile.Member]*cfgEntry
}

type cfgEntry struct {
	cfg *CFG
	err error
}

// CFG returns the lazily-built control-flow graph of m's Code
// attribute, shared across passes. The error reports undecodable
// bytecode; methods without Code return (nil, nil).
func (p *Pass) CFG(m *classfile.Member) (*CFG, error) {
	if e, ok := p.cfgs[m]; ok {
		return e.cfg, e.err
	}
	var e cfgEntry
	if code := m.Code(); code != nil {
		e.cfg, e.err = NewCFG(code)
	}
	p.cfgs[m] = &e
	return e.cfg, e.err
}

// MethodLabel renders the "name+descriptor" context of a member.
func (p *Pass) MethodLabel(m *classfile.Member) string {
	return m.Name(p.File.Pool) + m.Descriptor(p.File.Pool)
}

// report appends a diagnostic, stamping the running analyzer.
func (p *Pass) report(d Diagnostic) {
	d.Analyzer = p.analyzer.Name
	p.diags = append(p.diags, d)
}

// Run executes the analyzers against one classfile and returns the
// diagnostics in loader order.
func Run(f *classfile.File, analyzers []*Analyzer) []Diagnostic {
	p := &Pass{File: f, cfgs: make(map[*classfile.Member]*cfgEntry)}
	for _, a := range analyzers {
		p.analyzer = a
		a.Run(p)
	}
	slices.SortStableFunc(p.diags, func(a, b Diagnostic) int { return a.Seq - b.Seq })
	return p.diags
}

// DefaultAnalyzers returns the standard six passes in execution order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{ConstPoolAnalyzer, MembersAnalyzer, StructureAnalyzer,
		CodeAnalyzer, DeadCodeAnalyzer, StackMapAnalyzer}
}

// Lint is the convenience entry point: run the default passes over
// parsed classfile bytes.
func Lint(data []byte) ([]Diagnostic, error) {
	f, err := classfile.Parse(data)
	if err != nil {
		return nil, err
	}
	return Run(f, DefaultAnalyzers()), nil
}
