package analysis

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jvm"
)

// Per-method sub-check ordinals within stagePost, spread so the three
// code-level passes interleave deterministically per method.
const (
	subCodeEmpty = iota
	subCodeDesc
	subCodeDecode
	subCodeBranchTarget
	subCodeJsrRet
	subCodeHandlerRange
	subCodeHandlerCatch
	subCodeLocals
	subCodeFallsOff  = 16
	subCodeDead      = 17
	subCodeStackMap0 = 24 // stackmap sub-checks occupy 24..
)

// CodeAnalyzer mirrors the structural pre-dataflow checks of the
// bytecode verifier (JVMS §4.8, §4.9): empty code arrays, undecodable
// bytecode, branch targets on instruction boundaries, jsr/ret in
// modern classfiles, exception-handler ranges, and max_locals
// accounting for the parameters. Findings are pinned to the linking
// phase — the earliest point a conforming VM may reject — but lazily
// verifying VMs only reach them when the method is actually verified,
// which the verdict logic accounts for.
var CodeAnalyzer = &Analyzer{
	Name: "code",
	Doc:  "bytecode decodability, branch targets, handler ranges, jsr/ret (JVMS §4.8, §4.9)",
	Run:  runCode,
}

func runCode(p *Pass) {
	for i, m := range p.File.Methods {
		codeMethod(p, i, m)
	}
}

func codeMethod(p *Pass, i int, m *classfile.Member) {
	code := m.Code()
	if code == nil {
		return
	}
	label := p.MethodLabel(m)
	mname := m.Name(p.File.Pool)
	mdesc := m.Descriptor(p.File.Pool)
	diag := func(sub int, rule, errName, jvms, format string, args ...any) {
		p.report(Diagnostic{
			Rule: rule, Severity: SevError,
			Phase: jvm.PhaseLinking, Err: errName, JVMS: jvms,
			Message: fmt.Sprintf(format, args...), Method: label,
			Gate: Gate{Kind: GateAlways}, Seq: seqOf(stagePost, i, sub),
		})
	}

	if len(code.Code) == 0 {
		diag(subCodeEmpty, "empty-code", jvm.ErrClassFormat, "§4.7.3",
			"method %s has an empty code array", mname)
		return
	}
	md, derr := descriptor.ParseMethod(mdesc)
	if derr != nil {
		// The verifier re-rejects malformed descriptors unconditionally,
		// so even name-lenient VMs fail here once the method is verified.
		diag(subCodeDesc, "desc-unparseable", jvm.ErrClassFormat, "§4.3.3",
			"method %s has malformed descriptor", mname)
	}
	cfg, err := p.CFG(m)
	if err != nil {
		diag(subCodeDecode, "undecodable", jvm.ErrVerify, "§4.8",
			"method %s: %v", mname, err)
		return
	}
	for _, bt := range cfg.BadTargets {
		diag(subCodeBranchTarget, "bad-branch-target", jvm.ErrVerify, "§4.8",
			"method %s: branch into the middle of an instruction (pc %d)", mname, bt.Target)
	}
	for _, in := range cfg.Ins {
		if in.Op == bytecode.Jsr || in.Op == bytecode.JsrW || in.Op == bytecode.Ret ||
			(in.Op == bytecode.Wide && in.WideOp == bytecode.Ret) {
			p.report(Diagnostic{
				Rule: "jsr-ret", Severity: SevError,
				Phase: jvm.PhaseLinking, Err: jvm.ErrVerify, JVMS: "§4.9.1",
				Message: fmt.Sprintf("method %s uses jsr/ret in a version %d classfile", mname, p.File.Major),
				Method:  label,
				Gate:    Gate{Kind: GateJsrRet, Major: p.File.Major}, Seq: seqOf(stagePost, i, subCodeJsrRet),
			})
			break
		}
	}
	for _, h := range code.Handlers {
		_, okS := cfg.PCIndex[int(h.StartPC)]
		_, okH := cfg.PCIndex[int(h.HandlerPC)]
		_, okE := cfg.PCIndex[int(h.EndPC)]
		endOK := int(h.EndPC) == len(code.Code) || okE
		if !okS || !okH || !endOK || h.StartPC >= h.EndPC {
			diag(subCodeHandlerRange, "handler-range", jvm.ErrClassFormat, "§4.7.3",
				"method %s has an invalid exception handler range", mname)
		}
		if h.CatchType != 0 {
			if _, ok := p.File.Pool.ClassName(h.CatchType); !ok {
				diag(subCodeHandlerCatch, "handler-catch-type", jvm.ErrClassFormat, "§4.7.3",
					"method %s catch type #%d is not a class", mname, h.CatchType)
			}
		}
	}
	if derr == nil {
		slots := 0
		if !m.AccessFlags.Has(classfile.AccStatic) {
			slots++
		}
		for _, pt := range md.Params {
			slots += pt.Slots()
		}
		if slots > int(code.MaxLocals) {
			diag(subCodeLocals, "locals-overflow", jvm.ErrVerify, "§4.7.3",
				"max_locals %d too small for parameters of %s%s", code.MaxLocals, mname, mdesc)
		}
	}
}
