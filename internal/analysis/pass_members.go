package analysis

import (
	"fmt"

	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jvm"
)

// MembersAnalyzer re-derives the per-class and per-member format rules
// the loader applies in sequence: the version gate, this_class/super
// naming, class access flags, and field/method descriptor and flag
// consistency including the <clinit>/<init> special rules (JVMS §4.1,
// §4.5, §4.6, §2.9).
var MembersAnalyzer = &Analyzer{
	Name: "members",
	Doc:  "class/field/method descriptor and access-flag consistency (JVMS §4.1, §4.5, §4.6)",
	Run:  runMembers,
}

func runMembers(p *Pass) {
	f := p.File
	cp := f.Pool

	// Version gates: the structural fact is just the major version; the
	// gate decides per-policy whether it lies outside the accepted band.
	p.report(Diagnostic{
		Rule: "version-min", Severity: SevError,
		Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.1",
		Message: fmt.Sprintf("major version %d below an implementation's minimum", f.Major),
		Gate:    Gate{Kind: GateVersionMin, Major: f.Major}, Seq: seqOf(stageVersion, 0, 0),
	})
	p.report(Diagnostic{
		Rule: "version-max", Severity: SevError,
		Phase: jvm.PhaseLoading, Err: jvm.ErrUnsupportedVersion, JVMS: "§4.1",
		Message: fmt.Sprintf("major version %d above an implementation's maximum", f.Major),
		Gate:    Gate{Kind: GateVersionMax, Major: f.Major}, Seq: seqOf(stageVersion, 0, 1),
	})

	name, ok := cp.ClassName(f.ThisClass)
	if !ok {
		p.report(Diagnostic{
			Rule: "this-class-index", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.1",
			Message: fmt.Sprintf("bad this_class index %d", f.ThisClass),
			Gate:    Gate{Kind: GateAlways}, Seq: seqOf(stageThisClass, 0, 0),
		})
	} else if !descriptor.ValidClassName(name) {
		p.report(Diagnostic{
			Rule: "this-class-name", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.2.1",
			Message: fmt.Sprintf("illegal class name %q", name),
			Gate:    Gate{Kind: GateNameValidity}, Seq: seqOf(stageThisClass, 0, 1),
		})
	}

	if f.SuperClass == 0 {
		if name != "java/lang/Object" {
			p.report(Diagnostic{
				Rule: "missing-super", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.1",
				Message: fmt.Sprintf("class %s has no superclass", name),
				Gate:    Gate{Kind: GateAlways}, Seq: seqOf(stageSuper, 0, 0),
			})
		}
	} else if _, ok := cp.ClassName(f.SuperClass); !ok {
		p.report(Diagnostic{
			Rule: "super-index", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.1",
			Message: fmt.Sprintf("bad super_class index %d", f.SuperClass),
			Gate:    Gate{Kind: GateAlways}, Seq: seqOf(stageSuper, 0, 1),
		})
	}

	for j, idx := range f.Interfaces {
		if _, ok := cp.ClassName(idx); !ok {
			p.report(Diagnostic{
				Rule: "interface-index", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.1",
				Message: fmt.Sprintf("bad interface index %d", idx),
				Gate:    Gate{Kind: GateAlways}, Seq: seqOf(stageInterfaces, j, 0),
			})
		}
	}

	classFlags(p, name)

	for i, fl := range f.Fields {
		fieldShape(p, i, fl)
	}
	for i, m := range f.Methods {
		methodShape(p, i, m)
	}
}

// classFlags mirrors the CheckClassFlags block (JVMS §4.1 Table 4.1-B).
func classFlags(p *Pass, name string) {
	flags := p.File.AccessFlags
	g := Gate{Kind: GateClassFlags}
	if flags.Has(classfile.AccFinal | classfile.AccAbstract) {
		p.report(Diagnostic{
			Rule: "class-final-abstract", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.1",
			Message: fmt.Sprintf("class %s is both final and abstract", name),
			Gate:    g, Seq: seqOf(stageClassFlags, 0, 0),
		})
	}
	if flags.Has(classfile.AccInterface) {
		if !flags.Has(classfile.AccAbstract) {
			p.report(Diagnostic{
				Rule: "interface-not-abstract", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.1",
				Message: fmt.Sprintf("interface %s missing ACC_ABSTRACT", name),
				Gate:    g, Seq: seqOf(stageClassFlags, 0, 1),
			})
		}
		if flags.Has(classfile.AccFinal) {
			p.report(Diagnostic{
				Rule: "interface-final", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.1",
				Message: fmt.Sprintf("interface %s is final", name),
				Gate:    g, Seq: seqOf(stageClassFlags, 0, 2),
			})
		}
	}
	if flags.Has(classfile.AccAnnotation) && !flags.Has(classfile.AccInterface) {
		p.report(Diagnostic{
			Rule: "annotation-not-interface", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.1",
			Message: fmt.Sprintf("annotation %s is not an interface", name),
			Gate:    g, Seq: seqOf(stageClassFlags, 0, 3),
		})
	}
}

// Per-member sub-check ordinals within stageFields/stageMethods, fixed
// to match the loader's per-member check order. Duplicate and
// interface-rule sub-checks (2, 5, 6) are reported by the structure
// pass into the same sequence space.
const (
	subMemberCPValid       = 0
	subMemberDesc          = 1
	subMemberDup           = 2
	subFieldVis            = 3
	subFieldFinalVolatile  = 4
	subFieldIfaceRules     = 5
	subMethodClinitCode    = 3
	subMethodVis           = 4
	subMethodAbstractCombo = 5
	subMethodIfaceRules    = 6
	subInitFlags           = 7
	subInitReturns         = 8
	subInitOnInterface     = 9
	subMethodCodeAbsent    = 10
	subMethodCodePresent   = 11
)

func fieldShape(p *Pass, i int, fl *classfile.Member) {
	cp := p.File.Pool
	fname := fl.Name(cp)
	fdesc := fl.Descriptor(cp)
	if fname == "" || fdesc == "" {
		p.report(Diagnostic{
			Rule: "field-dangling", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.5",
			Message: "field with dangling name/descriptor index",
			Gate:    Gate{Kind: GateAlways}, Seq: seqOf(stageFields, i, subMemberCPValid),
		})
		return
	}
	if !descriptor.ValidField(fdesc) {
		p.report(Diagnostic{
			Rule: "field-descriptor", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.3.2",
			Message: fmt.Sprintf("field %s has malformed descriptor %q", fname, fdesc),
			Method:  fname,
			Gate:    Gate{Kind: GateNameValidity}, Seq: seqOf(stageFields, i, subMemberDesc),
		})
	}
	if fl.AccessFlags.VisibilityCount() > 1 {
		p.report(Diagnostic{
			Rule: "field-visibility", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.5",
			Message: fmt.Sprintf("field %s has conflicting visibility flags", fname),
			Method:  fname,
			Gate:    Gate{Kind: GateMemberFlags}, Seq: seqOf(stageFields, i, subFieldVis),
		})
	}
	if fl.AccessFlags.Has(classfile.AccFinal | classfile.AccVolatile) {
		p.report(Diagnostic{
			Rule: "field-final-volatile", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.5",
			Message: fmt.Sprintf("field %s is both final and volatile", fname),
			Method:  fname,
			Gate:    Gate{Kind: GateMemberFlags}, Seq: seqOf(stageFields, i, subFieldFinalVolatile),
		})
	}
}

func methodShape(p *Pass, i int, m *classfile.Member) {
	f := p.File
	cp := f.Pool
	mname := m.Name(cp)
	mdesc := m.Descriptor(cp)
	flags := m.AccessFlags
	hasCode := m.Code() != nil
	label := mname + mdesc

	if mname == "" || mdesc == "" {
		p.report(Diagnostic{
			Rule: "method-dangling", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.6",
			Message: "method with dangling name/descriptor index",
			Gate:    Gate{Kind: GateAlways}, Seq: seqOf(stageMethods, i, subMemberCPValid),
		})
		return
	}
	if !descriptor.ValidMethod(mdesc) {
		p.report(Diagnostic{
			Rule: "method-descriptor", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.3.3",
			Message: fmt.Sprintf("method %s has malformed descriptor %q", mname, mdesc),
			Method:  label,
			Gate:    Gate{Kind: GateNameValidity}, Seq: seqOf(stageMethods, i, subMemberDesc),
		})
	}

	// <clinit> classification (Problem 1): when the policy classifies
	// this method as the class initializer, it must carry Code and is
	// exempt from the ordinary-method rules below; both sides of that
	// fork are expressed through the Gate so the verdict stays
	// per-policy while the diagnostics are policy-free.
	isClinit := mname == "<clinit>"
	staticV := flags.Has(classfile.AccStatic) && mdesc == "()V"
	ordinary := func(kind GateKind) Gate {
		g := Gate{Kind: kind}
		if isClinit {
			g.Clinit = ClinitAsOrdinary
			g.StaticV = staticV
		}
		return g
	}
	if isClinit && !hasCode {
		p.report(Diagnostic{
			Rule: "clinit-no-code", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§2.9",
			Message: fmt.Sprintf("no Code attribute specified; method=<clinit>%s, pc=0", mdesc),
			Method:  label,
			Gate:    Gate{Kind: GateClinitInitializerCode, StaticV: staticV},
			Seq:     seqOf(stageMethods, i, subMethodClinitCode),
		})
	}

	if flags.VisibilityCount() > 1 {
		p.report(Diagnostic{
			Rule: "method-visibility", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.6",
			Message: fmt.Sprintf("method %s has conflicting visibility flags", mname),
			Method:  label,
			Gate:    ordinary(GateMemberFlags), Seq: seqOf(stageMethods, i, subMethodVis),
		})
	}
	abstractCombo := flags.Has(classfile.AccAbstract) &&
		(flags.Has(classfile.AccFinal) || flags.Has(classfile.AccStatic) ||
			flags.Has(classfile.AccNative) || flags.Has(classfile.AccPrivate) ||
			flags.Has(classfile.AccSynchronized) || flags.Has(classfile.AccStrict))
	if abstractCombo {
		p.report(Diagnostic{
			Rule: "abstract-flags", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.6",
			Message: fmt.Sprintf("abstract method %s has conflicting flags", mname),
			Method:  label,
			Gate:    ordinary(GateMemberFlags), Seq: seqOf(stageMethods, i, subMethodAbstractCombo),
		})
	}

	// <init> rules (Problem 4: GIJ accepts abstract/static/returning <init>).
	if mname == "<init>" {
		banned := classfile.AccStatic | classfile.AccFinal | classfile.AccSynchronized |
			classfile.AccNative | classfile.AccAbstract
		if flags&banned != 0 {
			p.report(Diagnostic{
				Rule: "init-flags", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§2.9",
				Message: fmt.Sprintf("<init> has illegal flags %s", flags.MethodFlagString()),
				Method:  label,
				Gate:    Gate{Kind: GateInitSignature}, Seq: seqOf(stageMethods, i, subInitFlags),
			})
		}
		if md, err := descriptor.ParseMethod(mdesc); err == nil && !md.Return.IsVoid() {
			p.report(Diagnostic{
				Rule: "init-returns", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.3.3",
				Message: fmt.Sprintf("<init> must return void, not %s", md.Return.Java()),
				Method:  label,
				Gate:    Gate{Kind: GateInitSignature}, Seq: seqOf(stageMethods, i, subInitReturns),
			})
		}
		if f.IsInterface() {
			p.report(Diagnostic{
				Rule: "init-on-interface", Severity: SevError,
				Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§2.9",
				Message: "interface declares <init>",
				Method:  label,
				Gate:    Gate{Kind: GateInitSignature}, Seq: seqOf(stageMethods, i, subInitOnInterface),
			})
		}
	}

	abstractOrNative := flags.Has(classfile.AccAbstract) || flags.Has(classfile.AccNative)
	if !abstractOrNative && !hasCode {
		p.report(Diagnostic{
			Rule: "missing-code", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.7.3",
			Message: fmt.Sprintf("concrete method %s%s lacks a Code attribute", mname, mdesc),
			Method:  label,
			Gate:    ordinary(GateCodePresence), Seq: seqOf(stageMethods, i, subMethodCodeAbsent),
		})
	}
	if abstractOrNative && hasCode {
		p.report(Diagnostic{
			Rule: "unexpected-code", Severity: SevError,
			Phase: jvm.PhaseLoading, Err: jvm.ErrClassFormat, JVMS: "§4.7.3",
			Message: fmt.Sprintf("abstract/native method %s%s has a Code attribute", mname, mdesc),
			Method:  label,
			Gate:    ordinary(GateCodePresence), Seq: seqOf(stageMethods, i, subMethodCodePresent),
		})
	}
}
