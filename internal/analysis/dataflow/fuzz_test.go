package dataflow_test

import (
	"testing"

	"repro/internal/analysis/dataflow"
	"repro/internal/classfile"
	"repro/internal/jvm"
	"repro/internal/rtlib"
	"repro/internal/seedgen"
)

// FuzzVerifyDifferential is the native fuzz target of the dataflow
// oracle: it mutates seed-corpus class bytes and differentially checks
// the independent dataflow verdict against the VM-side verifier's
// verify-phase outcome for every preset. The static verdict is
// *definite*, so any disagreement — verdict polarity, error class,
// phase or message — fails. Under plain `go test` the seed corpus
// alone runs, which already covers the generator's full structural
// variety; `go test -fuzz=FuzzVerifyDifferential` explores mutated
// bytes.
func FuzzVerifyDifferential(f *testing.F) {
	seeds, err := seedgen.GenerateFiles(seedgen.DefaultOptions(25, 20160613))
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range seeds {
		f.Add(s)
	}

	specs := jvm.StandardFive()
	envs := make([]*rtlib.Env, len(specs))
	for i, spec := range specs {
		envs[i] = rtlib.NewEnv(spec.Release)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		cf, err := classfile.Parse(data)
		if err != nil {
			return // not a parseable classfile; verification never runs
		}
		for i, spec := range specs {
			for _, m := range cf.Methods {
				if m.Code() == nil {
					continue
				}
				got := dataflow.VerifyMethod(cf, m, &spec.Policy, envs[i])
				want := jvm.VerifyMethodStatic(spec, envs[i], cf, m)
				if (got == nil) != (want == nil) {
					t.Fatalf("%s %s%s: dataflow says %v, VM verifier says %v",
						spec.Name, m.Name(cf.Pool), m.Descriptor(cf.Pool), got, want)
				}
				if got != nil && (got.Error != want.Error || got.Phase != want.Phase || got.Message != want.Message) {
					t.Fatalf("%s %s%s: dataflow says %v, VM verifier says %v",
						spec.Name, m.Name(cf.Pool), m.Descriptor(cf.Pool), got, want)
				}
			}
		}
	})
}
