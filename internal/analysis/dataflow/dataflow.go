// Package dataflow implements the JVMS §4.10 type-state verifier as a
// standalone abstract interpretation, the static counterpart of the
// simulators' runtime verifier. It runs a fixpoint dataflow over the
// decoded instruction stream: abstract operand stacks and local
// variable arrays over a small value lattice (int/long/float/double,
// reference-with-class, uninitializedThis, uninitialized(pc),
// returnAddress, conflict/top), per-instruction transfer functions for
// the full decoded instruction set, joins at merge points using the
// rtlib.Env class hierarchy, and exception-handler edges.
//
// The verdict is *definite*: for a given jvm.Policy and environment the
// analysis returns exactly the linking-phase outcome the simulated
// verifier would produce — nil when the method verifies, the rejection
// otherwise. The per-VM verifier dialects (GIJ's uninitialized-merge
// and declared-assignability checks, J9's strict stack shapes,
// HotSpot's jsr/ret ban and type-checking StackMapTable validation) are
// driven by the same Policy knobs the simulators use, so the analysis
// can stand in for any of the five presets. internal/analysis's
// StaticVerdict and campaign's StaticPrefilter build on this to predict
// VerifyError without executing a VM, and the crosscheck harness holds
// the package to a zero-waiver agreement bar against all five presets.
package dataflow

import (
	"fmt"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/descriptor"
	"repro/internal/jvm"
	"repro/internal/rtlib"
)

// slotKind enumerates the abstract value lattice. The byte values match
// descriptor base-type characters where one exists so diagnostics read
// naturally.
type slotKind byte

const (
	kUndef    slotKind = 0   // unset local slot
	kInt      slotKind = 'I' // int family (boolean/byte/char/short/int)
	kFloat    slotKind = 'F'
	kLong     slotKind = 'J' // first slot
	kDouble   slotKind = 'D' // first slot
	kWide2    slotKind = '2' // second slot of long/double
	kRef      slotKind = 'A' // reference; cls names the class if known
	kNull     slotKind = 'N' // null constant
	kUninit   slotKind = 'U' // uninitialized object from `new` at pc
	kRetAddr  slotKind = 'R' // jsr return address
	kConflict slotKind = 'X' // merge conflict; unusable (lattice top)
)

// slot is one abstract stack or local value.
type slot struct {
	kind slotKind
	cls  string // internal class name for kRef/kUninit when known
	pc   int    // allocation site for kUninit (-1 = uninitializedThis)
}

func (v slot) isWideFirst() bool { return v.kind == kLong || v.kind == kDouble }

func (v slot) isRefLike() bool {
	return v.kind == kRef || v.kind == kNull || v.kind == kUninit
}

func (v slot) slots() int {
	if v.isWideFirst() {
		return 2
	}
	return 1
}

func (v slot) String() string {
	switch v.kind {
	case kUndef:
		return "_"
	case kRef:
		if v.cls == "" {
			return "ref"
		}
		return "ref(" + v.cls + ")"
	case kNull:
		return "null"
	case kUninit:
		if v.pc < 0 {
			return "uninitThis"
		}
		return fmt.Sprintf("uninit(%s@%d)", v.cls, v.pc)
	case kConflict:
		return "top"
	default:
		return string(rune(v.kind))
	}
}

func refOf(cls string) slot { return slot{kind: kRef, cls: cls} }

// slotOfDesc maps a descriptor type to its abstract value. Plain class
// references carry their internal name; arrays keep the bracketed
// descriptor form (matching anewarray/newarray results).
func slotOfDesc(t descriptor.Type) slot {
	if t.IsReference() {
		if t.Dims == 0 && t.Kind == 'L' {
			return refOf(t.ClassName)
		}
		return refOf(t.String())
	}
	switch t.Kind {
	case 'J':
		return slot{kind: kLong}
	case 'D':
		return slot{kind: kDouble}
	case 'F':
		return slot{kind: kFloat}
	default:
		return slot{kind: kInt}
	}
}

// state is one abstract machine state: operand stack plus locals.
type state struct {
	stack  []slot
	locals []slot
}

// statePool recycles states across VerifyMethod calls (there is no
// long-lived checker object to hang a free list on — VerifyMethod is a
// stateless package API — so a sync.Pool carries the slice capacity
// between runs instead). States go back to the pool at the end of each
// run; nothing a run returns retains one.
var statePool = sync.Pool{New: func() any { return &state{} }}

func getState() *state  { return statePool.Get().(*state) }
func putState(f *state) { statePool.Put(f) }

// copyFrom overwrites f with src's state, reusing f's slice capacity.
func (f *state) copyFrom(src *state) *state {
	f.stack = append(f.stack[:0], src.stack...)
	f.locals = append(f.locals[:0], src.locals...)
	return f
}

// checker runs the dataflow analysis over a single method body.
type checker struct {
	f    *classfile.File
	m    *classfile.Member
	p    *jvm.Policy
	env  *rtlib.Env
	name string // class under test's internal name
	code *classfile.CodeAttr
	ins  []*bytecode.Instruction
	// pcIndex maps a byte PC to the instruction index; targets caches
	// Targets() per instruction.
	pcIndex map[int]int
	targets [][]int
	// in holds the merged entry state per instruction index.
	in   []*state
	work []int
	md   descriptor.Method
	// errName/errMsg carry the first verification failure raised during
	// the fixpoint (the analysis is first-error, like the simulators).
	errName string
	errMsg  string
	// scratch is the working state step simulates into, reused across
	// worklist iterations so per-step copies do not allocate.
	scratch state
}

// VerifyMethod runs the dataflow verification of one method of f under
// policy p and environment env. The result is nil when the method
// verifies, or the linking-phase rejection the simulated VM's verifier
// would produce (lazy-verification callers re-phase it). The outcome —
// including the error class and the check ordering that picks which of
// several defects is reported — must match internal/jvm's runtime
// verifier exactly; the crosscheck and fuzz harnesses enforce that.
func VerifyMethod(f *classfile.File, m *classfile.Member, p *jvm.Policy, env *rtlib.Env) *jvm.Outcome {
	c := &checker{f: f, m: m, p: p, env: env, name: f.Name(), code: m.Code()}
	return c.run()
}

// VerifyClass verifies every method of f that has a Code attribute, in
// declaration order, mirroring an eager-verification link phase. It
// returns the first rejection, or nil when the class verifies.
func VerifyClass(f *classfile.File, p *jvm.Policy, env *rtlib.Env) *jvm.Outcome {
	for _, m := range f.Methods {
		if m.Code() == nil {
			continue
		}
		if out := VerifyMethod(f, m, p, env); out != nil {
			return out
		}
	}
	return nil
}

func (c *checker) fail(errName, format string, args ...any) {
	if c.errName == "" {
		c.errName = errName
		c.errMsg = fmt.Sprintf(format, args...)
	}
}

func (c *checker) failed() bool { return c.errName != "" }

func (c *checker) outcome(errName, format string, args ...any) *jvm.Outcome {
	return &jvm.Outcome{Phase: jvm.PhaseLinking, Error: errName,
		Message: fmt.Sprintf(format, args...)}
}

func (c *checker) run() *jvm.Outcome {
	mname := c.m.Name(c.f.Pool)
	mdesc := c.m.Descriptor(c.f.Pool)

	if len(c.code.Code) == 0 {
		return c.outcome(jvm.ErrClassFormat, "method %s has an empty code array", mname)
	}

	md, err := descriptor.ParseMethod(mdesc)
	if err != nil {
		return c.outcome(jvm.ErrClassFormat, "method %s has malformed descriptor", mname)
	}
	c.md = md

	ins, err := bytecode.Decode(c.code.Code)
	if err != nil {
		return c.outcome(jvm.ErrVerify, "method %s: %v", mname, err)
	}
	c.ins = ins
	c.pcIndex = make(map[int]int, len(ins))
	for i, in := range ins {
		c.pcIndex[in.PC] = i
	}
	c.targets = make([][]int, len(ins))
	for i, in := range ins {
		c.targets[i] = in.Targets()
	}

	// Branch targets must land on instruction boundaries.
	for i, in := range ins {
		for _, t := range c.targets[i] {
			if _, ok := c.pcIndex[t]; !ok {
				return c.outcome(jvm.ErrVerify,
					"method %s: branch into the middle of an instruction (pc %d)", mname, t)
			}
		}
		if (in.Op == bytecode.Jsr || in.Op == bytecode.JsrW || in.Op == bytecode.Ret ||
			(in.Op == bytecode.Wide && in.WideOp == bytecode.Ret)) &&
			c.p.ForbidJsrRet && c.f.Major >= 51 {
			return c.outcome(jvm.ErrVerify,
				"method %s uses jsr/ret in a version %d classfile", mname, c.f.Major)
		}
	}

	// Exception handler sanity.
	for _, h := range c.code.Handlers {
		_, okS := c.pcIndex[int(h.StartPC)]
		_, okH := c.pcIndex[int(h.HandlerPC)]
		endOK := int(h.EndPC) == len(c.code.Code) || func() bool { _, ok := c.pcIndex[int(h.EndPC)]; return ok }()
		if !okS || !okH || !endOK || h.StartPC >= h.EndPC {
			return c.outcome(jvm.ErrClassFormat,
				"method %s has an invalid exception handler range", mname)
		}
		if h.CatchType != 0 {
			cname, ok := c.f.Pool.ClassName(h.CatchType)
			if !ok {
				return c.outcome(jvm.ErrClassFormat,
					"method %s catch type #%d is not a class", mname, h.CatchType)
			}
			ci, known := c.lookup(cname)
			if !known {
				if c.p.EagerResolution {
					return &jvm.Outcome{Phase: jvm.PhaseLinking, Error: jvm.ErrNoClassDef, Message: cname}
				}
			} else if ci != nil {
				if !c.env.IsThrowable(cname) {
					return c.outcome(jvm.ErrVerify,
						"method %s catches non-Throwable %s", mname, cname)
				}
			}
		}
	}

	// Type-checking verification (§4.10.1): presets that use the
	// StackMapTable-driven verifier reject undecodable tables outright.
	if c.p.VerifyTypeChecking && c.f.Major >= 50 {
		for _, a := range c.code.Attributes {
			if t, ok := a.(*classfile.StackMapTableAttr); ok {
				if _, err := classfile.DecodeStackMap(t); err != nil {
					return c.outcome(jvm.ErrClassFormat,
						"method %s has an undecodable StackMapTable: %v", mname, err)
				}
				break
			}
		}
	}

	// Initial state (pooled; mergeInto copies it, so it goes straight
	// back to the pool afterwards).
	init := getState()
	init.stack = init.stack[:0]
	if cap(init.locals) < int(c.code.MaxLocals) {
		init.locals = make([]slot, c.code.MaxLocals)
	} else {
		init.locals = init.locals[:c.code.MaxLocals]
		clear(init.locals)
	}
	at := 0
	isStatic := c.m.AccessFlags.Has(classfile.AccStatic)
	if !isStatic {
		if at >= len(init.locals) {
			putState(init)
			return c.outcome(jvm.ErrVerify, "max_locals too small for receiver")
		}
		if mname == "<init>" {
			init.locals[at] = slot{kind: kUninit, cls: c.name, pc: -1}
		} else {
			init.locals[at] = refOf(c.name)
		}
		at++
	}
	for _, pt := range md.Params {
		t := slotOfDesc(pt)
		if at+t.slots() > len(init.locals) {
			putState(init)
			return c.outcome(jvm.ErrVerify,
				"max_locals %d too small for parameters of %s%s", c.code.MaxLocals, mname, mdesc)
		}
		init.locals[at] = t
		at++
		if t.isWideFirst() {
			init.locals[at] = slot{kind: kWide2}
			at++
		}
	}

	c.in = make([]*state, len(ins))
	c.mergeInto(0, init)
	putState(init)

	for len(c.work) > 0 && !c.failed() {
		idx := c.work[len(c.work)-1]
		c.work = c.work[:len(c.work)-1]
		c.step(idx)
	}
	for _, f := range c.in {
		if f != nil {
			putState(f)
		}
	}
	if c.failed() {
		return c.outcome(c.errName, "method %s%s: %s", mname, mdesc, c.errMsg)
	}
	return nil
}

// lookup resolves a class name against the class under test or the
// environment; the bool is false when the name is unknown to both.
// A nil ClassInfo with ok=true means the class under test itself.
func (c *checker) lookup(name string) (*rtlib.ClassInfo, bool) {
	if name == c.name {
		return nil, true
	}
	if ci, ok := c.env.Lookup(name); ok {
		return ci, true
	}
	return nil, false
}

// mergeInto joins a state into instruction idx's entry state and
// enqueues it when the entry changed.
func (c *checker) mergeInto(idx int, f *state) {
	if c.failed() {
		return
	}
	cur := c.in[idx]
	if cur == nil {
		c.in[idx] = getState().copyFrom(f)
		c.work = append(c.work, idx)
		return
	}
	if len(cur.stack) != len(f.stack) {
		c.fail(jvm.ErrVerify, "inconsistent stack depth at merge (pc %d): %d vs %d",
			c.ins[idx].PC, len(cur.stack), len(f.stack))
		return
	}
	changed := false
	for i := range cur.stack {
		m, ch := c.mergeSlot(cur.stack[i], f.stack[i], true)
		if c.failed() {
			return
		}
		if ch {
			cur.stack[i] = m
			changed = true
		}
	}
	for i := range cur.locals {
		m, ch := c.mergeSlot(cur.locals[i], f.locals[i], false)
		if c.failed() {
			return
		}
		if ch {
			cur.locals[i] = m
			changed = true
		}
	}
	if changed {
		c.work = append(c.work, idx)
	}
}

// mergeSlot joins two abstract values. onStack selects the stricter
// stack rules (conflicts on the stack are verification errors; in
// locals they just poison the slot).
func (c *checker) mergeSlot(a, b slot, onStack bool) (slot, bool) {
	if a == b {
		return a, false
	}
	conflict := func(reason string) (slot, bool) {
		if onStack {
			c.fail(jvm.ErrVerify, "unmergeable stack values (%s vs %s): %s", a, b, reason)
			return a, false
		}
		return slot{kind: kConflict}, a.kind != kConflict
	}
	// Reference-family merging.
	if a.isRefLike() && b.isRefLike() {
		// Uninitialized values merging with anything else: GIJ flags it
		// (Problem 2); other VMs widen to an unknown reference.
		if a.kind == kUninit || b.kind == kUninit {
			if a.kind == kUninit && b.kind == kUninit && a.pc == b.pc && a.cls == b.cls {
				return a, false
			}
			if c.p.VerifyUninitMerge {
				c.fail(jvm.ErrVerify, "merging initialized and uninitialized values (%s vs %s)", a, b)
				return a, false
			}
			return refOf(""), true
		}
		if a.kind == kNull {
			return b, true
		}
		if b.kind == kNull {
			return a, false
		}
		// Both proper refs with (possibly) known classes.
		if a.cls == b.cls {
			return a, false
		}
		if a.cls == "" || b.cls == "" {
			return refOf(""), a.cls != ""
		}
		sup := c.commonSuper(a.cls, b.cls)
		if c.p.VerifyStrictStackShape && onStack && sup != a.cls && sup != b.cls {
			// J9's strict dialect: merging unrelated reference types on
			// the stack is a "stack shape inconsistent" failure.
			c.fail(jvm.ErrVerify, "stack shape inconsistent (%s vs %s)", a, b)
			return a, false
		}
		m := refOf(sup)
		return m, m != a
	}
	if a.kind == kUndef || b.kind == kUndef {
		return conflict("undefined slot")
	}
	if a.kind != b.kind {
		return conflict("kind mismatch")
	}
	return a, false
}

// commonSuper computes the least common superclass known to the
// environment; Object when unrelated.
func (c *checker) commonSuper(a, b string) string {
	chainOf := func(n string) []string {
		var chain []string
		cur := n
		if cur == c.name {
			chain = append(chain, cur)
			cur = c.f.SuperName()
		}
		for cur != "" {
			chain = append(chain, cur)
			ci, ok := c.env.Lookup(cur)
			if !ok {
				break
			}
			cur = ci.Super
		}
		return chain
	}
	ca, cb := chainOf(a), chainOf(b)
	inB := make(map[string]bool, len(cb))
	for _, n := range cb {
		inB[n] = true
	}
	for _, n := range ca {
		if inB[n] {
			return n
		}
	}
	return "java/lang/Object"
}

// assignableRef decides whether a value of class `from` can serve where
// `to` is expected, considering the class under test's own hierarchy.
func (c *checker) assignableRef(from, to string) bool {
	if from == "" || to == "" || from == to || to == "java/lang/Object" {
		return true
	}
	if from == c.name {
		// The class under test: assignable to its superclass chain and
		// declared interfaces.
		if c.env.AssignableTo(c.f.SuperName(), to) {
			return true
		}
		for _, n := range c.f.InterfaceNames() {
			if n == to || c.env.AssignableTo(n, to) {
				return true
			}
		}
		return false
	}
	if _, ok := c.env.Lookup(from); !ok {
		// Unknown class: be permissive; lazy VMs discover at runtime.
		return true
	}
	if _, ok := c.env.Lookup(to); !ok {
		return true
	}
	// Interfaces as targets: only check when both sides are known.
	return c.env.AssignableTo(from, to)
}

// --- per-instruction transfer functions -----------------------------------

// sim wraps the working state with failure-raising stack/local
// operations so transfer functions read like the JVMS stack effects.
type sim struct {
	c *checker
	f *state
}

func (s *sim) push(t slot) {
	if len(s.f.stack) >= int(s.c.code.MaxStack) {
		s.c.fail(jvm.ErrVerify, "operand stack overflow (max_stack %d)", s.c.code.MaxStack)
		return
	}
	s.f.stack = append(s.f.stack, t)
}

func (s *sim) pushWide(t slot) {
	s.push(t)
	s.push(slot{kind: kWide2})
}

func (s *sim) pop() slot {
	if s.c.failed() {
		return slot{}
	}
	if len(s.f.stack) == 0 {
		s.c.fail(jvm.ErrVerify, "operand stack underflow")
		return slot{}
	}
	t := s.f.stack[len(s.f.stack)-1]
	s.f.stack = s.f.stack[:len(s.f.stack)-1]
	return t
}

func (s *sim) popKind(k slotKind) slot {
	t := s.pop()
	if !s.c.failed() && t.kind != k {
		s.c.fail(jvm.ErrVerify, "expected %s on stack, found %s", slot{kind: k}, t)
	}
	return t
}

func (s *sim) popWide(k slotKind) {
	s.popKind(kWide2)
	s.popKind(k)
}

func (s *sim) popRef() slot {
	t := s.pop()
	if !s.c.failed() && !t.isRefLike() {
		s.c.fail(jvm.ErrVerify, "expected a reference on stack, found %s", t)
	}
	return t
}

// popDesc pops a value matching descriptor type dt, applying the
// strict-assignability dialect when enabled.
func (s *sim) popDesc(dt descriptor.Type, ctx string) {
	if dt.IsWide() {
		s.popWide(slotKind(dt.Kind))
		return
	}
	if dt.IsReference() {
		got := s.popRef()
		if !s.c.failed() && s.c.p.VerifyRefAssignability &&
			got.kind == kRef && got.cls != "" && dt.Dims == 0 && dt.Kind == 'L' {
			if !s.c.assignableRef(got.cls, dt.ClassName) {
				s.c.fail(jvm.ErrVerify, "%s: %s is not assignable to %s", ctx, got.cls, dt.ClassName)
			}
		}
		return
	}
	switch dt.Kind {
	case 'F':
		s.popKind(kFloat)
	default:
		s.popKind(kInt)
	}
}

func (s *sim) getLocal(i int, k slotKind) slot {
	if i < 0 || i >= len(s.f.locals) {
		s.c.fail(jvm.ErrVerify, "local variable index %d out of bounds (max_locals %d)", i, len(s.f.locals))
		return slot{}
	}
	t := s.f.locals[i]
	if k == kRef {
		if !t.isRefLike() {
			s.c.fail(jvm.ErrVerify, "local %d holds %s, expected a reference", i, t)
		}
	} else if t.kind != k {
		s.c.fail(jvm.ErrVerify, "local %d holds %s, expected %s", i, t, slot{kind: k})
	}
	return t
}

func (s *sim) setLocal(i int, t slot) {
	n := t.slots()
	if i < 0 || i+n > len(s.f.locals) {
		s.c.fail(jvm.ErrVerify, "local variable index %d out of bounds (max_locals %d)", i, len(s.f.locals))
		return
	}
	// Storing into the second slot of a wide value invalidates the first.
	if i > 0 && s.f.locals[i].kind == kWide2 && s.f.locals[i-1].isWideFirst() {
		s.f.locals[i-1] = slot{kind: kConflict}
	}
	s.f.locals[i] = t
	if n == 2 {
		s.f.locals[i+1] = slot{kind: kWide2}
	}
}

// step simulates instruction idx against its merged entry state and
// propagates the result to all successors.
func (c *checker) step(idx int) {
	in := c.ins[idx]
	fr := c.scratch.copyFrom(c.in[idx])
	s := &sim{c: c, f: fr}

	op := in.Op
	if op == bytecode.Wide {
		op = in.WideOp
	}

	switch op {
	case bytecode.Nop, bytecode.Breakpoint, bytecode.Impdep1, bytecode.Impdep2:
	case bytecode.AconstNull:
		s.push(slot{kind: kNull})
	case bytecode.IconstM1, bytecode.Iconst0, bytecode.Iconst1, bytecode.Iconst2,
		bytecode.Iconst3, bytecode.Iconst4, bytecode.Iconst5, bytecode.Bipush, bytecode.Sipush:
		s.push(slot{kind: kInt})
	case bytecode.Lconst0, bytecode.Lconst1:
		s.pushWide(slot{kind: kLong})
	case bytecode.Fconst0, bytecode.Fconst1, bytecode.Fconst2:
		s.push(slot{kind: kFloat})
	case bytecode.Dconst0, bytecode.Dconst1:
		s.pushWide(slot{kind: kDouble})
	case bytecode.Ldc, bytecode.LdcW:
		c.simLdc(s, in, false)
	case bytecode.Ldc2W:
		c.simLdc(s, in, true)

	case bytecode.Iload:
		s.getLocal(int(in.Local), kInt)
		s.push(slot{kind: kInt})
	case bytecode.Lload:
		s.getLocal(int(in.Local), kLong)
		s.pushWide(slot{kind: kLong})
	case bytecode.Fload:
		s.getLocal(int(in.Local), kFloat)
		s.push(slot{kind: kFloat})
	case bytecode.Dload:
		s.getLocal(int(in.Local), kDouble)
		s.pushWide(slot{kind: kDouble})
	case bytecode.Aload:
		t := s.getLocal(int(in.Local), kRef)
		s.push(t)
	case bytecode.Iload0, bytecode.Iload1, bytecode.Iload2, bytecode.Iload3:
		s.getLocal(int(op-bytecode.Iload0), kInt)
		s.push(slot{kind: kInt})
	case bytecode.Lload0, bytecode.Lload1, bytecode.Lload2, bytecode.Lload3:
		s.getLocal(int(op-bytecode.Lload0), kLong)
		s.pushWide(slot{kind: kLong})
	case bytecode.Fload0, bytecode.Fload1, bytecode.Fload2, bytecode.Fload3:
		s.getLocal(int(op-bytecode.Fload0), kFloat)
		s.push(slot{kind: kFloat})
	case bytecode.Dload0, bytecode.Dload1, bytecode.Dload2, bytecode.Dload3:
		s.getLocal(int(op-bytecode.Dload0), kDouble)
		s.pushWide(slot{kind: kDouble})
	case bytecode.Aload0, bytecode.Aload1, bytecode.Aload2, bytecode.Aload3:
		t := s.getLocal(int(op-bytecode.Aload0), kRef)
		s.push(t)

	case bytecode.Istore:
		s.popKind(kInt)
		s.setLocal(int(in.Local), slot{kind: kInt})
	case bytecode.Lstore:
		s.popWide(kLong)
		s.setLocal(int(in.Local), slot{kind: kLong})
	case bytecode.Fstore:
		s.popKind(kFloat)
		s.setLocal(int(in.Local), slot{kind: kFloat})
	case bytecode.Dstore:
		s.popWide(kDouble)
		s.setLocal(int(in.Local), slot{kind: kDouble})
	case bytecode.Astore:
		t := s.pop()
		if !c.failed() && !t.isRefLike() && t.kind != kRetAddr {
			c.fail(jvm.ErrVerify, "astore of non-reference %s", t)
		}
		s.setLocal(int(in.Local), t)
	case bytecode.Istore0, bytecode.Istore1, bytecode.Istore2, bytecode.Istore3:
		s.popKind(kInt)
		s.setLocal(int(op-bytecode.Istore0), slot{kind: kInt})
	case bytecode.Lstore0, bytecode.Lstore1, bytecode.Lstore2, bytecode.Lstore3:
		s.popWide(kLong)
		s.setLocal(int(op-bytecode.Lstore0), slot{kind: kLong})
	case bytecode.Fstore0, bytecode.Fstore1, bytecode.Fstore2, bytecode.Fstore3:
		s.popKind(kFloat)
		s.setLocal(int(op-bytecode.Fstore0), slot{kind: kFloat})
	case bytecode.Dstore0, bytecode.Dstore1, bytecode.Dstore2, bytecode.Dstore3:
		s.popWide(kDouble)
		s.setLocal(int(op-bytecode.Dstore0), slot{kind: kDouble})
	case bytecode.Astore0, bytecode.Astore1, bytecode.Astore2, bytecode.Astore3:
		t := s.pop()
		if !c.failed() && !t.isRefLike() && t.kind != kRetAddr {
			c.fail(jvm.ErrVerify, "astore of non-reference %s", t)
		}
		s.setLocal(int(op-bytecode.Astore0), t)

	case bytecode.Iaload, bytecode.Baload, bytecode.Caload, bytecode.Saload:
		s.popKind(kInt)
		s.popRef()
		s.push(slot{kind: kInt})
	case bytecode.Laload:
		s.popKind(kInt)
		s.popRef()
		s.pushWide(slot{kind: kLong})
	case bytecode.Faload:
		s.popKind(kInt)
		s.popRef()
		s.push(slot{kind: kFloat})
	case bytecode.Daload:
		s.popKind(kInt)
		s.popRef()
		s.pushWide(slot{kind: kDouble})
	case bytecode.Aaload:
		s.popKind(kInt)
		arr := s.popRef()
		s.push(elementOf(arr))
	case bytecode.Iastore, bytecode.Bastore, bytecode.Castore, bytecode.Sastore:
		s.popKind(kInt)
		s.popKind(kInt)
		s.popRef()
	case bytecode.Lastore:
		s.popWide(kLong)
		s.popKind(kInt)
		s.popRef()
	case bytecode.Fastore:
		s.popKind(kFloat)
		s.popKind(kInt)
		s.popRef()
	case bytecode.Dastore:
		s.popWide(kDouble)
		s.popKind(kInt)
		s.popRef()
	case bytecode.Aastore:
		s.popRef()
		s.popKind(kInt)
		s.popRef()

	case bytecode.Pop:
		t := s.pop()
		if !c.failed() && t.kind == kWide2 {
			c.fail(jvm.ErrVerify, "pop splits a two-slot value")
		}
	case bytecode.Pop2:
		s.pop()
		s.pop()
	case bytecode.Dup:
		t := s.pop()
		if !c.failed() && t.kind == kWide2 {
			c.fail(jvm.ErrVerify, "dup of half a two-slot value")
		}
		s.push(t)
		s.push(t)
	case bytecode.DupX1:
		a := s.pop()
		b := s.pop()
		s.push(a)
		s.push(b)
		s.push(a)
	case bytecode.DupX2:
		a := s.pop()
		b := s.pop()
		cc := s.pop()
		s.push(a)
		s.push(cc)
		s.push(b)
		s.push(a)
	case bytecode.Dup2:
		a := s.pop()
		b := s.pop()
		s.push(b)
		s.push(a)
		s.push(b)
		s.push(a)
	case bytecode.Dup2X1:
		a := s.pop()
		b := s.pop()
		cc := s.pop()
		s.push(b)
		s.push(a)
		s.push(cc)
		s.push(b)
		s.push(a)
	case bytecode.Dup2X2:
		a := s.pop()
		b := s.pop()
		cc := s.pop()
		d := s.pop()
		s.push(b)
		s.push(a)
		s.push(d)
		s.push(cc)
		s.push(b)
		s.push(a)
	case bytecode.Swap:
		a := s.pop()
		b := s.pop()
		if !c.failed() && (a.kind == kWide2 || b.kind == kWide2) {
			c.fail(jvm.ErrVerify, "swap of two-slot values")
		}
		s.push(a)
		s.push(b)

	case bytecode.Iadd, bytecode.Isub, bytecode.Imul, bytecode.Idiv, bytecode.Irem,
		bytecode.Ishl, bytecode.Ishr, bytecode.Iushr, bytecode.Iand, bytecode.Ior, bytecode.Ixor:
		s.popKind(kInt)
		s.popKind(kInt)
		s.push(slot{kind: kInt})
	case bytecode.Ladd, bytecode.Lsub, bytecode.Lmul, bytecode.Ldiv, bytecode.Lrem,
		bytecode.Land, bytecode.Lor, bytecode.Lxor:
		s.popWide(kLong)
		s.popWide(kLong)
		s.pushWide(slot{kind: kLong})
	case bytecode.Lshl, bytecode.Lshr, bytecode.Lushr:
		s.popKind(kInt)
		s.popWide(kLong)
		s.pushWide(slot{kind: kLong})
	case bytecode.Fadd, bytecode.Fsub, bytecode.Fmul, bytecode.Fdiv, bytecode.Frem:
		s.popKind(kFloat)
		s.popKind(kFloat)
		s.push(slot{kind: kFloat})
	case bytecode.Dadd, bytecode.Dsub, bytecode.Dmul, bytecode.Ddiv, bytecode.Drem:
		s.popWide(kDouble)
		s.popWide(kDouble)
		s.pushWide(slot{kind: kDouble})
	case bytecode.Ineg:
		s.popKind(kInt)
		s.push(slot{kind: kInt})
	case bytecode.Lneg:
		s.popWide(kLong)
		s.pushWide(slot{kind: kLong})
	case bytecode.Fneg:
		s.popKind(kFloat)
		s.push(slot{kind: kFloat})
	case bytecode.Dneg:
		s.popWide(kDouble)
		s.pushWide(slot{kind: kDouble})
	case bytecode.Iinc:
		s.getLocal(int(in.Local), kInt)

	case bytecode.I2l:
		s.popKind(kInt)
		s.pushWide(slot{kind: kLong})
	case bytecode.I2f:
		s.popKind(kInt)
		s.push(slot{kind: kFloat})
	case bytecode.I2d:
		s.popKind(kInt)
		s.pushWide(slot{kind: kDouble})
	case bytecode.L2i:
		s.popWide(kLong)
		s.push(slot{kind: kInt})
	case bytecode.L2f:
		s.popWide(kLong)
		s.push(slot{kind: kFloat})
	case bytecode.L2d:
		s.popWide(kLong)
		s.pushWide(slot{kind: kDouble})
	case bytecode.F2i:
		s.popKind(kFloat)
		s.push(slot{kind: kInt})
	case bytecode.F2l:
		s.popKind(kFloat)
		s.pushWide(slot{kind: kLong})
	case bytecode.F2d:
		s.popKind(kFloat)
		s.pushWide(slot{kind: kDouble})
	case bytecode.D2i:
		s.popWide(kDouble)
		s.push(slot{kind: kInt})
	case bytecode.D2l:
		s.popWide(kDouble)
		s.pushWide(slot{kind: kLong})
	case bytecode.D2f:
		s.popWide(kDouble)
		s.push(slot{kind: kFloat})
	case bytecode.I2b, bytecode.I2c, bytecode.I2s:
		s.popKind(kInt)
		s.push(slot{kind: kInt})

	case bytecode.Lcmp:
		s.popWide(kLong)
		s.popWide(kLong)
		s.push(slot{kind: kInt})
	case bytecode.Fcmpl, bytecode.Fcmpg:
		s.popKind(kFloat)
		s.popKind(kFloat)
		s.push(slot{kind: kInt})
	case bytecode.Dcmpl, bytecode.Dcmpg:
		s.popWide(kDouble)
		s.popWide(kDouble)
		s.push(slot{kind: kInt})

	case bytecode.Ifeq, bytecode.Ifne, bytecode.Iflt, bytecode.Ifge, bytecode.Ifgt, bytecode.Ifle:
		s.popKind(kInt)
	case bytecode.IfIcmpeq, bytecode.IfIcmpne, bytecode.IfIcmplt, bytecode.IfIcmpge,
		bytecode.IfIcmpgt, bytecode.IfIcmple:
		s.popKind(kInt)
		s.popKind(kInt)
	case bytecode.IfAcmpeq, bytecode.IfAcmpne:
		s.popRef()
		s.popRef()
	case bytecode.Ifnull, bytecode.Ifnonnull:
		s.popRef()
	case bytecode.Goto, bytecode.GotoW:
	case bytecode.Jsr, bytecode.JsrW:
		s.push(slot{kind: kRetAddr})
	case bytecode.Ret:
		s.getLocal(int(in.Local), kRetAddr)
	case bytecode.Tableswitch, bytecode.Lookupswitch:
		s.popKind(kInt)

	case bytecode.Ireturn:
		s.popKind(kInt)
		c.checkReturn(in, 'I')
	case bytecode.Lreturn:
		s.popWide(kLong)
		c.checkReturn(in, 'J')
	case bytecode.Freturn:
		s.popKind(kFloat)
		c.checkReturn(in, 'F')
	case bytecode.Dreturn:
		s.popWide(kDouble)
		c.checkReturn(in, 'D')
	case bytecode.Areturn:
		s.popRef()
		c.checkReturn(in, 'A')
	case bytecode.Return:
		c.checkReturn(in, 'V')

	case bytecode.Getstatic, bytecode.Putstatic, bytecode.Getfield, bytecode.Putfield:
		c.simField(s, in)
	case bytecode.Invokevirtual, bytecode.Invokespecial, bytecode.Invokestatic,
		bytecode.Invokeinterface:
		c.simInvoke(s, in)
	case bytecode.Invokedynamic:
		c.simInvokeDynamic(s, in)

	case bytecode.New:
		cname, ok := c.f.Pool.ClassName(in.CPIndex)
		if !ok {
			c.fail(jvm.ErrClassFormat, "new references non-class constant #%d", in.CPIndex)
			break
		}
		s.push(slot{kind: kUninit, cls: cname, pc: in.PC})
	case bytecode.Newarray:
		if !in.ArrayTyp.Valid() {
			c.fail(jvm.ErrVerify, "newarray with invalid type code %d", in.ArrayTyp)
			break
		}
		s.popKind(kInt)
		s.push(refOf("[" + in.ArrayTyp.Descriptor()))
	case bytecode.Anewarray:
		cname, ok := c.f.Pool.ClassName(in.CPIndex)
		if !ok {
			c.fail(jvm.ErrClassFormat, "anewarray references non-class constant #%d", in.CPIndex)
			break
		}
		s.popKind(kInt)
		if len(cname) > 0 && cname[0] == '[' {
			s.push(refOf("[" + cname))
		} else {
			s.push(refOf("[L" + cname + ";"))
		}
	case bytecode.Multianewarray:
		if in.Count == 0 {
			c.fail(jvm.ErrVerify, "multianewarray with zero dimensions")
			break
		}
		for i := 0; i < int(in.Count); i++ {
			s.popKind(kInt)
		}
		cname, _ := c.f.Pool.ClassName(in.CPIndex)
		s.push(refOf(cname))
	case bytecode.Arraylength:
		s.popRef()
		s.push(slot{kind: kInt})

	case bytecode.Athrow:
		t := s.popRef()
		if !c.failed() && t.kind == kRef && t.cls != "" && t.cls != c.name {
			if _, ok := c.env.Lookup(t.cls); ok && !c.env.IsThrowable(t.cls) {
				c.fail(jvm.ErrVerify, "athrow of non-Throwable %s", t.cls)
			}
		}
	case bytecode.Checkcast:
		s.popRef()
		cname, ok := c.f.Pool.ClassName(in.CPIndex)
		if !ok {
			c.fail(jvm.ErrClassFormat, "checkcast references non-class constant #%d", in.CPIndex)
			break
		}
		s.push(refOf(cname))
	case bytecode.Instanceof:
		s.popRef()
		if _, ok := c.f.Pool.ClassName(in.CPIndex); !ok {
			c.fail(jvm.ErrClassFormat, "instanceof references non-class constant #%d", in.CPIndex)
			break
		}
		s.push(slot{kind: kInt})
	case bytecode.Monitorenter, bytecode.Monitorexit:
		s.popRef()

	default:
		c.fail(jvm.ErrVerify, "unsupported opcode %s", op.Mnemonic())
	}

	if c.failed() {
		return
	}

	// Propagate to successors.
	if !in.Op.EndsBlock() {
		next := idx + 1
		if next >= len(c.ins) {
			c.fail(jvm.ErrVerify, "execution falls off the end of the code")
			return
		}
		c.mergeInto(next, fr)
	}
	for _, t := range c.targets[idx] {
		c.mergeInto(c.pcIndex[t], fr)
	}
	// Exception edges: any instruction inside a protected range can
	// transfer to the handler with a single throwable on the stack.
	for _, h := range c.code.Handlers {
		if in.PC >= int(h.StartPC) && in.PC < int(h.EndPC) {
			hidx, ok := c.pcIndex[int(h.HandlerPC)]
			if !ok {
				continue // already rejected above
			}
			cname := "java/lang/Throwable"
			if h.CatchType != 0 {
				if n, ok := c.f.Pool.ClassName(h.CatchType); ok {
					cname = n
				}
			}
			hf := getState()
			hf.locals = append(hf.locals[:0], fr.locals...)
			hf.stack = append(hf.stack[:0], refOf(cname))
			c.mergeInto(hidx, hf)
			putState(hf)
		}
	}
}

// elementOf computes the element type of an array reference when known.
func elementOf(arr slot) slot {
	if arr.kind == kRef && len(arr.cls) > 1 && arr.cls[0] == '[' {
		elem := arr.cls[1:]
		if elem[0] == 'L' && elem[len(elem)-1] == ';' {
			return refOf(elem[1 : len(elem)-1])
		}
		if elem[0] == '[' {
			return refOf(elem)
		}
	}
	return refOf("")
}

func (c *checker) checkReturn(in *bytecode.Instruction, kind byte) {
	ret := c.md.Return
	var ok bool
	switch kind {
	case 'V':
		ok = ret.IsVoid()
	case 'A':
		ok = ret.IsReference()
	case 'I':
		ok = ret.Dims == 0 && (ret.Kind == 'I' || ret.Kind == 'Z' || ret.Kind == 'B' || ret.Kind == 'C' || ret.Kind == 'S')
	default:
		ok = ret.Dims == 0 && ret.Kind == kind
	}
	if !ok {
		c.fail(jvm.ErrVerify, "%s at pc %d does not match return type %s", in.Op.Mnemonic(), in.PC, ret.Java())
	}
	// A constructor must have initialized `this` before returning.
	if kind == 'V' && c.m.Name(c.f.Pool) == "<init>" {
		fr := c.in[c.pcIndex[in.PC]]
		if len(fr.locals) > 0 && fr.locals[0].kind == kUninit && fr.locals[0].pc == -1 {
			c.fail(jvm.ErrVerify, "constructor returns without calling super constructor")
		}
	}
}

func (c *checker) simLdc(s *sim, in *bytecode.Instruction, wide bool) {
	cn := c.f.Pool.Get(in.CPIndex)
	if cn == nil {
		c.fail(jvm.ErrClassFormat, "ldc references unusable constant #%d", in.CPIndex)
		return
	}
	switch cn.Tag {
	case classfile.TagInteger:
		if wide {
			c.fail(jvm.ErrVerify, "ldc2_w of a single-slot constant")
			return
		}
		s.push(slot{kind: kInt})
	case classfile.TagFloat:
		if wide {
			c.fail(jvm.ErrVerify, "ldc2_w of a single-slot constant")
			return
		}
		s.push(slot{kind: kFloat})
	case classfile.TagString:
		if wide {
			c.fail(jvm.ErrVerify, "ldc2_w of a single-slot constant")
			return
		}
		s.push(refOf("java/lang/String"))
	case classfile.TagClass:
		if wide {
			c.fail(jvm.ErrVerify, "ldc2_w of a single-slot constant")
			return
		}
		s.push(refOf("java/lang/Class"))
	case classfile.TagLong:
		if !wide {
			c.fail(jvm.ErrVerify, "ldc of a two-slot constant")
			return
		}
		s.pushWide(slot{kind: kLong})
	case classfile.TagDouble:
		if !wide {
			c.fail(jvm.ErrVerify, "ldc of a two-slot constant")
			return
		}
		s.pushWide(slot{kind: kDouble})
	default:
		c.fail(jvm.ErrClassFormat, "ldc of unsupported constant tag %s", cn.Tag)
	}
}

func (c *checker) simField(s *sim, in *bytecode.Instruction) {
	cls, name, desc, ok := c.f.Pool.MemberRef(in.CPIndex)
	if !ok {
		c.fail(jvm.ErrClassFormat, "field instruction references invalid constant #%d", in.CPIndex)
		return
	}
	ft, err := descriptor.ParseField(desc)
	if err != nil {
		c.fail(jvm.ErrClassFormat, "field %s.%s has malformed descriptor %q", cls, name, desc)
		return
	}
	t := slotOfDesc(ft)
	switch in.Op {
	case bytecode.Getstatic:
		if t.isWideFirst() {
			s.pushWide(t)
		} else {
			s.push(t)
		}
	case bytecode.Putstatic:
		s.popDesc(ft, fmt.Sprintf("putstatic %s.%s", cls, name))
	case bytecode.Getfield:
		s.popRef()
		if t.isWideFirst() {
			s.pushWide(t)
		} else {
			s.push(t)
		}
	case bytecode.Putfield:
		s.popDesc(ft, fmt.Sprintf("putfield %s.%s", cls, name))
		s.popRef()
	}
}

func (c *checker) simInvoke(s *sim, in *bytecode.Instruction) {
	cls, name, desc, ok := c.f.Pool.MemberRef(in.CPIndex)
	if !ok {
		c.fail(jvm.ErrClassFormat, "invoke references invalid constant #%d", in.CPIndex)
		return
	}
	md, err := descriptor.ParseMethod(desc)
	if err != nil {
		c.fail(jvm.ErrClassFormat, "invoked method %s.%s has malformed descriptor %q", cls, name, desc)
		return
	}
	// Args are popped right-to-left.
	for i := len(md.Params) - 1; i >= 0; i-- {
		s.popDesc(md.Params[i], fmt.Sprintf("argument %d of %s.%s", i, cls, name))
	}
	if in.Op != bytecode.Invokestatic {
		recv := s.popRef()
		if c.failed() {
			return
		}
		if in.Op == bytecode.Invokespecial && name == "<init>" {
			// Initializes an uninitialized object: rewrite every copy.
			if recv.kind == kUninit {
				initTo := refOf(recv.cls)
				if recv.pc == -1 {
					initTo = refOf(c.name)
				}
				replace := func(slice []slot) {
					for i, t := range slice {
						if t.kind == kUninit && t.pc == recv.pc {
							slice[i] = initTo
						}
					}
				}
				replace(s.f.stack)
				replace(s.f.locals)
			} else if recv.kind == kRef && c.p.VerifyUninitMerge {
				// Strict dialects reject re-initialization of an already
				// initialized reference.
				c.fail(jvm.ErrVerify, "invokespecial <init> on initialized reference")
				return
			}
		} else if recv.kind == kUninit {
			c.fail(jvm.ErrVerify, "method call on uninitialized object")
			return
		}
	}
	if !md.Return.IsVoid() {
		t := slotOfDesc(md.Return)
		if t.isWideFirst() {
			s.pushWide(t)
		} else {
			s.push(t)
		}
	}
}

func (c *checker) simInvokeDynamic(s *sim, in *bytecode.Instruction) {
	cn := c.f.Pool.Get(in.CPIndex)
	if cn == nil || cn.Tag != classfile.TagInvokeDynamic {
		c.fail(jvm.ErrClassFormat, "invokedynamic references invalid constant #%d", in.CPIndex)
		return
	}
	_, desc, ok := c.f.Pool.NameAndType(cn.Ref2)
	if !ok {
		c.fail(jvm.ErrClassFormat, "invokedynamic NameAndType is invalid")
		return
	}
	md, err := descriptor.ParseMethod(desc)
	if err != nil {
		c.fail(jvm.ErrClassFormat, "invokedynamic descriptor %q is malformed", desc)
		return
	}
	for i := len(md.Params) - 1; i >= 0; i-- {
		s.popDesc(md.Params[i], "invokedynamic argument")
	}
	if !md.Return.IsVoid() {
		t := slotOfDesc(md.Return)
		if t.isWideFirst() {
			s.pushWide(t)
		} else {
			s.push(t)
		}
	}
}
