package dataflow_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/dataflow"
	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/jvm"
	"repro/internal/rtlib"
)

// buildMain builds a class "DF" whose static main has the given code.
func buildMain(t *testing.T, build func(cb *classfile.CodeBuilder), maxStack, maxLocals uint16) *classfile.File {
	t.Helper()
	f := classfile.New("DF")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	cb := classfile.NewCodeBuilder(f.Pool)
	build(cb)
	cb.SetMaxStack(maxStack).SetMaxLocals(maxLocals)
	m.Attributes = append(m.Attributes, cb.Build())
	return f
}

// checkMirror asserts that for every preset and every method with code,
// the independent dataflow analysis and the VM-side runtime verifier
// produce identical outcomes — the same nil/non-nil verdict, error
// class, phase and message. This is the package's core contract.
func checkMirror(t *testing.T, f *classfile.File) {
	t.Helper()
	for _, spec := range jvm.StandardFive() {
		env := rtlib.NewEnv(spec.Release)
		for _, m := range f.Methods {
			if m.Code() == nil {
				continue
			}
			got := dataflow.VerifyMethod(f, m, &spec.Policy, env)
			want := jvm.VerifyMethodStatic(spec, env, f, m)
			if (got == nil) != (want == nil) {
				t.Fatalf("%s %s: dataflow %v, VM verifier %v", spec.Name, m.Name(f.Pool), got, want)
			}
			if got != nil && (got.Error != want.Error || got.Phase != want.Phase || got.Message != want.Message) {
				t.Fatalf("%s %s: dataflow %v, VM verifier %v", spec.Name, m.Name(f.Pool), got, want)
			}
		}
	}
}

// verdictFor runs the dataflow verification of main under one spec.
func verdictFor(t *testing.T, f *classfile.File, spec jvm.Spec) *jvm.Outcome {
	t.Helper()
	m := f.FindMethodExact("main", "([Ljava/lang/String;)V")
	if m == nil {
		t.Fatal("no main")
	}
	return dataflow.VerifyMethod(f, m, &spec.Policy, rtlib.NewEnv(spec.Release))
}

func wantErr(t *testing.T, out *jvm.Outcome, errName, fragment string) {
	t.Helper()
	if out == nil {
		t.Fatalf("want %s, method verified", errName)
	}
	if out.Error != errName || out.Phase != jvm.PhaseLinking {
		t.Fatalf("want %s at linking, got %v", errName, out)
	}
	if fragment != "" && !strings.Contains(out.Message, fragment) {
		t.Errorf("message %q missing %q", out.Message, fragment)
	}
}

func TestCleanMethodVerifies(t *testing.T) {
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;").
			Ldc("hello").
			Invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V").
			Op(bytecode.Return)
	}, 2, 1)
	for _, spec := range jvm.StandardFive() {
		if out := verdictFor(t, f, spec); out != nil {
			t.Errorf("%s: clean main rejected: %v", spec.Name, out)
		}
	}
	checkMirror(t, f)
}

func TestStackOverflowAndUnderflow(t *testing.T) {
	over := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(1).LdcInt(2).LdcInt(3).Op(bytecode.Pop).Op(bytecode.Pop).Op(bytecode.Pop).Op(bytecode.Return)
	}, 2, 1)
	wantErr(t, verdictFor(t, over, jvm.HotSpot9()), jvm.ErrVerify, "overflow")
	checkMirror(t, over)

	under := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 1)
	wantErr(t, verdictFor(t, under, jvm.HotSpot9()), jvm.ErrVerify, "underflow")
	checkMirror(t, under)
}

func TestLocalKindMismatch(t *testing.T) {
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.LdcInt(7).Op(bytecode.Istore1).Op(bytecode.Aload1).Op(bytecode.Pop).Op(bytecode.Return)
	}, 4, 4)
	wantErr(t, verdictFor(t, f, jvm.HotSpot9()), jvm.ErrVerify, "")
	checkMirror(t, f)
}

func TestFallsOffEnd(t *testing.T) {
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Iconst0)
	}, 2, 1)
	wantErr(t, verdictFor(t, f, jvm.HotSpot9()), jvm.ErrVerify, "falls off")
	checkMirror(t, f)
}

func TestBranchIntoMiddleOfInstruction(t *testing.T) {
	// ifeq at pc1 targets pc3, inside its own operand bytes.
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Iconst0).U2(bytecode.Ifeq, 2).Op(bytecode.Return)
	}, 2, 1)
	wantErr(t, verdictFor(t, f, jvm.HotSpot9()), jvm.ErrVerify, "middle of an instruction")
	checkMirror(t, f)
}

func TestUndecodableCode(t *testing.T) {
	f := classfile.New("DF")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{
		MaxStack: 1, MaxLocals: 1, Code: []byte{0xc4}, // truncated wide
	})
	wantErr(t, verdictFor(t, f, jvm.HotSpot9()), jvm.ErrVerify, "")
	checkMirror(t, f)
}

func TestEmptyCodeArray(t *testing.T) {
	f := classfile.New("DF")
	classfile.AttachDefaultInit(f)
	m := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	m.Attributes = append(m.Attributes, &classfile.CodeAttr{MaxStack: 1, MaxLocals: 1})
	wantErr(t, verdictFor(t, f, jvm.HotSpot9()), jvm.ErrClassFormat, "empty code array")
	checkMirror(t, f)
}

// TestUninitMergeDialect exercises the GIJ-only rejection of merging an
// uninitialized object with another reference (Problem 2).
func TestUninitMergeDialect(t *testing.T) {
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		// pc0 iconst_0; pc1 ifeq->10; pc4 new Object; pc7 goto->11;
		// pc10 aconst_null; pc11 pop (join of uninit vs null); pc12 return
		cb.Op(bytecode.Iconst0).
			U2(bytecode.Ifeq, 9).
			New("java/lang/Object").
			U2(bytecode.Goto, 4).
			Op(bytecode.AconstNull).
			Op(bytecode.Pop).
			Op(bytecode.Return)
	}, 1, 1)
	wantErr(t, verdictFor(t, f, jvm.GIJ()), jvm.ErrVerify, "uninitialized")
	if out := verdictFor(t, f, jvm.HotSpot9()); out != nil {
		t.Errorf("HotSpot widens uninit merges, got %v", out)
	}
	checkMirror(t, f)
}

// TestStrictStackShapeDialect exercises J9's "stack shape inconsistent"
// rejection of unrelated reference types merging on the stack.
func TestStrictStackShapeDialect(t *testing.T) {
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		// pc0 iconst_0; pc1 ifeq->9; pc4 ldc "s"; pc6 goto->12;
		// pc9 getstatic System.out; pc12 pop (join String vs PrintStream);
		// pc13 return
		cb.Op(bytecode.Iconst0).
			U2(bytecode.Ifeq, 8).
			Ldc("s").
			U2(bytecode.Goto, 6).
			Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;").
			Op(bytecode.Pop).
			Op(bytecode.Return)
	}, 1, 1)
	wantErr(t, verdictFor(t, f, jvm.J9()), jvm.ErrVerify, "stack shape")
	if out := verdictFor(t, f, jvm.HotSpot9()); out != nil {
		t.Errorf("HotSpot widens to a common super, got %v", out)
	}
	checkMirror(t, f)
}

// TestRefAssignabilityDialect exercises GIJ's declared-type check on
// field stores (the internalTransform cast of Problem 2).
func TestRefAssignabilityDialect(t *testing.T) {
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.Getstatic("java/lang/System", "out", "Ljava/io/PrintStream;").
			Putstatic("DF", "f", "Ljava/lang/String;").
			Op(bytecode.Return)
	}, 1, 1)
	wantErr(t, verdictFor(t, f, jvm.GIJ()), jvm.ErrVerify, "not assignable")
	if out := verdictFor(t, f, jvm.HotSpot9()); out != nil {
		t.Errorf("HotSpot skips declared-type assignability, got %v", out)
	}
	checkMirror(t, f)
}

// TestJsrRetDialect: HotSpot and J9 ban jsr/ret in v51 files; GIJ still
// verifies the subroutine.
func TestJsrRetDialect(t *testing.T) {
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		// pc0 jsr->4; pc3 return; pc4 astore_0; pc5 ret 0
		cb.U2(bytecode.Jsr, 4).
			Op(bytecode.Return).
			Op(bytecode.Astore0).
			U1(bytecode.Ret, 0)
	}, 1, 1)
	wantErr(t, verdictFor(t, f, jvm.HotSpot9()), jvm.ErrVerify, "jsr/ret")
	if out := verdictFor(t, f, jvm.GIJ()); out != nil {
		t.Errorf("GIJ accepts jsr/ret, got %v", out)
	}
	checkMirror(t, f)
}

// TestTypeCheckingStackMap: an undecodable StackMapTable is a
// ClassFormatError under the type-checking presets and ignored by GIJ's
// inference-only verifier.
func TestTypeCheckingStackMap(t *testing.T) {
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Return)
	}, 1, 1)
	m := f.FindMethodExact("main", "([Ljava/lang/String;)V")
	code := m.Code()
	code.Attributes = append(code.Attributes, &classfile.StackMapTableAttr{Raw: []byte{0xff, 0x00}})
	wantErr(t, verdictFor(t, f, jvm.HotSpot9()), jvm.ErrClassFormat, "StackMapTable")
	wantErr(t, verdictFor(t, f, jvm.J9()), jvm.ErrClassFormat, "StackMapTable")
	if out := verdictFor(t, f, jvm.GIJ()); out != nil {
		t.Errorf("GIJ has no type-checking verifier, got %v", out)
	}
	checkMirror(t, f)
}

// TestConstructorMustCallSuper: an <init> that returns with `this`
// still uninitialized is rejected by every preset.
func TestConstructorMustCallSuper(t *testing.T) {
	f := classfile.New("DF")
	m := f.AddMethod(classfile.AccPublic, "<init>", "()V")
	cb := classfile.NewCodeBuilder(f.Pool)
	cb.Op(bytecode.Return).SetMaxStack(1).SetMaxLocals(1)
	m.Attributes = append(m.Attributes, cb.Build())
	for _, spec := range jvm.StandardFive() {
		out := dataflow.VerifyMethod(f, m, &spec.Policy, rtlib.NewEnv(spec.Release))
		if out == nil || out.Error != jvm.ErrVerify || !strings.Contains(out.Message, "super constructor") {
			t.Errorf("%s: want super-constructor VerifyError, got %v", spec.Name, out)
		}
	}
	checkMirror(t, f)
}

// TestUninitializedReceiverCall: calling a method on a `new` result
// before its <init> runs is rejected.
func TestUninitializedReceiverCall(t *testing.T) {
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.New("java/lang/Object").
			Invokevirtual("java/lang/Object", "hashCode", "()I").
			Op(bytecode.Pop).
			Op(bytecode.Return)
	}, 2, 1)
	wantErr(t, verdictFor(t, f, jvm.HotSpot9()), jvm.ErrVerify, "uninitialized")
	checkMirror(t, f)
}

// TestExceptionHandlerEdges: the handler entry state (single throwable
// on the stack) must merge cleanly, and a non-Throwable catch type is a
// VerifyError.
func TestExceptionHandlerEdges(t *testing.T) {
	ok := buildMain(t, func(cb *classfile.CodeBuilder) {
		// pc0 iconst_0; pc1 pop; pc2 return; handler pc3: pop; return
		cb.Op(bytecode.Iconst0).Op(bytecode.Pop).Op(bytecode.Return).
			Op(bytecode.Pop).Op(bytecode.Return).
			Handler(0, 2, 3, "java/lang/Exception")
	}, 1, 1)
	for _, spec := range jvm.StandardFive() {
		if out := verdictFor(t, ok, spec); out != nil {
			t.Errorf("%s: handler class rejected: %v", spec.Name, out)
		}
	}
	checkMirror(t, ok)

	bad := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Iconst0).Op(bytecode.Pop).Op(bytecode.Return).
			Op(bytecode.Pop).Op(bytecode.Return).
			Handler(0, 2, 3, "java/lang/String")
	}, 1, 1)
	wantErr(t, verdictFor(t, bad, jvm.HotSpot9()), jvm.ErrVerify, "non-Throwable")
	checkMirror(t, bad)
}

// TestVerifyClass walks methods in declaration order and reports the
// first failure.
func TestVerifyClass(t *testing.T) {
	f := classfile.New("DF")
	classfile.AttachDefaultInit(f)
	good := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "ok", "()V")
	cbg := classfile.NewCodeBuilder(f.Pool)
	cbg.Op(bytecode.Return).SetMaxStack(1).SetMaxLocals(1)
	good.Attributes = append(good.Attributes, cbg.Build())
	bad := f.AddMethod(classfile.AccPublic|classfile.AccStatic, "bad", "()V")
	cbb := classfile.NewCodeBuilder(f.Pool)
	cbb.Op(bytecode.Pop).Op(bytecode.Return).SetMaxStack(1).SetMaxLocals(1)
	bad.Attributes = append(bad.Attributes, cbb.Build())

	spec := jvm.HotSpot9()
	out := dataflow.VerifyClass(f, &spec.Policy, rtlib.NewEnv(spec.Release))
	if out == nil || out.Error != jvm.ErrVerify || !strings.Contains(out.Message, "bad()V") {
		t.Fatalf("want VerifyError naming bad()V, got %v", out)
	}
}

// TestWideValuesAndLocals covers long/double two-slot handling through
// arithmetic, locals and the invalidation of broken wide pairs.
func TestWideValuesAndLocals(t *testing.T) {
	f := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Lconst1).
			Op(bytecode.Lstore1).
			Op(bytecode.Lload1).
			Op(bytecode.Lconst0).
			Op(bytecode.Ladd).
			Op(bytecode.Pop2).
			Op(bytecode.Return)
	}, 4, 4)
	for _, spec := range jvm.StandardFive() {
		if out := verdictFor(t, f, spec); out != nil {
			t.Errorf("%s: wide-value class rejected: %v", spec.Name, out)
		}
	}
	checkMirror(t, f)

	// Overwriting the second slot of a stored long poisons the first.
	broken := buildMain(t, func(cb *classfile.CodeBuilder) {
		cb.Op(bytecode.Lconst1).
			Op(bytecode.Lstore1).
			Op(bytecode.Iconst0).
			Op(bytecode.Istore2).
			Op(bytecode.Lload1).
			Op(bytecode.Pop2).
			Op(bytecode.Return)
	}, 4, 4)
	wantErr(t, verdictFor(t, broken, jvm.HotSpot9()), jvm.ErrVerify, "")
	checkMirror(t, broken)
}
