package analysis

import (
	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// BadTarget records a control transfer whose destination is not an
// instruction boundary (or lies outside the code array).
type BadTarget struct {
	// From is the instruction index of the branch.
	From int
	// Target is the offending absolute PC.
	Target int
}

// CFG is the per-method control-flow graph shared across passes: the
// decoded instruction list, explicit successor edges, and the
// reachability fixpoint the inference verifier would compute (entry
// instruction plus exception-handler entries of protected ranges that
// contain reachable instructions).
type CFG struct {
	// Code is the attribute the graph was built from.
	Code *classfile.CodeAttr
	// Ins is the decoded instruction sequence.
	Ins []*bytecode.Instruction
	// PCIndex maps a byte PC to its instruction index.
	PCIndex map[int]int
	// Succs lists successor instruction indices (fall-through plus
	// branch/switch targets; exception edges are reconstructed from
	// Code.Handlers during the reachability computation).
	Succs [][]int
	// BadTargets lists branches into the middle of an instruction.
	BadTargets []BadTarget
	// FallsOff lists instruction indices that can fall through past the
	// end of the code array.
	FallsOff []int
	// Reachable marks instructions the verifier's worklist would visit.
	Reachable []bool
}

// NewCFG decodes a Code attribute and builds its graph. The error
// reports undecodable bytecode; all other irregularities (branches to
// non-boundaries, falling off the end) are recorded on the graph for
// passes to report.
func NewCFG(code *classfile.CodeAttr) (*CFG, error) {
	ins, err := bytecode.Decode(code.Code)
	if err != nil {
		return nil, err
	}
	g := &CFG{
		Code:      code,
		Ins:       ins,
		PCIndex:   make(map[int]int, len(ins)),
		Succs:     make([][]int, len(ins)),
		Reachable: make([]bool, len(ins)),
	}
	for i, in := range ins {
		g.PCIndex[in.PC] = i
	}
	for i, in := range ins {
		if !in.Op.EndsBlock() {
			if i+1 < len(ins) {
				g.Succs[i] = append(g.Succs[i], i+1)
			} else {
				g.FallsOff = append(g.FallsOff, i)
			}
		}
		for _, t := range in.Targets() {
			if idx, ok := g.PCIndex[t]; ok {
				g.Succs[i] = append(g.Succs[i], idx)
			} else {
				g.BadTargets = append(g.BadTargets, BadTarget{From: i, Target: t})
			}
		}
	}
	g.computeReachable()
	return g, nil
}

// computeReachable runs the fixpoint: instruction 0 is live, successors
// of live instructions are live, and a handler entry becomes live once
// any instruction of its protected range is live (the exception edges
// the dataflow verifier propagates).
func (g *CFG) computeReachable() {
	if len(g.Ins) == 0 {
		return
	}
	work := []int{0}
	g.Reachable[0] = true
	mark := func(idx int) {
		if idx >= 0 && idx < len(g.Ins) && !g.Reachable[idx] {
			g.Reachable[idx] = true
			work = append(work, idx)
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.Succs[i] {
			mark(s)
		}
		pc := g.Ins[i].PC
		for _, h := range g.Code.Handlers {
			if pc >= int(h.StartPC) && pc < int(h.EndPC) {
				if hidx, ok := g.PCIndex[int(h.HandlerPC)]; ok {
					mark(hidx)
				}
			}
		}
	}
}

// UnreachableCount returns how many instructions the verifier never
// visits.
func (g *CFG) UnreachableCount() int {
	n := 0
	for _, r := range g.Reachable {
		if !r {
			n++
		}
	}
	return n
}
