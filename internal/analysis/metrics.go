package analysis

import "repro/internal/telemetry"

// VerdictCounters tallies a stream of binary static verdicts — oracle
// predictions, prefilter doom checks — into a pair of named telemetry
// counters. The zero value is inert (nil handles make Observe a
// no-op), so attaching can be gated on a registry being present.
type VerdictCounters struct {
	Accept *telemetry.Counter
	Reject *telemetry.Counter
}

// NewVerdictCounters interns "<prefix>.accept" and "<prefix>.reject"
// in reg. A nil registry yields the inert zero value.
func NewVerdictCounters(reg *telemetry.Registry, prefix string) VerdictCounters {
	return VerdictCounters{
		Accept: reg.Counter(prefix + ".accept"),
		Reject: reg.Counter(prefix + ".reject"),
	}
}

// Observe counts one verdict.
func (c VerdictCounters) Observe(rejected bool) {
	if rejected {
		c.Reject.Inc()
	} else {
		c.Accept.Inc()
	}
}
