package analysis

import "repro/internal/telemetry"

// VerdictCounters tallies a stream of binary static verdicts — oracle
// predictions, prefilter doom checks — into a pair of named telemetry
// counters. The zero value is inert (nil handles make Observe a
// no-op), so attaching can be gated on a registry being present.
type VerdictCounters struct {
	Accept *telemetry.Counter
	Reject *telemetry.Counter
}

// NewVerdictCounters interns "<prefix>.accept" and "<prefix>.reject"
// in reg. A nil registry yields the inert zero value.
func NewVerdictCounters(reg *telemetry.Registry, prefix string) VerdictCounters {
	return VerdictCounters{
		Accept: reg.Counter(prefix + ".accept"),
		Reject: reg.Counter(prefix + ".reject"),
	}
}

// Observe counts one verdict.
func (c VerdictCounters) Observe(rejected bool) {
	if rejected {
		c.Reject.Inc()
	} else {
		c.Accept.Inc()
	}
}

// DataflowCounters tallies the dataflow verify band's per-class claims
// under the canonical analysis.dataflow.* names: Definite is a
// definite claim that loading and linking (§4.10 verification
// included) succeed, Reject a definite claim they do not, Unknown a
// class the band saw but could not analyze (unparseable bytes). Like
// VerdictCounters, the zero value is inert.
type DataflowCounters struct {
	Definite *telemetry.Counter // analysis.dataflow.definite
	Unknown  *telemetry.Counter // analysis.dataflow.unknown
	Reject   *telemetry.Counter // analysis.dataflow.reject
}

// NewDataflowCounters interns the analysis.dataflow.* counters in reg.
// A nil registry yields the inert zero value.
func NewDataflowCounters(reg *telemetry.Registry) DataflowCounters {
	return DataflowCounters{
		Definite: reg.Counter("analysis.dataflow.definite"),
		Unknown:  reg.Counter("analysis.dataflow.unknown"),
		Reject:   reg.Counter("analysis.dataflow.reject"),
	}
}
