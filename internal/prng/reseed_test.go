package prng

import "testing"

func TestReseedMatchesDerive(t *testing.T) {
	r := Derive(0, 0, 0)
	for i := uint64(0); i < 20; i++ {
		Reseed(r, 7, 0xD4A7_0002, i)
		fresh := Derive(7, 0xD4A7_0002, i)
		for j := 0; j < 50; j++ {
			if r.Int63() != fresh.Int63() {
				t.Fatalf("Reseed diverged from Derive at index %d draw %d", i, j)
			}
		}
	}
}
