// Package prng provides the splittable pseudo-random-number discipline
// shared by the campaign engine and the seed generator: a SplitMix64
// mixer that turns (seed, stream, index) triples into statistically
// independent *rand.Rand streams. Deriving one stream per iteration —
// instead of threading a single shared generator through every stage —
// is what makes campaign iterations independently replayable and lets
// the engine run them out of order on a worker pool without perturbing
// the random sequence any iteration observes.
package prng

import "math/rand"

// SplitMix64 is Steele, Lea & Flood's 64-bit finalizer (the generator
// behind Java's SplittableRandom). It is bijective, so distinct inputs
// never collide, and its avalanche behaviour makes sequential indices
// yield decorrelated outputs.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Mix folds a stream label and an index into a seed, chaining two
// SplitMix64 rounds so that neighbouring (stream, index) pairs land far
// apart in seed space.
func Mix(seed int64, stream, index uint64) int64 {
	h := SplitMix64(uint64(seed) ^ stream)
	h = SplitMix64(h + index)
	return int64(h)
}

// source is the rand.Source64 behind Derive: the SplitMix64 sequence
// itself (state walks the golden-gamma progression, each output is the
// finalizer of the new state — exactly Java SplittableRandom's
// nextLong). Two properties matter here:
//
//   - Seeding is O(1) — it just stores the state word. The stdlib
//     rand.NewSource is an additive lagged-Fibonacci generator whose
//     Seed runs ~1.8k LCG steps to fill a 607-word table; with one
//     fresh stream per campaign iteration that seeding dominated the
//     whole engine (≈37% of campaign CPU), while a typical iteration
//     draws only a handful of values from the stream.
//   - The sequence is defined entirely by this file — plain uint64
//     arithmetic, no stdlib internals — so recorded campaigns replay
//     bit-identically on any Go release or platform.
type source struct{ state uint64 }

func (s *source) Seed(seed int64) { s.state = uint64(seed) }

func (s *source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Derive builds an independent generator for (seed, stream, index).
// The returned *rand.Rand draws from the in-package SplitMix64 source,
// so derived streams are stable across Go releases and platforms (the
// rand.Rand distribution methods on top of a Source are pure functions
// covered by the Go 1 compatibility promise).
func Derive(seed int64, stream, index uint64) *rand.Rand {
	return rand.New(&source{state: uint64(Mix(seed, stream, index))})
}

// Reseed re-derives r in place to the (seed, stream, index) stream —
// the zero-allocation twin of Derive for hot paths that keep one
// *rand.Rand per worker. After Reseed(r, ...) the generator emits
// exactly the sequence Derive(...) would: Seed fully resets the source
// state and the generator's internal read buffer. r must have been
// created by Derive (i.e. be backed by this package's source).
func Reseed(r *rand.Rand, seed int64, stream, index uint64) {
	r.Seed(Mix(seed, stream, index))
}
