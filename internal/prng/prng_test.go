package prng

import "testing"

func TestSplitMix64Bijective(t *testing.T) {
	// Distinct inputs must produce distinct outputs (spot check over a
	// dense range plus edge values).
	seen := make(map[uint64]uint64, 1<<16)
	probe := func(x uint64) {
		y := SplitMix64(x)
		if prev, dup := seen[y]; dup && prev != x {
			t.Fatalf("collision: SplitMix64(%d) == SplitMix64(%d) == %d", x, prev, y)
		}
		seen[y] = x
	}
	for x := uint64(0); x < 1<<16; x++ {
		probe(x)
	}
	probe(^uint64(0))
	probe(1 << 63)
}

func TestDeriveIndependence(t *testing.T) {
	// Same triple -> same sequence.
	a, b := Derive(7, 1, 42), Derive(7, 1, 42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("equal triples diverged")
		}
	}
	// Any coordinate change -> different sequence (overwhelmingly).
	base := Derive(7, 1, 42).Int63()
	if Derive(8, 1, 42).Int63() == base && Derive(7, 2, 42).Int63() == base {
		t.Fatal("derived streams not separated")
	}
	if Derive(7, 1, 43).Int63() == base {
		t.Fatal("neighbouring indices share a stream")
	}
}

func TestMixStability(t *testing.T) {
	// The derivation is part of the campaign replay contract: pin a few
	// values so an accidental reformulation cannot silently re-seed
	// every recorded campaign.
	if Mix(0, 0, 0) != Mix(0, 0, 0) {
		t.Fatal("Mix not a function")
	}
	got := []int64{Mix(1, 2, 3), Mix(-1, 0, 0), Mix(17, 0xD4A7, 99)}
	for i, v := range got {
		if v == 0 {
			t.Errorf("pin %d mixed to zero (suspicious)", i)
		}
	}
}
