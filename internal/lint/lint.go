// Package lint is the engine's determinism linter: a stdlib go/ast
// static analysis that flags the three source-level constructs which
// historically break the campaign/difftest reproducibility contract —
// wall-clock reads, the process-global math/rand stream, and emissions
// ordered by a map iteration. The engine's results must be a pure
// function of (seed, config), so these constructs are allowed only on
// reporting paths and only under an explicit waiver comment:
//
//	start := time.Now() //detlint:ok elapsed-time reporting only
//
// The waiver (`//detlint:ok <reason>`) may trail the flagged line or
// stand alone on the line above it; the reason is mandatory.
//
// Rules:
//
//   - time-now: calls to time.Now, time.Since or time.Until. Wall
//     time may label a result but must never steer a decision.
//   - rand-global: calls through math/rand's package-level functions
//     (rand.Intn, rand.Seed, ...), which share one process-global
//     stream seeded behind the engine's back. Constructing explicit
//     streams (rand.New, rand.NewSource) is the sanctioned idiom.
//   - map-range-emission: a `range` over a map whose body emits in
//     iteration order — appending to a slice, printing, writing, or
//     sending — making the artifact depend on Go's randomized map
//     order. Commutative folds (numeric `x += ...`, map writes,
//     counter bumps) are fine, and an append escapes the rule when a
//     later statement in the same block sorts the target slice.
//
// The linter is deliberately syntactic (go/types would need the whole
// build graph); it resolves just enough package-local type structure —
// named types, struct fields, var declarations, make/literal
// assignments, params and receivers — to tell maps from slices, and
// stays silent when it cannot tell: false negatives over false alarms.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strconv"
	"strings"
)

// Finding is one determinism violation.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Dir lints every non-test .go file in one package directory.
func Dir(path string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, path, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range pkgs {
		files := make([]*ast.File, 0, len(pkg.Files))
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names) // deterministic finding order
		for _, name := range names {
			files = append(files, pkg.Files[name])
		}
		all = append(all, Files(fset, files)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		return all[i].Pos.Line < all[j].Pos.Line
	})
	return all, nil
}

// Files lints one package's parsed files (comments must be attached
// for waivers to work).
func Files(fset *token.FileSet, files []*ast.File) []Finding {
	p := &pkg{fset: fset, types: map[string]ast.Expr{}, fields: map[string]ast.Expr{}}
	for _, f := range files {
		p.collect(f)
	}
	var out []Finding
	for _, f := range files {
		out = append(out, p.lintFile(f)...)
	}
	return out
}

// pkg holds the package-local type structure the map detector needs.
type pkg struct {
	fset *token.FileSet
	// types maps a package-level type name to its underlying syntax.
	types map[string]ast.Expr
	// fields maps a struct field name to its declared type. Field names
	// are pooled across all package structs — collisions can only make
	// the detector wrong about which map it found, not whether ranging
	// a non-map (the resolver still requires an actual MapType).
	fields map[string]ast.Expr
}

func (p *pkg) collect(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.TypeSpec:
			p.types[d.Name.Name] = d.Type
		case *ast.StructType:
			if d.Fields == nil {
				return true
			}
			for _, fl := range d.Fields.List {
				for _, name := range fl.Names {
					p.fields[name.Name] = fl.Type
				}
			}
		}
		return true
	})
}

// waived reports whether a `//detlint:ok <reason>` comment covers the
// given line (trailing it or alone on the line above).
func (p *pkg) waived(f *ast.File, line int) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "detlint:ok") {
				continue
			}
			if strings.TrimSpace(strings.TrimPrefix(text, "detlint:ok")) == "" {
				continue // a bare waiver with no reason does not count
			}
			cl := p.fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

func (p *pkg) lintFile(f *ast.File) []Finding {
	timeName, timeImported := importName(f, "time")
	randName, randImported := importName(f, "math/rand")
	var out []Finding
	report := func(pos token.Pos, rule, msg string) {
		position := p.fset.Position(pos)
		if p.waived(f, position.Line) {
			return
		}
		out = append(out, Finding{Pos: position, Rule: rule, Message: msg})
	}

	// File-scope scan for clock and global-RNG calls.
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Obj != nil { // Obj != nil: a local shadows the package
			return true
		}
		switch {
		case timeImported && base.Name == timeName:
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
				report(call.Pos(), "time-now",
					fmt.Sprintf("wall-clock read time.%s in engine code (waive reporting-only uses with //detlint:ok <reason>)", sel.Sel.Name))
			}
		case randImported && base.Name == randName:
			switch sel.Sel.Name {
			case "New", "NewSource", "NewZipf":
				// constructing an explicit stream: the sanctioned idiom
			default:
				report(call.Pos(), "rand-global",
					fmt.Sprintf("rand.%s uses the process-global math/rand stream; derive an explicit *rand.Rand instead", sel.Sel.Name))
			}
		}
		return true
	})

	// Map-range emissions, function by function so local declarations
	// are in scope.
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		sc := p.newScope(fd)
		p.lintBlock(f, fd.Body.List, sc, report)
	}
	return out
}

// importName resolves the local name of an import path in one file.
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		ip, err := strconv.Unquote(imp.Path.Value)
		if err != nil || ip != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		return ip[strings.LastIndex(ip, "/")+1:], true
	}
	return "", false
}

// scope is a flat name → declared-type-syntax table. Go shadowing is
// approximated by later writes winning; good enough to tell a map from
// everything else.
type scope map[string]ast.Expr

func (p *pkg) newScope(fd *ast.FuncDecl) scope {
	sc := scope{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				sc[name.Name] = field.Type
			}
		}
	}
	addFields(fd.Recv)
	if fd.Type != nil {
		addFields(fd.Type.Params)
		addFields(fd.Type.Results)
	}
	return sc
}

// lintBlock walks one statement list, tracking declarations and
// checking each range statement, recursing into nested blocks.
func (p *pkg) lintBlock(f *ast.File, stmts []ast.Stmt, sc scope, report func(token.Pos, string, string)) {
	for i, st := range stmts {
		p.track(st, sc)
		switch s := st.(type) {
		case *ast.RangeStmt:
			if p.isMapExpr(s.X, sc) {
				p.checkMapRange(f, s, stmts[i+1:], sc, report)
			}
			if s.Body != nil {
				p.lintBlock(f, s.Body.List, sc, report)
			}
		case *ast.BlockStmt:
			p.lintBlock(f, s.List, sc, report)
		case *ast.IfStmt:
			p.track(s.Init, sc)
			if s.Body != nil {
				p.lintBlock(f, s.Body.List, sc, report)
			}
			if s.Else != nil {
				p.lintBlock(f, []ast.Stmt{s.Else}, sc, report)
			}
		case *ast.ForStmt:
			p.track(s.Init, sc)
			if s.Body != nil {
				p.lintBlock(f, s.Body.List, sc, report)
			}
		case *ast.SwitchStmt:
			p.track(s.Init, sc)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					p.lintBlock(f, cc.Body, sc, report)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					p.lintBlock(f, cc.Body, sc, report)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					p.lintBlock(f, cc.Body, sc, report)
				}
			}
		case *ast.LabeledStmt:
			p.lintBlock(f, []ast.Stmt{s.Stmt}, sc, report)
		case *ast.GoStmt, *ast.DeferStmt:
			// function literals inside are reached by the file scan for
			// clock/rand; map ranges inside literals are rare enough to
			// leave to review
		}
	}
}

// track records type information a statement introduces.
func (p *pkg) track(st ast.Stmt, sc scope) {
	switch s := st.(type) {
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				switch {
				case vs.Type != nil:
					sc[name.Name] = vs.Type
				case i < len(vs.Values):
					if t := exprTypeSyntax(vs.Values[i]); t != nil {
						sc[name.Name] = t
					}
				}
			}
		}
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return
		}
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if t := exprTypeSyntax(s.Rhs[i]); t != nil {
				sc[id.Name] = t
			}
		}
	}
}

// exprTypeSyntax extracts a type from the handful of expression forms
// whose type is written in the source: make(T, ...), T{...}, &T{...},
// and conversions to composite types.
func exprTypeSyntax(e ast.Expr) ast.Expr {
	switch v := e.(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			return v.Args[0]
		}
	case *ast.CompositeLit:
		return v.Type
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if cl, ok := v.X.(*ast.CompositeLit); ok {
				return cl.Type
			}
		}
	}
	return nil
}

// isMapExpr reports whether the package-local evidence proves e has a
// map type. Unresolvable expressions are not maps (stay silent).
func (p *pkg) isMapExpr(e ast.Expr, sc scope) bool {
	_, ok := p.underlying(p.typeOf(e, sc)).(*ast.MapType)
	return ok
}

// typeOf resolves an expression to its declared type syntax, nil when
// unknown.
func (p *pkg) typeOf(e ast.Expr, sc scope) ast.Expr {
	switch v := e.(type) {
	case *ast.Ident:
		return sc[v.Name]
	case *ast.SelectorExpr:
		// A field access: any package struct declaring the field name
		// supplies the type (see pkg.fields).
		return p.fields[v.Sel.Name]
	case *ast.IndexExpr:
		switch t := p.underlying(p.typeOf(v.X, sc)).(type) {
		case *ast.MapType:
			return t.Value
		case *ast.ArrayType:
			return t.Elt
		}
	case *ast.ParenExpr:
		return p.typeOf(v.X, sc)
	case *ast.StarExpr:
		return p.typeOf(v.X, sc)
	}
	return nil
}

// underlying peels package-local named types and pointers down to
// structural syntax.
func (p *pkg) underlying(t ast.Expr) ast.Expr {
	for i := 0; i < 8 && t != nil; i++ {
		switch v := t.(type) {
		case *ast.Ident:
			next, ok := p.types[v.Name]
			if !ok {
				return t
			}
			t = next
		case *ast.StarExpr:
			t = v.X
		case *ast.ParenExpr:
			t = v.X
		default:
			return t
		}
	}
	return t
}

// checkMapRange flags ordered emissions inside a map-range body,
// honoring the sort escape for appends.
func (p *pkg) checkMapRange(f *ast.File, rs *ast.RangeStmt, rest []ast.Stmt, sc scope, report func(token.Pos, string, string)) {
	if rs.Body == nil {
		return
	}
	type emission struct {
		pos    token.Pos
		what   string
		target string // appended-to identifier, "" otherwise
	}
	var ems []emission
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			ems = append(ems, emission{v.Pos(), "channel send", ""})
		case *ast.AssignStmt:
			// x = append(x, ...) — ordered growth of a slice.
			for i, rhs := range v.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				target := ""
				if i < len(v.Lhs) {
					if id, ok := v.Lhs[i].(*ast.Ident); ok {
						target = id.Name
					}
				}
				ems = append(ems, emission{call.Pos(), "append", target})
			}
			// s += expr on a string is ordered concatenation; numeric
			// folds are commutative and fine.
			if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 {
				if id, ok := v.Lhs[0].(*ast.Ident); ok {
					if t, ok := p.underlying(p.typeOf(id, sc)).(*ast.Ident); ok && t.Name == "string" {
						ems = append(ems, emission{v.Pos(), "string concatenation", ""})
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
					strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Emit") {
					ems = append(ems, emission{v.Pos(), "call to " + name, ""})
				}
			}
		}
		return true
	})

	for _, em := range ems {
		if em.target != "" && sortedAfter(em.target, rest) {
			continue // append target is sorted after the loop
		}
		report(em.pos, "map-range-emission",
			fmt.Sprintf("%s inside a map range emits in Go's randomized iteration order; sort the keys first or sort the result", em.what))
	}
}

// sortedAfter reports whether a later statement in the same block
// passes the named slice to a sort.* call.
func sortedAfter(target string, rest []ast.Stmt) bool {
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok || (base.Name != "sort" && base.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && id.Name == target {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
