package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// lintSrc parses one source fragment as a package and returns the
// findings.
func lintSrc(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Files(fset, []*ast.File{f})
}

func wantRules(t *testing.T, got []Finding, rules ...string) {
	t.Helper()
	if len(got) != len(rules) {
		t.Fatalf("got %d finding(s) %v, want rules %v", len(got), got, rules)
	}
	for i, r := range rules {
		if got[i].Rule != r {
			t.Errorf("finding %d: rule %q, want %q (%s)", i, got[i].Rule, r, got[i])
		}
	}
}

func TestTimeNow(t *testing.T) {
	src := `package p
import "time"
func f() time.Duration {
	start := time.Now()
	return time.Since(start)
}`
	wantRules(t, lintSrc(t, src), "time-now", "time-now")
}

func TestTimeNowWaived(t *testing.T) {
	src := `package p
import "time"
func f() time.Time {
	//detlint:ok timestamping the report only
	a := time.Now()
	b := time.Now() //detlint:ok trailing waiver
	_ = a
	return b
}`
	wantRules(t, lintSrc(t, src))
}

func TestBareWaiverDoesNotCount(t *testing.T) {
	src := `package p
import "time"
func f() time.Time {
	return time.Now() //detlint:ok
}`
	wantRules(t, lintSrc(t, src), "time-now")
}

func TestRandGlobal(t *testing.T) {
	src := `package p
import "math/rand"
func f() int {
	r := rand.New(rand.NewSource(1)) // explicit stream: sanctioned
	return r.Intn(10) + rand.Intn(10)
}`
	got := lintSrc(t, src)
	wantRules(t, got, "rand-global")
	if !strings.Contains(got[0].Message, "rand.Intn") {
		t.Errorf("message %q does not name the call", got[0].Message)
	}
}

func TestMapRangeAppend(t *testing.T) {
	src := `package p
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`
	wantRules(t, lintSrc(t, src), "map-range-emission")
}

func TestMapRangeAppendSortedAfter(t *testing.T) {
	src := `package p
import "sort"
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}`
	wantRules(t, lintSrc(t, src))
}

func TestMapRangeNumericFold(t *testing.T) {
	src := `package p
func f(m map[string][]int) int {
	n := 0
	for _, v := range m {
		n += len(v)
	}
	return n
}`
	wantRules(t, lintSrc(t, src))
}

func TestMapRangeStringConcat(t *testing.T) {
	src := `package p
func f(m map[string]int) string {
	var s string
	for k := range m {
		s += k
	}
	return s
}`
	wantRules(t, lintSrc(t, src), "map-range-emission")
}

func TestMapRangePrint(t *testing.T) {
	src := `package p
import "fmt"
func f(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}`
	wantRules(t, lintSrc(t, src), "map-range-emission")
}

func TestSliceRangeIsFine(t *testing.T) {
	src := `package p
type Multi []func()
func f(m Multi, s []string) []string {
	var out []string
	for _, g := range m {
		g()
	}
	for _, v := range s {
		out = append(out, v)
	}
	return out
}`
	wantRules(t, lintSrc(t, src))
}

func TestNamedMapAndFieldMap(t *testing.T) {
	src := `package p
type set map[string]bool
type box struct{ items map[int]string }
func f(s set, b *box) []string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	for _, v := range b.items {
		out = append(out, v)
	}
	return out
}`
	wantRules(t, lintSrc(t, src), "map-range-emission", "map-range-emission")
}

func TestMapIndexedValueIsNotMap(t *testing.T) {
	// Ranging the *value* of a map-of-slices lookup is slice order.
	src := `package p
func f(m map[string][]string) []string {
	var out []string
	for _, v := range m["k"] {
		out = append(out, v)
	}
	return out
}`
	wantRules(t, lintSrc(t, src))
}

func TestMakeAndLiteralMaps(t *testing.T) {
	src := `package p
func f() []int {
	a := make(map[int]int)
	b := map[string]int{"x": 1}
	var out []int
	for k := range a {
		out = append(out, k)
	}
	for _, v := range b {
		out = append(out, v)
	}
	return out
}`
	wantRules(t, lintSrc(t, src), "map-range-emission", "map-range-emission")
}

// TestEnginePackagesClean pins the satellite's acceptance bar: the
// deterministic-engine packages lint clean (their reporting-only clock
// reads carry waivers).
func TestEnginePackagesClean(t *testing.T) {
	for _, dir := range []string{
		"../campaign", "../prng", "../coverage", "../difftest", "../mcmc",
	} {
		findings, err := Dir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
