package seedsel

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/coverage"
	"repro/internal/jimple"
	"repro/internal/jvm"
	"repro/internal/telemetry"
)

// seedInfo is one corpus entry's classification inputs: the structural
// fingerprint of its lowered classfile and its baseline coverage trace
// on the reference VM (both zero/empty for an unlowerable seed).
type seedInfo struct {
	fp    uint64
	key   coverage.Key
	trace *coverage.Trace
}

// cluster is one scheduling unit: a distilled representative coverage
// set and every pool entry assigned to it.
type cluster struct {
	// fp and trace identify the representative group the greedy
	// distillation picked; trace is what newcomers' overlap is measured
	// against.
	fp    uint64
	trace *coverage.Trace
	// members are the pool indices currently assigned here: base seeds
	// at construction, recycled mutants via Grew, submitted seeds via
	// AddSeed.
	members []int
	// seedCount is how many initial-corpus seeds landed here (members
	// grows past it as the pool recycles mutants).
	seedCount int

	draws     int64
	yield     int64
	demotions int64
	since     int // observed draws since the last accepted mutant
	demoted   bool

	telDraws *telemetry.Counter
	telYield *telemetry.Counter
	telDem   *telemetry.Counter
}

// Scheduler is the stateful SeedSource: it owns the corpus, the
// cluster structure, and the per-cluster yield statistics the draw
// policy feeds on. One Scheduler serves exactly one engine run (or, in
// the daemon, one manager's intake index); construct a fresh one per
// Resume so restore can replay the committed prefix into it.
type Scheduler struct {
	strategy    Strategy
	eps         float64
	demoteAfter int

	seeds    []*jimple.Class
	infos    []seedInfo
	clusters []*cluster
	// assign maps every pool index (initial seed or recycled mutant) to
	// its cluster. Grew extends it in commit order.
	assign []int

	telDraws *telemetry.Counter
	telYield *telemetry.Counter
	telDem   *telemetry.Counter

	// classification VM, kept for AddSeed (daemon intake).
	vm  *jvm.VM
	rec *coverage.Recorder
}

// New builds a scheduler over the seed corpus: it lowers and executes
// every seed once on opts.RefSpec to record fingerprints and baseline
// traces, distils the corpus into clusters, and readies the draw
// policy. Construction is deterministic — same corpus and options,
// same clustering.
func New(seeds []*jimple.Class, opts Options) (*Scheduler, error) {
	if opts.Strategy != Clustered && opts.Strategy != Yield {
		return nil, fmt.Errorf("seedsel: strategy %q has no scheduler (uniform is campaign.FlatSeeds)", opts.Strategy)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("seedsel: empty seed corpus")
	}
	base := opts.Base
	if base <= 0 || base > len(seeds) {
		base = len(seeds)
	}
	s := &Scheduler{
		strategy:    opts.Strategy,
		eps:         opts.epsilon(),
		demoteAfter: opts.demoteAfter(),
		seeds:       seeds,
		vm:          jvm.New(opts.RefSpec),
		rec:         coverage.NewRecorder(jvm.ProbeRegistry()),
	}
	s.vm.SetRecorder(s.rec)

	s.infos = make([]seedInfo, len(seeds))
	for i, sd := range seeds {
		s.infos[i] = s.classifyInputs(sd)
	}
	s.cluster(base)

	if opts.Telemetry != nil {
		reg := opts.Telemetry
		s.telDraws = reg.Counter("campaign.seeds.draws")
		s.telYield = reg.Counter("campaign.seeds.yield")
		s.telDem = reg.Counter("campaign.seeds.demotions")
		for i, c := range s.clusters {
			pfx := fmt.Sprintf("campaign.seeds.cluster%d.", i)
			c.telDraws = reg.Counter(pfx + "draws")
			c.telYield = reg.Counter(pfx + "yield")
			c.telDem = reg.Counter(pfx + "demotions")
		}
	}
	return s, nil
}

// classifyInputs lowers one class and records its structural
// fingerprint and baseline trace (zero values if it does not lower).
func (s *Scheduler) classifyInputs(c *jimple.Class) seedInfo {
	f, err := jimple.Lower(c)
	if err != nil {
		return seedInfo{trace: coverage.NewTrace()}
	}
	data, err := f.Bytes()
	if err != nil {
		return seedInfo{trace: coverage.NewTrace()}
	}
	s.rec.Reset()
	s.vm.Run(data)
	tr := s.rec.Trace()
	return seedInfo{fp: analysis.Fingerprint(f), key: tr.Key(), trace: tr}
}

// cluster distils seeds[:base] into representative coverage sets and
// assigns every seed to one.
//
// Groups form over the base prefix by structural fingerprint (first-
// occurrence order); each group's trace is the word-OR of its members'
// baselines. Greedy distillation then repeatedly picks the group with
// the largest marginal coverage gain over the running union (ties to
// the lowest group index) until no group adds anything — those picks,
// in pick order, are the clusters. Every seed (base or later) joins
// the cluster whose representative trace it overlaps most, ties to the
// lowest cluster; a seed fingerprint-equal to a representative group
// short-circuits to that cluster.
func (s *Scheduler) cluster(base int) {
	type group struct {
		fp    uint64
		trace *coverage.Trace
	}
	var groups []group
	groupIdx := map[uint64]int{}
	for i := 0; i < base; i++ {
		in := s.infos[i]
		gi, ok := groupIdx[in.fp]
		if !ok {
			gi = len(groups)
			groupIdx[in.fp] = gi
			groups = append(groups, group{fp: in.fp, trace: coverage.NewTrace()})
		}
		groups[gi].trace = coverage.Merge(groups[gi].trace, in.trace)
	}

	union := coverage.NewTrace()
	picked := make([]bool, len(groups))
	for {
		best, bestGain := -1, 0
		for gi, g := range groups {
			if picked[gi] {
				continue
			}
			if gain := g.trace.GainOver(union); gain > bestGain {
				best, bestGain = gi, gain
			}
		}
		if best < 0 {
			break
		}
		picked[best] = true
		union = coverage.Merge(union, groups[best].trace)
		s.clusters = append(s.clusters, &cluster{fp: groups[best].fp, trace: groups[best].trace})
	}
	if len(s.clusters) == 0 {
		// Degenerate corpus (nothing lowers / empty traces): one
		// cluster holding everything keeps the policy total.
		s.clusters = append(s.clusters, &cluster{trace: coverage.NewTrace()})
	}

	s.assign = make([]int, 0, len(s.seeds))
	for i := range s.seeds {
		ci := s.classify(s.infos[i])
		s.assign = append(s.assign, ci)
		c := s.clusters[ci]
		c.members = append(c.members, i)
		c.seedCount++
	}
}

// classify maps classification inputs to a cluster index.
func (s *Scheduler) classify(in seedInfo) int {
	best, bestOverlap := 0, -1
	for ci, c := range s.clusters {
		if in.fp != 0 && in.fp == c.fp {
			return ci
		}
		if ov := in.trace.OverlapCount(c.trace); ov > bestOverlap {
			best, bestOverlap = ci, ov
		}
	}
	return best
}

// Strategy implements campaign.SeedSource.
func (s *Scheduler) Strategy() string { return string(s.strategy) }

// Corpus implements campaign.SeedSource.
func (s *Scheduler) Corpus() []*jimple.Class { return s.seeds }

// weight is a cluster's unnormalised draw mass.
func (s *Scheduler) weight(c *cluster) float64 {
	if len(c.members) == 0 {
		return 0
	}
	if s.strategy == Clustered {
		return 1
	}
	// Laplace-smoothed acceptance yield: unexplored clusters start at
	// weight 1 (optimism), productive ones rise, stagnant ones decay —
	// and a demoted cluster runs at quarter mass until it yields again.
	w := float64(c.yield+1) / float64(c.draws+1)
	if c.demoted {
		w *= 0.25
	}
	return w
}

// Pick implements campaign.SeedSource: an epsilon-floor uniform draw,
// else a yield/diversity-weighted cluster pick followed by a uniform
// member pick. Consumes only rng.
func (s *Scheduler) Pick(rng *rand.Rand, n int) int {
	if n != len(s.assign) {
		panic(fmt.Sprintf("seedsel: pool size %d, scheduler tracks %d (Grew not mirrored?)", n, len(s.assign)))
	}
	if s.eps > 0 && rng.Float64() < s.eps {
		return rng.Intn(n)
	}
	total := 0.0
	for _, c := range s.clusters {
		total += s.weight(c)
	}
	if total <= 0 {
		return rng.Intn(n)
	}
	r := rng.Float64() * total
	last := -1
	for ci, c := range s.clusters {
		w := s.weight(c)
		if w <= 0 {
			continue
		}
		last = ci
		if r < w {
			break
		}
		r -= w
	}
	m := s.clusters[last].members
	return m[rng.Intn(len(m))]
}

// Observe implements campaign.SeedSource: commit-order outcome
// feedback for the drawn pool entry's cluster.
func (s *Scheduler) Observe(poolIndex int, generated, accepted bool) {
	c := s.clusters[s.assign[poolIndex]]
	c.draws++
	c.telDraws.Inc()
	s.telDraws.Inc()
	if accepted {
		c.yield++
		c.since = 0
		c.demoted = false
		c.telYield.Inc()
		s.telYield.Inc()
		return
	}
	c.since++
	if !c.demoted && s.demoteAfter > 0 && c.since >= s.demoteAfter {
		c.demoted = true
		c.demotions++
		c.telDem.Inc()
		s.telDem.Inc()
	}
}

// Grew implements campaign.SeedSource: a recycled mutant joins its
// parent's cluster.
func (s *Scheduler) Grew(poolIndex, parent int) {
	if poolIndex != len(s.assign) {
		panic(fmt.Sprintf("seedsel: pool grew to index %d, scheduler tracks %d", poolIndex, len(s.assign)))
	}
	ci := s.assign[parent]
	s.assign = append(s.assign, ci)
	s.clusters[ci].members = append(s.clusters[ci].members, poolIndex)
}

// schedState is the deterministic checkpoint encoding of a scheduler's
// evolving state. Cluster structure and membership are re-derivable
// (construction is deterministic, Grew replays from the draw log), so
// the encoding carries the counters plus the assignment vector as an
// integrity cross-check.
type schedState struct {
	Strategy    string         `json:"strategy"`
	Epsilon     float64        `json:"epsilon"`
	DemoteAfter int            `json:"demote_after"`
	Clusters    []clusterState `json:"clusters"`
	Assign      []int          `json:"assign"`
}

type clusterState struct {
	Members   int   `json:"members"`
	Draws     int64 `json:"draws"`
	Yield     int64 `json:"yield,omitempty"`
	Demotions int64 `json:"demotions,omitempty"`
	Since     int   `json:"since,omitempty"`
	Demoted   bool  `json:"demoted,omitempty"`
}

// MarshalState implements campaign.SeedSource.
func (s *Scheduler) MarshalState() ([]byte, error) {
	st := schedState{
		Strategy:    string(s.strategy),
		Epsilon:     s.eps,
		DemoteAfter: s.demoteAfter,
		Clusters:    make([]clusterState, len(s.clusters)),
		Assign:      s.assign,
	}
	for i, c := range s.clusters {
		st.Clusters[i] = clusterState{
			Members:   len(c.members),
			Draws:     c.draws,
			Yield:     c.yield,
			Demotions: c.demotions,
			Since:     c.since,
			Demoted:   c.demoted,
		}
	}
	return json.Marshal(st)
}

// SeedClass describes one classified seed for intake reporting.
type SeedClass struct {
	// Fingerprint is the structural fingerprint of the lowered
	// classfile (0 if the seed does not lower).
	Fingerprint uint64 `json:"fingerprint"`
	// TraceKeyHi/Lo are the 128-bit baseline-trace set key.
	TraceKeyHi uint64 `json:"trace_key_hi"`
	TraceKeyLo uint64 `json:"trace_key_lo"`
	// Cluster is the assigned cluster index.
	Cluster int `json:"cluster"`
}

// AddSeed classifies a new seed into the existing cluster structure
// and appends it to the corpus — the daemon's intake path. Cluster
// identities never change: the newcomer joins the best-overlapping
// existing cluster. Not for use mid-engine-run (the engine's pool
// indexes the corpus it started with).
func (s *Scheduler) AddSeed(c *jimple.Class) SeedClass {
	in := s.classifyInputs(c)
	ci := s.classify(in)
	idx := len(s.seeds)
	s.seeds = append(s.seeds, c)
	s.infos = append(s.infos, in)
	s.assign = append(s.assign, ci)
	cl := s.clusters[ci]
	cl.members = append(cl.members, idx)
	cl.seedCount++
	return SeedClass{Fingerprint: in.fp, TraceKeyHi: in.key.Hi, TraceKeyLo: in.key.Lo, Cluster: ci}
}

// Classify reports where AddSeed would place the class, without
// mutating the scheduler.
func (s *Scheduler) Classify(c *jimple.Class) SeedClass {
	in := s.classifyInputs(c)
	ci := s.classify(in)
	return SeedClass{Fingerprint: in.fp, TraceKeyHi: in.key.Hi, TraceKeyLo: in.key.Lo, Cluster: ci}
}

// ClusterStat is one cluster's reporting row.
type ClusterStat struct {
	Cluster   int   `json:"cluster"`
	Seeds     int   `json:"seeds"`
	Pool      int   `json:"pool"`
	Draws     int64 `json:"draws"`
	Yield     int64 `json:"yield"`
	Demotions int64 `json:"demotions"`
	Demoted   bool  `json:"demoted"`
}

// ClusterStats snapshots the per-cluster table (counts, yield,
// demotion flags) for status endpoints and reports.
func (s *Scheduler) ClusterStats() []ClusterStat {
	out := make([]ClusterStat, len(s.clusters))
	for i, c := range s.clusters {
		out[i] = ClusterStat{
			Cluster:   i,
			Seeds:     c.seedCount,
			Pool:      len(c.members),
			Draws:     c.draws,
			Yield:     c.yield,
			Demotions: c.demotions,
			Demoted:   c.demoted,
		}
	}
	return out
}

// Clusters returns the cluster count.
func (s *Scheduler) Clusters() int { return len(s.clusters) }

// ClusterOf reports the cluster a pool index is assigned to (-1 if the
// index is outside the tracked pool).
func (s *Scheduler) ClusterOf(poolIndex int) int {
	if poolIndex < 0 || poolIndex >= len(s.assign) {
		return -1
	}
	return s.assign[poolIndex]
}
