package seedsel

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/jvm"
	"repro/internal/seedgen"
	"repro/internal/telemetry"
)

func TestParseStrategy(t *testing.T) {
	for _, ok := range []string{"uniform", "clustered", "yield"} {
		if s, err := ParseStrategy(ok); err != nil || string(s) != ok {
			t.Errorf("ParseStrategy(%q) = %q, %v", ok, s, err)
		}
	}
	for _, bad := range []string{"", "Uniform", "random", "flat", "yield "} {
		if _, err := ParseStrategy(bad); err == nil {
			t.Errorf("ParseStrategy(%q) accepted", bad)
		}
	}
}

func TestNewRejectsUniformAndEmpty(t *testing.T) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(4, 1))
	if _, err := New(seeds, Options{Strategy: Uniform, RefSpec: jvm.HotSpot9()}); err == nil {
		t.Error("New accepted the uniform strategy (FlatSeeds owns it)")
	}
	if _, err := New(nil, Options{Strategy: Clustered, RefSpec: jvm.HotSpot9()}); err == nil {
		t.Error("New accepted an empty corpus")
	}
}

// TestConstructionDeterministic: same corpus and options, identical
// cluster structure and serialized state.
func TestConstructionDeterministic(t *testing.T) {
	mk := func() *Scheduler {
		seeds := seedgen.Generate(seedgen.DefaultOptions(16, 7))
		s, err := New(seeds, Options{Strategy: Yield, RefSpec: jvm.HotSpot9()})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	if a.Clusters() != b.Clusters() {
		t.Fatalf("cluster counts differ: %d vs %d", a.Clusters(), b.Clusters())
	}
	sa, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatalf("serialized state differs:\n%s\n%s", sa, sb)
	}
	if a.Clusters() < 1 {
		t.Fatal("no clusters")
	}
}

// TestPickBounds: every pick lands inside the pool, for both
// strategies, across a long driven sequence including pool growth.
func TestPickBounds(t *testing.T) {
	for _, strategy := range []Strategy{Clustered, Yield} {
		seeds := seedgen.Generate(seedgen.DefaultOptions(10, 3))
		s, err := New(seeds, Options{Strategy: strategy, RefSpec: jvm.HotSpot9()})
		if err != nil {
			t.Fatal(err)
		}
		n := len(seeds)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 500; i++ {
			idx := s.Pick(rng, n)
			if idx < 0 || idx >= n {
				t.Fatalf("%s: pick %d outside pool %d", strategy, idx, n)
			}
			accepted := i%17 == 0
			s.Observe(idx, true, accepted)
			if accepted {
				s.Grew(n, idx)
				n++
			}
		}
		if got := len(s.assign); got != n {
			t.Fatalf("%s: assign tracks %d, pool %d", strategy, got, n)
		}
	}
}

// TestEpsilonFloorKeepsAllReachable: with demotion active and one
// cluster never yielding, the floor still reaches every pool index
// eventually.
func TestEpsilonFloorKeepsAllReachable(t *testing.T) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(12, 9))
	s, err := New(seeds, Options{Strategy: Yield, RefSpec: jvm.HotSpot9(), DemoteAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	seen := make(map[int]bool)
	for i := 0; i < 4000; i++ {
		idx := s.Pick(rng, len(seeds))
		seen[idx] = true
		s.Observe(idx, true, false) // nothing ever yields
	}
	for i := range seeds {
		if !seen[i] {
			t.Errorf("pool index %d never drawn despite the exploration floor", i)
		}
	}
}

// TestDemotionAndRepromotion: a stagnant cluster demotes after
// DemoteAfter observed failures and re-promotes on the next accept.
func TestDemotionAndRepromotion(t *testing.T) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(8, 11))
	s, err := New(seeds, Options{Strategy: Yield, RefSpec: jvm.HotSpot9(), DemoteAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Observe(0, true, false)
	}
	ci := s.ClusterOf(0)
	st := s.ClusterStats()[ci]
	if !st.Demoted || st.Demotions != 1 {
		t.Fatalf("cluster %d after 3 stagnant draws: %+v, want demoted once", ci, st)
	}
	s.Observe(0, true, true)
	st = s.ClusterStats()[ci]
	if st.Demoted {
		t.Fatalf("cluster %d still demoted after an accept: %+v", ci, st)
	}
	if st.Yield != 1 || st.Draws != 4 {
		t.Fatalf("cluster %d counters: %+v, want draws=4 yield=1", ci, st)
	}
}

// TestAddSeedClassifyAgree: Classify predicts exactly what AddSeed
// does, and AddSeed extends the corpus without founding new clusters.
func TestAddSeedClassifyAgree(t *testing.T) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(10, 13))
	s, err := New(seeds[:8], Options{Strategy: Clustered, RefSpec: jvm.HotSpot9(), Base: 8})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Clusters()
	for _, c := range seeds[8:] {
		want := s.Classify(c)
		got := s.AddSeed(c)
		if got != want {
			t.Fatalf("Classify %+v, AddSeed %+v", want, got)
		}
		if got.Cluster < 0 || got.Cluster >= before {
			t.Fatalf("AddSeed founded cluster %d (had %d)", got.Cluster, before)
		}
	}
	if s.Clusters() != before {
		t.Fatalf("cluster count changed: %d -> %d", before, s.Clusters())
	}
	if len(s.Corpus()) != 10 {
		t.Fatalf("corpus %d, want 10", len(s.Corpus()))
	}
	if s.ClusterOf(9) != s.Classify(seeds[9]).Cluster {
		t.Error("ClusterOf disagrees with the recorded assignment")
	}
}

func TestClusterOfBounds(t *testing.T) {
	seeds := seedgen.Generate(seedgen.DefaultOptions(5, 2))
	s, err := New(seeds, Options{Strategy: Clustered, RefSpec: jvm.HotSpot9()})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ClusterOf(-1); got != -1 {
		t.Errorf("ClusterOf(-1) = %d", got)
	}
	if got := s.ClusterOf(len(seeds)); got != -1 {
		t.Errorf("ClusterOf(len) = %d", got)
	}
}

// TestTelemetryCounters: the campaign.seeds.* counters mirror the
// scheduler's own tallies.
func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.New()
	seeds := seedgen.Generate(seedgen.DefaultOptions(10, 3))
	s, err := New(seeds, Options{Strategy: Yield, RefSpec: jvm.HotSpot9(), DemoteAfter: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(0, true, false)
	s.Observe(0, true, false) // demotes
	s.Observe(0, true, true)  // re-promotes
	snap := reg.Snapshot()
	if got := snap.Counter("campaign.seeds.draws"); got != 3 {
		t.Errorf("campaign.seeds.draws = %d, want 3", got)
	}
	if got := snap.Counter("campaign.seeds.yield"); got != 1 {
		t.Errorf("campaign.seeds.yield = %d, want 1", got)
	}
	if got := snap.Counter("campaign.seeds.demotions"); got != 1 {
		t.Errorf("campaign.seeds.demotions = %d, want 1", got)
	}
}
