// Package seedsel is the seed-corpus intelligence layer: it clusters a
// seed corpus by structural fingerprint and baseline coverage trace
// (greedy coverage-set distillation over the interned bitset traces),
// and schedules draws across the clusters — uniformly per cluster
// ("clustered", a diversity rebalance of the paper's flat draw) or
// weighted by observed mutant yield with stagnant clusters demoted
// ("yield"), always with an epsilon exploration floor so no seed
// starves. Scheduler satisfies campaign.SeedSource structurally (this
// package deliberately does not import campaign, so the engine's tests
// can drive a Scheduler without an import cycle).
//
// Determinism. A Scheduler is a pure function of (seed corpus, options)
// and the sequence of Pick/Observe/Grew calls the engine's sequential
// draw/commit stages issue: Pick consumes only the per-iteration draw
// stream it is handed, cluster iteration follows slice order, and every
// tie breaks toward the lowest index. Campaign results are therefore
// bit-identical at any worker count and batch size, and a kill/resume
// replay rebuilds the exact scheduler state (the snapshot carries a
// serialized copy which restore cross-checks).
package seedsel

import (
	"fmt"

	"repro/internal/jvm"
	"repro/internal/telemetry"
)

// Strategy names a seed-selection policy.
type Strategy string

const (
	// Uniform is the paper's flat draw (campaign.FlatSeeds implements
	// it; New refuses it — there is no scheduler to build).
	Uniform Strategy = "uniform"
	// Clustered draws a cluster uniformly, then a member uniformly:
	// structurally/behaviourally distinct seed groups get equal draw
	// mass regardless of their population.
	Clustered Strategy = "clustered"
	// Yield draws clusters proportionally to their observed acceptance
	// yield (Laplace-smoothed), demoting clusters that stagnate.
	Yield Strategy = "yield"
)

// Strategies lists the accepted -seed-strategy flag values.
func Strategies() string { return "uniform|clustered|yield" }

// ParseStrategy validates a flag value. Unknown values are an error —
// callers must reject them with a usage error, never fall back.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case Uniform, Clustered, Yield:
		return Strategy(s), nil
	}
	return "", fmt.Errorf("seedsel: unknown seed strategy %q (want %s)", s, Strategies())
}

// Default scheduling parameters: the exploration floor keeps every
// pool entry reachable on ~1 draw in 10; a cluster that goes 48
// consecutive observed draws without an accepted mutant is demoted
// (its weight quartered under the yield strategy) until it yields
// again. Both are overridable per Options.
const (
	DefaultEpsilon     = 0.1
	DefaultDemoteAfter = 48
)

// Options parameterises scheduler construction.
type Options struct {
	// Strategy is Clustered or Yield (Uniform has no scheduler).
	Strategy Strategy
	// RefSpec is the instrumented VM baseline traces are recorded on —
	// use the campaign's reference spec so cluster structure reflects
	// the coverage domain the campaign accepts against.
	RefSpec jvm.Spec
	// Epsilon overrides the exploration floor (0 selects the default;
	// negative disables the floor entirely).
	Epsilon float64
	// DemoteAfter overrides the stagnation threshold (0 selects the
	// default; negative disables demotion).
	DemoteAfter int
	// Base restricts cluster representatives to the corpus prefix
	// seeds[:Base] (0 means the whole corpus). The daemon pins Base to
	// its generated corpus so cluster identities stay stable as
	// submitted seeds join — newcomers are assigned to existing
	// clusters by trace overlap, never founding their own.
	Base int
	// Telemetry, when non-nil, receives per-cluster draw/yield/demotion
	// counters (campaign.seeds.cluster<i>.*) plus corpus-wide totals
	// (campaign.seeds.{draws,yield,demotions}). Observe-only.
	Telemetry *telemetry.Registry
}

func (o *Options) epsilon() float64 {
	switch {
	case o.Epsilon == 0:
		return DefaultEpsilon
	case o.Epsilon < 0:
		return 0
	}
	return o.Epsilon
}

func (o *Options) demoteAfter() int {
	switch {
	case o.DemoteAfter == 0:
		return DefaultDemoteAfter
	case o.DemoteAfter < 0:
		return 0
	}
	return o.DemoteAfter
}
