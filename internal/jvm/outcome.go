// Package jvm simulates JVM startup — the load → link → initialize →
// invoke pipeline of Table 1 in the paper — for five differently
// configured virtual machines modelled on HotSpot for Java 7/8/9, IBM
// J9 and GNU GIJ. Each VM applies the same pipeline code under a
// different Policy, so the behavioural discrepancies between them stem
// from exactly the checking-policy differences the paper documents.
//
// The reference VM (HotSpot 9 with a coverage.Recorder attached) emits
// statement and branch probes at every check site, standing in for
// GCOV/LCOV instrumentation over hotspot/src/share/vm/classfile/.
package jvm

import "fmt"

// Phase is the startup phase in which a classfile's run terminated,
// encoded 0–4 exactly as in §2.3 / Figure 3 of the paper.
type Phase int

// Startup phases.
const (
	PhaseInvoked Phase = 0 // main ran normally
	PhaseLoading Phase = 1 // rejected during creation/loading
	PhaseLinking Phase = 2 // rejected during linking (verification/resolution)
	PhaseInit    Phase = 3 // rejected during initialization
	PhaseRuntime Phase = 4 // rejected at runtime (including "main not found")
)

// PhaseCount is the number of phase codes (0–4).
const PhaseCount = 5

// phaseNames is the single source of the phase vocabulary shared by
// jvm, analysis, difftest and triage; nothing should hand-roll these
// strings.
var phaseNames = [PhaseCount]string{
	PhaseInvoked: "invoked",
	PhaseLoading: "loading",
	PhaseLinking: "linking",
	PhaseInit:    "initialization",
	PhaseRuntime: "runtime",
}

// String names the phase.
func (p Phase) String() string {
	if p >= 0 && int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Valid reports whether p is one of the five defined phase codes.
func (p Phase) Valid() bool { return p >= 0 && int(p) < PhaseCount }

// AllPhases returns the five phases in pipeline order.
func AllPhases() []Phase {
	return []Phase{PhaseInvoked, PhaseLoading, PhaseLinking, PhaseInit, PhaseRuntime}
}

// ParsePhase maps a phase name back to its constant.
func ParsePhase(s string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), true
		}
	}
	return 0, false
}

// JVM error and exception class names thrown by the pipeline.
const (
	ErrClassFormat            = "java.lang.ClassFormatError"
	ErrUnsupportedVersion     = "java.lang.UnsupportedClassVersionError"
	ErrNoClassDef             = "java.lang.NoClassDefFoundError"
	ErrClassCircularity       = "java.lang.ClassCircularityError"
	ErrVerify                 = "java.lang.VerifyError"
	ErrIncompatibleChange     = "java.lang.IncompatibleClassChangeError"
	ErrIllegalAccess          = "java.lang.IllegalAccessError"
	ErrNoSuchField            = "java.lang.NoSuchFieldError"
	ErrNoSuchMethod           = "java.lang.NoSuchMethodError"
	ErrAbstractMethod         = "java.lang.AbstractMethodError"
	ErrInstantiation          = "java.lang.InstantiationError"
	ErrUnsatisfiedLink        = "java.lang.UnsatisfiedLinkError"
	ErrExceptionInInitializer = "java.lang.ExceptionInInitializerError"
	ErrInternal               = "java.lang.InternalError"
	ErrMainNotFound           = "Error: Main method not found"
	ExcNullPointer            = "java.lang.NullPointerException"
	ExcArithmetic             = "java.lang.ArithmeticException"
	ExcClassCast              = "java.lang.ClassCastException"
	ExcArrayIndex             = "java.lang.ArrayIndexOutOfBoundsException"
	ExcNegativeArraySize      = "java.lang.NegativeArraySizeException"
	ErrStackOverflow          = "java.lang.StackOverflowError"
	ErrTimeout                = "Error: execution budget exhausted"
)

// Outcome is the observable result r of one JVM execution
// r = jvm(e, c, i): either a normal invocation with captured output,
// or a rejection in a specific phase with an error class and message.
type Outcome struct {
	Phase   Phase
	Error   string // "" when Phase == PhaseInvoked
	Message string
	Output  []string // lines printed by the class when invoked
}

// Code returns the 0–4 encoding used in discrepancy vectors (Figure 3).
func (o Outcome) Code() int { return int(o.Phase) }

// OK reports whether the class was invoked normally.
func (o Outcome) OK() bool { return o.Phase == PhaseInvoked }

// String renders the outcome for logs and test failures.
func (o Outcome) String() string {
	if o.OK() {
		return "invoked normally"
	}
	if o.Message != "" {
		return fmt.Sprintf("rejected during %s: %s: %s", o.Phase, o.Error, o.Message)
	}
	return fmt.Sprintf("rejected during %s: %s", o.Phase, o.Error)
}

// reject builds a rejection outcome.
func reject(phase Phase, errName, format string, args ...any) Outcome {
	return Outcome{Phase: phase, Error: errName, Message: fmt.Sprintf(format, args...)}
}
